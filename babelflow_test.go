package babelflow_test

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	babelflow "github.com/babelflow/babelflow-go"
)

func u64(v uint64) babelflow.Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return babelflow.Buffer(b)
}

func sum(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
	var s uint64
	for _, p := range in {
		s += binary.LittleEndian.Uint64(p.Data)
	}
	return []babelflow.Payload{u64(s)}, nil
}

// TestListing1Pattern exercises the public API exactly as the paper's
// Listing 1: build a reduction, pick a task map, choose a controller,
// register the callbacks by graph position, run.
func TestListing1Pattern(t *testing.T) {
	controllers := map[string]func(g babelflow.TaskGraph) babelflow.Controller{
		"serial": func(babelflow.TaskGraph) babelflow.Controller { return babelflow.NewSerial() },
		"mpi":    func(babelflow.TaskGraph) babelflow.Controller { return babelflow.NewMPI() },
		"charm": func(babelflow.TaskGraph) babelflow.Controller {
			return babelflow.NewCharm(babelflow.CharmOptions{PEs: 3})
		},
		"legion-spmd": func(babelflow.TaskGraph) babelflow.Controller {
			return babelflow.NewLegionSPMD(babelflow.LegionOptions{})
		},
		"legion-il": func(babelflow.TaskGraph) babelflow.Controller {
			return babelflow.NewLegionIndexLaunch(babelflow.LegionOptions{})
		},
	}
	graph, err := babelflow.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	taskMap := babelflow.NewModuloMap(3, graph.Size())
	for name, build := range controllers {
		t.Run(name, func(t *testing.T) {
			c := build(graph)
			if err := c.Initialize(graph, taskMap); err != nil {
				t.Fatal(err)
			}
			for _, cid := range graph.Callbacks() {
				if err := c.RegisterCallback(cid, sum); err != nil {
					t.Fatal(err)
				}
			}
			initial := make(map[babelflow.TaskId][]babelflow.Payload)
			var want uint64
			for i, id := range graph.LeafIds() {
				initial[id] = []babelflow.Payload{u64(uint64(i + 1))}
				want += uint64(i + 1)
			}
			out, err := c.Run(initial)
			if err != nil {
				t.Fatal(err)
			}
			got := binary.LittleEndian.Uint64(out[graph.Root()][0].Data)
			if got != want {
				t.Errorf("root = %d, want %d", got, want)
			}
		})
	}
}

func TestFacadeGraphConstructors(t *testing.T) {
	if _, err := babelflow.NewBroadcast(8, 2); err != nil {
		t.Error(err)
	}
	if _, err := babelflow.NewBinarySwap(8); err != nil {
		t.Error(err)
	}
	if _, err := babelflow.NewKWayMerge(8, 2); err != nil {
		t.Error(err)
	}
	if _, err := babelflow.NewNeighbor2D(3, 3); err != nil {
		t.Error(err)
	}
	g, _ := babelflow.NewReduction(4, 2)
	if err := babelflow.Validate(g); err != nil {
		t.Error(err)
	}
	levels, err := babelflow.Levels(g)
	if err != nil || len(levels) != 3 {
		t.Errorf("Levels = %d, %v", len(levels), err)
	}
	if babelflow.NewBlockMap(2, 7).ShardCount() != 2 {
		t.Error("NewBlockMap broken")
	}
	if babelflow.NewGraphMap(2, g).ShardCount() != 2 {
		t.Error("NewGraphMap broken")
	}
}

func TestFacadeWriteDot(t *testing.T) {
	g, _ := babelflow.NewReduction(4, 2)
	var b strings.Builder
	if err := babelflow.WriteDot(&b, g, babelflow.DotOptions{Name: "r"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph") {
		t.Error("missing digraph header")
	}
}

func TestFacadeBuilder(t *testing.T) {
	red, _ := babelflow.NewReduction(2, 2)
	g, err := babelflow.NewGraphBuilder().Add(0, red, nil).Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != red.Size() {
		t.Errorf("Size = %d", g.Size())
	}
}

func ExampleNewSerial() {
	graph, _ := babelflow.NewReduction(4, 2)
	c := babelflow.NewSerial()
	c.Initialize(graph, nil)
	for _, cid := range graph.Callbacks() {
		c.RegisterCallback(cid, sum)
	}
	initial := make(map[babelflow.TaskId][]babelflow.Payload)
	for _, id := range graph.LeafIds() {
		initial[id] = []babelflow.Payload{u64(10)}
	}
	out, _ := c.Run(initial)
	fmt.Println(binary.LittleEndian.Uint64(out[graph.Root()][0].Data))
	// Output: 40
}

// TestFacadeInSituAndTrace exercises the in-situ group and the trace
// recorder through the public API.
func TestFacadeInSituAndTrace(t *testing.T) {
	graph, _ := babelflow.NewReduction(4, 2)
	m := babelflow.NewModuloMap(2, graph.Size())

	rec := babelflow.NewTraceRecorder()
	group, err := babelflow.NewInSituGroup(graph, m, babelflow.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	for _, cid := range graph.Callbacks() {
		group.RegisterCallback(cid, rec.Wrap(cid, sum))
	}

	// Split the leaf inputs by owning rank and run the two shards
	// concurrently, as a host simulation would.
	perRank := map[int]map[babelflow.TaskId][]babelflow.Payload{0: {}, 1: {}}
	for i, id := range graph.LeafIds() {
		perRank[int(m.Shard(id))][id] = []babelflow.Payload{u64(uint64(i + 1))}
	}
	type result struct {
		out map[babelflow.TaskId][]babelflow.Payload
		err error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			shard, err := group.Shard(rank)
			if err != nil {
				results[rank] = result{err: err}
				return
			}
			out, err := shard.Run(perRank[rank])
			results[rank] = result{out: out, err: err}
		}(r)
	}
	wg.Wait()
	for r, res := range results {
		if res.err != nil {
			t.Fatalf("rank %d: %v", r, res.err)
		}
	}
	// Root (task 0) lives on rank 0: 1+2+3+4 = 10.
	got := binary.LittleEndian.Uint64(results[0].out[0][0].Data)
	if got != 10 {
		t.Errorf("in-situ root = %d, want 10", got)
	}

	spans := rec.Spans()
	if len(spans) != graph.Size() {
		t.Fatalf("trace spans = %d, want %d", len(spans), graph.Size())
	}
	summary, err := babelflow.SummarizeTrace(graph, spans)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Tasks != graph.Size() || summary.CriticalPath <= 0 {
		t.Errorf("summary = %+v", summary)
	}
	var csv strings.Builder
	if err := babelflow.WriteTraceCSV(&csv, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "task,callback,shard") {
		t.Error("CSV header missing")
	}
}
