// Fast-path microbenchmarks: the message/data plane in isolation (mailbox
// operations, wire cloning, fan-out routing). BENCH_fastpath.json records
// the before/after series for these benches; cmd/bfbench -fastpath
// regenerates the measurements.
package babelflow_test

import (
	"sync"
	"testing"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// benchBlob is a Serializable in-memory payload object: serialization costs
// one allocation plus one copy, like the real mergetree/render payloads.
type benchBlob struct{ data []byte }

func (b benchBlob) Serialize() []byte {
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp
}

// BenchmarkMailbox measures one Put/Get pair on a single mailbox — the
// per-message cost of the fabric's queue.
func BenchmarkMailbox(b *testing.B) {
	mb := fabric.NewMailbox()
	payload := core.Buffer(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Put(fabric.Message{Payload: payload})
		if _, ok := mb.TryGet(); !ok {
			b.Fatal("lost message")
		}
	}
}

// BenchmarkFabricThroughput measures sustained messages/sec between two
// ranks: a producer streams batches to rank 1 while a consumer drains it.
// Both sides use the batch fast path (SendN/RecvBatch), the transfer mode
// of the controllers' routing and receive loops; ops/sec is messages/sec.
// In-flight traffic is bounded by a credit window, as it is in a real run
// (a rank's backlog is bounded by its tasks' in-degrees), so the benchmark
// measures steady-state transfer, not unbounded queue growth.
func BenchmarkFabricThroughput(b *testing.B) {
	const (
		batchSize = 64
		window    = 8 // batches in flight
	)
	f := fabric.New(2)
	payload := core.Buffer(make([]byte, 64))
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		defer wg.Done()
		dst := make([]fabric.Message, batchSize)
		received := 0
		for {
			n, ok := f.RecvBatch(1, dst)
			if !ok {
				return
			}
			received += n
			for received >= batchSize {
				received -= batchSize
				credits <- struct{}{}
			}
		}
	}()
	batch := make([]fabric.Message, 0, batchSize)
	for i := 0; i < b.N; i++ {
		batch = append(batch, fabric.Message{From: 0, To: 1, Src: 0, Dest: 1, Payload: payload})
		if len(batch) == batchSize || i == b.N-1 {
			if len(batch) == batchSize {
				<-credits
			}
			if err := f.SendN(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	f.Close(1)
	wg.Wait()
}

// BenchmarkCloneForWire measures producing an owned wire form of a payload,
// for a binary payload and for an in-memory Serializable object.
func BenchmarkCloneForWire(b *testing.B) {
	raw := make([]byte, 4096)
	b.Run("data-4KiB", func(b *testing.B) {
		p := core.Buffer(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.CloneForWire(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("object-4KiB", func(b *testing.B) {
		p := core.Object(benchBlob{data: raw})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.CloneForWire(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFanOutRouting measures the MPI controller on a fan-out-heavy
// broadcast dataflow with 16 KiB Serializable object payloads: every
// internal task's single output slot multicasts to 8 consumers, so the
// routing layer's per-consumer serialization policy dominates.
func BenchmarkFanOutRouting(b *testing.B) {
	graph, err := babelflow.NewBroadcast(64, 8)
	if err != nil {
		b.Fatal(err)
	}
	blob := benchBlob{data: make([]byte, 16384)}
	forward := func(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
		t, _ := graph.Task(id)
		out := make([]babelflow.Payload, len(t.Outgoing))
		for s := range out {
			out[s] = babelflow.Object(blob)
		}
		return out, nil
	}
	taskMap := babelflow.NewModuloMap(4, graph.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := babelflow.NewMPI()
		if err := c.Initialize(graph, taskMap); err != nil {
			b.Fatal(err)
		}
		for _, cid := range graph.Callbacks() {
			c.RegisterCallback(cid, forward)
		}
		initial := map[babelflow.TaskId][]babelflow.Payload{}
		for _, id := range graph.TaskIds() {
			t, _ := graph.Task(id)
			for _, in := range t.Incoming {
				if in == core.ExternalInput {
					initial[id] = append(initial[id], babelflow.Object(blob))
				}
			}
		}
		if _, err := c.Run(initial); err != nil {
			b.Fatal(err)
		}
	}
}
