package main

import (
	"strings"
	"testing"

	babelflow "github.com/babelflow/babelflow-go"
)

func TestBuildGraphAllKinds(t *testing.T) {
	cases := []struct {
		kind  string
		leafs int
		want  int // expected task count
	}{
		{"reduction", 4, 7},
		{"broadcast", 4, 7},
		{"binaryswap", 4, 12},
		{"kwaymerge", 4, 14},
		{"neighbor", 0, 12}, // 3x2 grid from the width/height args
		{"mergetree", 4, 21},
	}
	for _, c := range cases {
		g, labels, err := buildGraph(c.kind, c.leafs, 2, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if g.Size() != c.want {
			t.Errorf("%s: size = %d, want %d", c.kind, g.Size(), c.want)
		}
		if err := babelflow.Validate(g); err != nil {
			t.Errorf("%s: %v", c.kind, err)
		}
		if len(labels) == 0 {
			t.Errorf("%s: no labels", c.kind)
		}
		var b strings.Builder
		if err := babelflow.WriteDot(&b, g, babelflow.DotOptions{Labels: labels}); err != nil {
			t.Errorf("%s: dot: %v", c.kind, err)
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, _, err := buildGraph("nope", 4, 2, 3, 2); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := buildGraph("reduction", 3, 2, 0, 0); err == nil {
		t.Error("invalid leaf count should fail")
	}
}
