// Command bfgraph renders BabelFlow's built-in task graphs (or local
// sub-graphs of them) in the Dot graph language — the paper's debugging
// aid for inspecting abstract task graphs.
//
// Usage:
//
//	bfgraph -graph reduction -leafs 8 -valence 2 > reduction.dot
//	bfgraph -graph mergetree -leafs 4 -valence 2 -o fig5.dot
//	bfgraph -graph binaryswap -leafs 8 -shards 4 -shard 0
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
)

func main() {
	var (
		kind    = flag.String("graph", "reduction", "reduction | broadcast | binaryswap | kwaymerge | neighbor | mergetree")
		leafs   = flag.Int("leafs", 4, "leaves / participants / grid cells per axis")
		valence = flag.Int("valence", 2, "tree fan-in/out")
		width   = flag.Int("width", 3, "neighbor grid width")
		height  = flag.Int("height", 2, "neighbor grid height")
		shards  = flag.Int("shards", 0, "restrict to one shard of a modulo map over this many shards (0 = whole graph)")
		shard   = flag.Int("shard", 0, "which shard to draw when -shards > 0")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	g, labels, err := buildGraph(*kind, *leafs, *valence, *width, *height)
	if err != nil {
		log.Fatal(err)
	}

	opt := babelflow.DotOptions{Name: *kind, Labels: labels, RankByLevel: true}
	if *shards > 0 {
		m := babelflow.NewGraphMap(*shards, g)
		want := make(map[babelflow.TaskId]bool)
		for _, id := range m.Ids(babelflow.ShardId(*shard)) {
			want[id] = true
		}
		opt.Filter = func(id babelflow.TaskId) bool { return want[id] }
		opt.Name = fmt.Sprintf("%s_shard%d", *kind, *shard)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := babelflow.WriteDot(w, g, opt); err != nil {
		log.Fatal(err)
	}
}

func buildGraph(kind string, leafs, valence, width, height int) (babelflow.TaskGraph, map[babelflow.CallbackId]string, error) {
	switch kind {
	case "reduction":
		g, err := babelflow.NewReduction(leafs, valence)
		return g, map[babelflow.CallbackId]string{
			graphs.ReduceLeafCB: "leaf", graphs.ReduceMidCB: "reduce", graphs.ReduceRootCB: "root",
		}, err
	case "broadcast":
		g, err := babelflow.NewBroadcast(leafs, valence)
		return g, map[babelflow.CallbackId]string{
			graphs.BcastSourceCB: "source", graphs.BcastRelayCB: "relay", graphs.BcastSinkCB: "sink",
		}, err
	case "binaryswap":
		g, err := babelflow.NewBinarySwap(leafs)
		return g, map[babelflow.CallbackId]string{
			graphs.SwapLeafCB: "render", graphs.SwapMidCB: "swap", graphs.SwapRootCB: "tile",
		}, err
	case "kwaymerge":
		g, err := babelflow.NewKWayMerge(leafs, valence)
		return g, map[babelflow.CallbackId]string{
			graphs.MergeLeafCB: "leaf", graphs.MergeMidCB: "merge", graphs.MergeRootCB: "root",
			graphs.MergeRelayCB: "relay", graphs.MergeFinalCB: "final",
		}, err
	case "neighbor":
		g, err := babelflow.NewNeighbor2D(width, height)
		return g, map[babelflow.CallbackId]string{
			graphs.NeighborExtractCB: "read", graphs.NeighborProcessCB: "correlate",
		}, err
	case "mergetree":
		g, err := mergetree.NewGraph(leafs, valence)
		return g, map[babelflow.CallbackId]string{
			mergetree.CBLocal: "local", mergetree.CBJoin: "join", mergetree.CBRelay: "relay",
			mergetree.CBCorrection: "correction", mergetree.CBSegmentation: "segmentation",
		}, err
	}
	return nil, nil, fmt.Errorf("bfgraph: unknown graph kind %q", kind)
}
