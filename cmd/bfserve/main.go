// Command bfserve runs the long-lived streaming dataflow service: one warm
// rank fabric and worker pool serving many graph submissions over an HTTP
// control plane.
//
// Usage:
//
//	bfserve                          # serve on :8080
//	bfserve -addr :9000 -ranks 8
//	bfserve -journal /var/lib/bf     # per-run journals under the root
//	bfserve -oneshot mergetree -params n=16,blocks=4
//	bfserve -smoke                   # self-test: serve on a loopback port,
//	                                 # submit the three use cases over HTTP,
//	                                 # verify digests, drain, shut down
//
// Control plane:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/submit \
//	     -d '{"program":"mergetree","params":{"n":16,"blocks":4},"wait":true}'
//	curl -s localhost:8080/runs/1
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/babelflow/babelflow-go/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		ranks    = flag.Int("ranks", 4, "warm fabric rank count")
		workers  = flag.Int("workers", 0, "executor pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "admission queue depth (full queue sheds with 429)")
		inflight = flag.Int("inflight", 0, "max concurrently executing runs (0 = ranks)")
		journal  = flag.String("journal", "", "journal root for per-run lineage journals")
		params   = flag.String("params", "", "program parameters as k=v,k=v (for -oneshot)")
		oneshot  = flag.String("oneshot", "", "run one program on the serial reference, print its digest, exit")
		smoke    = flag.Bool("smoke", false, "loopback self-test: submit the use cases over HTTP, verify digests, shut down")
	)
	flag.Parse()

	cfg := serve.Config{
		Ranks:       *ranks,
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxInflight: *inflight,
		Journal:     *journal,
	}

	if *oneshot != "" {
		p, err := parseParams(*params)
		if err != nil {
			log.Fatal(err)
		}
		digest, err := serve.DefaultRegistry().ReferenceDigest(*oneshot, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s\n", *oneshot, digest)
		return
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	s, err := serve.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	done := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			done <- err
			return
		}
		done <- nil
	}()
	log.Printf("bfserve: %d ranks, queue depth %d, listening on %s", s.Ranks(), *queue, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("bfserve: %v, draining", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("bfserve: http shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("bfserve: drained")
}

// parseParams turns "n=16,blocks=4" into serve.Params.
func parseParams(s string) (serve.Params, error) {
	p := serve.Params{}
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bfserve: bad parameter %q (want k=v)", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bfserve: parameter %s: %w", k, err)
		}
		p[k] = n
	}
	return p, nil
}

// runSmoke is the end-to-end self-test `make smoke-serve` drives: a real
// bfserve instance on a loopback port, the paper's use cases (including
// the iterative registration loop) submitted over HTTP, every digest
// checked against the one-shot serial reference, then a clean drain.
func runSmoke(cfg serve.Config) error {
	reg := serve.DefaultRegistry()
	s, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("bfserve smoke: %d ranks on %s\n", s.Ranks(), base)

	cases := []struct {
		program string
		params  serve.Params
	}{
		{"mergetree", serve.Params{"n": 16, "blocks": 4}},
		{"render", serve.Params{"n": 16, "blocks": 4}},
		{"register", serve.Params{"grid": 3, "tile": 16}},
		{"register-iter", serve.Params{"grid": 3, "tile": 16, "maxiter": 8}},
	}
	for _, tc := range cases {
		want, err := reg.ReferenceDigest(tc.program, tc.params)
		if err != nil {
			return fmt.Errorf("smoke: reference %s: %w", tc.program, err)
		}
		body, _ := json.Marshal(serve.SubmitRequest{Program: tc.program, Params: tc.params, Wait: true})
		resp, err := http.Post(base+"/submit", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return fmt.Errorf("smoke: submit %s: %w", tc.program, err)
		}
		var st serve.RunStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("smoke: %s: decode: %w", tc.program, err)
		}
		if resp.StatusCode != http.StatusOK || st.State != serve.StateDone {
			return fmt.Errorf("smoke: %s: status %d, state %s, err %q", tc.program, resp.StatusCode, st.State, st.Error)
		}
		if st.Digest != want {
			return fmt.Errorf("smoke: %s: digest %s != reference %s", tc.program, st.Digest, want)
		}
		fmt.Printf("  %-10s run %d  done in %.1f ms (queue wait %.1f ms)  digest %s... ok\n",
			tc.program, st.ID, st.MakespanMs, st.QueueWaitMs, st.Digest[:12])
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var m serve.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if m.Completed != uint64(len(cases)) || m.Failed != 0 {
		return fmt.Errorf("smoke: metrics disagree: %+v", m)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Printf("bfserve smoke: %d runs, all digests match the serial reference\n", len(cases))
	return nil
}
