// Command bfbench regenerates the paper's evaluation: for every scaling
// figure (Figs. 2, 3, 6, 9, 10a-f) it executes the corresponding task
// graphs under the simulated runtime models and prints the series the
// paper plots, one row per (figure, series, x, seconds).
//
// Usage:
//
//	bfbench                 # all figures
//	bfbench -figure fig6    # one figure
//	bfbench -format csv     # machine-readable output
//	bfbench -fastpath       # message fast-path microbenchmarks -> BENCH_fastpath.json
//	bfbench -wire           # transport benchmarks (in-memory vs loopback TCP) -> BENCH_net.json
//	bfbench -faults         # recovery benchmarks (failure-free vs one peer killed) -> BENCH_faults.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/babelflow/babelflow-go/internal/sim"
)

func main() {
	var (
		figure      = flag.String("figure", "", "regenerate one figure (default: all)")
		format      = flag.String("format", "table", "table | csv")
		fastpath    = flag.Bool("fastpath", false, "run the message fast-path microbenchmarks instead of the figures")
		fastpathOut = flag.String("fastpath-out", "BENCH_fastpath.json", "report path for -fastpath (baseline_seed is preserved)")
		wireBench   = flag.Bool("wire", false, "run the transport benchmarks (in-memory vs loopback TCP) instead of the figures")
		wireOut     = flag.String("wire-out", "BENCH_net.json", "report path for -wire (baseline_seed is preserved)")
		schedBench  = flag.Bool("sched", false, "run the scheduler makespan benchmarks (FIFO vs priority vs priority+stealing) instead of the figures")
		schedOut    = flag.String("sched-out", "BENCH_sched.json", "report path for -sched (baseline_seed is preserved)")
		faultsBench = flag.Bool("faults", false, "run the recovery benchmarks (failure-free vs one peer killed) instead of the figures")
		faultsOut   = flag.String("faults-out", "BENCH_faults.json", "report path for -faults (baseline_seed is preserved)")
		jnlBench    = flag.Bool("journal", false, "run the checkpoint/restart benchmarks (journaling overhead per fsync policy, resume latency) instead of the figures")
		jnlOut      = flag.String("journal-out", "BENCH_journal.json", "report path for -journal (baseline_seed is preserved)")
		serveBench  = flag.Bool("serve", false, "run the resident-service benchmarks (warm submit vs one-shot, sustained throughput) instead of the figures")
		serveOut    = flag.String("serve-out", "BENCH_serve.json", "report path for -serve (baseline_seed is preserved)")
		iterBench   = flag.Bool("iterate", false, "run the loop-combinator benchmarks (core.Iterate unroll vs hand-unrolled static DAG) instead of the figures")
		iterOut     = flag.String("iterate-out", "BENCH_iterate.json", "report path for -iterate (baseline_seed is preserved)")
	)
	flag.Parse()

	if *fastpath {
		if err := runFastpath(*fastpathOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *wireBench {
		if err := runWire(*wireOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *schedBench {
		if err := runSched(*schedOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *faultsBench {
		if err := runFaultsBench(*faultsOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *jnlBench {
		if err := runJournalBench(*jnlOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serveBench {
		if err := runServeBench(*serveOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *iterBench {
		if err := runIterateBench(*iterOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	names := sim.Figures()
	if *figure != "" {
		names = []string{*figure}
	}
	if *format == "csv" {
		fmt.Println("figure,series,x,seconds")
	}
	for _, name := range names {
		start := time.Now()
		rows, err := sim.Figure(name)
		if err != nil {
			log.Fatal(err)
		}
		switch *format {
		case "csv":
			for _, r := range rows {
				fmt.Printf("%s,%s,%d,%.6f\n", r.Figure, r.Series, r.X, r.Seconds)
			}
		case "table":
			fmt.Printf("== %s (%d rows, generated in %v)\n", name, len(rows), time.Since(start).Round(time.Millisecond))
			fmt.Printf("   %-30s %8s %12s\n", "series", "x", "seconds")
			for _, r := range rows {
				fmt.Printf("   %-30s %8d %12.3f\n", r.Series, r.X, r.Seconds)
			}
		default:
			fmt.Fprintf(os.Stderr, "bfbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
