package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// The fast-path mode measures the message/data plane in isolation — the
// same microbenchmarks as bench_fastpath_test.go (kept in sync by hand) —
// and records them in BENCH_fastpath.json. The baseline_seed section of an
// existing report is preserved verbatim so before/after comparisons against
// the pre-fast-path engine survive regeneration.

type fastpathBlob struct{ data []byte }

func (b fastpathBlob) Serialize() []byte {
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp
}

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Ops         int     `json:"ops"`
}

func record(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Ops:         r.N,
	}
}

func benchMailbox(b *testing.B) {
	mb := fabric.NewMailbox()
	payload := core.Buffer(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Put(fabric.Message{Payload: payload})
		if _, ok := mb.TryGet(); !ok {
			panic("lost message")
		}
	}
}

func benchFabricThroughput(b *testing.B) {
	const (
		batchSize = 64
		window    = 8
	)
	f := fabric.New(2)
	payload := core.Buffer(make([]byte, 64))
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		defer wg.Done()
		dst := make([]fabric.Message, batchSize)
		received := 0
		for {
			n, ok := f.RecvBatch(1, dst)
			if !ok {
				return
			}
			received += n
			for received >= batchSize {
				received -= batchSize
				credits <- struct{}{}
			}
		}
	}()
	batch := make([]fabric.Message, 0, batchSize)
	for i := 0; i < b.N; i++ {
		batch = append(batch, fabric.Message{From: 0, To: 1, Src: 0, Dest: 1, Payload: payload})
		if len(batch) == batchSize || i == b.N-1 {
			if len(batch) == batchSize {
				<-credits
			}
			if err := f.SendN(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	f.Close(1)
	wg.Wait()
}

func benchCloneData(b *testing.B) {
	p := core.Buffer(make([]byte, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.CloneForWire(); err != nil {
			panic(err)
		}
	}
}

func benchCloneObject(b *testing.B) {
	p := core.Object(fastpathBlob{data: make([]byte, 4096)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.CloneForWire(); err != nil {
			panic(err)
		}
	}
}

func benchFanOutRouting(b *testing.B) {
	graph, err := babelflow.NewBroadcast(64, 8)
	if err != nil {
		panic(err)
	}
	blob := fastpathBlob{data: make([]byte, 16384)}
	forward := func(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
		t, _ := graph.Task(id)
		out := make([]babelflow.Payload, len(t.Outgoing))
		for s := range out {
			out[s] = babelflow.Object(blob)
		}
		return out, nil
	}
	taskMap := babelflow.NewModuloMap(4, graph.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := babelflow.NewMPI()
		if err := c.Initialize(graph, taskMap); err != nil {
			panic(err)
		}
		for _, cid := range graph.Callbacks() {
			c.RegisterCallback(cid, forward)
		}
		initial := map[babelflow.TaskId][]babelflow.Payload{}
		for _, id := range graph.TaskIds() {
			t, _ := graph.Task(id)
			for _, in := range t.Incoming {
				if in == core.ExternalInput {
					initial[id] = append(initial[id], babelflow.Object(blob))
				}
			}
		}
		if _, err := c.Run(initial); err != nil {
			panic(err)
		}
	}
}

// runFastpath measures the fast-path benchmarks and rewrites the JSON report
// at path, preserving an existing baseline_seed section.
func runFastpath(path string) error {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkMailbox", benchMailbox},
		{"BenchmarkFabricThroughput", benchFabricThroughput},
		{"BenchmarkCloneForWire/data-4KiB", benchCloneData},
		{"BenchmarkCloneForWire/object-4KiB", benchCloneObject},
		{"BenchmarkFanOutRouting", benchFanOutRouting},
	}
	current := make(map[string]benchResult, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		res := record(r)
		current[bm.name] = res
		fmt.Printf("%-40s %12.1f ns/op %8d B/op %6d allocs/op\n",
			bm.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		// First run: the measurements double as the baseline.
		report["baseline_seed"] = cur
	}
	if _, ok := report["note"]; !ok {
		note, _ := json.Marshal("Message fast-path microbenchmarks (see bench_fastpath_test.go). baseline_seed is the pre-fast-path engine; regenerate current with: go run ./cmd/bfbench -fastpath")
		report["note"] = note
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
