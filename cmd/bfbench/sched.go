package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/sim"
)

// The -sched mode measures the scheduler end to end: it executes figure
// workload graphs on the REAL MPI controller, with callbacks that sleep for
// the sim cost model's task duration, and compares wall-clock makespan
// under three dispatch disciplines:
//
//   - fifo:           FIFO order, no stealing — the pre-scheduler engine
//     (per-rank pools draining in arrival order);
//   - priority:       critical-path dispatch, workers pinned to their rank;
//   - priority+steal: critical-path dispatch with idle workers stealing
//     across ranks (the default configuration).
//
// Two workloads bracket the scheduler's value: the balanced compositing
// reduction (Fig. 10e, near-uniform costs) where dispatch order hardly
// matters, and the imbalanced merge tree (Fig. 2) where the feature-dense
// region of the domain lands on one rank — the paper's "naturally load
// imbalanced" local computation under static spatial placement — and
// critical-path order plus stealing shortens the makespan. Sleeps, not
// spins, model compute so the bench is reproducible on loaded or
// single-core CI machines.

const (
	schedRanks   = 4
	schedWorkers = 4
	schedReps    = 3
	// schedHotFactor scales the local-tree cost of blocks in the
	// feature-dense region (the blocks placed on schedHotRank).
	schedHotFactor = 6
	// schedHotRank owns the feature-dense blocks. Rank 3's leaf costs are
	// the most even, so no single giant task caps how much stealing helps.
	schedHotRank = 3
)

// schedModes are the compared dispatch disciplines.
var schedModes = []struct {
	name string
	opt  []mpi.Option
}{
	{"fifo", []mpi.Option{mpi.WithWorkers(schedWorkers), mpi.WithFIFO(true), mpi.WithNoSteal(true)}},
	{"priority", []mpi.Option{mpi.WithWorkers(schedWorkers), mpi.WithNoSteal(true)}},
	{"priority_steal", []mpi.Option{mpi.WithWorkers(schedWorkers)}},
}

// schedExternalInputs synthesizes one small payload per external slot.
func schedExternalInputs(g core.TaskGraph) map[core.TaskId][]core.Payload {
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		for _, in := range t.Incoming {
			if in == core.ExternalInput {
				initial[id] = append(initial[id], core.Buffer(make([]byte, 64)))
			}
		}
	}
	return initial
}

// schedMakespan runs the workload once per rep under the given options and
// returns the best wall-clock seconds (min over reps rejects scheduling
// noise from the host OS).
func schedMakespan(w sim.Workload, opts []mpi.Option) (float64, error) {
	g := w.Graph
	m := core.NewGraphMap(schedRanks, g)
	sleepy := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		t, _ := g.Task(id)
		time.Sleep(time.Duration(w.TaskCost(t) * float64(time.Second)))
		out := make([]core.Payload, len(t.Outgoing))
		for s := range out {
			out[s] = core.Buffer(make([]byte, 64))
		}
		return out, nil
	}
	best := 0.0
	for rep := 0; rep < schedReps; rep++ {
		c := mpi.New(opts...)
		if err := c.Initialize(g, m); err != nil {
			return 0, err
		}
		for _, cid := range g.Callbacks() {
			if err := c.RegisterCallback(cid, sleepy); err != nil {
				return 0, err
			}
		}
		initial := schedExternalInputs(g)
		start := time.Now()
		if _, err := c.Run(initial); err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Seconds()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// runSched measures both workloads under every discipline and rewrites the
// JSON report at path, preserving an existing baseline_seed section.
func runSched(path string) error {
	mt, err := sim.MergeTreeWorkload(16, 2, 64)
	if err != nil {
		return err
	}
	// Concentrate the feature-dense blocks on one rank: under the same
	// static placement schedMakespan uses, every local-tree task owned by
	// schedHotRank costs schedHotFactor more. Pinned FIFO workers leave that
	// rank as the straggler; stealing drains its queue from the idle ranks.
	mtMap := core.NewGraphMap(schedRanks, mt.Graph)
	baseCost := mt.TaskCost
	mt.TaskCost = func(t core.Task) float64 {
		c := baseCost(t)
		if t.Callback == mergetree.CBLocal && mtMap.Shard(t.Id) == schedHotRank {
			c *= schedHotFactor
		}
		return c
	}
	comp, err := sim.CompositingReductionWorkload(16, 128, 128, 0.004)
	if err != nil {
		return err
	}
	workloads := []struct {
		name string
		w    sim.Workload
	}{
		{"balanced_compositing", comp},
		{"imbalanced_mergetree", mt},
	}

	current := make(map[string]map[string]float64)
	for _, wl := range workloads {
		row := make(map[string]float64, len(schedModes)+1)
		for _, mode := range schedModes {
			sec, err := schedMakespan(wl.w, mode.opt)
			if err != nil {
				return fmt.Errorf("bfbench: %s/%s: %w", wl.name, mode.name, err)
			}
			row[mode.name+"_ms"] = sec * 1e3
			fmt.Printf("%-24s %-16s %10.1f ms\n", wl.name, mode.name, sec*1e3)
		}
		row["speedup_priority_steal_vs_fifo"] = row["fifo_ms"] / row["priority_steal_ms"]
		fmt.Printf("%-24s %-16s %10.2fx\n", wl.name, "speedup", row["speedup_priority_steal_vs_fifo"])
		current[wl.name] = row
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	if _, ok := report["note"]; !ok {
		note, _ := json.Marshal("Scheduler makespan benchmarks: figure workloads on the real MPI controller with sim-cost sleeps, FIFO vs critical-path priority vs priority+stealing (4 ranks, 4 workers). Regenerate with: go run ./cmd/bfbench -sched")
		report["note"] = note
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
