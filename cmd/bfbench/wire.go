package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// The wire mode benchmarks the transport layer head to head: the same
// message patterns over the in-memory fabric and over the wire transport
// (internal/wire) at each tier, recording round-trip latency, streaming
// throughput and steady-state allocation counts in BENCH_net.json. The
// baseline_seed section of an existing report is preserved so the first
// measurements survive regeneration.
//
// Row naming: "tcp-*" rows bootstrap over a loopback TCP rendezvous — the
// configuration the seed measured, which at the time resolved through
// TierAuto to unix-domain sockets. TierAuto now resolves co-located pairs
// to shared memory, so these rows pin TierUnix to keep measuring the data
// path they always measured. "tcp-forced-*" pins TierTCP (the pre-tier
// data path), "unix-*" pins TierUnix and "shm-*" pins TierShm (what
// TierAuto picks for co-located pairs today).

// wirePair bootstraps a 2-rank wire mesh over loopback at the given tier
// and returns the two per-rank fabrics plus a teardown.
func wirePair(tier wire.Tier) (send, recv *wire.Fabric, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	fabrics := make([]*wire.Fabric, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		o := wire.Options{Rank: r, Ranks: 2, Addr: ln.Addr().String(), Tier: tier}
		if r == 0 {
			o.Listener = ln
		}
		wg.Add(1)
		go func(r int, o wire.Options) {
			defer wg.Done()
			fabrics[r], errs[r] = wire.Connect(o)
		}(r, o)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	stop = func() {
		for _, f := range fabrics {
			f.Kill()
		}
	}
	return fabrics[0], fabrics[1], stop, nil
}

// benchLatency measures one round trip of a 64-byte message: rank 0 sends,
// rank 1 echoes, rank 0 receives.
func benchLatency(mkPair func() (send, recv fabric.Transport, stop func())) func(*testing.B) {
	return func(b *testing.B) {
		send, recv, stop := mkPair()
		defer stop()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := recv.Recv(1)
				if !ok {
					return
				}
				if err := recv.Send(fabric.Message{From: 1, To: 0, Payload: m.Payload}); err != nil {
					return
				}
			}
		}()
		payload := core.Buffer(make([]byte, 64))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := send.Send(fabric.Message{From: 0, To: 1, Payload: payload}); err != nil {
				panic(err)
			}
			if _, ok := send.Recv(0); !ok {
				panic("lost pong")
			}
		}
		b.StopTimer()
		recv.Cancel()
		wg.Wait()
	}
}

// benchThroughput streams b.N size-byte messages rank 0 -> rank 1 in
// credit-windowed batches of 64. releaseRx returns received arena buffers
// to the pool, as a real consumer that finished with a message would —
// with it, the steady-state TCP message path allocates nothing beyond the
// pooled arena.
func benchThroughput(mkPair func() (send, recv fabric.Transport, stop func()), size int, releaseRx bool) func(*testing.B) {
	return func(b *testing.B) {
		const (
			batchSize = 64
			window    = 8
		)
		send, recv, stop := mkPair()
		defer stop()
		payload := core.Buffer(make([]byte, size))
		credits := make(chan struct{}, window)
		for i := 0; i < window; i++ {
			credits <- struct{}{}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		b.SetBytes(int64(size))
		b.ReportAllocs()
		b.ResetTimer()
		go func() {
			defer wg.Done()
			dst := make([]fabric.Message, batchSize)
			received, sinceCredit := 0, 0
			for received < b.N {
				n, ok := recv.RecvBatch(1, dst)
				if !ok {
					return
				}
				if releaseRx {
					for i := 0; i < n; i++ {
						core.ReleaseBuffer(dst[i].Payload.Data)
						dst[i] = fabric.Message{}
					}
				}
				received += n
				sinceCredit += n
				for sinceCredit >= batchSize {
					sinceCredit -= batchSize
					credits <- struct{}{}
				}
			}
		}()
		batch := make([]fabric.Message, 0, batchSize)
		for i := 0; i < b.N; i++ {
			batch = append(batch, fabric.Message{From: 0, To: 1, Src: 0, Dest: 1, Payload: payload})
			if len(batch) == batchSize || i == b.N-1 {
				if len(batch) == batchSize {
					<-credits
				}
				if err := send.SendN(batch); err != nil {
					panic(err)
				}
				batch = batch[:0]
			}
		}
		wg.Wait()
		b.StopTimer()
	}
}

func memPair() (fabric.Transport, fabric.Transport, func()) {
	f := fabric.New(2)
	return f, f, func() {}
}

func loopbackPair(tier wire.Tier) func() (fabric.Transport, fabric.Transport, func()) {
	return func() (fabric.Transport, fabric.Transport, func()) {
		send, recv, stop, err := wirePair(tier)
		if err != nil {
			panic(err)
		}
		return send, recv, stop
	}
}

// runWire measures the transport benchmarks and rewrites the JSON report at
// path, preserving an existing baseline_seed section.
func runWire(path string) error {
	legacy := loopbackPair(wire.TierUnix) // what TierAuto resolved to when these rows were first measured
	tcp := loopbackPair(wire.TierTCP)
	unix := loopbackPair(wire.TierUnix)
	shm := loopbackPair(wire.TierShm)
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkWireLatency/mem-64B", benchLatency(memPair)},
		{"BenchmarkWireLatency/tcp-64B", benchLatency(legacy)},
		{"BenchmarkWireLatency/tcp-forced-64B", benchLatency(tcp)},
		{"BenchmarkWireLatency/unix-64B", benchLatency(unix)},
		{"BenchmarkWireLatency/shm-64B", benchLatency(shm)},
		{"BenchmarkWireThroughput/mem-64B", benchThroughput(memPair, 64, false)},
		{"BenchmarkWireThroughput/tcp-64B", benchThroughput(legacy, 64, true)},
		{"BenchmarkWireThroughput/tcp-forced-64B", benchThroughput(tcp, 64, true)},
		{"BenchmarkWireThroughput/unix-64B", benchThroughput(unix, 64, true)},
		{"BenchmarkWireThroughput/shm-64B", benchThroughput(shm, 64, true)},
		{"BenchmarkWireThroughput/mem-4KiB", benchThroughput(memPair, 4096, false)},
		{"BenchmarkWireThroughput/tcp-4KiB", benchThroughput(legacy, 4096, true)},
		{"BenchmarkWireThroughput/unix-4KiB", benchThroughput(unix, 4096, true)},
		{"BenchmarkWireThroughput/shm-4KiB", benchThroughput(shm, 4096, true)},
	}
	current := make(map[string]benchResult, len(benches))
	for _, bm := range benches {
		// Best of three: scheduler noise on a shared box only ever adds
		// time, so the fastest run is the representative one.
		r := testing.Benchmark(bm.fn)
		for i := 1; i < 3; i++ {
			if again := testing.Benchmark(bm.fn); again.NsPerOp() < r.NsPerOp() {
				r = again
			}
		}
		res := record(r)
		current[bm.name] = res
		mbps := ""
		if r.Bytes > 0 {
			mbps = fmt.Sprintf(" %8.1f MB/s", float64(r.Bytes)*float64(r.N)/r.T.Seconds()/1e6)
		}
		fmt.Printf("%-40s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			bm.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, mbps)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	note, _ := json.Marshal(fmt.Sprintf(
		"Transport benchmarks: in-memory fabric vs the wire transport (internal/wire) over loopback, measured %s. Latency is one 64B round trip; throughput streams credit-windowed 64-message batches. tcp-* rows pin TierUnix — the data path the seed's default options resolved to, kept stable now that TierAuto prefers shared memory; tcp-forced-* pins TierTCP, the pre-tier data path; unix-* pins TierUnix; shm-* pins TierShm, the mmap'd ring pair TierAuto picks for co-located ranks. Regenerate current with: go run ./cmd/bfbench -wire",
		time.Now().Format("2006-01-02")))
	report["note"] = note
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
