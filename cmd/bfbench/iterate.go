package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// The iterate mode prices the loop combinator: the same K-times-repeated
// chain of tasks is executed once as a core.Iterate unroll (per-iteration
// synthetic decision task, conditional fan-out, predicate evaluation) and
// once as a hand-unrolled static DAG with the iterations wired directly.
// The predicate never converges, so the iterative run pays the full
// decision machinery on every iteration — the worst case. The difference
// divided by the iteration count is the per-iteration dispatch overhead;
// BENCH_iterate.json records it per workload and it is expected to stay
// within 15% of the static unroll.

// iterBenchCB is the pass-through callback id shared by both variants.
const iterBenchCB core.CallbackId = 1

// iterResult is one workload's measurement.
type iterResult struct {
	// IterateMs is the mean wall clock of running the core.Iterate unroll.
	IterateMs float64 `json:"iterate_ms"`
	// StaticMs is the mean wall clock of the hand-unrolled static DAG.
	StaticMs float64 `json:"static_ms"`
	// PerIterOverheadMs is (IterateMs - StaticMs) / Iterations.
	PerIterOverheadMs float64 `json:"per_iteration_overhead_ms"`
	// OverheadPct is 100 * (IterateMs - StaticMs) / StaticMs.
	OverheadPct float64 `json:"overhead_pct"`
	Iterations  int     `json:"iterations"`
	BodyTasks   int     `json:"body_tasks"`
}

// chainBody builds a body graph of length tasks in a line: external input
// into task 0, task j feeding j+1, the last task a sink (the gate source).
func chainBody(length int) *core.ExplicitGraph {
	tasks := make([]core.Task, length)
	for j := 0; j < length; j++ {
		t := core.Task{Id: core.TaskId(j), Callback: iterBenchCB}
		if j == 0 {
			t.Incoming = []core.TaskId{core.ExternalInput}
		} else {
			t.Incoming = []core.TaskId{core.TaskId(j - 1)}
		}
		if j == length-1 {
			t.Outgoing = [][]core.TaskId{nil}
		} else {
			t.Outgoing = [][]core.TaskId{{core.TaskId(j + 1)}}
		}
		tasks[j] = t
	}
	return core.NewExplicitGraph(tasks)
}

// staticUnroll builds the hand-unrolled equivalent of iterating the chain
// iters times: copy k's last task feeds copy k+1's first task directly,
// with no decision tasks in between.
func staticUnroll(length, iters int) *core.ExplicitGraph {
	tasks := make([]core.Task, 0, length*iters)
	for k := 0; k < iters; k++ {
		for j := 0; j < length; j++ {
			id := core.TaskId(k*length + j)
			t := core.Task{Id: id, Callback: iterBenchCB}
			if k == 0 && j == 0 {
				t.Incoming = []core.TaskId{core.ExternalInput}
			} else {
				t.Incoming = []core.TaskId{id - 1}
			}
			if k == iters-1 && j == length-1 {
				t.Outgoing = [][]core.TaskId{nil}
			} else {
				t.Outgoing = [][]core.TaskId{{id + 1}}
			}
			tasks = append(tasks, t)
		}
	}
	return core.NewExplicitGraph(tasks)
}

// passCallback copies its input forward, bumping the first byte so every
// hop does a little real work.
func passCallback(in []core.Payload, _ core.TaskId) ([]core.Payload, error) {
	b := make([]byte, len(in[0].Data))
	copy(b, in[0].Data)
	b[0]++
	return []core.Payload{core.Buffer(b)}, nil
}

// runGraph executes one cold run (controller per run, like a bfrun
// invocation) and releases the sinks.
func runGraph(g core.TaskGraph, m core.TaskMap, reg func(core.CallbackRegistrar) error) error {
	ctrl := mpi.New(mpi.WithWorkers(4))
	if err := ctrl.Initialize(g, m); err != nil {
		return err
	}
	if err := reg(ctrl); err != nil {
		return err
	}
	out, err := ctrl.Run(map[core.TaskId][]core.Payload{0: {core.Buffer(make([]byte, 64))}})
	if err != nil {
		return err
	}
	for _, ps := range out {
		for _, p := range ps {
			p.Release()
		}
	}
	return nil
}

// measureIterate times both variants of one workload.
func measureIterate(length, loops, iters int) (iterResult, error) {
	never := func(int, map[core.TaskId][]core.Payload) (bool, error) { return false, nil }
	ig, err := core.Iterate(chainBody(length), never,
		core.MaxIterations(loops), core.Gate(core.TaskId(length-1), 0, 0, 0))
	if err != nil {
		return iterResult{}, err
	}
	im := core.NewIterativeMap(4, ig)
	iterReg := func(c core.CallbackRegistrar) error {
		if err := c.RegisterCallback(iterBenchCB, passCallback); err != nil {
			return err
		}
		return ig.RegisterDecision(c)
	}
	sg := staticUnroll(length, loops)
	sm := core.NewGraphMap(4, sg)
	staticReg := func(c core.CallbackRegistrar) error {
		return c.RegisterCallback(iterBenchCB, passCallback)
	}

	// Interleave the variants so clock drift and background noise hit both.
	var iterate, static time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := runGraph(ig, im, iterReg); err != nil {
			return iterResult{}, fmt.Errorf("iterate: %w", err)
		}
		iterate += time.Since(start)
		start = time.Now()
		if err := runGraph(sg, sm, staticReg); err != nil {
			return iterResult{}, fmt.Errorf("static: %w", err)
		}
		static += time.Since(start)
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 / float64(iters) }
	res := iterResult{
		IterateMs:  ms(iterate),
		StaticMs:   ms(static),
		Iterations: loops,
		BodyTasks:  length,
	}
	res.PerIterOverheadMs = (res.IterateMs - res.StaticMs) / float64(loops)
	res.OverheadPct = 100 * (res.IterateMs - res.StaticMs) / res.StaticMs
	return res, nil
}

// runIterateBench measures the loop-combinator benchmarks and rewrites the
// JSON report at path, preserving an existing baseline_seed section.
func runIterateBench(path string) error {
	workloads := []struct {
		name          string
		length, loops int
		iters         int
	}{
		{"chain-16x8", 16, 8, 150},
		{"chain-64x8", 64, 8, 60},
		{"chain-16x32", 16, 32, 40},
	}
	current := make(map[string]iterResult, len(workloads))
	for _, w := range workloads {
		res, err := measureIterate(w.length, w.loops, w.iters)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", w.name, err)
		}
		current[w.name] = res
		fmt.Printf("%-12s iterate %8.3f ms  static %8.3f ms  per-iteration overhead %7.4f ms (%+.1f%%)\n",
			w.name, res.IterateMs, res.StaticMs, res.PerIterOverheadMs, res.OverheadPct)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	note, _ := json.Marshal(fmt.Sprintf(
		"Loop-combinator overhead: mean wall clock of a K-iteration chain executed as a core.Iterate unroll (synthetic decision task, conditional routing and predicate per iteration; the predicate never converges, so every iteration pays full price) vs the same chain hand-unrolled into a static DAG, on the MPI controller with 4 workers. per_iteration_overhead_ms is the decision machinery's cost per loop; overhead_pct is expected to stay within 15%% of the static unroll. Measured %s. Regenerate current with: go run ./cmd/bfbench -iterate",
		time.Now().Format("2006-01-02")))
	report["note"] = note
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
