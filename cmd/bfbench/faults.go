package main

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// The faults mode benchmarks the recovery path: each figure workload runs
// on 4 ranks over loopback TCP twice — once failure free (the baseline) and
// once with one peer killed on the first epoch — and BENCH_faults.json
// records the wall-clock cost of recovery, the recovery latency measured
// from the failure, and how much re-execution the lineage-ledger replay
// avoided.

// faultsResult is one workload's measurement.
type faultsResult struct {
	// BaselineMs is the failure-free wall clock.
	BaselineMs float64 `json:"baseline_ms"`
	// FaultMs is the wall clock with one peer killed on epoch 1.
	FaultMs float64 `json:"fault_ms"`
	// RecoveryMs is the wall clock from the failure to the verified result.
	RecoveryMs float64 `json:"recovery_ms"`
	// Epochs is the number of execution attempts of the fault run.
	Epochs int `json:"epochs"`
	// Replayed counts tasks served from the lineage ledger during recovery.
	Replayed int `json:"replayed_tasks"`
	// Executed counts callback executions across all epochs of the fault
	// run; Tasks is the graph size for comparison.
	Executed int `json:"executed_tasks"`
	Tasks    int `json:"tasks"`
	// JoinMs / DrainMs (elastic rows only) measure membership latency: the
	// time from the join/drain request to the rebalanced epoch being
	// connected. HandedOff counts ledger records adopted across owners.
	JoinMs    float64 `json:"join_ms,omitempty"`
	DrainMs   float64 `json:"drain_ms,omitempty"`
	HandedOff int     `json:"handed_off_tasks,omitempty"`
}

// faultsDigestCB is a deterministic callback hashing inputs into per-slot
// digests, heavy enough (64 hash rounds) that task cost dominates setup.
func faultsDigestCB(g core.TaskGraph) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		h := sha256.New()
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], uint64(id))
		h.Write(idb[:])
		for _, p := range in {
			w, err := p.Wire()
			if err != nil {
				return nil, err
			}
			h.Write(w)
		}
		sum := h.Sum(nil)
		for i := 0; i < 64; i++ {
			s := sha256.Sum256(sum)
			sum = s[:]
		}
		t, _ := g.Task(id)
		out := make([]core.Payload, len(t.Outgoing))
		for s := range out {
			buf := make([]byte, len(sum)+1)
			copy(buf, sum)
			buf[len(sum)] = byte(s)
			out[s] = core.Buffer(buf)
		}
		return out, nil
	}
}

func faultsInputs(g core.TaskGraph) map[core.TaskId][]core.Payload {
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		for _, in := range t.Incoming {
			if in == core.ExternalInput {
				b := make([]byte, 8)
				binary.LittleEndian.PutUint64(b, uint64(id))
				initial[id] = append(initial[id], core.Buffer(b))
			}
		}
	}
	return initial
}

// measureFaults runs the workload once failure free and once with a kill.
func measureFaults(g core.TaskGraph, ranks int, plan faultinject.Plan) (faultsResult, error) {
	run := func(inject mpi.InjectFunc) (time.Duration, mpi.RecoveryReport, error) {
		m := core.NewGraphMap(ranks, g)
		ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
			MaxAttempts: ranks,
			BaseBackoff: 5 * time.Millisecond,
		}))
		if err := ctrl.Initialize(g, m); err != nil {
			return 0, mpi.RecoveryReport{}, err
		}
		cb := faultsDigestCB(g)
		for _, cid := range g.Callbacks() {
			if err := ctrl.RegisterCallback(cid, cb); err != nil {
				return 0, mpi.RecoveryReport{}, err
			}
		}
		fp := ctrl.Fingerprint()
		connect := func(epoch, nranks int) ([]fabric.Transport, error) {
			fabs, err := wire.Mesh(nranks, wire.Options{
				Fingerprint:       fp,
				Epoch:             epoch,
				HeartbeatInterval: 50 * time.Millisecond,
				HeartbeatTimeout:  time.Second,
			})
			if err != nil {
				return nil, err
			}
			trs := make([]fabric.Transport, len(fabs))
			for i, f := range fabs {
				trs[i] = f
			}
			return trs, nil
		}
		start := time.Now()
		out, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
			Connect: connect,
			Inject:  inject,
			Initial: faultsInputs(g),
		})
		elapsed := time.Since(start)
		for _, ps := range out {
			for _, p := range ps {
				p.Release()
			}
		}
		return elapsed, rep, err
	}

	baseline, _, err := run(nil)
	if err != nil {
		return faultsResult{}, fmt.Errorf("baseline: %w", err)
	}
	faultWall, rep, err := run(func(epoch, rank int, tr fabric.Transport) fabric.Transport {
		if epoch != 1 {
			return tr
		}
		return faultinject.Wrap(tr, rank, plan)
	})
	if err != nil {
		return faultsResult{}, fmt.Errorf("fault run: %w", err)
	}
	return faultsResult{
		BaselineMs: float64(baseline.Microseconds()) / 1000,
		FaultMs:    float64(faultWall.Microseconds()) / 1000,
		RecoveryMs: float64(rep.RecoveryTime.Microseconds()) / 1000,
		Epochs:     rep.Epochs,
		Replayed:   rep.Replayed,
		Executed:   rep.Executed,
		Tasks:      g.Size(),
	}, nil
}

// measureElastic runs the workload once failure free on the starting
// member set (the baseline) and once with a membership event fired from
// inside the nth callback execution — gated to tasks the base map places
// on onShard when it is non-negative, so a drain provably has lineage to
// hand off. The elastic run's report carries the join/drain latency
// (request to running rebalanced epoch) and the adopted-lineage count.
func measureElastic(g core.TaskGraph, ranks int, onShard core.ShardId, nth int64, event func(*mpi.Membership)) (faultsResult, error) {
	run := func(ms *mpi.Membership, wrap func(core.Callback) core.Callback) (time.Duration, mpi.ElasticReport, error) {
		m := core.NewGraphMap(ranks, g)
		ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
			MaxAttempts: ranks,
			BaseBackoff: 5 * time.Millisecond,
		}))
		if err := ctrl.Initialize(g, m); err != nil {
			return 0, mpi.ElasticReport{}, err
		}
		cb := faultsDigestCB(g)
		if wrap != nil {
			cb = wrap(cb)
		}
		for _, cid := range g.Callbacks() {
			if err := ctrl.RegisterCallback(cid, cb); err != nil {
				return 0, mpi.ElasticReport{}, err
			}
		}
		fp := ctrl.Fingerprint()
		connect := func(epoch, nranks int) ([]fabric.Transport, error) {
			fabs, err := wire.Mesh(nranks, wire.Options{
				Fingerprint:       fp,
				Epoch:             epoch,
				HeartbeatInterval: 50 * time.Millisecond,
				HeartbeatTimeout:  time.Second,
			})
			if err != nil {
				return nil, err
			}
			trs := make([]fabric.Transport, len(fabs))
			for i, f := range fabs {
				trs[i] = f
			}
			return trs, nil
		}
		start := time.Now()
		out, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
			Connect:    connect,
			Initial:    faultsInputs(g),
			Membership: ms,
		})
		elapsed := time.Since(start)
		for _, ps := range out {
			for _, p := range ps {
				p.Release()
			}
		}
		return elapsed, rep, err
	}

	steady, err := mpi.NewMembership(ranks)
	if err != nil {
		return faultsResult{}, err
	}
	baseline, _, err := run(steady, nil)
	if err != nil {
		return faultsResult{}, fmt.Errorf("baseline: %w", err)
	}

	ms, err := mpi.NewMembership(ranks)
	if err != nil {
		return faultsResult{}, err
	}
	gate := core.NewGraphMap(ranks, g)
	wrap := func(cb core.Callback) core.Callback {
		var count atomic.Int64
		var once sync.Once
		return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
			if (onShard < 0 || gate.Shard(id) == onShard) && count.Add(1) == nth {
				once.Do(func() {
					event(ms)
					// Park the triggering task so the fence provably lands
					// mid-epoch instead of racing the epoch's completion.
					time.Sleep(50 * time.Millisecond)
				})
			}
			return cb(in, id)
		}
	}
	wall, rep, err := run(ms, wrap)
	if err != nil {
		return faultsResult{}, fmt.Errorf("elastic run: %w", err)
	}
	return faultsResult{
		BaselineMs: float64(baseline.Microseconds()) / 1000,
		FaultMs:    float64(wall.Microseconds()) / 1000,
		RecoveryMs: float64(rep.RecoveryTime.Microseconds()) / 1000,
		Epochs:     rep.Epochs,
		Replayed:   rep.Replayed,
		Executed:   rep.TotalExecuted,
		Tasks:      g.Size(),
		JoinMs:     float64(rep.JoinLatency.Microseconds()) / 1000,
		DrainMs:    float64(rep.DrainLatency.Microseconds()) / 1000,
		HandedOff:  rep.HandedOff,
	}, nil
}

// runFaultsBench measures the recovery benchmarks and rewrites the JSON
// report at path, preserving an existing baseline_seed section.
func runFaultsBench(path string) error {
	red, err := graphs.NewReduction(64, 2)
	if err != nil {
		return err
	}
	kwm, err := graphs.NewKWayMerge(32, 2)
	if err != nil {
		return err
	}
	bsw, err := graphs.NewBinarySwap(16)
	if err != nil {
		return err
	}
	workloads := []struct {
		name string
		g    core.TaskGraph
	}{
		{"reduction-64", red},
		{"kwaymerge-32", kwm},
		{"binaryswap-16", bsw},
	}
	const ranks = 4
	plan := faultinject.Plan{KillRank: 1, KillAfter: 1, Delay: 100 * time.Microsecond}

	current := make(map[string]faultsResult, len(workloads))
	for _, w := range workloads {
		res, err := measureFaults(w.g, ranks, plan)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", w.name, err)
		}
		current[w.name] = res
		fmt.Printf("%-16s baseline %8.1f ms  with-fault %8.1f ms  recovery %8.1f ms  epochs=%d replayed=%d/%d executed=%d\n",
			w.name, res.BaselineMs, res.FaultMs, res.RecoveryMs, res.Epochs, res.Replayed, res.Tasks, res.Executed)
	}

	// Elastic rows: the same digest workload with a live membership event
	// mid-run — two ranks joining a 2-rank mesh, and one member of a 4-rank
	// mesh draining with shard hand-off. The baseline is the event-free run
	// on the starting member set.
	elastic := []struct {
		name    string
		g       core.TaskGraph
		ranks   int
		onShard core.ShardId
		nth     int64
		event   func(*mpi.Membership)
	}{
		{"elastic-join-2to4", kwm, 2, -1, 3, func(ms *mpi.Membership) {
			ms.Join()
			ms.Join()
		}},
		// Fire from the 2nd execution of a shard-3 task: its first task's
		// lineage is already in the ledger, so the hand-off is non-empty.
		{"elastic-drain-4to3", kwm, 4, 3, 2, func(ms *mpi.Membership) {
			if err := ms.Drain(3); err != nil {
				panic(err)
			}
		}},
	}
	for _, w := range elastic {
		res, err := measureElastic(w.g, w.ranks, w.onShard, w.nth, w.event)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", w.name, err)
		}
		current[w.name] = res
		fmt.Printf("%-16s baseline %8.1f ms  elastic %8.1f ms  join %6.1f ms  drain %6.1f ms  epochs=%d handed-off=%d\n",
			w.name, res.BaselineMs, res.FaultMs, res.JoinMs, res.DrainMs, res.Epochs, res.HandedOff)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	if _, ok := report["note"]; !ok {
		note, _ := json.Marshal(fmt.Sprintf(
			"Recovery benchmarks: figure workloads on 4 ranks over loopback TCP, one peer killed on epoch 1, recovered via lineage-ledger replay; baseline is the same run failure free. Measured %s. Regenerate current with: go run ./cmd/bfbench -faults",
			time.Now().Format("2006-01-02")))
		report["note"] = note
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
