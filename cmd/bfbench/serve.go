package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/serve"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// The serve mode benchmarks the resident service against one-shot runs:
// for each small workload it measures (a) the mean latency of a full
// one-shot mpi.Run — fabric, pool and controller built and torn down per
// graph — against (b) the mean latency of mpi.Service.Submit over a warm
// fabric, and (c) the sustained throughput of the full bfserve admission
// path (HTTP excluded) under concurrent clients. BENCH_serve.json records
// all three; warm submission of small graphs is expected to be >=5x
// cheaper than one-shot.

// serveResult is one workload's measurement.
type serveResult struct {
	// OneShotMs is the mean wall clock of a cold mpi.Run per submission.
	OneShotMs float64 `json:"oneshot_ms"`
	// WarmMs is the mean wall clock of mpi.Service.Submit on a warm fabric.
	WarmMs float64 `json:"warm_submit_ms"`
	// SpeedupX is OneShotMs / WarmMs.
	SpeedupX float64 `json:"speedup_x"`
	// SustainedPerSec is end-to-end serve.Server throughput: Submissions
	// runs streamed from 8 concurrent clients through the admission queue,
	// batcher and warm service.
	SustainedPerSec float64 `json:"sustained_runs_per_sec"`
	Submissions     int     `json:"submissions"`
	Tasks           int     `json:"tasks"`
}

// oneShotRun executes the submission with a throwaway controller: per-run
// fabric, pool and (absent) journal exactly as mpi.Run does for bfrun.
func oneShotRun(sub mpi.Submission, ranks int) error {
	ctrl := mpi.New(mpi.WithWorkers(ranks))
	if err := ctrl.Initialize(sub.Graph, core.NewGraphMap(ranks, sub.Graph)); err != nil {
		return err
	}
	if err := sub.Register(ctrl); err != nil {
		return err
	}
	out, err := ctrl.Run(sub.Initial)
	if err != nil {
		return err
	}
	for _, ps := range out {
		for _, p := range ps {
			p.Release()
		}
	}
	return nil
}

// measureServe benchmarks one program across the three modes.
func measureServe(reg *serve.Registry, program string, params serve.Params, ranks, iters int) (serveResult, error) {
	probe, err := reg.Build(program, params)
	if err != nil {
		return serveResult{}, err
	}
	tasks := probe.Graph.Size()
	for _, ps := range probe.Initial {
		for _, p := range ps {
			p.Release()
		}
	}

	// (a) one-shot: everything rebuilt per run.
	start := time.Now()
	for i := 0; i < iters; i++ {
		sub, err := reg.Build(program, params)
		if err != nil {
			return serveResult{}, err
		}
		if err := oneShotRun(sub, ranks); err != nil {
			return serveResult{}, fmt.Errorf("oneshot: %w", err)
		}
	}
	oneshot := time.Since(start)

	// (b) warm service: fabric and pool resident across submissions.
	svc, err := mpi.NewService(ranks, mpi.WithWorkers(ranks))
	if err != nil {
		return serveResult{}, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		sub, err := reg.Build(program, params)
		if err != nil {
			return serveResult{}, err
		}
		out, _, err := svc.Submit(context.Background(), sub)
		if err != nil {
			svc.Close()
			return serveResult{}, fmt.Errorf("warm submit: %w", err)
		}
		for _, ps := range out {
			for _, p := range ps {
				p.Release()
			}
		}
	}
	warm := time.Since(start)
	if err := svc.Close(); err != nil {
		return serveResult{}, err
	}

	// (c) sustained throughput through the full admission path.
	const clients = 8
	total := clients * (iters / 2)
	srv, err := serve.NewServer(serve.Config{
		Ranks:      ranks,
		QueueDepth: total + clients,
		Registry:   reg,
	})
	if err != nil {
		return serveResult{}, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start = time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/clients; i++ {
				st, err := srv.Submit(program, params)
				if err != nil {
					errCh <- err
					return
				}
				if st, err = srv.Wait(context.Background(), st.ID); err != nil {
					errCh <- err
					return
				} else if st.State != serve.StateDone {
					errCh <- fmt.Errorf("run %d: state %s: %s", st.ID, st.State, st.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
	sustained := time.Since(start)
	if err := srv.Close(); err != nil {
		return serveResult{}, err
	}
	select {
	case err := <-errCh:
		return serveResult{}, fmt.Errorf("sustained: %w", err)
	default:
	}

	ms := func(d time.Duration, n int) float64 { return float64(d.Microseconds()) / 1000 / float64(n) }
	res := serveResult{
		OneShotMs:       ms(oneshot, iters),
		WarmMs:          ms(warm, iters),
		SustainedPerSec: float64(total) / sustained.Seconds(),
		Submissions:     total,
		Tasks:           tasks,
	}
	res.SpeedupX = res.OneShotMs / res.WarmMs
	return res, nil
}

// partitionByShard splits global external inputs into per-rank maps.
func partitionByShard(m core.TaskMap, initial map[core.TaskId][]core.Payload) []map[core.TaskId][]core.Payload {
	parts := make([]map[core.TaskId][]core.Payload, m.ShardCount())
	for r := range parts {
		parts[r] = make(map[core.TaskId][]core.Payload)
	}
	for id, ps := range initial {
		parts[m.Shard(id)][id] = ps
	}
	return parts
}

// rankedRun drives one submission with one RunRank per rank over the given
// per-rank transports — the multi-process execution shape.
func rankedRun(sub mpi.Submission, m core.TaskMap, views []fabric.Transport) error {
	ranks := m.ShardCount()
	ctrl := mpi.New()
	if err := ctrl.Initialize(sub.Graph, m); err != nil {
		return err
	}
	if err := sub.Register(ctrl); err != nil {
		return err
	}
	parts := partitionByShard(m, sub.Initial)
	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = ctrl.RunRank(r, views[r], parts[r])
		}(r)
	}
	wg.Wait()
	for _, res := range results {
		for _, ps := range res {
			for _, p := range ps {
				p.Release()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measureServeWire benchmarks run multiplexing over a real wire mesh at
// the requested transport tier: one-shot bootstraps (and tears down) a
// fresh loopback mesh per submission, exactly as a cold bfrun invocation
// would; warm keeps one mesh resident behind per-rank run demultiplexers
// and gives each submission its own RunTransport views. The gap is
// dominated by the mesh bootstrap the resident service amortizes.
func measureServeWire(reg *serve.Registry, program string, params serve.Params, tier wire.Tier, ranks, oneshotIters, warmIters int) (serveResult, error) {
	probe, err := reg.Build(program, params)
	if err != nil {
		return serveResult{}, err
	}
	tasks := probe.Graph.Size()
	m := core.NewGraphMap(ranks, probe.Graph)
	fpCtrl := mpi.New()
	if err := fpCtrl.Initialize(probe.Graph, m); err != nil {
		return serveResult{}, err
	}
	fp := fpCtrl.Fingerprint()
	for _, ps := range probe.Initial {
		for _, p := range ps {
			p.Release()
		}
	}

	// (a) one-shot: fresh mesh per submission.
	start := time.Now()
	for i := 0; i < oneshotIters; i++ {
		sub, err := reg.Build(program, params)
		if err != nil {
			return serveResult{}, err
		}
		fabrics, err := wire.Mesh(ranks, wire.Options{Fingerprint: fp, Tier: tier})
		if err != nil {
			return serveResult{}, err
		}
		views := make([]fabric.Transport, ranks)
		for r := range views {
			views[r] = fabrics[r]
		}
		runErr := rankedRun(sub, core.NewGraphMap(ranks, sub.Graph), views)
		var wg sync.WaitGroup
		for _, f := range fabrics {
			wg.Add(1)
			go func(f *wire.Fabric) {
				defer wg.Done()
				f.Shutdown(30 * time.Second)
			}(f)
		}
		wg.Wait()
		if runErr != nil {
			return serveResult{}, fmt.Errorf("wire oneshot: %w", runErr)
		}
	}
	oneshot := time.Since(start)

	// (b) warm: resident mesh, per-run demux views.
	fabrics, err := wire.Mesh(ranks, wire.Options{Fingerprint: fp, Tier: tier})
	if err != nil {
		return serveResult{}, err
	}
	demuxes := make([]*fabric.Demux, ranks)
	for r := range demuxes {
		demuxes[r] = fabric.NewDemux(fabrics[r], r)
	}
	var nextID atomic.Uint64
	warmRun := func() error {
		sub, err := reg.Build(program, params)
		if err != nil {
			return err
		}
		id := nextID.Add(1)
		views := make([]fabric.Transport, ranks)
		for r := range views {
			v, err := demuxes[r].Open(id)
			if err != nil {
				return err
			}
			views[r] = v
		}
		defer func() {
			for r := range views {
				demuxes[r].Release(id)
			}
		}()
		return rankedRun(sub, core.NewGraphMap(ranks, sub.Graph), views)
	}
	start = time.Now()
	for i := 0; i < warmIters; i++ {
		if err := warmRun(); err != nil {
			return serveResult{}, fmt.Errorf("wire warm: %w", err)
		}
	}
	warm := time.Since(start)

	// (c) sustained: concurrent submissions multiplexed over the one mesh.
	const clients = 4
	total := clients * (warmIters / clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start = time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/clients; i++ {
				if err := warmRun(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	sustained := time.Since(start)
	select {
	case err := <-errCh:
		return serveResult{}, fmt.Errorf("wire sustained: %w", err)
	default:
	}

	for _, d := range demuxes {
		d.Close()
	}
	var shut sync.WaitGroup
	for _, f := range fabrics {
		shut.Add(1)
		go func(f *wire.Fabric) {
			defer shut.Done()
			f.Shutdown(30 * time.Second)
		}(f)
	}
	shut.Wait()
	for _, d := range demuxes {
		d.Wait()
	}

	ms := func(d time.Duration, n int) float64 { return float64(d.Microseconds()) / 1000 / float64(n) }
	res := serveResult{
		OneShotMs:       ms(oneshot, oneshotIters),
		WarmMs:          ms(warm, warmIters),
		SustainedPerSec: float64(total) / sustained.Seconds(),
		Submissions:     total,
		Tasks:           tasks,
	}
	res.SpeedupX = res.OneShotMs / res.WarmMs
	return res, nil
}

// runServeBench measures the resident-service benchmarks and rewrites the
// JSON report at path, preserving an existing baseline_seed section.
func runServeBench(path string) error {
	reg := serve.DefaultRegistry()
	workloads := []struct {
		name    string
		program string
		params  serve.Params
		iters   int
	}{
		{"reduction-8", "reduction", serve.Params{"blocks": 8, "payload": 64}, 300},
		{"kwaymerge-8", "kwaymerge", serve.Params{"blocks": 8, "payload": 64}, 300},
		{"binaryswap-8", "binaryswap", serve.Params{"blocks": 8, "payload": 64}, 300},
		{"reduction-64", "reduction", serve.Params{"blocks": 64, "payload": 64}, 100},
	}
	const ranks = 4

	current := make(map[string]serveResult, len(workloads)+1)
	for _, w := range workloads {
		res, err := measureServe(reg, w.program, w.params, ranks, w.iters)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", w.name, err)
		}
		current[w.name] = res
		fmt.Printf("%-18s oneshot %8.3f ms  warm %8.3f ms (%.1fx)  sustained %8.0f runs/s over %d submissions\n",
			w.name, res.OneShotMs, res.WarmMs, res.SpeedupX, res.SustainedPerSec, res.Submissions)
	}

	// The wire-mesh rows, one per transport tier: here one-shot pays a full
	// mesh bootstrap per submission, the cost the resident service exists
	// to amortize, and the tier sets the per-message cost under it.
	for _, mt := range []struct {
		suffix string
		tier   wire.Tier
	}{
		{"tcp", wire.TierTCP},
		{"unix", wire.TierUnix},
		{"shm", wire.TierShm},
	} {
		name := "reduction-8-wiremesh-" + mt.suffix
		wireRes, err := measureServeWire(reg, "reduction", serve.Params{"blocks": 8, "payload": 64}, mt.tier, ranks, 20, 200)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", name, err)
		}
		current[name] = wireRes
		fmt.Printf("%-24s oneshot %8.3f ms  warm %8.3f ms (%.1fx)  sustained %8.0f runs/s over %d submissions\n",
			name, wireRes.OneShotMs, wireRes.WarmMs, wireRes.SpeedupX, wireRes.SustainedPerSec, wireRes.Submissions)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	note, _ := json.Marshal(fmt.Sprintf(
		"Resident-service benchmarks: per-submission latency of cold one-shot mpi.Run (fabric+pool per run) vs mpi.Service.Submit over a warm fabric, and sustained serve.Server throughput from 8 concurrent clients, on 4 in-process ranks. The reduction-8-wiremesh-{tcp,unix,shm} rows repeat the comparison over a real wire mesh pinned to each transport tier: cold mesh bootstrap per run vs a resident mesh behind per-rank run demultiplexers. Measured %s. Regenerate current with: go run ./cmd/bfbench -serve",
		time.Now().Format("2006-01-02")))
	report["note"] = note
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
