package main

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/journal"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// The journal mode benchmarks durable checkpoint/restart: each figure
// workload runs on 4 in-process ranks four ways — no journal, journaling
// under each fsync policy — and then once more over the completed journal
// to measure resume latency (every task replayed, no callback executed).
// BENCH_journal.json records the journaling overhead and the resume cost.

// journalResult is one workload's measurement.
type journalResult struct {
	// PlainMs is the wall clock without any journal.
	PlainMs float64 `json:"plain_ms"`
	// JournalMs is the wall clock journaling with fsync-per-record (the
	// default, crash-durable policy); OverheadPct relates it to PlainMs.
	JournalMs   float64 `json:"journal_ms"`
	OverheadPct float64 `json:"journal_overhead_pct"`
	// GroupCommitMs journals under group commit: appends return after the
	// write and a background committer amortizes fsyncs across a small
	// time/record window (journal defaults: 2ms or 64 records).
	GroupCommitMs float64 `json:"journal_sync_group_ms"`
	// RotateSyncMs and NoSyncMs are the relaxed policies (fsync on segment
	// rotation only / never).
	RotateSyncMs float64 `json:"journal_sync_rotate_ms"`
	NoSyncMs     float64 `json:"journal_sync_never_ms"`
	// ResumeMs is the wall clock of rerunning over the completed journal:
	// Restored tasks replayed, zero callbacks executed.
	ResumeMs float64 `json:"resume_ms"`
	Restored int     `json:"resume_restored_tasks"`
	// JournalBytes is the on-disk footprint of the per-record-sync journal.
	JournalBytes int64 `json:"journal_bytes"`
	Tasks        int   `json:"tasks"`
}

// journalRun executes the workload once on 4 in-process ranks, journaling
// under dir (empty = no journal), and returns the wall clock and stats.
func journalRun(g core.TaskGraph, ranks int, dir string, sync journal.SyncPolicy) (time.Duration, mpi.JournalStats, error) {
	var opts []mpi.Option
	if dir != "" {
		opts = append(opts, mpi.WithJournal(dir), mpi.WithJournalSync(sync))
	}
	ctrl := mpi.New(opts...)
	if err := ctrl.Initialize(g, core.NewGraphMap(ranks, g)); err != nil {
		return 0, mpi.JournalStats{}, err
	}
	cb := faultsDigestCB(g)
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			return 0, mpi.JournalStats{}, err
		}
	}
	start := time.Now()
	out, err := ctrl.Run(faultsInputs(g))
	elapsed := time.Since(start)
	if err != nil {
		return 0, mpi.JournalStats{}, err
	}
	for _, ps := range out {
		for _, p := range ps {
			p.Release()
		}
	}
	return elapsed, ctrl.JournalStats(), nil
}

func dirBytes(dir string) int64 {
	var n int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			n += info.Size()
		}
		return nil
	})
	return n
}

// measureJournal benchmarks one workload across the journal configurations.
func measureJournal(g core.TaskGraph, ranks int) (journalResult, error) {
	plain, _, err := journalRun(g, ranks, "", 0)
	if err != nil {
		return journalResult{}, fmt.Errorf("plain: %w", err)
	}

	base, err := os.MkdirTemp("", "bfbench-journal-")
	if err != nil {
		return journalResult{}, err
	}
	defer os.RemoveAll(base)

	durDir := filepath.Join(base, "every")
	durable, js, err := journalRun(g, ranks, durDir, journal.SyncEveryRecord)
	if err != nil {
		return journalResult{}, fmt.Errorf("journal sync=every: %w", err)
	}
	if js.Executed != g.Size() {
		return journalResult{}, fmt.Errorf("journal run executed %d of %d tasks", js.Executed, g.Size())
	}
	group, _, err := journalRun(g, ranks, filepath.Join(base, "group"), journal.SyncGroupCommit)
	if err != nil {
		return journalResult{}, fmt.Errorf("journal sync=group-commit: %w", err)
	}
	rotate, _, err := journalRun(g, ranks, filepath.Join(base, "rotate"), journal.SyncOnRotate)
	if err != nil {
		return journalResult{}, fmt.Errorf("journal sync=rotate: %w", err)
	}
	nosync, _, err := journalRun(g, ranks, filepath.Join(base, "never"), journal.SyncNever)
	if err != nil {
		return journalResult{}, fmt.Errorf("journal sync=never: %w", err)
	}

	// Resume over the completed durable journal: everything replays.
	resume, rjs, err := journalRun(g, ranks, durDir, journal.SyncEveryRecord)
	if err != nil {
		return journalResult{}, fmt.Errorf("resume: %w", err)
	}
	if rjs.Executed != 0 || rjs.Replayed != g.Size() {
		return journalResult{}, fmt.Errorf("resume replayed %d and executed %d of %d tasks", rjs.Replayed, rjs.Executed, g.Size())
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return journalResult{
		PlainMs:       ms(plain),
		JournalMs:     ms(durable),
		OverheadPct:   (ms(durable) - ms(plain)) / ms(plain) * 100,
		GroupCommitMs: ms(group),
		RotateSyncMs:  ms(rotate),
		NoSyncMs:      ms(nosync),
		ResumeMs:      ms(resume),
		Restored:      rjs.Restored,
		JournalBytes:  dirBytes(durDir),
		Tasks:         g.Size(),
	}, nil
}

// runJournalBench measures the checkpoint/restart benchmarks and rewrites
// the JSON report at path, preserving an existing baseline_seed section.
func runJournalBench(path string) error {
	red, err := graphs.NewReduction(64, 2)
	if err != nil {
		return err
	}
	kwm, err := graphs.NewKWayMerge(32, 2)
	if err != nil {
		return err
	}
	bsw, err := graphs.NewBinarySwap(16)
	if err != nil {
		return err
	}
	workloads := []struct {
		name string
		g    core.TaskGraph
	}{
		{"reduction-64", red},
		{"kwaymerge-32", kwm},
		{"binaryswap-16", bsw},
	}
	const ranks = 4

	current := make(map[string]journalResult, len(workloads))
	for _, w := range workloads {
		res, err := measureJournal(w.g, ranks)
		if err != nil {
			return fmt.Errorf("bfbench: %s: %w", w.name, err)
		}
		current[w.name] = res
		fmt.Printf("%-16s plain %8.1f ms  journal %8.1f ms (%+5.1f%%, group %.1f, rotate %.1f, nosync %.1f)  resume %8.1f ms replaying %d tasks (%d bytes)\n",
			w.name, res.PlainMs, res.JournalMs, res.OverheadPct, res.GroupCommitMs, res.RotateSyncMs, res.NoSyncMs,
			res.ResumeMs, res.Restored, res.JournalBytes)
	}

	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bfbench: existing %s is not valid JSON: %w", path, err)
		}
	}
	cur, err := json.Marshal(current)
	if err != nil {
		return err
	}
	report["current"] = cur
	if _, ok := report["baseline_seed"]; !ok {
		report["baseline_seed"] = cur
	}
	note, _ := json.Marshal(fmt.Sprintf(
		"Checkpoint/restart benchmarks: figure workloads on 4 in-process ranks, lineage ledger journaled per fsync policy (every record / group commit / on rotate / never), then resumed over the completed journal (every task replayed, none executed). Measured %s. Regenerate current with: go run ./cmd/bfbench -journal",
		time.Now().Format("2006-01-02")))
	report["note"] = note
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
