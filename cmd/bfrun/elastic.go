// Elastic multi-process execution: -elastic runs the workload across real
// OS processes whose membership CHANGES while the dataflow is in flight.
// The parent is the coordinator: it owns the membership gate (internal/wire
// Gate), forks the initial workers, and later forks joiners (-join /
// -join-after) and retires a member (-drain / -drain-after). Workers join
// the gate, follow per-epoch tickets — derive the epoch's task map from the
// ticket's member table with core.RebalanceShards, connect the epoch's
// rendezvous, run their logical rank — and report status back. A
// membership event mid-epoch fences the running epoch (liveness timers
// suspended, journals flushed) and the next ticket rebuilds the mesh over
// the new member set; handed-off lineage replays from the journals instead
// of re-executing.
//
//	bfrun -case mergetree -elastic -ranks 2 -join 2 -join-after 150ms \
//	      -drain 1 -drain-after 400ms -journal /tmp/bf-elastic
//
// The parent verifies the union of the final epoch's sink digests against
// an in-parent serial reference — elasticity must not change a byte.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/journal"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// pacedRegistrar interposes a fixed per-task delay before every callback,
// stretching the epoch so membership events provably land mid-run. The
// delay never touches payloads, so digests are unchanged.
type pacedRegistrar struct {
	inner core.CallbackRegistrar
	delay time.Duration
}

func (p pacedRegistrar) RegisterCallback(id core.CallbackId, cb core.Callback) error {
	if p.delay <= 0 {
		return p.inner.RegisterCallback(id, cb)
	}
	return p.inner.RegisterCallback(id, func(in []core.Payload, t core.TaskId) ([]core.Payload, error) {
		time.Sleep(p.delay)
		return cb(in, t)
	})
}

// epochResult is what one epoch attempt hands back to the worker loop.
type epochResult struct {
	out map[core.TaskId][]core.Payload
	err error
}

// epochRun tracks the worker's in-flight epoch so a newer ticket can fence
// it: suspend liveness, flush the journal, cancel, and wait for unwind.
type epochRun struct {
	epoch  int
	fab    *wire.Fabric
	cancel context.CancelFunc
	done   chan epochResult
	fenced bool
}

// runElasticWorker is one elastic member process: join the gate, then
// follow tickets until released. ranks is the INITIAL rank count every
// process agrees on — the base task map the per-epoch rebalance diffs
// against.
func runElasticWorker(useCase, gateAddr, tierName string, ranks, n, blocks int, journalDir string, pace time.Duration) {
	wc, err := setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatal("bfrun: ", err)
	}
	tier, err := wire.ParseTier(tierName)
	if err != nil {
		log.Fatal("bfrun: ", err)
	}
	var opts []mpi.Option
	if journalDir != "" {
		opts = append(opts, mpi.WithJournal(journalDir))
	}
	ctrl := mpi.New(opts...)
	if err := ctrl.Initialize(wc.graph, wc.tmap); err != nil {
		log.Fatal("bfrun: ", err)
	}
	if err := wc.reg(pacedRegistrar{ctrl, pace}); err != nil {
		log.Fatal("bfrun: ", err)
	}

	sess, err := wire.JoinGate(gateAddr, ctrl.Fingerprint(), 30*time.Second)
	if err != nil {
		log.Fatal("bfrun: join gate: ", err)
	}
	defer sess.Close()
	member := sess.Member()

	// The member's durable lineage: restored on start, synced at every
	// fence, closed on drain/exit. Without -journal the ledger is
	// in-memory — hand-offs then re-execute instead of replaying.
	var led *core.Ledger
	var store *journal.LedgerStore
	if journalDir != "" {
		led, store, err = ctrl.OpenMemberLedger(member)
		if err != nil {
			log.Fatalf("bfrun: member %d: %v", member, err)
		}
	} else {
		led = core.NewLedger()
	}

	tickets := make(chan wire.Ticket, 4)
	go func() {
		for {
			t, err := sess.NextTicket(0)
			if err != nil {
				// The coordinator is gone; unwind as if released so the
				// process never lingers as an orphan.
				tickets <- wire.Ticket{Action: wire.ActionExit}
				return
			}
			tickets <- t
		}
	}()

	fence := func(cur *epochRun) {
		cur.fenced = true
		cur.fab.Fence(true)
		if store != nil {
			store.Sync()
		}
		cur.cancel()
		<-cur.done
		sess.Report(wire.Status{Epoch: cur.epoch, OK: false, Detail: "fenced"})
	}

	var cur *epochRun
	var lastOut map[core.TaskId][]core.Payload
	epochs := 0
	for {
		var t wire.Ticket
		if cur == nil {
			t = <-tickets
		} else {
			select {
			case t = <-tickets:
			case res := <-cur.done:
				if res.err != nil {
					// A collapsed epoch (a peer fenced, drained, or died) is
					// not fatal: report it and wait for the next ticket —
					// the coordinator decides whether the run is over.
					sess.Report(wire.Status{Epoch: cur.epoch, OK: false, Detail: res.err.Error()})
					cur = nil
					continue
				}
				lastOut = res.out
				sess.Report(wire.Status{Epoch: cur.epoch, OK: true,
					Detail: fmt.Sprintf("replayed=%d executed=%d", led.Replays(), led.Executions())})
				cur = nil
				continue
			}
		}

		switch t.Action {
		case wire.ActionRun:
			if cur != nil {
				fence(cur)
				cur = nil
			}
			// Adopt handed-off lineage from members retired since the last
			// epoch: their journals are closed (they reported their drain),
			// so replaying their completed work here is safe and durable.
			if store != nil {
				for _, donor := range t.Retired {
					dled, dstore, err := ctrl.OpenMemberLedger(donor)
					if err != nil {
						log.Fatalf("bfrun: member %d: adopt from %d: %v", member, donor, err)
					}
					mem := make([]core.ShardId, len(t.Members))
					for i, m := range t.Members {
						mem[i] = core.ShardId(m)
					}
					tmap, err := core.RebalanceShards(wc.graph, wc.tmap, mem)
					if err != nil {
						log.Fatalf("bfrun: member %d: %v", member, err)
					}
					for _, id := range wc.graph.TaskIds() {
						if tmap.Shard(id) == core.ShardId(t.Rank) {
							led.Adopt(dled, id)
						}
					}
					dstore.Close()
				}
			}
			cur = startEpoch(ctrl, wc, t, tier, led)
			epochs++
		case wire.ActionDrain:
			if cur != nil {
				fence(cur)
				cur = nil
			}
			if store != nil {
				store.Close()
				store = nil
			}
			sess.Report(wire.Status{Epoch: t.Epoch, OK: true, Detail: "drained"})
		case wire.ActionExit:
			if cur != nil {
				fence(cur)
			}
			if store != nil {
				store.Close()
			}
			fmt.Printf("BFWIRE elastic member=%d epochs=%d restored=%d replayed=%d executed=%d\n",
				member, epochs, led.Restored(), led.Replays(), led.Executions())
			for _, line := range digestLines(lastOut) {
				fmt.Println(line)
			}
			return
		default:
			log.Fatalf("bfrun: member %d: unexpected ticket action %d", member, t.Action)
		}
	}
}

// startEpoch derives the ticket's task map, connects the epoch's rendezvous
// as the assigned logical rank, and launches the run.
func startEpoch(ctrl *mpi.Controller, wc wireCase, t wire.Ticket, tier wire.Tier, led *core.Ledger) *epochRun {
	members := make([]core.ShardId, len(t.Members))
	for i, m := range t.Members {
		members[i] = core.ShardId(m)
	}
	tmap, err := core.RebalanceShards(wc.graph, wc.tmap, members)
	if err != nil {
		log.Fatalf("bfrun: epoch %d: %v", t.Epoch, err)
	}
	local := make(map[core.TaskId][]core.Payload)
	for id, ps := range wc.initial {
		if tmap.Shard(id) == core.ShardId(t.Rank) {
			local[id] = ps
		}
	}
	fab, err := wire.Connect(wire.Options{
		Rank: t.Rank, Ranks: t.Ranks, Addr: t.Addr, Epoch: t.Epoch, Tier: tier,
		Fingerprint:       ctrl.Fingerprint(),
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	})
	if err != nil {
		log.Fatalf("bfrun: epoch %d rank %d: connect: %v", t.Epoch, t.Rank, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	run := &epochRun{epoch: t.Epoch, fab: fab, cancel: cancel, done: make(chan epochResult, 1)}
	go func() {
		out, err := ctrl.RunMemberContext(ctx, t.Rank, fab, local, tmap, led)
		if err == nil {
			if serr := fab.Shutdown(30 * time.Second); serr != nil {
				err = fmt.Errorf("shutdown: %w", serr)
			}
		}
		run.done <- epochResult{out, err}
	}()
	return run
}

// runElasticParent is the coordinator: gate, initial fleet, deferred joins
// and drain, per-epoch tickets, digest verification.
func runElasticParent(useCase string, ranks, joinN int, joinAfter time.Duration,
	drainMember int, drainAfter time.Duration, n, blocks int, tierName, journalDir string, pace time.Duration) {
	if ranks < 1 {
		log.Fatalf("bfrun: -ranks must be positive, got %d", ranks)
	}
	if _, err := wire.ParseTier(tierName); err != nil {
		log.Fatal("bfrun: ", err)
	}
	if drainMember >= 0 && drainMember >= ranks+joinN {
		log.Fatalf("bfrun: -drain %d names a member that will never exist (%d total)", drainMember, ranks+joinN)
	}
	wc, err := setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference digests (unpaced — the pace is a worker-side delay).
	ser := core.NewSerial()
	if err := ser.Initialize(wc.graph, nil); err != nil {
		log.Fatal(err)
	}
	if err := wc.reg(ser); err != nil {
		log.Fatal(err)
	}
	ref, err := ser.Run(wc.initial)
	if err != nil {
		log.Fatal(err)
	}
	want := make(map[string]bool)
	for _, line := range digestLines(ref) {
		want[line] = true
	}
	// The gate vets joiners by the same fingerprint the workers derive, so
	// compute it the way they do: graph plus registered callback ids.
	fpc := mpi.New()
	if err := fpc.Initialize(wc.graph, wc.tmap); err != nil {
		log.Fatal(err)
	}
	if err := wc.reg(fpc); err != nil {
		log.Fatal(err)
	}
	fp := fpc.Fingerprint()

	gate, err := wire.NewGate("127.0.0.1:0", 0, fp)
	if err != nil {
		log.Fatal("bfrun: ", err)
	}
	defer gate.Close()

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	type worker struct {
		cmd *exec.Cmd
		out bytes.Buffer
	}
	var workers []*worker
	fork := func() {
		args := []string{
			"-case", useCase,
			"-n", strconv.Itoa(n),
			"-blocks", strconv.Itoa(blocks),
			"-ranks", strconv.Itoa(ranks),
			"-wire-gate", gate.Addr(),
			"-wire-tier", tierName,
			"-elastic-pace", pace.String(),
		}
		if journalDir != "" {
			args = append(args, "-wire-journal", journalDir)
		}
		w := &worker{cmd: exec.Command(exe, args...)}
		w.cmd.Stdout = &w.out
		w.cmd.Stderr = os.Stderr
		if err := w.cmd.Start(); err != nil {
			log.Fatal("bfrun: fork worker: ", err)
		}
		workers = append(workers, w)
	}

	start := time.Now()
	for i := 0; i < ranks; i++ {
		fork()
	}
	// Initial fleet admission: the first `ranks` join events are the
	// founding member set.
	var members []int
	for len(members) < ranks {
		select {
		case ev := <-gate.Events():
			if ev.Kind == wire.KindJoin {
				members = append(members, ev.Member)
			}
		case <-time.After(30 * time.Second):
			log.Fatal("bfrun: initial workers never joined the gate")
		}
	}

	// Deferred membership changes, delivered through the gate like any
	// external joiner or drain request would be.
	if joinN > 0 {
		time.AfterFunc(joinAfter, func() {
			for i := 0; i < joinN; i++ {
				fork()
			}
		})
	}
	if drainMember >= 0 {
		gateAddr := gate.Addr()
		time.AfterFunc(drainAfter, func() {
			if err := wire.RequestDrain(gateAddr, drainMember, fp, 10*time.Second); err != nil {
				log.Fatal("bfrun: drain request: ", err)
			}
		})
	}

	// One status pump per admitted member; pumps for joiners start when
	// their join event is processed.
	statusCh := make(chan wire.Status, 64)
	pump := func(member int) {
		go func() {
			for {
				st, err := gate.AwaitStatus(member, 10*time.Minute)
				if err != nil {
					return
				}
				statusCh <- st
			}
		}()
	}
	for _, m := range members {
		pump(m)
	}

	admitted := append([]int(nil), members...)
	var drained, pendingJoin, pendingDrain []int
	epoch, fences := 0, 0
	running := true
	for running {
		// Integrate membership changes at the epoch boundary.
		members = append(members, pendingJoin...)
		pendingJoin = nil
		var retired []int
		for _, d := range pendingDrain {
			idx := -1
			for i, m := range members {
				if m == d {
					idx = i
				}
			}
			if idx < 0 {
				continue // unknown or already drained: ignore
			}
			if err := gate.SendTicket(d, wire.Ticket{Action: wire.ActionDrain, Member: d, Epoch: epoch + 1}); err != nil {
				log.Fatal("bfrun: ", err)
			}
			deadline := time.After(60 * time.Second)
		drainWait:
			for {
				select {
				case st := <-statusCh:
					if st.Member == d && st.Detail == "drained" {
						break drainWait
					}
				case <-deadline:
					log.Fatalf("bfrun: member %d never reported its drain", d)
				}
			}
			members = append(members[:idx], members[idx+1:]...)
			retired = append(retired, d)
			drained = append(drained, d)
		}
		pendingDrain = nil
		sort.Ints(members)
		if len(members) == 0 {
			log.Fatal("bfrun: every member drained; nothing left to run the epoch")
		}

		epoch++
		addr := freeLoopbackAddr()
		for l, m := range members {
			t := wire.Ticket{Action: wire.ActionRun, Member: m, Epoch: epoch, Rank: l,
				Ranks: len(members), Addr: addr, Members: members, Retired: retired}
			if err := gate.SendTicket(m, t); err != nil {
				log.Fatal("bfrun: ", err)
			}
		}

		okSet := make(map[int]bool)
	epochWait:
		for {
			select {
			case ev := <-gate.Events():
				// A membership event mid-epoch: coalesce whatever arrives in
				// the next beat, then fence by issuing the next epoch.
				handleEvent := func(ev wire.Event) {
					switch ev.Kind {
					case wire.KindJoin:
						pendingJoin = append(pendingJoin, ev.Member)
						admitted = append(admitted, ev.Member)
						pump(ev.Member)
					case wire.KindDrain:
						pendingDrain = append(pendingDrain, ev.Member)
					}
				}
				handleEvent(ev)
				coalesce := time.After(50 * time.Millisecond)
			drainEvents:
				for {
					select {
					case ev := <-gate.Events():
						handleEvent(ev)
					case <-coalesce:
						break drainEvents
					}
				}
				fences++
				break epochWait
			case st := <-statusCh:
				if st.Epoch != epoch {
					continue // a stale fenced/OK report from an abandoned epoch
				}
				if !st.OK {
					if st.Detail == "fenced" {
						continue
					}
					log.Fatalf("bfrun: member %d failed epoch %d: %s", st.Member, st.Epoch, st.Detail)
				}
				okSet[st.Member] = true
				if len(okSet) == len(members) {
					running = false
					break epochWait
				}
			}
		}
	}
	for _, m := range admitted {
		gate.SendTicket(m, wire.Ticket{Action: wire.ActionExit})
	}

	failed := 0
	got := make(map[string]bool)
	for i, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "bfrun: worker %d exited: %v\n", i, err)
			failed++
		}
		sc := bufio.NewScanner(&w.out)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "BFWIRE sink"):
				got[line] = true
			case strings.HasPrefix(line, "BFWIRE elastic"):
				fmt.Println(line)
			}
		}
	}
	elapsed := time.Since(start)

	matches := 0
	for line := range got {
		if want[line] {
			matches++
		}
	}
	ok := failed == 0 && matches == len(want) && len(got) == len(want)
	fmt.Printf("wire-elastic %-10s %d tasks: start=%d join=+%d drain=%d epochs=%d fences=%d %v  sinks=%d/%d match-serial=%v\n",
		useCase, wc.graph.Size(), ranks, joinN, len(drained), epoch, fences,
		elapsed.Round(time.Millisecond), matches, len(want), ok)
	if !ok {
		os.Exit(1)
	}
}

// freeLoopbackAddr reserves an ephemeral loopback port and releases it for
// the epoch's rank 0 to rebind.
func freeLoopbackAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
