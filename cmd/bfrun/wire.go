// Multi-process execution: -transport tcp runs the MPI controller across
// real OS processes connected by the TCP fabric (internal/wire). The parent
// process computes the serial reference, forks one worker per rank with the
// same case parameters, and verifies the workers' sink digests against the
// reference — the paper's byte-identical-output guarantee, checked across
// process boundaries.
//
//	bfrun -case mergetree -runtime mpi -transport tcp -ranks 4
//
// Workers are ordinary bfrun invocations with the internal -wire-rank and
// -wire-addr flags set; every process rebuilds the same graph and callback
// registry, so the rendezvous handshake verifies that all ranks agree on
// the dataflow before any payload moves.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/register"
	"github.com/babelflow/babelflow-go/internal/render"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// wireCase is everything a process needs to run one use case: the graph,
// its distribution over ranks, the callback registration and the global
// external inputs. Parent and workers construct it identically from the
// command line, so every process derives the same graph fingerprint.
type wireCase struct {
	graph   core.TaskGraph
	tmap    core.TaskMap
	reg     func(core.CallbackRegistrar) error
	initial map[core.TaskId][]core.Payload
}

func setupWireCase(useCase string, ranks, n, blocks int) (wireCase, error) {
	switch useCase {
	case "mergetree":
		field := data.SyntheticHCCI(n, n, n, 8, 2026)
		decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
		if err != nil {
			return wireCase{}, err
		}
		graph, err := mergetree.NewGraph(blocks, 2)
		if err != nil {
			return wireCase{}, err
		}
		cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
		initial, err := cfg.InitialInputs(field, graph)
		if err != nil {
			return wireCase{}, err
		}
		return wireCase{
			graph:   graph,
			tmap:    core.NewGraphMap(ranks, graph),
			reg:     func(c core.CallbackRegistrar) error { return cfg.Register(c, graph) },
			initial: initial,
		}, nil
	case "render":
		field := data.SyntheticHCCI(n, n, n, 6, 7)
		decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
		if err != nil {
			return wireCase{}, err
		}
		cfg := render.Config{
			Decomp: decomp,
			Camera: render.Camera{Width: n, Height: n},
			TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
		}
		graph, err := graphs.NewReduction(blocks, 2)
		if err != nil {
			return wireCase{}, err
		}
		initial, err := cfg.InitialInputs(field, graph.LeafIds())
		if err != nil {
			return wireCase{}, err
		}
		return wireCase{
			graph:   graph,
			tmap:    core.NewModuloMap(ranks, graph.Size()),
			reg:     func(c core.CallbackRegistrar) error { return cfg.RegisterReduction(c, graph) },
			initial: initial,
		}, nil
	case "register":
		cfg := register.Config{GridW: 3, GridH: 3, Tile: 24, Overlap: 0.2, Jitter: 2}
		tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
		graph, err := cfg.Graph()
		if err != nil {
			return wireCase{}, err
		}
		initial, err := cfg.InitialInputs(graph, tiles)
		if err != nil {
			return wireCase{}, err
		}
		return wireCase{
			graph:   graph,
			tmap:    core.NewModuloMap(ranks, graph.Size()),
			reg:     func(c core.CallbackRegistrar) error { return cfg.Register(c, graph) },
			initial: initial,
		}, nil
	case "register-iter":
		// The iterative refinement loop: the unrolled graph runs on every
		// tier unchanged, and the converged digest (the live decision sink)
		// is what the parent verifies against serial.
		cfg := register.Config{GridW: 3, GridH: 3, Tile: 24, Overlap: 0.2, Jitter: 2}
		tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
		ig, err := cfg.Iterative(8)
		if err != nil {
			return wireCase{}, err
		}
		initial, err := cfg.IterInitial(tiles)
		if err != nil {
			return wireCase{}, err
		}
		return wireCase{
			graph:   ig,
			tmap:    core.NewIterativeMap(ranks, ig),
			reg:     func(c core.CallbackRegistrar) error { return cfg.RegisterIter(c, ig) },
			initial: initial,
		}, nil
	}
	return wireCase{}, fmt.Errorf("bfrun: use case %q has no wire setup", useCase)
}

// runWireWorker is one rank of a multi-process run: it connects the TCP
// fabric, executes its sub-graph and prints one digest line per local sink
// payload for the parent to verify. With journalDir set the rank journals
// its lineage ledger there (and resumes from whatever the directory already
// holds); killAfter >= 0 arms a deterministic self-kill after that many
// inter-rank sends, seeding a resumable crash.
func runWireWorker(useCase string, rank, ranks int, addr, tierName string, n, blocks int, journalDir string, killAfter int) {
	wc, err := setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	tier, err := wire.ParseTier(tierName)
	if err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	var opts []mpi.Option
	if journalDir != "" {
		opts = append(opts, mpi.WithJournal(journalDir))
	}
	ctrl := mpi.New(opts...)
	if err := ctrl.Initialize(wc.graph, wc.tmap); err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	if err := wc.reg(ctrl); err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	fab, err := wire.Connect(wire.Options{
		Rank: rank, Ranks: ranks, Addr: addr, Tier: tier, Fingerprint: ctrl.Fingerprint(),
	})
	if err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	local := make(map[core.TaskId][]core.Payload)
	for id, ps := range wc.initial {
		if wc.tmap.Shard(id) == core.ShardId(rank) {
			local[id] = ps
		}
	}
	var tr fabric.Transport = fab
	if killAfter >= 0 {
		tr = faultinject.Wrap(fab, rank, faultinject.Plan{
			KillRank:  rank,
			KillAfter: killAfter,
			Delay:     time.Millisecond,
		})
	}
	start := time.Now()
	out, err := ctrl.RunRank(rank, tr, local)
	if journalDir != "" {
		// Journal accounting flows to the parent whether the run survived or
		// crashed — the crash line is what a later -resume is measured by.
		js := ctrl.JournalStats()
		fmt.Printf("BFWIRE journal rank=%d restored=%d replayed=%d executed=%d store_errors=%d\n",
			rank, js.Restored, js.Replayed, js.Executed, js.StoreErrors)
	}
	if err != nil {
		log.Fatalf("bfrun: rank %d: %v", rank, err)
	}
	if err := fab.Shutdown(30 * time.Second); err != nil {
		log.Fatalf("bfrun: rank %d: shutdown: %v", rank, err)
	}
	for _, line := range digestLines(out) {
		fmt.Println(line)
	}
	st := fab.Snapshot()
	fmt.Printf("BFWIRE done rank=%d elapsed=%s sent=%d bytes=%d\n",
		rank, time.Since(start).Round(time.Microsecond), st.Messages, st.Bytes)
}

// digestLines renders sink outputs as sorted, parseable digest lines.
func digestLines(out map[core.TaskId][]core.Payload) []string {
	var lines []string
	for id, ps := range out {
		for slot, p := range ps {
			w, err := p.Wire()
			if err != nil {
				log.Fatalf("bfrun: sink %d/%d: %v", id, slot, err)
			}
			lines = append(lines, fmt.Sprintf("BFWIRE sink %d %d %x", id, slot, sha256.Sum256(w)))
		}
	}
	sort.Strings(lines)
	return lines
}

// runWireParent launches one worker process per rank, aggregates their exit
// status and timing, and verifies the combined sink digests against an
// in-parent serial reference run.
//
// journalDir, when set, makes every worker journal under it. killAll >= 0
// arms every worker's self-kill after that many inter-rank sends — the
// parent then expects the job to crash (that is the seeded state a later
// -resume recovers from) and exits zero only if it did. resume marks a
// restart: digests must match AND the journals must have carried progress
// (something restored, every restored task replayed, replays + executions
// covering the whole graph).
func runWireParent(useCase, rt string, ranks, n, blocks int, tierName, journalDir string, killAll int, resume bool) {
	if rt != "mpi" {
		log.Fatalf("bfrun: -transport tcp supports -runtime mpi, got %q", rt)
	}
	if _, err := wire.ParseTier(tierName); err != nil {
		log.Fatal("bfrun: ", err)
	}
	if ranks < 1 {
		log.Fatalf("bfrun: -ranks must be positive, got %d", ranks)
	}
	if killAll >= 0 && journalDir == "" {
		log.Fatal("bfrun: -kill-all-after needs -journal (a crash without a journal is not resumable)")
	}
	wc, err := setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference digests.
	ser := core.NewSerial()
	if err := ser.Initialize(wc.graph, nil); err != nil {
		log.Fatal(err)
	}
	if err := wc.reg(ser); err != nil {
		log.Fatal(err)
	}
	ref, err := ser.Run(wc.initial)
	if err != nil {
		log.Fatal(err)
	}
	want := make(map[string]bool)
	for _, line := range digestLines(ref) {
		want[line] = true
	}

	// Rendezvous address: bind an ephemeral port, release it to rank 0.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	type worker struct {
		cmd *exec.Cmd
		out bytes.Buffer
	}
	workers := make([]*worker, ranks)
	start := time.Now()
	for r := 0; r < ranks; r++ {
		args := []string{
			"-case", useCase,
			"-n", strconv.Itoa(n),
			"-blocks", strconv.Itoa(blocks),
			"-ranks", strconv.Itoa(ranks),
			"-wire-rank", strconv.Itoa(r),
			"-wire-addr", addr,
			"-wire-tier", tierName,
		}
		if journalDir != "" {
			args = append(args, "-wire-journal", journalDir)
		}
		if killAll >= 0 {
			args = append(args, "-wire-kill-after", strconv.Itoa(killAll))
		}
		w := &worker{cmd: exec.Command(exe, args...)}
		w.cmd.Stdout = &w.out
		w.cmd.Stderr = os.Stderr
		if err := w.cmd.Start(); err != nil {
			log.Fatalf("bfrun: starting rank %d: %v", r, err)
		}
		workers[r] = w
	}
	failed := 0
	got := make(map[string]bool)
	var js struct{ restored, replayed, executed, storeErrs int }
	for r, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "bfrun: rank %d exited: %v\n", r, err)
			failed++
		}
		sc := bufio.NewScanner(&w.out)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "BFWIRE sink"):
				got[line] = true
			case strings.HasPrefix(line, "BFWIRE done"):
				fmt.Println(line)
			case strings.HasPrefix(line, "BFWIRE journal"):
				var rk, re, rp, ex, se int
				if _, err := fmt.Sscanf(line, "BFWIRE journal rank=%d restored=%d replayed=%d executed=%d store_errors=%d",
					&rk, &re, &rp, &ex, &se); err == nil {
					js.restored += re
					js.replayed += rp
					js.executed += ex
					js.storeErrs += se
				}
				fmt.Println(line)
			}
		}
	}
	elapsed := time.Since(start)

	if killAll >= 0 {
		// Seed phase of a checkpoint/restart exercise: the job must have
		// crashed with journaled progress for -resume to have work to do.
		ok := failed > 0 && js.executed > 0
		fmt.Printf("wire-journal seed %-10s %d tasks over %d processes: %v  crashed_ranks=%d/%d journaled_executions=%d -> resume with -resume %s\n",
			useCase, wc.graph.Size(), ranks, elapsed.Round(time.Millisecond), failed, ranks, js.executed, journalDir)
		if !ok {
			os.Exit(1)
		}
		return
	}

	matches := 0
	for line := range got {
		if want[line] {
			matches++
		}
	}
	ok := failed == 0 && matches == len(want) && len(got) == len(want)
	if resume {
		// A restart must prove it resumed rather than recomputed: journals
		// carried completed tasks in, every one of them replayed, and
		// replays + executions account for exactly the whole graph.
		covered := js.replayed+js.executed == wc.graph.Size()
		ok = ok && js.restored > 0 && js.replayed == js.restored && covered
		fmt.Printf("wire-resume %-10s %d tasks over %d processes: %v  sinks=%d/%d restored=%d replayed=%d executed=%d match-serial=%v\n",
			useCase, wc.graph.Size(), ranks, elapsed.Round(time.Millisecond), matches, len(want),
			js.restored, js.replayed, js.executed, ok)
	} else {
		fmt.Printf("wire %-10s %d tasks over %d processes: %v  sinks=%d/%d match-serial=%v\n",
			useCase, wc.graph.Size(), ranks, elapsed.Round(time.Millisecond), matches, len(want), ok)
	}
	if !ok {
		os.Exit(1)
	}
}
