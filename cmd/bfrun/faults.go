// Fault-tolerant execution: -faults runs the use cases on the MPI
// controller over in-process loopback TCP meshes with a deterministic
// peer kill injected, recovers via lineage-ledger replay, and verifies the
// recovered sink digests byte-for-byte against the serial reference.
//
//	bfrun -faults                          # all three use cases
//	bfrun -faults -case render -kill-rank 2 -kill-after 1
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// faultRun is the outcome of one use case under fault injection.
type faultRun struct {
	useCase  string
	ok       bool
	elapsed  time.Duration
	report   mpi.RecoveryReport
	sinksOK  int
	sinksAll int
}

// runFaults executes the selected use cases (all three for useCase "" or
// "all") with one peer killed on the first epoch and reports recovery
// statistics. Exits non-zero if any recovered run diverges from serial.
func runFaults(useCase string, ranks, n, blocks, killRank, killAfter int) {
	cases := []string{"mergetree", "render", "register"}
	if useCase != "" && useCase != "all" {
		cases = []string{useCase}
	}
	failed := false
	for _, uc := range cases {
		r := runFaultCase(uc, ranks, n, blocks, killRank, killAfter)
		status := "MATCH"
		if !r.ok {
			status = "MISMATCH"
			failed = true
		}
		fmt.Printf("faults %-10s %v  epochs=%d lost=%v replayed=%d executed=%d recovery=%v sinks=%d/%d %s\n",
			r.useCase, r.elapsed.Round(time.Millisecond), r.report.Epochs, r.report.LostShards,
			r.report.Replayed, r.report.Executed, r.report.RecoveryTime.Round(time.Millisecond),
			r.sinksOK, r.sinksAll, status)
	}
	if failed {
		os.Exit(1)
	}
}

func runFaultCase(useCase string, ranks, n, blocks, killRank, killAfter int) faultRun {
	wc, err := setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}

	// Serial reference digests.
	ser := core.NewSerial()
	if err := ser.Initialize(wc.graph, nil); err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}
	if err := wc.reg(ser); err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}
	ref, err := ser.Run(wc.initial)
	if err != nil {
		log.Fatalf("bfrun: %s: serial: %v", useCase, err)
	}
	want := make(map[string]bool)
	for _, line := range digestLines(ref) {
		want[line] = true
	}

	// Inputs are consumed by the serial run above, so rebuild them for the
	// recovering run (tasks own their inputs).
	wc, err = setupWireCase(useCase, ranks, n, blocks)
	if err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}
	ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
		MaxAttempts: ranks,
		BaseBackoff: 10 * time.Millisecond,
	}))
	if err := ctrl.Initialize(wc.graph, wc.tmap); err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}
	if err := wc.reg(ctrl); err != nil {
		log.Fatalf("bfrun: %s: %v", useCase, err)
	}
	fp := ctrl.Fingerprint()
	connect := func(epoch, nranks int) ([]fabric.Transport, error) {
		fabs, err := wire.Mesh(nranks, wire.Options{
			Fingerprint:       fp,
			Epoch:             epoch,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  time.Second,
		})
		if err != nil {
			return nil, err
		}
		trs := make([]fabric.Transport, len(fabs))
		for i, f := range fabs {
			trs[i] = f
		}
		return trs, nil
	}
	inject := func(epoch, rank int, tr fabric.Transport) fabric.Transport {
		if epoch != 1 {
			return tr // retry epochs run clean, like a restarted process
		}
		return faultinject.Wrap(tr, rank, faultinject.Plan{
			KillRank:  killRank,
			KillAfter: killAfter,
			Delay:     time.Millisecond,
		})
	}

	start := time.Now()
	out, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
		Connect: connect,
		Inject:  inject,
		Initial: wc.initial,
	})
	elapsed := time.Since(start)
	if err != nil {
		log.Fatalf("bfrun: %s: recovery failed: %v (report %+v)", useCase, err, rep)
	}

	matches := 0
	got := digestLines(out)
	for _, line := range got {
		if want[line] {
			matches++
		}
	}
	return faultRun{
		useCase:  useCase,
		ok:       matches == len(want) && len(got) == len(want),
		elapsed:  elapsed,
		report:   rep,
		sinksOK:  matches,
		sinksAll: len(want),
	}
}
