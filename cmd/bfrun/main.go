// Command bfrun executes one of the paper's three use cases end to end on
// a chosen runtime controller, over synthetic data, and reports timing and
// a correctness check against the serial reference.
//
// Usage:
//
//	bfrun -case mergetree -runtime mpi -shards 8 -n 32
//	bfrun -case render -runtime charm -blocks 8
//	bfrun -case register -runtime legion-spmd
//	bfrun -case register-iter -runtime mpi -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/register"
	"github.com/babelflow/babelflow-go/internal/render"
	"github.com/babelflow/babelflow-go/internal/sim"
	"github.com/babelflow/babelflow-go/internal/trace"
)

func main() {
	var (
		useCase   = flag.String("case", "mergetree", "mergetree | render | register | register-iter")
		runtime   = flag.String("runtime", "mpi", "serial | mpi | original-mpi | charm | legion-spmd | legion-il")
		shards    = flag.Int("shards", 4, "ranks / PEs / shards")
		n         = flag.Int("n", 32, "domain edge length")
		blocks    = flag.Int("blocks", 8, "blocks (power of two)")
		traceTo   = flag.String("trace", "", "write a per-task execution trace (CSV) here")
		whatIfC   = flag.Int("whatif", 0, "with -trace: replay the measured trace on all simulated runtime models at this core count")
		transport = flag.String("transport", "mem", "mem | tcp (tcp forks one worker process per rank)")
		ranks     = flag.Int("ranks", 4, "worker processes for -transport tcp")
		wireRank  = flag.Int("wire-rank", -1, "internal: run as TCP worker for this rank")
		wireAddr  = flag.String("wire-addr", "", "internal: rendezvous address for -wire-rank")
		faults    = flag.Bool("faults", false, "run under fault injection: kill one peer, recover via replay, verify against serial")
		killRank  = flag.Int("kill-rank", 1, "with -faults: the rank to kill")
		killAfter = flag.Int("kill-after", 0, "with -faults: inter-rank messages the victim sends before dying")
		journal   = flag.String("journal", "", "with -transport tcp: persist per-rank lineage journals under this directory")
		resume    = flag.String("resume", "", "restart a crashed -journal run from its directory over TCP and verify sink digests against serial")
		killAll   = flag.Int("kill-all-after", -1, "with -journal: kill EVERY rank (including rank 0) after it sends this many inter-rank messages, seeding a resumable crash")
		wireKill  = flag.Int("wire-kill-after", -1, "internal: worker kills its own transport after this many inter-rank sends")
		wireJnl   = flag.String("wire-journal", "", "internal: worker journal directory")
		wireTier  = flag.String("wire-tier", "auto", "with -transport tcp: transport between co-located ranks (auto | tcp | unix | shm)")
		elastic   = flag.Bool("elastic", false, "run with elastic membership: fork -ranks workers, join -join more mid-run, drain member -drain, verify digests against serial")
		joinN     = flag.Int("join", 0, "with -elastic: workers to join mid-run")
		joinAfter = flag.Duration("join-after", 150*time.Millisecond, "with -elastic: when the joiners are forked")
		drainM    = flag.Int("drain", -1, "with -elastic: member to gracefully drain mid-run (-1 none)")
		drainAft  = flag.Duration("drain-after", 400*time.Millisecond, "with -elastic: when the drain request is sent")
		pace      = flag.Duration("elastic-pace", 20*time.Millisecond, "with -elastic: per-task delay so membership events land mid-run")
		wireGate  = flag.String("wire-gate", "", "internal: run as elastic worker against this membership gate")
	)
	flag.Parse()
	traceCSV = *traceTo
	whatIfCores = *whatIfC

	if *wireGate != "" {
		runElasticWorker(*useCase, *wireGate, *wireTier, *ranks, *n, *blocks, *wireJnl, *pace)
		return
	}
	if *elastic {
		runElasticParent(*useCase, *ranks, *joinN, *joinAfter, *drainM, *drainAft, *n, *blocks, *wireTier, *journal, *pace)
		return
	}
	if *wireRank >= 0 {
		runWireWorker(*useCase, *wireRank, *ranks, *wireAddr, *wireTier, *n, *blocks, *wireJnl, *wireKill)
		return
	}
	if *faults {
		uc := *useCase
		if !isFlagSet("case") {
			uc = "all"
		}
		runFaults(uc, *ranks, *n, *blocks, *killRank, *killAfter)
		return
	}
	if *resume != "" {
		runWireParent(*useCase, *runtime, *ranks, *n, *blocks, *wireTier, *resume, -1, true)
		return
	}
	if *transport == "tcp" || *journal != "" {
		runWireParent(*useCase, *runtime, *ranks, *n, *blocks, *wireTier, *journal, *killAll, false)
		return
	}
	if *transport != "mem" {
		log.Fatalf("bfrun: unknown transport %q", *transport)
	}

	switch *useCase {
	case "mergetree":
		runMergeTree(*runtime, *shards, *n, *blocks)
	case "render":
		runRender(*runtime, *shards, *n, *blocks)
	case "register":
		runRegister(*runtime, *shards)
	case "register-iter":
		runRegisterIter(*runtime, *shards)
	default:
		log.Fatalf("bfrun: unknown use case %q", *useCase)
	}
}

// isFlagSet reports whether the user passed the named flag explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func controller(runtime string, shards int) babelflow.Controller {
	switch runtime {
	case "serial":
		return babelflow.NewSerial()
	case "mpi":
		return babelflow.NewMPI()
	case "original-mpi":
		return babelflow.NewMPI(babelflow.WithInline(true))
	case "charm":
		return babelflow.NewCharm(babelflow.CharmOptions{PEs: shards, LBPeriod: 8})
	case "legion-spmd":
		return babelflow.NewLegionSPMD(babelflow.LegionOptions{})
	case "legion-il":
		return babelflow.NewLegionIndexLaunch(babelflow.LegionOptions{})
	}
	log.Fatalf("bfrun: unknown runtime %q", runtime)
	return nil
}

// traceCSV, when set, receives the per-task execution trace of the run.
var traceCSV string

// whatIfCores, when set together with traceCSV, replays the measured trace
// under every simulated runtime model at that core count.
var whatIfCores int

// instrument wraps a controller's callbacks with the recorder when tracing
// is on; register goes through it.
func maybeTrace(rt string, shards int) (*trace.Recorder, babelflow.Controller) {
	if traceCSV == "" {
		return nil, controller(rt, shards)
	}
	rec := trace.NewRecorder()
	var c babelflow.Controller
	switch rt {
	case "serial":
		c = babelflow.NewSerial()
	case "mpi":
		c = babelflow.NewMPI(babelflow.WithObserver(rec))
	case "original-mpi":
		c = babelflow.NewMPI(babelflow.WithInline(true), babelflow.WithObserver(rec))
	case "charm":
		c = babelflow.NewCharm(babelflow.CharmOptions{PEs: shards, LBPeriod: 8, Observer: rec})
	case "legion-spmd":
		c = babelflow.NewLegionSPMD(babelflow.LegionOptions{Observer: rec})
	case "legion-il":
		c = babelflow.NewLegionIndexLaunch(babelflow.LegionOptions{Observer: rec})
	default:
		log.Fatalf("bfrun: unknown runtime %q", rt)
	}
	return rec, c
}

// writeTrace dumps the recorded spans and prints the trace summary.
func writeTrace(rec *trace.Recorder, g babelflow.TaskGraph) {
	if rec == nil {
		return
	}
	f, err := os.Create(traceCSV)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	spans := rec.Spans()
	if err := trace.WriteCSV(f, spans); err != nil {
		log.Fatal(err)
	}
	sum, err := trace.Summarize(g, spans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d spans -> %s  wall=%v critical-path=%v utilization=%.2f\n",
		sum.Tasks, traceCSV, sum.Wall.Round(time.Microsecond),
		sum.CriticalPath.Round(time.Microsecond), sum.Utilization())
	if whatIfCores > 0 {
		results, err := sim.WhatIf(g, spans, nil, sim.ShaheenII(whatIfCores))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("what-if on %d simulated cores:\n", whatIfCores)
		for _, name := range []string{"IceT", "MPI", "Original MPI", "Charm++", "Legion", "Legion IL"} {
			fmt.Printf("  %-14s %8.3fs (compute %.3fs, overhead %.3fs)\n",
				name, results[name].Makespan, results[name].Compute, results[name].Overhead)
		}
	}
}

func runMergeTree(rt string, shards, n, blocks int) {
	field := data.SyntheticHCCI(n, n, n, 8, 2026)
	decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := mergetree.NewGraph(blocks, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
	rec, c := maybeTrace(rt, shards)
	if err := c.Initialize(graph, babelflow.NewGraphMap(shards, graph)); err != nil {
		log.Fatal(err)
	}
	if rec == nil {
		if err := cfg.Register(c, graph); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := cfg.Register(tracedController{c, rec}, graph); err != nil {
			log.Fatal(err)
		}
	}
	initial, err := cfg.InitialInputs(field, graph)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := c.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	want := mergetree.SerialSegmentation(field, cfg.Threshold)
	mismatches, labeled := 0, 0
	features := make(map[uint64]bool)
	for i := 0; i < blocks; i++ {
		wire, _ := out[graph.SegmentationTask(i)][0].Wire()
		seg, err := mergetree.DeserializeSegmentation(wire)
		if err != nil {
			log.Fatal(err)
		}
		for vid, rep := range seg.Labels {
			labeled++
			features[rep] = true
			if want[vid] != rep {
				mismatches++
			}
		}
	}
	fmt.Printf("mergetree %-12s %d tasks, %d shards: %v  features=%d labeled=%d mismatches=%d\n",
		rt, graph.Size(), shards, elapsed.Round(time.Millisecond), len(features), labeled, mismatches)
	writeTrace(rec, graph)
}

// tracedController interposes the recorder's Wrap on every registered
// callback.
type tracedController struct {
	babelflow.Controller
	rec *trace.Recorder
}

func (t tracedController) RegisterCallback(cb babelflow.CallbackId, fn babelflow.Callback) error {
	return t.Controller.RegisterCallback(cb, t.rec.Wrap(cb, fn))
}

func runRender(rt string, shards, n, blocks int) {
	field := data.SyntheticHCCI(n, n, n, 6, 7)
	decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
	if err != nil {
		log.Fatal(err)
	}
	cfg := render.Config{
		Decomp: decomp,
		Camera: render.Camera{Width: n, Height: n},
		TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
	}
	graph, err := graphs.NewReduction(blocks, 2)
	if err != nil {
		log.Fatal(err)
	}
	c := controller(rt, shards)
	if err := c.Initialize(graph, babelflow.NewModuloMap(shards, graph.Size())); err != nil {
		log.Fatal(err)
	}
	if err := cfg.RegisterReduction(c, graph); err != nil {
		log.Fatal(err)
	}
	initial, err := cfg.InitialInputs(field, graph.LeafIds())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := c.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	wire, _ := out[graph.Root()][0].Wire()
	frame, err := render.DeserializeImage(wire)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := render.NewIceT(cfg).RenderAndCompositeTree(field)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render    %-12s %d tasks, %d shards: %v  matches-icet=%v\n",
		rt, graph.Size(), shards, elapsed.Round(time.Millisecond), frame.Equal(direct))
}

func runRegister(rt string, shards int) {
	cfg := register.Config{GridW: 3, GridH: 3, Tile: 24, Overlap: 0.2, Jitter: 2}
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
	graph, err := cfg.Graph()
	if err != nil {
		log.Fatal(err)
	}
	c := controller(rt, shards)
	if err := c.Initialize(graph, babelflow.NewModuloMap(shards, graph.Size())); err != nil {
		log.Fatal(err)
	}
	if err := cfg.Register(c, graph); err != nil {
		log.Fatal(err)
	}
	initial, err := cfg.InitialInputs(graph, tiles)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := c.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var ests []register.Estimate
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			wire, _ := out[graph.ProcessId(x, y)][0].Wire()
			e, err := register.DeserializeEstimate(wire)
			if err != nil {
				log.Fatal(err)
			}
			ests = append(ests, e)
		}
	}
	pos, err := register.Solve(cfg.GridW, cfg.GridH, ests)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			tl := tiles[y*cfg.GridW+x]
			if (pos[y][x] == register.Position{X: tl.TrueX - tiles[0].TrueX, Y: tl.TrueY - tiles[0].TrueY}) {
				exact++
			}
		}
	}
	fmt.Printf("register  %-12s %d tasks, %d shards: %v  exact=%d/%d\n",
		rt, graph.Size(), shards, elapsed.Round(time.Millisecond), exact, len(tiles))
}

// runRegisterIter runs the iterative registration refinement: the
// registration dataflow unrolled under core.Iterate, converging once the
// pairwise estimates stop moving. The solved positions must still match
// the ground truth exactly.
func runRegisterIter(rt string, shards int) {
	cfg := register.Config{GridW: 3, GridH: 3, Tile: 24, Overlap: 0.2, Jitter: 2}
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
	ig, err := cfg.Iterative(8)
	if err != nil {
		log.Fatal(err)
	}
	c := controller(rt, shards)
	if err := c.Initialize(ig, babelflow.NewIterativeMap(shards, ig)); err != nil {
		log.Fatal(err)
	}
	if err := cfg.RegisterIter(c, ig); err != nil {
		log.Fatal(err)
	}
	initial, err := cfg.IterInitial(tiles)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := c.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	iter, sinks, err := ig.Final(out)
	if err != nil {
		log.Fatal(err)
	}
	ests, err := cfg.IterEstimates(sinks)
	if err != nil {
		log.Fatal(err)
	}
	pos, err := register.Solve(cfg.GridW, cfg.GridH, ests)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			tl := tiles[y*cfg.GridW+x]
			if (pos[y][x] == register.Position{X: tl.TrueX - tiles[0].TrueX, Y: tl.TrueY - tiles[0].TrueY}) {
				exact++
			}
		}
	}
	fmt.Printf("register-iter %-12s %d tasks, %d shards: %v  converged=%d/%d exact=%d/%d\n",
		rt, ig.Size(), shards, elapsed.Round(time.Millisecond), iter+1, ig.MaxIter(), exact, len(tiles))
}
