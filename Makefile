GO ?= go

.PHONY: check build vet test race deprecations bench-fastpath bench-wire bench-sched bench-faults bench-journal bench-serve bench-iterate figures smoke-wire smoke-faults smoke-resume smoke-serve smoke-iterate smoke-elastic fuzz-wire perf-smoke

## check: the CI gate — vet, the deprecation sweep, build, the full test
## suite under the race detector, the fault-injection smoke (kill one
## peer, recover, verify the sinks against serial), the resume smoke
## (kill every rank, restart from the journals, verify the sinks against
## serial), the service smoke (bfserve on a loopback port, the use cases
## submitted over HTTP, digests verified, drained) and the iterative-loop
## smoke (register-iter over 4 real processes on the shm tier, plus a
## kill-all/resume cycle mid-iteration) and the elastic smoke (2 real
## processes, 2 more joining mid-run, 1 gracefully drained, digests
## verified against serial).
check: vet deprecations build race smoke-faults smoke-resume smoke-serve smoke-iterate smoke-elastic

## deprecations: the API-freshness gate — after the functional-options
## migration no deprecated symbol may remain (or be newly introduced).
deprecations:
	@! grep -rn "Deprecated:" --include='*.go' . || \
		(echo "deprecations: deprecated symbols remain (listed above)"; exit 1)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-fastpath: regenerate the message fast-path microbenchmark report
## (BENCH_fastpath.json; the baseline_seed section is preserved).
bench-fastpath:
	$(GO) run ./cmd/bfbench -fastpath

## bench-wire: regenerate the transport benchmark report — in-memory fabric
## vs loopback sockets at every tier (BENCH_net.json; the baseline_seed
## section is preserved).
bench-wire:
	$(GO) run ./cmd/bfbench -wire

## bench-sched: regenerate the scheduler makespan report — FIFO vs
## critical-path priority vs priority+stealing on a balanced and an
## imbalanced figure workload (BENCH_sched.json; baseline_seed preserved).
bench-sched:
	$(GO) run ./cmd/bfbench -sched

## bench-faults: regenerate the recovery benchmark report — figure
## workloads on 4 ranks over loopback TCP, failure free vs one peer killed
## on the first epoch (BENCH_faults.json; baseline_seed preserved).
bench-faults:
	$(GO) run ./cmd/bfbench -faults

## figures: regenerate the paper's evaluation figures.
figures:
	$(GO) run ./cmd/bfbench

## smoke-wire: run every use case across 4 real worker processes over the
## TCP transport and verify the sinks against the serial reference.
smoke-wire:
	$(GO) build -o bin/bfrun ./cmd/bfrun
	./bin/bfrun -case mergetree -runtime mpi -transport tcp -ranks 4
	./bin/bfrun -case render   -runtime mpi -transport tcp -ranks 4
	./bin/bfrun -case register -runtime mpi -transport tcp -ranks 4

## smoke-faults: run every use case on 4 ranks with one peer killed on the
## first epoch, recover via lineage-ledger replay, and verify the recovered
## sink digests byte-for-byte against the serial reference.
smoke-faults:
	$(GO) run ./cmd/bfrun -faults

## bench-journal: regenerate the checkpoint/restart benchmark report —
## journaling overhead per fsync policy plus resume latency over a
## completed journal (BENCH_journal.json; baseline_seed preserved).
bench-journal:
	$(GO) run ./cmd/bfbench -journal

## smoke-resume: for every use case, kill EVERY rank (including rank 0) of
## a journaled 4-process TCP run mid-flight, then restart over the same
## journal directory and verify the resumed sink digests byte-for-byte
## against the serial reference — replaying the journaled prefix instead of
## re-executing it.
smoke-resume:
	$(GO) build -o bin/bfrun ./cmd/bfrun
	@set -e; for c in mergetree render register; do \
		dir=$$(mktemp -d); \
		./bin/bfrun -case $$c -journal $$dir -kill-all-after 1 -ranks 4; \
		./bin/bfrun -case $$c -resume $$dir -ranks 4; \
		rm -rf $$dir; \
	done

## smoke-serve: start a real bfserve instance on a loopback port, submit
## the three use cases over HTTP, verify every digest against the one-shot
## serial reference, drain and shut down.
smoke-serve:
	$(GO) build -o bin/bfserve ./cmd/bfserve
	./bin/bfserve -smoke

## bench-serve: regenerate the resident-service benchmark report — warm
## mpi.Service.Submit vs cold one-shot runs (in-memory and socket-mesh
## tiers) plus sustained admission-path throughput (BENCH_serve.json;
## baseline_seed preserved).
bench-serve:
	$(GO) run ./cmd/bfbench -serve

## smoke-iterate: run the iterative registration refinement loop
## (core.Iterate) across 4 real worker processes on the shared-memory
## tier, verifying the converged sinks against the serial reference, then
## kill EVERY rank of a journaled run mid-iteration and resume it —
## replayed loop state must splice with live execution to the same bytes.
smoke-iterate:
	$(GO) build -o bin/bfrun ./cmd/bfrun
	./bin/bfrun -case register-iter -runtime mpi -transport tcp -ranks 4 -wire-tier shm
	@set -e; dir=$$(mktemp -d); \
	./bin/bfrun -case register-iter -journal $$dir -kill-all-after 1 -ranks 4; \
	./bin/bfrun -case register-iter -resume $$dir -ranks 4; \
	rm -rf $$dir

## bench-iterate: regenerate the loop-combinator benchmark report — a
## K-iteration chain under core.Iterate vs the same chain hand-unrolled
## into a static DAG (BENCH_iterate.json; baseline_seed preserved).
bench-iterate:
	$(GO) run ./cmd/bfbench -iterate

## smoke-elastic: live membership over real processes — start the merge
## tree on 2 workers, fork 2 joiners mid-run, gracefully drain one member
## (its journaled lineage is adopted and replayed by the survivors), and
## verify the final sink digests byte-for-byte against the serial
## reference.
smoke-elastic:
	$(GO) build -o bin/bfrun ./cmd/bfrun
	@set -e; dir=$$(mktemp -d); \
	./bin/bfrun -case mergetree -elastic -ranks 2 -join 2 -join-after 150ms \
		-drain 1 -drain-after 400ms -journal $$dir -wire-tier tcp; \
	rm -rf $$dir

## fuzz-wire: short fuzz smoke of the wire frame decoder (longer runs:
## go test -fuzz=FuzzFrameDecode ./internal/wire).
fuzz-wire:
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/wire

## perf-smoke: the CI perf job — every wire benchmark (all transport
## tiers), the shm ring benchmarks again under the race detector, and
## every journal append benchmark (all fsync policies) at a fixed
## iteration count so hot-path regressions fail loudly, then the wire
## package under the race detector.
perf-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=100x ./internal/wire
	$(GO) test -race -run='^$$' -bench=Shm -benchtime=100x ./internal/wire
	$(GO) test -run='^$$' -bench=. -benchtime=100x ./internal/journal
	$(GO) test -race -count=1 ./internal/wire
