GO ?= go

.PHONY: check build vet test race bench-fastpath figures

## check: the CI gate — vet, build, and the full test suite under the race
## detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-fastpath: regenerate the message fast-path microbenchmark report
## (BENCH_fastpath.json; the baseline_seed section is preserved).
bench-fastpath:
	$(GO) run ./cmd/bfbench -fastpath

## figures: regenerate the paper's evaluation figures.
figures:
	$(GO) run ./cmd/bfbench
