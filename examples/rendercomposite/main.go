// Command rendercomposite runs the paper's second use case (§V-B): a
// two-stage visualization pipeline that volume-renders a block-decomposed
// synthetic dataset and composites the partial images, with both standard
// compositing dataflows — a k-way reduction (Listing 1) and binary swap
// (Fig. 7). It verifies the dataflow results against an IceT-style direct
// compositor and against the serial full-volume render, and writes the
// final frame as a PPM image (the Fig. 10d analogue).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/render"
)

func main() {
	var (
		n      = flag.Int("n", 64, "domain edge length")
		blocks = flag.Int("blocks", 8, "number of blocks (power of two)")
		size   = flag.Int("size", 256, "output image edge length")
		out    = flag.String("o", "composite.ppm", "output PPM path")
		shards = flag.Int("shards", 4, "ranks")
	)
	flag.Parse()

	field := data.SyntheticHCCI(*n, *n, *n, 6, 7)
	decomp, err := data.NewDecomposition(*n, *n, *n, 2, 2, *blocks/4)
	if err != nil {
		log.Fatal(err)
	}
	cfg := render.Config{
		Decomp: decomp,
		Camera: render.Camera{Width: *size, Height: *size},
		TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
	}

	// Reference: serial full render and IceT-style direct compositing.
	serial := render.RenderFull(cfg.Camera, cfg.TF, field)
	icet := render.NewIceT(cfg)
	direct, err := icet.RenderAndCompositeTree(field)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial vs IceT tree composite: max|diff| = %.2e\n", maxDiff(serial, direct))

	// Reduction dataflow on the MPI controller.
	red, err := graphs.NewReduction(*blocks, 2)
	if err != nil {
		log.Fatal(err)
	}
	mc := babelflow.NewMPI(babelflow.WithWorkers(*shards))
	if err := mc.Initialize(red, babelflow.NewModuloMap(*shards, red.Size())); err != nil {
		log.Fatal(err)
	}
	if err := cfg.RegisterReduction(mc, red); err != nil {
		log.Fatal(err)
	}
	initial, err := cfg.InitialInputs(field, red.LeafIds())
	if err != nil {
		log.Fatal(err)
	}
	results, err := mc.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	wire, _ := results[red.Root()][0].Wire()
	frame, err := render.DeserializeImage(wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction dataflow vs IceT: identical = %v\n", frame.Equal(direct))

	// Binary-swap dataflow on the Charm++ controller.
	bs, err := graphs.NewBinarySwap(*blocks)
	if err != nil {
		log.Fatal(err)
	}
	cc := babelflow.NewCharm(babelflow.CharmOptions{PEs: *shards, LBPeriod: 4})
	if err := cc.Initialize(bs, nil); err != nil {
		log.Fatal(err)
	}
	if err := cfg.RegisterBinarySwap(cc, bs); err != nil {
		log.Fatal(err)
	}
	initial, err = cfg.InitialInputs(field, bs.LeafIds())
	if err != nil {
		log.Fatal(err)
	}
	results, err = cc.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	var tiles []*render.Image
	for _, id := range bs.TileIds() {
		w, _ := results[id][0].Wire()
		tile, err := render.DeserializeImage(w)
		if err != nil {
			log.Fatal(err)
		}
		tiles = append(tiles, tile)
	}
	swapFrame, err := render.AssembleTiles(tiles, *size, *size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary-swap dataflow vs serial: max|diff| = %.2e\n", maxDiff(serial, swapFrame))

	if err := os.WriteFile(*out, frame.WritePPM(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%dx%d)\n", *out, *size, *size)
}

func maxDiff(a, b *render.Image) float64 {
	var m float64
	for i := range a.Pixels {
		m = math.Max(m, math.Abs(float64(a.Pixels[i]-b.Pixels[i])))
	}
	return m
}
