// Command quickstart is the minimal BabelFlow program, mirroring Listing 1
// of the paper: describe an algorithm as a task graph (here: global
// statistics of block-decomposed data via a k-way reduction), register one
// callback per task type, and run the identical dataflow on every runtime
// controller.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	babelflow "github.com/babelflow/babelflow-go"
)

// stats is the payload exchanged by the reduction: count, sum, min, max.
type stats struct {
	count    uint64
	sum      float64
	min, max float64
}

func (s stats) encode() babelflow.Payload {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:], s.count)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s.sum))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(s.min))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(s.max))
	return babelflow.Buffer(b)
}

func decode(p babelflow.Payload) stats {
	return stats{
		count: binary.LittleEndian.Uint64(p.Data[0:]),
		sum:   math.Float64frombits(binary.LittleEndian.Uint64(p.Data[8:])),
		min:   math.Float64frombits(binary.LittleEndian.Uint64(p.Data[16:])),
		max:   math.Float64frombits(binary.LittleEndian.Uint64(p.Data[24:])),
	}
}

func merge(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
	acc := decode(in[0])
	for _, p := range in[1:] {
		s := decode(p)
		acc.count += s.count
		acc.sum += s.sum
		acc.min = math.Min(acc.min, s.min)
		acc.max = math.Max(acc.max, s.max)
	}
	return []babelflow.Payload{acc.encode()}, nil
}

// localStats is the leaf task: reduce one raw data block to its statistics.
func localStats(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
	s := stats{min: math.Inf(1), max: math.Inf(-1)}
	data := in[0].Data
	for i := 0; i+8 <= len(data); i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
		s.count++
		s.sum += v
		s.min = math.Min(s.min, v)
		s.max = math.Max(s.max, v)
	}
	return []babelflow.Payload{s.encode()}, nil
}

func main() {
	const blocks = 16
	const valuesPerBlock = 1024

	// Synthetic block-decomposed data: block b holds values b + i/n.
	initialFor := func(graph *babelflow.Reduction) map[babelflow.TaskId][]babelflow.Payload {
		initial := make(map[babelflow.TaskId][]babelflow.Payload)
		for b, id := range graph.LeafIds() {
			buf := make([]byte, 8*valuesPerBlock)
			for i := 0; i < valuesPerBlock; i++ {
				v := float64(b) + float64(i)/valuesPerBlock
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			initial[id] = []babelflow.Payload{babelflow.Buffer(buf)}
		}
		return initial
	}

	// Reduction tree + task map, per Listing 1.
	graph, err := babelflow.NewReduction(blocks, 4)
	if err != nil {
		log.Fatal(err)
	}
	taskMap := babelflow.NewModuloMap(4, graph.Size())

	controllers := []struct {
		name string
		c    babelflow.Controller
	}{
		{"serial", babelflow.NewSerial()},
		{"mpi", babelflow.NewMPI(babelflow.WithWorkers(4))},
		{"charm++", babelflow.NewCharm(babelflow.CharmOptions{PEs: 4, LBPeriod: 4})},
		{"legion-spmd", babelflow.NewLegionSPMD(babelflow.LegionOptions{})},
		{"legion-il", babelflow.NewLegionIndexLaunch(babelflow.LegionOptions{})},
	}
	for _, entry := range controllers {
		if err := entry.c.Initialize(graph, taskMap); err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		// One callback per named role of the reduction prototype.
		if err := babelflow.RegisterCallbacks(entry.c, graph, map[babelflow.Role]babelflow.Callback{
			babelflow.RoleLeaf:  localStats, // per-block statistics
			babelflow.RoleInner: merge,      // internal nodes
			babelflow.RoleRoot:  merge,      // root
		}); err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		out, err := entry.c.Run(initialFor(graph))
		if err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		s := decode(out[graph.Root()][0])
		fmt.Printf("%-12s count=%d mean=%.4f min=%.3f max=%.6f\n",
			entry.name, s.count, s.sum/float64(s.count), s.min, s.max)
	}
}
