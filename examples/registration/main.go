// Command registration runs the paper's third use case (§V-C): alignment
// of a grid of overlapping 3-D microscopy tiles with the neighbor dataflow
// of Fig. 8. Synthetic tiles are cut from one continuous specimen at known
// ground-truth offsets (with stage jitter the registration must recover),
// the dataflow estimates all pairwise displacements by normalized
// cross-correlation, and the final solve is validated against the truth.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/register"
)

func main() {
	var (
		gridW   = flag.Int("gw", 3, "acquisition grid width")
		gridH   = flag.Int("gh", 3, "acquisition grid height")
		tile    = flag.Int("tile", 24, "tile edge length (voxels)")
		overlap = flag.Float64("overlap", 0.15, "nominal overlap fraction")
		jitter  = flag.Int("jitter", 2, "max stage jitter (voxels)")
		seed    = flag.Uint64("seed", 11, "specimen seed")
		shards  = flag.Int("shards", 4, "ranks")
		dotPath = flag.String("dot", "", "write the neighbor task graph here")
	)
	flag.Parse()

	cfg := register.Config{GridW: *gridW, GridH: *gridH, Tile: *tile, Overlap: *overlap, Jitter: *jitter}
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, *seed)
	graph, err := cfg.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registering %dx%d tiles of %d^3 voxels, %.0f%% overlap, jitter <= %d\n",
		cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap*100, cfg.Jitter)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		err = babelflow.WriteDot(f, graph, babelflow.DotOptions{
			Name:        "registration",
			Labels:      map[babelflow.CallbackId]string{0: "read", 1: "correlate"},
			RankByLevel: true,
		})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	c := babelflow.NewMPI(babelflow.WithWorkers(*shards))
	if err := c.Initialize(graph, babelflow.NewModuloMap(*shards, graph.Size())); err != nil {
		log.Fatal(err)
	}
	if err := cfg.Register(c, graph); err != nil {
		log.Fatal(err)
	}
	initial, err := cfg.InitialInputs(graph, tiles)
	if err != nil {
		log.Fatal(err)
	}
	out, err := c.Run(initial)
	if err != nil {
		log.Fatal(err)
	}

	var ests []register.Estimate
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			wire, _ := out[graph.ProcessId(x, y)][0].Wire()
			e, err := register.DeserializeEstimate(wire)
			if err != nil {
				log.Fatal(err)
			}
			ests = append(ests, e)
		}
	}
	pos, err := register.Solve(cfg.GridW, cfg.GridH, ests)
	if err != nil {
		log.Fatal(err)
	}

	exact := 0
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			tl := tiles[y*cfg.GridW+x]
			truth := register.Position{X: tl.TrueX - tiles[0].TrueX, Y: tl.TrueY - tiles[0].TrueY}
			mark := "MISMATCH"
			if pos[y][x] == truth {
				mark = "ok"
				exact++
			}
			fmt.Printf("tile (%d,%d): solved (%4d,%4d)  truth (%4d,%4d)  %s\n",
				x, y, pos[y][x].X, pos[y][x].Y, truth.X, truth.Y, mark)
		}
	}
	fmt.Printf("%d/%d tiles placed exactly (chain solve)\n", exact, len(tiles))

	// The least-squares solve uses every pairwise estimate (not just a
	// spanning tree), averaging out noisy correlations.
	lsq, err := register.SolveLeastSquares(cfg.GridW, cfg.GridH, ests, 0)
	if err != nil {
		log.Fatal(err)
	}
	exactLSQ := 0
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			tl := tiles[y*cfg.GridW+x]
			if (lsq[y][x] == register.Position{X: tl.TrueX - tiles[0].TrueX, Y: tl.TrueY - tiles[0].TrueY}) {
				exactLSQ++
			}
		}
	}
	fmt.Printf("%d/%d tiles placed exactly (least-squares solve)\n", exactLSQ, len(tiles))
}
