// Command insitu demonstrates the coupling mode that motivates the paper:
// in-situ analysis embedded in a running simulation. A mock simulation
// advances a scalar field over several timesteps with one goroutine per
// MPI rank; at every step each rank hands ONLY its local blocks to its
// shard of the analysis dataflow (here: the merge-tree feature extraction)
// and continues simulating while the per-rank controllers exchange what
// they need among themselves — no global driver, no gathering of the data.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/mergetree"
)

func main() {
	var (
		n     = flag.Int("n", 24, "domain edge length")
		ranks = flag.Int("ranks", 4, "simulation ranks")
		steps = flag.Int("steps", 3, "simulation timesteps")
	)
	flag.Parse()

	decomp, err := data.NewDecomposition(*n, *n, *n, 2, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := mergetree.NewGraph(decomp.Blocks(), 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
	taskMap := babelflow.NewGraphMap(*ranks, graph)

	// blockOwner mimics the simulation's domain decomposition: the rank
	// that owns a block is the rank of the leaf task consuming it, so the
	// analysis needs no data movement to start.
	blockOwner := func(b int) int { return int(taskMap.Shard(graph.LeafTask(b))) }

	for step := 0; step < *steps; step++ {
		// The simulation state of this timestep: the feature field drifts
		// with the step number.
		field := data.SyntheticHCCI(*n, *n, *n, 6, uint64(100+step))

		// One in-situ group per analysis invocation; each rank registers
		// the callbacks and runs only its shard.
		group, err := babelflow.NewInSituGroup(graph, taskMap)
		if err != nil {
			log.Fatal(err)
		}
		if err := cfg.Register(group, graph); err != nil {
			log.Fatal(err)
		}

		var wg sync.WaitGroup
		features := make(map[uint64]bool)
		var mu sync.Mutex
		for r := 0; r < *ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				// The rank extracts ONLY its local blocks from "its" part
				// of the simulation state.
				local := make(map[babelflow.TaskId][]babelflow.Payload)
				for b := 0; b < decomp.Blocks(); b++ {
					if blockOwner(b) != rank {
						continue
					}
					blk, err := decomp.Extract(field, b)
					if err != nil {
						log.Fatal(err)
					}
					local[graph.LeafTask(b)] = []babelflow.Payload{babelflow.Object(blk)}
				}
				shard, err := group.Shard(rank)
				if err != nil {
					log.Fatal(err)
				}
				// A deadline bounds how long the simulation will wait for the
				// analysis: a stuck dataflow cancels (with an error testable
				// against babelflow.ErrCancelled) instead of stalling the run.
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				out, err := shard.RunContext(ctx, local)
				cancel()
				if err != nil {
					log.Fatalf("rank %d: %v", rank, err)
				}
				// Each rank consumes the segmentations of its own blocks —
				// e.g. to steer the simulation — without any global gather.
				mu.Lock()
				defer mu.Unlock()
				for _, ps := range out {
					wire, _ := ps[0].Wire()
					seg, err := mergetree.DeserializeSegmentation(wire)
					if err != nil {
						log.Fatal(err)
					}
					for _, rep := range seg.Labels {
						features[rep] = true
					}
				}
			}(r)
		}
		wg.Wait()
		fmt.Printf("step %d: in-situ analysis on %d ranks found %d features\n",
			step, *ranks, len(features))
	}
}
