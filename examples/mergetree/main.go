// Command mergetree runs the paper's first use case (§V-A) end to end:
// parallel segmented merge trees for topological feature extraction on a
// synthetic combustion-like dataset. It builds the Fig. 5 dataflow, runs it
// on the MPI and Charm++ controllers, verifies both against the serial
// global computation, writes the task graph as mergetree.dot, and reports
// the extracted features (the Fig. 4 analogue).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/mergetree"
)

func main() {
	var (
		n         = flag.Int("n", 32, "domain edge length (n^3 grid points)")
		blocks    = flag.Int("blocks", 8, "number of blocks (power of the valence)")
		valence   = flag.Int("valence", 2, "reduction fan-in")
		threshold = flag.Float64("threshold", 0.3, "feature threshold")
		features  = flag.Int("features", 8, "synthetic ignition kernels")
		seed      = flag.Uint64("seed", 2026, "dataset seed")
		dotPath   = flag.String("dot", "mergetree.dot", "write the task graph here ('' to skip)")
		shards    = flag.Int("shards", 4, "ranks / PEs")
	)
	flag.Parse()

	field := data.SyntheticHCCI(*n, *n, *n, *features, *seed)
	bpa := blocksPerAxis(*blocks)
	decomp, err := data.NewDecomposition(*n, *n, *n, bpa[0], bpa[1], bpa[2])
	if err != nil {
		log.Fatal(err)
	}
	graph, err := mergetree.NewGraph(*blocks, *valence)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mergetree.Config{Decomp: decomp, Threshold: float32(*threshold)}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		err = babelflow.WriteDot(f, graph, babelflow.DotOptions{
			Name: "mergetree",
			Labels: map[babelflow.CallbackId]string{
				mergetree.CBLocal: "local", mergetree.CBJoin: "join", mergetree.CBRelay: "relay",
				mergetree.CBCorrection: "correction", mergetree.CBSegmentation: "segmentation",
			},
			RankByLevel: true,
		})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task graph (%d tasks) written to %s\n", graph.Size(), *dotPath)
	}

	want := mergetree.SerialSegmentation(field, cfg.Threshold)
	fmt.Printf("serial reference: %d labeled vertices\n", len(want))

	// Persistence hierarchy of the global tree: how many features survive
	// increasing simplification (the noise-robust view of Fig. 4).
	global := mergetree.FromField(field, 0, 0, 0, *n, *n, cfg.Threshold)
	for _, p := range []float32{0, 0.05, 0.2, 0.5} {
		fmt.Printf("features with persistence >= %.2f: %d\n", p, global.FeatureCount(p))
	}

	for _, entry := range []struct {
		name string
		c    babelflow.Controller
	}{
		{"mpi", babelflow.NewMPI(babelflow.WithWorkers(*shards))},
		{"charm++", babelflow.NewCharm(babelflow.CharmOptions{PEs: *shards, LBPeriod: 8})},
	} {
		if err := entry.c.Initialize(graph, babelflow.NewGraphMap(*shards, graph)); err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		if err := cfg.Register(entry.c, graph); err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		initial, err := cfg.InitialInputs(field, graph)
		if err != nil {
			log.Fatal(err)
		}
		out, err := entry.c.Run(initial)
		if err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}

		featureSet := make(map[uint64]int)
		labeled, mismatches := 0, 0
		for i := 0; i < *blocks; i++ {
			wire, _ := out[graph.SegmentationTask(i)][0].Wire()
			seg, err := mergetree.DeserializeSegmentation(wire)
			if err != nil {
				log.Fatal(err)
			}
			for vid, rep := range seg.Labels {
				featureSet[rep]++
				labeled++
				if want[vid] != rep {
					mismatches++
				}
			}
		}
		fmt.Printf("%-8s features=%d labeled=%d mismatches-vs-serial=%d\n",
			entry.name, len(featureSet), labeled, mismatches)
	}
}

// blocksPerAxis factors a block count into a near-cubic grid.
func blocksPerAxis(blocks int) [3]int {
	out := [3]int{1, 1, 1}
	axis := 0
	for rem := blocks; rem > 1; {
		for _, f := range []int{2, 3, 5, 7} {
			if rem%f == 0 {
				out[axis%3] *= f
				axis++
				rem /= f
				break
			}
		}
		if rem == 1 {
			break
		}
		if rem%2 != 0 && rem%3 != 0 && rem%5 != 0 && rem%7 != 0 {
			out[axis%3] *= rem
			break
		}
	}
	return out
}
