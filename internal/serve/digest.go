package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"github.com/babelflow/babelflow-go/internal/core"
)

// SinkDigest reduces a run's sink outputs to a stable hex digest: the
// payloads' wire forms hashed in (task id, slot) order. Two runs of the
// same program are byte-identical exactly when their digests match — the
// service's conformance currency, cheap enough to compute per run and
// small enough to ship in a status response.
func SinkDigest(out map[core.TaskId][]core.Payload) (string, error) {
	ids := make([]core.TaskId, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	h := sha256.New()
	var scratch [8]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(scratch[:], uint64(id))
		h.Write(scratch[:])
		for slot, p := range out[id] {
			w, err := p.Wire()
			if err != nil {
				return "", fmt.Errorf("serve: sink %d slot %d: %w", id, slot, err)
			}
			binary.LittleEndian.PutUint64(scratch[:], uint64(slot))
			h.Write(scratch[:])
			binary.LittleEndian.PutUint64(scratch[:], uint64(len(w)))
			h.Write(scratch[:])
			h.Write(w)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// releaseSinks drops every sink payload reference after digesting.
func releaseSinks(out map[core.TaskId][]core.Payload) {
	for _, ps := range out {
		for _, p := range ps {
			p.Release()
		}
	}
}
