package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServerDrainAdmission covers the drain admission contract: pinned
// submissions to a draining rank are shed with ErrDraining, unpinned
// submissions are remapped onto healthy ranks (with byte-identical
// digests), and the metrics mirror the draining set and hand-off counts.
func TestServerDrainAdmission(t *testing.T) {
	reg := DefaultRegistry()
	want, err := reg.ReferenceDigest("reduction", Params{"blocks": 8, "payload": 32})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewServer(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Drain(1); err != nil {
		t.Fatalf("drain 1: %v", err)
	}
	if err := s.Drain(1); err != nil {
		t.Fatalf("drain is not idempotent: %v", err)
	}
	if err := s.Drain(0); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining the last rank: got %v, want ErrDraining", err)
	}

	// Pinned to the draining rank: shed at admission, typed.
	if _, err := s.Submit("reduction", Params{"blocks": 8, "payload": 32, "pin": 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("pin to draining rank: got %v, want ErrDraining", err)
	}

	// Pinned to a healthy rank: runs, and matches the serial reference.
	st := submitAndWait(t, s, "reduction", Params{"blocks": 8, "payload": 32, "pin": 0})
	if st.State != StateDone || st.Digest != want {
		t.Fatalf("pinned run: state %s digest %s (want done/%s): %s", st.State, st.Digest, want, st.Error)
	}

	// Unpinned: the placement layer hands the run off the draining rank.
	st = submitAndWait(t, s, "reduction", Params{"blocks": 8, "payload": 32})
	if st.State != StateDone || st.Digest != want {
		t.Fatalf("remapped run: state %s digest %s (want done/%s): %s", st.State, st.Digest, want, st.Error)
	}

	m := s.Metrics()
	if len(m.DrainingRanks) != 1 || m.DrainingRanks[0] != 1 {
		t.Fatalf("draining ranks %v, want [1]", m.DrainingRanks)
	}
	if m.HandoffRuns == 0 || m.HandoffTasks == 0 {
		t.Fatalf("hand-off counters not advanced: runs=%d tasks=%d", m.HandoffRuns, m.HandoffTasks)
	}

	if err := s.Undrain(1); err != nil {
		t.Fatalf("undrain: %v", err)
	}
	if d := s.Draining(); len(d) != 0 {
		t.Fatalf("draining set after undrain: %v", d)
	}
	if _, err := s.Submit("reduction", Params{"blocks": 8, "payload": 32, "pin": 2}); err == nil {
		t.Fatal("pin outside the fabric was admitted")
	}
}

// TestServerDrainHTTP drives the drain flow over the control plane:
// POST /drain marks the rank, /healthz reports degraded while the fence is
// in flight, a racing pinned submission gets 429 + Retry-After, and the
// fence latency lands in /metrics once the rank quiesces.
func TestServerDrainHTTP(t *testing.T) {
	s, err := NewServer(Config{Ranks: 2, Registry: slowRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			json.NewEncoder(&buf).Encode(body)
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	// Park a run on rank 1 so the drain fence stays open long enough to
	// observe the degraded health state.
	resp, body := post("/submit", SubmitRequest{Program: "slow", Params: Params{"sleep_ms": 300, "pin": 1}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var queued RunStatus
	json.Unmarshal(body, &queued)

	// Give the dispatcher a moment to move the run onto the fabric.
	deadline := time.Now().Add(2 * time.Second)
	for s.svc.RankActive(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned run never became active on rank 1")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if resp, body = post("/drain/1", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/drain/9", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("drain of bogus rank: %d %s", resp.StatusCode, body)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining []int  `json:"draining"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health.Status != "degraded" {
		t.Fatalf("healthz during fence: %q, want degraded", health.Status)
	}
	if len(health.Draining) != 1 || health.Draining[0] != 1 {
		t.Fatalf("healthz draining %v, want [1]", health.Draining)
	}

	// A submission racing the fence onto the draining rank is shed, typed.
	resp, body = post("/submit", SubmitRequest{Program: "slow", Params: Params{"pin": 1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pinned submit during drain: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Wait out the parked run; the fence closes and health recovers.
	if _, err := s.Wait(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for s.Fencing() {
		if time.Now().After(deadline) {
			t.Fatal("drain fence never closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m := s.Metrics()
	if m.Drains != 1 || m.DrainLatencyMs <= 0 {
		t.Fatalf("drain metrics: drains=%d latency=%vms", m.Drains, m.DrainLatencyMs)
	}
	if resp, body = post("/undrain/1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: %d %s", resp.StatusCode, body)
	}
}
