// Program registry: the named dataflows a bfserve instance is willing to
// execute. A submission names a program plus integer parameters; the
// program builds a fresh mpi.Submission per run — graph, callbacks and
// newly allocated external inputs (runs consume their inputs).
//
// Two families ship by default: synthetic prototypes over the figure
// graphs (reduction, broadcast, k-way merge, binary swap) with a
// deterministic hash-mix callback, sized by parameters — the service
// benchmark and smoke currency; and the paper's use cases (mergetree,
// render, register, plus the iterative register-iter refinement loop)
// wired exactly as cmd/bfrun wires them.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/register"
	"github.com/babelflow/babelflow-go/internal/render"
)

// Params carries a submission's integer knobs (graph size, payload bytes,
// …). Missing keys fall back to per-program defaults.
type Params map[string]int

// get returns p[key] or def when absent or non-positive.
func (p Params) get(key string, def int) int {
	if v, ok := p[key]; ok && v > 0 {
		return v
	}
	return def
}

// Program is one named dataflow the service can run.
type Program struct {
	// Name is the submission key.
	Name string
	// About is a one-line description surfaced by the HTTP control plane.
	About string
	// Build constructs a fresh submission for one run.
	Build func(p Params) (mpi.Submission, error)
}

// Registry maps program names to builders.
type Registry struct {
	byName map[string]Program
	names  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Program)}
}

// Add registers a program, replacing any previous holder of the name.
func (r *Registry) Add(p Program) {
	if _, dup := r.byName[p.Name]; !dup {
		r.names = append(r.names, p.Name)
		sort.Strings(r.names)
	}
	r.byName[p.Name] = p
}

// Lookup returns the named program.
func (r *Registry) Lookup(name string) (Program, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// Names lists the registered programs in sorted order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// Build constructs a fresh submission for the named program.
func (r *Registry) Build(name string, p Params) (mpi.Submission, error) {
	prog, ok := r.byName[name]
	if !ok {
		return mpi.Submission{}, fmt.Errorf("serve: unknown program %q (have %v)", name, r.names)
	}
	return prog.Build(p)
}

// ReferenceDigest executes the named program one-shot on the serial
// reference controller and digests its sinks — the ground truth a warm
// service run's digest must match byte for byte.
func (r *Registry) ReferenceDigest(name string, p Params) (string, error) {
	sub, err := r.Build(name, p)
	if err != nil {
		return "", err
	}
	ser := core.NewSerial()
	if err := ser.Initialize(sub.Graph, nil); err != nil {
		return "", err
	}
	if sub.Register != nil {
		if err := sub.Register(ser); err != nil {
			return "", err
		}
	}
	out, err := ser.Run(sub.Initial)
	if err != nil {
		return "", err
	}
	defer releaseSinks(out)
	return SinkDigest(out)
}

// DefaultRegistry returns the stock program set.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Add(Program{
		Name:  "reduction",
		About: "k-ary reduction tree over hash-mix tasks (blocks, valence, payload)",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewReduction(p.get("blocks", 8), p.get("valence", 2))
			if err != nil {
				return mpi.Submission{}, err
			}
			return prototypeSubmission(g, p), nil
		},
	})
	r.Add(Program{
		Name:  "broadcast",
		About: "k-ary broadcast tree over hash-mix tasks (blocks, valence, payload)",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewBroadcast(p.get("blocks", 8), p.get("valence", 2))
			if err != nil {
				return mpi.Submission{}, err
			}
			return prototypeSubmission(g, p), nil
		},
	})
	r.Add(Program{
		Name:  "kwaymerge",
		About: "k-way merge (reduce + broadcast back) over hash-mix tasks (blocks, valence, payload)",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewKWayMerge(p.get("blocks", 8), p.get("valence", 2))
			if err != nil {
				return mpi.Submission{}, err
			}
			return prototypeSubmission(g, p), nil
		},
	})
	r.Add(Program{
		Name:  "binaryswap",
		About: "binary-swap compositing exchange over hash-mix tasks (blocks, payload)",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewBinarySwap(p.get("blocks", 8))
			if err != nil {
				return mpi.Submission{}, err
			}
			return prototypeSubmission(g, p), nil
		},
	})
	r.Add(Program{
		Name:  "mergetree",
		About: "distributed merge-tree segmentation use case (n, blocks)",
		Build: func(p Params) (mpi.Submission, error) {
			n, blocks := p.get("n", 32), p.get("blocks", 8)
			field := data.SyntheticHCCI(n, n, n, 8, 2026)
			decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
			if err != nil {
				return mpi.Submission{}, err
			}
			graph, err := mergetree.NewGraph(blocks, 2)
			if err != nil {
				return mpi.Submission{}, err
			}
			cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
			initial, err := cfg.InitialInputs(field, graph)
			if err != nil {
				return mpi.Submission{}, err
			}
			return mpi.Submission{
				Graph:    graph,
				Register: func(c core.CallbackRegistrar) error { return cfg.Register(c, graph) },
				Initial:  initial,
			}, nil
		},
	})
	r.Add(Program{
		Name:  "render",
		About: "volume-render + tree compositing use case (n, blocks)",
		Build: func(p Params) (mpi.Submission, error) {
			n, blocks := p.get("n", 32), p.get("blocks", 8)
			field := data.SyntheticHCCI(n, n, n, 6, 7)
			decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
			if err != nil {
				return mpi.Submission{}, err
			}
			cfg := render.Config{
				Decomp: decomp,
				Camera: render.Camera{Width: n, Height: n},
				TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
			}
			graph, err := graphs.NewReduction(blocks, 2)
			if err != nil {
				return mpi.Submission{}, err
			}
			initial, err := cfg.InitialInputs(field, graph.LeafIds())
			if err != nil {
				return mpi.Submission{}, err
			}
			return mpi.Submission{
				Graph:    graph,
				Register: func(c core.CallbackRegistrar) error { return cfg.RegisterReduction(c, graph) },
				Initial:  initial,
			}, nil
		},
	})
	r.Add(Program{
		Name:  "register",
		About: "image-registration neighborhood-exchange use case (grid, tile)",
		Build: func(p Params) (mpi.Submission, error) {
			cfg := register.Config{
				GridW:   p.get("grid", 3),
				GridH:   p.get("grid", 3),
				Tile:    p.get("tile", 24),
				Overlap: 0.2,
				Jitter:  2,
			}
			tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
			graph, err := cfg.Graph()
			if err != nil {
				return mpi.Submission{}, err
			}
			initial, err := cfg.InitialInputs(graph, tiles)
			if err != nil {
				return mpi.Submission{}, err
			}
			return mpi.Submission{
				Graph:    graph,
				Register: func(c core.CallbackRegistrar) error { return cfg.Register(c, graph) },
				Initial:  initial,
			}, nil
		},
	})
	r.Add(Program{
		Name:  "register-iter",
		About: "iterative registration refinement loop under core.Iterate (grid, tile, maxiter)",
		Build: func(p Params) (mpi.Submission, error) {
			cfg := register.Config{
				GridW:   p.get("grid", 3),
				GridH:   p.get("grid", 3),
				Tile:    p.get("tile", 24),
				Overlap: 0.2,
				Jitter:  2,
			}
			tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
			ig, err := cfg.Iterative(p.get("maxiter", 8))
			if err != nil {
				return mpi.Submission{}, err
			}
			initial, err := cfg.IterInitial(tiles)
			if err != nil {
				return mpi.Submission{}, err
			}
			return mpi.Submission{
				Graph:    ig,
				Register: func(c core.CallbackRegistrar) error { return cfg.RegisterIter(c, ig) },
				Initial:  initial,
			}, nil
		},
	})
	return r
}

// prototypeSubmission wires a figure graph with the deterministic hash-mix
// callback on every task type and synthesized external inputs of `payload`
// bytes per slot.
func prototypeSubmission(g core.TaskGraph, p Params) mpi.Submission {
	mix := mixCallback(g)
	return mpi.Submission{
		Graph: g,
		Register: func(c core.CallbackRegistrar) error {
			for _, cb := range g.Callbacks() {
				if err := c.RegisterCallback(cb, mix); err != nil {
					return err
				}
			}
			return nil
		},
		Initial: externalInputsFor(g, p.get("payload", 64)),
	}
}

// mixCallback returns a deterministic callback hashing the task id and all
// input bytes into each output slot — the same shape the conformance suite
// uses, so any routing, interleaving or isolation defect flips the digest.
func mixCallback(g core.TaskGraph) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		h := sha256.New()
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], uint64(id))
		h.Write(idb[:])
		for _, p := range in {
			w, err := p.Wire()
			if err != nil {
				return nil, err
			}
			h.Write(w)
		}
		base := h.Sum(nil)
		t, _ := g.Task(id)
		out := make([]core.Payload, len(t.Outgoing))
		for s := range out {
			buf := make([]byte, len(base)+1)
			copy(buf, base)
			buf[len(base)] = byte(s)
			out[s] = core.Buffer(buf)
		}
		return out, nil
	}
}

// externalInputsFor synthesizes one deterministic payload of size bytes per
// ExternalInput slot.
func externalInputsFor(g core.TaskGraph, size int) map[core.TaskId][]core.Payload {
	if size < 8 {
		size = 8
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		n := 0
		for _, in := range t.Incoming {
			if in == core.ExternalInput {
				n++
			}
		}
		for j := 0; j < n; j++ {
			b := make([]byte, size)
			binary.LittleEndian.PutUint64(b, uint64(id)*31+uint64(j))
			for off := 8; off < size; off++ {
				b[off] = byte(off ^ int(id))
			}
			initial[id] = append(initial[id], core.Buffer(b))
		}
	}
	return initial
}
