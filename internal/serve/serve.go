// Package serve is the long-lived streaming dataflow service behind
// bfserve. One mpi.Service keeps a rank fabric, a warm worker pool and a
// journal root resident; this package adds the multi-tenant front: an
// admission queue with bounded depth and typed load-shedding, a dispatcher
// that batches small submissions before releasing them onto the warm
// fabric, per-run lifecycle records (queued → running → done/failed/
// cancelled) with queue-wait/makespan/journal metrics, and aggregate
// service counters with latency percentiles.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when the admission
// queue is full: the service sheds the submission instead of queueing
// unboundedly. Callers should back off and retry.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrClosed is returned for submissions after Close began.
var ErrClosed = errors.New("serve: server closed")

// ErrUnknownProgram is wrapped when a submission names no registered program.
var ErrUnknownProgram = errors.New("serve: unknown program")

// ErrUnknownRun is wrapped when a status, wait or cancel names no run the
// server still remembers.
var ErrUnknownRun = errors.New("serve: unknown run")

// ErrDraining is the service-layer drain error (mapped to HTTP 429 with
// Retry-After): a submission pinned to a rank that is being retired, or a
// drain request that would empty the fabric. Aliased so HTTP handlers and
// embedders can errors.Is against the serve package alone.
var ErrDraining = mpi.ErrDraining

// State is a run's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config sizes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Ranks is the warm fabric's logical rank count (default 4).
	Ranks int
	// Workers sizes the shared executor pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// ErrOverloaded (default 256).
	QueueDepth int
	// MaxInflight bounds concurrently executing runs; the dispatcher blocks
	// (backpressure into the queue) once the bound is reached (default =
	// Ranks).
	MaxInflight int
	// BatchWindow is how long the dispatcher lingers collecting further
	// queued submissions after the first before releasing the batch
	// (default 2ms). Batching amortizes dispatcher wakeups under streams of
	// small runs, file.d-style.
	BatchWindow time.Duration
	// MaxBatch caps a dispatch batch (default 16).
	MaxBatch int
	// History bounds how many finished run records the server retains for
	// status queries (default 1024). Live runs are never evicted.
	History int
	// Journal, when set, roots per-run journal directories.
	Journal string
	// Registry names the programs the server will execute (default
	// DefaultRegistry()).
	Registry *Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.Ranks
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.History <= 0 {
		c.History = 1024
	}
	if c.Registry == nil {
		c.Registry = DefaultRegistry()
	}
	return c
}

// RunStatus is an immutable snapshot of one run's record.
type RunStatus struct {
	ID        uint64    `json:"id"`
	Program   string    `json:"program"`
	Params    Params    `json:"params,omitempty"`
	State     State     `json:"state"`
	Digest    string    `json:"digest,omitempty"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	// QueueWaitMs is submission-to-start latency; zero until the run starts.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// MakespanMs is start-to-finish latency; zero until the run finishes.
	MakespanMs float64 `json:"makespan_ms"`
	// Journal carries the run's replay counters on journaled services.
	Journal mpi.JournalStats `json:"journal"`
}

// Metrics is an aggregate snapshot of the server.
type Metrics struct {
	Accepted  uint64 `json:"accepted"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// QueueDepth is the number of submissions waiting for dispatch.
	QueueDepth int `json:"queue_depth"`
	// Inflight is the number of currently executing runs.
	Inflight int `json:"inflight"`
	// QueueWaitP50Ms/P99Ms are percentiles over recent runs' queue waits.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// MakespanP50Ms/P99Ms are percentiles over recent runs' makespans.
	MakespanP50Ms float64 `json:"makespan_p50_ms"`
	MakespanP99Ms float64 `json:"makespan_p99_ms"`
	// WireTiers is the negotiated transport per rank pair, keyed "i-j":
	// "mem" on the default in-memory fabric, "tcp"/"unix"/"shm" when the
	// warm service rides a wire mesh.
	WireTiers map[string]string `json:"wire_tiers"`
	// StrayFrames counts messages the run demultiplexer dropped because
	// they addressed an unknown or released run — late arrivals racing a
	// cancel. A steadily climbing value under normal load is a bug signal.
	StrayFrames uint64 `json:"stray_frames"`
	// DrainingRanks lists ranks currently marked draining (sorted).
	DrainingRanks []int `json:"draining_ranks"`
	// DrainFences is the number of drain fences still in flight: drains
	// whose rank has not yet quiesced. Healthz reports "degraded" while
	// this is non-zero.
	DrainFences int `json:"drain_fences_inflight"`
	// Drains counts completed drain fences since startup.
	Drains uint64 `json:"drains"`
	// DrainLatencyMs is the most recent drain's fence latency: Drain()
	// accepted to last in-flight run off the rank.
	DrainLatencyMs float64 `json:"drain_latency_ms"`
	// HandoffRuns/HandoffTasks count submissions (and the tasks inside
	// them) the placement layer moved off draining ranks at admission.
	HandoffRuns  uint64 `json:"handoff_runs"`
	HandoffTasks uint64 `json:"handoff_tasks"`
}

// run is the mutable server-side record.
type run struct {
	id        uint64
	program   string
	params    Params
	submitted time.Time
	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	digest   string
	errText  string
	journal  mpi.JournalStats
}

func (r *run) snapshot() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:        r.id,
		Program:   r.program,
		Params:    r.params,
		State:     r.state,
		Digest:    r.digest,
		Error:     r.errText,
		Submitted: r.submitted,
		Journal:   r.journal,
	}
	if !r.started.IsZero() {
		st.QueueWaitMs = float64(r.started.Sub(r.submitted)) / float64(time.Millisecond)
	}
	if !r.finished.IsZero() && !r.started.IsZero() {
		st.MakespanMs = float64(r.finished.Sub(r.started)) / float64(time.Millisecond)
	}
	return st
}

// Server multiplexes program submissions over one warm mpi.Service.
type Server struct {
	cfg   Config
	reg   *Registry
	svc   *mpi.Service
	queue chan *run
	sem   chan struct{} // MaxInflight execution slots

	next    atomic.Uint64
	started time.Time
	fences  atomic.Int32 // drain fences in flight (rank marked, not yet idle)

	dispatchWG sync.WaitGroup
	execWG     sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	runs      map[uint64]*run
	order     []uint64 // insertion order, for history eviction
	accepted  uint64
	shed      uint64
	completed uint64
	failed    uint64
	cancelled uint64
	drains    uint64
	drainMs   float64
	queueWait sampleRing
	makespan  sampleRing
}

// NewServer builds the service and starts its dispatcher.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	svc, err := mpi.NewService(cfg.Ranks, mpi.WithWorkers(cfg.Workers), mpi.WithJournal(cfg.Journal))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		svc:     svc,
		queue:   make(chan *run, cfg.QueueDepth),
		sem:     make(chan struct{}, cfg.MaxInflight),
		started: time.Now(),
		runs:    make(map[uint64]*run),
	}
	s.queueWait.init(1024)
	s.makespan.init(1024)
	s.dispatchWG.Add(1)
	go s.dispatch()
	return s, nil
}

// Registry exposes the server's program set (for the control plane).
func (s *Server) Registry() *Registry { return s.reg }

// Ranks returns the warm fabric's rank count.
func (s *Server) Ranks() int { return s.svc.Ranks() }

// Uptime is the time since the server started.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }

// Drain marks a rank for graceful retirement. New submissions avoid it
// immediately (pinned submissions are shed with ErrDraining, unpinned ones
// are remapped onto the healthy ranks); runs already holding tasks on the
// rank finish normally. The drain fence stays in flight — and /healthz
// reports "degraded" — until the rank's last in-flight run completes, at
// which point the fence latency lands in Metrics.DrainLatencyMs.
func (s *Server) Drain(rank int) error {
	if err := s.svc.Drain(rank); err != nil {
		return err
	}
	start := time.Now()
	s.fences.Add(1)
	go func() {
		defer s.fences.Add(-1)
		for s.svc.RankActive(rank) > 0 {
			time.Sleep(2 * time.Millisecond)
		}
		s.mu.Lock()
		s.drains++
		s.drainMs = float64(time.Since(start)) / float64(time.Millisecond)
		s.mu.Unlock()
	}()
	return nil
}

// Undrain returns a previously drained rank to service.
func (s *Server) Undrain(rank int) error { return s.svc.Undrain(rank) }

// Fencing reports whether any drain fence is still in flight — a drained
// rank that has not yet quiesced.
func (s *Server) Fencing() bool { return s.fences.Load() > 0 }

// Draining lists the ranks currently marked draining.
func (s *Server) Draining() []int { return s.svc.Draining() }

// Submit admits one run of the named program. It never blocks on execution:
// the run is queued (its returned status is StateQueued) or shed with
// ErrOverloaded when the admission queue is full. A "pin" param places
// every task of the run on that rank; pinning to a draining rank is shed
// with ErrDraining (HTTP 429 + Retry-After) instead of queueing work the
// fence would strand.
func (s *Server) Submit(program string, p Params) (RunStatus, error) {
	if _, ok := s.reg.Lookup(program); !ok {
		return RunStatus{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownProgram, program, s.reg.Names())
	}
	if pin, ok := p["pin"]; ok {
		if pin < 0 || pin >= s.svc.Ranks() {
			return RunStatus{}, fmt.Errorf("serve: pin rank %d outside fabric [0,%d)", pin, s.svc.Ranks())
		}
		for _, d := range s.svc.Draining() {
			if d == pin {
				return RunStatus{}, fmt.Errorf("serve: submission pinned to rank %d: %w", pin, ErrDraining)
			}
		}
	}
	r := &run{
		id:        s.next.Add(1),
		program:   program,
		params:    p,
		submitted: time.Now(),
		done:      make(chan struct{}),
		state:     StateQueued,
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		r.cancel()
		return RunStatus{}, ErrClosed
	}
	select {
	case s.queue <- r:
		s.runs[r.id] = r
		s.order = append(s.order, r.id)
		s.evictLocked()
		s.accepted++
		s.mu.Unlock()
		return r.snapshot(), nil
	default:
		s.shed++
		s.mu.Unlock()
		r.cancel()
		return RunStatus{}, fmt.Errorf("serve: queue at depth %d: %w", s.cfg.QueueDepth, ErrOverloaded)
	}
}

// evictLocked drops the oldest finished records beyond the history bound.
// Live runs are never evicted, so the map can transiently exceed History
// under a deep backlog.
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.History {
		evicted := false
		for i, id := range s.order {
			r := s.runs[id]
			r.mu.Lock()
			final := r.state.terminal()
			r.mu.Unlock()
			if final {
				delete(s.runs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// dispatch is the admission loop: it blocks for the first queued run, then
// lingers up to BatchWindow collecting up to MaxBatch further runs, and
// releases the whole batch onto the warm fabric — bounded by MaxInflight,
// whose backpressure propagates into the queue and from there into
// ErrOverloaded shedding.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]*run, 0, s.cfg.MaxBatch), r)
		timer.Reset(s.cfg.BatchWindow)
	gather:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r2, ok := <-s.queue:
				if !ok {
					break gather
				}
				batch = append(batch, r2)
			case <-timer.C:
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		for _, r := range batch {
			// Acquiring a MaxInflight slot here (not in the goroutine) is
			// the backpressure bound: a saturated service parks the
			// dispatcher, the queue fills, and Submit sheds.
			s.sem <- struct{}{}
			s.execWG.Add(1)
			go func(r *run) {
				defer s.execWG.Done()
				defer func() { <-s.sem }()
				s.execute(r)
			}(r)
		}
	}
}

// execute runs one admitted submission to completion.
func (s *Server) execute(r *run) {
	start := time.Now()
	r.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		r.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = start
	r.mu.Unlock()

	sub, err := s.reg.Build(r.program, r.params)
	if err != nil {
		s.finish(r, "", mpi.JournalStats{}, err)
		return
	}
	if pin, ok := r.params["pin"]; ok && sub.Map == nil {
		// Explicit placement: every task on the pinned rank. A rank that
		// started draining between admission and here fails the run with
		// ErrDraining — the submission raced the fence and lost.
		ids := sub.Graph.TaskIds()
		sub.Map = core.NewFuncMap(s.svc.Ranks(), ids, func(core.TaskId) core.ShardId {
			return core.ShardId(pin)
		})
	}
	out, js, err := s.svc.Submit(r.ctx, sub)
	if err != nil {
		s.finish(r, "", js, err)
		return
	}
	digest, derr := SinkDigest(out)
	releaseSinks(out)
	s.finish(r, digest, js, derr)
}

// finish moves a run to its terminal state and folds its latencies into the
// aggregate metrics.
func (s *Server) finish(r *run, digest string, js mpi.JournalStats, err error) {
	now := time.Now()
	r.mu.Lock()
	r.finished = now
	r.digest = digest
	r.journal = js
	switch {
	case err == nil:
		r.state = StateDone
	case errors.Is(err, core.ErrCancelled) || r.ctx.Err() != nil:
		r.state = StateCancelled
		r.errText = err.Error()
	default:
		r.state = StateFailed
		r.errText = err.Error()
	}
	state := r.state
	wait, span := r.started.Sub(r.submitted), now.Sub(r.started)
	r.mu.Unlock()
	close(r.done)
	r.cancel()

	s.mu.Lock()
	switch state {
	case StateDone:
		s.completed++
	case StateCancelled:
		s.cancelled++
	default:
		s.failed++
	}
	s.queueWait.add(wait)
	s.makespan.add(span)
	s.mu.Unlock()
}

// Get returns the run's current status.
func (s *Server) Get(id uint64) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %d", ErrUnknownRun, id)
	}
	return r.snapshot(), nil
}

// Wait blocks until the run reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Server) Wait(ctx context.Context, id uint64) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %d", ErrUnknownRun, id)
	}
	select {
	case <-r.done:
		return r.snapshot(), nil
	case <-ctx.Done():
		return r.snapshot(), ctx.Err()
	}
}

// Cancel aborts a run: a queued run finishes immediately as cancelled, a
// running run's context is cancelled (the fabric view unblocks and the run
// lands in StateCancelled). Cancelling a finished run is a no-op.
func (s *Server) Cancel(id uint64) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %d", ErrUnknownRun, id)
	}
	r.mu.Lock()
	if r.state == StateQueued {
		r.state = StateCancelled
		r.finished = time.Now()
		r.mu.Unlock()
		r.cancel()
		close(r.done)
		s.mu.Lock()
		s.cancelled++
		s.mu.Unlock()
		return r.snapshot(), nil
	}
	r.mu.Unlock()
	r.cancel() // running: execute() observes the context and finishes the record
	return r.snapshot(), nil
}

// Runs snapshots every remembered run, newest first.
func (s *Server) Runs() []RunStatus {
	s.mu.Lock()
	rs := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		rs = append(rs, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]RunStatus, 0, len(rs))
	for i := len(rs) - 1; i >= 0; i-- {
		out = append(out, rs[i].snapshot())
	}
	return out
}

// Metrics snapshots the aggregate counters and latency percentiles.
func (s *Server) Metrics() Metrics {
	hr, ht := s.svc.HandoffCounts()
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Metrics{
		Accepted:       s.accepted,
		Shed:           s.shed,
		Completed:      s.completed,
		Failed:         s.failed,
		Cancelled:      s.cancelled,
		QueueDepth:     len(s.queue),
		Inflight:       len(s.sem),
		QueueWaitP50Ms: ms(s.queueWait.percentile(0.50)),
		QueueWaitP99Ms: ms(s.queueWait.percentile(0.99)),
		MakespanP50Ms:  ms(s.makespan.percentile(0.50)),
		MakespanP99Ms:  ms(s.makespan.percentile(0.99)),
		WireTiers:      s.svc.WireTiers(),
		StrayFrames:    s.svc.Stray(),
		DrainingRanks:  s.svc.Draining(),
		DrainFences:    int(s.fences.Load()),
		Drains:         s.drains,
		DrainLatencyMs: s.drainMs,
		HandoffRuns:    hr,
		HandoffTasks:   ht,
	}
}

// Close drains the server: no new submissions are admitted, already queued
// runs still execute, then the warm service shuts down. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// All sends happen under mu with closed checked, so no send can race
	// this close.
	close(s.queue)
	s.dispatchWG.Wait()
	s.execWG.Wait()
	return s.svc.Close()
}

// sampleRing keeps the last cap latency samples for percentile estimates.
type sampleRing struct {
	buf []time.Duration
	idx int
	n   int
}

func (r *sampleRing) init(capacity int) { r.buf = make([]time.Duration, capacity) }

func (r *sampleRing) add(d time.Duration) {
	r.buf[r.idx] = d
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// percentile returns the p-quantile (0 < p <= 1) of the retained samples,
// or zero when empty.
func (r *sampleRing) percentile(p float64) time.Duration {
	if r.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(p*float64(r.n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= r.n {
		i = r.n - 1
	}
	return tmp[i]
}
