// HTTP control plane: submit/status/cancel plus per-run and aggregate
// metrics, mapped onto the Server's typed errors (ErrOverloaded → 429,
// unknown names → 404, closed → 503).
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// SubmitRequest is the POST /submit body.
type SubmitRequest struct {
	// Program names a registered program.
	Program string `json:"program"`
	// Params carries the program's integer knobs.
	Params Params `json:"params,omitempty"`
	// Wait, when true, holds the response until the run finishes and
	// returns its terminal status (digest included) instead of 202.
	Wait bool `json:"wait,omitempty"`
}

// Handler returns the control-plane mux:
//
//	POST /submit            admit a run ({"program","params","wait"})
//	GET  /runs              recent runs, newest first
//	GET  /runs/{id}         one run's status
//	POST /runs/{id}/cancel  abort a queued or running run
//	POST /drain/{rank}      gracefully retire a rank (hand off its work)
//	POST /undrain/{rank}    return a drained rank to service
//	GET  /programs          the registered program set
//	GET  /metrics           aggregate counters and latency percentiles
//	GET  /healthz           liveness ("degraded" while a drain fence is
//	                        in flight)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("POST /drain/{rank}", func(w http.ResponseWriter, r *http.Request) {
		rank, err := strconv.Atoi(r.PathValue("rank"))
		if err != nil {
			http.Error(w, "serve: bad rank", http.StatusBadRequest)
			return
		}
		if err := s.Drain(rank); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"draining": s.Draining(),
			"fencing":  s.Fencing(),
		})
	})
	mux.HandleFunc("POST /undrain/{rank}", func(w http.ResponseWriter, r *http.Request) {
		rank, err := strconv.Atoi(r.PathValue("rank"))
		if err != nil {
			http.Error(w, "serve: bad rank", http.StatusBadRequest)
			return
		}
		if err := s.Undrain(rank); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"draining": s.Draining()})
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Runs())
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := runID(w, r)
		if !ok {
			return
		}
		st, err := s.Get(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /runs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, ok := runID(w, r)
		if !ok {
			return
		}
		st, err := s.Cancel(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /programs", func(w http.ResponseWriter, r *http.Request) {
		type info struct {
			Name  string `json:"name"`
			About string `json:"about"`
		}
		var out []info
		for _, name := range s.reg.Names() {
			p, _ := s.reg.Lookup(name)
			out = append(out, info{p.Name, p.About})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded, not dead: an epoch fence in flight means the service is
		// still accepting work but a rank hand-off has yet to quiesce.
		status := "ok"
		if s.Fencing() {
			status = "degraded"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    status,
			"ranks":     s.Ranks(),
			"draining":  s.Draining(),
			"uptime_ms": float64(s.Uptime()) / float64(time.Millisecond),
		})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "serve: bad submit body: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.Submit(req.Program, req.Params)
	if err != nil {
		writeError(w, err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	st, err = s.Wait(r.Context(), st.ID)
	if err != nil {
		// The client went away or timed out; the run itself continues.
		writeJSON(w, http.StatusGatewayTimeout, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// runID parses the {id} path segment, writing a 400 on failure.
func runID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "serve: bad run id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

// writeError maps the server's typed errors onto status codes.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownProgram), errors.Is(err, ErrUnknownRun):
		code = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
