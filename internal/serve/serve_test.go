package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// slowRegistry augments the defaults with a "slow" program whose root
// parks for sleep_ms — the knob the shedding and cancel tests use to build
// a backlog.
func slowRegistry() *Registry {
	r := DefaultRegistry()
	r.Add(Program{
		Name:  "slow",
		About: "reduction whose root sleeps (sleep_ms)",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewReduction(4, 2)
			if err != nil {
				return mpi.Submission{}, err
			}
			sub := prototypeSubmission(g, p)
			mix := mixCallback(g)
			nap := time.Duration(p.get("sleep_ms", 20)) * time.Millisecond
			sub.Register = func(c core.CallbackRegistrar) error {
				for _, cb := range g.Callbacks() {
					if err := c.RegisterCallback(cb, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
						if t, _ := g.Task(id); t.IsRoot() {
							time.Sleep(nap)
						}
						return mix(in, id)
					}); err != nil {
						return err
					}
				}
				return nil
			}
			return sub, nil
		},
	})
	return r
}

func submitAndWait(t *testing.T, s *Server, program string, p Params) RunStatus {
	t.Helper()
	st, err := s.Submit(program, p)
	if err != nil {
		t.Fatalf("submit %s: %v", program, err)
	}
	st, err = s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait %s/%d: %v", program, st.ID, err)
	}
	return st
}

// TestServerThousandSubmissions is the sustained-throughput acceptance
// test: ≥1000 small submissions stream through one warm fabric from
// concurrent clients, and every digest matches the one-shot serial
// reference for its program.
func TestServerThousandSubmissions(t *testing.T) {
	progs := []struct {
		name string
		p    Params
	}{
		{"reduction", Params{"blocks": 8, "payload": 32}},
		{"broadcast", Params{"blocks": 8, "payload": 32}},
		{"kwaymerge", Params{"blocks": 4, "payload": 32}},
		{"binaryswap", Params{"blocks": 4, "payload": 32}},
	}
	reg := DefaultRegistry()
	want := make(map[string]string, len(progs))
	for _, pr := range progs {
		d, err := reg.ReferenceDigest(pr.name, pr.p)
		if err != nil {
			t.Fatalf("reference %s: %v", pr.name, err)
		}
		want[pr.name] = d
	}

	s, err := NewServer(Config{Ranks: 4, QueueDepth: 4096, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients, perClient = 8, 125 // 1000 total
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				pr := progs[(c+i)%len(progs)]
				st, err := s.Submit(pr.name, pr.p)
				if err != nil {
					errs <- fmt.Errorf("client %d submit %d: %w", c, i, err)
					return
				}
				st, err = s.Wait(context.Background(), st.ID)
				if err != nil {
					errs <- err
					return
				}
				if st.State != StateDone {
					errs <- fmt.Errorf("run %d (%s): state %s, err %q", st.ID, pr.name, st.State, st.Error)
					return
				}
				if st.Digest != want[pr.name] {
					errs <- fmt.Errorf("run %d (%s): digest %s, want %s", st.ID, pr.name, st.Digest, want[pr.name])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	m := s.Metrics()
	if m.Completed != clients*perClient {
		t.Fatalf("completed %d of %d", m.Completed, clients*perClient)
	}
	if m.Shed != 0 {
		t.Fatalf("unexpected shedding: %d", m.Shed)
	}
}

// TestServerUseCaseDigests runs the paper's three use cases through the
// warm service and checks each against its serial reference.
func TestServerUseCaseDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("use-case programs are heavyweight")
	}
	reg := DefaultRegistry()
	s, err := NewServer(Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"mergetree", "render", "register"} {
		p := Params{"n": 16, "blocks": 4}
		want, err := reg.ReferenceDigest(name, p)
		if err != nil {
			t.Fatalf("reference %s: %v", name, err)
		}
		st := submitAndWait(t, s, name, p)
		if st.State != StateDone {
			t.Fatalf("%s: state %s, err %q", name, st.State, st.Error)
		}
		if st.Digest != want {
			t.Fatalf("%s: digest %s, want %s", name, st.Digest, want)
		}
	}
}

// TestServerShedsWhenOverloaded fills a tiny admission queue behind a slow
// run and checks overflow is shed with ErrOverloaded — and that the server
// then drains cleanly with no deadlock.
func TestServerShedsWhenOverloaded(t *testing.T) {
	s, err := NewServer(Config{
		Ranks:       2,
		QueueDepth:  2,
		MaxInflight: 1,
		Registry:    slowRegistry(),
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := Params{"sleep_ms": 50}
	var accepted []uint64
	shed := 0
	for i := 0; i < 20; i++ {
		st, err := s.Submit("slow", p)
		switch {
		case err == nil:
			accepted = append(accepted, st.ID)
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: unexpected error %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no submissions shed from a depth-2 queue behind 50ms runs")
	}
	for _, id := range accepted {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("run %d: state %s, err %q", id, st.State, st.Error)
		}
	}
	if m := s.Metrics(); m.Shed != uint64(shed) || m.Completed != uint64(len(accepted)) {
		t.Fatalf("metrics %+v disagree with shed=%d completed=%d", m, shed, len(accepted))
	}
}

// TestServerCancel covers both cancel paths: a queued run dies without
// executing, a running run unwinds as cancelled, and the server keeps
// serving afterwards.
func TestServerCancel(t *testing.T) {
	s, err := NewServer(Config{
		Ranks:       2,
		QueueDepth:  8,
		MaxInflight: 1,
		Registry:    slowRegistry(),
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	running, err := s.Submit("slow", Params{"sleep_ms": 200})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit("slow", Params{"sleep_ms": 200})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued cancel: state %s", st.State)
	}

	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st, err = s.Wait(context.Background(), running.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The running run may have been dispatched-but-not-started or mid-
	// flight; either way it must land terminal and not Done-with-digest
	// unless it genuinely finished before the cancel won the race.
	if !st.State.terminal() {
		t.Fatalf("running cancel: non-terminal state %s", st.State)
	}

	after := submitAndWait(t, s, "reduction", Params{"blocks": 4})
	if after.State != StateDone {
		t.Fatalf("submit after cancels: state %s, err %q", after.State, after.Error)
	}
	if _, err := s.Cancel(after.ID); err != nil {
		t.Fatalf("cancel of a finished run should be a no-op: %v", err)
	}
}

// TestServerFailedRunIsolated checks a failing program lands in
// StateFailed without poisoning the warm fabric.
func TestServerFailedRunIsolated(t *testing.T) {
	reg := DefaultRegistry()
	boom := errors.New("boom")
	reg.Add(Program{
		Name: "failing",
		Build: func(p Params) (mpi.Submission, error) {
			g, err := graphs.NewReduction(4, 2)
			if err != nil {
				return mpi.Submission{}, err
			}
			sub := prototypeSubmission(g, p)
			mix := mixCallback(g)
			sub.Register = func(c core.CallbackRegistrar) error {
				for _, cb := range g.Callbacks() {
					if err := c.RegisterCallback(cb, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
						if t, _ := g.Task(id); t.IsRoot() {
							return nil, boom
						}
						return mix(in, id)
					}); err != nil {
						return err
					}
				}
				return nil
			}
			return sub, nil
		},
	})
	s, err := NewServer(Config{Ranks: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := submitAndWait(t, s, "failing", nil)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("failing run: state %s, err %q", st.State, st.Error)
	}
	good := submitAndWait(t, s, "reduction", Params{"blocks": 4})
	if good.State != StateDone {
		t.Fatalf("run after failure: state %s, err %q", good.State, good.Error)
	}
	if m := s.Metrics(); m.Failed != 1 || m.Completed != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestServerLifecycleNoGoroutineLeak walks a full server lifecycle —
// submissions, shedding, cancels, close — and checks the goroutine count
// returns to its baseline. Run with -race.
func TestServerLifecycleNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := NewServer(Config{Ranks: 2, QueueDepth: 4, MaxInflight: 2, Registry: slowRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 30; i++ {
		st, err := s.Submit("slow", Params{"sleep_ms": 5})
		if err != nil {
			lastErr = err
			continue
		}
		if i%7 == 0 {
			s.Cancel(st.ID)
		}
	}
	if lastErr != nil && !errors.Is(lastErr, ErrOverloaded) {
		t.Fatal(lastErr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("reduction", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err=%v, want ErrClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after close", before, n)
	}
}

// TestServerHistoryEviction checks finished records beyond the history
// bound are dropped while live runs survive.
func TestServerHistoryEviction(t *testing.T) {
	s, err := NewServer(Config{Ranks: 2, History: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var first uint64
	for i := 0; i < 12; i++ {
		st := submitAndWait(t, s, "reduction", Params{"blocks": 4})
		if i == 0 {
			first = st.ID
		}
	}
	if _, err := s.Get(first); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("oldest run should be evicted, got err=%v", err)
	}
	if got := len(s.Runs()); got > 5 {
		t.Fatalf("history holds %d records, bound is 4", got)
	}
}

// httpJSON posts/gets JSON against the test server.
func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestServerHTTP exercises the control plane end to end over a loopback
// listener: submit-and-wait with digest verification, status, metrics,
// health, 404s and 429 shedding.
func TestServerHTTP(t *testing.T) {
	reg := slowRegistry()
	want, err := reg.ReferenceDigest("reduction", Params{"blocks": 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		Ranks:       2,
		QueueDepth:  2,
		MaxInflight: 1,
		Registry:    reg,
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st RunStatus
	code := httpJSON(t, "POST", ts.URL+"/submit", SubmitRequest{Program: "reduction", Params: Params{"blocks": 8}, Wait: true}, &st)
	if code != http.StatusOK {
		t.Fatalf("submit wait: status %d", code)
	}
	if st.State != StateDone || st.Digest != want {
		t.Fatalf("submit wait: state %s digest %s (want %s)", st.State, st.Digest, want)
	}
	if st.MakespanMs <= 0 {
		t.Fatalf("per-run makespan missing: %+v", st)
	}

	var got RunStatus
	if code := httpJSON(t, "GET", fmt.Sprintf("%s/runs/%d", ts.URL, st.ID), nil, &got); code != http.StatusOK {
		t.Fatalf("get run: status %d", code)
	}
	if got.Digest != want {
		t.Fatalf("get run: digest %s", got.Digest)
	}

	if code := httpJSON(t, "GET", ts.URL+"/runs/99999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", code)
	}
	if code := httpJSON(t, "POST", ts.URL+"/submit", SubmitRequest{Program: "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown program: status %d", code)
	}

	// Saturate: async slow submissions against a depth-2 queue until a 429.
	saw429 := false
	var asyncIDs []uint64
	for i := 0; i < 20 && !saw429; i++ {
		var ast RunStatus
		code := httpJSON(t, "POST", ts.URL+"/submit", SubmitRequest{Program: "slow", Params: Params{"sleep_ms": 50}}, &ast)
		switch code {
		case http.StatusAccepted:
			asyncIDs = append(asyncIDs, ast.ID)
		case http.StatusTooManyRequests:
			saw429 = true
		default:
			t.Fatalf("async submit: status %d", code)
		}
	}
	if !saw429 {
		t.Fatal("never saw a 429 from a saturated depth-2 queue")
	}
	for _, id := range asyncIDs {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}

	var m Metrics
	if code := httpJSON(t, "GET", ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Shed == 0 || m.Completed == 0 || m.MakespanP50Ms <= 0 {
		t.Fatalf("metrics incomplete: %+v", m)
	}
	// The wire-tier map covers every rank pair of the warm fabric — "mem"
	// on the default in-memory transport — and the stray counter is
	// exposed (and zero: nothing raced a cancel here).
	if len(m.WireTiers) != 1 { // C(2,2) pairs for this 2-rank server
		t.Fatalf("wire_tiers = %v, want one pair", m.WireTiers)
	}
	if tier, ok := m.WireTiers["0-1"]; !ok || tier != "mem" {
		t.Fatalf("wire_tiers = %v, want 0-1 => mem", m.WireTiers)
	}
	if m.StrayFrames != 0 {
		t.Fatalf("stray_frames = %d on an orderly server", m.StrayFrames)
	}

	var health map[string]any
	if code := httpJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
}

// TestReferenceDigestStable pins that the serial reference digest is
// deterministic across invocations — the property every conformance
// comparison in this package rests on.
func TestReferenceDigestStable(t *testing.T) {
	reg := DefaultRegistry()
	for _, name := range []string{"reduction", "broadcast", "kwaymerge", "binaryswap"} {
		a, err := reg.ReferenceDigest(name, Params{"blocks": 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := reg.ReferenceDigest(name, Params{"blocks": 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Fatalf("%s: reference digest unstable: %s vs %s", name, a, b)
		}
		c, err := reg.ReferenceDigest(name, Params{"blocks": 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c == a {
			t.Fatalf("%s: digest ignores parameters", name)
		}
	}
}
