package dot

import (
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

func TestWriteReduction(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	var b strings.Builder
	err := Write(&b, g, Options{
		Name:        "reduction",
		Labels:      map[core.CallbackId]string{graphs.ReduceLeafCB: "leaf", graphs.ReduceMidCB: "reduce", graphs.ReduceRootCB: "root"},
		RankByLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph \"reduction\"",
		"t0 [label=\"root\\n0\"",
		"t3 [label=\"leaf\\n3\"",
		"t3 -> t1",
		"t1 -> t0",
		"rank=same",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// 7 nodes, 6 edges.
	if got := strings.Count(out, "->"); got != 6 {
		t.Errorf("edge count = %d, want 6", got)
	}
}

func TestWriteDefaultsAndFilter(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	var b strings.Builder
	// Filter to the sub-tree under task 1 (tasks 1, 3, 4).
	err := Write(&b, g, Options{
		Filter: func(id core.TaskId) bool { return id == 1 || id == 3 || id == 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "digraph \"taskgraph\"") {
		t.Error("default name not applied")
	}
	if strings.Contains(out, "t0 [") {
		t.Error("filtered-out task 0 rendered")
	}
	if got := strings.Count(out, "->"); got != 2 {
		t.Errorf("edge count = %d, want 2 (edges into filtered tasks dropped)", got)
	}
}

func TestWriteSlotLabels(t *testing.T) {
	g, _ := graphs.NewBinarySwap(2)
	var b strings.Builder
	if err := Write(&b, g, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "label=\"1\"") {
		t.Error("output slot labels missing")
	}
}
