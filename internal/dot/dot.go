// Package dot renders task graphs in the Dot graph-description language
// (Koutsofios & North), the debugging aid the paper provides for inspecting
// abstract task graphs or subsets of them.
package dot

import (
	"fmt"
	"io"
	"sort"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Options controls rendering.
type Options struct {
	// Name is the graph name; defaults to "taskgraph".
	Name string
	// Labels maps callback ids to human-readable task-type names used for
	// node labels and the shared fill colors. Unlisted callbacks render
	// with a numeric label.
	Labels map[core.CallbackId]string
	// RankByLevel groups tasks of the same dataflow level on the same rank,
	// producing the layered drawings of Figs. 5, 7 and 8.
	RankByLevel bool
	// Filter, when non-nil, restricts the drawing to tasks for which it
	// returns true (edges to filtered-out tasks are dropped). Used to draw
	// local sub-graphs.
	Filter func(core.TaskId) bool
}

// colors is a fixed palette assigned to callback ids in ascending order.
var colors = []string{
	"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
	"#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
}

// Write renders the graph to w.
func Write(w io.Writer, g core.TaskGraph, opt Options) error {
	name := opt.Name
	if name == "" {
		name = "taskgraph"
	}
	keep := func(id core.TaskId) bool { return opt.Filter == nil || opt.Filter(id) }

	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle, style=filled];\n", name); err != nil {
		return err
	}

	cbs := append([]core.CallbackId(nil), g.Callbacks()...)
	sort.Slice(cbs, func(i, j int) bool { return cbs[i] < cbs[j] })
	color := make(map[core.CallbackId]string, len(cbs))
	for i, cb := range cbs {
		color[cb] = colors[i%len(colors)]
	}

	ids := g.TaskIds()
	for _, id := range ids {
		if !keep(id) {
			continue
		}
		t, ok := g.Task(id)
		if !ok {
			return fmt.Errorf("dot: graph enumerates unknown task %d", id)
		}
		label := fmt.Sprintf("%d", id)
		if opt.Labels != nil {
			if n, ok := opt.Labels[t.Callback]; ok {
				label = fmt.Sprintf("%s\\n%d", n, id)
			}
		}
		// The label may contain dot's two-character `\n` line-break escape,
		// which %q would double-escape; emit it verbatim.
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%s\", fillcolor=%q];\n", id, label, color[t.Callback]); err != nil {
			return err
		}
	}

	for _, id := range ids {
		if !keep(id) {
			continue
		}
		t, _ := g.Task(id)
		for slot, consumers := range t.Outgoing {
			for _, c := range consumers {
				if !keep(c) {
					continue
				}
				if _, err := fmt.Fprintf(w, "  t%d -> t%d [label=\"%d\"];\n", id, c, slot); err != nil {
					return err
				}
			}
		}
	}

	if opt.RankByLevel {
		levels, err := core.Levels(g)
		if err != nil {
			return fmt.Errorf("dot: %w", err)
		}
		for _, round := range levels {
			var kept []core.TaskId
			for _, id := range round {
				if keep(id) {
					kept = append(kept, id)
				}
			}
			if len(kept) < 2 {
				continue
			}
			if _, err := fmt.Fprintf(w, "  { rank=same;"); err != nil {
				return err
			}
			for _, id := range kept {
				if _, err := fmt.Fprintf(w, " t%d;", id); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w, " }"); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
