// Package charm implements the Charm++ runtime controller of the paper
// (§IV-B): tasks are chares — migratable objects that form the basic unit
// of parallel computation — collected in a single chare array created by
// the main chare. No task map is needed: the runtime places chares itself
// and periodically balances load by migrating them between processing
// elements (PEs).
//
// Communication between chares uses remote procedure calls addressed by
// chare id; a location manager resolves the current owner PE and forwards
// messages that race with a migration, as the Charm++ location manager
// does. The chare id is translated into a task id at execution time, which
// determines the callback to run. Same-PE messages skip serialization,
// mirroring the PUP framework's in-memory optimization.
package charm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Options configures a Controller.
type Options struct {
	// PEs is the number of processing elements; zero selects 4.
	PEs int
	// LBPeriod triggers the load balancer every LBPeriod executed tasks;
	// zero disables periodic load balancing. The experiments in the paper
	// use periodic load balance.
	LBPeriod int
	// ArrayPerType creates one chare array per task type instead of a
	// single array for all tasks — the extension §IV-B anticipates ("having
	// multiple chare arrays for the different task types may lead to
	// better performance"). Each type's chares are placed round-robin
	// independently, so a type whose tasks cluster in the id space still
	// spreads evenly over the PEs.
	ArrayPerType bool
	// Observer, when non-nil, receives a notification per executed task.
	Observer core.Observer
}

// Controller executes task graphs in Charm++ style.
type Controller struct {
	opt   Options
	graph core.TaskGraph
	reg   *core.Registry

	lastStats      fabric.Stats
	lastMigrations uint64
}

// New returns a Charm++ controller with the given options.
func New(opt Options) *Controller {
	if opt.PEs <= 0 {
		opt.PEs = 4
	}
	return &Controller{opt: opt, reg: core.NewRegistry()}
}

// Initialize implements core.Controller. The task map is ignored: the
// runtime places chares itself (initially round-robin over PEs, then by
// migration).
func (c *Controller) Initialize(g core.TaskGraph, _ core.TaskMap) error {
	if g == nil {
		return fmt.Errorf("charm: nil task graph")
	}
	if err := core.Validate(g); err != nil {
		return err
	}
	c.graph = g
	return nil
}

// RegisterCallback implements core.Controller.
func (c *Controller) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	if c.graph == nil {
		return core.ErrNotInitialized
	}
	return c.reg.Register(cb, fn)
}

// Stats returns the inter-PE traffic of the last Run.
func (c *Controller) Stats() fabric.Stats { return c.lastStats }

// Migrations returns the number of chare migrations the load balancer
// performed during the last Run.
func (c *Controller) Migrations() uint64 { return c.lastMigrations }

// chare is the runtime state of one task: its current owner PE and the
// input slots filled so far. A chare is locked individually; the location
// manager lock orders migrations against ownership lookups.
type chare struct {
	mu      sync.Mutex
	task    core.Task
	owner   int
	slots   []core.Payload
	filled  []bool
	missing int
	started bool // inputs complete, execution scheduled or done
}

// charmRun is the per-Run runtime instance.
type charmRun struct {
	c      *Controller
	fab    *fabric.Fabric
	chares map[core.TaskId]*chare
	locMu  sync.Mutex // serializes migrations and owner queries during LB

	executed   atomic.Int64
	total      int64
	migrations atomic.Uint64

	results map[core.TaskId][]core.Payload
	resMu   sync.Mutex

	firstErr error
	errMu    sync.Mutex
}

// Run implements core.Controller.
func (c *Controller) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.RunContext(context.Background(), initial)
}

// RunContext implements core.Controller: a finished context aborts the run
// (cancelling the fabric so every PE loop unwinds) and the error wraps
// core.ErrCancelled.
func (c *Controller) RunContext(ctx context.Context, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if err := core.CheckInitial(c.graph, initial); err != nil {
		return nil, err
	}

	r := &charmRun{
		c:       c,
		fab:     fabric.New(c.opt.PEs),
		chares:  make(map[core.TaskId]*chare, c.graph.Size()),
		total:   int64(c.graph.Size()),
		results: make(map[core.TaskId][]core.Payload),
	}
	// The main chare creates the chare array(s): one chare per task,
	// placed round-robin over the PEs — either from a single array or,
	// with ArrayPerType, from one array per task type with independent
	// placement counters.
	perType := make(map[core.CallbackId]int)
	for i, id := range c.graph.TaskIds() {
		t, _ := c.graph.Task(id)
		owner := i % c.opt.PEs
		if c.opt.ArrayPerType {
			owner = perType[t.Callback] % c.opt.PEs
			perType[t.Callback]++
		}
		r.chares[id] = &chare{
			task:    t,
			owner:   owner,
			slots:   make([]core.Payload, len(t.Incoming)),
			filled:  make([]bool, len(t.Incoming)),
			missing: len(t.Incoming),
		}
	}

	// The dataflow execution is started asynchronously by the chares
	// containing the input data: send the external payloads as messages.
	for _, id := range core.SortedIds(initial) {
		owner := r.owner(id)
		for _, p := range initial[id] {
			r.fab.Send(fabric.Message{From: owner, To: owner, Src: core.ExternalInput, Dest: id, Payload: p})
		}
	}
	// Tasks with no inputs at all start immediately.
	for id, ch := range r.chares {
		if len(ch.task.Incoming) == 0 {
			r.fab.Send(fabric.Message{From: ch.owner, To: ch.owner, Src: core.ExternalInput, Dest: id, Payload: core.Payload{}})
		}
	}

	stopc := make(chan struct{})
	defer close(stopc)
	go func() {
		select {
		case <-ctx.Done():
			r.abort(core.Cancelled(ctx))
		case <-stopc:
		}
	}()

	var wg sync.WaitGroup
	for pe := 0; pe < c.opt.PEs; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			r.peLoop(pe)
		}(pe)
	}
	wg.Wait()

	c.lastStats = r.fab.Snapshot()
	c.lastMigrations = r.migrations.Load()
	r.errMu.Lock()
	defer r.errMu.Unlock()
	if r.firstErr != nil {
		return nil, r.firstErr
	}
	return r.results, nil
}

func (r *charmRun) abort(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
	r.fab.Cancel()
}

// owner returns the current owner PE of a chare.
func (r *charmRun) owner(id core.TaskId) int {
	r.locMu.Lock()
	defer r.locMu.Unlock()
	ch, ok := r.chares[id]
	if !ok {
		return 0
	}
	return ch.owner
}

// peLoop is the scheduler loop of one processing element: it drains the
// PE's message queue, delivering RPCs to local chares and executing entry
// methods (task callbacks) inline, one at a time, as Charm++ does.
func (r *charmRun) peLoop(pe int) {
	for {
		m, ok := r.fab.Recv(pe)
		if !ok {
			return
		}
		ch, exists := r.chares[m.Dest]
		if !exists {
			r.abort(fmt.Errorf("charm: message for unknown chare %d", m.Dest))
			return
		}

		ch.mu.Lock()
		if ch.owner != pe {
			// The chare migrated while the message was in flight; the
			// location manager forwards it to the new owner.
			to := ch.owner
			ch.mu.Unlock()
			r.fab.Send(fabric.Message{From: pe, To: to, Src: m.Src, Dest: m.Dest, Payload: m.Payload})
			continue
		}
		if err := r.deliver(ch, m); err != nil {
			ch.mu.Unlock()
			r.abort(err)
			return
		}
		ready := ch.missing == 0 && !ch.started
		var inputs []core.Payload
		if ready {
			ch.started = true
			inputs = ch.slots
		}
		ch.mu.Unlock()

		if !ready {
			continue
		}
		if err := r.execute(pe, ch, inputs); err != nil {
			r.abort(err)
			return
		}
		done := r.executed.Add(1)
		if done == r.total {
			// Last entry method ran; quiescence detected, stop all PEs.
			for p := 0; p < r.c.opt.PEs; p++ {
				r.fab.Close(p)
			}
			return
		}
		if lb := r.c.opt.LBPeriod; lb > 0 && done%int64(lb) == 0 {
			r.rebalance()
		}
	}
}

// deliver fills the next open input slot matching the message's source.
func (r *charmRun) deliver(ch *chare, m fabric.Message) error {
	if len(ch.task.Incoming) == 0 {
		// Synthetic start message for an input-less task.
		return nil
	}
	for slot, producer := range ch.task.Incoming {
		if producer == m.Src && !ch.filled[slot] {
			// Detach a private copy of a shared fan-out wire form: the
			// chare owns its inputs and may mutate them.
			ch.slots[slot] = m.Payload.Own()
			ch.filled[slot] = true
			ch.missing--
			return nil
		}
	}
	return fmt.Errorf("charm: chare %d has no open input slot for producer %d", ch.task.Id, m.Src)
}

// execute runs the chare's entry method (the registered callback) and sends
// the outputs to the consuming chares as RPCs.
func (r *charmRun) execute(pe int, ch *chare, inputs []core.Payload) error {
	t := ch.task
	out, cancelled := core.CancelDead(t, inputs)
	if !cancelled {
		fn, ok := r.c.reg.Lookup(t.Callback)
		if !ok {
			return fmt.Errorf("%w: callback %d", core.ErrUnregisteredCallback, t.Callback)
		}
		var err error
		out, err = core.SafeInvoke(fn, inputs, t.Id)
		if err != nil {
			return fmt.Errorf("charm: chare %d (callback %d): %w", t.Id, t.Callback, err)
		}
		if len(out) != len(t.Outgoing) {
			return fmt.Errorf("charm: chare %d produced %d outputs, graph declares %d slots", t.Id, len(out), len(t.Outgoing))
		}
		if r.c.opt.Observer != nil {
			r.c.opt.Observer.TaskExecuted(t.Id, core.ShardId(pe), t.Callback)
		}
	}
	var batch []fabric.Message
	for slot, consumers := range t.Outgoing {
		if len(consumers) == 0 {
			if core.IsDead(out[slot]) {
				continue
			}
			r.resMu.Lock()
			r.results[t.Id] = append(r.results[t.Id], out[slot])
			r.resMu.Unlock()
			continue
		}
		p := out[slot]
		// Resolve every consumer's owner once; the last same-PE consumer
		// receives the payload pointer (the PUP framework's in-memory
		// optimization), every other RPC carries the wire form.
		owners := make([]int, len(consumers))
		for i, dest := range consumers {
			owners[i] = r.owner(dest)
		}
		inMemoryIdx := -1
		if last := len(consumers) - 1; owners[last] == pe {
			inMemoryIdx = last
		}
		wireConsumers := len(consumers)
		if inMemoryIdx >= 0 {
			wireConsumers--
		}
		var wire core.Payload
		var err error
		switch {
		case wireConsumers == 0:
			// Single same-PE consumer: pure pointer pass.
		case wireConsumers == 1 && inMemoryIdx < 0:
			// Single RPC consumer: the chare relinquished the buffer,
			// hand it over without a copy.
			wire, err = p.WireForm()
		default:
			// Fan-out: the PUP framework serializes once; the immutable
			// wire form is shared by all RPC consumers and each detaches
			// a private copy at delivery.
			wire, err = core.SharedPayload(p, wireConsumers, inMemoryIdx >= 0)
		}
		if err != nil {
			return fmt.Errorf("charm: chare %d output slot %d: %w", t.Id, slot, err)
		}
		for i, dest := range consumers {
			mp := wire
			if i == inMemoryIdx {
				mp = p
			}
			batch = append(batch, fabric.Message{From: pe, To: owners[i], Src: t.Id, Dest: dest, Payload: mp})
		}
	}
	return r.fab.SendN(batch)
}

// rebalance is the periodic load balancer: it measures the per-PE count of
// unfinished chares and migrates chares from overloaded PEs to underloaded
// ones. Migration only flips ownership in the location manager; in-flight
// messages are forwarded by the receiving PE.
func (r *charmRun) rebalance() {
	r.locMu.Lock()
	defer r.locMu.Unlock()

	pes := r.c.opt.PEs
	load := make([]int, pes)
	var pending []*chare
	for _, ch := range r.chares {
		ch.mu.Lock()
		if !ch.started {
			load[ch.owner]++
			pending = append(pending, ch)
		}
		ch.mu.Unlock()
	}
	if len(pending) == 0 {
		return
	}
	avg := (len(pending) + pes - 1) / pes
	// Greedy: move chares from PEs above the average to PEs below it.
	for _, ch := range pending {
		ch.mu.Lock()
		if ch.started {
			ch.mu.Unlock()
			continue
		}
		from := ch.owner
		if load[from] > avg {
			to := minIndex(load)
			if load[to] < load[from]-1 {
				ch.owner = to
				load[from]--
				load[to]++
				r.migrations.Add(1)
			}
		}
		ch.mu.Unlock()
	}
}

func minIndex(xs []int) int {
	mi := 0
	for i, x := range xs {
		if x < xs[mi] {
			mi = i
		}
	}
	return mi
}

var _ core.Controller = (*Controller)(nil)
