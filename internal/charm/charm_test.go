package charm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

func u64(v uint64) core.Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return core.Buffer(b)
}

func getU64(p core.Payload) uint64 { return binary.LittleEndian.Uint64(p.Data) }

func sumCB(slots int) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		out := make([]core.Payload, slots)
		for i := range out {
			out[i] = u64(sum)
		}
		return out, nil
	}
}

func runBoth(t *testing.T, g core.TaskGraph, reg map[core.CallbackId]core.Callback, initial map[core.TaskId][]core.Payload, opt Options) *Controller {
	t.Helper()
	ser := core.NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		ser.RegisterCallback(cb, fn)
	}
	want, err := ser.Run(initial)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	cc := New(opt)
	if err := cc.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		cc.RegisterCallback(cb, fn)
	}
	got, err := cc.Run(initial)
	if err != nil {
		t.Fatalf("charm: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("sink count: got %d, want %d", len(got), len(want))
	}
	for id, ws := range want {
		gs := got[id]
		if len(ws) != len(gs) {
			t.Fatalf("task %d: %d sinks, want %d", id, len(gs), len(ws))
		}
		for i := range ws {
			wb, _ := ws[i].Wire()
			gb, _ := gs[i].Wire()
			if !bytes.Equal(wb, gb) {
				t.Errorf("task %d sink %d: got %v, want %v", id, i, gb, wb)
			}
		}
	}
	return cc
}

func reductionSetup(leafs, k int) (*graphs.Reduction, map[core.CallbackId]core.Callback, map[core.TaskId][]core.Payload) {
	g, _ := graphs.NewReduction(leafs, k)
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i) + 3)}
	}
	return g, reg, initial
}

func TestCharmMatchesSerialOnReduction(t *testing.T) {
	g, reg, initial := reductionSetup(16, 2)
	for _, pes := range []int{1, 2, 3, 8, 64} {
		t.Run(fmt.Sprintf("pes=%d", pes), func(t *testing.T) {
			runBoth(t, g, reg, initial, Options{PEs: pes})
		})
	}
}

func TestCharmWithAggressiveLoadBalancing(t *testing.T) {
	g, reg, initial := reductionSetup(64, 2)
	cc := runBoth(t, g, reg, initial, Options{PEs: 4, LBPeriod: 1})
	// The LB must have observed imbalance at some point on a 127-task
	// graph rebalanced after every single execution.
	if cc.Migrations() == 0 {
		t.Log("warning: aggressive LB performed no migrations (legal but unexpected)")
	}
}

func TestCharmMatchesSerialOnKWayMerge(t *testing.T) {
	g, _ := graphs.NewKWayMerge(8, 2)
	reg := make(map[core.CallbackId]core.Callback)
	for _, cb := range g.Callbacks() {
		reg[cb] = sumCB(1)
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.UpLeafIds() {
		initial[id] = []core.Payload{u64(uint64(i + 1))}
	}
	for _, opt := range []Options{{PEs: 1}, {PEs: 4}, {PEs: 4, LBPeriod: 3}} {
		runBoth(t, g, reg, initial, opt)
	}
}

func TestCharmMatchesSerialOnBinarySwap(t *testing.T) {
	g, _ := graphs.NewBinarySwap(8)
	split := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		return []core.Payload{u64(sum), u64(sum ^ 0xABCD)}, nil
	}
	reg := map[core.CallbackId]core.Callback{
		graphs.SwapLeafCB: split,
		graphs.SwapMidCB:  split,
		graphs.SwapRootCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i))}
	}
	runBoth(t, g, reg, initial, Options{PEs: 5, LBPeriod: 2})
}

func TestCharmObserverSeesEachTaskOnce(t *testing.T) {
	g, reg, initial := reductionSetup(16, 4)
	log := core.NewExecutionLog()
	runBoth(t, g, reg, initial, Options{PEs: 3, LBPeriod: 2, Observer: log})
	if log.Len() != g.Size() {
		t.Fatalf("observer saw %d executions, want %d", log.Len(), g.Size())
	}
	for _, id := range g.TaskIds() {
		if n := log.Executions(id); n != 1 {
			t.Errorf("task %d executed %d times", id, n)
		}
	}
}

func TestCharmCallbackErrorPropagates(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	boom := errors.New("boom")
	reg[graphs.ReduceMidCB] = func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return nil, boom
	}
	cc := New(Options{PEs: 4})
	cc.Initialize(g, nil)
	for cb, fn := range reg {
		cc.RegisterCallback(cb, fn)
	}
	if _, err := cc.Run(initial); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestCharmInitializeAndRunErrors(t *testing.T) {
	cc := New(Options{})
	if err := cc.Initialize(nil, nil); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := cc.Run(nil); !errors.Is(err, core.ErrNotInitialized) {
		t.Errorf("Run before init = %v", err)
	}
	g, reg, initial := reductionSetup(4, 2)
	cc2 := New(Options{})
	cc2.Initialize(g, nil)
	cc2.RegisterCallback(graphs.ReduceLeafCB, reg[graphs.ReduceLeafCB])
	if _, err := cc2.Run(initial); !errors.Is(err, core.ErrUnregisteredCallback) {
		t.Errorf("missing callbacks: %v", err)
	}
}

func TestCharmWrongArity(t *testing.T) {
	g, reg, initial := reductionSetup(4, 2)
	reg[graphs.ReduceLeafCB] = sumCB(3)
	cc := New(Options{PEs: 2})
	cc.Initialize(g, nil)
	for cb, fn := range reg {
		cc.RegisterCallback(cb, fn)
	}
	if _, err := cc.Run(initial); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestCharmStatsExist(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	cc := runBoth(t, g, reg, initial, Options{PEs: 4})
	// 15 tasks round-robin over 4 PEs: parents and children interleave, so
	// cross-PE RPCs must occur.
	if s := cc.Stats(); s.Messages == 0 {
		t.Errorf("stats = %+v, expected cross-PE traffic", s)
	}
}

func TestCharmSinglePE(t *testing.T) {
	g, reg, initial := reductionSetup(8, 8)
	cc := runBoth(t, g, reg, initial, Options{PEs: 1})
	if s := cc.Stats(); s.Messages != 0 {
		t.Errorf("single PE should have zero cross-PE traffic, got %+v", s)
	}
}

func TestCharmRecoversCallbackPanic(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	reg[graphs.ReduceMidCB] = func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		panic("chare panic")
	}
	cc := New(Options{PEs: 4})
	cc.Initialize(g, nil)
	for cb, fn := range reg {
		cc.RegisterCallback(cb, fn)
	}
	_, err := cc.Run(initial)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("Run = %v, want panic converted to error", err)
	}
}

// TestCharmArrayPerType runs the chare-array-per-task-type extension the
// paper anticipates in §IV-B; results must stay identical and placement
// must spread each type across PEs.
func TestCharmArrayPerType(t *testing.T) {
	g, reg, initial := reductionSetup(16, 2)
	runBoth(t, g, reg, initial, Options{PEs: 4, ArrayPerType: true})
	runBoth(t, g, reg, initial, Options{PEs: 4, ArrayPerType: true, LBPeriod: 2})

	// Placement check: the 16 leaves (one contiguous id range, which a
	// single array would also spread, but e.g. the two mid-level nodes at
	// ids 1,2 land on distinct PEs per-type) spread over all PEs.
	log := core.NewExecutionLog()
	cc := runBoth(t, g, reg, initial, Options{PEs: 4, ArrayPerType: true, Observer: log})
	_ = cc
	leafPEs := make(map[core.ShardId]bool)
	for _, id := range g.LeafIds() {
		leafPEs[log.Shards[id]] = true
	}
	if len(leafPEs) < 2 {
		t.Errorf("leaf chares used only %d PEs", len(leafPEs))
	}
}
