package mpi

import (
	"context"
	"fmt"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Group is the in-situ coupling mode of the MPI controller (§III of the
// paper): instead of one driver starting the whole dataflow, the graph is
// split across the ranks and each rank instantiates only its assigned
// sub-graph, requiring only the data local to that rank. Each simulation
// rank obtains its Shard, registers the callbacks, hands over its local
// external inputs and calls Run — typically concurrently from the host
// application's per-rank control flow.
type Group struct {
	ctrl *Controller
	fab  fabric.Transport

	mu        sync.Mutex
	firstErr  error
	started   map[int]bool
	pool      *fabric.Pool
	completed int
}

// NewGroup prepares an in-situ execution of the graph over the task map's
// shards. The options follow the standalone controller.
func NewGroup(g core.TaskGraph, m core.TaskMap, opts ...Option) (*Group, error) {
	c := New(opts...)
	if err := c.Initialize(g, m); err != nil {
		return nil, err
	}
	var fab fabric.Transport
	if c.opt.Blocking {
		fab = fabric.NewBlocking(m.ShardCount())
	} else {
		fab = fabric.New(m.ShardCount())
	}
	return &Group{ctrl: c, fab: fab, started: make(map[int]bool)}, nil
}

// RegisterCallback binds a task type's implementation for every shard of
// the group (in situ, every rank runs the same analysis code).
func (gr *Group) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	return gr.ctrl.reg.Register(cb, fn)
}

// Ranks returns the number of shards of the group.
func (gr *Group) Ranks() int { return gr.fab.Ranks() }

// Shard returns the per-rank handle.
func (gr *Group) Shard(rank int) (*Shard, error) {
	if rank < 0 || rank >= gr.fab.Ranks() {
		return nil, fmt.Errorf("mpi: group has no rank %d", rank)
	}
	return &Shard{group: gr, rank: rank}, nil
}

// abort records the first failure and cancels the fabric so every shard
// unwinds.
func (gr *Group) abort(err error) {
	gr.mu.Lock()
	if gr.firstErr == nil {
		gr.firstErr = err
	}
	gr.mu.Unlock()
	gr.fab.Cancel()
}

// Err returns the first error any shard hit.
func (gr *Group) Err() error {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	return gr.firstErr
}

// Shard is one rank's view of an in-situ dataflow execution.
type Shard struct {
	group *Group
	rank  int
}

// Rank returns the shard's rank.
func (s *Shard) Rank() int { return s.rank }

// LocalTasks returns the tasks assigned to this rank.
func (s *Shard) LocalTasks() ([]core.Task, error) {
	return core.LocalGraph(s.group.ctrl.graph, s.group.ctrl.tmap, core.ShardId(s.rank))
}

// Run executes this rank's sub-graph: it consumes the rank-local external
// inputs, exchanges messages with the other shards through the group's
// fabric, and returns the sink outputs produced by tasks of this rank. It
// blocks until the local sub-graph completes (or any shard fails) and must
// be called exactly once per rank, typically concurrently across ranks —
// the group's shared work-stealing executor starts with the first Run and
// is released when the last rank's Run returns.
func (s *Shard) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return s.RunContext(context.Background(), initial)
}

// RunContext is Run with cancellation and deadline propagation: a finished
// context cancels the group's fabric, unwinding every shard with an error
// wrapping core.ErrCancelled.
func (s *Shard) RunContext(ctx context.Context, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	gr := s.group
	gr.mu.Lock()
	if gr.started[s.rank] {
		gr.mu.Unlock()
		return nil, fmt.Errorf("mpi: rank %d already ran", s.rank)
	}
	gr.started[s.rank] = true
	// All shards dispatch into one executor, so an idle rank's worker can
	// steal a loaded rank's ready tasks (Inline mode needs none).
	if gr.pool == nil && !gr.ctrl.opt.Inline {
		gr.pool = gr.ctrl.newPool(gr.fab.Ranks())
	}
	pool := gr.pool
	gr.mu.Unlock()
	defer func() {
		gr.mu.Lock()
		gr.completed++
		if gr.completed == gr.fab.Ranks() && gr.pool != nil {
			done := gr.pool
			gr.pool = nil
			gr.mu.Unlock()
			done.Close()
			return
		}
		gr.mu.Unlock()
	}()

	if err := gr.ctrl.reg.Covers(gr.ctrl.graph); err != nil {
		gr.abort(err)
		return nil, err
	}
	if err := checkLocalInitial(gr.ctrl.graph, gr.ctrl.tmap, s.rank, initial); err != nil {
		gr.abort(err)
		return nil, err
	}

	stop := watchContext(ctx, gr.abort)
	defer stop()

	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	env := &runEnv{
		tmap:    gr.ctrl.tmap,
		fab:     gr.fab,
		pool:    pool,
		abort:   gr.abort,
		results: results,
		resMu:   &resMu,
	}
	if err := gr.ctrl.runRank(s.rank, env, initial); err != nil {
		gr.abort(err)
	}
	if err := gr.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
