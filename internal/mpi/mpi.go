// Package mpi implements the MPI runtime controller of the paper (§IV-A):
// static task placement via a task map, asynchronous point-to-point
// messages, and a per-rank thread pool that executes tasks greedily as soon
// as their inputs arrive.
//
// Each rank instantiates a separate controller loop that owns the local
// sub-graph, posts receives, tracks input readiness and hands ready tasks to
// background workers. Intra-rank messages skip serialization and pass the
// payload pointer directly; inter-rank messages (and fan-out copies) are
// serialized. A task assumes ownership of its inputs and relinquishes
// ownership of its outputs, so no data races occur on payloads.
//
// In this reproduction "ranks" are goroutine groups connected by the
// in-process fabric rather than OS processes on a Cray; the control
// structure — who serializes what, when tasks dispatch, what blocks —
// follows the paper's controller.
package mpi

import (
	"fmt"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Options configures a Controller.
type Options struct {
	// Workers is the per-rank thread-pool size; ready tasks beyond it queue.
	// Zero selects the default of 4.
	Workers int
	// Inline executes tasks inside the controller loop instead of on the
	// pool — the single-threaded execution style of the hand-tuned baseline.
	Inline bool
	// Blocking switches the fabric to rendezvous sends, modeling blocking
	// MPI_Send of large (rendezvous-protocol) messages. Like real
	// unbuffered blocking sends, it can deadlock on dataflows where two
	// ranks send to each other simultaneously; the safe single-threaded
	// "Original MPI" baseline of Fig. 6 uses Inline with asynchronous
	// sends, which removes compute/communication overlap (the effect the
	// paper attributes the performance gap to) without the deadlock.
	Blocking bool
	// AlwaysSerialize disables the in-memory message optimization, forcing
	// every payload through serialization (ablation).
	AlwaysSerialize bool
	// Observer, when non-nil, receives a notification per executed task.
	Observer core.Observer
}

// Controller executes task graphs in MPI style. Create one, Initialize it
// with a graph and task map, register callbacks, then Run.
type Controller struct {
	opt   Options
	graph core.TaskGraph
	tmap  core.TaskMap
	reg   *core.Registry

	// Stats from the last Run.
	lastStats fabric.Stats
}

// New returns an MPI controller with the given options.
func New(opt Options) *Controller {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	return &Controller{opt: opt, reg: core.NewRegistry()}
}

// Initialize implements core.Controller. The task map is required: it
// determines which tasks are assigned to which rank. Not all ranks must be
// assigned tasks, nor is there a limit per rank — running a graph on fewer
// ranks trades distributed for shared-memory parallelism.
func (c *Controller) Initialize(g core.TaskGraph, m core.TaskMap) error {
	if g == nil {
		return fmt.Errorf("mpi: nil task graph")
	}
	if m == nil {
		return fmt.Errorf("mpi: the MPI controller requires a task map")
	}
	if err := core.Validate(g); err != nil {
		return err
	}
	if err := core.ValidateMap(g, m); err != nil {
		return err
	}
	c.graph, c.tmap = g, m
	return nil
}

// RegisterCallback implements core.Controller.
func (c *Controller) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	if c.graph == nil {
		return core.ErrNotInitialized
	}
	return c.reg.Register(cb, fn)
}

// Stats returns the inter-rank traffic of the last Run.
func (c *Controller) Stats() fabric.Stats { return c.lastStats }

// Run implements core.Controller.
func (c *Controller) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if err := core.CheckInitial(c.graph, initial); err != nil {
		return nil, err
	}

	ranks := c.tmap.ShardCount()
	var fab *fabric.Fabric
	if c.opt.Blocking {
		fab = fabric.NewBlocking(ranks)
	} else {
		fab = fabric.New(ranks)
	}

	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	var firstErr error
	var errMu sync.Mutex
	abort := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		fab.Cancel()
	}

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := c.runRank(rank, fab, abort, initial, results, &resMu); err != nil {
				abort(err)
			}
		}(r)
	}
	wg.Wait()

	c.lastStats = fab.Snapshot()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runRank is the per-rank controller loop.
func (c *Controller) runRank(rank int, fab *fabric.Fabric, abort func(error), initial map[core.TaskId][]core.Payload, results map[core.TaskId][]core.Payload, resMu *sync.Mutex) error {
	local, err := core.LocalGraph(c.graph, c.tmap, core.ShardId(rank))
	if err != nil {
		return err
	}
	if len(local) == 0 {
		return nil // rank with no assigned tasks
	}
	tasks := make(map[core.TaskId]core.Task, len(local))
	for _, t := range local {
		tasks[t.Id] = t
	}

	st := core.NewDataflowState(c.graph)
	remaining := len(local)

	// Worker pool: a semaphore bounds concurrent task execution; each task
	// runs on its own goroutine, as in the paper's thread-per-ready-task
	// model, and routes its outputs when done. A failing worker records the
	// cause and cancels the fabric so every rank unwinds.
	sem := make(chan struct{}, c.opt.Workers)
	var workers sync.WaitGroup

	execute := func(t core.Task, in []core.Payload) {
		out, err := c.runTask(t, in)
		if err != nil {
			abort(err)
			return
		}
		if err := c.route(rank, fab, t, out, results, resMu); err != nil {
			abort(err)
		}
	}
	dispatch := func(t core.Task, in []core.Payload) {
		if c.opt.Inline {
			execute(t, in)
			return
		}
		workers.Add(1)
		sem <- struct{}{}
		go func() {
			defer workers.Done()
			defer func() { <-sem }()
			execute(t, in)
		}()
	}

	// Feed external inputs for local leaf tasks, then dispatch tasks that
	// are immediately ready.
	for _, t := range local {
		for _, p := range initial[t.Id] {
			if err := st.DeliverExternal(t.Id, p); err != nil {
				return err
			}
		}
	}
	for _, t := range local {
		if in, ok := st.Take(t.Id); ok {
			dispatch(t, in)
			remaining--
		}
	}

	// Receive loop: every arriving message targets a local task. Tasks are
	// scheduled greedily, in the order their last input arrives.
	for remaining > 0 {
		m, ok := fab.Recv(rank)
		if !ok {
			// The fabric was cancelled; the aborting goroutine recorded
			// the cause.
			workers.Wait()
			return nil
		}
		t, ok := tasks[m.Dest]
		if !ok {
			workers.Wait()
			return fmt.Errorf("mpi: rank %d received message for non-local task %d", rank, m.Dest)
		}
		if err := st.Deliver(m.Dest, m.Src, m.Payload); err != nil {
			workers.Wait()
			return err
		}
		if in, ok := st.Take(m.Dest); ok {
			dispatch(t, in)
			remaining--
		}
	}
	workers.Wait()
	return nil
}

// runTask executes one task's callback.
func (c *Controller) runTask(t core.Task, in []core.Payload) ([]core.Payload, error) {
	fn, ok := c.reg.Lookup(t.Callback)
	if !ok {
		return nil, fmt.Errorf("%w: callback %d", core.ErrUnregisteredCallback, t.Callback)
	}
	out, err := core.SafeInvoke(fn, in, t.Id)
	if err != nil {
		return nil, fmt.Errorf("mpi: task %d (callback %d): %w", t.Id, t.Callback, err)
	}
	if len(out) != len(t.Outgoing) {
		return nil, fmt.Errorf("mpi: task %d produced %d outputs, graph declares %d slots", t.Id, len(out), len(t.Outgoing))
	}
	if c.opt.Observer != nil {
		c.opt.Observer.TaskExecuted(t.Id, c.tmap.Shard(t.Id), t.Callback)
	}
	return out, nil
}

// route delivers a finished task's outputs: sink slots into the result map,
// intra-rank single-consumer edges as in-memory messages, everything else
// serialized over the fabric.
func (c *Controller) route(rank int, fab *fabric.Fabric, t core.Task, out []core.Payload, results map[core.TaskId][]core.Payload, resMu *sync.Mutex) error {
	for slot, consumers := range t.Outgoing {
		if len(consumers) == 0 {
			resMu.Lock()
			results[t.Id] = append(results[t.Id], out[slot])
			resMu.Unlock()
			continue
		}
		for i, dest := range consumers {
			destRank := int(c.tmap.Shard(dest))
			p := out[slot]
			inMemory := destRank == rank && i == len(consumers)-1 && !c.opt.AlwaysSerialize
			if !inMemory {
				// Inter-rank transfer or fan-out: serialize a copy so the
				// receiver owns its data.
				cp, err := p.CloneForWire()
				if err != nil {
					return fmt.Errorf("mpi: task %d output slot %d: %w", t.Id, slot, err)
				}
				p = cp
			}
			if err := fab.Send(fabric.Message{From: rank, To: destRank, Src: t.Id, Dest: dest, Payload: p}); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ core.Controller = (*Controller)(nil)
