// Package mpi implements the MPI runtime controller of the paper (§IV-A):
// static task placement via a task map, asynchronous point-to-point
// messages, and a per-rank thread pool that executes tasks greedily as soon
// as their inputs arrive.
//
// Each rank instantiates a separate controller loop that owns the local
// sub-graph, posts receives, tracks input readiness and hands ready tasks to
// background workers. Intra-rank messages skip serialization and pass the
// payload pointer directly; inter-rank messages (and fan-out copies) are
// serialized. A task assumes ownership of its inputs and relinquishes
// ownership of its outputs, so no data races occur on payloads.
//
// Scheduling is graph-aware: at Initialize the controller runs a one-pass
// critical-path analysis (core.CriticalPathsFor, cached per graph
// fingerprint) and the receive loop dispatches ready tasks into per-rank
// priority deques ordered by downstream depth, so the most critical ready
// task runs first instead of the oldest. The deques are drained by a shared
// work-stealing executor (fabric.Pool): a global budget of workers —
// defaulting to GOMAXPROCS, not a fixed per-rank pool — is homed round-robin
// over the ranks, and an idle worker whose home rank has no ready work
// steals the most critical task of a loaded rank. Scheduling order never
// changes outputs: tasks still run only when every input has arrived, and
// routing depends only on the graph and the task map.
//
// In this reproduction "ranks" are goroutine groups connected by the
// in-process fabric rather than OS processes on a Cray; the control
// structure — who serializes what, when tasks dispatch, what blocks —
// follows the paper's controller.
package mpi

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/journal"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// TransportFactory builds the transport an in-process Run executes over —
// the hook the functional option WithTransport installs. The returned
// transport must be receivable for every rank in-process (like the
// in-memory fabric); per-process transports (wire) go through RunRank.
type TransportFactory func(ranks int) fabric.Transport

// Options configures a Controller.
type Options struct {
	// Workers is the global worker budget of a run: the number of executor
	// goroutines shared by all ranks. With stealing enabled (the default) an
	// idle rank's worker executes another rank's ready tasks, so the budget
	// bounds total execution concurrency rather than per-rank concurrency.
	// Zero selects runtime.GOMAXPROCS(0). When stealing is disabled the
	// budget is raised to at least one homed worker per rank, since nothing
	// else can drain a rank's deque.
	Workers int
	// FIFO dispatches ready tasks in arrival order instead of
	// most-critical-first — the pre-scheduler discipline, kept as the
	// ablation baseline of the scheduler benches.
	FIFO bool
	// NoSteal pins workers to their home rank's deque (ablation). It forces
	// at least one worker per rank.
	NoSteal bool
	// Inline executes tasks inside the controller loop instead of on the
	// pool — the single-threaded execution style of the hand-tuned baseline.
	Inline bool
	// Blocking switches the fabric to rendezvous sends, modeling blocking
	// MPI_Send of large (rendezvous-protocol) messages. Like real
	// unbuffered blocking sends, it can deadlock on dataflows where two
	// ranks send to each other simultaneously; the safe single-threaded
	// "Original MPI" baseline of Fig. 6 uses Inline with asynchronous
	// sends, which removes compute/communication overlap (the effect the
	// paper attributes the performance gap to) without the deadlock.
	Blocking bool
	// AlwaysSerialize disables the in-memory message optimization, forcing
	// every payload through serialization (ablation).
	AlwaysSerialize bool
	// Observer, when non-nil, receives a notification per executed task. An
	// Observer that also implements core.SchedObserver additionally receives
	// per-task queue timing (enqueue and dispatch instants); one implementing
	// core.ReplayObserver or core.RecoveryObserver additionally receives
	// fault-tolerance notifications (ledger replays, recovery epochs).
	Observer core.Observer
	// Retry bounds fault-tolerant execution (RunRecover): attempt count,
	// backoff and per-attempt timeout. The zero value selects
	// core.DefaultRetryPolicy.
	Retry core.RetryPolicy
	// Transport, when non-nil, builds the transport Run/RunContext executes
	// over instead of the default in-memory fabric — the seam fault-injection
	// and custom interconnects plug into.
	Transport TransportFactory
	// Journal, when non-empty, is the directory where every rank's lineage
	// ledger is persisted as a segmented CRC32C record log
	// (internal/journal): rank r journals under Journal/rank-r. A run
	// started over an existing journal resumes — journaled tasks replay
	// their recorded outputs instead of re-executing, so only the
	// un-journaled frontier runs. Journaling implies fault-tolerant
	// bookkeeping (sequence-stamped messages, receiver dedup) even outside
	// RunRecover.
	Journal string
	// JournalSync selects the journal's fsync policy. The zero value
	// (journal.SyncEveryRecord) makes every recorded task crash-durable;
	// see journal.SyncPolicy for the cheaper relaxations.
	JournalSync journal.SyncPolicy
	// JournalCommitInterval and JournalCommitRecords tune the
	// journal.SyncGroupCommit policy's commit window (time and record
	// bounds). Zero keeps the journal defaults (2ms, 64 records); both are
	// ignored by the other sync policies.
	JournalCommitInterval time.Duration
	JournalCommitRecords  int
	// HeartbeatInterval and HeartbeatTimeout tune the wire transport's
	// failure detector for meshes built from this controller's WireOptions
	// template. Zero keeps the wire defaults (1s interval, 4x timeout).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// WireTier selects the wire transport tier for meshes built from this
	// controller's WireOptions template: wire.TierAuto (default) rides
	// unix-domain sockets between co-located ranks and TCP across hosts;
	// wire.TierTCP and wire.TierUnix force one transport.
	WireTier wire.Tier

	// Validation bookkeeping stamped by the functional options so
	// conflicting combinations surface as errors at Initialize instead of
	// silently letting the last option win. The struct form leaves these
	// zero and is validated on its field values alone.
	syncSet  bool
	syncWas  journal.SyncPolicy
	groupSet bool
	optErr   error
}

// validate rejects option combinations with no coherent meaning: an
// explicit WithJournalSync policy fighting WithJournalGroupCommit, or a
// negative commit window. It returns the first error a functional option
// recorded while being applied.
func (o *Options) validate() error {
	if o.optErr != nil {
		return o.optErr
	}
	if o.syncSet && o.groupSet && o.syncWas != journal.SyncGroupCommit {
		return fmt.Errorf("mpi: WithJournalSync(%v) conflicts with WithJournalGroupCommit (which implies %v); pass one of them",
			o.syncWas, journal.SyncGroupCommit)
	}
	if o.JournalCommitInterval < 0 {
		return fmt.Errorf("mpi: negative journal commit interval %v", o.JournalCommitInterval)
	}
	if o.JournalCommitRecords < 0 {
		return fmt.Errorf("mpi: negative journal commit record bound %d", o.JournalCommitRecords)
	}
	return nil
}

// Controller executes task graphs in MPI style. Create one, Initialize it
// with a graph and task map, register callbacks, then Run.
type Controller struct {
	opt       Options
	graph     core.TaskGraph
	tmap      core.TaskMap
	reg       *core.Registry
	prio      *core.CriticalPaths
	schedObs  core.SchedObserver
	replayObs core.ReplayObserver
	recObs    core.RecoveryObserver

	// Stats from the last Run.
	lastStats fabric.Stats

	// Stats from the last journaled run (guarded separately: concurrent
	// RunRank calls on one controller may finish in any order).
	jmu    sync.Mutex
	jstats JournalStats
}

// JournalStats summarizes the last journaled run of a controller: how much
// completed work the journal carried into the run, how much of it was
// replayed instead of re-executed, and whether durability degraded.
type JournalStats struct {
	// Restored counts tasks inherited from the journal at open — completed
	// work a resumed run does not repeat.
	Restored int
	// Replayed counts tasks whose recorded outputs were re-emitted without
	// running the callback.
	Replayed int
	// Executed counts callback executions.
	Executed int
	// StoreErrors counts failed journal appends; the affected entries stay
	// pinned in memory, so only durability (not correctness) degraded.
	StoreErrors int
}

// JournalStats returns the journal counters of the last journaled run (or
// rank, for RunRank). Zero when the controller has no journal configured.
func (c *Controller) JournalStats() JournalStats {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.jstats
}

// recordJournalStats aggregates the given ledgers into the controller's
// last-run journal counters.
func (c *Controller) recordJournalStats(leds []*core.Ledger) {
	var js JournalStats
	for _, l := range leds {
		if l == nil {
			continue
		}
		js.Restored += l.Restored()
		js.Replayed += l.Replays()
		js.Executed += l.Executions()
		js.StoreErrors += l.StoreErrors()
	}
	c.jmu.Lock()
	c.jstats = js
	c.jmu.Unlock()
}

// openLedger opens rank's slice of the controller's journal directory and
// returns a ledger journaling through it. The caller owns the store and
// must Close it after the run.
func (c *Controller) openLedger(rank int) (*core.Ledger, *journal.LedgerStore, error) {
	dir := filepath.Join(c.opt.Journal, fmt.Sprintf("rank-%d", rank))
	store, err := journal.OpenLedgerStore(dir, journal.Options{
		Sync:           c.opt.JournalSync,
		CommitInterval: c.opt.JournalCommitInterval,
		CommitRecords:  c.opt.JournalCommitRecords,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: rank %d journal: %w", rank, err)
	}
	return core.NewLedgerBacked(store, 0), store, nil
}

// openLedgers opens one durable ledger per rank under the controller's
// journal directory. The returned close function records the run's journal
// counters and closes every store exactly once — callers may defer it on
// every exit path (including error and cancellation unwinds) without
// double-closing. On an open error the stores opened so far are closed
// before returning.
func (c *Controller) openLedgers(ranks int) (leds []*core.Ledger, close func(), err error) {
	leds = make([]*core.Ledger, ranks)
	stores := make([]*journal.LedgerStore, ranks)
	for r := 0; r < ranks; r++ {
		led, store, err := c.openLedger(r)
		if err != nil {
			for _, s := range stores[:r] {
				s.Close()
			}
			return nil, nil, err
		}
		leds[r], stores[r] = led, store
	}
	var once sync.Once
	return leds, func() {
		once.Do(func() {
			c.recordJournalStats(leds)
			for _, s := range stores {
				s.Close()
			}
		})
	}, nil
}

// New returns an MPI controller. Configuration is functional-options style,
// applied left to right:
//
//	mpi.New(mpi.WithWorkers(4), mpi.WithRetry(policy))
func New(opts ...Option) *Controller {
	var opt Options
	for _, o := range opts {
		o.apply(&opt)
	}
	return newFromOptions(opt)
}

// newFromOptions builds a controller from a resolved configuration — the
// internal seam the service uses to stamp per-run controllers from its
// option template.
func newFromOptions(opt Options) *Controller {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	c := &Controller{opt: opt, reg: core.NewRegistry()}
	if so, ok := opt.Observer.(core.SchedObserver); ok {
		c.schedObs = so
	}
	if ro, ok := opt.Observer.(core.ReplayObserver); ok {
		c.replayObs = ro
	}
	if ro, ok := opt.Observer.(core.RecoveryObserver); ok {
		c.recObs = ro
	}
	return c
}

// Initialize implements core.Controller. The task map is required: it
// determines which tasks are assigned to which rank. Not all ranks must be
// assigned tasks, nor is there a limit per rank — running a graph on fewer
// ranks trades distributed for shared-memory parallelism.
func (c *Controller) Initialize(g core.TaskGraph, m core.TaskMap) error {
	if err := c.opt.validate(); err != nil {
		return err
	}
	if g == nil {
		return fmt.Errorf("mpi: nil task graph")
	}
	if m == nil {
		return fmt.Errorf("mpi: the MPI controller requires a task map")
	}
	if err := core.Validate(g); err != nil {
		return err
	}
	if err := core.ValidateMap(g, m); err != nil {
		return err
	}
	prio, err := core.CriticalPathsFor(g)
	if err != nil {
		return err
	}
	c.graph, c.tmap, c.prio = g, m, prio
	return nil
}

// RegisterCallback implements core.Controller.
func (c *Controller) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	if c.graph == nil {
		return core.ErrNotInitialized
	}
	return c.reg.Register(cb, fn)
}

// Stats returns the inter-rank traffic of the last Run.
func (c *Controller) Stats() fabric.Stats { return c.lastStats }

// budget returns the worker count for a run over the given rank count,
// bounded by the number of tasks that can ever be in flight.
func (c *Controller) budget(ranks int) int {
	n := c.opt.Workers
	if size := c.graph.Size(); n > size {
		n = size
	}
	if n < 1 {
		n = 1
	}
	if c.opt.NoSteal && n < ranks {
		// Without stealing every rank needs a homed worker of its own.
		n = ranks
	}
	return n
}

// newPool builds the shared work-stealing executor for a run over ranks.
func (c *Controller) newPool(ranks int) *fabric.Pool {
	n := c.budget(ranks)
	return fabric.NewPool(ranks, fabric.RoundRobinHomes(n, ranks),
		fabric.PoolOptions{FIFO: c.opt.FIFO, NoSteal: c.opt.NoSteal})
}

// Run implements core.Controller.
func (c *Controller) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.RunContext(context.Background(), initial)
}

// RunContext implements core.Controller: Run with cancellation and deadline
// propagation. When the context ends, the fabric is cancelled so every rank
// loop and blocked receive unwinds promptly, and the call returns an error
// wrapping core.ErrCancelled.
func (c *Controller) RunContext(ctx context.Context, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if err := core.CheckInitial(c.graph, initial); err != nil {
		return nil, err
	}

	ranks := c.tmap.ShardCount()

	// Journaled runs give every rank a durable ledger before any task runs:
	// a fresh directory journals progress, an existing one resumes from it.
	var leds []*core.Ledger
	if c.opt.Journal != "" {
		var closeLeds func()
		var err error
		leds, closeLeds, err = c.openLedgers(ranks)
		if err != nil {
			return nil, err
		}
		defer closeLeds()
	}

	var fab fabric.Transport
	switch {
	case c.opt.Transport != nil:
		fab = c.opt.Transport(ranks)
	case c.opt.Blocking:
		fab = fabric.NewBlocking(ranks)
	default:
		fab = fabric.New(ranks)
	}
	var pool *fabric.Pool
	if !c.opt.Inline {
		pool = c.newPool(ranks)
		defer pool.Close()
	}

	results, err := c.runAllRanks(ctx, fab, pool, leds, initial)
	c.lastStats = fab.Snapshot()
	return results, err
}

// runAllRanks drives every rank of one dataflow execution over fab,
// dispatching onto pool (nil = inline execution). It owns abort propagation
// and result merging but neither the transport nor the pool — both outlive
// the call, which is what lets a resident Service run a stream of graphs
// over one warm fabric and executor (each Submit passing its run's demuxed
// transport view). One-shot paths (RunContext) build and tear down a fresh
// pair per call.
func (c *Controller) runAllRanks(ctx context.Context, fab fabric.Transport, pool *fabric.Pool, leds []*core.Ledger, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	ranks := c.tmap.ShardCount()
	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	var firstErr error
	var errMu sync.Mutex
	abort := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		fab.Cancel()
	}
	stop := watchContext(ctx, abort)
	defer stop()

	env := &runEnv{
		tmap:    c.tmap,
		fab:     fab,
		pool:    pool,
		abort:   abort,
		results: results,
		resMu:   &resMu,
		leds:    leds,
	}
	if leds != nil {
		env.seq = make([]atomic.Uint64, ranks)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := c.runRank(rank, env, initial); err != nil {
				abort(err)
			}
		}(r)
	}
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// watchContext aborts the run when the context ends. The returned stop
// function retires the watcher; it must be called before the run's results
// are returned so a late cancellation cannot fire mid-teardown.
func watchContext(ctx context.Context, abort func(error)) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stopc := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			abort(core.Cancelled(ctx))
		case <-stopc:
		}
	}()
	return func() { close(stopc) }
}

// Fingerprint returns the canonical fingerprint of the controller's graph
// and registered callbacks — what a rank presents during the wire
// rendezvous handshake so mismatched binaries are rejected before any
// message flows. It is zero before Initialize.
func (c *Controller) Fingerprint() core.Fingerprint {
	if c.graph == nil {
		return core.Fingerprint{}
	}
	return core.GraphFingerprint(c.graph, c.reg.Ids())
}

// WireOptions returns the wire transport template this controller implies:
// its graph fingerprint plus any heartbeat tuning (WithHeartbeat). Callers
// building a mesh fill in Rank/Ranks/Addr (wire.Mesh does so itself).
func (c *Controller) WireOptions() wire.Options {
	return wire.Options{
		Fingerprint:       c.Fingerprint(),
		HeartbeatInterval: c.opt.HeartbeatInterval,
		HeartbeatTimeout:  c.opt.HeartbeatTimeout,
		Tier:              c.opt.WireTier,
	}
}

// RunRank executes exactly one rank of the dataflow over the provided
// transport — the multi-process entry point. Where Run spawns every rank as
// a goroutine over an in-memory fabric sharing one work-stealing executor,
// RunRank drives a single rank whose peers live behind the transport (other
// OS processes over the TCP fabric, or other in-process RunRank calls
// sharing a transport per rank); its executor serves only the local rank,
// so the worker budget applies per process.
//
// initial must contain exactly the external inputs of this rank's tasks.
// RunRank returns the sink outputs produced by local tasks. On any local
// failure the transport is cancelled so every peer unwinds; a peer or
// transport failure surfaces as the transport's typed error.
//
// RunRank is safe to call concurrently for different ranks on one shared
// controller (it does not update Stats — consult the transport's Snapshot).
func (c *Controller) RunRank(rank int, tr fabric.Transport, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.runRankOn(context.Background(), rank, tr, initial, nil, nil)
}

// RunRankContext is RunRank with cancellation and deadline propagation: a
// finished context cancels the transport, unwinding this rank (and, over
// the wire, its peers) with an error wrapping core.ErrCancelled.
func (c *Controller) RunRankContext(ctx context.Context, rank int, tr fabric.Transport, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.runRankOn(ctx, rank, tr, initial, nil, nil)
}

// runRankOn is the common single-rank entry: RunRank/RunRankContext pass a
// nil ledger and map (plain execution over c.tmap); the recovery
// coordinator passes the rank's persistent lineage ledger and the epoch's
// reassigned task map.
func (c *Controller) runRankOn(ctx context.Context, rank int, tr fabric.Transport, initial map[core.TaskId][]core.Payload, led *core.Ledger, tmap core.TaskMap) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if tmap == nil {
		tmap = c.tmap
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if got, want := tr.Ranks(), tmap.ShardCount(); got != want {
		return nil, fmt.Errorf("mpi: transport has %d ranks, task map shards over %d", got, want)
	}
	if rank < 0 || rank >= tr.Ranks() {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, tr.Ranks())
	}
	if err := checkLocalInitial(c.graph, tmap, rank, initial); err != nil {
		tr.Cancel()
		return nil, err
	}

	// A journal-configured plain run (RunRank without a recovery
	// coordinator) opens its own durable ledger: outputs journal as tasks
	// complete, and a restart over the same directory replays them.
	if led == nil && c.opt.Journal != "" {
		var store *journal.LedgerStore
		var err error
		led, store, err = c.openLedger(rank)
		if err != nil {
			tr.Cancel()
			return nil, err
		}
		defer func() {
			c.recordJournalStats([]*core.Ledger{led})
			store.Close()
		}()
	}

	var pool *fabric.Pool
	if !c.opt.Inline {
		// All workers home on the one local rank; peer deques stay empty.
		n := c.opt.Workers
		if local := len(tmap.Ids(core.ShardId(rank))); n > local {
			n = local
		}
		if n < 1 {
			n = 1
		}
		homes := make([]int, n)
		for i := range homes {
			homes[i] = rank
		}
		pool = fabric.NewPool(tr.Ranks(), homes,
			fabric.PoolOptions{FIFO: c.opt.FIFO, NoSteal: c.opt.NoSteal})
		defer pool.Close()
	}

	var firstErr error
	var errMu sync.Mutex
	abort := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		tr.Cancel()
	}
	stop := watchContext(ctx, abort)
	defer stop()

	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	env := &runEnv{
		tmap:    tmap,
		fab:     tr,
		pool:    pool,
		abort:   abort,
		results: results,
		resMu:   &resMu,
	}
	if led != nil {
		env.leds = make([]*core.Ledger, tr.Ranks())
		env.leds[rank] = led
		env.seq = make([]atomic.Uint64, tr.Ranks())
	}
	if err := c.runRank(rank, env, initial); err != nil {
		abort(err)
	}
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// checkLocalInitial verifies rank-local external inputs: exactly the
// ExternalInput slots of the rank's tasks must be covered, no more, no less.
func checkLocalInitial(g core.TaskGraph, m core.TaskMap, rank int, initial map[core.TaskId][]core.Payload) error {
	local, err := core.LocalGraph(g, m, core.ShardId(rank))
	if err != nil {
		return err
	}
	want := make(map[core.TaskId]int)
	for _, t := range local {
		n := 0
		for _, in := range t.Incoming {
			if in == core.ExternalInput {
				n++
			}
		}
		if n > 0 {
			want[t.Id] = n
		}
	}
	for id, ps := range initial {
		n, ok := want[id]
		if !ok {
			return fmt.Errorf("mpi: rank %d received inputs for task %d, which expects none (or is not local)", rank, id)
		}
		if len(ps) != n {
			return fmt.Errorf("mpi: rank %d task %d expects %d external inputs, got %d", rank, id, n, len(ps))
		}
		delete(want, id)
	}
	for id := range want {
		return fmt.Errorf("mpi: rank %d task %d is missing its external inputs", rank, id)
	}
	return nil
}

// scratchPool recycles the per-execution message scratch slices the workers
// batch a task's outputs into; with the shared executor workers are no
// longer rank-scoped, so scratch lives in a pool instead of a worker local.
var scratchPool = sync.Pool{New: func() any { return new([]fabric.Message) }}

// runEnv bundles the state one dataflow execution threads through the rank
// loops: the task map of this epoch (recovery may differ from Initialize's),
// the transport, the shared executor, the abort hook, the merged sink
// results, and — for fault-tolerant runs — the rank's lineage ledger plus
// the per-home-rank egress sequence counters that give messages a dedup
// identity.
type runEnv struct {
	tmap    core.TaskMap
	fab     fabric.Transport
	pool    *fabric.Pool
	abort   func(error)
	results map[core.TaskId][]core.Payload
	resMu   *sync.Mutex
	leds    []*core.Ledger  // per-rank ledgers; nil outside ledgered runs
	seq     []atomic.Uint64 // nil outside fault-tolerant runs
}

// ledger returns rank's lineage ledger, or nil when the run keeps none.
// RunContext shares one env across every in-process rank, so ledgers are
// indexed rather than a single field.
func (e *runEnv) ledger(rank int) *core.Ledger {
	if e.leds == nil {
		return nil
	}
	return e.leds[rank]
}

// runRank is the per-rank controller loop: it drains the rank's mailbox,
// tracks input readiness and dispatches ready tasks into the rank's
// priority deque on the shared executor (pool is nil only in Inline mode).
func (c *Controller) runRank(rank int, env *runEnv, initial map[core.TaskId][]core.Payload) error {
	local, err := core.LocalGraph(c.graph, env.tmap, core.ShardId(rank))
	if err != nil {
		return err
	}
	if len(local) == 0 {
		return nil // rank with no assigned tasks
	}
	tasks := make(map[core.TaskId]core.Task, len(local))
	for _, t := range local {
		tasks[t.Id] = t
	}

	st := core.NewDataflowState(c.graph)
	remaining := len(local)
	led := env.ledger(rank)

	// execute runs one ready task on whichever worker picked it up and
	// routes its outputs. A failing task records the cause and cancels the
	// fabric so every rank unwinds. In a fault-tolerant run, a task whose
	// outputs are already in the lineage ledger is replayed — its recorded
	// wire forms are re-routed downstream without re-running the callback —
	// so a recovery epoch only pays for the undelivered frontier.
	execute := func(t core.Task, in []core.Payload, scratch []fabric.Message) []fabric.Message {
		if led != nil {
			if rec, ok := led.Outputs(t.Id); ok {
				// The inputs were assembled only to satisfy readiness; the
				// replayed outputs come from the ledger.
				for i := range in {
					in[i].Release()
				}
				out := make([]core.Payload, len(rec))
				for s, b := range rec {
					cp := make([]byte, len(b))
					copy(cp, b)
					out[s] = core.Buffer(cp)
				}
				led.CountReplay()
				if c.replayObs != nil {
					c.replayObs.TaskReplayed(t.Id, env.tmap.Shard(t.Id), t.Callback)
				}
				scratch, err := c.route(rank, env, t, 0, out, scratch)
				if err != nil {
					env.abort(err)
				}
				return scratch
			}
		}
		// A dead input cancels the task: the callback is skipped and dead
		// tokens propagate on every output slot. Cancellation journals like
		// a normal execution, so a resumed run replays it instead of
		// re-deciding.
		if out, cancelled := core.CancelDead(t, in); cancelled {
			var attempt uint32
			if led != nil {
				attempt = uint32(led.BeginAttempt(t.Id))
				recordOutputs(led, t, out)
			}
			scratch, err := c.route(rank, env, t, attempt, out, scratch)
			if err != nil {
				env.abort(err)
			}
			return scratch
		}
		// Detach private copies of shared fan-out wire forms on the worker,
		// so the copies of independent consumers proceed in parallel instead
		// of serializing on the receive loop.
		for i := range in {
			in[i] = in[i].Own()
		}
		var attempt uint32
		if led != nil {
			attempt = uint32(led.BeginAttempt(t.Id))
		}
		out, err := c.runTask(t, in, env.tmap.Shard(t.Id))
		if err != nil {
			env.abort(err)
			return scratch
		}
		if led != nil {
			recordOutputs(led, t, out)
		}
		scratch, err = c.route(rank, env, t, attempt, out, scratch)
		if err != nil {
			env.abort(err)
		}
		return scratch
	}

	// pend tracks this rank's dispatched-but-unfinished tasks; runRank only
	// returns once its routes completed, exactly as the old per-rank pool's
	// Wait did. The executor itself is shared and outlives the rank loop.
	var pend sync.WaitGroup
	defer pend.Wait()

	var inlineScratch []fabric.Message
	dispatch := func(t core.Task, in []core.Payload) {
		if c.opt.Inline {
			inlineScratch = execute(t, in, inlineScratch)
			return
		}
		// Priority dispatch: the deque hands workers the most critical
		// ready task — the one with the longest downstream chain — not the
		// oldest (§IV-A schedules greedily; the priority decides among
		// simultaneously ready tasks and cannot affect outputs).
		var enq time.Time
		if c.schedObs != nil {
			enq = time.Now()
		}
		pend.Add(1)
		env.pool.Submit(rank, int64(c.prio.Depth(t.Id)), func() {
			defer pend.Done()
			if c.schedObs != nil {
				c.schedObs.TaskQueued(t.Id, enq, time.Now())
			}
			sp := scratchPool.Get().(*[]fabric.Message)
			*sp = execute(t, in, *sp)
			scratchPool.Put(sp)
		})
	}

	// Feed external inputs for local leaf tasks, then dispatch tasks that
	// are immediately ready.
	for _, t := range local {
		for _, p := range initial[t.Id] {
			if err := st.DeliverExternal(t.Id, p); err != nil {
				return err
			}
		}
	}
	for _, t := range local {
		if in, ok := st.Take(t.Id); ok {
			dispatch(t, in)
			remaining--
		}
	}

	// Receive loop: every arriving message targets a local task. Tasks
	// become ready in the order their last input arrives and enter the
	// priority deque; messages are drained in batches so a burst costs one
	// mailbox lock, not one per message. Dispatch never blocks, so the loop
	// keeps draining and accounting inputs while every worker is busy.
	//
	// Fault-tolerant runs additionally dedup by message sequence id: a
	// redelivered duplicate (injected or transport-retried) would otherwise
	// fill a second input slot and corrupt readiness accounting.
	batch := make([]fabric.Message, 64)
	var seen []map[uint64]struct{}
	if led != nil {
		seen = make([]map[uint64]struct{}, env.fab.Ranks())
	}
	for remaining > 0 {
		n, ok := env.fab.RecvBatch(rank, batch)
		if !ok {
			// Delivery became impossible. For a controller-initiated abort
			// the aborting goroutine recorded the cause and Err() is nil;
			// a transport-level failure (lost peer, broken wire) surfaces
			// here as the typed transport error.
			return env.fab.Err()
		}
		for i := 0; i < n; i++ {
			m := batch[i]
			batch[i] = fabric.Message{} // drop the payload reference
			if seen != nil && m.Seq != 0 {
				s := seen[m.From]
				if s == nil {
					s = make(map[uint64]struct{})
					seen[m.From] = s
				}
				if _, dup := s[m.Seq]; dup {
					m.Payload.Release()
					continue
				}
				s[m.Seq] = struct{}{}
			}
			t, ok := tasks[m.Dest]
			if !ok {
				return fmt.Errorf("mpi: rank %d received message for non-local task %d", rank, m.Dest)
			}
			if err := st.Deliver(m.Dest, m.Src, m.Payload); err != nil {
				return err
			}
			if in, ok := st.Take(m.Dest); ok {
				dispatch(t, in)
				remaining--
			}
		}
	}
	return nil
}

// recordOutputs retains a completed task's serialized outputs in the
// lineage ledger. Best effort: if any slot cannot serialize (an object
// payload without Serializable) the task stays unrecorded and simply
// re-executes in a recovery epoch — always correct under the idempotence
// contract, just not accelerated.
func recordOutputs(led *core.Ledger, t core.Task, out []core.Payload) {
	wires := make([][]byte, len(out))
	for i := range out {
		cp, err := out[i].CloneForWire()
		if err != nil {
			return
		}
		wires[i] = cp.Data
	}
	led.Record(t.Id, wires)
}

// runTask executes one task's callback. shard is the task's placement in
// the executing run's task map (a recovery epoch's may differ from the one
// given to Initialize).
func (c *Controller) runTask(t core.Task, in []core.Payload, shard core.ShardId) ([]core.Payload, error) {
	fn, ok := c.reg.Lookup(t.Callback)
	if !ok {
		return nil, fmt.Errorf("%w: callback %d", core.ErrUnregisteredCallback, t.Callback)
	}
	out, err := core.SafeInvoke(fn, in, t.Id)
	if err != nil {
		return nil, fmt.Errorf("mpi: task %d (callback %d): %w", t.Id, t.Callback, err)
	}
	if len(out) != len(t.Outgoing) {
		return nil, fmt.Errorf("mpi: task %d produced %d outputs, graph declares %d slots", t.Id, len(out), len(t.Outgoing))
	}
	if c.opt.Observer != nil {
		c.opt.Observer.TaskExecuted(t.Id, shard, t.Callback)
	}
	return out, nil
}

// route delivers a finished task's outputs: sink slots into the result map,
// intra-rank single-consumer edges as in-memory messages, everything else
// as wire forms over the fabric.
//
// Copy-on-fan-out: a slot with several wire consumers is serialized exactly
// once and the immutable wire form is shared between them through a
// refcounted wrapper (core.SharedPayload); each consumer detaches a private
// copy at delivery. A slot with a single wire consumer hands the
// relinquished buffer over without any copy. All of a task's messages are
// collected into scratch and enqueued with one batched send per destination
// run, so the whole fan-out costs one serialization and O(destinations)
// lock acquisitions. The (possibly grown) scratch slice is returned for
// reuse by the calling worker.
//
// rank is the task's home rank (where its inputs were assembled), not the
// rank of the stealing worker: the in-memory shortcut and the message From
// field must follow placement, or outputs would change with the schedule.
//
// In fault-tolerant runs every message is stamped with a per-home-rank
// sequence id (the receiver's dedup identity) and the producing task's
// attempt number.
func (c *Controller) route(rank int, env *runEnv, t core.Task, attempt uint32, out []core.Payload, scratch []fabric.Message) ([]fabric.Message, error) {
	batch := scratch[:0]
	for slot, consumers := range t.Outgoing {
		if len(consumers) == 0 {
			// A dead token reaching a sink is a deactivated branch's
			// non-result; only live payloads leave the dataflow.
			if core.IsDead(out[slot]) {
				continue
			}
			env.resMu.Lock()
			env.results[t.Id] = append(env.results[t.Id], out[slot])
			env.resMu.Unlock()
			continue
		}
		p := out[slot]
		// The last intra-rank consumer receives the payload pointer
		// in-memory (§IV-A); every other consumer needs the wire form.
		inMemoryIdx := -1
		if !c.opt.AlwaysSerialize {
			last := len(consumers) - 1
			if int(env.tmap.Shard(consumers[last])) == rank {
				inMemoryIdx = last
			}
		}
		wireConsumers := len(consumers)
		if inMemoryIdx >= 0 {
			wireConsumers--
		}
		var wire core.Payload
		var err error
		switch {
		case wireConsumers == 0:
			// Single local consumer: pure pointer pass.
		case wireConsumers == 1 && inMemoryIdx < 0:
			// Single wire consumer and nothing else references the slot:
			// the producer relinquished the buffer, hand it over as-is.
			wire, err = p.WireForm()
		default:
			// Fan-out: serialize once, share the immutable wire form. If
			// the raw payload is also pointer-passed locally, the shared
			// form must not alias it (the local consumer may mutate).
			wire, err = core.SharedPayload(p, wireConsumers, inMemoryIdx >= 0)
		}
		if err != nil {
			return batch, fmt.Errorf("mpi: task %d output slot %d: %w", t.Id, slot, err)
		}
		for i, dest := range consumers {
			mp := wire
			if i == inMemoryIdx {
				mp = p
			}
			m := fabric.Message{From: rank, To: int(env.tmap.Shard(dest)), Src: t.Id, Dest: dest, Payload: mp, Attempt: attempt}
			if env.seq != nil {
				m.Seq = env.seq[rank].Add(1)
			}
			batch = append(batch, m)
		}
	}
	err := env.fab.SendN(batch)
	clear(batch) // drop payload references until the next task reuses it
	return batch, err
}

var _ core.Controller = (*Controller)(nil)
