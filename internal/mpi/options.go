package mpi

import (
	"fmt"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/journal"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// Option configures a Controller at construction. Each functional option
// below (WithWorkers, WithRetry, …) sets one knob; options are applied left
// to right, so a later option overrides an earlier one for the same knob.
type Option interface {
	apply(*Options)
}

type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithWorkers sets the global worker budget (see Options.Workers).
func WithWorkers(n int) Option {
	return optionFunc(func(o *Options) { o.Workers = n })
}

// WithObserver installs the execution observer (see Options.Observer).
func WithObserver(obs core.Observer) Option {
	return optionFunc(func(o *Options) { o.Observer = obs })
}

// WithRetry sets the retry policy governing fault-tolerant execution
// (RunRecover): attempt count, backoff, per-attempt timeout.
func WithRetry(p core.RetryPolicy) Option {
	return optionFunc(func(o *Options) { o.Retry = p })
}

// WithTransport installs a transport factory for in-process runs — the
// seam fault injection and custom interconnects plug into (see
// Options.Transport).
func WithTransport(t TransportFactory) Option {
	return optionFunc(func(o *Options) { o.Transport = t })
}

// WithInline selects inline execution (see Options.Inline).
func WithInline(inline bool) Option {
	return optionFunc(func(o *Options) { o.Inline = inline })
}

// WithFIFO selects arrival-order dispatch instead of most-critical-first
// (see Options.FIFO).
func WithFIFO(fifo bool) Option {
	return optionFunc(func(o *Options) { o.FIFO = fifo })
}

// WithBlocking switches the fabric to rendezvous sends, modeling blocking
// MPI communication (see Options.Blocking).
func WithBlocking(blocking bool) Option {
	return optionFunc(func(o *Options) { o.Blocking = blocking })
}

// WithNoSteal disables work stealing between ranks (see Options.NoSteal).
func WithNoSteal(noSteal bool) Option {
	return optionFunc(func(o *Options) { o.NoSteal = noSteal })
}

// WithAlwaysSerialize forces every payload through its wire form even for
// rank-local deliveries (see Options.AlwaysSerialize) — the configuration
// conformance tests use to prove serialization round-trips are lossless.
func WithAlwaysSerialize(always bool) Option {
	return optionFunc(func(o *Options) { o.AlwaysSerialize = always })
}

// WithJournal persists every rank's lineage ledger under dir (rank r under
// dir/rank-r) as a crash-safe record log, making runs resumable: a
// controller started over an existing journal replays journaled outputs
// and executes only the remaining frontier (see Options.Journal).
func WithJournal(dir string) Option {
	return optionFunc(func(o *Options) { o.Journal = dir })
}

// WithJournalSync selects the journal's fsync policy (see
// Options.JournalSync). Combining it with WithJournalGroupCommit is an
// error unless the policy is journal.SyncGroupCommit — the two options
// would otherwise silently overwrite each other depending on order.
func WithJournalSync(p journal.SyncPolicy) Option {
	return optionFunc(func(o *Options) {
		o.JournalSync = p
		o.syncSet, o.syncWas = true, p
	})
}

// WithJournalGroupCommit selects the journal.SyncGroupCommit fsync policy
// with the given commit window: a background committer fsyncs once per
// interval (or every records appends, whichever comes first), amortizing
// durability across the window. Both bounds must be positive — a zero or
// negative window is rejected at Initialize with a clear error rather than
// silently degrading durability. (The journal's own defaults are 2ms and
// 64 records.)
func WithJournalGroupCommit(interval time.Duration, records int) Option {
	return optionFunc(func(o *Options) {
		o.JournalSync = journal.SyncGroupCommit
		o.JournalCommitInterval = interval
		o.JournalCommitRecords = records
		o.groupSet = true
		if interval <= 0 || records <= 0 {
			o.optErr = fmt.Errorf("mpi: WithJournalGroupCommit window must be positive, got interval %v, records %d", interval, records)
		}
	})
}

// WithWireTier selects the wire transport tier for meshes built from the
// controller's WireOptions template (see Options.WireTier).
func WithWireTier(t wire.Tier) Option {
	return optionFunc(func(o *Options) { o.WireTier = t })
}

// WithHeartbeat tunes the wire failure detector: how often idle
// connections heartbeat and how long silence may last before a peer is
// declared lost. Flows into meshes built from the controller's WireOptions
// template (see Options.HeartbeatInterval).
func WithHeartbeat(interval, timeout time.Duration) Option {
	return optionFunc(func(o *Options) {
		o.HeartbeatInterval = interval
		o.HeartbeatTimeout = timeout
	})
}
