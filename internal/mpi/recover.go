package mpi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// ConnectFunc builds the per-rank transports of one recovery epoch. It is
// called with the epoch number (1 = the failure-free first attempt) and the
// number of surviving ranks; it returns one transport per logical rank,
// all connected to each other (for the wire transport: a fresh mesh whose
// handshake carries the epoch, so stragglers from a previous epoch are
// rejected at rendezvous).
type ConnectFunc func(epoch, ranks int) ([]fabric.Transport, error)

// InjectFunc optionally wraps a rank's transport — the hook the
// deterministic fault-injection harness (internal/faultinject) plugs into.
type InjectFunc func(epoch, rank int, tr fabric.Transport) fabric.Transport

// RecoverOptions parameterizes RunRecover.
type RecoverOptions struct {
	// Connect is required: it builds each epoch's transports.
	Connect ConnectFunc
	// Inject, when non-nil, wraps each rank's transport (fault injection).
	Inject InjectFunc
	// Initial is the dataflow's full set of external inputs. RunRecover
	// partitions it per epoch map and clones the payloads per attempt, so
	// the inputs must be serializable.
	Initial map[core.TaskId][]core.Payload
}

// RecoveryReport summarizes a fault-tolerant run.
type RecoveryReport struct {
	// Epochs is the number of execution attempts, counting the first.
	Epochs int
	// LostShards lists the shards (original map numbering) declared dead.
	LostShards []core.ShardId
	// Replayed counts tasks whose outputs were re-emitted from a lineage
	// ledger instead of re-running the callback.
	Replayed int
	// Executed counts callback executions across all epochs.
	Executed int
	// RecoveryTime is the wall clock spent after the first failure.
	RecoveryTime time.Duration
}

// RunRecover executes the dataflow with replay-based fault tolerance: a
// rank-0-style coordinator runs epochs until one completes. Every rank
// keeps a lineage ledger of its completed tasks' serialized outputs across
// epochs; when a peer is lost (wire failure or fault injection), the
// coordinator drops the dead shard from the task map via
// core.ReassignShards — survivors keep their own tasks, the dead shard's
// tasks round-robin over them — and the next epoch replays recorded
// outputs instead of re-executing them, so only the undelivered frontier
// (the dead rank's work and anything unrecorded) runs again. No
// checkpointing: correctness rests on the paper's idempotence contract.
//
// The controller's retry policy (WithRetry) bounds the number of epochs,
// the backoff between them and each epoch's wall clock. A non-retryable
// failure (a callback error on a surviving rank) aborts immediately;
// exhausting the policy returns an error wrapping core.ErrRetriesExhausted;
// a finished ctx returns one wrapping core.ErrCancelled.
func (c *Controller) RunRecover(ctx context.Context, ro RecoverOptions) (map[core.TaskId][]core.Payload, RecoveryReport, error) {
	var rep RecoveryReport
	if c.graph == nil {
		return nil, rep, core.ErrNotInitialized
	}
	if ro.Connect == nil {
		return nil, rep, fmt.Errorf("mpi: RunRecover requires a Connect function")
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, rep, err
	}
	if err := core.CheckInitial(c.graph, ro.Initial); err != nil {
		return nil, rep, err
	}

	policy := c.opt.Retry.WithDefaults()
	origRanks := c.tmap.ShardCount()
	alive := make([]core.ShardId, origRanks)
	for i := range alive {
		alive[i] = core.ShardId(i)
	}
	// Ledgers persist across epochs, keyed by the original (physical) shard.
	// With a journal configured they also persist across process restarts:
	// each shard's ledger journals to Journal/rank-i and a rerun over the
	// same directory resumes from whatever was recorded before the crash.
	var ledgers []*core.Ledger
	if c.opt.Journal != "" {
		var closeLeds func()
		var err error
		ledgers, closeLeds, err = c.openLedgers(origRanks)
		if err != nil {
			return nil, rep, err
		}
		defer closeLeds()
	} else {
		ledgers = make([]*core.Ledger, origRanks)
		for i := range ledgers {
			ledgers[i] = core.NewLedger()
		}
	}
	wantSinks := expectedSinks(c.graph)

	var recoveryStart time.Time
	var lastErr error
	for epoch := 1; epoch <= policy.MaxAttempts; epoch++ {
		rep.Epochs = epoch
		if err := ctx.Err(); err != nil {
			return nil, rep, core.Cancelled(ctx)
		}
		if epoch > 1 && c.recObs != nil {
			c.recObs.RecoveryStarted(epoch, append([]core.ShardId(nil), rep.LostShards...))
		}

		tmap := c.tmap
		if len(alive) < origRanks {
			var err error
			tmap, err = core.ReassignShards(c.graph, c.tmap, alive)
			if err != nil {
				return nil, rep, err
			}
		}
		ranks := len(alive)

		merged, lost, err := c.runEpoch(ctx, epoch, ranks, tmap, alive, ledgers, wantSinks, ro, policy)
		if err == nil {
			rep.Replayed, rep.Executed = sumLedgers(ledgers)
			if !recoveryStart.IsZero() {
				rep.RecoveryTime = time.Since(recoveryStart)
			}
			return merged, rep, nil
		}
		if recoveryStart.IsZero() {
			recoveryStart = time.Now()
		}
		if ctx.Err() != nil {
			return nil, rep, core.Cancelled(ctx)
		}
		if !retryable(err) {
			return nil, rep, err
		}
		lastErr = err

		if len(lost) > 0 {
			dead := make(map[core.ShardId]bool, len(lost))
			for _, s := range lost {
				dead[s] = true
				rep.LostShards = append(rep.LostShards, s)
			}
			sort.Slice(rep.LostShards, func(i, j int) bool { return rep.LostShards[i] < rep.LostShards[j] })
			next := alive[:0]
			for _, s := range alive {
				if !dead[s] {
					next = append(next, s)
				}
			}
			alive = next
			if len(alive) == 0 {
				return nil, rep, fmt.Errorf("mpi: every rank lost: %w", core.ErrRetriesExhausted)
			}
		}
		if epoch < policy.MaxAttempts {
			if err := policy.Sleep(ctx, epoch); err != nil {
				return nil, rep, err
			}
		}
	}
	return nil, rep, fmt.Errorf("mpi: %d attempt(s) failed: %w (last: %v)", policy.MaxAttempts, core.ErrRetriesExhausted, lastErr)
}

// runEpoch runs one attempt over freshly connected transports and returns
// the merged sink results on success, or the shards (original numbering)
// newly observed dead plus the epoch's failure.
func (c *Controller) runEpoch(ctx context.Context, epoch, ranks int, tmap core.TaskMap, alive []core.ShardId, ledgers []*core.Ledger, wantSinks map[core.TaskId]int, ro RecoverOptions, policy core.RetryPolicy) (map[core.TaskId][]core.Payload, []core.ShardId, error) {
	ectx := ctx
	cancel := func() {}
	if policy.AttemptTimeout > 0 {
		ectx, cancel = context.WithTimeout(ctx, policy.AttemptTimeout)
	}
	defer cancel()

	trs, err := ro.Connect(epoch, ranks)
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: epoch %d connect: %w", epoch, err)
	}
	if len(trs) != ranks {
		closeEpoch(trs, false)
		return nil, nil, fmt.Errorf("mpi: epoch %d: connect returned %d transports, want %d", epoch, len(trs), ranks)
	}
	wrapped := make([]fabric.Transport, ranks)
	for l := range trs {
		wrapped[l] = trs[l]
		if ro.Inject != nil {
			wrapped[l] = ro.Inject(epoch, l, trs[l])
		}
	}

	parts, err := partitionInitialClone(tmap, ranks, ro.Initial)
	if err != nil {
		closeEpoch(trs, false)
		return nil, nil, err
	}

	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for l := 0; l < ranks; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			results[l], errs[l] = c.runRankOn(ectx, l, wrapped[l], parts[l], ledgers[alive[l]], tmap)
		}(l)
	}
	wg.Wait()

	// Declare dead ranks: a transport's self-report (the injection harness
	// reports its own killed rank) is authoritative; a peer-reported loss
	// counts only when the named rank actually failed, filtering the
	// teardown cascade a survivor's cancellation causes.
	lostLogical := make(map[int]bool)
	for l := range wrapped {
		lr, ok := wrapped[l].(fabric.LossReporter)
		if !ok {
			continue
		}
		for _, lp := range lr.LostPeers() {
			if lp < 0 || lp >= ranks {
				continue
			}
			if lp == l || errs[lp] != nil {
				lostLogical[lp] = true
			}
		}
	}
	var lost []core.ShardId
	for l := range lostLogical {
		lost = append(lost, alive[l])
	}

	var firstErr, nonRetryable error
	for l, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		if !lostLogical[l] && !retryable(e) {
			nonRetryable = e
		}
	}
	merged := mergeResults(results)
	if firstErr == nil && len(lost) == 0 && sinksComplete(wantSinks, merged) {
		closeEpoch(trs, true)
		return merged, nil, nil
	}
	releaseResults(merged)
	closeEpoch(trs, false)
	if nonRetryable != nil {
		return nil, lost, nonRetryable
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("mpi: epoch %d: incomplete sink coverage: %w", epoch, fabric.ErrPeerLost)
	}
	return nil, lost, firstErr
}

// retryable classifies an epoch failure: transport-level losses, closed
// mailboxes and attempt timeouts warrant another epoch; anything else (a
// callback error on a healthy rank) is a real dataflow failure.
func retryable(err error) bool {
	return errors.Is(err, fabric.ErrPeerLost) ||
		errors.Is(err, fabric.ErrClosed) ||
		errors.Is(err, core.ErrCancelled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// closeEpoch tears an epoch's transports down: gracefully (Shutdown, so
// goodbye frames flow and sockets drain) after a successful epoch, abruptly
// (Kill/Cancel) after a failed one.
func closeEpoch(trs []fabric.Transport, graceful bool) {
	var wg sync.WaitGroup
	for _, tr := range trs {
		if tr == nil {
			continue
		}
		wg.Add(1)
		go func(tr fabric.Transport) {
			defer wg.Done()
			if graceful {
				if s, ok := tr.(interface{ Shutdown(time.Duration) error }); ok {
					s.Shutdown(5 * time.Second)
					return
				}
			}
			if k, ok := tr.(interface{ Kill() }); ok {
				k.Kill()
				return
			}
			tr.Cancel()
		}(tr)
	}
	wg.Wait()
}

// partitionInitialClone splits the global external inputs by the epoch's
// task map, cloning every payload so one epoch's consumption (tasks own
// their inputs) cannot corrupt the next attempt's.
func partitionInitialClone(tmap core.TaskMap, ranks int, initial map[core.TaskId][]core.Payload) ([]map[core.TaskId][]core.Payload, error) {
	parts := make([]map[core.TaskId][]core.Payload, ranks)
	for id, ps := range initial {
		r := int(tmap.Shard(id))
		if r < 0 || r >= ranks {
			return nil, fmt.Errorf("mpi: task %d mapped to shard %d of %d", id, r, ranks)
		}
		if parts[r] == nil {
			parts[r] = make(map[core.TaskId][]core.Payload)
		}
		for _, p := range ps {
			cp, err := p.CloneForWire()
			if err != nil {
				return nil, fmt.Errorf("mpi: fault-tolerant runs need serializable external inputs: task %d: %w", id, err)
			}
			parts[r][id] = append(parts[r][id], cp)
		}
	}
	return parts, nil
}

// expectedSinks returns, per root task, how many sink payloads a complete
// run must produce — the coordinator's completeness check (a killed rank
// can exit without error but with its sinks missing).
func expectedSinks(g core.TaskGraph) map[core.TaskId]int {
	want := make(map[core.TaskId]int)
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		n := 0
		for _, consumers := range t.Outgoing {
			if len(consumers) == 0 {
				n++
			}
		}
		if n > 0 {
			want[id] = n
		}
	}
	return want
}

func sinksComplete(want map[core.TaskId]int, got map[core.TaskId][]core.Payload) bool {
	if len(got) != len(want) {
		return false
	}
	for id, n := range want {
		if len(got[id]) != n {
			return false
		}
	}
	return true
}

func mergeResults(per []map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	merged := make(map[core.TaskId][]core.Payload)
	for _, m := range per {
		for id, ps := range m {
			merged[id] = append(merged[id], ps...)
		}
	}
	return merged
}

func releaseResults(m map[core.TaskId][]core.Payload) {
	for _, ps := range m {
		for _, p := range ps {
			p.Release()
		}
	}
}

func sumLedgers(ledgers []*core.Ledger) (replayed, executed int) {
	for _, l := range ledgers {
		replayed += l.Replays()
		executed += l.Executions()
	}
	return replayed, executed
}
