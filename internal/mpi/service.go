package mpi

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Submission is one graph instance handed to a resident Service: the graph,
// an optional task map (nil places tasks contiguously with
// core.NewGraphMap), a callback registration hook and the dataflow's
// external inputs.
type Submission struct {
	Graph core.TaskGraph
	// Map places tasks on the service's ranks. Nil selects
	// core.NewGraphMap(ranks, Graph). A non-nil map must shard over exactly
	// the service's rank count.
	Map core.TaskMap
	// Register binds the graph's callbacks on the per-run controller — the
	// same shape the use-case configs expose (cfg.Register(c, graph)).
	Register func(core.CallbackRegistrar) error
	// Initial is the dataflow's full set of external inputs. The run
	// consumes them; submit fresh payloads per instance.
	Initial map[core.TaskId][]core.Payload
}

// Service is the resident execution session the streaming server is built
// on: it splits controller lifecycle from graph lifecycle. Where Run
// builds a fabric, a work-stealing pool and per-rank journals for one graph
// and tears everything down again, a Service keeps one transport (behind a
// run demultiplexer), one warm executor pool and one journal root alive
// across an arbitrary stream of Submit calls. Each submission becomes a
// numbered run: a cheap per-run controller attaches to the warm fabric
// through its own fabric.RunTransport view, executes, and detaches —
// concurrent submissions interleave freely over the shared infrastructure
// without seeing each other's messages.
type Service struct {
	opt   Options
	ranks int
	base  fabric.Transport
	demux *fabric.Demux
	pool  *fabric.Pool

	next   atomic.Uint64 // run id allocator; ids start at 1 (0 = unmultiplexed)
	active sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewService builds a resident execution session over ranks logical ranks.
// It accepts the same options as New; Workers sizes the warm pool (the
// graph-size clamp of one-shot runs does not apply — the pool serves many
// graphs), Journal roots per-run journal directories (run id under the
// root), and Transport substitutes the warm fabric (it must be receivable
// for every rank in-process, like the default in-memory fabric).
func NewService(ranks int, opts ...Option) (*Service, error) {
	var opt Options
	for _, o := range opts {
		o.apply(&opt)
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("mpi: service needs at least one rank, got %d", ranks)
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Blocking {
		// Rendezvous sends park the sender until the receiver dequeues; with
		// many runs sharing rank mailboxes that coupling deadlocks.
		return nil, fmt.Errorf("mpi: service does not support blocking sends")
	}

	var base fabric.Transport
	if opt.Transport != nil {
		base = opt.Transport(ranks)
	} else {
		base = fabric.New(ranks)
	}
	local := make([]int, ranks)
	for i := range local {
		local[i] = i
	}
	s := &Service{
		opt:   opt,
		ranks: ranks,
		base:  base,
		demux: fabric.NewDemux(base, local...),
	}
	if !opt.Inline {
		n := opt.Workers
		if opt.NoSteal && n < ranks {
			n = ranks
		}
		s.pool = fabric.NewPool(ranks, fabric.RoundRobinHomes(n, ranks),
			fabric.PoolOptions{FIFO: opt.FIFO, NoSteal: opt.NoSteal})
	}
	return s, nil
}

// Ranks returns the session's logical rank count — the shard count every
// submission's task map must match.
func (s *Service) Ranks() int { return s.ranks }

// Runs returns the number of submissions currently attached to the fabric.
func (s *Service) Runs() int { return s.demux.Runs() }

// Stray returns how many frames the run demultiplexer dropped because they
// addressed an unknown or already-released run — late arrivals racing a
// cancel, or traffic from a misbehaving peer.
func (s *Service) Stray() uint64 { return s.demux.Stray() }

// wireTierer is the optional interface a warm transport implements to
// report the negotiated data path per peer; wire.Fabric does.
type wireTierer interface {
	LocalRank() int
	PeerNetwork(int) string
}

// WireTiers reports the negotiated transport tier per rank pair, keyed
// "i-j". A wire-backed transport reports what each pair actually
// negotiated ("tcp", "unix" or "shm"); the default in-memory fabric
// reports "mem" for every pair.
func (s *Service) WireTiers() map[string]string {
	out := make(map[string]string)
	if wt, ok := s.base.(wireTierer); ok {
		local := wt.LocalRank()
		for r := 0; r < s.ranks; r++ {
			if r != local {
				out[fmt.Sprintf("%d-%d", local, r)] = wt.PeerNetwork(r)
			}
		}
		return out
	}
	for i := 0; i < s.ranks; i++ {
		for j := i + 1; j < s.ranks; j++ {
			out[fmt.Sprintf("%d-%d", i, j)] = "mem"
		}
	}
	return out
}

// Submit executes one graph instance over the warm fabric and pool,
// returning its sink outputs and (for journaled services) the run's journal
// counters. Safe for concurrent use: each call gets a private run id, a
// private transport view and — when the service journals — a private
// journal directory (<root>/run-<id>), so interleaved submissions cannot
// interfere. A finished ctx cancels only this run.
func (s *Service) Submit(ctx context.Context, sub Submission) (map[core.TaskId][]core.Payload, JournalStats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, JournalStats{}, fmt.Errorf("mpi: service closed")
	}
	s.active.Add(1)
	s.mu.Unlock()
	defer s.active.Done()

	if sub.Graph == nil {
		return nil, JournalStats{}, fmt.Errorf("mpi: submission has no graph")
	}
	tmap := sub.Map
	if tmap == nil {
		tmap = core.NewGraphMap(s.ranks, sub.Graph)
	}
	if got := tmap.ShardCount(); got != s.ranks {
		return nil, JournalStats{}, fmt.Errorf("mpi: submission map shards over %d ranks, service has %d", got, s.ranks)
	}

	id := s.next.Add(1)
	// Per-run controller: construction is cheap (critical paths are cached
	// per graph fingerprint), and isolating registries per run lets
	// submissions carry entirely different graphs and callbacks.
	opt := s.opt
	opt.Transport = nil
	if opt.Journal != "" {
		opt.Journal = filepath.Join(opt.Journal, fmt.Sprintf("run-%d", id))
	}
	ctrl := newFromOptions(opt)
	if err := ctrl.Initialize(sub.Graph, tmap); err != nil {
		return nil, JournalStats{}, err
	}
	if sub.Register != nil {
		if err := sub.Register(ctrl); err != nil {
			return nil, JournalStats{}, err
		}
	}
	if err := ctrl.reg.Covers(sub.Graph); err != nil {
		return nil, JournalStats{}, err
	}
	if err := core.CheckInitial(sub.Graph, sub.Initial); err != nil {
		return nil, JournalStats{}, err
	}

	var leds []*core.Ledger
	closeLeds := func() {}
	if opt.Journal != "" {
		var err error
		leds, closeLeds, err = ctrl.openLedgers(s.ranks)
		if err != nil {
			return nil, JournalStats{}, err
		}
		defer closeLeds() // exactly-once: safe beside the explicit call below
	}

	view, err := s.demux.Open(id)
	if err != nil {
		return nil, JournalStats{}, err
	}
	defer s.demux.Release(id)

	results, err := ctrl.runAllRanks(ctx, view, s.pool, leds, sub.Initial)
	closeLeds() // record journal counters before reading them
	return results, ctrl.JournalStats(), err
}

// Close drains the session: it stops accepting submissions, waits for
// active runs to finish, then releases the pool, the demultiplexer and the
// warm transport. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.active.Wait()
	if s.pool != nil {
		s.pool.Close()
	}
	s.demux.Close()
	switch t := s.base.(type) {
	case interface{ Shutdown(time.Duration) error }:
		t.Shutdown(5 * time.Second)
	default:
		s.base.Cancel()
	}
	s.demux.Wait()
	return nil
}
