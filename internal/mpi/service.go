package mpi

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// ErrDraining marks a submission that cannot be placed because it pins
// tasks to a rank that is draining (or because every rank is draining).
// The admission layer maps it to HTTP 429 with a Retry-After: the caller
// should resubmit without the pin, or after the drain completes.
var ErrDraining = errors.New("mpi: rank is draining")

// Submission is one graph instance handed to a resident Service: the graph,
// an optional task map (nil places tasks contiguously with
// core.NewGraphMap), a callback registration hook and the dataflow's
// external inputs.
type Submission struct {
	Graph core.TaskGraph
	// Map places tasks on the service's ranks. Nil selects
	// core.NewGraphMap(ranks, Graph). A non-nil map must shard over exactly
	// the service's rank count.
	Map core.TaskMap
	// Register binds the graph's callbacks on the per-run controller — the
	// same shape the use-case configs expose (cfg.Register(c, graph)).
	Register func(core.CallbackRegistrar) error
	// Initial is the dataflow's full set of external inputs. The run
	// consumes them; submit fresh payloads per instance.
	Initial map[core.TaskId][]core.Payload
}

// Service is the resident execution session the streaming server is built
// on: it splits controller lifecycle from graph lifecycle. Where Run
// builds a fabric, a work-stealing pool and per-rank journals for one graph
// and tears everything down again, a Service keeps one transport (behind a
// run demultiplexer), one warm executor pool and one journal root alive
// across an arbitrary stream of Submit calls. Each submission becomes a
// numbered run: a cheap per-run controller attaches to the warm fabric
// through its own fabric.RunTransport view, executes, and detaches —
// concurrent submissions interleave freely over the shared infrastructure
// without seeing each other's messages.
type Service struct {
	opt   Options
	ranks int
	base  fabric.Transport
	demux *fabric.Demux
	pool  *fabric.Pool

	next   atomic.Uint64 // run id allocator; ids start at 1 (0 = unmultiplexed)
	active sync.WaitGroup

	// Drain lifecycle: a draining rank stops receiving tasks from new
	// submissions (their shards are remapped — handed off — onto the
	// remaining ranks) and is considered drained once no in-flight run owns
	// tasks on it. rankRuns counts, per rank, the active runs with at least
	// one task placed there.
	rankRuns     []atomic.Int64
	handoffRuns  atomic.Uint64 // submissions remapped off draining ranks
	handoffTasks atomic.Uint64 // tasks moved by those remappings

	mu       sync.Mutex
	closed   bool
	draining map[int]bool
}

// NewService builds a resident execution session over ranks logical ranks.
// It accepts the same options as New; Workers sizes the warm pool (the
// graph-size clamp of one-shot runs does not apply — the pool serves many
// graphs), Journal roots per-run journal directories (run id under the
// root), and Transport substitutes the warm fabric (it must be receivable
// for every rank in-process, like the default in-memory fabric).
func NewService(ranks int, opts ...Option) (*Service, error) {
	var opt Options
	for _, o := range opts {
		o.apply(&opt)
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("mpi: service needs at least one rank, got %d", ranks)
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Blocking {
		// Rendezvous sends park the sender until the receiver dequeues; with
		// many runs sharing rank mailboxes that coupling deadlocks.
		return nil, fmt.Errorf("mpi: service does not support blocking sends")
	}

	var base fabric.Transport
	if opt.Transport != nil {
		base = opt.Transport(ranks)
	} else {
		base = fabric.New(ranks)
	}
	local := make([]int, ranks)
	for i := range local {
		local[i] = i
	}
	s := &Service{
		opt:      opt,
		ranks:    ranks,
		base:     base,
		demux:    fabric.NewDemux(base, local...),
		rankRuns: make([]atomic.Int64, ranks),
		draining: make(map[int]bool),
	}
	if !opt.Inline {
		n := opt.Workers
		if opt.NoSteal && n < ranks {
			n = ranks
		}
		s.pool = fabric.NewPool(ranks, fabric.RoundRobinHomes(n, ranks),
			fabric.PoolOptions{FIFO: opt.FIFO, NoSteal: opt.NoSteal})
	}
	return s, nil
}

// Ranks returns the session's logical rank count — the shard count every
// submission's task map must match.
func (s *Service) Ranks() int { return s.ranks }

// Runs returns the number of submissions currently attached to the fabric.
func (s *Service) Runs() int { return s.demux.Runs() }

// Stray returns how many frames the run demultiplexer dropped because they
// addressed an unknown or already-released run — late arrivals racing a
// cancel, or traffic from a misbehaving peer.
func (s *Service) Stray() uint64 { return s.demux.Stray() }

// wireTierer is the optional interface a warm transport implements to
// report the negotiated data path per peer; wire.Fabric does.
type wireTierer interface {
	LocalRank() int
	PeerNetwork(int) string
}

// WireTiers reports the negotiated transport tier per rank pair, keyed
// "i-j". A wire-backed transport reports what each pair actually
// negotiated ("tcp", "unix" or "shm"); the default in-memory fabric
// reports "mem" for every pair.
func (s *Service) WireTiers() map[string]string {
	out := make(map[string]string)
	if wt, ok := s.base.(wireTierer); ok {
		local := wt.LocalRank()
		for r := 0; r < s.ranks; r++ {
			if r != local {
				out[fmt.Sprintf("%d-%d", local, r)] = wt.PeerNetwork(r)
			}
		}
		return out
	}
	for i := 0; i < s.ranks; i++ {
		for j := i + 1; j < s.ranks; j++ {
			out[fmt.Sprintf("%d-%d", i, j)] = "mem"
		}
	}
	return out
}

// Drain marks a rank draining: new submissions stop placing tasks on it
// (default-mapped submissions are transparently remapped — the hand-off —
// while submissions pinning tasks there are refused with ErrDraining), and
// the rank counts as drained once every in-flight run that owns tasks on
// it completes. Idempotent; draining the last undrained rank is refused.
func (s *Service) Drain(rank int) error {
	if rank < 0 || rank >= s.ranks {
		return fmt.Errorf("mpi: drain: rank %d out of range [0,%d)", rank, s.ranks)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining[rank] {
		return nil
	}
	if len(s.draining) == s.ranks-1 {
		return fmt.Errorf("mpi: drain: rank %d is the last undrained rank: %w", rank, ErrDraining)
	}
	s.draining[rank] = true
	return nil
}

// Undrain returns a draining rank to service.
func (s *Service) Undrain(rank int) error {
	if rank < 0 || rank >= s.ranks {
		return fmt.Errorf("mpi: undrain: rank %d out of range [0,%d)", rank, s.ranks)
	}
	s.mu.Lock()
	delete(s.draining, rank)
	s.mu.Unlock()
	return nil
}

// Draining returns the ranks currently draining, ascending.
func (s *Service) Draining() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.draining))
	for r := range s.draining {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// RankActive returns how many in-flight runs own at least one task on the
// rank — zero on a draining rank means the drain is complete.
func (s *Service) RankActive(rank int) int {
	if rank < 0 || rank >= s.ranks {
		return 0
	}
	return int(s.rankRuns[rank].Load())
}

// HandoffCounts reports the drain hand-off totals: submissions remapped
// off draining ranks, and tasks those remappings moved.
func (s *Service) HandoffCounts() (runs, tasks uint64) {
	return s.handoffRuns.Load(), s.handoffTasks.Load()
}

// drainingSnapshot returns the current draining set, nil when empty.
func (s *Service) drainingSnapshot() map[int]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.draining) == 0 {
		return nil
	}
	cp := make(map[int]bool, len(s.draining))
	for r := range s.draining {
		cp[r] = true
	}
	return cp
}

// avoidDraining rebuilds tmap with every task on a draining rank moved
// round-robin onto the undrained ranks. The shard count is unchanged (the
// fabric still spans all ranks; draining ranks just own no tasks).
func avoidDraining(g core.TaskGraph, tmap core.TaskMap, ranks int, draining map[int]bool) (core.TaskMap, int) {
	var healthy []core.ShardId
	for r := 0; r < ranks; r++ {
		if !draining[r] {
			healthy = append(healthy, core.ShardId(r))
		}
	}
	ids := g.TaskIds()
	dest := make(map[core.TaskId]core.ShardId, len(ids))
	moved, rr := 0, 0
	for _, id := range ids {
		sh := tmap.Shard(id)
		if draining[int(sh)] {
			sh = healthy[rr%len(healthy)]
			rr++
			moved++
		}
		dest[id] = sh
	}
	return core.NewFuncMap(ranks, ids, func(id core.TaskId) core.ShardId { return dest[id] }), moved
}

// Submit executes one graph instance over the warm fabric and pool,
// returning its sink outputs and (for journaled services) the run's journal
// counters. Safe for concurrent use: each call gets a private run id, a
// private transport view and — when the service journals — a private
// journal directory (<root>/run-<id>), so interleaved submissions cannot
// interfere. A finished ctx cancels only this run.
func (s *Service) Submit(ctx context.Context, sub Submission) (map[core.TaskId][]core.Payload, JournalStats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, JournalStats{}, fmt.Errorf("mpi: service closed")
	}
	s.active.Add(1)
	s.mu.Unlock()
	defer s.active.Done()

	if sub.Graph == nil {
		return nil, JournalStats{}, fmt.Errorf("mpi: submission has no graph")
	}
	tmap := sub.Map
	if tmap == nil {
		tmap = core.NewGraphMap(s.ranks, sub.Graph)
	}
	if got := tmap.ShardCount(); got != s.ranks {
		return nil, JournalStats{}, fmt.Errorf("mpi: submission map shards over %d ranks, service has %d", got, s.ranks)
	}
	if draining := s.drainingSnapshot(); draining != nil {
		if sub.Map != nil {
			// An explicit map is a placement contract: refuse rather than
			// silently violate it when it pins tasks to a draining rank.
			for _, id := range sub.Graph.TaskIds() {
				if draining[int(tmap.Shard(id))] {
					return nil, JournalStats{}, fmt.Errorf("mpi: submission places task %d on draining rank %d: %w", id, tmap.Shard(id), ErrDraining)
				}
			}
		} else {
			// Default placement: hand the draining ranks' shards off to the
			// remaining ranks transparently.
			var moved int
			tmap, moved = avoidDraining(sub.Graph, tmap, s.ranks, draining)
			if moved > 0 {
				s.handoffRuns.Add(1)
				s.handoffTasks.Add(uint64(moved))
			}
		}
	}

	// Per-rank activity accounting (drain completion watches it): a rank is
	// busy while a run owning tasks on it is in flight.
	used := make(map[core.ShardId]bool)
	for _, tid := range sub.Graph.TaskIds() {
		used[tmap.Shard(tid)] = true
	}
	for r := range used {
		s.rankRuns[r].Add(1)
	}
	defer func() {
		for r := range used {
			s.rankRuns[r].Add(-1)
		}
	}()

	id := s.next.Add(1)
	// Per-run controller: construction is cheap (critical paths are cached
	// per graph fingerprint), and isolating registries per run lets
	// submissions carry entirely different graphs and callbacks.
	opt := s.opt
	opt.Transport = nil
	if opt.Journal != "" {
		opt.Journal = filepath.Join(opt.Journal, fmt.Sprintf("run-%d", id))
	}
	ctrl := newFromOptions(opt)
	if err := ctrl.Initialize(sub.Graph, tmap); err != nil {
		return nil, JournalStats{}, err
	}
	if sub.Register != nil {
		if err := sub.Register(ctrl); err != nil {
			return nil, JournalStats{}, err
		}
	}
	if err := ctrl.reg.Covers(sub.Graph); err != nil {
		return nil, JournalStats{}, err
	}
	if err := core.CheckInitial(sub.Graph, sub.Initial); err != nil {
		return nil, JournalStats{}, err
	}

	var leds []*core.Ledger
	closeLeds := func() {}
	if opt.Journal != "" {
		var err error
		leds, closeLeds, err = ctrl.openLedgers(s.ranks)
		if err != nil {
			return nil, JournalStats{}, err
		}
		defer closeLeds() // exactly-once: safe beside the explicit call below
	}

	view, err := s.demux.Open(id)
	if err != nil {
		return nil, JournalStats{}, err
	}
	defer s.demux.Release(id)

	results, err := ctrl.runAllRanks(ctx, view, s.pool, leds, sub.Initial)
	closeLeds() // record journal counters before reading them
	return results, ctrl.JournalStats(), err
}

// Close drains the session: it stops accepting submissions, waits for
// active runs to finish, then releases the pool, the demultiplexer and the
// warm transport. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.active.Wait()
	if s.pool != nil {
		s.pool.Close()
	}
	s.demux.Close()
	switch t := s.base.(type) {
	case interface{ Shutdown(time.Duration) error }:
		t.Shutdown(5 * time.Second)
	default:
		s.base.Cancel()
	}
	s.demux.Wait()
	return nil
}
