package mpi

import (
	"errors"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// TestReceiveLoopDrainsWhileWorkersSaturated is the regression test for the
// dispatch-blocks-receive bug: the old per-rank semaphore made the receive
// loop block inside dispatch whenever all workers were busy, so the rank
// stopped dequeuing messages — and in rendezvous (Blocking) mode, remote
// senders stalled with it. With the persistent worker pool, dispatch only
// enqueues, so the receive loop always keeps draining.
//
// The graph is built so that the old scheme deadlocks:
//
//	rank 0: A1, A2 (external), C (input from E)
//	rank 1: E (external) -> slot 0: C (rank 0), slot 1: F (rank 1)
//
// With Workers=2 (one homed worker per rank), A1 occupies one worker until
// F signals it, leaving a single worker for everything else. F only runs
// after E's rendezvous send to rank 0 completes, which requires rank 0's
// receive loop to dequeue while A1 still holds a worker. The old code
// instead parked the loop dispatching A2, so the signal never came.
func TestReceiveLoopDrainsWhileWorkersSaturated(t *testing.T) {
	const (
		a1 core.TaskId = iota
		a2
		e
		f
		c
	)
	g := core.NewExplicitGraph([]core.Task{
		{Id: a1, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{}}},
		{Id: a2, Callback: 1, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{}}},
		{Id: e, Callback: 1, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{c}, {f}}},
		{Id: f, Callback: 2, Incoming: []core.TaskId{e}, Outgoing: [][]core.TaskId{{}}},
		{Id: c, Callback: 1, Incoming: []core.TaskId{e}, Outgoing: [][]core.TaskId{{}}},
	})
	tmap := core.NewFuncMap(2, g.TaskIds(), func(id core.TaskId) core.ShardId {
		if id == e || id == f {
			return 1
		}
		return 0
	})

	ctrl := New(WithBlocking(true), WithWorkers(2))
	if err := ctrl.Initialize(g, tmap); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	// Callback 0 (A1): park rank 0's only worker until F runs.
	ctrl.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		select {
		case <-released:
			return []core.Payload{{}}, nil
		case <-time.After(10 * time.Second):
			return nil, errors.New("worker never released: receive loop stalled while the pool was saturated")
		}
	})
	// Callback 1: emit one empty payload per slot.
	ctrl.RegisterCallback(1, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		tk, _ := g.Task(id)
		return make([]core.Payload, len(tk.Outgoing)), nil
	})
	// Callback 2 (F): runs strictly after E's rendezvous send to rank 0
	// completed; release A1.
	ctrl.RegisterCallback(2, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		close(released)
		return []core.Payload{{}}, nil
	})

	initial := map[core.TaskId][]core.Payload{
		a1: {{}}, a2: {{}}, e: {{}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := ctrl.Run(initial)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run deadlocked: the receive loop is blocked behind a saturated worker pool")
	}
}
