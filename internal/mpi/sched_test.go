package mpi

import (
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// chainVsLeaves builds the starvation shape of the scheduler issue: a deep
// chain head competing with a burst of wide independent leaves, everything
// funneling into one final sink.
//
//	leaves l0..l(width-1)  --\
//	                          sink
//	head -> c1 -> ... -> c(depth-1) --/
//
// All leaves and the chain head are ready at t=0. A FIFO dispatcher drains
// in submission order, so with the head submitted last the whole chain
// waits behind every leaf; the critical-path scheduler runs the head first
// (depth+1 levels of downstream work vs. the leaves' 2).
func chainVsLeaves(width, depth int) (core.TaskGraph, []core.TaskId, []core.TaskId) {
	var tasks []core.Task
	var leaves []core.TaskId
	sink := core.TaskId(width + depth)
	for i := 0; i < width; i++ {
		id := core.TaskId(i)
		leaves = append(leaves, id)
		tasks = append(tasks, core.Task{
			Id: id, Callback: 0,
			Incoming: []core.TaskId{core.ExternalInput},
			Outgoing: [][]core.TaskId{{sink}},
		})
	}
	var chain []core.TaskId
	for i := 0; i < depth; i++ {
		id := core.TaskId(width + i)
		chain = append(chain, id)
		in := core.ExternalInput
		if i > 0 {
			in = id - 1
		}
		out := sink
		if i < depth-1 {
			out = id + 1
		}
		tasks = append(tasks, core.Task{
			Id: id, Callback: 0,
			Incoming: []core.TaskId{in},
			Outgoing: [][]core.TaskId{{out}},
		})
	}
	sinkIn := append([]core.TaskId{}, leaves...)
	sinkIn = append(sinkIn, chain[depth-1])
	tasks = append(tasks, core.Task{
		Id: sink, Callback: 0,
		Incoming: sinkIn,
		Outgoing: [][]core.TaskId{{}},
	})
	return core.NewExplicitGraph(tasks), leaves, chain
}

// runChainVsLeaves executes the shape on one rank with a single worker and
// returns how many leaves ran before the chain's first task.
func runChainVsLeaves(t *testing.T, fifo bool) int {
	t.Helper()
	const width, depth = 24, 8
	g, leaves, chain := chainVsLeaves(width, depth)

	log := core.NewExecutionLog()
	ctrl := New(WithWorkers(1), WithFIFO(fifo), WithObserver(log))
	if err := ctrl.Initialize(g, core.NewModuloMap(1, g.Size())); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(50 * time.Microsecond)
		tk, _ := g.Task(id)
		return make([]core.Payload, len(tk.Outgoing)), nil
	}); err != nil {
		t.Fatal(err)
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range leaves {
		initial[id] = []core.Payload{{}}
	}
	initial[chain[0]] = []core.Payload{{}}
	if _, err := ctrl.Run(initial); err != nil {
		t.Fatal(err)
	}
	if log.Len() != g.Size() {
		t.Fatalf("executed %d of %d tasks", log.Len(), g.Size())
	}
	before := 0
	for _, id := range log.Order {
		if id == chain[0] {
			return before
		}
		if int(id) < width {
			before++
		}
	}
	t.Fatal("chain head never executed")
	return 0
}

// TestPriorityAvoidsChainStarvation is the starvation regression test of
// the scheduler issue: under FIFO dispatch the deep chain's head runs after
// (nearly) every leaf; under critical-path priority it runs (nearly) first.
// The bounds are generous — the receive loop may dispatch a couple of tasks
// before the queue fills — but the two disciplines must land on opposite
// ends.
func TestPriorityAvoidsChainStarvation(t *testing.T) {
	const width = 24
	if before := runChainVsLeaves(t, true); before < width/2 {
		t.Errorf("FIFO: only %d of %d leaves ran before the chain head — scenario no longer exercises starvation", before, width)
	}
	if before := runChainVsLeaves(t, false); before > width/2 {
		t.Errorf("priority: %d of %d leaves ran before the chain head, want the head scheduled early", before, width)
	}
}

// TestSchedObserverTiming verifies the controller reports queue timing to a
// SchedObserver: enqueue must not be after start, and every task must be
// reported exactly once.
type timingObs struct {
	mu    sync.Mutex
	seen  map[core.TaskId]int
	bad   int
	tasks int
}

func (o *timingObs) TaskExecuted(id core.TaskId, shard core.ShardId, cb core.CallbackId) {
	o.mu.Lock()
	o.tasks++
	o.mu.Unlock()
}

func (o *timingObs) TaskQueued(id core.TaskId, enqueued, started time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seen[id]++
	if started.Before(enqueued) {
		o.bad++
	}
}

func TestSchedObserverTiming(t *testing.T) {
	g, leaves, chain := chainVsLeaves(8, 4)
	obs := &timingObs{seen: make(map[core.TaskId]int)}
	ctrl := New(WithWorkers(2), WithObserver(obs))
	if err := ctrl.Initialize(g, core.NewModuloMap(2, g.Size())); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		tk, _ := g.Task(id)
		return make([]core.Payload, len(tk.Outgoing)), nil
	}); err != nil {
		t.Fatal(err)
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range leaves {
		initial[id] = []core.Payload{{}}
	}
	initial[chain[0]] = []core.Payload{{}}
	if _, err := ctrl.Run(initial); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.seen) != g.Size() {
		t.Errorf("TaskQueued reported %d tasks, want %d", len(obs.seen), g.Size())
	}
	for id, n := range obs.seen {
		if n != 1 {
			t.Errorf("task %d queued %d times", id, n)
		}
	}
	if obs.bad != 0 {
		t.Errorf("%d tasks started before they were enqueued", obs.bad)
	}
	if obs.tasks != g.Size() {
		t.Errorf("TaskExecuted reported %d tasks, want %d", obs.tasks, g.Size())
	}
}
