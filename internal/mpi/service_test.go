package mpi

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/journal"
)

func reductionSubmission(g *graphs.Reduction, initial map[core.TaskId][]core.Payload) Submission {
	return Submission{
		Graph: g,
		Register: func(c core.CallbackRegistrar) error {
			for cb, fn := range map[core.CallbackId]core.Callback{
				graphs.ReduceLeafCB: sumCB(1),
				graphs.ReduceMidCB:  sumCB(1),
				graphs.ReduceRootCB: sumCB(1),
			} {
				if err := c.RegisterCallback(cb, fn); err != nil {
					return err
				}
			}
			return nil
		},
		Initial: initial,
	}
}

func serialReduction(t *testing.T, g *graphs.Reduction, initial map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	t.Helper()
	ser := core.NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	} {
		ser.RegisterCallback(cb, fn)
	}
	want, err := ser.Run(cloneInitial(initial))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestServiceSubmitMatchesSerial streams many submissions through one warm
// service and compares every run's sinks byte for byte against the serial
// reference.
func TestServiceSubmitMatchesSerial(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	initial := reductionInputs(g)
	want := serialReduction(t, g, initial)

	s, err := NewService(4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 25; i++ {
		got, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		compareResults(t, want, got)
	}
	if s.Runs() != 0 {
		t.Fatalf("runs still attached after drain: %d", s.Runs())
	}
}

// TestServiceConcurrentSubmissions interleaves many submissions over one
// warm fabric and pool; every run must stay isolated and byte-identical to
// serial. Run with -race.
func TestServiceConcurrentSubmissions(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	initial := reductionInputs(g)
	want := serialReduction(t, g, initial)

	s, err := NewService(4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const submitters, perSubmitter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				got, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial)))
				if err != nil {
					errs <- err
					return
				}
				for id, ps := range want {
					if len(got[id]) != len(ps) {
						errs <- fmt.Errorf("sink %d: %d payloads, want %d", id, len(got[id]), len(ps))
						return
					}
				}
				compareOne := func() error {
					for id, ws := range want {
						for j := range ws {
							wb, _ := ws[j].Wire()
							gb, _ := got[id][j].Wire()
							if string(wb) != string(gb) {
								return fmt.Errorf("sink %d slot %d mismatch", id, j)
							}
						}
					}
					return nil
				}
				if err := compareOne(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestServiceMixedGraphs interleaves two different graph shapes over one
// service — per-run registries must keep their callbacks apart.
func TestServiceMixedGraphs(t *testing.T) {
	small, _ := graphs.NewReduction(4, 2)
	big, _ := graphs.NewReduction(32, 2)
	smallIn, bigIn := reductionInputs(small), reductionInputs(big)
	wantSmall := serialReduction(t, small, smallIn)
	wantBig := serialReduction(t, big, bigIn)

	s, err := NewService(3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		gotS, _, err := s.Submit(context.Background(), reductionSubmission(small, cloneInitial(smallIn)))
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, wantSmall, gotS)
		gotB, _, err := s.Submit(context.Background(), reductionSubmission(big, cloneInitial(bigIn)))
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, wantBig, gotB)
	}
}

// TestServiceCancelIsolation cancels one submission's context and checks
// the service keeps serving others.
func TestServiceCancelIsolation(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	initial := reductionInputs(g)
	want := serialReduction(t, g, initial)

	s, err := NewService(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Submit(ctx, reductionSubmission(g, cloneInitial(initial))); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled submit: err=%v, want ErrCancelled", err)
	}
	got, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial)))
	if err != nil {
		t.Fatalf("submit after a cancelled run: %v", err)
	}
	compareResults(t, want, got)
}

// TestServiceCallbackErrorIsolation checks a failing run surfaces its error
// without poisoning the shared fabric.
func TestServiceCallbackErrorIsolation(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	initial := reductionInputs(g)
	want := serialReduction(t, g, initial)
	boom := errors.New("boom")

	s, err := NewService(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bad := reductionSubmission(g, cloneInitial(initial))
	bad.Register = func(c core.CallbackRegistrar) error {
		c.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
		c.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
		return c.RegisterCallback(graphs.ReduceRootCB, func([]core.Payload, core.TaskId) ([]core.Payload, error) {
			return nil, boom
		})
	}
	if _, _, err := s.Submit(context.Background(), bad); !errors.Is(err, boom) {
		t.Fatalf("failing run: err=%v, want boom", err)
	}
	got, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial)))
	if err != nil {
		t.Fatalf("submit after a failed run: %v", err)
	}
	compareResults(t, want, got)
}

// TestServiceCloseDrains checks Close waits for active runs, rejects late
// submissions, is idempotent, and leaks no goroutines.
func TestServiceCloseDrains(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	initial := reductionInputs(g)

	before := runtime.NumGoroutine()
	s, err := NewService(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial))); err == nil {
		t.Fatal("submit on a closed service should fail")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked across service lifecycle: %d before, %d after", before, n)
	}
}

// TestServiceJournalPerRun checks journaled services give each run a
// private directory under the root and report per-run journal counters.
func TestServiceJournalPerRun(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	initial := reductionInputs(g)
	dir := t.TempDir()

	s, err := NewService(2, WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		_, js, err := s.Submit(context.Background(), reductionSubmission(g, cloneInitial(initial)))
		if err != nil {
			t.Fatal(err)
		}
		if js.Executed == 0 {
			t.Fatalf("run %d: journal counted no executions", i+1)
		}
	}
	for _, run := range []string{"run-1", "run-2"} {
		if _, err := os.Stat(filepath.Join(dir, run, "rank-0")); err != nil {
			t.Fatalf("journal directory for %s missing: %v", run, err)
		}
	}
}

// TestServiceRejectsBadOptions covers NewService surfacing option
// validation errors directly.
func TestServiceRejectsBadOptions(t *testing.T) {
	if _, err := NewService(2, WithJournalSync(journal.SyncNever), WithJournalGroupCommit(time.Millisecond, 8)); err == nil {
		t.Error("conflicting sync options accepted")
	}
	if _, err := NewService(0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewService(2, WithBlocking(true)); err == nil {
		t.Error("blocking service accepted")
	}
}

// tieredTransport is an in-memory fabric that also reports a negotiated
// wire tier per peer, the optional probe WireTiers uses to describe a
// wire-backed service.
type tieredTransport struct {
	fabric.Transport
}

func (tieredTransport) LocalRank() int         { return 0 }
func (tieredTransport) PeerNetwork(int) string { return "shm" }

// TestServiceWireTiers checks the /metrics tier report for both transport
// shapes: the default in-memory fabric labels every pair "mem", and a
// transport exposing the wireTierer probe reports its negotiated tiers
// keyed from the local rank.
func TestServiceWireTiers(t *testing.T) {
	s, err := NewService(3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tiers := s.WireTiers()
	if len(tiers) != 3 {
		t.Fatalf("in-memory tiers = %v, want 3 pairs", tiers)
	}
	for _, pair := range []string{"0-1", "0-2", "1-2"} {
		if tiers[pair] != "mem" {
			t.Errorf("pair %s = %q, want \"mem\"", pair, tiers[pair])
		}
	}
	if s.Stray() != 0 {
		t.Errorf("fresh service counted %d stray frames", s.Stray())
	}

	w, err := NewService(3, WithTransport(func(n int) fabric.Transport {
		return tieredTransport{fabric.New(n)}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tiers = w.WireTiers()
	if len(tiers) != 2 {
		t.Fatalf("wire-backed tiers = %v, want 2 pairs from local rank", tiers)
	}
	for _, pair := range []string{"0-1", "0-2"} {
		if tiers[pair] != "shm" {
			t.Errorf("pair %s = %q, want \"shm\"", pair, tiers[pair])
		}
	}
}
