package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

func u64(v uint64) core.Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return core.Buffer(b)
}

func getU64(p core.Payload) uint64 { return binary.LittleEndian.Uint64(p.Data) }

func sumCB(slots int) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		out := make([]core.Payload, slots)
		for i := range out {
			out[i] = u64(sum)
		}
		return out, nil
	}
}

// runBoth executes the same graph+callbacks on the serial reference and an
// MPI controller and compares the sink outputs byte for byte.
func runBoth(t *testing.T, g core.TaskGraph, m core.TaskMap, reg map[core.CallbackId]core.Callback, initial map[core.TaskId][]core.Payload, opts ...Option) map[core.TaskId][]core.Payload {
	t.Helper()
	ser := core.NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		ser.RegisterCallback(cb, fn)
	}
	want, err := ser.Run(cloneInitial(initial))
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	mc := New(opts...)
	if err := mc.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		mc.RegisterCallback(cb, fn)
	}
	got, err := mc.Run(cloneInitial(initial))
	if err != nil {
		t.Fatalf("mpi run: %v", err)
	}
	compareResults(t, want, got)
	return got
}

func cloneInitial(in map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	out := make(map[core.TaskId][]core.Payload, len(in))
	for id, ps := range in {
		cp := make([]core.Payload, len(ps))
		for i, p := range ps {
			c, _ := p.CloneForWire()
			cp[i] = c
		}
		out[id] = cp
	}
	return out
}

func compareResults(t *testing.T, want, got map[core.TaskId][]core.Payload) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("sink task count: got %d, want %d", len(got), len(want))
	}
	for id, ws := range want {
		gs, ok := got[id]
		if !ok {
			t.Fatalf("missing sink outputs for task %d", id)
		}
		if len(ws) != len(gs) {
			t.Fatalf("task %d sink payload count: got %d, want %d", id, len(gs), len(ws))
		}
		for i := range ws {
			wb, _ := ws[i].Wire()
			gb, _ := gs[i].Wire()
			if !bytes.Equal(wb, gb) {
				t.Errorf("task %d sink %d: got %v, want %v", id, i, gb, wb)
			}
		}
	}
}

func reductionInputs(g *graphs.Reduction) map[core.TaskId][]core.Payload {
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i)*7 + 1)}
	}
	return initial
}

func TestMPIMatchesSerialOnReduction(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	// Over-decomposition sweep: 1 rank to more ranks than tasks.
	for _, shards := range []int{1, 2, 3, 7, 16, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := core.NewModuloMap(shards, g.Size())
			runBoth(t, g, m, reg, reductionInputs(g))
		})
	}
}

func TestMPIMatchesSerialOnBinarySwap(t *testing.T) {
	g, _ := graphs.NewBinarySwap(8)
	// Model image halves as value pairs: keep low, send high.
	split := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		return []core.Payload{u64(sum), u64(sum + 1)}, nil
	}
	reg := map[core.CallbackId]core.Callback{
		graphs.SwapLeafCB: split,
		graphs.SwapMidCB:  split,
		graphs.SwapRootCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i))}
	}
	for _, shards := range []int{1, 3, 8} {
		m := core.NewModuloMap(shards, g.Size())
		runBoth(t, g, m, reg, initial)
	}
}

func TestMPIMatchesSerialOnKWayMerge(t *testing.T) {
	g, _ := graphs.NewKWayMerge(8, 2)
	reg := make(map[core.CallbackId]core.Callback)
	for _, cb := range g.Callbacks() {
		reg[cb] = sumCB(1)
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.UpLeafIds() {
		initial[id] = []core.Payload{u64(uint64(i + 1))}
	}
	for _, shards := range []int{1, 2, 5, 16} {
		m := core.NewModuloMap(shards, g.Size())
		runBoth(t, g, m, reg, initial)
	}
}

func TestMPIMatchesSerialOnNeighbor(t *testing.T) {
	g, _ := graphs.NewNeighbor2D(4, 3)
	extract := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		task, _ := g.Task(id)
		v := getU64(in[0])
		out := make([]core.Payload, len(task.Outgoing))
		for i := range out {
			out[i] = u64(v + uint64(i))
		}
		return out, nil
	}
	reg := map[core.CallbackId]core.Callback{
		graphs.NeighborExtractCB: extract,
		graphs.NeighborProcessCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			initial[g.ExtractId(x, y)] = []core.Payload{u64(uint64(y*4 + x))}
		}
	}
	for _, shards := range []int{1, 4, 12} {
		m := core.NewModuloMap(shards, g.Size())
		runBoth(t, g, m, reg, initial)
	}
}

func TestMPIInlineAndBlockModes(t *testing.T) {
	g, _ := graphs.NewReduction(8, 8) // flat: leaves -> root, no cross sends
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	initial := reductionInputs(g)
	m := core.NewModuloMap(3, g.Size())
	runBoth(t, g, m, reg, initial, WithInline(true))
	runBoth(t, g, m, reg, initial, WithInline(true), WithBlocking(true))
	runBoth(t, g, m, reg, initial, WithAlwaysSerialize(true))
	runBoth(t, g, m, reg, initial, WithWorkers(1))
}

func TestMPIObserverSeesEachTaskOnce(t *testing.T) {
	g, _ := graphs.NewReduction(16, 4)
	log := core.NewExecutionLog()
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	m := core.NewModuloMap(4, g.Size())
	runBoth(t, g, m, reg, reductionInputs(g), WithObserver(log))
	if log.Len() != g.Size() {
		t.Fatalf("observer saw %d executions, want %d", log.Len(), g.Size())
	}
	for _, id := range g.TaskIds() {
		if log.Executions(id) != 1 {
			t.Errorf("task %d executed %d times", id, log.Executions(id))
		}
		if log.Shards[id] != m.Shard(id) {
			t.Errorf("task %d ran on shard %d, mapped to %d", id, log.Shards[id], m.Shard(id))
		}
	}
}

func TestMPIStatsCountOnlyInterRankTraffic(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	// Single rank: everything is local, zero fabric traffic.
	mc := New()
	if err := mc.Initialize(g, core.NewModuloMap(1, g.Size())); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		mc.RegisterCallback(cb, fn)
	}
	if _, err := mc.Run(reductionInputs(g)); err != nil {
		t.Fatal(err)
	}
	if s := mc.Stats(); s.Messages != 0 {
		t.Errorf("single-rank run produced %d fabric messages", s.Messages)
	}

	// Modulo placement of the 7-task binary tree separates parents from
	// children, so messages must flow.
	mc2 := New()
	mc2.Initialize(g, core.NewModuloMap(2, g.Size()))
	for cb, fn := range reg {
		mc2.RegisterCallback(cb, fn)
	}
	if _, err := mc2.Run(reductionInputs(g)); err != nil {
		t.Fatal(err)
	}
	if s := mc2.Stats(); s.Messages == 0 || s.Bytes == 0 {
		t.Errorf("two-rank run reported no traffic: %+v", s)
	}
}

func TestMPIInMemoryMessagePassesPointer(t *testing.T) {
	// On a single rank with one consumer, the object must arrive without
	// serialization.
	g := core.NewExplicitGraph([]core.Task{
		{Id: 0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{}}},
	})
	type opaque struct{ v int } // deliberately not Serializable
	mc := New()
	if err := mc.Initialize(g, core.NewModuloMap(1, 2)); err != nil {
		t.Fatal(err)
	}
	obj := &opaque{v: 17}
	mc.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return []core.Payload{core.Object(obj)}, nil
	})
	var got *opaque
	mc.RegisterCallback(1, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		got, _ = in[0].Object.(*opaque)
		return []core.Payload{core.Buffer([]byte{1})}, nil
	})
	if _, err := mc.Run(map[core.TaskId][]core.Payload{0: {core.Buffer(nil)}}); err != nil {
		t.Fatal(err)
	}
	if got != obj {
		t.Error("in-memory message did not pass the object pointer")
	}
}

func TestMPICrossRankOpaqueObjectFails(t *testing.T) {
	// The same opaque object crossing ranks must fail serialization.
	g := core.NewExplicitGraph([]core.Task{
		{Id: 0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{}}},
	})
	mc := New()
	mc.Initialize(g, core.NewModuloMap(2, 2))
	mc.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return []core.Payload{core.Object(struct{ x int }{1})}, nil
	})
	mc.RegisterCallback(1, sumCB(1))
	if _, err := mc.Run(map[core.TaskId][]core.Payload{0: {core.Buffer(nil)}}); !errors.Is(err, core.ErrNotSerializable) {
		t.Errorf("cross-rank opaque payload: err = %v", err)
	}
}

func TestMPICallbackErrorPropagates(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	boom := errors.New("boom")
	mc := New()
	mc.Initialize(g, core.NewModuloMap(4, g.Size()))
	mc.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	mc.RegisterCallback(graphs.ReduceMidCB, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return nil, boom
	})
	mc.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	if _, err := mc.Run(reductionInputs(g)); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestMPIInitializeErrors(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	mc := New()
	if err := mc.Initialize(nil, core.NewModuloMap(1, 1)); err == nil {
		t.Error("nil graph should fail")
	}
	if err := mc.Initialize(g, nil); err == nil {
		t.Error("nil task map should fail (MPI requires one)")
	}
	if err := mc.Initialize(g, core.NewModuloMap(2, 3)); err == nil {
		t.Error("incomplete task map should fail")
	}
	if err := mc.RegisterCallback(0, sumCB(1)); !errors.Is(err, core.ErrNotInitialized) {
		t.Errorf("RegisterCallback before init = %v", err)
	}
	if _, err := mc.Run(nil); !errors.Is(err, core.ErrNotInitialized) {
		t.Errorf("Run before init = %v", err)
	}
}

func TestMPIMissingCallback(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	mc := New()
	mc.Initialize(g, core.NewModuloMap(2, g.Size()))
	mc.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	if _, err := mc.Run(reductionInputs(g)); !errors.Is(err, core.ErrUnregisteredCallback) {
		t.Errorf("Run = %v", err)
	}
}

func TestMPIWrongOutputArity(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	mc := New()
	mc.Initialize(g, core.NewModuloMap(2, g.Size()))
	mc.RegisterCallback(graphs.ReduceLeafCB, sumCB(2)) // leaves have 1 slot
	mc.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
	mc.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	if _, err := mc.Run(reductionInputs(g)); err == nil {
		t.Error("wrong output arity should fail")
	}
}

func TestMPIRecoversCallbackPanic(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	mc := New()
	mc.Initialize(g, core.NewModuloMap(4, g.Size()))
	mc.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	mc.RegisterCallback(graphs.ReduceMidCB, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		panic("worker panic")
	})
	mc.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	_, err := mc.Run(reductionInputs(g))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("Run = %v, want panic converted to error", err)
	}
}
