package mpi

import (
	"context"
	"errors"
	"os"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/journal"
)

// openFDs counts this process's open file descriptors, or -1 where
// /proc/self/fd is unavailable (non-Linux).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestOpenLedgersCloseIdempotent is the double-close regression guard: the
// close function every teardown path defers must be safe to invoke any
// number of times, including beside an explicit call.
func TestOpenLedgersCloseIdempotent(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	c := New(WithJournal(t.TempDir()), WithJournalSync(journal.SyncNever))
	if err := c.Initialize(g, core.NewModuloMap(2, g.Size())); err != nil {
		t.Fatal(err)
	}
	_, closeLeds, err := c.openLedgers(2)
	if err != nil {
		t.Fatal(err)
	}
	closeLeds()
	after := openFDs()
	closeLeds()
	if again := openFDs(); after >= 0 && again != after {
		t.Fatalf("second close changed fd count: %d -> %d", after, again)
	}
	closeLeds() // third call: still a no-op
}

// TestJournalClosedOnError checks a journaled run whose callback fails
// still closes every per-rank journal: the fd count returns to its
// baseline, and the directory can immediately be reopened for a resumed
// run that completes and matches the serial reference.
func TestJournalClosedOnError(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	m := core.NewModuloMap(2, g.Size())
	initial := reductionInputs(g)
	want := serialReduction(t, g, initial)
	dir := t.TempDir()
	boom := errors.New("boom")

	reg := func(c *Controller, failRoot bool) {
		c.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
		c.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
		if failRoot {
			c.RegisterCallback(graphs.ReduceRootCB, func([]core.Payload, core.TaskId) ([]core.Payload, error) {
				return nil, boom
			})
		} else {
			c.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
		}
	}

	base := openFDs()
	fail := New(WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err := fail.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	reg(fail, true)
	if _, err := fail.Run(cloneInitial(initial)); !errors.Is(err, boom) {
		t.Fatalf("failing run: err=%v, want boom", err)
	}
	if base >= 0 {
		if after := openFDs(); after > base {
			t.Fatalf("failed run leaked %d fds (%d -> %d)", after-base, base, after)
		}
	}

	// The journals were closed cleanly, so a resumed run over the same
	// directory replays the journaled prefix and completes.
	resume := New(WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err := resume.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	reg(resume, false)
	got, err := resume.Run(cloneInitial(initial))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	compareResults(t, want, got)
	js := resume.JournalStats()
	if js.Restored == 0 || js.Replayed == 0 {
		t.Fatalf("resume did not replay the journaled prefix: %+v", js)
	}
}

// TestJournalClosedOnCancel checks a cancelled journaled run closes its
// journals (no fd growth) and leaves the directory resumable.
func TestJournalClosedOnCancel(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	m := core.NewModuloMap(2, g.Size())
	initial := reductionInputs(g)
	dir := t.TempDir()

	base := openFDs()
	c := New(WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err := c.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	c.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	c.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
	c.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx, cloneInitial(initial)); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled run: err=%v, want ErrCancelled", err)
	}
	if base >= 0 {
		if after := openFDs(); after > base {
			t.Fatalf("cancelled run leaked %d fds (%d -> %d)", after-base, base, after)
		}
	}

	resume := New(WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err := resume.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	resume.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	resume.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
	resume.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	if _, err := resume.Run(cloneInitial(initial)); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
}

// TestRunRankJournalClosedOnError checks the single-rank teardown path
// (RunRank with a journal) also releases its store on failure.
func TestRunRankJournalClosedOnError(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	m := core.NewModuloMap(1, g.Size())
	dir := t.TempDir()

	base := openFDs()
	c := New(WithJournal(dir), WithJournalSync(journal.SyncNever))
	if err := c.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	c.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	c.RegisterCallback(graphs.ReduceMidCB, sumCB(1))
	// A failing root unwinds RunRank after it opened its journal.
	c.RegisterCallback(graphs.ReduceRootCB, func([]core.Payload, core.TaskId) ([]core.Payload, error) {
		return nil, errors.New("boom")
	})
	if _, err := c.RunRank(0, fabric.New(1), reductionInputs(g)); err == nil {
		t.Fatal("RunRank with a failing root should fail")
	}
	if base >= 0 {
		if after := openFDs(); after > base {
			t.Fatalf("failed RunRank leaked %d fds (%d -> %d)", after-base, base, after)
		}
	}
}
