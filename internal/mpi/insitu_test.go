package mpi

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

// splitInitial partitions a global initial-input map into per-rank maps.
func splitInitial(m core.TaskMap, initial map[core.TaskId][]core.Payload) map[int]map[core.TaskId][]core.Payload {
	out := make(map[int]map[core.TaskId][]core.Payload)
	for id, ps := range initial {
		r := int(m.Shard(id))
		if out[r] == nil {
			out[r] = make(map[core.TaskId][]core.Payload)
		}
		out[r][id] = ps
	}
	return out
}

// TestInSituMatchesMonolithicRun: every rank independently instantiates and
// runs its sub-graph with only its local data; the combined sink outputs
// equal the single-driver Run.
func TestInSituMatchesMonolithicRun(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	m := core.NewModuloMap(4, g.Size())
	initial := reductionInputs(g)

	// Monolithic reference.
	ref := New()
	ref.Initialize(g, m)
	for _, cb := range g.Callbacks() {
		ref.RegisterCallback(cb, sumCB(1))
	}
	want, err := ref.Run(cloneInitial(initial))
	if err != nil {
		t.Fatal(err)
	}

	// In-situ group: ranks start concurrently, some delayed like a real
	// simulation reaching the analysis phase at different times.
	group, err := NewGroup(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range g.Callbacks() {
		group.RegisterCallback(cb, sumCB(1))
	}
	perRank := splitInitial(m, cloneInitial(initial))

	combined := make(map[core.TaskId][]core.Payload)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < group.Ranks(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if rank%2 == 1 {
				time.Sleep(10 * time.Millisecond)
			}
			shard, err := group.Shard(rank)
			if err != nil {
				t.Error(err)
				return
			}
			out, err := shard.Run(perRank[rank])
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			mu.Lock()
			for id, ps := range out {
				combined[id] = ps
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()

	if len(combined) != len(want) {
		t.Fatalf("combined sinks = %d, want %d", len(combined), len(want))
	}
	for id, ws := range want {
		gs := combined[id]
		for i := range ws {
			wb, _ := ws[i].Wire()
			gb, _ := gs[i].Wire()
			if !bytes.Equal(wb, gb) {
				t.Errorf("sink %d payload %d differs", id, i)
			}
		}
	}
}

// TestInSituSinkLocality: each shard's Run returns only the sinks of its
// own tasks.
func TestInSituSinkLocality(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	m := core.NewModuloMap(3, g.Size())
	group, _ := NewGroup(g, m)
	for _, cb := range g.Callbacks() {
		group.RegisterCallback(cb, sumCB(1))
	}
	perRank := splitInitial(m, reductionInputs(g))
	outs := make([]map[core.TaskId][]core.Payload, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			shard, _ := group.Shard(rank)
			out, err := shard.Run(perRank[rank])
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
			outs[rank] = out
		}(r)
	}
	wg.Wait()
	// The only sink (root, task 0) lives on rank 0.
	if len(outs[0]) != 1 || len(outs[1]) != 0 || len(outs[2]) != 0 {
		t.Errorf("sink distribution = %d/%d/%d, want 1/0/0", len(outs[0]), len(outs[1]), len(outs[2]))
	}
}

func TestInSituLocalInputValidation(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	m := core.NewModuloMap(2, g.Size())
	group, _ := NewGroup(g, m)
	for _, cb := range g.Callbacks() {
		group.RegisterCallback(cb, sumCB(1))
	}
	shard, _ := group.Shard(0)
	// Leaf 4 lives on rank 0 (4 % 2 == 0); leaf 3 does not.
	if _, err := shard.Run(map[core.TaskId][]core.Payload{3: {u64(1)}}); err == nil {
		t.Error("inputs for a non-local task should fail")
	}
	if _, err := group.Shard(7); err == nil {
		t.Error("out-of-range rank should fail")
	}
}

func TestInSituDoubleRunRejected(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	m := core.NewModuloMap(1, g.Size())
	group, _ := NewGroup(g, m)
	for _, cb := range g.Callbacks() {
		group.RegisterCallback(cb, sumCB(1))
	}
	shard, _ := group.Shard(0)
	if _, err := shard.Run(reductionInputs(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Run(reductionInputs(g)); err == nil {
		t.Error("second Run on the same rank should fail")
	}
}

func TestInSituErrorPropagatesAcrossShards(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	m := core.NewModuloMap(2, g.Size())
	group, _ := NewGroup(g, m)
	boom := errors.New("boom")
	group.RegisterCallback(graphs.ReduceLeafCB, sumCB(1))
	group.RegisterCallback(graphs.ReduceMidCB, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		if id == 1 {
			return nil, boom
		}
		return sumCB(1)(in, id)
	})
	group.RegisterCallback(graphs.ReduceRootCB, sumCB(1))
	perRank := splitInitial(m, reductionInputs(g))
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			shard, _ := group.Shard(rank)
			_, errs[rank] = shard.Run(perRank[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("rank %d error = %v, want boom", r, err)
		}
	}
}
