package mpi

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

// countingSum wraps sumCB with an execution counter, so resume tests can
// assert which tasks actually ran their callbacks.
func countingSum(execs *atomic.Int64) core.Callback {
	inner := sumCB(1)
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		execs.Add(1)
		return inner(in, id)
	}
}

func newJournaledController(t *testing.T, g core.TaskGraph, m core.TaskMap, dir string, execs *atomic.Int64) *Controller {
	t.Helper()
	c := New(WithJournal(dir))
	if err := c.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cb := range g.Callbacks() {
		if err := c.RegisterCallback(cb, countingSum(execs)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestJournaledRunResumes runs a reduction with a journal, then runs a
// fresh controller over the same directory: every task must replay from
// the journal (zero callback executions) with byte-identical sinks.
func TestJournaledRunResumes(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	m := core.NewModuloMap(3, g.Size())
	dir := t.TempDir()

	var execs atomic.Int64
	c1 := newJournaledController(t, g, m, dir, &execs)
	want, err := c1.Run(reductionInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(execs.Load()); got != g.Size() {
		t.Fatalf("first run executed %d callbacks, want %d", got, g.Size())
	}
	js := c1.JournalStats()
	if js.Restored != 0 || js.Executed != g.Size() || js.Replayed != 0 || js.StoreErrors != 0 {
		t.Fatalf("first run stats %+v", js)
	}

	execs.Store(0)
	c2 := newJournaledController(t, g, m, dir, &execs)
	got, err := c2.Run(reductionInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("resumed run executed %d callbacks, want 0 (all replayed)", n)
	}
	js = c2.JournalStats()
	if js.Restored != g.Size() || js.Replayed != g.Size() || js.Executed != 0 {
		t.Fatalf("resumed run stats %+v", js)
	}
	compareResults(t, want, got)
}

// TestJournaledRunPartialResume deletes one rank's journal between runs:
// only that rank's tasks may re-execute, everything else replays.
func TestJournaledRunPartialResume(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	const shards = 3
	m := core.NewModuloMap(shards, g.Size())
	dir := t.TempDir()

	var execs atomic.Int64
	c1 := newJournaledController(t, g, m, dir, &execs)
	want, err := c1.Run(reductionInputs(g))
	if err != nil {
		t.Fatal(err)
	}

	const lost = 1
	if err := os.RemoveAll(filepath.Join(dir, fmt.Sprintf("rank-%d", lost))); err != nil {
		t.Fatal(err)
	}
	execs.Store(0)
	c2 := newJournaledController(t, g, m, dir, &execs)
	got, err := c2.Run(reductionInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	wantExecs := len(m.Ids(core.ShardId(lost)))
	if n := int(execs.Load()); n != wantExecs {
		t.Fatalf("partial resume executed %d callbacks, want %d (rank %d's tasks)", n, wantExecs, lost)
	}
	js := c2.JournalStats()
	if js.Executed != wantExecs || js.Replayed != g.Size()-wantExecs {
		t.Fatalf("partial resume stats %+v, want executed=%d replayed=%d", js, wantExecs, g.Size()-wantExecs)
	}
	compareResults(t, want, got)
}

// TestJournaledRunRankResumes drives the single-rank entry point (the
// multi-process path) with a journal: independent RunRank calls over a
// shared transport journal per rank, and a rerun replays everything.
func TestJournaledRunRankResumes(t *testing.T) {
	g, _ := graphs.NewReduction(16, 2)
	const ranks = 4
	m := core.NewModuloMap(ranks, g.Size())
	dir := t.TempDir()

	runAll := func(execs *atomic.Int64) map[core.TaskId][]core.Payload {
		t.Helper()
		c := newJournaledController(t, g, m, dir, execs)
		fab := fabric.New(ranks)
		parts := make([]map[core.TaskId][]core.Payload, ranks)
		for id, ps := range reductionInputs(g) {
			r := int(m.Shard(id))
			if parts[r] == nil {
				parts[r] = make(map[core.TaskId][]core.Payload)
			}
			parts[r][id] = ps
		}
		results := make([]map[core.TaskId][]core.Payload, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				results[r], errs[r] = c.RunRank(r, fab, parts[r])
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		merged := make(map[core.TaskId][]core.Payload)
		for _, res := range results {
			for id, ps := range res {
				merged[id] = append(merged[id], ps...)
			}
		}
		return merged
	}

	var execs atomic.Int64
	want := runAll(&execs)
	if got := int(execs.Load()); got != g.Size() {
		t.Fatalf("first run executed %d callbacks, want %d", got, g.Size())
	}
	execs.Store(0)
	got := runAll(&execs)
	if n := execs.Load(); n != 0 {
		t.Fatalf("resumed RunRank executed %d callbacks, want 0", n)
	}
	compareResults(t, want, got)
}

// TestWireOptionsCarriesHeartbeatAndFingerprint checks the controller's
// wire template plumbs WithHeartbeat tuning and the graph fingerprint.
func TestWireOptionsCarriesHeartbeatAndFingerprint(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	m := core.NewModuloMap(2, g.Size())
	c := New(WithHeartbeat(50*time.Millisecond, 250*time.Millisecond))
	if err := c.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cb := range g.Callbacks() {
		if err := c.RegisterCallback(cb, sumCB(1)); err != nil {
			t.Fatal(err)
		}
	}
	wo := c.WireOptions()
	if wo.HeartbeatInterval != 50*time.Millisecond || wo.HeartbeatTimeout != 250*time.Millisecond {
		t.Fatalf("heartbeat tuning not plumbed: %+v", wo)
	}
	if wo.Fingerprint != c.Fingerprint() || wo.Fingerprint == (core.Fingerprint{}) {
		t.Fatalf("fingerprint not plumbed: %+v", wo.Fingerprint)
	}
}
