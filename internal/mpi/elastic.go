package mpi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/journal"
)

// Elastic membership: the epoch protocol generalized from loss-only
// shrinking (RunRecover) to arbitrary membership change. A Membership
// registry accumulates join and drain requests; the coordinator fences the
// running epoch at a journal-consistent point (Fabric.Fence suspends
// liveness timers, group-commit journals are flushed, the epoch collapses),
// applies the pending changes in ONE epoch bump, rebalances the task map
// with core.RebalanceShards, adopts handed-off lineage into the new owners'
// ledgers, and runs the next epoch. Losses still shrink the membership, but
// partition hardening distinguishes "partitioned but alive" from "dead":
// a rank that itself reported a peer loss was alive to report it and is
// never evicted, so an asymmetric or flapping link costs at most one epoch
// bump instead of an eviction storm.

// errFenced marks an epoch torn down by a membership fence rather than a
// failure. Fenced epochs do not consume the retry budget.
var errFenced = errors.New("mpi: epoch fenced for membership change")

// Fencer is the optional transport hook the fence uses to suspend liveness
// timers while ranks freeze at the barrier (implemented by wire.Fabric).
type Fencer interface {
	Fence(on bool)
}

// Membership is the shared registry of an elastic run's member set. Members
// are identified by stable physical ids: the initial ranks occupy
// [0, ranks) and every joiner gets a fresh id, so per-member journals and
// lineage ledgers survive renumbering across epochs. Join and Drain may be
// called from any goroutine, before or during a run; the coordinator
// coalesces everything pending into the next epoch boundary — one epoch
// bump per batch of membership events, however many arrive together.
type Membership struct {
	mu       sync.Mutex
	active   []core.ShardId
	pendJoin []core.ShardId
	pendDrop []core.ShardId
	nextID   core.ShardId
	joinAt   time.Time // earliest unapplied join request
	drainAt  time.Time // earliest unapplied drain request
	signal   chan struct{}
}

// NewMembership returns a registry whose initial members are 0..ranks-1.
func NewMembership(ranks int) (*Membership, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("mpi: membership needs at least one rank, got %d", ranks)
	}
	m := &Membership{
		active: make([]core.ShardId, ranks),
		nextID: core.ShardId(ranks),
		signal: make(chan struct{}),
	}
	for i := range m.active {
		m.active[i] = core.ShardId(i)
	}
	return m, nil
}

// Join registers a new member and returns its identity. The member becomes
// part of the rank set at the next epoch boundary (fencing the current
// epoch when one is running).
func (m *Membership) Join() core.ShardId {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.pendJoin = append(m.pendJoin, id)
	if m.joinAt.IsZero() {
		m.joinAt = time.Now()
	}
	m.wakeLocked()
	return id
}

// Drain marks a member for graceful removal: at the next epoch boundary its
// shards are handed off (lineage adopted by the new owners) and it leaves
// the rank set without being declared lost. Draining the last remaining
// member is refused.
func (m *Membership) Drain(id core.ShardId) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	found := false
	for _, a := range m.active {
		if a == id {
			found = true
			break
		}
	}
	if !found {
		for _, j := range m.pendJoin {
			if j == id {
				found = true
				break
			}
		}
	}
	if !found {
		return fmt.Errorf("mpi: drain: member %d is not part of the membership", id)
	}
	for _, d := range m.pendDrop {
		if d == id {
			return nil // idempotent
		}
	}
	if len(m.active)+len(m.pendJoin)-len(m.pendDrop) <= 1 {
		return fmt.Errorf("mpi: drain: member %d is the last member", id)
	}
	m.pendDrop = append(m.pendDrop, id)
	if m.drainAt.IsZero() {
		m.drainAt = time.Now()
	}
	m.wakeLocked()
	return nil
}

// wakeLocked signals a waiting coordinator that pending changes exist.
func (m *Membership) wakeLocked() {
	select {
	case <-m.signal:
	default:
		close(m.signal)
	}
}

// wait returns a channel that is closed while membership changes are
// pending (a fence trigger for the running epoch).
func (m *Membership) wait() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.signal
}

// Members returns the active member identities in epoch order.
func (m *Membership) Members() []core.ShardId {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]core.ShardId(nil), m.active...)
}

// take applies every pending change to the active set and returns what
// changed plus the earliest request times (for join/drain latency
// accounting). Called by the coordinator at an epoch boundary.
func (m *Membership) take() (joins, drains []core.ShardId, joinAt, drainAt time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	joins, drains = m.pendJoin, m.pendDrop
	joinAt, drainAt = m.joinAt, m.drainAt
	m.pendJoin, m.pendDrop = nil, nil
	m.joinAt, m.drainAt = time.Time{}, time.Time{}
	m.active = append(m.active, joins...)
	if len(drains) > 0 {
		drop := make(map[core.ShardId]bool, len(drains))
		for _, d := range drains {
			drop[d] = true
		}
		next := m.active[:0]
		for _, a := range m.active {
			if !drop[a] {
				next = append(next, a)
			}
		}
		m.active = next
	}
	select {
	case <-m.signal:
		m.signal = make(chan struct{}) // re-arm
	default:
	}
	return joins, drains, joinAt, drainAt
}

// evict removes a member declared dead (not drained): no hand-off, its
// unrecorded work re-executes elsewhere.
func (m *Membership) evict(id core.ShardId) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.active[:0]
	for _, a := range m.active {
		if a != id {
			next = append(next, a)
		}
	}
	m.active = next
}

// ElasticOptions parameterizes RunElastic.
type ElasticOptions struct {
	// Connect builds each epoch's transports (same contract as
	// RecoverOptions.Connect).
	Connect ConnectFunc
	// Inject, when non-nil, wraps each rank's transport (fault injection).
	Inject InjectFunc
	// Initial is the dataflow's full set of external inputs.
	Initial map[core.TaskId][]core.Payload
	// Membership is the shared registry join/drain requests flow through.
	Membership *Membership
	// MaxFences bounds membership-fence rebuilds (0 selects 32). Fenced
	// epochs do not consume the retry budget — a retry is a failure, a
	// fence is a request — but runaway churn must still terminate.
	MaxFences int
}

// ElasticReport summarizes an elastic run.
type ElasticReport struct {
	// Epochs counts every execution attempt: the first, fenced rebuilds and
	// failure retries.
	Epochs int
	// Fences counts epochs cut short by a membership change.
	Fences int
	// Joined and Drained list membership changes applied, in order.
	Joined  []core.ShardId
	Drained []core.ShardId
	// LostShards lists members declared dead (member identities).
	LostShards []core.ShardId
	// HandedOff counts recorded tasks whose lineage was adopted by a new
	// owner at an epoch boundary.
	HandedOff int
	// Replayed and Executed count the FINAL epoch only; on success
	// Replayed+Executed equals the task count (every task either replays
	// from a ledger or executes exactly once).
	Replayed int
	Executed int
	// TotalExecuted counts callback executions across all epochs.
	TotalExecuted int
	// JoinLatency and DrainLatency measure the most recent membership
	// event of each kind: request to running rebalanced epoch.
	JoinLatency  time.Duration
	DrainLatency time.Duration
	// RecoveryTime is the wall clock spent after the first failure or fence.
	RecoveryTime time.Duration
}

// RunElastic executes the dataflow under elastic membership: epochs run
// until one completes over whatever member set the Membership registry
// holds, fencing and rebalancing on joins and drains, shrinking on real
// deaths, and retrying (without eviction) on partitions. See the package
// comments above and DESIGN.md §16 for the protocol.
func (c *Controller) RunElastic(ctx context.Context, eo ElasticOptions) (map[core.TaskId][]core.Payload, ElasticReport, error) {
	var rep ElasticReport
	if c.graph == nil {
		return nil, rep, core.ErrNotInitialized
	}
	if eo.Connect == nil {
		return nil, rep, fmt.Errorf("mpi: RunElastic requires a Connect function")
	}
	if eo.Membership == nil {
		return nil, rep, fmt.Errorf("mpi: RunElastic requires a Membership")
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, rep, err
	}
	if err := core.CheckInitial(c.graph, eo.Initial); err != nil {
		return nil, rep, err
	}

	policy := c.opt.Retry.WithDefaults()
	maxFences := eo.MaxFences
	if maxFences <= 0 {
		maxFences = 32
	}
	ms := eo.Membership

	// Ledgers and journal stores are keyed by stable member identity and
	// opened lazily as members appear; they persist across epochs (and,
	// when journaled, across process restarts).
	ledgers := make(map[core.ShardId]*core.Ledger)
	stores := make(map[core.ShardId]*journal.LedgerStore)
	defer func() {
		leds := make([]*core.Ledger, 0, len(ledgers))
		for _, l := range ledgers {
			leds = append(leds, l)
		}
		if c.opt.Journal != "" {
			c.recordJournalStats(leds)
		}
		for _, s := range stores {
			s.Close()
		}
	}()
	ledgerFor := func(id core.ShardId) (*core.Ledger, error) {
		if l, ok := ledgers[id]; ok {
			return l, nil
		}
		if c.opt.Journal == "" {
			ledgers[id] = core.NewLedger()
			return ledgers[id], nil
		}
		led, store, err := c.openLedger(int(id))
		if err != nil {
			return nil, err
		}
		ledgers[id], stores[id] = led, store
		return led, nil
	}

	wantSinks := expectedSinks(c.graph)

	// prevOwner tracks each task's owner (member identity) as of the last
	// epoch map, the baseline hand-off diffs against. Before the first
	// epoch the base map's shard ids ARE member identities.
	prevOwner := make(map[core.TaskId]core.ShardId, len(c.graph.TaskIds()))
	for _, id := range c.graph.TaskIds() {
		prevOwner[id] = c.tmap.Shard(id)
	}

	var recoveryStart time.Time
	var lastErr error
	failures := 0
	for epoch := 1; ; epoch++ {
		rep.Epochs = epoch
		if err := ctx.Err(); err != nil {
			return nil, rep, core.Cancelled(ctx)
		}

		joins, drains, joinAt, drainAt := ms.take()
		rep.Joined = append(rep.Joined, joins...)
		rep.Drained = append(rep.Drained, drains...)
		members := ms.Members()
		if len(members) == 0 {
			return nil, rep, fmt.Errorf("mpi: every member lost: %w", core.ErrRetriesExhausted)
		}

		tmap, err := core.RebalanceShards(c.graph, c.tmap, members)
		if err != nil {
			return nil, rep, err
		}
		for _, id := range members {
			if _, err := ledgerFor(id); err != nil {
				return nil, rep, err
			}
		}

		// Hand-off: every recorded task whose owner changed is adopted into
		// the new owner's ledger (journaled when backed), BEFORE the epoch
		// runs — group-commit flush happened at the fence, so the transfer
		// is replayable even if the donor's journal is retired.
		for _, id := range c.graph.TaskIds() {
			owner := members[tmap.Shard(id)]
			was := prevOwner[id]
			if owner != was {
				if donor, ok := ledgers[was]; ok {
					if heir := ledgers[owner]; heir.Adopt(donor, id) {
						rep.HandedOff++
					}
				}
				prevOwner[id] = owner
			}
		}

		merged, lost, fenced, err := c.runElasticEpoch(ctx, epoch, tmap, members, ledgers, stores, wantSinks, eo, policy, &rep, joinAt, drainAt)
		if err == nil {
			if !recoveryStart.IsZero() {
				rep.RecoveryTime = time.Since(recoveryStart)
			}
			return merged, rep, nil
		}
		if recoveryStart.IsZero() {
			recoveryStart = time.Now()
		}
		if ctx.Err() != nil {
			return nil, rep, core.Cancelled(ctx)
		}
		if fenced {
			rep.Fences++
			if rep.Fences > maxFences {
				return nil, rep, fmt.Errorf("mpi: %d membership fences: %w", rep.Fences, core.ErrRetriesExhausted)
			}
			continue // a fence is a request, not a failure: no backoff, no budget
		}
		if !retryable(err) {
			return nil, rep, err
		}
		lastErr = err
		failures++

		if len(lost) > 0 {
			for _, id := range lost {
				ms.evict(id)
				rep.LostShards = append(rep.LostShards, id)
			}
			sort.Slice(rep.LostShards, func(i, j int) bool { return rep.LostShards[i] < rep.LostShards[j] })
			if c.recObs != nil {
				c.recObs.RecoveryStarted(epoch+1, append([]core.ShardId(nil), rep.LostShards...))
			}
		}
		if failures >= policy.MaxAttempts {
			return nil, rep, fmt.Errorf("mpi: %d attempt(s) failed: %w (last: %v)", failures, core.ErrRetriesExhausted, lastErr)
		}
		if err := policy.Sleep(ctx, failures); err != nil {
			return nil, rep, err
		}
	}
}

// runElasticEpoch runs one attempt over the given member set. It returns
// the merged sinks on success; on failure it reports the members declared
// dead under the partition-hardened classification and whether the epoch
// was cut short by a membership fence.
func (c *Controller) runElasticEpoch(
	ctx context.Context, epoch int, tmap core.TaskMap, members []core.ShardId,
	ledgers map[core.ShardId]*core.Ledger, stores map[core.ShardId]*journal.LedgerStore,
	wantSinks map[core.TaskId]int, eo ElasticOptions, policy core.RetryPolicy,
	rep *ElasticReport, joinAt, drainAt time.Time,
) (map[core.TaskId][]core.Payload, []core.ShardId, bool, error) {
	ranks := len(members)
	ectx, ecancel := context.WithCancel(ctx)
	defer ecancel()
	if policy.AttemptTimeout > 0 {
		var tcancel context.CancelFunc
		ectx, tcancel = context.WithTimeout(ectx, policy.AttemptTimeout)
		defer tcancel()
	}

	trs, err := eo.Connect(epoch, ranks)
	if err != nil {
		return nil, nil, false, fmt.Errorf("mpi: epoch %d connect: %w", epoch, err)
	}
	if len(trs) != ranks {
		closeEpoch(trs, false)
		return nil, nil, false, fmt.Errorf("mpi: epoch %d: connect returned %d transports, want %d", epoch, len(trs), ranks)
	}
	// The rebalanced epoch is connected: the membership events it absorbed
	// are now served.
	if !joinAt.IsZero() {
		rep.JoinLatency = time.Since(joinAt)
	}
	if !drainAt.IsZero() {
		rep.DrainLatency = time.Since(drainAt)
	}

	wrapped := make([]fabric.Transport, ranks)
	for l := range trs {
		wrapped[l] = trs[l]
		if eo.Inject != nil {
			wrapped[l] = eo.Inject(epoch, l, trs[l])
		}
	}

	parts, err := partitionInitialClone(tmap, ranks, eo.Initial)
	if err != nil {
		closeEpoch(trs, false)
		return nil, nil, false, err
	}

	// The fence watcher: a membership event arriving mid-epoch freezes the
	// mesh at a journal-consistent point and collapses the epoch. Ordering
	// matters: suspend liveness timers FIRST (a rank stalled in a journal
	// flush must not read as dead), then flush the group-commit journals,
	// then tear the epoch down.
	var fenceFired atomic.Bool
	fenceDone := make(chan struct{})
	go func() {
		defer close(fenceDone)
		select {
		case <-ectx.Done():
		case <-eo.Membership.wait():
			fenceFired.Store(true)
			for _, tr := range trs {
				if fr, ok := tr.(Fencer); ok {
					fr.Fence(true)
				}
			}
			for _, st := range stores {
				st.Sync()
			}
			ecancel()
			for _, tr := range trs {
				tr.Cancel()
			}
		}
	}()

	preReplay, preExec := sumLedgerMap(ledgers)
	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for l := 0; l < ranks; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			results[l], errs[l] = c.runRankOn(ectx, l, wrapped[l], parts[l], ledgers[members[l]], tmap)
		}(l)
	}
	wg.Wait()
	ecancel()
	<-fenceDone

	postReplay, postExec := sumLedgerMap(ledgers)
	rep.TotalExecuted = postExec

	if fenceFired.Load() {
		releaseResults(mergeResults(results))
		closeEpoch(trs, false)
		return nil, nil, true, errFenced
	}

	lost := classifyDead(wrapped, errs, members)

	var firstErr, nonRetryable error
	lostSet := make(map[core.ShardId]bool, len(lost))
	for _, id := range lost {
		lostSet[id] = true
	}
	for l, e := range errs {
		if e == nil {
			continue
		}
		if firstErr == nil {
			firstErr = e
		}
		if !lostSet[members[l]] && !retryable(e) {
			nonRetryable = e
		}
	}
	merged := mergeResults(results)
	if firstErr == nil && len(lost) == 0 && sinksComplete(wantSinks, merged) {
		rep.Replayed = postReplay - preReplay
		rep.Executed = postExec - preExec
		closeEpoch(trs, true)
		return merged, nil, false, nil
	}
	releaseResults(merged)
	closeEpoch(trs, false)
	if nonRetryable != nil {
		return nil, lost, false, nonRetryable
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("mpi: epoch %d: incomplete sink coverage: %w", epoch, fabric.ErrPeerLost)
	}
	return nil, lost, false, firstErr
}

// classifyDead is the partition-hardened loss classification. RunRecover's
// rule — any reported rank that also errored is dead — evicts the victim of
// an asymmetric partition: the rank that times out on a silent link fails,
// cancels, and its closing connections make every peer report it. Here a
// rank is declared dead only when
//
//   - it reported ITSELF lost (the injection harness's authoritative
//     self-report for a killed rank), or
//   - it was reported by a peer, errored, and reported no loss of its own:
//     a rank that itself reported a peer loss was alive to observe it —
//     partitioned, not dead — and is retried in place, while a truly dead
//     process reports nothing. Additionally the report must be corroborated
//     through logical rank 0 (the coordinator's heartbeat anchor): either
//     rank 0 is among the reporters, or the suspect IS rank 0 and a
//     majority of the other ranks reported it.
//
// The result: a flapping or one-way link costs one retry epoch with the
// membership intact; only silent, failed, corroborated ranks are evicted.
func classifyDead(wrapped []fabric.Transport, errs []error, members []core.ShardId) []core.ShardId {
	ranks := len(wrapped)
	dead := make(map[int]bool)
	reportedBy := make(map[int]map[int]bool) // suspect -> reporters
	spoke := make(map[int]bool)              // ranks that reported any loss
	for l := range wrapped {
		lr, ok := wrapped[l].(fabric.LossReporter)
		if !ok {
			continue
		}
		for _, lp := range lr.LostPeers() {
			if lp < 0 || lp >= ranks {
				continue
			}
			if lp == l {
				dead[lp] = true
				continue
			}
			spoke[l] = true
			if reportedBy[lp] == nil {
				reportedBy[lp] = make(map[int]bool)
			}
			reportedBy[lp][l] = true
		}
	}
	for lp, reporters := range reportedBy {
		if dead[lp] || spoke[lp] || errs[lp] == nil {
			continue
		}
		corroborated := reporters[0]
		if lp == 0 {
			// Rank 0 cannot vouch for itself: require a majority of the
			// other ranks.
			corroborated = len(reporters) >= (ranks-1)/2+1
		}
		if corroborated {
			dead[lp] = true
		}
	}
	var lost []core.ShardId
	for l := range dead {
		lost = append(lost, members[l])
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	return lost
}

func sumLedgerMap(ledgers map[core.ShardId]*core.Ledger) (replayed, executed int) {
	for _, l := range ledgers {
		replayed += l.Replays()
		executed += l.Executions()
	}
	return replayed, executed
}

// RunMemberContext executes one logical rank of an elastic epoch whose
// peers live in other OS processes: the multi-process counterpart of the
// per-rank loop inside RunElastic. rank is the epoch's logical rank on the
// transport, tmap the epoch task map (core.RebalanceShards over the
// coordinator's member table), and led the member's lineage ledger — tasks
// already recorded there replay instead of re-executing, exactly as in a
// recovery epoch. A nil ledger runs the epoch without lineage.
func (c *Controller) RunMemberContext(ctx context.Context, rank int, tr fabric.Transport, initial map[core.TaskId][]core.Payload, tmap core.TaskMap, led *core.Ledger) (map[core.TaskId][]core.Payload, error) {
	return c.runRankOn(ctx, rank, tr, initial, led, tmap)
}

// OpenMemberLedger opens the journal-backed lineage ledger of a stable
// member identity under the controller's journal directory (WithJournal),
// restoring whatever records a previous process left there. The caller owns
// the returned store: Sync it at a fence, Close it on drain or exit. An
// elastic worker also uses this to adopt lineage from a RETIRED member's
// journal — safe only once that member reported its drain, because the
// store admits a single writer.
func (c *Controller) OpenMemberLedger(member int) (*core.Ledger, *journal.LedgerStore, error) {
	if c.opt.Journal == "" {
		return nil, nil, fmt.Errorf("mpi: OpenMemberLedger requires a journal directory (WithJournal)")
	}
	return c.openLedger(member)
}
