package mpi

import (
	"strings"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/journal"
)

// initErr builds a controller with the given options and returns the error
// Initialize surfaces — where option validation lands.
func initErr(t *testing.T, opts ...Option) error {
	t.Helper()
	g, _ := graphs.NewReduction(4, 2)
	c := New(opts...)
	return c.Initialize(g, core.NewModuloMap(2, g.Size()))
}

func TestOptionValidationConflictingSync(t *testing.T) {
	err := initErr(t, WithJournalSync(journal.SyncNever), WithJournalGroupCommit(time.Millisecond, 8))
	if err == nil {
		t.Fatal("WithJournalSync(SyncNever) + WithJournalGroupCommit accepted")
	}
	if !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflict error not descriptive: %v", err)
	}
	// Order must not matter: the combination is rejected either way.
	if err := initErr(t, WithJournalGroupCommit(time.Millisecond, 8), WithJournalSync(journal.SyncNever)); err == nil {
		t.Fatal("reversed order accepted")
	}
}

func TestOptionValidationCompatibleSync(t *testing.T) {
	// An explicit SyncGroupCommit policy agrees with the group-commit
	// window option; only genuinely conflicting policies are rejected.
	if err := initErr(t, WithJournalSync(journal.SyncGroupCommit), WithJournalGroupCommit(time.Millisecond, 8)); err != nil {
		t.Fatalf("compatible combination rejected: %v", err)
	}
	if err := initErr(t, WithJournalSync(journal.SyncNever)); err != nil {
		t.Fatalf("lone WithJournalSync rejected: %v", err)
	}
	if err := initErr(t, WithJournalGroupCommit(time.Millisecond, 8)); err != nil {
		t.Fatalf("lone WithJournalGroupCommit rejected: %v", err)
	}
}

func TestOptionValidationCommitWindow(t *testing.T) {
	for _, tc := range []struct {
		name     string
		interval time.Duration
		records  int
	}{
		{"zero_interval", 0, 8},
		{"zero_records", time.Millisecond, 0},
		{"negative_interval", -time.Millisecond, 8},
		{"negative_records", time.Millisecond, -1},
	} {
		if err := initErr(t, WithJournalGroupCommit(tc.interval, tc.records)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestOptionValidationStructForm(t *testing.T) {
	// The struct form keeps zero-means-default semantics (legacy callers),
	// but negative windows are still rejected.
	if err := initErr(t, WithJournalSync(journal.SyncGroupCommit)); err != nil {
		t.Fatalf("struct form with zero windows rejected: %v", err)
	}
	if err := initErr(t, WithJournalGroupCommit(-time.Second, 8)); err == nil {
		t.Error("struct form negative interval accepted")
	}
	if err := initErr(t, WithJournalGroupCommit(time.Millisecond, -4)); err == nil {
		t.Error("struct form negative record bound accepted")
	}
}
