package mergetree

import (
	"testing"
	"testing/quick"

	"github.com/babelflow/babelflow-go/internal/data"
)

// lineField builds a 1-D field with the given values.
func lineField(vals ...float32) *data.Field {
	f := data.NewField(len(vals), 1, 1)
	copy(f.Values, vals)
	return f
}

func TestFromFieldSimpleRidge(t *testing.T) {
	// Two maxima (values 5 and 4) separated by a valley of 1:
	// 5 3 1 2 4  -> merge tree: leaves 5 and 4 joining at 1.
	f := lineField(5, 3, 1, 2, 4)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	if tr.Len() != 5 {
		t.Fatalf("augmented tree has %d nodes, want 5", tr.Len())
	}
	crit := tr.Reduce(nil)
	// Criticals: maxima at ids 0 and 4, merge point at id 2 (value 1, the
	// global root).
	if crit.Len() != 3 {
		t.Fatalf("critical tree has %d nodes: %v", crit.Len(), crit.Ids())
	}
	if _, ok := crit.Value(0); !ok {
		t.Error("maximum 0 missing")
	}
	if _, ok := crit.Value(4); !ok {
		t.Error("maximum 4 missing")
	}
	if crit.Parent(0) != 2 || crit.Parent(4) != 2 {
		t.Errorf("parents: %d, %d; want both 2", crit.Parent(0), crit.Parent(4))
	}
	if crit.Parent(2) != NoNode {
		t.Error("root should have no parent")
	}
}

func TestFromFieldThreshold(t *testing.T) {
	f := lineField(5, 3, 1, 2, 4)
	tr := FromField(f, 0, 0, 0, 5, 1, 2)
	// Only vertices >= 2 enter: ids 0,1,3,4; two components.
	if tr.Len() != 4 {
		t.Fatalf("tree has %d nodes, want 4", tr.Len())
	}
	labels := tr.Segment(2)
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("left component labels: %d, %d", labels[0], labels[1])
	}
	if labels[3] != 4 || labels[4] != 4 {
		t.Errorf("right component labels: %d, %d", labels[3], labels[4])
	}
}

func TestSegmentCountsFeatures(t *testing.T) {
	f := lineField(5, 1, 4, 1, 3, 1, 2)
	tr := FromField(f, 0, 0, 0, 7, 1, -100)
	if got := len(tr.Features(2)); got != 4 {
		t.Errorf("features at 2: %d, want 4 (isolated maxima 5,4,3,2)", got)
	}
	if got := len(tr.Features(3)); got != 3 {
		t.Errorf("features at 3: %d, want 3", got)
	}
	if got := len(tr.Features(0)); got != 1 {
		t.Errorf("features at 0: %d, want 1 (everything connected)", got)
	}
	if got := len(tr.Features(10)); got != 0 {
		t.Errorf("features at 10: %d, want 0", got)
	}
}

func TestMergeEqualsGlobalTree(t *testing.T) {
	// Split a 1-D field into two overlapping halves (shared vertex 4) and
	// verify the merged tree equals the tree of the whole field.
	f := lineField(5, 3, 1, 2, 4, 6, 0, 7)
	left := f.SubField(0, 0, 0, 5, 1, 1)
	right := f.SubField(4, 0, 0, 4, 1, 1)
	tl := FromField(left, 0, 0, 0, 8, 1, -100)
	tr := FromField(right, 4, 0, 0, 8, 1, -100)
	merged := Merge(tl, tr)
	global := FromField(f, 0, 0, 0, 8, 1, -100)
	if !merged.Reduce(nil).Equal(global.Reduce(nil)) {
		t.Error("merged critical tree differs from global critical tree")
	}
	// Segmentations agree too.
	lm := merged.Segment(2)
	lg := global.Segment(2)
	if len(lm) != len(lg) {
		t.Fatalf("segmentation sizes differ: %d vs %d", len(lm), len(lg))
	}
	for id, r := range lg {
		if lm[id] != r {
			t.Errorf("vertex %d: merged label %d, global %d", id, lm[id], r)
		}
	}
}

func TestMerge3DBlocksEqualsGlobal(t *testing.T) {
	f := data.SyntheticHCCI(8, 8, 8, 5, 123)
	d, _ := data.NewDecomposition(8, 8, 8, 2, 2, 2)
	var trees []*Tree
	for i := 0; i < d.Blocks(); i++ {
		blk, _ := d.Extract(f, i)
		b := d.Block(i)
		trees = append(trees, FromField(blk, b.X0, b.Y0, b.Z0, 8, 8, 0.1))
	}
	merged := Merge(trees...)
	global := FromField(f, 0, 0, 0, 8, 8, 0.1)
	if !merged.Reduce(nil).Equal(global.Reduce(nil)) {
		t.Error("merged 3-D critical tree differs from global")
	}
}

func TestMergeWithReducedBoundaryTrees(t *testing.T) {
	// The realistic path: blocks exchange *reduced* boundary trees; the
	// merged tree's criticals must still match the global tree's.
	f := data.SyntheticHCCI(12, 12, 6, 7, 77)
	d, _ := data.NewDecomposition(12, 12, 6, 2, 2, 1)
	keep := BoundaryKeeper(d)
	var trees []*Tree
	for i := 0; i < d.Blocks(); i++ {
		blk, _ := d.Extract(f, i)
		b := d.Block(i)
		local := FromField(blk, b.X0, b.Y0, b.Z0, 12, 12, 0.05)
		trees = append(trees, local.Reduce(keep))
	}
	merged := Merge(trees...)
	global := FromField(f, 0, 0, 0, 12, 12, 0.05)
	// Compare criticals only: the boundary trees dropped regular interior
	// vertices, but criticals must survive exactly.
	if !merged.Reduce(nil).Equal(global.Reduce(nil)) {
		t.Error("boundary-reduced merge lost critical structure")
	}
}

func TestReduceKeepsRequestedVertices(t *testing.T) {
	f := lineField(5, 4, 3, 2, 1)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	red := tr.Reduce(func(id uint64) bool { return id == 2 })
	// Monotone ramp: criticals are max (0) and root (4); id 2 kept.
	if red.Len() != 3 {
		t.Fatalf("reduced tree nodes: %v", red.Ids())
	}
	if red.Parent(0) != 2 || red.Parent(2) != 4 {
		t.Errorf("contracted arcs wrong: 0->%d, 2->%d", red.Parent(0), red.Parent(2))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f := data.SyntheticHCCI(6, 6, 6, 3, 5)
	tr := FromField(f, 0, 0, 0, 6, 6, 0.1)
	b := tr.Serialize()
	got, err := Deserialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(got) {
		t.Error("round trip changed the tree")
	}
	// Determinism: serializing twice yields identical bytes.
	b2 := tr.Serialize()
	if string(b) != string(b2) {
		t.Error("Serialize is not deterministic")
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte{1}); err == nil {
		t.Error("short buffer should fail")
	}
	tr := NewTree()
	tr.value[3] = 1
	b := tr.Serialize()
	if _, err := Deserialize(b[:len(b)-1]); err == nil {
		t.Error("truncated buffer should fail")
	}
}

func TestVertexIdRoundTrip(t *testing.T) {
	check := func(x8, y8, z8 uint8) bool {
		x, y, z := int(x8%32), int(y8%16), int(z8%8)
		id := VertexId(x, y, z, 32, 16)
		gx, gy, gz := VertexCoords(id, 32, 16)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundaryKeeper(t *testing.T) {
	d, _ := data.NewDecomposition(8, 8, 8, 2, 2, 2)
	keep := BoundaryKeeper(d)
	if !keep(VertexId(4, 1, 1, 8, 8)) {
		t.Error("x=4 is an internal face plane")
	}
	if keep(VertexId(0, 1, 1, 8, 8)) {
		t.Error("x=0 is the domain boundary, not internal")
	}
	if keep(VertexId(3, 3, 3, 8, 8)) {
		t.Error("interior vertex kept")
	}
	if !keep(VertexId(1, 4, 2, 8, 8)) {
		t.Error("y=4 is an internal face plane")
	}
}

// Property: merging a random field split at a random plane always
// reproduces the global critical tree.
func TestMergeSplitProperty(t *testing.T) {
	check := func(seed uint16, cut8 uint8) bool {
		n := 10
		cut := 1 + int(cut8)%(n-2)
		f := data.SyntheticHCCI(n, 4, 4, 4, uint64(seed))
		left := f.SubField(0, 0, 0, cut+1, 4, 4)
		right := f.SubField(cut, 0, 0, n-cut, 4, 4)
		tl := FromField(left, 0, 0, 0, n, 4, 0.1)
		tr := FromField(right, cut, 0, 0, n, 4, 0.1)
		global := FromField(f, 0, 0, 0, n, 4, 0.1)
		return Merge(tl, tr).Reduce(nil).Equal(global.Reduce(nil))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
