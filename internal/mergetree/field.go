package mergetree

import (
	"github.com/babelflow/babelflow-go/internal/data"
)

// VertexId computes the global vertex id of domain coordinates (x, y, z) in
// an nx*ny*nz domain, x-fastest.
func VertexId(x, y, z, nx, ny int) uint64 {
	return uint64((z*ny+y)*nx + x)
}

// VertexCoords inverts VertexId.
func VertexCoords(id uint64, nx, ny int) (x, y, z int) {
	i := int(id)
	x = i % nx
	y = (i / nx) % ny
	z = i / (nx * ny)
	return
}

// FromField computes the augmented merge tree of one block of a scalar
// field, restricted to vertices with value >= threshold, using
// 6-connectivity. Vertices carry global domain ids (the block's origin and
// the domain dimensions determine them), so trees of adjacent blocks share
// the ids of their common ghost-layer vertices and can be joined.
func FromField(block *data.Field, originX, originY, originZ, domainNX, domainNY int, threshold float32) *Tree {
	values := make(map[uint64]float32)
	for z := 0; z < block.NZ; z++ {
		for y := 0; y < block.NY; y++ {
			for x := 0; x < block.NX; x++ {
				v := block.At(x, y, z)
				if v >= threshold {
					values[VertexId(originX+x, originY+y, originZ+z, domainNX, domainNY)] = v
				}
			}
		}
	}
	offsets := [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	adj := func(id uint64) []uint64 {
		gx, gy, gz := VertexCoords(id, domainNX, domainNY)
		x, y, z := gx-originX, gy-originY, gz-originZ
		var out []uint64
		for _, o := range offsets {
			nx, ny, nz := x+o[0], y+o[1], z+o[2]
			if nx < 0 || nx >= block.NX || ny < 0 || ny >= block.NY || nz < 0 || nz >= block.NZ {
				continue
			}
			nid := VertexId(originX+nx, originY+ny, originZ+nz, domainNX, domainNY)
			if _, ok := values[nid]; ok {
				out = append(out, nid)
			}
		}
		return out
	}
	return compute(values, adj)
}

// BoundaryKeeper returns a keep-predicate for Tree.Reduce that retains
// vertices lying on the internal face planes of a block decomposition —
// the vertices shared between adjacent blocks, through which cross-block
// connectivity flows. Join tasks reduce their merged trees with it before
// forwarding, bounding the tree sizes exchanged up the reduction.
func BoundaryKeeper(d *data.Decomposition) func(id uint64) bool {
	sx, sy, sz := d.NX/d.BXN, d.NY/d.BYN, d.NZ/d.BZN
	return func(id uint64) bool {
		x, y, z := VertexCoords(id, d.NX, d.NY)
		if x > 0 && x%sx == 0 {
			return true
		}
		if y > 0 && y%sy == 0 {
			return true
		}
		return z > 0 && z%sz == 0
	}
}
