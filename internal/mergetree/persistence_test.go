package mergetree

import (
	"math"
	"testing"

	"github.com/babelflow/babelflow-go/internal/data"
)

func TestPersistencePairsSimpleRidge(t *testing.T) {
	// 5 3 1 2 4: maxima at 0 (value 5) and 4 (value 4); they merge at
	// vertex 2 (value 1). Elder rule: the lower maximum (4) dies there.
	f := lineField(5, 3, 1, 2, 4)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	pairs := tr.PersistencePairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if !pairs[0].Essential || pairs[0].Max != 0 {
		t.Errorf("essential pair = %+v, want max 0", pairs[0])
	}
	p := pairs[1]
	if p.Essential || p.Max != 4 || p.Saddle != 2 || p.Persistence != 3 {
		t.Errorf("finite pair = %+v, want (4, 2, 3)", p)
	}
}

func TestPersistencePairsThreePeaks(t *testing.T) {
	// 5 1 4 2 6: maxima 0(5), 2(4), 4(6). 2 merges with a neighbor at its
	// higher adjacent saddle 3 (value 2): pers 2. 0 merges with the
	// combined component at saddle 1 (value 1): pers 4. Essential: 4.
	f := lineField(5, 1, 4, 2, 6)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	pairs := tr.PersistencePairs()
	if len(pairs) != 3 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if !pairs[0].Essential || pairs[0].Max != 4 {
		t.Errorf("essential = %+v", pairs[0])
	}
	if pairs[1].Max != 0 || pairs[1].Saddle != 1 || pairs[1].Persistence != 4 {
		t.Errorf("pair[1] = %+v, want (0, 1, 4)", pairs[1])
	}
	if pairs[2].Max != 2 || pairs[2].Saddle != 3 || pairs[2].Persistence != 2 {
		t.Errorf("pair[2] = %+v, want (2, 3, 2)", pairs[2])
	}
}

func TestBranchDecompositionLabels(t *testing.T) {
	f := lineField(5, 3, 1, 2, 4)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	labels := tr.BranchDecomposition(0)
	// Vertices 0,1 belong to branch 0; 3,4 to branch 4; the saddle 2 joins
	// the surviving branch 0.
	want := map[uint64]uint64{0: 0, 1: 0, 2: 0, 3: 4, 4: 4}
	for v, m := range want {
		if labels[v] != m {
			t.Errorf("label[%d] = %d, want %d", v, labels[v], m)
		}
	}
	// Simplifying away branch 4 (persistence 3) folds everything into 0.
	simplified := tr.BranchDecomposition(3.5)
	for v := uint64(0); v < 5; v++ {
		if simplified[v] != 0 {
			t.Errorf("simplified label[%d] = %d, want 0", v, simplified[v])
		}
	}
}

func TestBranchDecompositionChainRemap(t *testing.T) {
	// 6 1.5 4 2 5: branch 2 (pers 2) dies into branch 4's component at
	// saddle 3; branch 4 (pers 3.5) dies into 0 at saddle 1. With minPers
	// 4, both remaps chain: everything labels 0.
	f := lineField(6, 1.5, 4, 2, 5)
	tr := FromField(f, 0, 0, 0, 5, 1, -100)
	labels := tr.BranchDecomposition(4)
	for v := uint64(0); v < 5; v++ {
		if labels[v] != 0 {
			t.Errorf("label[%d] = %d, want 0 after chained simplification", v, labels[v])
		}
	}
}

func TestFeatureCountMonotone(t *testing.T) {
	f := data.SyntheticHCCI(16, 16, 16, 8, 77)
	tr := FromField(f, 0, 0, 0, 16, 16, 0.05)
	prev := math.MaxInt
	for _, p := range []float32{0, 0.05, 0.1, 0.2, 0.5, 1, 10} {
		n := tr.FeatureCount(p)
		if n > prev {
			t.Fatalf("feature count increased from %d to %d at persistence %f", prev, n, p)
		}
		if n < 1 {
			t.Fatalf("feature count dropped below 1 (essential features remain)")
		}
		prev = n
	}
	// At persistence 0 every maximum is a feature.
	if got, want := tr.FeatureCount(0), len(tr.PersistencePairs()); got != want {
		t.Errorf("FeatureCount(0) = %d, want %d", got, want)
	}
}

// TestPersistenceMatchesDistributedTree: the persistence pairs of the
// corrected distributed tree (root join of reduced boundary trees merged
// with a local tree) match the global tree's pairs for features above the
// reduction's resolution.
func TestPersistenceMatchesDistributedTree(t *testing.T) {
	f := data.SyntheticHCCI(12, 12, 12, 5, 3)
	d, _ := data.NewDecomposition(12, 12, 12, 2, 2, 2)
	keep := BoundaryKeeper(d)
	var trees []*Tree
	for i := 0; i < d.Blocks(); i++ {
		blk, _ := d.Extract(f, i)
		b := d.Block(i)
		trees = append(trees, FromField(blk, b.X0, b.Y0, b.Z0, 12, 12, 0.1).Reduce(keep))
	}
	merged := Merge(trees...)
	global := FromField(f, 0, 0, 0, 12, 12, 0.1)

	mp := merged.PersistencePairs()
	gp := global.PersistencePairs()
	if len(mp) != len(gp) {
		t.Fatalf("pair counts differ: %d vs %d", len(mp), len(gp))
	}
	for i := range gp {
		if mp[i].Max != gp[i].Max || mp[i].Persistence != gp[i].Persistence || mp[i].Essential != gp[i].Essential {
			t.Errorf("pair %d: merged %+v, global %+v", i, mp[i], gp[i])
		}
	}
}

func TestPersistenceEmptyTree(t *testing.T) {
	tr := NewTree()
	if pairs := tr.PersistencePairs(); len(pairs) != 0 {
		t.Errorf("empty tree pairs = %+v", pairs)
	}
	if n := tr.FeatureCount(0); n != 0 {
		t.Errorf("empty tree features = %d", n)
	}
}
