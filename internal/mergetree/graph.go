package mergetree

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Task phases of the merge-tree dataflow, encoded in the top bits of the
// task id (the paper's prefix technique: each phase numbers its tasks
// independently).
const (
	phaseLocal uint16 = iota
	phaseJoin
	phaseRelay
	phaseCorrection
	phaseSegmentation
)

// phaseShift is the bit position of the phase prefix.
const phaseShift = 48

// Callback slots of the merge-tree dataflow, in Callbacks() order.
const (
	// CBLocal computes the augmented local tree and the boundary tree of
	// one block.
	CBLocal core.CallbackId = iota
	// CBJoin merges k boundary trees and forwards the reduced result.
	CBJoin
	// CBRelay forwards an augmented boundary tree down the broadcast
	// overlay.
	CBRelay
	// CBCorrection merges an augmented boundary tree into a block's local
	// tree.
	CBCorrection
	// CBSegmentation extracts the final per-block segmentation.
	CBSegmentation
)

// Graph is the merge-tree dataflow of Fig. 5: a k-way reduction of join
// tasks over k^d leaves, per-join broadcast overlays of relay tasks that
// fan the augmented boundary trees back out, one correction task per block
// per join level, and a final segmentation task per block.
//
// Tree node positions use complete k-ary numbering: root 0, children of m
// are m*k+1 .. m*k+k; internal nodes occupy [0, nI) and leaf i sits at node
// nI+i.
type Graph struct {
	k, d     int
	leafs    int // k^d
	nI       int // internal tree nodes: (k^d - 1)/(k - 1)
	treeSize int // nI + leafs
}

// NewGraph returns the merge-tree dataflow over k^d blocks with valence k.
// At least one join level is required (leafs >= valence).
func NewGraph(leafs, valence int) (*Graph, error) {
	if valence < 2 {
		return nil, fmt.Errorf("mergetree: valence must be >= 2, got %d", valence)
	}
	d, n := 0, 1
	for n < leafs {
		n *= valence
		d++
	}
	if n != leafs {
		return nil, fmt.Errorf("mergetree: %d blocks is not a power of valence %d", leafs, valence)
	}
	if d < 1 {
		return nil, fmt.Errorf("mergetree: need at least %d blocks (one join level)", valence)
	}
	nI := (leafs - 1) / (valence - 1)
	return &Graph{k: valence, d: d, leafs: leafs, nI: nI, treeSize: nI + leafs}, nil
}

// Leafs returns the number of blocks.
func (g *Graph) Leafs() int { return g.leafs }

// Valence returns the reduction fan-in.
func (g *Graph) Valence() int { return g.k }

// Depth returns the number of join levels.
func (g *Graph) Depth() int { return g.d }

// pid packs a phase and a phase-local index into a task id.
func pid(phase uint16, rest int) core.TaskId {
	return core.TaskId(uint64(phase)<<phaseShift | uint64(rest))
}

// split unpacks a task id.
func split(id core.TaskId) (phase uint16, rest int) {
	return uint16(uint64(id) >> phaseShift), int(uint64(id) & (1<<phaseShift - 1))
}

// LeafTask returns the local-compute task id of block i.
func (g *Graph) LeafTask(i int) core.TaskId { return pid(phaseLocal, i) }

// SegmentationTask returns the segmentation task id of block i; its sink
// output carries the block's final labels.
func (g *Graph) SegmentationTask(i int) core.TaskId { return pid(phaseSegmentation, i) }

// JoinTask returns the join task id at tree position m.
func (g *Graph) JoinTask(m int) core.TaskId { return pid(phaseJoin, m) }

// LeafIds returns the local-compute task ids in block order.
func (g *Graph) LeafIds() []core.TaskId {
	ids := make([]core.TaskId, g.leafs)
	for i := range ids {
		ids[i] = g.LeafTask(i)
	}
	return ids
}

// depthOf returns the depth of tree node m (root 0 has depth 0).
func (g *Graph) depthOf(m int) int {
	depth, first, count := 0, 0, 1
	for m >= first+count {
		first += count
		count *= g.k
		depth++
	}
	return depth
}

// relayCountPerLevel returns the number of relay positions for a source
// join at depth l: tree nodes at depths l+1 .. d-1.
func (g *Graph) relayNodesForLevel(l int) []int {
	var out []int
	first, count := 0, 1
	for t := 0; t <= g.d-1; t++ {
		if t > l {
			for m := first; m < first+count; m++ {
				out = append(out, m)
			}
		}
		first += count
		count *= g.k
	}
	return out
}

// Size implements core.TaskGraph.
func (g *Graph) Size() int {
	relays := 0
	for l := 0; l <= g.d-2; l++ {
		relays += len(g.relayNodesForLevel(l))
	}
	return g.leafs + g.nI + relays + g.d*g.leafs + g.leafs
}

// Callbacks implements core.TaskGraph.
func (g *Graph) Callbacks() []core.CallbackId {
	return []core.CallbackId{CBLocal, CBJoin, CBRelay, CBCorrection, CBSegmentation}
}

// TaskIds implements core.TaskGraph.
func (g *Graph) TaskIds() []core.TaskId {
	ids := make([]core.TaskId, 0, g.Size())
	for i := 0; i < g.leafs; i++ {
		ids = append(ids, pid(phaseLocal, i))
	}
	for m := 0; m < g.nI; m++ {
		ids = append(ids, pid(phaseJoin, m))
	}
	for l := 0; l <= g.d-2; l++ {
		for _, m := range g.relayNodesForLevel(l) {
			ids = append(ids, pid(phaseRelay, l*g.treeSize+m))
		}
	}
	for l := 0; l <= g.d-1; l++ {
		for i := 0; i < g.leafs; i++ {
			ids = append(ids, pid(phaseCorrection, l*g.leafs+i))
		}
	}
	for i := 0; i < g.leafs; i++ {
		ids = append(ids, pid(phaseSegmentation, i))
	}
	return ids
}

// augSource returns the task that delivers the level-l augmented boundary
// tree to block i's correction: the covering join directly at the deepest
// level, otherwise the last relay of the overlay.
func (g *Graph) augSource(l, i int) core.TaskId {
	leafNode := g.nI + i
	parent := (leafNode - 1) / g.k
	if l == g.d-1 {
		return pid(phaseJoin, parent)
	}
	return pid(phaseRelay, l*g.treeSize+parent)
}

// Task implements core.TaskGraph.
func (g *Graph) Task(id core.TaskId) (core.Task, bool) {
	phase, rest := split(id)
	t := core.Task{Id: id}
	switch phase {
	case phaseLocal:
		i := rest
		if i < 0 || i >= g.leafs {
			return core.Task{}, false
		}
		t.Callback = CBLocal
		t.Incoming = []core.TaskId{core.ExternalInput}
		leafNode := g.nI + i
		t.Outgoing = [][]core.TaskId{
			{pid(phaseJoin, (leafNode-1)/g.k)},        // boundary tree up
			{pid(phaseCorrection, (g.d-1)*g.leafs+i)}, // local tree to first correction
		}
		return t, true

	case phaseJoin:
		m := rest
		if m < 0 || m >= g.nI {
			return core.Task{}, false
		}
		t.Callback = CBJoin
		l := g.depthOf(m)
		t.Incoming = make([]core.TaskId, g.k)
		for c := 0; c < g.k; c++ {
			child := m*g.k + c + 1
			if child < g.nI {
				t.Incoming[c] = pid(phaseJoin, child)
			} else {
				t.Incoming[c] = pid(phaseLocal, child-g.nI)
			}
		}
		broadcast := make([]core.TaskId, g.k)
		for c := 0; c < g.k; c++ {
			child := m*g.k + c + 1
			if l == g.d-1 {
				broadcast[c] = pid(phaseCorrection, l*g.leafs+(child-g.nI))
			} else {
				broadcast[c] = pid(phaseRelay, l*g.treeSize+child)
			}
		}
		if m == 0 {
			t.Outgoing = [][]core.TaskId{broadcast}
		} else {
			t.Outgoing = [][]core.TaskId{{pid(phaseJoin, (m-1)/g.k)}, broadcast}
		}
		return t, true

	case phaseRelay:
		l := rest / g.treeSize
		m := rest % g.treeSize
		depth := g.depthOf(m)
		if l < 0 || l > g.d-2 || depth < l+1 || depth > g.d-1 || m >= g.nI {
			return core.Task{}, false
		}
		t.Callback = CBRelay
		parent := (m - 1) / g.k
		if depth == l+1 {
			t.Incoming = []core.TaskId{pid(phaseJoin, parent)}
		} else {
			t.Incoming = []core.TaskId{pid(phaseRelay, l*g.treeSize+parent)}
		}
		targets := make([]core.TaskId, g.k)
		for c := 0; c < g.k; c++ {
			child := m*g.k + c + 1
			if depth == g.d-1 {
				targets[c] = pid(phaseCorrection, l*g.leafs+(child-g.nI))
			} else {
				targets[c] = pid(phaseRelay, l*g.treeSize+child)
			}
		}
		t.Outgoing = [][]core.TaskId{targets}
		return t, true

	case phaseCorrection:
		l := rest / g.leafs
		i := rest % g.leafs
		if l < 0 || l > g.d-1 || i < 0 || i >= g.leafs {
			return core.Task{}, false
		}
		t.Callback = CBCorrection
		var prev core.TaskId
		if l == g.d-1 {
			prev = pid(phaseLocal, i)
		} else {
			prev = pid(phaseCorrection, (l+1)*g.leafs+i)
		}
		t.Incoming = []core.TaskId{prev, g.augSource(l, i)}
		var next core.TaskId
		if l > 0 {
			next = pid(phaseCorrection, (l-1)*g.leafs+i)
		} else {
			next = pid(phaseSegmentation, i)
		}
		t.Outgoing = [][]core.TaskId{{next}}
		return t, true

	case phaseSegmentation:
		i := rest
		if i < 0 || i >= g.leafs {
			return core.Task{}, false
		}
		t.Callback = CBSegmentation
		t.Incoming = []core.TaskId{pid(phaseCorrection, 0*g.leafs+i)}
		t.Outgoing = [][]core.TaskId{{}}
		return t, true
	}
	return core.Task{}, false
}

var _ core.TaskGraph = (*Graph)(nil)
