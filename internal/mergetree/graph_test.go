package mergetree

import (
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/dot"
)

func TestGraphValidates(t *testing.T) {
	for _, c := range []struct{ leafs, k int }{{2, 2}, {4, 2}, {8, 2}, {16, 2}, {8, 8}, {64, 8}, {9, 3}, {27, 3}} {
		g, err := NewGraph(c.leafs, c.k)
		if err != nil {
			t.Fatalf("NewGraph(%d,%d): %v", c.leafs, c.k, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d,%d): %v", c.leafs, c.k, err)
		}
		if got := len(core.Leaves(g)); got != c.leafs {
			t.Errorf("(%d,%d): %d dataflow leaves, want %d", c.leafs, c.k, got, c.leafs)
		}
		if got := len(core.Roots(g)); got != c.leafs {
			t.Errorf("(%d,%d): %d sinks, want %d (one segmentation per block)", c.leafs, c.k, got, c.leafs)
		}
	}
}

func TestGraphRejectsBadShapes(t *testing.T) {
	if _, err := NewGraph(3, 2); err == nil {
		t.Error("non-power leaf count should fail")
	}
	if _, err := NewGraph(1, 2); err == nil {
		t.Error("single block (no join level) should fail")
	}
	if _, err := NewGraph(4, 1); err == nil {
		t.Error("valence 1 should fail")
	}
}

// TestGraphFig5Shape checks the four-leaf binary instance drawn in Fig. 5:
// 4 local computations, 3 joins, 2 relays (only the root join needs an
// overlay), 8 corrections (2 levels x 4 blocks) and 4 segmentations.
func TestGraphFig5Shape(t *testing.T) {
	g, err := NewGraph(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4+3+2+8+4 {
		t.Fatalf("Size = %d, want 21", g.Size())
	}
	counts := make(map[core.CallbackId]int)
	for _, id := range g.TaskIds() {
		task, ok := g.Task(id)
		if !ok {
			t.Fatalf("enumerated task %d missing", id)
		}
		counts[task.Callback]++
	}
	want := map[core.CallbackId]int{CBLocal: 4, CBJoin: 3, CBRelay: 2, CBCorrection: 8, CBSegmentation: 4}
	for cb, n := range want {
		if counts[cb] != n {
			t.Errorf("callback %d count = %d, want %d", cb, counts[cb], n)
		}
	}
}

func TestGraphLeafWiring(t *testing.T) {
	g, _ := NewGraph(4, 2)
	leaf, _ := g.Task(g.LeafTask(0))
	if len(leaf.Outgoing) != 2 {
		t.Fatalf("leaf has %d output slots, want 2 (boundary, local)", len(leaf.Outgoing))
	}
	// Leaf 0 is tree node nI+0 = 3; parent join = (3-1)/2 = 1.
	if leaf.Outgoing[0][0] != g.JoinTask(1) {
		t.Errorf("boundary output goes to %d", leaf.Outgoing[0][0])
	}
	// Local tree goes to the deepest correction level (l = d-1 = 1).
	corr := leaf.Outgoing[1][0]
	ct, _ := g.Task(corr)
	if ct.Callback != CBCorrection {
		t.Errorf("slot 1 target is callback %d", ct.Callback)
	}
}

func TestGraphRootJoinHasOnlyBroadcast(t *testing.T) {
	g, _ := NewGraph(8, 2)
	root, _ := g.Task(g.JoinTask(0))
	if len(root.Outgoing) != 1 {
		t.Fatalf("root join slots = %d, want 1", len(root.Outgoing))
	}
	nonroot, _ := g.Task(g.JoinTask(1))
	if len(nonroot.Outgoing) != 2 {
		t.Fatalf("non-root join slots = %d, want 2", len(nonroot.Outgoing))
	}
	if nonroot.Outgoing[0][0] != g.JoinTask(0) {
		t.Errorf("non-root parent edge goes to %d", nonroot.Outgoing[0][0])
	}
}

func TestGraphCorrectionChainOrder(t *testing.T) {
	// Corrections run from the deepest join level to the root level, then
	// feed segmentation.
	g, _ := NewGraph(8, 2) // d = 3
	// Correction chain of block 5: local -> corr(2,5) -> corr(1,5) -> corr(0,5) -> seg(5).
	cur := pid(phaseCorrection, 2*8+5)
	for l := 2; l >= 0; l-- {
		task, ok := g.Task(cur)
		if !ok {
			t.Fatalf("missing correction l=%d", l)
		}
		if l > 0 {
			next := task.Outgoing[0][0]
			ph, rest := split(next)
			if ph != phaseCorrection || rest != (l-1)*8+5 {
				t.Fatalf("correction l=%d feeds %x", l, uint64(next))
			}
			cur = next
		} else if task.Outgoing[0][0] != g.SegmentationTask(5) {
			t.Fatalf("last correction feeds %x", uint64(task.Outgoing[0][0]))
		}
	}
}

func TestGraphDeepRelayOverlay(t *testing.T) {
	// 16 leaves, k=2, d=4: root join (depth 0) broadcasts through relays at
	// depths 1..3; check fan-out is bounded by k everywhere.
	g, _ := NewGraph(16, 2)
	for _, id := range g.TaskIds() {
		task, _ := g.Task(id)
		for slot, consumers := range task.Outgoing {
			if len(consumers) > g.Valence() {
				t.Errorf("task %x slot %d fans out to %d > k", uint64(id), slot, len(consumers))
			}
		}
	}
}

func TestGraphDotGoldenFig5(t *testing.T) {
	g, _ := NewGraph(4, 2)
	var b strings.Builder
	err := dot.Write(&b, g, dot.Options{
		Name: "fig5",
		Labels: map[core.CallbackId]string{
			CBLocal: "local", CBJoin: "join", CBRelay: "relay",
			CBCorrection: "correction", CBSegmentation: "segmentation",
		},
		RankByLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"local", "join", "relay", "correction", "segmentation"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// 21 nodes.
	if got := strings.Count(out, "fillcolor"); got != 21 {
		t.Errorf("dot node count = %d, want 21", got)
	}
}

func TestGraphTaskRejectsBadIds(t *testing.T) {
	g, _ := NewGraph(4, 2)
	bad := []core.TaskId{
		pid(phaseLocal, 4),        // leaf out of range
		pid(phaseJoin, 3),         // join out of range
		pid(phaseRelay, 0),        // depth 0 is the root join, not a relay
		pid(phaseCorrection, 2*4), // level out of range
		pid(phaseSegmentation, 9),
		core.TaskId(uint64(7) << phaseShift), // unknown phase
		core.ExternalInput,
	}
	for _, id := range bad {
		if _, ok := g.Task(id); ok {
			t.Errorf("Task(%x) should not exist", uint64(id))
		}
	}
}
