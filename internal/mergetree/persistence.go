package mergetree

import (
	"sort"
)

// Pair is one persistence pair of the merge tree: a maximum and the saddle
// at which its superlevel-set component merges into a component with a
// higher maximum (the elder rule). Essential maxima — one per connected
// component of the domain — never die; their Saddle is NoNode and their
// Persistence is +Inf in spirit (reported as the maximum's own value).
type Pair struct {
	Max         uint64
	Saddle      uint64
	Persistence float32
	Essential   bool
}

// PersistencePairs computes the persistence pairing of the tree's maxima
// by a descending sweep: when components merge at a saddle, the component
// whose maximum is lower (in sweep order) dies there. Pairs are returned
// sorted by descending persistence, essential pairs first.
func (t *Tree) PersistencePairs() []Pair {
	_, pairs := t.sweepBranches(0, false)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Essential != pairs[j].Essential {
			return pairs[i].Essential
		}
		if pairs[i].Persistence != pairs[j].Persistence {
			return pairs[i].Persistence > pairs[j].Persistence
		}
		return pairs[i].Max < pairs[j].Max
	})
	return pairs
}

// BranchDecomposition labels every node of the tree with the maximum of
// the branch it belongs to, after simplifying away branches whose
// persistence is below minPersistence (their vertices join the surviving
// branch at their death saddle). With minPersistence 0 this is the plain
// branch decomposition; larger values give the noise-robust feature
// segmentation topological analysis is used for.
func (t *Tree) BranchDecomposition(minPersistence float32) map[uint64]uint64 {
	labels, _ := t.sweepBranches(minPersistence, true)
	return labels
}

// sweepBranches performs the descending sweep shared by PersistencePairs
// and BranchDecomposition. It processes nodes from highest to lowest,
// merging the child components arriving at each node; each node is labeled
// with the representative maximum of its component at processing time.
// Dying branches with persistence below minPersistence are remapped into
// their survivor when simplify is set.
func (t *Tree) sweepBranches(minPersistence float32, simplify bool) (map[uint64]uint64, []Pair) {
	// Children lists (inverse parent arcs).
	children := make(map[uint64][]uint64, len(t.value))
	for c, p := range t.parent {
		children[p] = append(children[p], c)
	}
	order := make([]uint64, 0, len(t.value))
	for id := range t.value {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool {
		return above(t.value[order[i]], order[i], t.value[order[j]], order[j])
	})

	uf := newUnionFind()
	best := make(map[uint64]uint64, len(t.value)) // component root -> branch max
	labels := make(map[uint64]uint64, len(t.value))
	remap := make(map[uint64]uint64)
	var pairs []Pair

	for _, v := range order {
		uf.makeSet(v)
		best[v] = v
		// Merge every already-processed child component into v's.
		survivor := v
		var merged []uint64
		for _, c := range children[v] {
			rc := uf.find(c)
			m := best[rc]
			merged = append(merged, m)
			if above(t.value[m], m, t.value[survivor], survivor) {
				survivor = m
			}
		}
		for _, c := range children[v] {
			r := uf.union(uf.find(v), uf.find(c))
			best[r] = survivor
		}
		// Every non-surviving branch dies at v.
		for _, m := range merged {
			if m == survivor {
				continue
			}
			pers := t.value[m] - t.value[v]
			pairs = append(pairs, Pair{Max: m, Saddle: v, Persistence: pers})
			if simplify && pers < minPersistence {
				remap[m] = survivor
			}
		}
		labels[v] = survivor
	}

	// Essential maxima: the best of every final component.
	roots := make(map[uint64]bool)
	for id := range t.value {
		roots[uf.find(id)] = true
	}
	for r := range roots {
		m := best[r]
		pairs = append(pairs, Pair{Max: m, Persistence: t.value[m], Essential: true})
	}

	if simplify {
		resolve := func(m uint64) uint64 {
			for {
				next, ok := remap[m]
				if !ok {
					return m
				}
				m = next
			}
		}
		for v, m := range labels {
			labels[v] = resolve(m)
		}
	}
	return labels, pairs
}

// FeatureCount returns the number of features with persistence at least
// minPersistence — the hierarchy the paper's topological use case explores
// by varying thresholds.
func (t *Tree) FeatureCount(minPersistence float32) int {
	n := 0
	for _, p := range t.PersistencePairs() {
		if p.Essential || p.Persistence >= minPersistence {
			n++
		}
	}
	return n
}
