package mergetree

import (
	"fmt"
	"sort"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
)

// Config binds the merge-tree dataflow to a concrete domain: the block
// decomposition of the field and the feature threshold. Trees are computed
// over vertices with value >= Threshold and features are the connected
// components of that superlevel set.
type Config struct {
	Decomp    *data.Decomposition
	Threshold float32
}

// asTree extracts a tree from a payload: the in-memory object when present
// (in-memory message), otherwise the serialized form.
func asTree(p core.Payload) (*Tree, error) {
	if p.Object != nil {
		t, ok := p.Object.(*Tree)
		if !ok {
			return nil, fmt.Errorf("mergetree: payload object is %T, want *Tree", p.Object)
		}
		return t, nil
	}
	return Deserialize(p.Data)
}

// asField extracts a field from a payload.
func asField(p core.Payload) (*data.Field, error) {
	if p.Object != nil {
		f, ok := p.Object.(*data.Field)
		if !ok {
			return nil, fmt.Errorf("mergetree: payload object is %T, want *data.Field", p.Object)
		}
		return f, nil
	}
	return data.DeserializeField(p.Data)
}

// Register binds all five merge-tree callbacks to a controller that has
// been initialized with the given graph.
func (cfg Config) Register(c core.CallbackRegistrar, g *Graph) error {
	if cfg.Decomp == nil {
		return fmt.Errorf("mergetree: Config.Decomp is required")
	}
	if cfg.Decomp.Blocks() != g.Leafs() {
		return fmt.Errorf("mergetree: decomposition has %d blocks but graph has %d leaves", cfg.Decomp.Blocks(), g.Leafs())
	}
	reg := map[core.CallbackId]core.Callback{
		CBLocal:        cfg.localCallback(g),
		CBJoin:         cfg.joinCallback(g),
		CBRelay:        relayCallback,
		CBCorrection:   correctionCallback,
		CBSegmentation: cfg.segmentationCallback(g),
	}
	for cb, fn := range reg {
		if err := c.RegisterCallback(cb, fn); err != nil {
			return err
		}
	}
	return nil
}

// InitialInputs extracts every block of the field (with ghost layers) and
// addresses it to the corresponding leaf task.
func (cfg Config) InitialInputs(f *data.Field, g *Graph) (map[core.TaskId][]core.Payload, error) {
	initial := make(map[core.TaskId][]core.Payload, g.Leafs())
	for i := 0; i < g.Leafs(); i++ {
		blk, err := cfg.Decomp.Extract(f, i)
		if err != nil {
			return nil, err
		}
		initial[g.LeafTask(i)] = []core.Payload{core.Object(blk)}
	}
	return initial, nil
}

// localCallback computes the augmented local tree of a block and emits the
// boundary tree (slot 0, to the join) and the local tree (slot 1, to the
// first correction).
func (cfg Config) localCallback(g *Graph) core.Callback {
	keep := BoundaryKeeper(cfg.Decomp)
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		_, i := split(id)
		blk, err := asField(in[0])
		if err != nil {
			return nil, err
		}
		b := cfg.Decomp.Block(i)
		local := FromField(blk, b.X0, b.Y0, b.Z0, cfg.Decomp.NX, cfg.Decomp.NY, cfg.Threshold)
		boundary := local.Reduce(keep)
		return []core.Payload{core.Object(boundary), core.Object(local)}, nil
	}
}

// joinCallback merges the incoming boundary trees, reduces the result to
// criticals plus decomposition-face vertices, and forwards it: non-root
// joins emit [parent, broadcast], the root emits [broadcast] only.
func (cfg Config) joinCallback(g *Graph) core.Callback {
	keep := BoundaryKeeper(cfg.Decomp)
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		_, m := split(id)
		trees := make([]*Tree, len(in))
		for i, p := range in {
			t, err := asTree(p)
			if err != nil {
				return nil, err
			}
			trees[i] = t
		}
		joined := Merge(trees...).Reduce(keep)
		if m == 0 {
			return []core.Payload{core.Object(joined)}, nil
		}
		return []core.Payload{core.Object(joined), core.Object(joined)}, nil
	}
}

// relayCallback forwards the augmented boundary tree unchanged down the
// broadcast overlay.
func relayCallback(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
	return []core.Payload{in[0]}, nil
}

// correctionCallback merges the augmented boundary tree of one join level
// into the block's current local tree, refining its global connectivity.
func correctionCallback(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
	prev, err := asTree(in[0])
	if err != nil {
		return nil, err
	}
	aug, err := asTree(in[1])
	if err != nil {
		return nil, err
	}
	return []core.Payload{core.Object(Merge(prev, aug))}, nil
}

// segmentationCallback computes the block's final labels: every block
// vertex above the threshold is labeled with the id of its global
// feature's maximum. The output is the serialized, deterministic per-block
// segmentation.
func (cfg Config) segmentationCallback(g *Graph) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		_, i := split(id)
		tree, err := asTree(in[0])
		if err != nil {
			return nil, err
		}
		labels := tree.Segment(cfg.Threshold)
		b := cfg.Decomp.Block(i)
		seg := Segmentation{Block: i, Labels: make(map[uint64]uint64)}
		for vid, rep := range labels {
			x, y, z := VertexCoords(vid, cfg.Decomp.NX, cfg.Decomp.NY)
			if x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1 && z >= b.Z0 && z < b.Z1 {
				seg.Labels[vid] = rep
			}
		}
		return []core.Payload{core.Buffer(seg.Serialize())}, nil
	}
}

// Segmentation is the per-block result of the dataflow: the feature label
// (id of the feature's maximum vertex) of every block vertex above the
// threshold.
type Segmentation struct {
	Block  int
	Labels map[uint64]uint64
}

// Serialize encodes the segmentation deterministically: block index, count,
// then ascending (vertex, label) pairs.
func (s Segmentation) Serialize() []byte {
	ids := make([]uint64, 0, len(s.Labels))
	for id := range s.Labels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 16+16*len(ids))
	putU64(buf[0:], uint64(s.Block))
	putU64(buf[8:], uint64(len(ids)))
	off := 16
	for _, id := range ids {
		putU64(buf[off:], id)
		putU64(buf[off+8:], s.Labels[id])
		off += 16
	}
	return buf
}

// DeserializeSegmentation decodes a serialized segmentation.
func DeserializeSegmentation(b []byte) (Segmentation, error) {
	if len(b) < 16 {
		return Segmentation{}, fmt.Errorf("mergetree: segmentation buffer too short")
	}
	blk := int(getU64(b[0:]))
	n := int(getU64(b[8:]))
	if len(b) != 16+16*n {
		return Segmentation{}, fmt.Errorf("mergetree: segmentation buffer size %d does not match %d entries", len(b), n)
	}
	s := Segmentation{Block: blk, Labels: make(map[uint64]uint64, n)}
	off := 16
	for i := 0; i < n; i++ {
		s.Labels[getU64(b[off:])] = getU64(b[off+8:])
		off += 16
	}
	return s, nil
}

// SerialSegmentation computes the reference result without the dataflow:
// the global merge tree of the whole field and its segmentation at the
// threshold. Tests compare every controller's distributed output against
// it.
func SerialSegmentation(f *data.Field, threshold float32) map[uint64]uint64 {
	tree := FromField(f, 0, 0, 0, f.NX, f.NY, threshold)
	return tree.Segment(threshold)
}
