package mergetree

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/babelflow/babelflow-go/internal/charm"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/legion"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// e2eControllers builds one instance of every runtime controller for a
// graph, matching the paper's claim that the same dataflow runs unmodified
// on each runtime.
func e2eControllers(g *Graph, shards int) map[string]core.Controller {
	m := core.NewListMap(shards, g.TaskIds())
	out := make(map[string]core.Controller)

	mc := mpi.New()
	mc.Initialize(g, m)
	out["mpi"] = mc

	orig := mpi.New(mpi.WithInline(true))
	orig.Initialize(g, m)
	out["original-mpi"] = orig

	cc := charm.New(charm.Options{PEs: shards, LBPeriod: 4})
	cc.Initialize(g, nil)
	out["charm"] = cc

	sp := legion.NewSPMD(legion.Options{})
	sp.Initialize(g, m)
	out["legion-spmd"] = sp

	il := legion.NewIndexLaunch(legion.Options{})
	il.Initialize(g, nil)
	out["legion-il"] = il

	ser := core.NewSerial()
	ser.Initialize(g, nil)
	out["serial"] = ser
	return out
}

// TestDistributedSegmentationMatchesGlobal is the headline correctness test
// of the use case: the distributed merge-tree dataflow, executed on every
// runtime controller, produces exactly the per-vertex feature labels of the
// serial global computation.
func TestDistributedSegmentationMatchesGlobal(t *testing.T) {
	const n = 16
	field := data.SyntheticHCCI(n, n, n, 6, 2026)
	decomp, err := data.NewDecomposition(n, n, n, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(decomp.Blocks(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Decomp: decomp, Threshold: 0.3}
	want := SerialSegmentation(field, cfg.Threshold)
	if len(want) == 0 {
		t.Fatal("degenerate test: no vertices above threshold")
	}

	for name, c := range e2eControllers(g, 4) {
		t.Run(name, func(t *testing.T) {
			if err := cfg.Register(c, g); err != nil {
				t.Fatal(err)
			}
			initial, err := cfg.InitialInputs(field, g)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Run(initial)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != decomp.Blocks() {
				t.Fatalf("got %d sink outputs, want %d", len(out), decomp.Blocks())
			}
			covered := 0
			for i := 0; i < decomp.Blocks(); i++ {
				ps := out[g.SegmentationTask(i)]
				if len(ps) != 1 {
					t.Fatalf("block %d: %d payloads", i, len(ps))
				}
				wire, _ := ps[0].Wire()
				seg, err := DeserializeSegmentation(wire)
				if err != nil {
					t.Fatal(err)
				}
				if seg.Block != i {
					t.Errorf("payload says block %d, want %d", seg.Block, i)
				}
				for vid, label := range seg.Labels {
					wantLabel, ok := want[vid]
					if !ok {
						t.Errorf("block %d labels vertex %d below global threshold", i, vid)
						continue
					}
					if label != wantLabel {
						x, y, z := VertexCoords(vid, n, n)
						t.Errorf("block %d vertex (%d,%d,%d): label %d, want %d", i, x, y, z, label, wantLabel)
					}
					covered++
				}
			}
			if covered < len(want) {
				t.Errorf("blocks covered %d labeled vertices, global has %d", covered, len(want))
			}
		})
	}
}

// TestAllControllersProduceIdenticalBytes checks runtime-independence at
// the byte level: every controller's serialized sink payloads are
// identical.
func TestAllControllersProduceIdenticalBytes(t *testing.T) {
	const n = 12
	field := data.SyntheticHCCI(n, n, n, 5, 7)
	decomp, _ := data.NewDecomposition(n, n, n, 2, 2, 1)
	g, err := NewGraph(decomp.Blocks(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Decomp: decomp, Threshold: 0.2}

	var reference map[core.TaskId][]byte
	for _, shards := range []int{1, 3, 8} {
		for name, c := range e2eControllers(g, shards) {
			if err := cfg.Register(c, g); err != nil {
				t.Fatal(err)
			}
			initial, _ := cfg.InitialInputs(field, g)
			out, err := c.Run(initial)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, shards, err)
			}
			bytesOut := make(map[core.TaskId][]byte)
			for id, ps := range out {
				w, _ := ps[0].Wire()
				bytesOut[id] = w
			}
			if reference == nil {
				reference = bytesOut
				continue
			}
			for id, want := range reference {
				if !bytes.Equal(bytesOut[id], want) {
					t.Errorf("%s/%d: sink %x differs from reference", name, shards, uint64(id))
				}
			}
		}
	}
}

// TestFeatureCountMatchesKernelCount: with well-separated kernels and a
// suitable threshold the distributed pipeline finds one feature per kernel
// (the Fig. 4 scenario).
func TestFeatureCountMatchesKernelCount(t *testing.T) {
	const n = 24
	f := data.NewField(n, n, n)
	// Three sharp, well-separated bumps.
	centers := [][3]int{{4, 4, 4}, {16, 16, 8}, {6, 18, 18}}
	for _, c := range centers {
		for dz := -2; dz <= 2; dz++ {
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					d2 := dx*dx + dy*dy + dz*dz
					x, y, z := c[0]+dx, c[1]+dy, c[2]+dz
					v := f.At(x, y, z) + float32(10-d2)
					f.Set(x, y, z, v)
				}
			}
		}
	}
	decomp, _ := data.NewDecomposition(n, n, n, 2, 2, 2)
	g, _ := NewGraph(8, 2)
	cfg := Config{Decomp: decomp, Threshold: 3}

	mc := mpi.New()
	mc.Initialize(g, core.NewListMap(3, g.TaskIds()))
	if err := cfg.Register(mc, g); err != nil {
		t.Fatal(err)
	}
	initial, _ := cfg.InitialInputs(f, g)
	out, err := mc.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	features := make(map[uint64]bool)
	total := 0
	for i := 0; i < 8; i++ {
		w, _ := out[g.SegmentationTask(i)][0].Wire()
		seg, _ := DeserializeSegmentation(w)
		for _, label := range seg.Labels {
			features[label] = true
		}
		total += len(seg.Labels)
	}
	if len(features) != 3 {
		t.Errorf("found %d features, want 3", len(features))
	}
	if total == 0 {
		t.Error("no labeled vertices")
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := NewGraph(4, 2)
	c := core.NewSerial()
	c.Initialize(g, nil)
	if err := (Config{Threshold: 0}).Register(c, g); err == nil {
		t.Error("missing decomposition should fail")
	}
	wrongDecomp, _ := data.NewDecomposition(8, 8, 8, 2, 2, 2)
	if err := (Config{Decomp: wrongDecomp}).Register(c, g); err == nil {
		t.Error("block-count mismatch should fail")
	}
}

func TestSegmentationSerializeRoundTrip(t *testing.T) {
	s := Segmentation{Block: 3, Labels: map[uint64]uint64{9: 1, 2: 1, 40: 7}}
	b := s.Serialize()
	got, err := DeserializeSegmentation(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block != 3 || len(got.Labels) != 3 || got.Labels[40] != 7 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DeserializeSegmentation(b[:10]); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := DeserializeSegmentation(b[:len(b)-8]); err == nil {
		t.Error("truncated buffer should fail")
	}
}

// TestScalingShapes executes the same dataflow over several shard counts on
// the MPI controller and confirms output invariance (the over-decomposition
// property of §I).
func TestScalingShapes(t *testing.T) {
	const n = 16
	field := data.SyntheticHCCI(n, n, n, 4, 99)
	decomp, _ := data.NewDecomposition(n, n, n, 4, 2, 1)
	g, err := NewGraph(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Decomp: decomp, Threshold: 0.25}
	var ref []byte
	for _, shards := range []int{1, 2, 7, 16, 40} {
		mc := mpi.New()
		mc.Initialize(g, core.NewListMap(shards, g.TaskIds()))
		if err := cfg.Register(mc, g); err != nil {
			t.Fatal(err)
		}
		initial, _ := cfg.InitialInputs(field, g)
		out, err := mc.Run(initial)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var all []byte
		for i := 0; i < 8; i++ {
			w, _ := out[g.SegmentationTask(i)][0].Wire()
			all = append(all, w...)
		}
		if ref == nil {
			ref = all
		} else if !bytes.Equal(ref, all) {
			t.Errorf("shards=%d produced different labels", shards)
		}
	}
}

func ExampleConfig_Register() {
	field := data.SyntheticHCCI(8, 8, 8, 3, 1)
	decomp, _ := data.NewDecomposition(8, 8, 8, 2, 1, 1)
	g, _ := NewGraph(2, 2)
	cfg := Config{Decomp: decomp, Threshold: 0.3}

	c := mpi.New()
	c.Initialize(g, core.NewListMap(2, g.TaskIds()))
	cfg.Register(c, g)
	initial, _ := cfg.InitialInputs(field, g)
	out, _ := c.Run(initial)
	fmt.Println(len(out) == 2)
	// Output: true
}

// TestLargeScaleStress runs a 64-block, 3-level dataflow (841 tasks) on the
// concurrent controllers against the serial global reference. Skipped in
// -short mode.
func TestLargeScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 32
	field := data.SyntheticHCCI(n, n, n, 10, 64064)
	decomp, err := data.NewDecomposition(n, n, n, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Decomp: decomp, Threshold: 0.25}
	want := SerialSegmentation(field, cfg.Threshold)

	for name, c := range map[string]core.Controller{
		"mpi": func() core.Controller {
			m := mpi.New(mpi.WithWorkers(8))
			m.Initialize(g, core.NewListMap(16, g.TaskIds()))
			return m
		}(),
		"charm": func() core.Controller {
			m := charm.New(charm.Options{PEs: 16, LBPeriod: 16})
			m.Initialize(g, nil)
			return m
		}(),
		"legion-spmd": func() core.Controller {
			m := legion.NewSPMD(legion.Options{})
			m.Initialize(g, core.NewListMap(16, g.TaskIds()))
			return m
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			if err := cfg.Register(c, g); err != nil {
				t.Fatal(err)
			}
			initial, err := cfg.InitialInputs(field, g)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Run(initial)
			if err != nil {
				t.Fatal(err)
			}
			mismatches := 0
			for i := 0; i < 64; i++ {
				wire, _ := out[g.SegmentationTask(i)][0].Wire()
				seg, err := DeserializeSegmentation(wire)
				if err != nil {
					t.Fatal(err)
				}
				for vid, rep := range seg.Labels {
					if want[vid] != rep {
						mismatches++
					}
				}
			}
			if mismatches != 0 {
				t.Errorf("%d label mismatches vs serial", mismatches)
			}
		})
	}
}
