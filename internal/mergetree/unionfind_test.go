package mergetree

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/data"
)

// TestUnionFindDenseMatchesMap drives the dense and map representations
// through an identical union sequence and checks every find agrees.
func TestUnionFindDenseMatchesMap(t *testing.T) {
	const n = 500
	base := uint64(10_000)
	dense := newUnionFindSpan(base, base+n-1, n)
	if dense.dense == nil {
		t.Fatal("contiguous span did not select the dense backing")
	}
	sparse := newUnionFind()
	for i := uint64(0); i < n; i++ {
		dense.makeSet(base + i)
		sparse.makeSet(base + i)
	}
	rng := data.NewRand(42)
	for k := 0; k < 2*n; k++ {
		a := base + uint64(rng.Intn(n))
		b := base + uint64(rng.Intn(n))
		dr := dense.union(a, b)
		sr := sparse.union(a, b)
		if dr != sr {
			t.Fatalf("union(%d,%d): dense root %d, map root %d", a, b, dr, sr)
		}
	}
	for i := uint64(0); i < n; i++ {
		if d, s := dense.find(base+i), sparse.find(base+i); d != s {
			t.Fatalf("find(%d): dense %d, map %d", base+i, d, s)
		}
	}
}

// TestUnionFindSparseFallback checks that scattered ids select the map and
// still behave.
func TestUnionFindSparseFallback(t *testing.T) {
	ids := []uint64{0, 1 << 30, 1 << 40, 1 << 50}
	uf := newUnionFindSpan(ids[0], ids[len(ids)-1], len(ids))
	if uf.dense != nil {
		t.Fatal("sparse span must fall back to the map")
	}
	for _, id := range ids {
		uf.makeSet(id)
	}
	uf.union(ids[0], ids[1])
	uf.union(ids[2], ids[3])
	if uf.find(ids[0]) != uf.find(ids[1]) || uf.find(ids[2]) != uf.find(ids[3]) {
		t.Error("unions not reflected")
	}
	if uf.find(ids[0]) == uf.find(ids[2]) {
		t.Error("distinct components merged")
	}
}

// TestUnionFindSpanBounds pins the representation choice: tight spans are
// dense, 4x-padded spans still dense, anything wider or huge is map-backed.
func TestUnionFindSpanBounds(t *testing.T) {
	if uf := newUnionFindSpan(100, 199, 100); uf.dense == nil {
		t.Error("exact span should be dense")
	}
	if uf := newUnionFindSpan(0, 399, 100); uf.dense == nil {
		t.Error("4x span should be dense")
	}
	if uf := newUnionFindSpan(0, 400, 100); uf.dense != nil {
		t.Error(">4x span should be map-backed")
	}
	if uf := newUnionFindSpan(0, unionFindDenseMax, unionFindDenseMax); uf.dense != nil {
		t.Error("span above the dense cap should be map-backed")
	}
	if uf := newUnionFindSpan(0, 0, 0); uf.dense != nil {
		t.Error("empty set should be map-backed (nothing to size)")
	}
}

// benchField builds an n^3 scalar field with 6-neighborhood adjacency over
// contiguous vertex ids — the shape of one decomposition block.
func benchField(n int) (map[uint64]float32, func(uint64) []uint64) {
	field := data.SyntheticHCCI(n, n, n, 8, 2026)
	values := make(map[uint64]float32, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				id := uint64(z*n*n + y*n + x)
				values[id] = field.At(x, y, z)
			}
		}
	}
	adj := func(id uint64) []uint64 {
		x, y, z := int(id)%n, int(id)/n%n, int(id)/(n*n)
		var out []uint64
		if x > 0 {
			out = append(out, id-1)
		}
		if x < n-1 {
			out = append(out, id+1)
		}
		if y > 0 {
			out = append(out, id-uint64(n))
		}
		if y < n-1 {
			out = append(out, id+uint64(n))
		}
		if z > 0 {
			out = append(out, id-uint64(n*n))
		}
		if z < n-1 {
			out = append(out, id+uint64(n*n))
		}
		return out
	}
	return values, adj
}

// BenchmarkTreeSweep measures the merge-tree sweep over one block — the hot
// path of every local-tree task, where the dense union-find replaces a map
// lookup per edge traversal (block vertex ids are contiguous, so the sweep
// stays on the slice).
func BenchmarkTreeSweep(b *testing.B) {
	values, adj := benchField(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := compute(values, adj); tr.Len() != len(values) {
			b.Fatal("bad tree")
		}
	}
}

// BenchmarkSegment measures the superlevel-set labeling of the per-block
// segmentation tasks.
func BenchmarkSegment(b *testing.B) {
	values, adj := benchField(24)
	tr := compute(values, adj)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if labels := tr.Segment(0.3); len(labels) == 0 {
			b.Fatal("no labels")
		}
	}
}
