// Package mergetree implements the paper's first use case (§V-A): parallel
// segmented merge trees for topological feature extraction, after Landge et
// al. (SC'14). The algorithm computes, for a block-decomposed scalar field,
// the global merge tree of the superlevel sets and a segmentation that
// labels every vertex above a threshold with the maximum of its connected
// component — the "ignition regions" of Fig. 4.
//
// The distributed dataflow (Fig. 5) combines a k-way reduction of boundary
// trees (join tasks) with broadcast-like relay overlays that fan augmented
// boundary trees back out to per-block correction tasks, followed by a
// final segmentation task per block.
package mergetree

import (
	"fmt"
	"math"
	"sort"
)

// NoNode marks the absence of a parent (tree roots).
const NoNode = ^uint64(0)

// Tree is a merge tree (join tree of superlevel sets) over vertices with
// globally unique ids. Every node stores its scalar value and a parent arc
// toward the next lower node of its component; roots have no parent.
//
// The total order used everywhere is (value, id) descending, which breaks
// ties deterministically across blocks and runtimes.
type Tree struct {
	value  map[uint64]float32
	parent map[uint64]uint64
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	return &Tree{value: make(map[uint64]float32), parent: make(map[uint64]uint64)}
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.value) }

// Value returns a node's scalar value.
func (t *Tree) Value(id uint64) (float32, bool) {
	v, ok := t.value[id]
	return v, ok
}

// Parent returns a node's parent, or NoNode for roots and unknown ids.
func (t *Tree) Parent(id uint64) uint64 {
	p, ok := t.parent[id]
	if !ok {
		return NoNode
	}
	return p
}

// Ids returns all node ids in ascending order.
func (t *Tree) Ids() []uint64 {
	ids := make([]uint64, 0, len(t.value))
	for id := range t.value {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// above reports whether (va, a) comes before (vb, b) in the sweep order:
// higher value first, ties broken toward higher id.
func above(va float32, a uint64, vb float32, b uint64) bool {
	if va != vb {
		return va > vb
	}
	return a > b
}

// unionFind is a union-find over node ids with path compression. When the
// id set is (nearly) contiguous — as vertex ids of a data.Decomposition
// block are — a dense slice indexed by id-base backs the parent pointers;
// for sparse id sets (merged boundary trees spanning distant blocks) it
// falls back to a map. Both representations implement identical semantics;
// only makeSet ids may be passed to find/union.
type unionFind struct {
	base   uint64
	dense  []uint64          // parent of id (base+i) at dense[i]; nil when map-backed
	parent map[uint64]uint64 // sparse fallback
}

// unionFindDenseMax bounds the dense allocation (entries); beyond it even a
// contiguous id range uses the map to keep the sweep's footprint sane.
const unionFindDenseMax = 1 << 22

func newUnionFind() *unionFind { return &unionFind{parent: make(map[uint64]uint64)} }

// newUnionFindSpan sizes a union-find for count ids within [lo, hi]: a
// dense slice when the span wastes at most 4x the occupied entries, the map
// otherwise.
func newUnionFindSpan(lo, hi uint64, count int) *unionFind {
	if count > 0 && hi >= lo {
		span := hi - lo + 1
		if span <= uint64(count)*4 && span <= unionFindDenseMax {
			return &unionFind{base: lo, dense: make([]uint64, span)}
		}
	}
	return newUnionFind()
}

func (u *unionFind) makeSet(x uint64) {
	if u.dense != nil {
		// Stored biased by +1 so the zero value means "not in any set".
		u.dense[x-u.base] = x - u.base + 1
		return
	}
	u.parent[x] = x
}

func (u *unionFind) find(x uint64) uint64 {
	if u.dense != nil {
		i := x - u.base
		for {
			p := u.dense[i] - 1
			if p == i {
				return i + u.base
			}
			g := u.dense[p] // grandparent, biased
			u.dense[i] = g
			i = g - 1
		}
	}
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b uint64) uint64 {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.dense != nil {
		u.dense[rb-u.base] = ra - u.base + 1
	} else {
		u.parent[rb] = ra
	}
	return ra
}

// compute runs the merge-tree sweep over an arbitrary graph: nodes with
// values and an adjacency function (returning neighbors restricted to the
// node set). Vertices are processed in descending (value, id) order; each
// time a vertex touches existing components, the current lowest node of
// every touched component gains the vertex as its parent arc, producing the
// fully augmented merge tree (every vertex appears, with a parent arc to
// the next lower node of its component).
func compute(values map[uint64]float32, adj func(uint64) []uint64) *Tree {
	order := make([]uint64, 0, len(values))
	for id := range values {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool {
		return above(values[order[i]], order[i], values[order[j]], order[j])
	})

	t := NewTree()
	var lo, hi uint64
	for i, id := range order {
		if i == 0 || id < lo {
			lo = id
		}
		if i == 0 || id > hi {
			hi = id
		}
	}
	uf := newUnionFindSpan(lo, hi, len(order))
	lowest := make(map[uint64]uint64, len(values)) // component root -> lowest node
	processed := make(map[uint64]bool, len(values))

	for _, v := range order {
		t.value[v] = values[v]
		uf.makeSet(v)
		lowest[v] = v
		for _, u := range adj(v) {
			if !processed[u] {
				continue
			}
			ru, rv := uf.find(u), uf.find(v)
			if ru == rv {
				continue
			}
			// The touched component's chain continues at v.
			t.parent[lowest[ru]] = v
			r := uf.union(rv, ru)
			lowest[r] = v
		}
		processed[v] = true
	}
	return t
}

// Merge returns the merge tree of the union of the given trees' arc sets.
// Joining boundary trees this way is the paper's join task: the merge tree
// of a union of domains equals the merge tree computed over the union of
// the domains' (augmented) merge tree arcs, because merge trees preserve
// superlevel-set connectivity.
func Merge(trees ...*Tree) *Tree {
	values := make(map[uint64]float32)
	adj := make(map[uint64][]uint64)
	addEdge := func(a, b uint64) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, tr := range trees {
		for id, v := range tr.value {
			values[id] = v
		}
		for c, p := range tr.parent {
			addEdge(c, p)
		}
	}
	return compute(values, func(id uint64) []uint64 { return adj[id] })
}

// childCounts returns the number of tree children (incoming arcs) per node.
func (t *Tree) childCounts() map[uint64]int {
	n := make(map[uint64]int, len(t.value))
	for _, p := range t.parent {
		n[p]++
	}
	return n
}

// Reduce contracts the tree to its critical nodes — leaves (maxima), merge
// saddles (nodes with two or more children) and roots — plus every node for
// which keep returns true (typically block-boundary vertices). Parent arcs
// of kept nodes jump to the nearest kept ancestor. The result is the merge
// tree restricted to the kept node set; it is what join tasks exchange as
// "boundary trees".
func (t *Tree) Reduce(keep func(id uint64) bool) *Tree {
	children := t.childCounts()
	kept := make(map[uint64]bool, len(t.value))
	for id := range t.value {
		if children[id] == 0 || children[id] >= 2 {
			kept[id] = true // maximum or saddle
			continue
		}
		if _, hasParent := t.parent[id]; !hasParent {
			kept[id] = true // root
			continue
		}
		if keep != nil && keep(id) {
			kept[id] = true
		}
	}
	out := NewTree()
	for id := range kept {
		out.value[id] = t.value[id]
		p, ok := t.parent[id]
		for ok && !kept[p] {
			p, ok = t.parent[p]
		}
		if ok {
			out.parent[id] = p
		}
	}
	return out
}

// Segment labels every node with value >= threshold with the representative
// of its superlevel-set component at that threshold: the component's
// highest node in sweep order. Nodes below the threshold are absent from
// the result.
func (t *Tree) Segment(threshold float32) map[uint64]uint64 {
	var lo, hi uint64
	count := 0
	for id, v := range t.value {
		if v < threshold {
			continue
		}
		if count == 0 || id < lo {
			lo = id
		}
		if count == 0 || id > hi {
			hi = id
		}
		count++
	}
	uf := newUnionFindSpan(lo, hi, count)
	for id, v := range t.value {
		if v >= threshold {
			uf.makeSet(id)
		}
	}
	for c, p := range t.parent {
		if t.value[c] >= threshold && t.value[p] >= threshold {
			uf.union(c, p)
		}
	}
	// Representative per component root: the max node.
	rep := make(map[uint64]uint64)
	for id, v := range t.value {
		if v < threshold {
			continue
		}
		r := uf.find(id)
		cur, ok := rep[r]
		if !ok || above(v, id, t.value[cur], cur) {
			rep[r] = id
		}
	}
	labels := make(map[uint64]uint64, count)
	for id, v := range t.value {
		if v >= threshold {
			labels[id] = rep[uf.find(id)]
		}
	}
	return labels
}

// Features returns the distinct segment representatives at a threshold, in
// ascending order: one entry per connected feature.
func (t *Tree) Features(threshold float32) []uint64 {
	labels := t.Segment(threshold)
	seen := make(map[uint64]bool)
	for _, r := range labels {
		seen[r] = true
	}
	out := make([]uint64, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Serialize encodes the tree deterministically: node count, then per node
// (ascending id) the id, value bits and parent id (NoNode for roots).
func (t *Tree) Serialize() []byte {
	ids := t.Ids()
	buf := make([]byte, 8+20*len(ids))
	putU64(buf[0:], uint64(len(ids)))
	off := 8
	for _, id := range ids {
		putU64(buf[off:], id)
		putU32b(buf[off+8:], math.Float32bits(t.value[id]))
		putU64(buf[off+12:], t.Parent(id))
		off += 20
	}
	return buf
}

// Deserialize decodes a tree encoded by Serialize.
func Deserialize(b []byte) (*Tree, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("mergetree: tree buffer too short (%d bytes)", len(b))
	}
	n := int(getU64(b[0:]))
	if len(b) != 8+20*n {
		return nil, fmt.Errorf("mergetree: tree buffer size %d does not match %d nodes", len(b), n)
	}
	t := NewTree()
	off := 8
	for i := 0; i < n; i++ {
		id := getU64(b[off:])
		v := math.Float32frombits(getU32b(b[off+8:]))
		p := getU64(b[off+12:])
		t.value[id] = v
		if p != NoNode {
			t.parent[id] = p
		}
		off += 20
	}
	return t, nil
}

// Equal reports whether two trees have identical node and arc sets.
func (t *Tree) Equal(o *Tree) bool {
	if len(t.value) != len(o.value) || len(t.parent) != len(o.parent) {
		return false
	}
	for id, v := range t.value {
		if ov, ok := o.value[id]; !ok || ov != v {
			return false
		}
	}
	for c, p := range t.parent {
		if op, ok := o.parent[c]; !ok || op != p {
			return false
		}
	}
	return true
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putU32b(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32b(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
