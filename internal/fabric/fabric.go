// Package fabric provides the in-process interconnect the runtime
// controllers execute on: a set of ranks with unbounded FIFO mailboxes and
// asynchronous point-to-point messaging.
//
// The fabric substitutes for the physical network of the paper's testbed.
// It preserves the properties the controllers rely on — reliable delivery
// and pairwise FIFO ordering between any sender/receiver pair — while
// accounting message and byte counts for the performance studies. A
// blocking (rendezvous) mode models the synchronous communication style of
// the hand-tuned "Original MPI" baseline of Fig. 6.
//
// Mailboxes are growable ring buffers whose backing arrays are pooled
// across mailbox lifetimes, and the batch entry points (SendN, RecvBatch)
// move a whole fan-out or drain a whole queue under a single lock
// acquisition, so the steady-state message path performs no allocation and
// one lock operation per batch rather than per message.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Message is one point-to-point transfer between ranks: a payload travelling
// from producing task Src toward consuming task Dest.
type Message struct {
	From    int
	To      int
	Src     core.TaskId
	Dest    core.TaskId
	Payload core.Payload

	done chan struct{} // rendezvous signal in blocking mode
}

// Stats aggregates traffic counters. All fields are totals since fabric
// creation.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Fabric connects n ranks with unbounded mailboxes.
type Fabric struct {
	boxes    []*Mailbox
	blocking bool

	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New returns a fabric with n ranks and asynchronous sends: Send enqueues
// and returns immediately, like MPI_Isend against a posted receive.
func New(n int) *Fabric {
	if n < 1 {
		panic("fabric: need at least one rank")
	}
	f := &Fabric{boxes: make([]*Mailbox, n)}
	for i := range f.boxes {
		f.boxes[i] = NewMailbox()
	}
	return f
}

// NewBlocking returns a fabric whose Send performs a rendezvous: the sender
// blocks until the receiver has dequeued the message, modeling blocking
// MPI_Send of large messages.
func NewBlocking(n int) *Fabric {
	f := New(n)
	f.blocking = true
	return f
}

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return len(f.boxes) }

// account records the traffic of one message. Self-sends are in-memory
// hand-offs and do not count as traffic.
func (f *Fabric) account(m Message) {
	if m.From != m.To {
		f.messages.Add(1)
		f.bytes.Add(uint64(m.Payload.Size()))
	}
}

// Send delivers m to rank m.To. In asynchronous mode it never blocks; in
// blocking mode it waits for the receiver to dequeue the message.
func (f *Fabric) Send(m Message) error {
	if m.To < 0 || m.To >= len(f.boxes) {
		return fmt.Errorf("fabric: send to unknown rank %d", m.To)
	}
	f.account(m)
	if f.blocking && m.From != m.To {
		// Rendezvous, except for self-sends: local delivery is a memory
		// hand-off, not a network transfer, even in blocking mode.
		m.done = make(chan struct{})
		f.boxes[m.To].Put(m)
		<-m.done
		return nil
	}
	f.boxes[m.To].Put(m)
	return nil
}

// SendN delivers a batch of messages, preserving their relative order for
// every destination: runs of consecutive messages addressed to the same
// rank are enqueued under one lock acquisition of that rank's mailbox. In
// blocking mode each inter-rank message still performs an individual
// rendezvous, as a real blocking send would.
func (f *Fabric) SendN(ms []Message) error {
	for i := range ms {
		if ms[i].To < 0 || ms[i].To >= len(f.boxes) {
			return fmt.Errorf("fabric: send to unknown rank %d", ms[i].To)
		}
		f.account(ms[i])
	}
	if f.blocking {
		for _, m := range ms {
			if m.From != m.To {
				m.done = make(chan struct{})
				f.boxes[m.To].Put(m)
				<-m.done
				continue
			}
			f.boxes[m.To].Put(m)
		}
		return nil
	}
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].To == ms[i].To {
			j++
		}
		f.boxes[ms[i].To].PutN(ms[i:j])
		i = j
	}
	return nil
}

// Recv blocks until a message for the rank arrives or its mailbox is
// closed; ok is false after close with an empty queue.
func (f *Fabric) Recv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].Get()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// RecvBatch blocks until at least one message for the rank is available (or
// the mailbox is closed and drained) and dequeues up to len(dst) messages
// under one lock acquisition. It returns the number dequeued; ok is false
// after close with an empty queue.
func (f *Fabric) RecvBatch(rank int, dst []Message) (int, bool) {
	n, ok := f.boxes[rank].GetBatch(dst)
	for i := 0; i < n; i++ {
		if dst[i].done != nil {
			close(dst[i].done)
			dst[i].done = nil
		}
	}
	return n, ok
}

// TryRecv dequeues a message if one is immediately available.
func (f *Fabric) TryRecv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].TryGet()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// Close closes the mailbox of a rank, releasing blocked receivers after the
// queue drains.
func (f *Fabric) Close(rank int) { f.boxes[rank].Close() }

// Cancel aborts all communication: every mailbox stops accepting and
// delivering messages, all blocked receivers return !ok and blocked
// rendezvous senders are released. Controllers call it when a task fails so
// every rank can unwind.
func (f *Fabric) Cancel() {
	for _, mb := range f.boxes {
		mb.Cancel()
	}
}

// Snapshot returns the traffic totals so far.
func (f *Fabric) Snapshot() Stats {
	return Stats{Messages: f.messages.Load(), Bytes: f.bytes.Load()}
}

// ringPool recycles mailbox backing arrays across mailbox lifetimes:
// controllers create a fresh fabric per Run, so without pooling every run
// re-grows every rank's queue from scratch. Pooled arrays are fully zeroed
// before release, so they pin no payloads.
var ringPool = sync.Pool{
	New: func() any {
		b := make([]Message, ringMinSize)
		return &b
	},
}

const ringMinSize = 64

// Mailbox is an unbounded FIFO queue with blocking receive, backed by a
// growable ring buffer. A single lock protects the ring, so delivery order
// is the order Put calls complete, which preserves pairwise FIFO for any
// sender. Dequeued slots are zeroed immediately: a delivered message's
// payload is collectable as soon as its consumer drops it, regardless of
// queue depth history.
type Mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	buf       []Message // ring storage; nil until first Put and after teardown
	head      int       // index of the oldest message
	count     int       // queued messages
	closed    bool
	cancelled bool
}

// NewMailbox returns an empty, open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// reserveLocked makes room for n more messages.
func (mb *Mailbox) reserveLocked(n int) {
	if mb.buf == nil {
		if n <= ringMinSize {
			mb.buf = *ringPool.Get().(*[]Message)
		} else {
			mb.buf = make([]Message, nextPow2(n))
		}
		return
	}
	need := mb.count + n
	if need <= len(mb.buf) {
		return
	}
	nb := make([]Message, nextPow2(need))
	for i := 0; i < mb.count; i++ {
		nb[i] = mb.buf[(mb.head+i)%len(mb.buf)]
	}
	mb.releaseRing()
	mb.buf, mb.head = nb, 0
}

func nextPow2(n int) int {
	c := ringMinSize
	for c < n {
		c <<= 1
	}
	return c
}

// releaseRing zeroes the current backing array and returns it to the pool.
func (mb *Mailbox) releaseRing() {
	if mb.buf == nil {
		return
	}
	clear(mb.buf)
	buf := mb.buf
	mb.buf, mb.head = nil, 0
	if len(buf) <= 1<<16 { // don't pin huge arrays
		ringPool.Put(&buf)
	}
}

func (mb *Mailbox) pushLocked(m Message) {
	mb.buf[(mb.head+mb.count)%len(mb.buf)] = m
	mb.count++
}

func (mb *Mailbox) popLocked() Message {
	m := mb.buf[mb.head]
	mb.buf[mb.head] = Message{} // release the delivered payload reference
	mb.head = (mb.head + 1) % len(mb.buf)
	mb.count--
	if mb.count == 0 {
		mb.head = 0
		if mb.closed {
			// Terminal drain: no further Put is legal, recycle the ring.
			mb.releaseRing()
		}
	}
	return m
}

// Put enqueues a message. Put on a closed mailbox panics: controllers close
// a rank's mailbox only after every producer for that rank has finished.
func (mb *Mailbox) Put(m Message) {
	mb.mu.Lock()
	if mb.cancelled {
		mb.mu.Unlock()
		dropMessage(m)
		return
	}
	if mb.closed {
		mb.mu.Unlock()
		panic("fabric: Put on closed mailbox")
	}
	mb.reserveLocked(1)
	mb.pushLocked(m)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// PutN enqueues a batch of messages in order under one lock acquisition.
// Like Put, PutN on a closed mailbox panics and PutN on a cancelled mailbox
// drops the batch.
func (mb *Mailbox) PutN(ms []Message) {
	if len(ms) == 0 {
		return
	}
	mb.mu.Lock()
	if mb.cancelled {
		mb.mu.Unlock()
		for _, m := range ms {
			dropMessage(m)
		}
		return
	}
	if mb.closed {
		mb.mu.Unlock()
		panic("fabric: Put on closed mailbox")
	}
	mb.reserveLocked(len(ms))
	for _, m := range ms {
		mb.pushLocked(m)
	}
	mb.mu.Unlock()
	if len(ms) == 1 {
		mb.cond.Signal()
	} else {
		mb.cond.Broadcast()
	}
}

// Get blocks until a message is available or the mailbox is closed and
// drained.
func (mb *Mailbox) Get() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.count == 0 && !mb.closed && !mb.cancelled {
		mb.cond.Wait()
	}
	if mb.cancelled || mb.count == 0 {
		return Message{}, false
	}
	return mb.popLocked(), true
}

// GetBatch blocks until at least one message is available (or the mailbox
// is closed and drained) and dequeues up to len(dst) messages into dst
// under one lock acquisition, returning the number dequeued.
func (mb *Mailbox) GetBatch(dst []Message) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.count == 0 && !mb.closed && !mb.cancelled {
		mb.cond.Wait()
	}
	if mb.cancelled || mb.count == 0 {
		return 0, false
	}
	n := len(dst)
	if n > mb.count {
		n = mb.count
	}
	for i := 0; i < n; i++ {
		dst[i] = mb.popLocked()
	}
	return n, true
}

// TryGet dequeues a message if one is immediately available.
func (mb *Mailbox) TryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.cancelled || mb.count == 0 {
		return Message{}, false
	}
	return mb.popLocked(), true
}

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.count
}

// Close marks the mailbox closed and wakes all blocked receivers. Queued
// messages remain receivable.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	if mb.count == 0 {
		mb.releaseRing()
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Cancel aborts the mailbox: queued messages are dropped (releasing any
// rendezvous senders and shared payload references), further Puts are
// dropped, and receivers return !ok.
func (mb *Mailbox) Cancel() {
	mb.mu.Lock()
	mb.cancelled = true
	for i := 0; i < mb.count; i++ {
		dropMessage(mb.buf[(mb.head+i)%len(mb.buf)])
	}
	mb.count = 0
	mb.releaseRing()
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// dropMessage discards an undeliverable message: it releases a blocked
// rendezvous sender and drops the payload's shared wire reference so pooled
// fan-out buffers still return to the arena on a cancelled run.
func dropMessage(m Message) {
	if m.done != nil {
		close(m.done)
	}
	m.Payload.Release()
}
