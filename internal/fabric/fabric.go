// Package fabric provides the in-process interconnect the runtime
// controllers execute on: a set of ranks with unbounded FIFO mailboxes and
// asynchronous point-to-point messaging.
//
// The fabric substitutes for the physical network of the paper's testbed.
// It preserves the properties the controllers rely on — reliable delivery
// and pairwise FIFO ordering between any sender/receiver pair — while
// accounting message and byte counts for the performance studies. A
// blocking (rendezvous) mode models the synchronous communication style of
// the hand-tuned "Original MPI" baseline of Fig. 6.
//
// Mailboxes are growable ring buffers whose backing arrays are pooled
// across mailbox lifetimes, and the batch entry points (SendN, RecvBatch)
// move a whole fan-out or drain a whole queue under a single lock
// acquisition, so the steady-state message path performs no allocation and
// one lock operation per batch rather than per message.
package fabric

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/babelflow/babelflow-go/internal/core"
)

// ErrClosed is returned by Send and SendN when the destination mailbox is
// closed or the fabric has been cancelled. The message was not (and will not
// be) delivered; the fabric has already released its payload reference, so
// pooled fan-out buffers still return to the arena. Network transports map
// peer disconnects onto the same error surface.
var ErrClosed = errors.New("fabric: mailbox closed")

// ErrPeerLost is the transport-level failure reported when a rank stops
// responding: its connection broke or its heartbeats went silent. The
// fault-tolerant coordinator treats it as retryable — survivors reassign
// the lost rank's tasks and replay the undelivered frontier. Network
// transports (internal/wire) and the fault-injection harness wrap this
// sentinel; test with errors.Is.
var ErrPeerLost = errors.New("fabric: peer lost")

// LossReporter is implemented by transports that can name which peers were
// lost, so a recovery coordinator can rebuild the task map around them.
type LossReporter interface {
	// LostPeers returns the ranks this transport observed as dead, in this
	// transport's rank numbering. Empty when no peer was lost.
	LostPeers() []int
}

// Transport is the interconnect a runtime controller executes on: n ranks
// exchanging point-to-point messages with reliable delivery and pairwise
// FIFO ordering between any sender/receiver pair. The in-memory Fabric is
// one implementation; the TCP fabric (internal/wire) implements the same
// contract across OS processes.
//
// Semantics every implementation must provide:
//
//   - Send/SendN never deliver partially: a message is either enqueued for
//     its destination or an error is returned and the transport has released
//     the payload references of every undelivered message.
//   - SendN preserves the relative order of its messages per destination.
//   - Recv/RecvBatch block until a message arrives or delivery becomes
//     impossible (mailbox closed and drained, transport cancelled or failed),
//     then report !ok.
//   - Cancel aborts all communication: queued messages are dropped (their
//     payload references released), blocked receivers return !ok.
//   - Err reports the first transport-level failure (nil for controller-
//     initiated cancellation; the in-memory fabric never fails).
type Transport interface {
	// Ranks returns the number of ranks the transport connects.
	Ranks() int
	// Send delivers one message to rank m.To.
	Send(m Message) error
	// SendN delivers a batch, preserving per-destination order.
	SendN(ms []Message) error
	// Recv blocks until a message for the rank arrives; ok is false when
	// delivery has become impossible.
	Recv(rank int) (Message, bool)
	// RecvBatch blocks for the first message, then dequeues up to len(dst)
	// messages, returning the number dequeued.
	RecvBatch(rank int, dst []Message) (int, bool)
	// Close marks the rank's mailbox closed; queued messages remain
	// receivable, further sends to it fail with ErrClosed.
	Close(rank int)
	// Cancel aborts all communication.
	Cancel()
	// Err returns the first transport-level failure, if any.
	Err() error
	// Snapshot returns the traffic totals so far.
	Snapshot() Stats
}

// Message is one point-to-point transfer between ranks: a payload travelling
// from producing task Src toward consuming task Dest.
type Message struct {
	From    int
	To      int
	Src     core.TaskId
	Dest    core.TaskId
	Payload core.Payload

	// Seq is a per-sender-unique message id stamped by fault-tolerant
	// controllers so receivers can drop redelivered duplicates. Zero means
	// the message carries no dedup identity.
	Seq uint64
	// Run identifies the graph instance this message belongs to when many
	// runs multiplex over one transport (see Demux). Zero means the
	// transport carries a single unmultiplexed run — the one-shot Run path.
	Run uint64
	// Attempt is the execution attempt of the producing task (1 = first
	// run, 0 = unknown/replay); carried for tracing and diagnostics.
	Attempt uint32

	done chan struct{} // rendezvous signal in blocking mode
}

// Stats aggregates traffic counters. All fields are totals since fabric
// creation.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Fabric connects n ranks with unbounded mailboxes.
type Fabric struct {
	boxes    []*Mailbox
	blocking bool

	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New returns a fabric with n ranks and asynchronous sends: Send enqueues
// and returns immediately, like MPI_Isend against a posted receive.
func New(n int) *Fabric {
	if n < 1 {
		panic("fabric: need at least one rank")
	}
	f := &Fabric{boxes: make([]*Mailbox, n)}
	for i := range f.boxes {
		f.boxes[i] = NewMailbox()
	}
	return f
}

// NewBlocking returns a fabric whose Send performs a rendezvous: the sender
// blocks until the receiver has dequeued the message, modeling blocking
// MPI_Send of large messages.
func NewBlocking(n int) *Fabric {
	f := New(n)
	f.blocking = true
	return f
}

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return len(f.boxes) }

// account records the traffic of one message. Self-sends are in-memory
// hand-offs and do not count as traffic.
func (f *Fabric) account(m Message) {
	if m.From != m.To {
		f.messages.Add(1)
		f.bytes.Add(uint64(m.Payload.Size()))
	}
}

// Send delivers m to rank m.To. In asynchronous mode it never blocks; in
// blocking mode it waits for the receiver to dequeue the message. When the
// destination mailbox is closed or cancelled, Send releases the payload and
// returns an error wrapping ErrClosed.
func (f *Fabric) Send(m Message) error {
	if m.To < 0 || m.To >= len(f.boxes) {
		m.Payload.Release()
		return fmt.Errorf("fabric: send to unknown rank %d", m.To)
	}
	if f.blocking && m.From != m.To {
		// Rendezvous, except for self-sends: local delivery is a memory
		// hand-off, not a network transfer, even in blocking mode.
		m.done = make(chan struct{})
		if err := f.boxes[m.To].Put(m); err != nil {
			return fmt.Errorf("fabric: rank %d: %w", m.To, err)
		}
		f.account(m)
		<-m.done
		return nil
	}
	if err := f.boxes[m.To].Put(m); err != nil {
		return fmt.Errorf("fabric: rank %d: %w", m.To, err)
	}
	f.account(m)
	return nil
}

// SendN delivers a batch of messages, preserving their relative order for
// every destination: runs of consecutive messages addressed to the same
// rank are enqueued under one lock acquisition of that rank's mailbox. In
// blocking mode each inter-rank message still performs an individual
// rendezvous, as a real blocking send would.
//
// On error, messages preceding the failure may already have been delivered;
// the payload references of every undelivered message (including the failed
// one) have been released.
func (f *Fabric) SendN(ms []Message) error {
	for i := range ms {
		if ms[i].To < 0 || ms[i].To >= len(f.boxes) {
			dropMessages(ms)
			return fmt.Errorf("fabric: send to unknown rank %d", ms[i].To)
		}
	}
	if f.blocking {
		for i, m := range ms {
			if m.From != m.To {
				m.done = make(chan struct{})
				if err := f.boxes[m.To].Put(m); err != nil {
					dropMessages(ms[i+1:])
					return fmt.Errorf("fabric: rank %d: %w", m.To, err)
				}
				f.account(m)
				<-m.done
				continue
			}
			if err := f.boxes[m.To].Put(m); err != nil {
				dropMessages(ms[i+1:])
				return fmt.Errorf("fabric: rank %d: %w", m.To, err)
			}
		}
		return nil
	}
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].To == ms[i].To {
			j++
		}
		if err := f.boxes[ms[i].To].PutN(ms[i:j]); err != nil {
			dropMessages(ms[j:])
			return fmt.Errorf("fabric: rank %d: %w", ms[i].To, err)
		}
		for k := i; k < j; k++ {
			f.account(ms[k])
		}
		i = j
	}
	return nil
}

// Recv blocks until a message for the rank arrives or its mailbox is
// closed; ok is false after close with an empty queue.
func (f *Fabric) Recv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].Get()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// RecvBatch blocks until at least one message for the rank is available (or
// the mailbox is closed and drained) and dequeues up to len(dst) messages
// under one lock acquisition. It returns the number dequeued; ok is false
// after close with an empty queue.
func (f *Fabric) RecvBatch(rank int, dst []Message) (int, bool) {
	n, ok := f.boxes[rank].GetBatch(dst)
	for i := 0; i < n; i++ {
		if dst[i].done != nil {
			close(dst[i].done)
			dst[i].done = nil
		}
	}
	return n, ok
}

// TryRecv dequeues a message if one is immediately available.
func (f *Fabric) TryRecv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].TryGet()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// Close closes the mailbox of a rank, releasing blocked receivers after the
// queue drains.
func (f *Fabric) Close(rank int) { f.boxes[rank].Close() }

// Cancel aborts all communication: every mailbox stops accepting and
// delivering messages, all blocked receivers return !ok and blocked
// rendezvous senders are released. Controllers call it when a task fails so
// every rank can unwind.
func (f *Fabric) Cancel() {
	for _, mb := range f.boxes {
		mb.Cancel()
	}
}

// Err implements Transport. The in-memory fabric has no transport-level
// failure modes, so Err is always nil; controllers track abort causes
// themselves.
func (f *Fabric) Err() error { return nil }

// Snapshot returns the traffic totals so far.
func (f *Fabric) Snapshot() Stats {
	return Stats{Messages: f.messages.Load(), Bytes: f.bytes.Load()}
}

var _ Transport = (*Fabric)(nil)

// ringPool recycles mailbox backing arrays across mailbox lifetimes:
// controllers create a fresh fabric per Run, so without pooling every run
// re-grows every rank's queue from scratch. Pooled arrays are fully zeroed
// before release, so they pin no payloads.
var ringPool = sync.Pool{
	New: func() any {
		b := make([]Message, ringMinSize)
		return &b
	},
}

const ringMinSize = 64

// Mailbox is an unbounded FIFO queue with blocking receive, backed by a
// growable ring buffer. A single lock protects the ring, so delivery order
// is the order Put calls complete, which preserves pairwise FIFO for any
// sender. Dequeued slots are zeroed immediately: a delivered message's
// payload is collectable as soon as its consumer drops it, regardless of
// queue depth history.
type Mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	buf       []Message // ring storage; nil until first Put and after teardown
	head      int       // index of the oldest message
	count     int       // queued messages
	closed    bool
	cancelled bool

	// ready mirrors "a receiver would not block" (count > 0, closed or
	// cancelled) so blocking receivers can probe it lock-free before parking
	// on the condition variable. Parking and waking a goroutine through the
	// cond costs microseconds; a latency-bound ping-pong whose reply is
	// already in flight is served out of a brief spin instead.
	ready atomic.Int32
}

// NewMailbox returns an empty, open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// reserveLocked makes room for n more messages.
func (mb *Mailbox) reserveLocked(n int) {
	if mb.buf == nil {
		if n <= ringMinSize {
			mb.buf = *ringPool.Get().(*[]Message)
		} else {
			mb.buf = make([]Message, nextPow2(n))
		}
		return
	}
	need := mb.count + n
	if need <= len(mb.buf) {
		return
	}
	nb := make([]Message, nextPow2(need))
	for i := 0; i < mb.count; i++ {
		nb[i] = mb.buf[(mb.head+i)%len(mb.buf)]
	}
	mb.releaseRing()
	mb.buf, mb.head = nb, 0
}

func nextPow2(n int) int {
	c := ringMinSize
	for c < n {
		c <<= 1
	}
	return c
}

// releaseRing zeroes the current backing array and returns it to the pool.
func (mb *Mailbox) releaseRing() {
	if mb.buf == nil {
		return
	}
	clear(mb.buf)
	buf := mb.buf
	mb.buf, mb.head = nil, 0
	if len(buf) <= 1<<16 { // don't pin huge arrays
		ringPool.Put(&buf)
	}
}

func (mb *Mailbox) pushLocked(m Message) {
	mb.buf[(mb.head+mb.count)%len(mb.buf)] = m
	mb.count++
	mb.ready.Store(1)
}

func (mb *Mailbox) popLocked() Message {
	m := mb.buf[mb.head]
	mb.buf[mb.head] = Message{} // release the delivered payload reference
	mb.head = (mb.head + 1) % len(mb.buf)
	mb.count--
	if mb.count == 0 {
		mb.head = 0
		if mb.closed {
			// Terminal drain: no further Put is legal, recycle the ring.
			mb.releaseRing()
		} else {
			mb.ready.Store(0)
		}
	}
	return m
}

// mailboxSpin bounds the lock-free probes a blocking receiver makes before
// parking. Each probe is one atomic load plus a scheduler yield, so the
// budget costs at most a few microseconds of one core — cheaper than a
// single park/unpark round trip when the next message is already on its
// way, and negligible when the receiver genuinely has to wait. On a
// single-P runtime the yields would instead starve the netpoller (the
// producer may be a socket read that never gets scheduled), so spinning is
// disabled there.
var mailboxSpin = func() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 256
	}
	return 0
}()

// spinWait probes the ready hint briefly before the caller falls back to
// the lock + condition variable. It never consumes a message; it only makes
// the subsequent lock acquisition likely to find one.
func (mb *Mailbox) spinWait() {
	if mb.ready.Load() != 0 {
		return
	}
	for i := 0; i < mailboxSpin; i++ {
		runtime.Gosched()
		if mb.ready.Load() != 0 {
			return
		}
	}
}

// Put enqueues a message. Put on a closed or cancelled mailbox drops the
// message — releasing a blocked rendezvous sender and the payload's shared
// wire reference — and returns ErrClosed.
func (mb *Mailbox) Put(m Message) error {
	mb.mu.Lock()
	if mb.closed || mb.cancelled {
		mb.mu.Unlock()
		dropMessage(m)
		return ErrClosed
	}
	mb.reserveLocked(1)
	mb.pushLocked(m)
	mb.mu.Unlock()
	mb.cond.Signal()
	return nil
}

// PutN enqueues a batch of messages in order under one lock acquisition.
// Like Put, PutN on a closed or cancelled mailbox drops the whole batch and
// returns ErrClosed.
func (mb *Mailbox) PutN(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	mb.mu.Lock()
	if mb.closed || mb.cancelled {
		mb.mu.Unlock()
		dropMessages(ms)
		return ErrClosed
	}
	mb.reserveLocked(len(ms))
	for _, m := range ms {
		mb.pushLocked(m)
	}
	mb.mu.Unlock()
	if len(ms) == 1 {
		mb.cond.Signal()
	} else {
		mb.cond.Broadcast()
	}
	return nil
}

// Get blocks until a message is available or the mailbox is closed and
// drained.
func (mb *Mailbox) Get() (Message, bool) {
	mb.spinWait()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.count == 0 && !mb.closed && !mb.cancelled {
		mb.cond.Wait()
	}
	if mb.cancelled || mb.count == 0 {
		return Message{}, false
	}
	return mb.popLocked(), true
}

// GetBatch blocks until at least one message is available (or the mailbox
// is closed and drained) and dequeues up to len(dst) messages into dst
// under one lock acquisition, returning the number dequeued.
func (mb *Mailbox) GetBatch(dst []Message) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	mb.spinWait()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.count == 0 && !mb.closed && !mb.cancelled {
		mb.cond.Wait()
	}
	if mb.cancelled || mb.count == 0 {
		return 0, false
	}
	n := len(dst)
	if n > mb.count {
		n = mb.count
	}
	for i := 0; i < n; i++ {
		dst[i] = mb.popLocked()
	}
	return n, true
}

// TryGetBatch dequeues up to len(dst) immediately available messages
// without blocking and reports whether the mailbox is finished: cancelled,
// or closed and fully drained. n > 0 implies done == false. Consumers that
// park on their own signal (the wire transport's writer) drain with this
// instead of GetBatch.
func (mb *Mailbox) TryGetBatch(dst []Message) (n int, done bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.cancelled {
		return 0, true
	}
	if mb.count == 0 {
		return 0, mb.closed
	}
	n = len(dst)
	if n > mb.count {
		n = mb.count
	}
	for i := 0; i < n; i++ {
		dst[i] = mb.popLocked()
	}
	return n, false
}

// EmptyOpen reports, under the mailbox lock, that the queue is empty and
// still accepting messages. The wire transport's inline-send fast path uses
// it as an ordering guard: acquiring the lock here synchronizes with the
// consumer's most recent dequeue, so a caller that observes EmptyOpen and
// then observes the consumer parked knows no dequeued-but-unprocessed
// message can exist.
func (mb *Mailbox) EmptyOpen() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.count == 0 && !mb.closed && !mb.cancelled
}

// TryGet dequeues a message if one is immediately available.
func (mb *Mailbox) TryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.cancelled || mb.count == 0 {
		return Message{}, false
	}
	return mb.popLocked(), true
}

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.count
}

// Close marks the mailbox closed and wakes all blocked receivers. Queued
// messages remain receivable.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	mb.ready.Store(1)
	if mb.count == 0 {
		mb.releaseRing()
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Cancel aborts the mailbox: queued messages are dropped (releasing any
// rendezvous senders and shared payload references), further Puts are
// dropped, and receivers return !ok.
func (mb *Mailbox) Cancel() {
	mb.mu.Lock()
	mb.cancelled = true
	mb.ready.Store(1)
	for i := 0; i < mb.count; i++ {
		dropMessage(mb.buf[(mb.head+i)%len(mb.buf)])
	}
	mb.count = 0
	mb.releaseRing()
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// dropMessage discards an undeliverable message: it releases a blocked
// rendezvous sender and drops the payload's shared wire reference so pooled
// fan-out buffers still return to the arena on a cancelled run.
func dropMessage(m Message) {
	if m.done != nil {
		close(m.done)
	}
	m.Payload.Release()
}

// dropMessages discards a slice of undeliverable messages.
func dropMessages(ms []Message) {
	for _, m := range ms {
		dropMessage(m)
	}
}
