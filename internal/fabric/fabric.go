// Package fabric provides the in-process interconnect the runtime
// controllers execute on: a set of ranks with unbounded FIFO mailboxes and
// asynchronous point-to-point messaging.
//
// The fabric substitutes for the physical network of the paper's testbed.
// It preserves the properties the controllers rely on — reliable delivery
// and pairwise FIFO ordering between any sender/receiver pair — while
// accounting message and byte counts for the performance studies. A
// blocking (rendezvous) mode models the synchronous communication style of
// the hand-tuned "Original MPI" baseline of Fig. 6.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Message is one point-to-point transfer between ranks: a payload travelling
// from producing task Src toward consuming task Dest.
type Message struct {
	From    int
	To      int
	Src     core.TaskId
	Dest    core.TaskId
	Payload core.Payload

	done chan struct{} // rendezvous signal in blocking mode
}

// Stats aggregates traffic counters. All fields are totals since fabric
// creation.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Fabric connects n ranks with unbounded mailboxes.
type Fabric struct {
	boxes    []*Mailbox
	blocking bool

	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New returns a fabric with n ranks and asynchronous sends: Send enqueues
// and returns immediately, like MPI_Isend against a posted receive.
func New(n int) *Fabric {
	if n < 1 {
		panic("fabric: need at least one rank")
	}
	f := &Fabric{boxes: make([]*Mailbox, n)}
	for i := range f.boxes {
		f.boxes[i] = NewMailbox()
	}
	return f
}

// NewBlocking returns a fabric whose Send performs a rendezvous: the sender
// blocks until the receiver has dequeued the message, modeling blocking
// MPI_Send of large messages.
func NewBlocking(n int) *Fabric {
	f := New(n)
	f.blocking = true
	return f
}

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return len(f.boxes) }

// Send delivers m to rank m.To. In asynchronous mode it never blocks; in
// blocking mode it waits for the receiver to dequeue the message.
func (f *Fabric) Send(m Message) error {
	if m.To < 0 || m.To >= len(f.boxes) {
		return fmt.Errorf("fabric: send to unknown rank %d", m.To)
	}
	if m.From != m.To {
		// Self-sends are in-memory hand-offs and do not count as traffic.
		f.messages.Add(1)
		f.bytes.Add(uint64(m.Payload.Size()))
	}
	if f.blocking && m.From != m.To {
		// Rendezvous, except for self-sends: local delivery is a memory
		// hand-off, not a network transfer, even in blocking mode.
		m.done = make(chan struct{})
		f.boxes[m.To].Put(m)
		<-m.done
		return nil
	}
	f.boxes[m.To].Put(m)
	return nil
}

// Recv blocks until a message for the rank arrives or its mailbox is
// closed; ok is false after close with an empty queue.
func (f *Fabric) Recv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].Get()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// TryRecv dequeues a message if one is immediately available.
func (f *Fabric) TryRecv(rank int) (Message, bool) {
	m, ok := f.boxes[rank].TryGet()
	if ok && m.done != nil {
		close(m.done)
	}
	return m, ok
}

// Close closes the mailbox of a rank, releasing blocked receivers after the
// queue drains.
func (f *Fabric) Close(rank int) { f.boxes[rank].Close() }

// Cancel aborts all communication: every mailbox stops accepting and
// delivering messages, all blocked receivers return !ok and blocked
// rendezvous senders are released. Controllers call it when a task fails so
// every rank can unwind.
func (f *Fabric) Cancel() {
	for _, mb := range f.boxes {
		mb.Cancel()
	}
}

// Snapshot returns the traffic totals so far.
func (f *Fabric) Snapshot() Stats {
	return Stats{Messages: f.messages.Load(), Bytes: f.bytes.Load()}
}

// Mailbox is an unbounded FIFO queue with blocking receive. A single lock
// protects the queue, so delivery order is the order Put calls complete,
// which preserves pairwise FIFO for any sender.
type Mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Message
	closed    bool
	cancelled bool
}

// NewMailbox returns an empty, open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// Put enqueues a message. Put on a closed mailbox panics: controllers close
// a rank's mailbox only after every producer for that rank has finished.
func (mb *Mailbox) Put(m Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.cancelled {
		// Drop silently, but release a rendezvous sender.
		if m.done != nil {
			close(m.done)
		}
		return
	}
	if mb.closed {
		panic("fabric: Put on closed mailbox")
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
}

// Get blocks until a message is available or the mailbox is closed and
// drained.
func (mb *Mailbox) Get() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed && !mb.cancelled {
		mb.cond.Wait()
	}
	if mb.cancelled || len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, true
}

// TryGet dequeues a message if one is immediately available.
func (mb *Mailbox) TryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.cancelled || len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, true
}

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// Close marks the mailbox closed and wakes all blocked receivers. Queued
// messages remain receivable.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// Cancel aborts the mailbox: queued messages are dropped (releasing any
// rendezvous senders), further Puts are dropped, and receivers return !ok.
func (mb *Mailbox) Cancel() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.cancelled = true
	for _, m := range mb.queue {
		if m.done != nil {
			close(m.done)
		}
	}
	mb.queue = nil
	mb.cond.Broadcast()
}
