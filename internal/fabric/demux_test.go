package fabric

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// TestDemuxRoutesByRun drives two interleaved runs over one fabric and
// checks each run's view sees exactly its own traffic, in sender order.
func TestDemuxRoutesByRun(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	a, err := d.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v := a
		if i%2 == 1 {
			v = b
		}
		if err := v.Send(Message{From: 0, To: 1, Src: core.TaskId(i), Payload: core.Buffer([]byte{byte(i)})}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok := a.Recv(1)
		if !ok {
			t.Fatal("run 1 mailbox ended early")
		}
		if want := core.TaskId(2 * i); m.Src != want {
			t.Fatalf("run 1 message %d: src=%d want %d", i, m.Src, want)
		}
		if m.Run != 1 {
			t.Fatalf("run 1 message carries run id %d", m.Run)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok := b.Recv(1)
		if !ok {
			t.Fatal("run 2 mailbox ended early")
		}
		if want := core.TaskId(2*i + 1); m.Src != want {
			t.Fatalf("run 2 message %d: src=%d want %d", i, m.Src, want)
		}
	}
}

// TestDemuxCancelIsolation cancels one run and checks the other keeps
// flowing over the shared transport.
func TestDemuxCancelIsolation(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	a, _ := d.Open(1)
	b, _ := d.Open(2)

	a.Cancel()
	if err := a.Send(Message{From: 0, To: 1, Payload: core.Buffer([]byte{1})}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on cancelled run: err=%v, want ErrClosed", err)
	}
	if _, ok := a.Recv(1); ok {
		t.Fatal("recv on cancelled run should report !ok")
	}

	if err := b.Send(Message{From: 0, To: 1, Src: 42, Payload: core.Buffer([]byte{2})}); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv(1)
	if !ok || m.Src != 42 {
		t.Fatalf("surviving run lost its message: %v %v", m, ok)
	}
}

// TestDemuxStrayDropped sends to a released run and checks the message is
// dropped and counted rather than delivered or leaked.
func TestDemuxStrayDropped(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	v, _ := d.Open(1)
	d.Release(1)
	// Late message from a peer that has not yet heard the run finished.
	_ = v.Send(Message{From: 0, To: 1, Payload: core.Buffer([]byte{9})})
	deadline := time.Now().Add(2 * time.Second)
	for d.Stray() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stray message never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := d.Runs(); got != 0 {
		t.Fatalf("Runs() = %d after release, want 0", got)
	}
}

// TestDemuxStrayAfterCancelRelease covers the second stray branch: the
// frame arrives while the run is still registered but its mailbox is
// already cancelled (a run being torn down mid-cancel), then again after
// Release removes it entirely. Both must count as stray, not deliver, and
// not disturb the shared transport.
func TestDemuxStrayAfterCancelRelease(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	v, _ := d.Open(1)
	v.Cancel() // mailboxes cancelled, run still registered: Put fails
	_ = f.Send(Message{From: 0, To: 1, Run: 1, Payload: core.Buffer([]byte{1})})
	waitStray := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for d.Stray() < want {
			if time.Now().After(deadline) {
				t.Fatalf("Stray() = %d, want %d", d.Stray(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitStray(1)
	d.Release(1) // run removed entirely: unknown-run branch
	_ = f.Send(Message{From: 0, To: 1, Run: 1, Payload: core.Buffer([]byte{2})})
	waitStray(2)
	if got := d.Runs(); got != 0 {
		t.Fatalf("Runs() = %d after release, want 0", got)
	}
}

// TestDemuxIngestAllocs pins the steady-state allocation count of the
// demux ingest path — send through a run view, pump routing, mailbox
// delivery, receive — so a change that adds per-message heap traffic on
// the multiplexed hot path fails loudly.
func TestDemuxIngestAllocs(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	v, err := d.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	payload := core.Buffer(make([]byte, 64))
	op := func() {
		if err := v.Send(Message{From: 0, To: 1, Payload: payload}); err != nil {
			t.Error(err)
			return
		}
		if _, ok := v.Recv(1); !ok {
			t.Error("pump ended mid-measurement")
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	// Measured 0 allocs per message; the bound leaves room for runtime
	// noise charged to the measurement window, not for a real regression.
	if avg := testing.AllocsPerRun(512, op); avg > 2 {
		t.Errorf("demux ingest averaged %.1f allocs per message, want <= 2", avg)
	}
}

// TestDemuxOpenErrors covers the reserved id and duplicate id cases.
func TestDemuxOpenErrors(t *testing.T) {
	f := New(1)
	d := NewDemux(f, 0)
	if _, err := d.Open(0); err == nil {
		t.Error("Open(0) should reject the reserved unmultiplexed id")
	}
	if _, err := d.Open(7); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open(7); err == nil {
		t.Error("duplicate Open should fail")
	}
	d.Close()
	if _, err := d.Open(8); err == nil {
		t.Error("Open on a closed demux should fail")
	}
}

// TestDemuxUnderlyingCloseEndsRuns closes the shared transport's mailboxes
// and checks every run's receivers unwind after draining.
func TestDemuxUnderlyingCloseEndsRuns(t *testing.T) {
	f := New(1)
	d := NewDemux(f, 0)
	v, _ := d.Open(1)
	if err := v.Send(Message{From: 0, To: 0, Src: 5, Payload: core.Buffer([]byte{5})}); err != nil {
		t.Fatal(err)
	}
	f.Close(0)
	d.Wait()
	m, ok := v.Recv(0)
	if !ok || m.Src != 5 {
		t.Fatalf("queued message lost on close: %v %v", m, ok)
	}
	if _, ok := v.Recv(0); ok {
		t.Fatal("recv after drain on closed transport should report !ok")
	}
}

// TestDemuxConcurrentRuns hammers many runs concurrently over one shared
// fabric, each with its own sender and receiver, and checks per-run
// delivery is complete and isolated. Run with -race.
func TestDemuxConcurrentRuns(t *testing.T) {
	const runs, msgs = 16, 200
	f := New(2)
	d := NewDemux(f, 0, 1)
	var wg sync.WaitGroup
	errs := make(chan error, runs)
	for r := 1; r <= runs; r++ {
		v, err := d.Open(uint64(r))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(v *RunTransport) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := v.Send(Message{From: 0, To: 1, Src: core.TaskId(i), Payload: core.Buffer([]byte{byte(i)})}); err != nil {
					errs <- err
					return
				}
			}
		}(v)
		go func(v *RunTransport, id uint64) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				m, ok := v.Recv(1)
				if !ok {
					errs <- fmt.Errorf("run %d: mailbox ended at message %d", id, i)
					return
				}
				if m.Src != core.TaskId(i) || m.Run != id {
					errs <- fmt.Errorf("run %d: got src=%d run=%d at index %d", id, m.Src, m.Run, i)
					return
				}
			}
		}(v, uint64(r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if d.Stray() != 0 {
		t.Fatalf("stray count %d on clean interleaving", d.Stray())
	}
}

// TestDemuxSnapshotPerRun checks traffic accounting is per run view.
func TestDemuxSnapshotPerRun(t *testing.T) {
	f := New(2)
	d := NewDemux(f, 0, 1)
	a, _ := d.Open(1)
	b, _ := d.Open(2)
	for i := 0; i < 3; i++ {
		if err := a.Send(Message{From: 0, To: 1, Payload: core.Buffer(make([]byte, 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(Message{From: 0, To: 1, Payload: core.Buffer(make([]byte, 4))}); err != nil {
		t.Fatal(err)
	}
	if s := a.Snapshot(); s.Messages != 3 || s.Bytes != 30 {
		t.Fatalf("run 1 stats = %+v", s)
	}
	if s := b.Snapshot(); s.Messages != 1 || s.Bytes != 4 {
		t.Fatalf("run 2 stats = %+v", s)
	}
}
