// Run multiplexing: many logical graph runs sharing one warm transport.
//
// A one-shot execution builds a fabric, runs one graph and tears the fabric
// down. The streaming service instead keeps a single transport (in-memory
// fabric or wire mesh) resident and attaches a continuous stream of graph
// instances to it. Demux is the layer that makes that safe: every run gets
// a RunTransport view that stamps its RunID onto outgoing messages, and a
// pump goroutine per locally receivable rank routes incoming messages to
// the owning run's private mailboxes — so concurrent runs never see each
// other's traffic, and cancelling one run never disturbs the others or the
// shared transport underneath.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Demux multiplexes many logical runs over one underlying Transport. Each
// run is opened with Open, yielding a RunTransport that implements
// Transport for that run alone: sends are stamped with the run id, and
// receives are served from per-run mailboxes fed by the demux pumps.
//
// The demux does not own the underlying transport: closing the demux stops
// routing but leaves the transport connected, and a transport-level failure
// (lost peer, cancelled fabric) is propagated to every open run.
type Demux struct {
	tr    Transport
	local []int // locally receivable ranks, pumped by this demux

	mu     sync.Mutex
	runs   map[uint64]*RunTransport
	closed bool
	failed bool // underlying transport can no longer deliver

	stray atomic.Uint64 // dropped messages addressed to unknown runs
	pumps sync.WaitGroup
}

// NewDemux wraps tr in a run demultiplexer pumping the given locally
// receivable ranks (for the in-memory fabric: every rank; for a wire
// fabric: its local rank). The pumps start immediately; the caller must not
// Recv on tr directly afterwards.
func NewDemux(tr Transport, localRanks ...int) *Demux {
	d := &Demux{
		tr:    tr,
		local: append([]int(nil), localRanks...),
		runs:  make(map[uint64]*RunTransport),
	}
	for _, r := range d.local {
		d.pumps.Add(1)
		go d.pump(r)
	}
	return d
}

// Open registers a run and returns its private transport view. The id must
// be unique among open runs and non-zero (zero marks unmultiplexed
// traffic). Open installs the run's mailboxes for every local rank before
// returning, so a message routed to the run can never precede its view —
// provided the caller opens the run before starting the rank loops that
// make its peers send.
func (d *Demux) Open(id uint64) (*RunTransport, error) {
	if id == 0 {
		return nil, fmt.Errorf("fabric: run id 0 is reserved for unmultiplexed traffic")
	}
	v := &RunTransport{d: d, id: id, boxes: make([]*Mailbox, d.tr.Ranks())}
	for _, r := range d.local {
		v.boxes[r] = NewMailbox()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("fabric: demux closed")
	}
	if _, dup := d.runs[id]; dup {
		return nil, fmt.Errorf("fabric: run %d already open", id)
	}
	d.runs[id] = v
	if d.failed {
		// The transport died before this run attached; fail it immediately
		// so its rank loops unwind instead of blocking forever.
		for _, mb := range v.boxes {
			if mb != nil {
				mb.Cancel()
			}
		}
	}
	return v, nil
}

// Release detaches a finished run: its mailboxes are cancelled (dropping
// any queued payload references) and late messages for the id are counted
// as stray and dropped. Safe to call for ids never opened.
func (d *Demux) Release(id uint64) {
	d.mu.Lock()
	v := d.runs[id]
	delete(d.runs, id)
	d.mu.Unlock()
	if v != nil {
		for _, mb := range v.boxes {
			if mb != nil {
				mb.Cancel()
			}
		}
	}
}

// Runs returns the number of currently open runs.
func (d *Demux) Runs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.runs)
}

// Stray returns how many messages addressed to unknown runs were dropped —
// late traffic from released runs, or a routing bug.
func (d *Demux) Stray() uint64 { return d.stray.Load() }

// Close stops accepting new runs and fails every open run. It does not
// cancel the underlying transport (the demux does not own it); pumps exit
// when the transport stops delivering. Idempotent.
func (d *Demux) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	views := make([]*RunTransport, 0, len(d.runs))
	for _, v := range d.runs {
		views = append(views, v)
	}
	d.runs = make(map[uint64]*RunTransport)
	d.mu.Unlock()
	for _, v := range views {
		for _, mb := range v.boxes {
			if mb != nil {
				mb.Cancel()
			}
		}
	}
}

// Wait blocks until every pump has exited — after the underlying transport
// stopped delivering (Shutdown, Cancel or failure).
func (d *Demux) Wait() { d.pumps.Wait() }

// pump drains one local rank of the underlying transport and routes each
// message to its run's mailbox. When delivery becomes impossible the pump
// propagates the end to every open run: a transport failure cancels run
// mailboxes (receivers unwind and surface Err), a clean close closes them
// (queued messages remain receivable).
func (d *Demux) pump(rank int) {
	defer d.pumps.Done()
	batch := make([]Message, 64)
	for {
		n, ok := d.tr.RecvBatch(rank, batch)
		if !ok {
			d.endRank(rank)
			return
		}
		for i := 0; i < n; i++ {
			m := batch[i]
			batch[i] = Message{}
			d.mu.Lock()
			v := d.runs[m.Run]
			d.mu.Unlock()
			if v == nil || v.boxes[rank] == nil {
				d.stray.Add(1)
				dropMessage(m)
				continue
			}
			if err := v.boxes[rank].Put(m); err != nil {
				// The run was cancelled or released concurrently; Put already
				// dropped the payload reference.
				d.stray.Add(1)
			}
		}
	}
}

// endRank ends rank's delivery for every open run, mirroring how the
// underlying transport ended: cancelled/failed transports cancel (receivers
// report !ok immediately), a cleanly closed mailbox closes (drain first).
func (d *Demux) endRank(rank int) {
	failed := d.tr.Err() != nil
	d.mu.Lock()
	if failed {
		d.failed = true
	}
	views := make([]*RunTransport, 0, len(d.runs))
	for _, v := range d.runs {
		views = append(views, v)
	}
	d.mu.Unlock()
	for _, v := range views {
		if mb := v.boxes[rank]; mb != nil {
			if failed {
				mb.Cancel()
			} else {
				mb.Close()
			}
		}
	}
}

// RunTransport is one run's private view of a multiplexed transport. It
// implements Transport: sends stamp the run id and ride the shared
// transport; receives come from the run's own mailboxes. Cancel aborts only
// this run.
type RunTransport struct {
	d     *Demux
	id    uint64
	boxes []*Mailbox // indexed by rank; non-nil only at local ranks

	cancelled atomic.Bool
	messages  atomic.Uint64 // per-run egress traffic
	bytes     atomic.Uint64
}

// ID returns the run id this view stamps onto its messages.
func (v *RunTransport) ID() uint64 { return v.id }

// Ranks implements Transport.
func (v *RunTransport) Ranks() int { return v.d.tr.Ranks() }

// Send implements Transport, stamping the run id.
func (v *RunTransport) Send(m Message) error {
	if v.cancelled.Load() {
		dropMessage(m)
		return fmt.Errorf("fabric: run %d: %w", v.id, ErrClosed)
	}
	m.Run = v.id
	size := uint64(m.Payload.Size())
	if err := v.d.tr.Send(m); err != nil {
		return err
	}
	v.account(1, size)
	return nil
}

// SendN implements Transport, stamping the run id on every message.
func (v *RunTransport) SendN(ms []Message) error {
	if v.cancelled.Load() {
		dropMessages(ms)
		return fmt.Errorf("fabric: run %d: %w", v.id, ErrClosed)
	}
	var bytes uint64
	for i := range ms {
		ms[i].Run = v.id
		bytes += uint64(ms[i].Payload.Size())
	}
	if err := v.d.tr.SendN(ms); err != nil {
		return err
	}
	v.account(uint64(len(ms)), bytes)
	return nil
}

func (v *RunTransport) account(msgs, bytes uint64) {
	v.messages.Add(msgs)
	v.bytes.Add(bytes)
}

// Recv implements Transport for the run's locally receivable ranks.
func (v *RunTransport) Recv(rank int) (Message, bool) {
	return v.box(rank).Get()
}

// RecvBatch implements Transport.
func (v *RunTransport) RecvBatch(rank int, dst []Message) (int, bool) {
	return v.box(rank).GetBatch(dst)
}

func (v *RunTransport) box(rank int) *Mailbox {
	if rank < 0 || rank >= len(v.boxes) || v.boxes[rank] == nil {
		panic(fmt.Sprintf("fabric: run %d: receive on rank %d, which this demux does not pump", v.id, rank))
	}
	return v.boxes[rank]
}

// Close implements Transport: it closes the run's mailbox at rank (queued
// messages remain receivable). Non-local ranks are a no-op — their
// mailboxes live behind the shared transport in another process.
func (v *RunTransport) Close(rank int) {
	if rank >= 0 && rank < len(v.boxes) && v.boxes[rank] != nil {
		v.boxes[rank].Close()
	}
}

// Cancel implements Transport — for this run only. The shared transport
// and every other run stay live; the run's own receivers unwind, and its
// subsequent sends fail with ErrClosed.
func (v *RunTransport) Cancel() {
	v.cancelled.Store(true)
	for _, mb := range v.boxes {
		if mb != nil {
			mb.Cancel()
		}
	}
}

// Err implements Transport: the shared transport's first failure. A
// run-level Cancel is controller-initiated and reports nil, exactly like
// the in-memory fabric.
func (v *RunTransport) Err() error { return v.d.tr.Err() }

// Snapshot implements Transport with per-run egress traffic totals.
func (v *RunTransport) Snapshot() Stats {
	return Stats{Messages: v.messages.Load(), Bytes: v.bytes.Load()}
}

var _ Transport = (*RunTransport)(nil)
