// Work-stealing executor: the shared worker pool the MPI controller's
// ranks dispatch ready tasks into. Each rank owns a local priority deque;
// a fixed budget of workers is homed round-robin over the ranks, and an
// idle worker whose home deque is empty steals the most critical item from
// another rank's deque. Wakeups are steal-aware: a submit first wakes a
// worker parked on the item's home rank, and only if none is parked there
// (and stealing is enabled) wakes a worker parked elsewhere — so a wakeup
// is never wasted on a worker that cannot reach the item.
package fabric

import "sync"

// PoolOptions configures a work-stealing pool.
type PoolOptions struct {
	// FIFO disables priority ordering: items pop in submission order, the
	// pre-scheduler dispatch discipline (ablation baseline).
	FIFO bool
	// NoSteal pins workers to their home deque. Every home that will
	// receive work must then have at least one homed worker, or its items
	// never run.
	NoSteal bool
}

// poolItem is one queued unit of work.
type poolItem struct {
	pri int64  // larger runs first
	seq uint64 // submission order; tie-break and FIFO order
	run func()
}

// itemQueue is a deterministic priority deque: max-priority first, ties in
// submission order. In FIFO mode priority is ignored and items pop in
// submission order.
type itemQueue struct {
	items []poolItem
	fifo  bool
}

func (q *itemQueue) less(i, j int) bool {
	if !q.fifo && q.items[i].pri != q.items[j].pri {
		return q.items[i].pri > q.items[j].pri
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *itemQueue) push(it poolItem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *itemQueue) pop() (poolItem, bool) {
	n := len(q.items)
	if n == 0 {
		return poolItem{}, false
	}
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = poolItem{} // drop the closure reference
	q.items = q.items[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
	return top, true
}

// Pool executes submitted work on a fixed set of worker goroutines over
// per-home priority deques. It is the execution half of the MPI
// controller's scheduler; the deques hold ready tasks, homes correspond to
// ranks.
type Pool struct {
	mu     sync.Mutex
	queues []itemQueue
	conds  []*sync.Cond // one per home; workers park on their home's cond
	idle   []int        // parked workers per home
	parked int          // total parked workers
	queued int          // items queued across all homes
	seq    uint64
	steal  bool
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts a pool with one deque per home and one worker per entry of
// homes (homes[i] is worker i's home deque). Workers run until Close.
func NewPool(homeCount int, homes []int, opt PoolOptions) *Pool {
	if homeCount < 1 {
		panic("fabric: pool needs at least one home")
	}
	p := &Pool{
		queues: make([]itemQueue, homeCount),
		conds:  make([]*sync.Cond, homeCount),
		idle:   make([]int, homeCount),
		steal:  !opt.NoSteal,
	}
	for i := range p.queues {
		p.queues[i].fifo = opt.FIFO
		p.conds[i] = sync.NewCond(&p.mu)
	}
	p.wg.Add(len(homes))
	for _, h := range homes {
		if h < 0 || h >= homeCount {
			panic("fabric: worker homed outside the pool")
		}
		go p.worker(h)
	}
	return p
}

// RoundRobinHomes returns worker home assignments distributing n workers
// over homeCount homes in round robin — every home gets a worker before any
// home gets a second.
func RoundRobinHomes(n, homeCount int) []int {
	homes := make([]int, n)
	for i := range homes {
		homes[i] = i % homeCount
	}
	return homes
}

// Submit enqueues work on a home's deque. Larger pri runs first (ignored in
// FIFO mode); equal priorities run in submission order. Submit never
// blocks. Submitting to a closed pool still runs the item (the pool drains
// before its workers exit), but new submissions racing Close are the
// caller's responsibility to avoid.
func (p *Pool) Submit(home int, pri int64, run func()) {
	p.mu.Lock()
	p.seq++
	p.queues[home].push(poolItem{pri: pri, seq: p.seq, run: run})
	p.queued++
	// Steal-aware wakeup: a worker parked on this home can always take the
	// item; a worker parked elsewhere only helps when stealing is on.
	switch {
	case p.idle[home] > 0:
		p.conds[home].Signal()
	case p.steal && p.parked > 0:
		for h := range p.idle {
			if p.idle[h] > 0 {
				p.conds[h].Signal()
				break
			}
		}
	}
	p.mu.Unlock()
}

// popLocked takes the next item for a worker homed at home: its own deque
// first, then (with stealing) the most critical item of the first non-empty
// deque scanning from home+1.
func (p *Pool) popLocked(home int) (poolItem, bool) {
	if it, ok := p.queues[home].pop(); ok {
		return it, true
	}
	if p.steal {
		n := len(p.queues)
		for d := 1; d < n; d++ {
			if it, ok := p.queues[(home+d)%n].pop(); ok {
				return it, true
			}
		}
	}
	return poolItem{}, false
}

func (p *Pool) worker(home int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if it, ok := p.popLocked(home); ok {
			p.queued--
			p.mu.Unlock()
			it.run()
			p.mu.Lock()
			continue
		}
		if p.closed {
			break
		}
		p.idle[home]++
		p.parked++
		p.conds[home].Wait()
		p.idle[home]--
		p.parked--
	}
	p.mu.Unlock()
}

// Queued returns the number of items currently waiting in the deques.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Close stops the pool: workers drain the work they can reach (their home
// deque, plus anything stealable) and exit. Close blocks until every worker
// has exited; it is safe to call once, from a non-worker goroutine.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	for _, c := range p.conds {
		c.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
