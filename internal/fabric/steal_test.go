package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runOrder submits items while the pool's single worker is held at a
// barrier, then releases it and returns the order the items ran in.
func runOrder(t *testing.T, opt PoolOptions, submit func(p *Pool, record func(v int) func())) []int {
	t.Helper()
	p := NewPool(1, []int{0}, opt)
	var mu sync.Mutex
	var order []int
	record := func(v int) func() {
		return func() {
			mu.Lock()
			order = append(order, v)
			mu.Unlock()
		}
	}
	// Occupy the worker so every subsequent submit queues up and the pop
	// order is decided by the queue, not by submission racing execution.
	hold := make(chan struct{})
	started := make(chan struct{})
	p.Submit(0, 1<<40, func() { close(started); <-hold })
	<-started

	submit(p, record)
	for p.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(hold)
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	return order
}

func TestPoolPriorityOrder(t *testing.T) {
	order := runOrder(t, PoolOptions{}, func(p *Pool, record func(int) func()) {
		p.Submit(0, 1, record(1))
		p.Submit(0, 3, record(3))
		p.Submit(0, 2, record(2))
		p.Submit(0, 3, record(30)) // same priority: after the first 3
	})
	want := []int{3, 30, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestPoolFIFOOrder(t *testing.T) {
	order := runOrder(t, PoolOptions{FIFO: true}, func(p *Pool, record func(int) func()) {
		p.Submit(0, 1, record(1))
		p.Submit(0, 3, record(3))
		p.Submit(0, 2, record(2))
	})
	want := []int{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order = %v, want %v", order, want)
		}
	}
}

// TestPoolStealing parks one item on a home with no worker: only stealing
// gets it executed.
func TestPoolStealing(t *testing.T) {
	p := NewPool(2, []int{0}, PoolOptions{}) // one worker, homed at 0
	var ran atomic.Bool
	done := make(chan struct{})
	p.Submit(1, 0, func() { ran.Store(true); close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker homed at 0 never stole the item queued at home 1")
	}
	p.Close()
	if !ran.Load() {
		t.Fatal("item did not run")
	}
}

// TestPoolNoStealPins verifies the ablation: with stealing off, a worker
// homed at 0 must not touch home 1's deque.
func TestPoolNoStealPins(t *testing.T) {
	p := NewPool(2, []int{0, 1}, PoolOptions{NoSteal: true})
	var home0Worker atomic.Bool
	block1 := make(chan struct{})
	started1 := make(chan struct{})
	// Occupy home 1's worker.
	p.Submit(1, 0, func() { close(started1); <-block1 })
	<-started1
	// Queue another item on home 1: home 0's idle worker must leave it.
	ran := make(chan struct{})
	p.Submit(1, 0, func() { home0Worker.Store(false); close(ran) })
	select {
	case <-ran:
		t.Fatal("home-1 item ran while home 1's worker was blocked: stealing not disabled")
	case <-time.After(50 * time.Millisecond):
	}
	close(block1)
	<-ran // home 1's worker picks it up after unblocking
	p.Close()
}

func TestPoolManyItemsAllRun(t *testing.T) {
	const items = 2000
	p := NewPool(4, RoundRobinHomes(3, 4), PoolOptions{})
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(items)
	for i := 0; i < items; i++ {
		p.Submit(i%4, int64(i%7), func() { count.Add(1); wg.Done() })
	}
	wg.Wait()
	p.Close()
	if count.Load() != items {
		t.Fatalf("ran %d of %d items", count.Load(), items)
	}
	if q := p.Queued(); q != 0 {
		t.Fatalf("%d items still queued after drain", q)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(1, []int{0}, PoolOptions{})
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(0, 0, func() { count.Add(1) })
	}
	p.Close() // workers drain reachable work before exiting
	if count.Load() != 100 {
		t.Fatalf("Close drained %d of 100 items", count.Load())
	}
}

func TestRoundRobinHomes(t *testing.T) {
	got := RoundRobinHomes(5, 3)
	want := []int{0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("homes = %v, want %v", got, want)
		}
	}
}
