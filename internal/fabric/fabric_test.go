package fabric

import (
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestSendRecvFIFO(t *testing.T) {
	f := New(2)
	for i := 0; i < 10; i++ {
		if err := f.Send(Message{From: 0, To: 1, Src: core.TaskId(i), Payload: core.Buffer([]byte{byte(i)})}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok := f.Recv(1)
		if !ok {
			t.Fatal("mailbox closed early")
		}
		if m.Src != core.TaskId(i) {
			t.Fatalf("message %d out of order: src=%d", i, m.Src)
		}
	}
}

func TestSendUnknownRank(t *testing.T) {
	f := New(2)
	if err := f.Send(Message{To: 5}); err == nil {
		t.Error("send to unknown rank should fail")
	}
	if err := f.Send(Message{To: -1}); err == nil {
		t.Error("send to negative rank should fail")
	}
}

func TestCloseReleasesReceiver(t *testing.T) {
	f := New(1)
	done := make(chan bool)
	go func() {
		_, ok := f.Recv(0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close(0)
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv on closed empty mailbox should report !ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

func TestCloseDrainsQueuedMessages(t *testing.T) {
	f := New(1)
	f.Send(Message{To: 0, Src: 7})
	f.Close(0)
	m, ok := f.Recv(0)
	if !ok || m.Src != 7 {
		t.Errorf("queued message lost on close: %v %v", m, ok)
	}
	if _, ok := f.Recv(0); ok {
		t.Error("second Recv should report closed")
	}
}

func TestTryRecv(t *testing.T) {
	f := New(1)
	if _, ok := f.TryRecv(0); ok {
		t.Error("TryRecv on empty mailbox should fail")
	}
	f.Send(Message{To: 0, Src: 3})
	m, ok := f.TryRecv(0)
	if !ok || m.Src != 3 {
		t.Errorf("TryRecv = %v, %v", m, ok)
	}
}

func TestStatsCountMessagesAndBytes(t *testing.T) {
	f := New(2)
	f.Send(Message{To: 1, Payload: core.Buffer(make([]byte, 100))})
	f.Send(Message{To: 1, Payload: core.Buffer(make([]byte, 28))})
	s := f.Snapshot()
	if s.Messages != 2 || s.Bytes != 128 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBlockingSendRendezvous(t *testing.T) {
	f := NewBlocking(2)
	var sendDone, recvStarted sync.WaitGroup
	sendDone.Add(1)
	recvStarted.Add(1)
	sent := false
	var mu sync.Mutex
	go func() {
		defer sendDone.Done()
		f.Send(Message{From: 0, To: 1, Src: 1})
		mu.Lock()
		sent = true
		mu.Unlock()
	}()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if sent {
		mu.Unlock()
		t.Fatal("blocking send completed before receive")
	}
	mu.Unlock()
	if _, ok := f.Recv(1); !ok {
		t.Fatal("Recv failed")
	}
	sendDone.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !sent {
		t.Error("send did not complete after receive")
	}
	recvStarted.Done()
}

func TestConcurrentSendersAllDelivered(t *testing.T) {
	f := New(4)
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				f.Send(Message{From: s, To: 3, Src: core.TaskId(s*perSender + i)})
			}
		}(s)
	}
	go func() { wg.Wait(); f.Close(3) }()

	seen := make(map[core.TaskId]bool)
	lastPerSender := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		m, ok := f.Recv(3)
		if !ok {
			break
		}
		if seen[m.Src] {
			t.Fatalf("duplicate message %d", m.Src)
		}
		seen[m.Src] = true
		// Pairwise FIFO: per sender, sequence numbers ascend.
		idx := int(m.Src) % perSender
		if idx <= lastPerSender[m.From] {
			t.Fatalf("sender %d out of order: %d after %d", m.From, idx, lastPerSender[m.From])
		}
		lastPerSender[m.From] = idx
	}
	if len(seen) != 3*perSender {
		t.Errorf("delivered %d, want %d", len(seen), 3*perSender)
	}
}

func TestMailboxLenAndPutAfterClosePanics(t *testing.T) {
	mb := NewMailbox()
	mb.Put(Message{})
	if mb.Len() != 1 {
		t.Errorf("Len = %d", mb.Len())
	}
	mb.Close()
	defer func() {
		if recover() == nil {
			t.Error("Put after Close should panic")
		}
	}()
	mb.Put(Message{})
}

func TestNewPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
