package fabric

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestSendRecvFIFO(t *testing.T) {
	f := New(2)
	for i := 0; i < 10; i++ {
		if err := f.Send(Message{From: 0, To: 1, Src: core.TaskId(i), Payload: core.Buffer([]byte{byte(i)})}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok := f.Recv(1)
		if !ok {
			t.Fatal("mailbox closed early")
		}
		if m.Src != core.TaskId(i) {
			t.Fatalf("message %d out of order: src=%d", i, m.Src)
		}
	}
}

func TestSendUnknownRank(t *testing.T) {
	f := New(2)
	if err := f.Send(Message{To: 5}); err == nil {
		t.Error("send to unknown rank should fail")
	}
	if err := f.Send(Message{To: -1}); err == nil {
		t.Error("send to negative rank should fail")
	}
}

func TestCloseReleasesReceiver(t *testing.T) {
	f := New(1)
	done := make(chan bool)
	go func() {
		_, ok := f.Recv(0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close(0)
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv on closed empty mailbox should report !ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

func TestCloseDrainsQueuedMessages(t *testing.T) {
	f := New(1)
	f.Send(Message{To: 0, Src: 7})
	f.Close(0)
	m, ok := f.Recv(0)
	if !ok || m.Src != 7 {
		t.Errorf("queued message lost on close: %v %v", m, ok)
	}
	if _, ok := f.Recv(0); ok {
		t.Error("second Recv should report closed")
	}
}

func TestTryRecv(t *testing.T) {
	f := New(1)
	if _, ok := f.TryRecv(0); ok {
		t.Error("TryRecv on empty mailbox should fail")
	}
	f.Send(Message{To: 0, Src: 3})
	m, ok := f.TryRecv(0)
	if !ok || m.Src != 3 {
		t.Errorf("TryRecv = %v, %v", m, ok)
	}
}

func TestStatsCountMessagesAndBytes(t *testing.T) {
	f := New(2)
	f.Send(Message{To: 1, Payload: core.Buffer(make([]byte, 100))})
	f.Send(Message{To: 1, Payload: core.Buffer(make([]byte, 28))})
	s := f.Snapshot()
	if s.Messages != 2 || s.Bytes != 128 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBlockingSendRendezvous(t *testing.T) {
	f := NewBlocking(2)
	var sendDone, recvStarted sync.WaitGroup
	sendDone.Add(1)
	recvStarted.Add(1)
	sent := false
	var mu sync.Mutex
	go func() {
		defer sendDone.Done()
		f.Send(Message{From: 0, To: 1, Src: 1})
		mu.Lock()
		sent = true
		mu.Unlock()
	}()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if sent {
		mu.Unlock()
		t.Fatal("blocking send completed before receive")
	}
	mu.Unlock()
	if _, ok := f.Recv(1); !ok {
		t.Fatal("Recv failed")
	}
	sendDone.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !sent {
		t.Error("send did not complete after receive")
	}
	recvStarted.Done()
}

func TestConcurrentSendersAllDelivered(t *testing.T) {
	f := New(4)
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				f.Send(Message{From: s, To: 3, Src: core.TaskId(s*perSender + i)})
			}
		}(s)
	}
	go func() { wg.Wait(); f.Close(3) }()

	seen := make(map[core.TaskId]bool)
	lastPerSender := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		m, ok := f.Recv(3)
		if !ok {
			break
		}
		if seen[m.Src] {
			t.Fatalf("duplicate message %d", m.Src)
		}
		seen[m.Src] = true
		// Pairwise FIFO: per sender, sequence numbers ascend.
		idx := int(m.Src) % perSender
		if idx <= lastPerSender[m.From] {
			t.Fatalf("sender %d out of order: %d after %d", m.From, idx, lastPerSender[m.From])
		}
		lastPerSender[m.From] = idx
	}
	if len(seen) != 3*perSender {
		t.Errorf("delivered %d, want %d", len(seen), 3*perSender)
	}
}

func TestMailboxLenAndPutAfterCloseErrClosed(t *testing.T) {
	mb := NewMailbox()
	if err := mb.Put(Message{}); err != nil {
		t.Fatal(err)
	}
	if mb.Len() != 1 {
		t.Errorf("Len = %d", mb.Len())
	}
	mb.Close()
	if err := mb.Put(Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if err := mb.PutN([]Message{{}, {}}); !errors.Is(err, ErrClosed) {
		t.Errorf("PutN after Close = %v, want ErrClosed", err)
	}
	// The queued message survives the close; only new Puts are rejected.
	if _, ok := mb.TryGet(); !ok {
		t.Error("queued message lost on close")
	}
}

// TestSendClosedRankErrClosed locks in the error surface the TCP transport
// maps peer disconnects onto: Send/SendN to a closed rank return a typed
// ErrClosed instead of panicking or silently enqueueing, and the payloads of
// undelivered messages are released (their shared wire references dropped).
func TestSendClosedRankErrClosed(t *testing.T) {
	f := New(3)
	f.Close(1)
	if err := f.Send(Message{From: 0, To: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed rank = %v, want ErrClosed", err)
	}

	// SendN: the run to the open rank before the failure is delivered; the
	// failed run and everything after it is dropped with its payloads
	// released.
	shared, err := core.SharedPayload(core.Object(serialLoop{}), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	ms := []Message{
		{From: 0, To: 2, Src: 1},
		{From: 0, To: 1, Src: 2, Payload: shared},
		{From: 0, To: 2, Src: 3, Payload: shared},
	}
	if err := f.SendN(ms); !errors.Is(err, ErrClosed) {
		t.Errorf("SendN with closed run = %v, want ErrClosed", err)
	}
	if m, ok := f.TryRecv(2); !ok || m.Src != 1 {
		t.Errorf("pre-failure run = %v, %v, want delivered Src=1", m, ok)
	}
	if _, ok := f.TryRecv(2); ok {
		t.Error("post-failure run must not be delivered")
	}
	// Only the delivered pre-failure message counts as traffic.
	s := f.Snapshot()
	if s.Messages != 1 {
		t.Errorf("stats count undelivered messages: %+v", s)
	}
}

func TestSendCancelledFabricErrClosed(t *testing.T) {
	f := New(2)
	f.Cancel()
	if err := f.Send(Message{From: 0, To: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on cancelled fabric = %v, want ErrClosed", err)
	}
	if err := f.SendN([]Message{{From: 0, To: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("SendN on cancelled fabric = %v, want ErrClosed", err)
	}
}

// TestBlockingSendCancelledDoesNotHang: a rendezvous send racing a Cancel
// must not deadlock — either the message is dropped with ErrClosed before
// the wait, or the cancel releases the blocked sender.
func TestBlockingSendCancelledDoesNotHang(t *testing.T) {
	f := NewBlocking(2)
	done := make(chan error, 1)
	go func() {
		done <- f.Send(Message{From: 0, To: 1})
	}()
	time.Sleep(10 * time.Millisecond)
	f.Cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocking send hung across Cancel")
	}
}

// serialLoop is a Serializable test object.
type serialLoop struct{}

func (serialLoop) Serialize() []byte { return []byte{0xAB} }

// TestMailboxRingWraparound drives the ring buffer through many
// enqueue/dequeue cycles with a standing backlog, so head wraps repeatedly
// and the ring grows at least once, and checks FIFO order throughout.
func TestMailboxRingWraparound(t *testing.T) {
	mb := NewMailbox()
	next := 0 // next sequence number to enqueue
	want := 0 // next sequence number expected out
	put := func(n int) {
		for i := 0; i < n; i++ {
			mb.Put(Message{Src: core.TaskId(next)})
			next++
		}
	}
	get := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			m, ok := mb.TryGet()
			if !ok {
				t.Fatalf("TryGet failed at seq %d", want)
			}
			if m.Src != core.TaskId(want) {
				t.Fatalf("out of order: got %d, want %d", m.Src, want)
			}
			want++
		}
	}
	put(100) // backlog forces growth past the initial ring
	for cycle := 0; cycle < 300; cycle++ {
		put(3)
		get(3)
	}
	get(100)
	if mb.Len() != 0 {
		t.Fatalf("Len = %d after drain", mb.Len())
	}
}

func TestPutNGetBatchFIFO(t *testing.T) {
	mb := NewMailbox()
	batch := make([]Message, 10)
	for i := range batch {
		batch[i] = Message{Src: core.TaskId(i)}
	}
	mb.PutN(batch[:7])
	mb.PutN(batch[7:])
	if mb.Len() != 10 {
		t.Fatalf("Len = %d", mb.Len())
	}
	dst := make([]Message, 4)
	seq := 0
	for seq < 10 {
		n, ok := mb.GetBatch(dst)
		if !ok || n == 0 {
			t.Fatalf("GetBatch = %d, %v at seq %d", n, ok, seq)
		}
		for i := 0; i < n; i++ {
			if dst[i].Src != core.TaskId(seq) {
				t.Fatalf("batch out of order: got %d, want %d", dst[i].Src, seq)
			}
			seq++
		}
	}
}

func TestSendNDeliversAndCounts(t *testing.T) {
	f := New(3)
	ms := []Message{
		{From: 0, To: 1, Src: 1, Payload: core.Buffer(make([]byte, 10))},
		{From: 0, To: 1, Src: 2, Payload: core.Buffer(make([]byte, 20))},
		{From: 0, To: 2, Src: 3, Payload: core.Buffer(make([]byte, 30))},
		{From: 0, To: 0, Src: 4, Payload: core.Buffer(make([]byte, 40))}, // self-send: not traffic
	}
	if err := f.SendN(ms); err != nil {
		t.Fatal(err)
	}
	for i, want := range []core.TaskId{1, 2} {
		m, ok := f.TryRecv(1)
		if !ok || m.Src != want {
			t.Fatalf("rank 1 message %d = %v, %v", i, m, ok)
		}
	}
	if m, ok := f.TryRecv(2); !ok || m.Src != 3 {
		t.Fatalf("rank 2 = %v, %v", m, ok)
	}
	if m, ok := f.TryRecv(0); !ok || m.Src != 4 {
		t.Fatalf("rank 0 = %v, %v", m, ok)
	}
	s := f.Snapshot()
	if s.Messages != 3 || s.Bytes != 60 {
		t.Errorf("stats = %+v, want 3 messages / 60 bytes", s)
	}
}

func TestSendNUnknownRank(t *testing.T) {
	f := New(2)
	err := f.SendN([]Message{{To: 0}, {To: 7}})
	if err == nil {
		t.Error("SendN with an unknown rank should fail")
	}
}

func TestRecvBatchBlocksThenDrains(t *testing.T) {
	f := New(1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		f.SendN([]Message{{To: 0, Src: 1}, {To: 0, Src: 2}})
	}()
	dst := make([]Message, 8)
	n, ok := f.RecvBatch(0, dst)
	if !ok || n == 0 {
		t.Fatalf("RecvBatch = %d, %v", n, ok)
	}
	got := n
	for got < 2 {
		n, ok = f.RecvBatch(0, dst)
		if !ok {
			t.Fatal("RecvBatch failed before draining")
		}
		got += n
	}
	f.Close(0)
	if n, ok := f.RecvBatch(0, dst); ok || n != 0 {
		t.Errorf("RecvBatch after close+drain = %d, %v", n, ok)
	}
}

func TestBlockingSendNRendezvous(t *testing.T) {
	f := NewBlocking(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.SendN([]Message{{From: 0, To: 1, Src: 1}, {From: 0, To: 1, Src: 2}})
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("blocking SendN completed before receive")
	default:
	}
	if m, ok := f.Recv(1); !ok || m.Src != 1 {
		t.Fatalf("Recv = %v, %v", m, ok)
	}
	if m, ok := f.Recv(1); !ok || m.Src != 2 {
		t.Fatalf("Recv = %v, %v", m, ok)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocking SendN did not complete after receives")
	}
}

// TestBlockingSendNPerDestinationFIFO locks in the ordering contract the
// TCP transport must reproduce: a blocking SendN interleaving two
// destinations performs one rendezvous per inter-rank message, and each
// destination observes its messages in batch order.
func TestBlockingSendNPerDestinationFIFO(t *testing.T) {
	f := NewBlocking(3)
	const perDest = 20
	var ms []Message
	for i := 0; i < perDest; i++ {
		ms = append(ms,
			Message{From: 0, To: 1, Src: core.TaskId(i)},
			Message{From: 0, To: 2, Src: core.TaskId(i)})
	}
	done := make(chan error, 1)
	go func() { done <- f.SendN(ms) }()

	var wg sync.WaitGroup
	for _, rank := range []int{1, 2} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perDest; i++ {
				m, ok := f.Recv(rank)
				if !ok {
					t.Errorf("rank %d: mailbox closed at %d", rank, i)
					return
				}
				if m.Src != core.TaskId(i) {
					t.Errorf("rank %d: message %d out of order: src=%d", rank, i, m.Src)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBlockingSendNSelfSendNoRendezvous: self-sends are in-memory hand-offs
// even in blocking mode — a batch of them completes without any concurrent
// receiver.
func TestBlockingSendNSelfSendNoRendezvous(t *testing.T) {
	f := NewBlocking(2)
	ms := []Message{
		{From: 0, To: 0, Src: 1},
		{From: 0, To: 0, Src: 2},
		{From: 0, To: 0, Src: 3},
	}
	done := make(chan error, 1)
	go func() { done <- f.SendN(ms) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking self-send batch rendezvoused: SendN did not return without a receiver")
	}
	for _, want := range []core.TaskId{1, 2, 3} {
		if m, ok := f.TryRecv(0); !ok || m.Src != want {
			t.Fatalf("self-send delivery = %v, %v, want Src=%d", m, ok, want)
		}
	}
	// Self-sends are not traffic.
	if s := f.Snapshot(); s.Messages != 0 {
		t.Errorf("self-sends counted as traffic: %+v", s)
	}
}

// TestDeliveredMessagesCollectable is the regression test for the dequeue
// leak: the old slice-shift mailbox (queue = queue[1:]) kept delivered
// payloads reachable through the backing array. The ring buffer zeroes each
// vacated slot, so a delivered message's payload must become collectable as
// soon as the consumer drops it — while the mailbox is still alive and in
// use.
func TestDeliveredMessagesCollectable(t *testing.T) {
	mb := NewMailbox()
	const n = 8
	var freed atomic.Int32
	for i := 0; i < n; i++ {
		buf := new([4096]byte)
		runtime.SetFinalizer(buf, func(*[4096]byte) { freed.Add(1) })
		mb.Put(Message{Src: core.TaskId(i), Payload: core.Buffer(buf[:])})
	}
	for i := 0; i < n; i++ {
		if _, ok := mb.TryGet(); !ok {
			t.Fatal("lost message")
		}
	}
	// Keep the mailbox alive and open: the payloads must be collectable
	// anyway.
	deadline := time.Now().Add(5 * time.Second)
	for freed.Load() < n && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := freed.Load(); got < n {
		t.Errorf("only %d of %d delivered payloads were collected; the mailbox retains delivered messages", got, n)
	}
	runtime.KeepAlive(mb)
}

func TestNewPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
