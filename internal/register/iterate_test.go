package register

import (
	"bytes"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func iterSetup(t *testing.T) (Config, []data.BrainTile, *core.IterativeGraph) {
	t.Helper()
	cfg := Config{GridW: 3, GridH: 2, Tile: 16, Overlap: 0.25, Jitter: 1}
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 20260707)
	ig, err := cfg.Iterative(6)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, tiles, ig
}

func runIterRegistration(t *testing.T, c core.Controller, cfg Config, ig *core.IterativeGraph, tiles []data.BrainTile) (int, []Estimate, []byte) {
	t.Helper()
	if err := cfg.RegisterIter(c, ig); err != nil {
		t.Fatal(err)
	}
	initial, err := cfg.IterInitial(tiles)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	iter, sinks, err := ig.Final(out)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cfg.IterEstimates(sinks)
	if err != nil {
		t.Fatal(err)
	}
	return iter, ests, sinks[cfg.IterRootId()][0].Data
}

// TestIterativeRegistrationConverges runs the refinement loop serially: it
// must converge before the bound, recover the ground-truth offsets, and
// solve to the true tile positions — the same answer the static
// single-pass pipeline gives.
func TestIterativeRegistrationConverges(t *testing.T) {
	cfg, tiles, ig := iterSetup(t)
	s := core.NewSerial()
	if err := s.Initialize(ig, nil); err != nil {
		t.Fatal(err)
	}
	iter, ests, _ := runIterRegistration(t, s, cfg, ig, tiles)
	if iter <= 0 || iter >= ig.MaxIter()-1 {
		t.Fatalf("converged at iteration %d, want inside (0, %d)", iter, ig.MaxIter()-1)
	}

	tileAt := func(x, y int) data.BrainTile { return tiles[y*cfg.GridW+x] }
	for _, e := range ests {
		if e.HasEast {
			n, o := tileAt(e.X+1, e.Y), tileAt(e.X, e.Y)
			if wantDx, wantDy := n.TrueX-o.TrueX, n.TrueY-o.TrueY; e.EastDx != wantDx || e.EastDy != wantDy {
				t.Errorf("cell (%d,%d) East estimate (%d,%d), truth (%d,%d)", e.X, e.Y, e.EastDx, e.EastDy, wantDx, wantDy)
			}
		}
		if e.HasSouth {
			n, o := tileAt(e.X, e.Y+1), tileAt(e.X, e.Y)
			if wantDx, wantDy := n.TrueX-o.TrueX, n.TrueY-o.TrueY; e.SouthDx != wantDx || e.SouthDy != wantDy {
				t.Errorf("cell (%d,%d) South estimate (%d,%d), truth (%d,%d)", e.X, e.Y, e.SouthDx, e.SouthDy, wantDx, wantDy)
			}
		}
	}

	pos, err := Solve(cfg.GridW, cfg.GridH, ests)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			want := Position{
				X: tileAt(x, y).TrueX - tileAt(0, 0).TrueX,
				Y: tileAt(x, y).TrueY - tileAt(0, 0).TrueY,
			}
			if pos[y][x] != want {
				t.Errorf("tile (%d,%d) solved at %+v, truth %+v", x, y, pos[y][x], want)
			}
		}
	}
}

// TestIterativeRegistrationIdenticalAcrossControllers: the converged root
// blob is byte-identical between the serial reference and a sharded MPI
// run over the iteration-stable map.
func TestIterativeRegistrationIdenticalAcrossControllers(t *testing.T) {
	cfg, tiles, ig := iterSetup(t)
	s := core.NewSerial()
	if err := s.Initialize(ig, nil); err != nil {
		t.Fatal(err)
	}
	refIter, _, refBlob := runIterRegistration(t, s, cfg, ig, tiles)

	mc := mpi.New(mpi.WithWorkers(4), mpi.WithAlwaysSerialize(true))
	if err := mc.Initialize(ig, core.NewIterativeMap(4, ig)); err != nil {
		t.Fatal(err)
	}
	mcIter, _, mcBlob := runIterRegistration(t, mc, cfg, ig,
		data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 20260707))
	if mcIter != refIter {
		t.Fatalf("mpi converged at iteration %d, serial at %d", mcIter, refIter)
	}
	if !bytes.Equal(refBlob, mcBlob) {
		t.Fatal("mpi converged blob differs from serial")
	}
}

// TestIterInitialErrors covers the seeding and decoding error paths.
func TestIterInitialErrors(t *testing.T) {
	cfg := Config{GridW: 2, GridH: 2, Tile: 8, Overlap: 0.25, Jitter: 1}
	if _, err := cfg.IterInitial(nil); err == nil {
		t.Fatal("IterInitial accepted a tile shortfall")
	}
	if _, err := cfg.IterEstimates(map[core.TaskId][]core.Payload{}); err == nil {
		t.Fatal("IterEstimates accepted missing root sinks")
	}
	if _, err := cfg.blobEstimate([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("blobEstimate accepted a short blob")
	}
	if _, err := (Config{GridW: 0, GridH: 1, Tile: 8}).Iterative(4); err == nil {
		t.Fatal("Iterative accepted an empty grid")
	}
	if _, err := (Config{GridW: 2, GridH: 2, Tile: 1}).Iterative(4); err == nil {
		t.Fatal("Iterative accepted a degenerate tile")
	}
}
