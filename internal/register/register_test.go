package register

import (
	"bytes"
	"math"
	"testing"

	"github.com/babelflow/babelflow-go/internal/charm"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/legion"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func testSetup(t *testing.T) (Config, []data.BrainTile, *graphs.Neighbor2D) {
	t.Helper()
	cfg := Config{GridW: 3, GridH: 2, Tile: 16, Overlap: 0.25, Jitter: 1}
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 20260707)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, tiles, g
}

func runRegistration(t *testing.T, c core.Controller, cfg Config, g *graphs.Neighbor2D, tiles []data.BrainTile) []Estimate {
	t.Helper()
	if err := cfg.Register(c, g); err != nil {
		t.Fatal(err)
	}
	initial, err := cfg.InitialInputs(g, tiles)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	var ests []Estimate
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			ps := out[g.ProcessId(x, y)]
			if len(ps) != 1 {
				t.Fatalf("cell (%d,%d): %d payloads", x, y, len(ps))
			}
			wire, _ := ps[0].Wire()
			e, err := DeserializeEstimate(wire)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, e)
		}
	}
	return ests
}

// TestRegistrationRecoversGroundTruth is the headline correctness test:
// the dataflow's estimated pairwise offsets equal the ground-truth
// displacements of the synthetic specimen, and the solved positions equal
// the true tile positions.
func TestRegistrationRecoversGroundTruth(t *testing.T) {
	cfg, tiles, g := testSetup(t)
	mc := mpi.New()
	mc.Initialize(g, core.NewModuloMap(3, g.Size()))
	ests := runRegistration(t, mc, cfg, g, tiles)

	tileAt := func(x, y int) data.BrainTile { return tiles[y*cfg.GridW+x] }
	for _, e := range ests {
		if e.HasEast {
			n := tileAt(e.X+1, e.Y)
			o := tileAt(e.X, e.Y)
			wantDx, wantDy := n.TrueX-o.TrueX, n.TrueY-o.TrueY
			if e.EastDx != wantDx || e.EastDy != wantDy {
				t.Errorf("cell (%d,%d) East estimate (%d,%d), truth (%d,%d)", e.X, e.Y, e.EastDx, e.EastDy, wantDx, wantDy)
			}
			if e.EastScore < 0.9 {
				t.Errorf("cell (%d,%d) East score %f suspiciously low", e.X, e.Y, e.EastScore)
			}
		}
		if e.HasSouth {
			n := tileAt(e.X, e.Y+1)
			o := tileAt(e.X, e.Y)
			wantDx, wantDy := n.TrueX-o.TrueX, n.TrueY-o.TrueY
			if e.SouthDx != wantDx || e.SouthDy != wantDy {
				t.Errorf("cell (%d,%d) South estimate (%d,%d), truth (%d,%d)", e.X, e.Y, e.SouthDx, e.SouthDy, wantDx, wantDy)
			}
		}
	}

	pos, err := Solve(cfg.GridW, cfg.GridH, ests)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			want := Position{
				X: tileAt(x, y).TrueX - tileAt(0, 0).TrueX,
				Y: tileAt(x, y).TrueY - tileAt(0, 0).TrueY,
			}
			if pos[y][x] != want {
				t.Errorf("tile (%d,%d) solved at %+v, truth %+v", x, y, pos[y][x], want)
			}
		}
	}
}

// TestRegistrationIdenticalAcrossRuntimes: every controller produces
// byte-identical estimates.
func TestRegistrationIdenticalAcrossRuntimes(t *testing.T) {
	cfg, tiles, g := testSetup(t)

	build := func(name string) core.Controller {
		m := core.NewModuloMap(4, g.Size())
		switch name {
		case "serial":
			c := core.NewSerial()
			c.Initialize(g, nil)
			return c
		case "mpi":
			c := mpi.New()
			c.Initialize(g, m)
			return c
		case "charm":
			c := charm.New(charm.Options{PEs: 4, LBPeriod: 3})
			c.Initialize(g, nil)
			return c
		case "legion-spmd":
			c := legion.NewSPMD(legion.Options{})
			c.Initialize(g, m)
			return c
		default:
			c := legion.NewIndexLaunch(legion.Options{})
			c.Initialize(g, nil)
			return c
		}
	}
	var ref []byte
	for _, name := range []string{"serial", "mpi", "charm", "legion-spmd", "legion-il"} {
		ests := runRegistration(t, build(name), cfg, g, tiles)
		var all []byte
		for _, e := range ests {
			all = append(all, e.Serialize()...)
		}
		if ref == nil {
			ref = all
		} else if !bytes.Equal(ref, all) {
			t.Errorf("%s produced different estimates", name)
		}
	}
}

func TestEstimateSerializeRoundTrip(t *testing.T) {
	e := Estimate{X: 2, Y: 1, HasEast: true, EastDx: 12, EastDy: -1, EastScore: 0.98,
		HasSouth: true, SouthDx: -2, SouthDy: 11, SouthScore: 0.91}
	got, err := DeserializeEstimate(e.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip = %+v, want %+v", got, e)
	}
	if _, err := DeserializeEstimate([]byte{1, 2}); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(2, 2, nil); err == nil {
		t.Error("missing estimates should fail")
	}
	ests := []Estimate{
		{X: 0, Y: 0, HasEast: true, EastDx: 10},
		{X: 1, Y: 0},
		{X: 0, Y: 1},
		{X: 1, Y: 1},
	}
	if _, err := Solve(2, 2, ests); err == nil {
		t.Error("missing South estimate should fail")
	}
}

func TestSolveChainsOffsets(t *testing.T) {
	ests := []Estimate{
		{X: 0, Y: 0, HasEast: true, EastDx: 10, EastDy: 1, HasSouth: true, SouthDx: -1, SouthDy: 12},
		{X: 1, Y: 0, HasSouth: true, SouthDx: 2, SouthDy: 11},
		{X: 0, Y: 1, HasEast: true, EastDx: 9, EastDy: 0},
		{X: 1, Y: 1},
	}
	pos, err := Solve(2, 2, ests)
	if err != nil {
		t.Fatal(err)
	}
	if pos[0][1] != (Position{10, 1}) {
		t.Errorf("pos[0][1] = %+v", pos[0][1])
	}
	if pos[1][0] != (Position{-1, 12}) {
		t.Errorf("pos[1][0] = %+v", pos[1][0])
	}
	if pos[1][1] != (Position{12, 12}) {
		t.Errorf("pos[1][1] = %+v", pos[1][1])
	}
}

func TestNCCPerfectMatch(t *testing.T) {
	tile := data.NewField(8, 8, 2)
	rng := data.NewRand(3)
	for i := range tile.Values {
		tile.Values[i] = float32(rng.Float64())
	}
	// Strip = columns 4..7 of the tile; perfect correlation at dx=4, dy=0.
	strip := tile.SubField(4, 0, 0, 4, 8, 2)
	best := math.Inf(-1)
	var bdx int
	for dx := 2; dx <= 6; dx++ {
		if s := ncc(tile, strip, dx, 0); s > best {
			best, bdx = s, dx
		}
	}
	if bdx != 4 {
		t.Errorf("best dx = %d, want 4", bdx)
	}
	if math.Abs(best-1) > 1e-9 {
		t.Errorf("best score = %f, want 1", best)
	}
}

func TestNCCDegenerate(t *testing.T) {
	tile := data.NewField(4, 4, 1) // all zeros: zero variance
	strip := data.NewField(2, 4, 1)
	if s := ncc(tile, strip, 0, 0); !math.IsInf(s, -1) {
		t.Errorf("zero-variance score = %f, want -Inf", s)
	}
	if s := ncc(tile, strip, 100, 0); !math.IsInf(s, -1) {
		t.Errorf("no-overlap score = %f, want -Inf", s)
	}
}

func TestConfigStrideAndStrip(t *testing.T) {
	cfg := Config{GridW: 2, GridH: 2, Tile: 20, Overlap: 0.15, Jitter: 2}
	if cfg.Stride() != 17 {
		t.Errorf("stride = %d", cfg.Stride())
	}
	if w := cfg.stripWidth(); w != 7 {
		t.Errorf("strip width = %d, want 7 (overlap 3 + 2*jitter)", w)
	}
	tiny := Config{Tile: 2, Overlap: 0.9, Jitter: 0}
	if tiny.Stride() < 1 || tiny.stripWidth() > tiny.Tile {
		t.Error("degenerate config not clamped")
	}
}

func TestRegisterValidation(t *testing.T) {
	cfg, tiles, g := testSetup(t)
	other, _ := graphs.NewNeighbor2D(5, 5)
	c := core.NewSerial()
	c.Initialize(other, nil)
	if err := cfg.Register(c, other); err == nil {
		t.Error("grid mismatch should fail")
	}
	if _, err := cfg.InitialInputs(g, tiles[:2]); err == nil {
		t.Error("tile count mismatch should fail")
	}
}

// newTestController builds an MPI controller over the graph for reuse in
// solver tests.
func newTestController(t *testing.T, g *graphs.Neighbor2D, shards int) core.Controller {
	t.Helper()
	mc := mpi.New()
	if err := mc.Initialize(g, core.NewModuloMap(shards, g.Size())); err != nil {
		t.Fatal(err)
	}
	return mc
}
