package register

import (
	"testing"
)

// consistentEstimates fabricates a grid of estimates that exactly match a
// ground-truth placement.
func consistentEstimates(gridW, gridH int, truth [][]Position) []Estimate {
	var ests []Estimate
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			e := Estimate{X: x, Y: y}
			if x+1 < gridW {
				e.HasEast = true
				e.EastDx = truth[y][x+1].X - truth[y][x].X
				e.EastDy = truth[y][x+1].Y - truth[y][x].Y
			}
			if y+1 < gridH {
				e.HasSouth = true
				e.SouthDx = truth[y+1][x].X - truth[y][x].X
				e.SouthDy = truth[y+1][x].Y - truth[y][x].Y
			}
			ests = append(ests, e)
		}
	}
	return ests
}

func testTruth(gridW, gridH, stride int) [][]Position {
	truth := make([][]Position, gridH)
	for y := range truth {
		truth[y] = make([]Position, gridW)
		for x := range truth[y] {
			// Deterministic wobble.
			truth[y][x] = Position{X: x*stride + (x+2*y)%3 - 1, Y: y*stride + (2*x+y)%3 - 1}
		}
	}
	// Anchor at (0,0).
	ox, oy := truth[0][0].X, truth[0][0].Y
	for y := range truth {
		for x := range truth[y] {
			truth[y][x].X -= ox
			truth[y][x].Y -= oy
		}
	}
	return truth
}

func TestSolveLeastSquaresExactEstimates(t *testing.T) {
	const w, h = 4, 3
	truth := testTruth(w, h, 20)
	ests := consistentEstimates(w, h, truth)
	pos, err := SolveLeastSquares(w, h, ests, 0)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if pos[y][x] != truth[y][x] {
				t.Errorf("(%d,%d): lsq %+v, truth %+v", x, y, pos[y][x], truth[y][x])
			}
		}
	}
}

// TestSolveLeastSquaresAveragesNoise corrupts one estimate; the chain solve
// propagates the error to every downstream tile, the least-squares solve
// averages it out.
func TestSolveLeastSquaresAveragesNoise(t *testing.T) {
	const w, h = 4, 4
	truth := testTruth(w, h, 20)
	ests := consistentEstimates(w, h, truth)
	// Corrupt the East estimate of the top-left cell by 6 voxels — it sits
	// on the chain solve's first-row backbone.
	for i := range ests {
		if ests[i].X == 0 && ests[i].Y == 0 {
			ests[i].EastDx += 6
		}
	}
	chain, err := Solve(w, h, ests)
	if err != nil {
		t.Fatal(err)
	}
	lsq, err := SolveLeastSquares(w, h, ests, 0)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(pos [][]Position) int {
		total := 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				total += abs(pos[y][x].X-truth[y][x].X) + abs(pos[y][x].Y-truth[y][x].Y)
			}
		}
		return total
	}
	ce, le := errOf(chain), errOf(lsq)
	if ce == 0 {
		t.Fatal("chain solve unexpectedly exact despite corruption")
	}
	if le >= ce {
		t.Errorf("least squares error %d not better than chain error %d", le, ce)
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	if _, err := SolveLeastSquares(2, 2, nil, 0); err == nil {
		t.Error("missing estimates should fail")
	}
	// A record exists but provides no constraints for its cell.
	ests := []Estimate{
		{X: 0, Y: 0, HasEast: true}, {X: 1, Y: 0},
	}
	if _, err := SolveLeastSquares(2, 2, ests, 0); err == nil {
		t.Error("missing cells should fail")
	}
}

// TestSolveLeastSquaresOnRealPipeline runs the actual registration dataflow
// and checks the least-squares placement also recovers the ground truth.
func TestSolveLeastSquaresOnRealPipeline(t *testing.T) {
	cfg, tiles, g := testSetup(t)
	mc := newTestController(t, g, 3)
	ests := runRegistration(t, mc, cfg, g, tiles)
	pos, err := SolveLeastSquares(cfg.GridW, cfg.GridH, ests, 0)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			tl := tiles[y*cfg.GridW+x]
			want := Position{X: tl.TrueX - tiles[0].TrueX, Y: tl.TrueY - tiles[0].TrueY}
			if pos[y][x] != want {
				t.Errorf("tile (%d,%d): lsq %+v, truth %+v", x, y, pos[y][x], want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
