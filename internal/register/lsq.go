package register

import (
	"fmt"
	"math"
)

// SolveLeastSquares computes tile positions from the pairwise estimates by
// minimizing the squared inconsistency over ALL estimated offsets, instead
// of chaining one spanning tree like Solve. With a full grid of East and
// South estimates every interior position is constrained by up to four
// neighbors, so a single noisy correlation is averaged out rather than
// propagated down the chain.
//
// The normal equations form a graph Laplacian system; it is solved by
// Gauss-Seidel iteration anchored at tile (0,0), which converges for any
// connected estimate graph. Positions are rounded to voxels at the end.
func SolveLeastSquares(gridW, gridH int, estimates []Estimate, iterations int) ([][]Position, error) {
	if iterations <= 0 {
		iterations = 200
	}
	type edge struct {
		fromX, fromY int
		toX, toY     int
		dx, dy       float64
	}
	var edges []edge
	byCell := make(map[[2]int]bool)
	for _, e := range estimates {
		byCell[[2]int{e.X, e.Y}] = true
		if e.HasEast {
			edges = append(edges, edge{e.X, e.Y, e.X + 1, e.Y, float64(e.EastDx), float64(e.EastDy)})
		}
		if e.HasSouth {
			edges = append(edges, edge{e.X, e.Y, e.X, e.Y + 1, float64(e.SouthDx), float64(e.SouthDy)})
		}
	}
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			if !byCell[[2]int{x, y}] {
				return nil, fmt.Errorf("register: missing estimate record for cell (%d,%d)", x, y)
			}
		}
	}

	// Adjacency with signed offsets: position[v] should equal
	// position[u] + d for an edge u->v, i.e. constraints (u, v, +d) on v
	// and (v, u, -d) on u.
	type constraint struct {
		ox, oy int // the other endpoint
		dx, dy float64
	}
	adj := make(map[[2]int][]constraint)
	for _, e := range edges {
		adj[[2]int{e.toX, e.toY}] = append(adj[[2]int{e.toX, e.toY}],
			constraint{e.fromX, e.fromY, e.dx, e.dy})
		adj[[2]int{e.fromX, e.fromY}] = append(adj[[2]int{e.fromX, e.fromY}],
			constraint{e.toX, e.toY, -e.dx, -e.dy})
	}

	px := make([][]float64, gridH)
	py := make([][]float64, gridH)
	for y := range px {
		px[y] = make([]float64, gridW)
		py[y] = make([]float64, gridW)
	}
	// Initialize from the chain solve when possible (fast convergence),
	// else zeros.
	if chain, err := Solve(gridW, gridH, estimates); err == nil {
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				px[y][x] = float64(chain[y][x].X)
				py[y][x] = float64(chain[y][x].Y)
			}
		}
	}

	for it := 0; it < iterations; it++ {
		var maxDelta float64
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				if x == 0 && y == 0 {
					continue // anchor
				}
				cs := adj[[2]int{x, y}]
				if len(cs) == 0 {
					return nil, fmt.Errorf("register: cell (%d,%d) has no constraints", x, y)
				}
				var sx, sy float64
				for _, c := range cs {
					sx += px[c.oy][c.ox] + c.dx
					sy += py[c.oy][c.ox] + c.dy
				}
				nx, ny := sx/float64(len(cs)), sy/float64(len(cs))
				maxDelta = math.Max(maxDelta, math.Abs(nx-px[y][x]))
				maxDelta = math.Max(maxDelta, math.Abs(ny-py[y][x]))
				px[y][x], py[y][x] = nx, ny
			}
		}
		if maxDelta < 1e-9 {
			break
		}
	}

	out := make([][]Position, gridH)
	for y := range out {
		out[y] = make([]Position, gridW)
		for x := range out[y] {
			out[y][x] = Position{X: int(math.Round(px[y][x])), Y: int(math.Round(py[y][x]))}
		}
	}
	return out, nil
}
