package register

import (
	"fmt"
	"math"
)

// Estimate is the sink output of one process task: the estimated
// displacement of the East and South neighbors relative to this tile, with
// their correlation scores.
type Estimate struct {
	X, Y int
	// East neighbor displacement (present unless the cell is in the last
	// column).
	HasEast        bool
	EastDx, EastDy int
	EastScore      float64
	// South neighbor displacement (present unless the cell is in the last
	// row).
	HasSouth         bool
	SouthDx, SouthDy int
	SouthScore       float64
}

// Serialize encodes the estimate deterministically.
func (e Estimate) Serialize() []byte {
	buf := make([]byte, 2+8*8+2)
	buf[0] = byte(e.X)
	buf[1] = byte(e.Y)
	if e.HasEast {
		buf[2] = 1
	}
	if e.HasSouth {
		buf[3] = 1
	}
	off := 4
	for _, v := range []int64{int64(e.EastDx), int64(e.EastDy), int64(e.SouthDx), int64(e.SouthDy)} {
		putI64(buf[off:], v)
		off += 8
	}
	putI64(buf[off:], int64(math.Float64bits(e.EastScore)))
	putI64(buf[off+8:], int64(math.Float64bits(e.SouthScore)))
	return buf[:off+16]
}

// DeserializeEstimate decodes an estimate.
func DeserializeEstimate(b []byte) (Estimate, error) {
	if len(b) != 52 {
		return Estimate{}, fmt.Errorf("register: estimate buffer has %d bytes, want 52", len(b))
	}
	e := Estimate{X: int(b[0]), Y: int(b[1]), HasEast: b[2] == 1, HasSouth: b[3] == 1}
	e.EastDx = int(getI64(b[4:]))
	e.EastDy = int(getI64(b[12:]))
	e.SouthDx = int(getI64(b[20:]))
	e.SouthDy = int(getI64(b[28:]))
	e.EastScore = math.Float64frombits(uint64(getI64(b[36:])))
	e.SouthScore = math.Float64frombits(uint64(getI64(b[44:])))
	return e, nil
}

// Position is the solved placement of one tile, relative to tile (0,0).
type Position struct{ X, Y int }

// Solve computes absolute tile positions from the pairwise estimates — the
// paper's final evaluate stage. Tile (0,0) anchors the grid; the first row
// chains East estimates and every further row hangs off the row above via
// South estimates. Estimates must cover a full gridW x gridH grid.
func Solve(gridW, gridH int, estimates []Estimate) ([][]Position, error) {
	byCell := make(map[[2]int]Estimate, len(estimates))
	for _, e := range estimates {
		byCell[[2]int{e.X, e.Y}] = e
	}
	pos := make([][]Position, gridH)
	for y := range pos {
		pos[y] = make([]Position, gridW)
	}
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			if x == 0 && y == 0 {
				continue
			}
			if y == 0 {
				w, ok := byCell[[2]int{x - 1, 0}]
				if !ok || !w.HasEast {
					return nil, fmt.Errorf("register: missing East estimate at (%d,0)", x-1)
				}
				pos[0][x] = Position{X: pos[0][x-1].X + w.EastDx, Y: pos[0][x-1].Y + w.EastDy}
				continue
			}
			n, ok := byCell[[2]int{x, y - 1}]
			if !ok || !n.HasSouth {
				return nil, fmt.Errorf("register: missing South estimate at (%d,%d)", x, y-1)
			}
			pos[y][x] = Position{X: pos[y-1][x].X + n.SouthDx, Y: pos[y-1][x].Y + n.SouthDy}
		}
	}
	return pos, nil
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}
