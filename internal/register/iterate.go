// Iterative registration refinement: the registration dataflow re-flowed
// under core.Iterate until the pairwise estimates stop moving.
//
// The loop body is a widened neighbor dataflow. Per grid cell an extract
// task re-emits the tile and its facing strips (the tile itself is carried
// between iterations), a process task correlates the tile against the
// neighbors' strips over a search window that expands by one voxel per
// iteration, and a root task aggregates the per-cell estimates into one
// blob that records how many estimates changed. The loop gates on the
// root blob: the convergence predicate stops the flow once no estimate
// moved — which happens as soon as the window covers the correlation
// peak, so the converged estimates equal the static pipeline's full-window
// optimum — and the converged blob feeds Solve exactly like the static
// pipeline's sink outputs.
package register

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

// IterRegCB is the callback id shared by every body task of the iterative
// registration graph; the callback dispatches on the task-id structure
// (extract, process or root), which keeps wire-tier registration to a
// single binding.
const IterRegCB core.CallbackId = 40

// iterHdr is the root blob header: a little-endian u32 count of estimates
// that changed relative to the previous iteration.
const iterHdr = 4

// cells returns the number of grid cells.
func (cfg Config) cells() int { return cfg.GridW * cfg.GridH }

// IterRootId returns the body-local id of the aggregation root — the
// loop's gate source and the key of its converged sink.
func (cfg Config) IterRootId() core.TaskId { return core.TaskId(2 * cfg.cells()) }

// neighborDirs mirrors graphs.Neighbor2D's canonical neighbor order (West,
// East, North, South, existing neighbors only) without needing a graph
// instance inside the callbacks.
func (cfg Config) neighborDirs(x, y int) []graphs.Direction {
	dirs := make([]graphs.Direction, 0, 4)
	if x > 0 {
		dirs = append(dirs, graphs.West)
	}
	if x < cfg.GridW-1 {
		dirs = append(dirs, graphs.East)
	}
	if y > 0 {
		dirs = append(dirs, graphs.North)
	}
	if y < cfg.GridH-1 {
		dirs = append(dirs, graphs.South)
	}
	return dirs
}

func neighborCell(x, y int, d graphs.Direction) (int, int) {
	switch d {
	case graphs.West:
		return x - 1, y
	case graphs.East:
		return x + 1, y
	case graphs.North:
		return x, y - 1
	}
	return x, y + 1
}

// IterBody builds the loop body graph. Per cell i (row-major):
//
//	extract_i (id i):   in [tile (carried)]
//	                    out [own process, strip per neighbor, tile sink (carry source)]
//	process_i (id n+i): in [own tile, strip per neighbor, prev blob (gated)]
//	                    out [estimate -> root]
//	root (id 2n):       in [estimate per cell, prev blob (gated)]
//	                    out [blob sink (gate source)]
func (cfg Config) IterBody() (*core.ExplicitGraph, error) {
	if cfg.GridW < 1 || cfg.GridH < 1 {
		return nil, fmt.Errorf("register: invalid grid %dx%d", cfg.GridW, cfg.GridH)
	}
	if cfg.Tile < 2 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("register: invalid tile size %d or jitter %d", cfg.Tile, cfg.Jitter)
	}
	n := cfg.cells()
	root := cfg.IterRootId()
	tasks := make([]core.Task, 0, 2*n+1)
	for i := 0; i < n; i++ {
		x, y := i%cfg.GridW, i/cfg.GridW
		dirs := cfg.neighborDirs(x, y)

		ex := core.Task{
			Id:       core.TaskId(i),
			Callback: IterRegCB,
			Incoming: []core.TaskId{core.ExternalInput},
			Outgoing: make([][]core.TaskId, 2+len(dirs)),
		}
		ex.Outgoing[0] = []core.TaskId{core.TaskId(n + i)}
		for s, d := range dirs {
			nx, ny := neighborCell(x, y, d)
			ex.Outgoing[1+s] = []core.TaskId{core.TaskId(n + ny*cfg.GridW + nx)}
		}
		// Last slot stays a sink: the tile pass-through the loop carries
		// into the next iteration's extract.

		pr := core.Task{
			Id:       core.TaskId(n + i),
			Callback: IterRegCB,
			Incoming: make([]core.TaskId, 0, 2+len(dirs)),
			Outgoing: [][]core.TaskId{{root}},
		}
		pr.Incoming = append(pr.Incoming, core.TaskId(i))
		for _, d := range dirs {
			nx, ny := neighborCell(x, y, d)
			pr.Incoming = append(pr.Incoming, core.TaskId(ny*cfg.GridW+nx))
		}
		pr.Incoming = append(pr.Incoming, core.ExternalInput) // gated prev blob

		tasks = append(tasks, ex, pr)
	}
	rt := core.Task{
		Id:       root,
		Callback: IterRegCB,
		Incoming: make([]core.TaskId, 0, n+1),
		Outgoing: [][]core.TaskId{nil}, // sink: the gate source
	}
	for i := 0; i < n; i++ {
		rt.Incoming = append(rt.Incoming, core.TaskId(n+i))
	}
	rt.Incoming = append(rt.Incoming, core.ExternalInput) // gated prev blob
	tasks = append(tasks, rt)
	return core.NewExplicitGraph(tasks), nil
}

// Iterative unrolls the registration refinement loop: the root blob gates
// every estimate consumer of the next iteration, and each extract carries
// its tile forward.
func (cfg Config) Iterative(maxIter int) (*core.IterativeGraph, error) {
	body, err := cfg.IterBody()
	if err != nil {
		return nil, err
	}
	n := cfg.cells()
	root := cfg.IterRootId()
	opts := make([]core.IterOption, 0, 2*n+2)
	opts = append(opts, core.MaxIterations(maxIter), core.Gate(root, 0, root, n))
	for i := 0; i < n; i++ {
		x, y := i%cfg.GridW, i/cfg.GridW
		nd := len(cfg.neighborDirs(x, y))
		opts = append(opts,
			core.Gate(root, 0, core.TaskId(n+i), 1+nd),
			core.Carry(core.TaskId(i), 1+nd, core.TaskId(i), 0))
	}
	return core.Iterate(body, cfg.converged, opts...)
}

// converged stops the loop once the root blob reports zero moved
// estimates.
func (cfg Config) converged(_ int, sinks map[core.TaskId][]core.Payload) (bool, error) {
	ps := sinks[cfg.IterRootId()]
	if len(ps) != 1 || len(ps[0].Data) < iterHdr {
		return false, fmt.Errorf("register: malformed root blob in convergence predicate")
	}
	return binary.LittleEndian.Uint32(ps[0].Data) == 0, nil
}

// seedBlob is the iteration-0 stand-in for the previous root blob: a
// not-converged marker over zeroed estimates.
func (cfg Config) seedBlob() []byte {
	b := make([]byte, iterHdr+52*cfg.cells())
	binary.LittleEndian.PutUint32(b, ^uint32(0))
	return b
}

// IterInitial seeds iteration 0: each extract gets its tile and every
// gated estimate slot gets the seed blob. Tiles must cover the grid, as
// produced by data.BrainSpecimen.
func (cfg Config) IterInitial(tiles []data.BrainTile) (map[core.TaskId][]core.Payload, error) {
	n := cfg.cells()
	if len(tiles) != n {
		return nil, fmt.Errorf("register: %d tiles for a %dx%d grid", len(tiles), cfg.GridW, cfg.GridH)
	}
	initial := make(map[core.TaskId][]core.Payload, 2*n+1)
	for _, tl := range tiles {
		initial[core.TaskId(tl.GY*cfg.GridW+tl.GX)] = []core.Payload{core.Object(tl.Volume)}
	}
	for i := 0; i < n; i++ {
		initial[core.TaskId(n+i)] = []core.Payload{core.Buffer(cfg.seedBlob())}
	}
	initial[cfg.IterRootId()] = []core.Payload{core.Buffer(cfg.seedBlob())}
	return initial, nil
}

// RegisterIter binds the dispatching body callback and the synthetic
// decision callback on a controller initialized with the unrolled graph.
func (cfg Config) RegisterIter(c core.CallbackRegistrar, ig *core.IterativeGraph) error {
	if err := c.RegisterCallback(IterRegCB, cfg.IterCallback()); err != nil {
		return err
	}
	return ig.RegisterDecision(c)
}

// IterCallback returns the single body callback, dispatching on the
// unrolled task id: extract below n, process below 2n, root at 2n.
func (cfg Config) IterCallback() core.Callback {
	n := core.TaskId(cfg.cells())
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		switch b := core.BodyId(id); {
		case b < n:
			return cfg.iterExtract(in, id)
		case b < 2*n:
			return cfg.iterProcess(in, id)
		default:
			return cfg.iterRoot(in)
		}
	}
}

// iterExtract mirrors the static extract callback plus the carried tile on
// the last output slot.
func (cfg Config) iterExtract(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
	tile, err := asField(in[0])
	if err != nil {
		return nil, err
	}
	i := int(core.BodyId(id))
	x, y := i%cfg.GridW, i/cfg.GridW
	dirs := cfg.neighborDirs(x, y)
	out := make([]core.Payload, 2+len(dirs))
	out[0] = core.Object(tile)
	w := cfg.stripWidth()
	for s, d := range dirs {
		var strip *data.Field
		switch d {
		case graphs.West:
			strip = tile.SubField(0, 0, 0, w, tile.NY, tile.NZ)
		case graphs.East:
			strip = tile.SubField(tile.NX-w, 0, 0, w, tile.NY, tile.NZ)
		case graphs.North:
			strip = tile.SubField(0, 0, 0, tile.NX, w, tile.NZ)
		case graphs.South:
			strip = tile.SubField(0, tile.NY-w, 0, tile.NX, w, tile.NZ)
		}
		out[1+s] = core.Object(strip)
	}
	out[len(out)-1] = core.Object(tile)
	return out, nil
}

// iterProcess correlates over a search window centered at the nominal
// stride whose radius grows by one voxel per iteration, clamped to the
// full jitter window. The estimates move while the expanding window
// uncovers better displacements and reach a fixpoint — the full-window
// optimum the static pipeline computes in one (more expensive) pass —
// once the window covers the correlation peak. The gated previous blob
// (the last input) is what sequences iteration k after decision k-1; the
// refinement state it carries is consumed by the root's change count.
func (cfg Config) iterProcess(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
	tile, err := asField(in[0])
	if err != nil {
		return nil, err
	}
	i := int(core.BodyId(id)) - cfg.cells()
	x, y := i%cfg.GridW, i/cfg.GridW
	dirs := cfg.neighborDirs(x, y)

	stride, j := cfg.Stride(), 2*cfg.Jitter
	r := 1 + core.IterOf(id)
	if r > j {
		r = j
	}
	est := Estimate{X: x, Y: y}
	for di, d := range dirs {
		if d != graphs.East && d != graphs.South {
			continue
		}
		strip, err := asField(in[1+di])
		if err != nil {
			return nil, err
		}
		var dx, dy int
		var score float64
		if d == graphs.East {
			dx, dy, score = cfg.correlateWindow(tile, strip, stride-r, stride+r, -r, r)
		} else {
			dx, dy, score = cfg.correlateWindow(tile, strip, -r, r, stride-r, stride+r)
		}
		if d == graphs.East {
			est.HasEast, est.EastDx, est.EastDy, est.EastScore = true, dx, dy, score
		} else {
			est.HasSouth, est.SouthDx, est.SouthDy, est.SouthScore = true, dx, dy, score
		}
	}
	return []core.Payload{core.Buffer(est.Serialize())}, nil
}

// correlateWindow scans the displacement window for the NCC-maximizing
// offset; ties resolve to the lexicographically smallest displacement,
// like the static correlate.
func (cfg Config) correlateWindow(tile, strip *data.Field, dxLo, dxHi, dyLo, dyHi int) (bestDx, bestDy int, bestScore float64) {
	bestScore = math.Inf(-1)
	for dy := dyLo; dy <= dyHi; dy++ {
		for dx := dxLo; dx <= dxHi; dx++ {
			if score := ncc(tile, strip, dx, dy); score > bestScore {
				bestScore, bestDx, bestDy = score, dx, dy
			}
		}
	}
	return bestDx, bestDy, bestScore
}

// iterRoot aggregates the per-cell estimates into the gate blob and counts
// how many changed against the previous iteration's blob.
func (cfg Config) iterRoot(in []core.Payload) ([]core.Payload, error) {
	n := cfg.cells()
	prev := in[n].Data
	if len(prev) != iterHdr+52*n {
		return nil, fmt.Errorf("register: previous root blob has %d bytes, want %d", len(prev), iterHdr+52*n)
	}
	blob := make([]byte, iterHdr+52*n)
	var changed uint32
	for i := 0; i < n; i++ {
		e := in[i].Data
		if len(e) != 52 {
			return nil, fmt.Errorf("register: estimate %d has %d bytes, want 52", i, len(e))
		}
		copy(blob[iterHdr+52*i:], e)
		if !bytes.Equal(prev[iterHdr+52*i:iterHdr+52*(i+1)], e) {
			changed++
		}
	}
	binary.LittleEndian.PutUint32(blob, changed)
	return []core.Payload{core.Buffer(blob)}, nil
}

// blobEstimate decodes cell i's estimate out of a root blob.
func (cfg Config) blobEstimate(blob []byte, i int) (Estimate, error) {
	n := cfg.cells()
	if len(blob) != iterHdr+52*n {
		return Estimate{}, fmt.Errorf("register: root blob has %d bytes, want %d", len(blob), iterHdr+52*n)
	}
	return DeserializeEstimate(blob[iterHdr+52*i : iterHdr+52*(i+1)])
}

// IterEstimates decodes the converged root blob (the Final sinks of the
// iterative run) into per-cell estimates, ready for Solve.
func (cfg Config) IterEstimates(sinks map[core.TaskId][]core.Payload) ([]Estimate, error) {
	ps := sinks[cfg.IterRootId()]
	if len(ps) != 1 {
		return nil, fmt.Errorf("register: converged sinks carry %d root payloads, want 1", len(ps))
	}
	n := cfg.cells()
	ests := make([]Estimate, n)
	for i := 0; i < n; i++ {
		e, err := cfg.blobEstimate(ps[0].Data, i)
		if err != nil {
			return nil, err
		}
		ests[i] = e
	}
	return ests, nil
}
