// Package register implements the paper's third use case (§V-C): parallel
// registration of tiled 3-D microscopy volumes. Adjacent tiles of an
// acquisition grid overlap by ~15%; the dataflow exchanges the overlapping
// sub-volumes between neighbors (Fig. 8), evaluates the correct alignment
// of every adjacent pair by normalized cross-correlation, and finally
// solves for the absolute position of each volume.
//
// The dataflow is the Neighbor2D graph: per grid cell, an extract task
// reads the tile and emits the overlap strips facing each neighbor; a
// process task correlates the tile against the neighbors' facing strips
// and emits the estimated pairwise offsets as its sink output. The final
// placement (the paper's sort/evaluate stage) is a deterministic
// propagation over the estimated offsets.
package register

import (
	"fmt"
	"math"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

// Config describes the acquisition: grid dimensions, cubic tile edge,
// nominal overlap fraction, and the stage-jitter bound that defines the
// correlation search window.
type Config struct {
	GridW, GridH int
	Tile         int
	Overlap      float64
	Jitter       int
}

// Stride returns the nominal tile-to-tile displacement in voxels.
func (cfg Config) Stride() int {
	s := int(float64(cfg.Tile) * (1 - cfg.Overlap))
	if s < 1 {
		s = 1
	}
	return s
}

// stripWidth is the width of the exchanged overlap strips: the nominal
// overlap plus the jitter margin on both sides.
func (cfg Config) stripWidth() int {
	w := cfg.Tile - cfg.Stride() + 2*cfg.Jitter
	if w < 1 {
		w = 1
	}
	if w > cfg.Tile {
		w = cfg.Tile
	}
	return w
}

// Graph returns the neighbor dataflow for the acquisition grid.
func (cfg Config) Graph() (*graphs.Neighbor2D, error) {
	return graphs.NewNeighbor2D(cfg.GridW, cfg.GridH)
}

// InitialInputs addresses each tile volume to its extract task. Tiles must
// be in row-major grid order, as produced by data.BrainSpecimen.
func (cfg Config) InitialInputs(g *graphs.Neighbor2D, tiles []data.BrainTile) (map[core.TaskId][]core.Payload, error) {
	if len(tiles) != cfg.GridW*cfg.GridH {
		return nil, fmt.Errorf("register: %d tiles for a %dx%d grid", len(tiles), cfg.GridW, cfg.GridH)
	}
	initial := make(map[core.TaskId][]core.Payload, len(tiles))
	for _, tl := range tiles {
		initial[g.ExtractId(tl.GX, tl.GY)] = []core.Payload{core.Object(tl.Volume)}
	}
	return initial, nil
}

// Register binds the extract and process callbacks to a controller
// initialized with the neighbor graph.
func (cfg Config) Register(c core.CallbackRegistrar, g *graphs.Neighbor2D) error {
	if cfg.GridW != g.Width() || cfg.GridH != g.Height() {
		return fmt.Errorf("register: config grid %dx%d does not match graph %dx%d", cfg.GridW, cfg.GridH, g.Width(), g.Height())
	}
	if cfg.Tile < 2 || cfg.Jitter < 0 {
		return fmt.Errorf("register: invalid tile size %d or jitter %d", cfg.Tile, cfg.Jitter)
	}
	if err := c.RegisterCallback(graphs.NeighborExtractCB, cfg.extractCallback(g)); err != nil {
		return err
	}
	return c.RegisterCallback(graphs.NeighborProcessCB, cfg.processCallback(g))
}

// asField extracts a field from a payload.
func asField(p core.Payload) (*data.Field, error) {
	if p.Object != nil {
		f, ok := p.Object.(*data.Field)
		if !ok {
			return nil, fmt.Errorf("register: payload object is %T, want *data.Field", p.Object)
		}
		return f, nil
	}
	return data.DeserializeField(p.Data)
}

// extractCallback emits the tile itself (slot 0, to the own process task)
// plus one facing strip per existing neighbor.
func (cfg Config) extractCallback(g *graphs.Neighbor2D) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		tile, err := asField(in[0])
		if err != nil {
			return nil, err
		}
		x, y, _ := g.CellOf(id)
		dirs := g.NeighborDirs(x, y)
		out := make([]core.Payload, 1+len(dirs))
		out[0] = core.Object(tile)
		w := cfg.stripWidth()
		for i, d := range dirs {
			var strip *data.Field
			switch d {
			case graphs.West:
				strip = tile.SubField(0, 0, 0, w, tile.NY, tile.NZ)
			case graphs.East:
				strip = tile.SubField(tile.NX-w, 0, 0, w, tile.NY, tile.NZ)
			case graphs.North:
				strip = tile.SubField(0, 0, 0, tile.NX, w, tile.NZ)
			case graphs.South:
				strip = tile.SubField(0, tile.NY-w, 0, tile.NX, w, tile.NZ)
			}
			out[i+1] = core.Object(strip)
		}
		return out, nil
	}
}

// processCallback correlates the tile against the facing strips of its
// East and South neighbors (West/North estimates are the mirror image and
// therefore redundant) and emits the estimates as the sink output.
func (cfg Config) processCallback(g *graphs.Neighbor2D) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		tile, err := asField(in[0])
		if err != nil {
			return nil, err
		}
		x, y, _ := g.CellOf(id)
		dirs := g.NeighborDirs(x, y)
		est := Estimate{X: x, Y: y}
		for i, d := range dirs {
			if d != graphs.East && d != graphs.South {
				continue
			}
			strip, err := asField(in[i+1])
			if err != nil {
				return nil, err
			}
			dx, dy, score := cfg.correlate(tile, strip, d)
			switch d {
			case graphs.East:
				est.HasEast, est.EastDx, est.EastDy, est.EastScore = true, dx, dy, score
			case graphs.South:
				est.HasSouth, est.SouthDx, est.SouthDy, est.SouthScore = true, dx, dy, score
			}
		}
		return []core.Payload{core.Buffer(est.Serialize())}, nil
	}
}

// correlate searches the displacement of a neighbor relative to the tile
// that maximizes normalized cross-correlation between the tile and the
// neighbor's facing strip. For an East neighbor the displacement is
// (stride±J, ±J); for a South neighbor (±J, stride±J). Ties resolve to the
// lexicographically smallest displacement, keeping results deterministic.
func (cfg Config) correlate(tile, strip *data.Field, dir graphs.Direction) (bestDx, bestDy int, bestScore float64) {
	// Both tiles jitter independently, so the relative displacement can
	// deviate from the nominal stride by up to twice the jitter bound.
	stride, j := cfg.Stride(), 2*cfg.Jitter
	bestScore = math.Inf(-1)
	var dxLo, dxHi, dyLo, dyHi int
	if dir == graphs.East {
		dxLo, dxHi, dyLo, dyHi = stride-j, stride+j, -j, j
	} else {
		dxLo, dxHi, dyLo, dyHi = -j, j, stride-j, stride+j
	}
	for dy := dyLo; dy <= dyHi; dy++ {
		for dx := dxLo; dx <= dxHi; dx++ {
			score := ncc(tile, strip, dx, dy)
			if score > bestScore {
				bestScore, bestDx, bestDy = score, dx, dy
			}
		}
	}
	return bestDx, bestDy, bestScore
}

// ncc computes normalized cross-correlation between the tile and a
// neighbor strip under the hypothesis that strip voxel (i, j, k)
// corresponds to tile voxel (i+dx, j+dy, k). Only in-bounds voxels
// contribute; fewer than 8 valid voxels scores -Inf.
func ncc(tile, strip *data.Field, dx, dy int) float64 {
	var sa, sb, saa, sbb, sab float64
	n := 0
	for k := 0; k < strip.NZ; k++ {
		for j := 0; j < strip.NY; j++ {
			tj := j + dy
			if tj < 0 || tj >= tile.NY {
				continue
			}
			for i := 0; i < strip.NX; i++ {
				ti := i + dx
				if ti < 0 || ti >= tile.NX {
					continue
				}
				a := float64(tile.At(ti, tj, k))
				b := float64(strip.At(i, j, k))
				sa += a
				sb += b
				saa += a * a
				sbb += b * b
				sab += a * b
				n++
			}
		}
	}
	if n < 8 {
		return math.Inf(-1)
	}
	fn := float64(n)
	cov := sab - sa*sb/fn
	va := saa - sa*sa/fn
	vb := sbb - sb*sb/fn
	if va <= 0 || vb <= 0 {
		return math.Inf(-1)
	}
	return cov / math.Sqrt(va*vb)
}
