//go:build unix

package wire

import (
	"os"
	"syscall"
)

// shmSupported gates the TierShm data path: true where files can be
// mapped shared and writable. TierAuto silently skips shm elsewhere;
// a strict TierShm errors at handshake.
const shmSupported = true

func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
