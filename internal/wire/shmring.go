package wire

// Shared-memory ring regions: the TierShm data path. Each co-located rank
// pair maps one file holding a pair of lock-free SPSC byte rings (one per
// direction). The dialer of the pair's unix socket creates the file,
// offers its path over the socket, and unlinks it once the acceptor has
// mapped it — the mappings outlive the name, so nothing is left on disk
// even after a kill -9.
//
// The ring is a byte pipe, not a slot queue: frames are written with the
// exact encoding the socket tiers use (length | type | crc | data header |
// payload) and decoded by the same readFrame/readDataBody code, so CRCs,
// run-id demux and corrupt-frame semantics are byte-identical across
// tiers. A frame larger than the ring simply streams through it in
// chunks.
//
// Layout of the region file (offsets in bytes):
//
//	0     magic
//	8     generation (the fabric epoch — stale files never match)
//	16    ring size per direction
//	256   ring A header (dialer tx)
//	512   ring B header (acceptor tx)
//	4096  ring A data
//	4096+ringSize  ring B data
//
// Each ringHdr field sits on its own cache line: head and tail are the
// SPSC cursors (free-running, never wrapped — the data offset is
// cursor & (size-1)); cwait is set by a consumer about to park so the
// producer knows to ring the socket doorbell; pwait is set by a producer
// blocked on a full ring so the consumer knows to doorbell back when it
// frees space.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	shmMagic uint64 = 0x314752_4D53_4642 // "BFSMRG1", little-endian

	shmMagicOff = 0
	shmGenOff   = 8
	shmSizeOff  = 16
	shmHdrAOff  = 256
	shmHdrBOff  = 512
	shmDataOff  = 4096

	// defaultShmRingBytes is the per-direction ring capacity; minShmRingBytes
	// keeps the wrap arithmetic sane and lets tests force heavy backpressure.
	defaultShmRingBytes = 1 << 20
	minShmRingBytes     = 4096
)

// ringHdr is the shared SPSC control block, one per direction. Cursors are
// free-running byte counts published with sequentially consistent atomics;
// the data they cover is written before tail is advanced and read before
// head is advanced, so each side only ever reads bytes the other has
// finished with.
type ringHdr struct {
	head  atomic.Uint64 // consumer cursor: bytes consumed
	_     [56]byte
	tail  atomic.Uint64 // producer cursor: bytes published
	_     [56]byte
	cwait atomic.Uint32 // consumer parked (or parking); producer must doorbell
	_     [60]byte
	pwait atomic.Uint32 // producer blocked on a full ring; consumer must doorbell
	_     [60]byte
}

// shmRing is one direction of the pair. Exactly one process produces and
// one consumes; the local cursor mirrors (ptail for the producer side,
// chead for the consumer side) avoid re-reading the shared line for the
// side we own.
type shmRing struct {
	hdr  *ringHdr
	data []byte
	size uint64 // len(data), power of two

	ptail uint64 // producer-local copy of hdr.tail (guarded by peer.wmu)
	chead uint64 // consumer-local copy of hdr.head (single reader goroutine)
}

// free reports the bytes the producer can write without overtaking the
// consumer.
func (r *shmRing) free() uint64 {
	return r.size - (r.ptail - r.hdr.head.Load())
}

// push copies as much of b as fits, publishes the new tail, and reports
// how many bytes were written. A zero return means the ring is full.
func (r *shmRing) push(b []byte) int {
	free := r.free()
	if free == 0 {
		return 0
	}
	n := uint64(len(b))
	if n > free {
		n = free
	}
	pos := r.ptail & (r.size - 1)
	c := copy(r.data[pos:], b[:n])
	if uint64(c) < n {
		copy(r.data, b[c:n])
	}
	r.ptail += n
	r.hdr.tail.Store(r.ptail)
	return int(n)
}

// pushAll copies every segment into the ring and publishes the tail ONCE,
// after the last byte: a consumer that observes the new tail always sees
// a complete frame, keeping it on the in-place decode fast path. The
// caller must have checked that the combined length fits free().
func (r *shmRing) pushAll(segs ...[]byte) {
	for _, s := range segs {
		pos := r.ptail & (r.size - 1)
		c := copy(r.data[pos:], s)
		if c < len(s) {
			copy(r.data, s[c:])
		}
		r.ptail += uint64(len(s))
	}
	r.hdr.tail.Store(r.ptail)
}

// readable reports the bytes the consumer can pop right now.
func (r *shmRing) readable() uint64 {
	return r.hdr.tail.Load() - r.chead
}

// pop copies up to len(b) readable bytes out and publishes the new head.
// A zero return means the ring is empty.
func (r *shmRing) pop(b []byte) int {
	avail := r.readable()
	if avail == 0 {
		return 0
	}
	n := uint64(len(b))
	if n > avail {
		n = avail
	}
	pos := r.chead & (r.size - 1)
	c := copy(b[:n], r.data[pos:])
	if uint64(c) < n {
		copy(b[c:n], r.data)
	}
	r.chead += n
	r.hdr.head.Store(r.chead)
	return int(n)
}

// view returns the longest contiguous run of readable bytes at the read
// cursor WITHOUT consuming them. A frame that fits entirely in the
// returned slice can be decoded in place — one CRC pass over the mapped
// bytes, one copy into the arena — skipping the io.Reader assembly path.
func (r *shmRing) view() []byte {
	n := r.hdr.tail.Load() - r.chead
	if n == 0 {
		return nil
	}
	pos := r.chead & (r.size - 1)
	if c := r.size - pos; n > c {
		n = c
	}
	return r.data[pos : pos+n]
}

// advance consumes n bytes previously observed through view and publishes
// the new head.
func (r *shmRing) advance(n int) {
	r.chead += uint64(n)
	r.hdr.head.Store(r.chead)
}

// peek copies up to len(b) readable bytes starting at the read cursor
// WITHOUT consuming them, reporting how many were available. Used to
// check whether a complete frame is buffered before a non-blocking drain.
func (r *shmRing) peek(b []byte) int {
	avail := r.readable()
	if avail == 0 {
		return 0
	}
	n := uint64(len(b))
	if n > avail {
		n = avail
	}
	pos := r.chead & (r.size - 1)
	c := copy(b[:n], r.data[pos:])
	if uint64(c) < n {
		copy(b[c:n], r.data)
	}
	return int(n)
}

// shmRegion is one mapped ring-pair file. tx is the ring this process
// produces into, rx the one it consumes; the dialer takes ring A as tx,
// the acceptor ring B, so the two processes agree without coordination.
type shmRegion struct {
	mm   []byte
	path string
	tx   *shmRing
	rx   *shmRing
	once sync.Once
}

// regionSize is the file size for a given per-direction ring capacity.
func regionSize(ringBytes int) int {
	return shmDataOff + 2*ringBytes
}

func ringAt(mm []byte, hdrOff, dataOff, size int) *shmRing {
	return &shmRing{
		hdr:  (*ringHdr)(unsafe.Pointer(&mm[hdrOff])),
		data: mm[dataOff : dataOff+size : dataOff+size],
		size: uint64(size),
	}
}

// createShmRegion makes, sizes and maps a fresh ring-pair file in dir,
// stamped with the fabric generation. The caller owns ring A (tx).
func createShmRegion(dir string, gen uint64, ringBytes int) (*shmRegion, error) {
	f, err := os.CreateTemp(dir, "ring-*.shm")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	size := regionSize(ringBytes)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	mm, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	binary.LittleEndian.PutUint64(mm[shmMagicOff:], shmMagic)
	binary.LittleEndian.PutUint64(mm[shmGenOff:], gen)
	binary.LittleEndian.PutUint64(mm[shmSizeOff:], uint64(ringBytes))
	return &shmRegion{
		mm:   mm,
		path: path,
		tx:   ringAt(mm, shmHdrAOff, shmDataOff, ringBytes),
		rx:   ringAt(mm, shmHdrBOff, shmDataOff+ringBytes, ringBytes),
	}, nil
}

// openShmRegion maps a region file created by a peer and validates its
// header against our generation. The caller owns ring B (tx).
func openShmRegion(path string, gen uint64) (*shmRegion, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := int(st.Size())
	if size < regionSize(minShmRingBytes) {
		f.Close()
		return nil, fmt.Errorf("shm region %s: %d bytes, too small", path, size)
	}
	mm, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint64(mm[shmMagicOff:]); m != shmMagic {
		munmapFile(mm)
		return nil, fmt.Errorf("shm region %s: bad magic %#x", path, m)
	}
	if g := binary.LittleEndian.Uint64(mm[shmGenOff:]); g != gen {
		munmapFile(mm)
		return nil, fmt.Errorf("shm region %s: generation %d, want %d", path, g, gen)
	}
	ringBytes := int(binary.LittleEndian.Uint64(mm[shmSizeOff:]))
	if ringBytes < minShmRingBytes || ringBytes&(ringBytes-1) != 0 || regionSize(ringBytes) != size {
		munmapFile(mm)
		return nil, fmt.Errorf("shm region %s: ring size %d inconsistent with %d-byte file", path, ringBytes, size)
	}
	return &shmRegion{
		mm:   mm,
		path: path,
		tx:   ringAt(mm, shmHdrBOff, shmDataOff+ringBytes, ringBytes),
		rx:   ringAt(mm, shmHdrAOff, shmDataOff, ringBytes),
	}, nil
}

// close unmaps the region. Safe to call more than once; must not be
// called while any goroutine can still touch the rings.
func (s *shmRegion) close() {
	s.once.Do(func() {
		munmapFile(s.mm)
		s.mm = nil
	})
}

func closeRegions(regs []*shmRegion) {
	for _, r := range regs {
		if r != nil {
			r.close()
		}
	}
}

// shmDataDir picks the directory ring files are created in: a private
// tempdir under /dev/shm when available (a real tmpfs on linux), the OS
// temp dir otherwise. Returns "" when this build cannot mmap.
func shmDataDir() (string, error) {
	if !shmSupported {
		return "", fmt.Errorf("shared memory transport not supported on this platform")
	}
	base := ""
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		base = "/dev/shm"
	}
	return os.MkdirTemp(base, "bfshm-*")
}
