package wire

import (
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// quietMesh bootstraps a mesh whose heartbeats are effectively disabled, so
// the only arena traffic during the test window is the traffic the test
// itself generates.
func quietMesh(t *testing.T, n int) []*Fabric {
	t.Helper()
	fabrics, errs := connectMeshWith(t, n, func(rank int, o *Options) {
		o.HeartbeatInterval = time.Minute
		o.HeartbeatTimeout = 10 * time.Minute
	})
	requireMesh(t, fabrics, errs)
	return fabrics
}

// arenaMessage builds a message whose payload holds one arena buffer: a
// refcounted shared wire form with a single reference, copied into the arena
// because the source buffer is declared aliased. Dropping the reference
// (delivery, or any Send error path) must return the buffer.
func arenaMessage(t *testing.T, from, to int) fabric.Message {
	t.Helper()
	p, err := core.SharedPayload(core.Buffer([]byte("leak-test-payload")), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	return fabric.Message{From: from, To: to, Src: core.TaskId(from), Dest: core.TaskId(to), Payload: p}
}

// TestSendErrorPathsReleaseArenaBuffers proves every Send/SendN error path
// drops its payload references: a rejected or undeliverable message must not
// strand arena buffers. Regression test for the ownership rule audit — each
// failure mode below once had to be checked by hand.
func TestSendErrorPathsReleaseArenaBuffers(t *testing.T) {
	fabrics := quietMesh(t, 2)

	core.ArenaAccounting(true)
	defer core.ArenaAccounting(false)

	check := func(path string) {
		t.Helper()
		if n := core.ArenaOutstanding(); n != 0 {
			t.Fatalf("%s leaked %d arena buffers", path, n)
		}
	}

	// Send to a rank outside the mesh fails before any queue is touched.
	if err := fabrics[0].Send(arenaMessage(t, 0, 99)); err == nil {
		t.Fatal("Send to unknown rank succeeded")
	}
	check("Send to unknown rank")

	// SendN validates the whole batch up front: one invalid destination
	// rejects the batch and must release every payload, including the valid
	// ones that were never enqueued.
	batch := []fabric.Message{
		arenaMessage(t, 0, 1),
		arenaMessage(t, 0, -1),
		arenaMessage(t, 0, 0),
	}
	if err := fabrics[0].SendN(batch); err == nil {
		t.Fatal("SendN with invalid rank succeeded")
	}
	check("SendN with invalid rank")

	// Close half-closes the pair: the outbox stops accepting, so both Send
	// forms drop their payloads and report ErrClosed.
	fabrics[0].Close(1)
	if err := fabrics[0].Send(arenaMessage(t, 0, 1)); err == nil {
		t.Fatal("Send to closed peer succeeded")
	}
	check("Send to closed peer")
	if err := fabrics[0].SendN([]fabric.Message{arenaMessage(t, 0, 1), arenaMessage(t, 0, 1)}); err == nil {
		t.Fatal("SendN to closed peer succeeded")
	}
	check("SendN to closed peer")

	// After Cancel every path — remote outbox and local mailbox — is
	// cancelled and must keep dropping payloads.
	fabrics[0].Cancel()
	if err := fabrics[0].Send(arenaMessage(t, 0, 1)); err == nil {
		t.Fatal("Send on cancelled fabric succeeded")
	}
	if err := fabrics[0].Send(arenaMessage(t, 0, 0)); err == nil {
		t.Fatal("local Send on cancelled fabric succeeded")
	}
	if err := fabrics[0].SendN([]fabric.Message{arenaMessage(t, 0, 0), arenaMessage(t, 0, 1)}); err == nil {
		t.Fatal("SendN on cancelled fabric succeeded")
	}
	check("sends on cancelled fabric")
}

// TestCancelReleasesQueuedArenaBuffers proves Cancel drops the payload
// references of messages still queued in the local mailbox — the abort path
// must return fan-out buffers to the arena, not strand them.
func TestCancelReleasesQueuedArenaBuffers(t *testing.T) {
	fabrics := quietMesh(t, 2)

	core.ArenaAccounting(true)
	defer core.ArenaAccounting(false)

	// Queue local messages that no receiver will ever drain.
	for i := 0; i < 8; i++ {
		if err := fabrics[0].Send(arenaMessage(t, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if n := core.ArenaOutstanding(); n != 8 {
		t.Fatalf("queued %d arena buffers, want 8 outstanding", n)
	}
	fabrics[0].Cancel()
	if n := core.ArenaOutstanding(); n != 0 {
		t.Fatalf("Cancel stranded %d arena buffers", n)
	}
}
