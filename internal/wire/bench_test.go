package wire

import (
	"net"
	"sync"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Transport micro-benchmarks, mirrored by cmd/bfbench -wire (which writes
// BENCH_net.json). These exist so CI's perf-smoke job exercises the hot
// path — including under the race detector — on every change.

// benchPair bootstraps a 2-rank loopback mesh for the given data tier:
// "tcp" and "unix" name the rendezvous network (and pin the matching
// tier), "shm" rendezvouses over TCP and pins the shared-memory tier.
func benchPair(b *testing.B, network string) (send, recv *Fabric, stop func()) {
	b.Helper()
	addr, lnet := "127.0.0.1:0", "tcp"
	if network == "unix" {
		addr, lnet = benchSockPath(b), "unix"
	}
	ln, err := net.Listen(lnet, addr)
	if err != nil {
		b.Fatal(err)
	}
	fabrics := make([]*Fabric, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	tier := TierTCP // pin the tier: TierAuto would upgrade loopback to shm
	switch network {
	case "unix":
		tier = TierUnix
	case "shm":
		tier = TierShm
	}
	for r := 0; r < 2; r++ {
		o := Options{Rank: r, Ranks: 2, Addr: ln.Addr().String(), Tier: tier}
		if r == 0 {
			o.Listener = ln
		}
		wg.Add(1)
		go func(r int, o Options) {
			defer wg.Done()
			fabrics[r], errs[r] = Connect(o)
		}(r, o)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	return fabrics[0], fabrics[1], func() {
		for _, f := range fabrics {
			f.Kill()
		}
	}
}

func benchSockPath(b *testing.B) string {
	b.Helper()
	return b.TempDir() + "/bench.sock"
}

func benchLatency(b *testing.B, network string) {
	send, recv, stop := benchPair(b, network)
	defer stop()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, ok := recv.Recv(1)
			if !ok {
				return
			}
			if err := recv.Send(fabric.Message{From: 1, To: 0, Payload: m.Payload}); err != nil {
				return
			}
		}
	}()
	payload := core.Buffer(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.Send(fabric.Message{From: 0, To: 1, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, ok := send.Recv(0); !ok {
			b.Fatal("lost pong")
		}
	}
	b.StopTimer()
	recv.Cancel()
	wg.Wait()
}

func BenchmarkLatencyTCP(b *testing.B)  { benchLatency(b, "tcp") }
func BenchmarkLatencyUnix(b *testing.B) { benchLatency(b, "unix") }
func BenchmarkLatencyShm(b *testing.B)  { benchLatency(b, "shm") }

func benchThroughput(b *testing.B, network string, size int) {
	const (
		batchSize = 64
		window    = 8
	)
	send, recv, stop := benchPair(b, network)
	defer stop()
	payload := core.Buffer(make([]byte, size))
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		defer wg.Done()
		dst := make([]fabric.Message, batchSize)
		received := 0
		for received < b.N {
			n, ok := recv.RecvBatch(1, dst)
			if !ok {
				return
			}
			for i := 0; i < n; i++ {
				core.ReleaseBuffer(dst[i].Payload.Data)
				dst[i] = fabric.Message{}
			}
			received += n
			for i := 0; i < n; i++ {
				if (received-n+i+1)%batchSize == 0 {
					credits <- struct{}{}
				}
			}
		}
	}()
	batch := make([]fabric.Message, 0, batchSize)
	for i := 0; i < b.N; i++ {
		batch = append(batch, fabric.Message{From: 0, To: 1, Src: 0, Dest: 1, Payload: payload})
		if len(batch) == batchSize || i == b.N-1 {
			if len(batch) == batchSize {
				<-credits
			}
			if err := send.SendN(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	wg.Wait()
	b.StopTimer()
}

func BenchmarkThroughputTCP64(b *testing.B)   { benchThroughput(b, "tcp", 64) }
func BenchmarkThroughputUnix64(b *testing.B)  { benchThroughput(b, "unix", 64) }
func BenchmarkThroughputShm64(b *testing.B)   { benchThroughput(b, "shm", 64) }
func BenchmarkThroughputTCP4Ki(b *testing.B)  { benchThroughput(b, "tcp", 4096) }
func BenchmarkThroughputUnix4Ki(b *testing.B) { benchThroughput(b, "unix", 4096) }
func BenchmarkThroughputShm4Ki(b *testing.B)  { benchThroughput(b, "shm", 4096) }
