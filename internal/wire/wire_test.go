package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// connectMesh bootstraps n in-process fabrics over loopback, one per rank.
func connectMesh(t *testing.T, n int, opt Options) []*Fabric {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*Fabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		o := opt
		o.Rank, o.Ranks, o.Addr = r, n, ln.Addr().String()
		if r == 0 {
			o.Listener = ln
		}
		wg.Add(1)
		go func(r int, o Options) {
			defer wg.Done()
			fabrics[r], errs[r] = Connect(o)
		}(r, o)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabrics {
			if f != nil {
				f.Kill()
			}
		}
	})
	return fabrics
}

func shutdownAll(t *testing.T, fabrics []*Fabric) {
	t.Helper()
	var wg sync.WaitGroup
	for r, f := range fabrics {
		wg.Add(1)
		go func(r int, f *Fabric) {
			defer wg.Done()
			if err := f.Shutdown(5 * time.Second); err != nil {
				t.Errorf("rank %d shutdown: %v", r, err)
			}
		}(r, f)
	}
	wg.Wait()
}

func TestMeshRoundTrip(t *testing.T) {
	const n = 4
	fabrics := connectMesh(t, n, Options{})
	// Every rank sends one message to every other rank; every rank must
	// receive n-1 messages with intact payloads and peer attribution.
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			msg := fabric.Message{
				From: from, To: to,
				Src: core.TaskId(from), Dest: core.TaskId(to),
				Payload: core.Buffer([]byte(fmt.Sprintf("m %d->%d", from, to))),
			}
			if err := fabrics[from].Send(msg); err != nil {
				t.Fatalf("send %d->%d: %v", from, to, err)
			}
		}
	}
	for to := 0; to < n; to++ {
		seen := map[int]bool{}
		for i := 0; i < n-1; i++ {
			m, ok := fabrics[to].Recv(to)
			if !ok {
				t.Fatalf("rank %d: recv %d failed: %v", to, i, fabrics[to].Err())
			}
			want := fmt.Sprintf("m %d->%d", m.From, to)
			if string(m.Payload.Data) != want {
				t.Fatalf("rank %d: payload %q, want %q", to, m.Payload.Data, want)
			}
			if m.Src != core.TaskId(m.From) || m.Dest != core.TaskId(to) {
				t.Fatalf("rank %d: task ids %d->%d from rank %d", to, m.Src, m.Dest, m.From)
			}
			seen[m.From] = true
		}
		if len(seen) != n-1 {
			t.Fatalf("rank %d: heard from %d peers, want %d", to, len(seen), n-1)
		}
	}
	shutdownAll(t, fabrics)
}

func TestPairwiseFIFOAndBatching(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	const msgs = 500
	batch := make([]fabric.Message, 0, 10)
	seq := 0
	for seq < msgs {
		batch = batch[:0]
		for i := 0; i < cap(batch) && seq < msgs; i++ {
			batch = append(batch, fabric.Message{
				From: 0, To: 1, Src: core.TaskId(seq), Dest: 7,
				Payload: core.Buffer([]byte{byte(seq), byte(seq >> 8)}),
			})
			seq++
		}
		if err := fabrics[0].SendN(batch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		m, ok := fabrics[1].Recv(1)
		if !ok {
			t.Fatalf("recv %d failed: %v", i, fabrics[1].Err())
		}
		if m.Src != core.TaskId(i) {
			t.Fatalf("message %d arrived with src %d: FIFO order broken", i, m.Src)
		}
		if got := int(m.Payload.Data[0]) | int(m.Payload.Data[1])<<8; got != i {
			t.Fatalf("message %d payload decodes to %d", i, got)
		}
	}
	shutdownAll(t, fabrics)
}

func TestShutdownDrainsInFlight(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := fabrics[0].Send(fabric.Message{
			From: 0, To: 1, Src: core.TaskId(i),
			Payload: core.Buffer(make([]byte, 1024)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Sender shuts down immediately: everything queued must still arrive
	// before the goodbye.
	sdErr := make(chan error, 1)
	go func() { sdErr <- fabrics[0].Shutdown(5 * time.Second) }()
	for i := 0; i < msgs; i++ {
		m, ok := fabrics[1].Recv(1)
		if !ok {
			t.Fatalf("recv %d failed after sender shutdown: %v", i, fabrics[1].Err())
		}
		if m.Src != core.TaskId(i) {
			t.Fatalf("message %d has src %d", i, m.Src)
		}
	}
	if err := fabrics[1].Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-sdErr; err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	fpA := core.Fingerprint{1}
	fpB := core.Fingerprint{2}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		f, err := Connect(Options{Rank: 0, Ranks: 2, Listener: ln, Fingerprint: fpA, DialTimeout: 5 * time.Second})
		if f != nil {
			f.Kill()
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		f, err := Connect(Options{Rank: 1, Ranks: 2, Addr: addr, Fingerprint: fpB, DialTimeout: 5 * time.Second})
		if f != nil {
			f.Kill()
		}
		errs[1] = err
	}()
	wg.Wait()
	if !errors.Is(errs[0], ErrHandshake) {
		t.Errorf("rank 0: %v, want ErrHandshake", errs[0])
	}
	// Rank 1 sees either the typed reject or the rendezvous tearing down.
	if errs[1] == nil {
		t.Error("rank 1 connected despite fingerprint mismatch")
	}
}

func TestKilledPeerSurfacesTypedError(t *testing.T) {
	opt := Options{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 250 * time.Millisecond}
	fabrics := connectMesh(t, 3, opt)
	fabrics[2].Kill()
	// Ranks 0 and 1 block receiving; the dead peer must unblock them with a
	// typed transport error well within the heartbeat budget.
	for _, r := range []int{0, 1} {
		done := make(chan struct{})
		go func(r int) {
			defer close(done)
			for {
				if _, ok := fabrics[r].Recv(r); !ok {
					return
				}
			}
		}(r)
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			t.Fatalf("rank %d still blocked long after peer death", r)
		}
		if err := fabrics[r].Err(); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("rank %d: Err() = %v, want ErrPeerLost", r, err)
		}
	}
}

func TestSendAfterShutdownErrClosed(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	shutdownAll(t, fabrics)
	err := fabrics[0].Send(fabric.Message{From: 0, To: 1, Payload: core.Buffer([]byte("x"))})
	if !errors.Is(err, fabric.ErrClosed) {
		t.Fatalf("send after shutdown: %v, want ErrClosed", err)
	}
	err = fabrics[0].SendN([]fabric.Message{{From: 0, To: 1, Payload: core.Buffer([]byte("y"))}})
	if !errors.Is(err, fabric.ErrClosed) {
		t.Fatalf("sendN after shutdown: %v, want ErrClosed", err)
	}
}

func TestCancelLeavesErrNil(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	fabrics[0].Cancel()
	if _, ok := fabrics[0].Recv(0); ok {
		t.Fatal("recv succeeded on cancelled fabric")
	}
	if err := fabrics[0].Err(); err != nil {
		t.Fatalf("controller-initiated cancel set Err: %v", err)
	}
}

func TestObjectPayloadSerializedOnWire(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	if err := fabrics[0].Send(fabric.Message{
		From: 0, To: 1, Payload: core.Object(blob("serialized-object")),
	}); err != nil {
		t.Fatal(err)
	}
	m, ok := fabrics[1].Recv(1)
	if !ok {
		t.Fatal("recv failed")
	}
	if string(m.Payload.Data) != "serialized-object" {
		t.Fatalf("payload = %q", m.Payload.Data)
	}
	shutdownAll(t, fabrics)
}

type blob string

func (b blob) Serialize() []byte { return []byte(b) }

func TestSnapshotCountsEgress(t *testing.T) {
	fabrics := connectMesh(t, 2, Options{})
	for i := 0; i < 10; i++ {
		if err := fabrics[0].Send(fabric.Message{
			From: 0, To: 1, Payload: core.Buffer(make([]byte, 100)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := fabrics[1].Recv(1); !ok {
			t.Fatal("recv failed")
		}
	}
	shutdownAll(t, fabrics)
	st := fabrics[0].Snapshot()
	if st.Messages != 10 || st.Bytes != 1000 {
		t.Fatalf("sender snapshot = %+v, want 10 msgs / 1000 bytes", st)
	}
	if st := fabrics[1].Snapshot(); st.Messages != 0 {
		t.Fatalf("receiver counted ingress as egress: %+v", st)
	}
}
