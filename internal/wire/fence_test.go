package wire

import (
	"errors"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/faultinject"
)

// TestFenceSuppressesPeerLoss is the heartbeat false-positive regression:
// while an epoch fence is open the liveness timers must be suspended, so a
// peer whose frames are merely late (a faultinject delay plan pushing every
// write past the heartbeat timeout) is NOT declared lost — the fence is a
// deliberate quiet period, not evidence of death. Dropping the fence
// re-arms the timers and the same lateness is detected as loss.
func TestFenceSuppressesPeerLoss(t *testing.T) {
	const timeout = 250 * time.Millisecond
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  timeout,
		Tier:              TierUnix, // WrapConn intercepts socket writes, not rings
		// Every write rank 0 makes arrives ~3 timeouts late: alive, not dead.
		WrapConn: faultinject.SlowLink(faultinject.SlowPlan{Rank: 0, Base: 3 * timeout}),
	}
	fabrics := connectMesh(t, 2, opt)
	// Both ends fence: rank 1 suspends its read-side loss timer, rank 0 its
	// write-side one (its delayed heartbeat writes blow their own deadline).
	fabrics[0].Fence(true)
	fabrics[1].Fence(true)

	// Four timeout windows pass with every heartbeat arriving late; a
	// fenced fabric must not misread the silence.
	time.Sleep(4 * timeout)
	if err := fabrics[1].Err(); err != nil {
		t.Fatalf("peer declared lost during fence: %v", err)
	}
	if lost := fabrics[1].LostPeers(); len(lost) != 0 {
		t.Fatalf("LostPeers during fence = %v, want none", lost)
	}

	// Fence down: the same lateness is now a real liveness failure.
	fabrics[0].Fence(false)
	fabrics[1].Fence(false)
	deadline := time.Now().Add(10 * time.Second)
	for fabrics[1].Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("slow peer never declared lost after the fence dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := fabrics[1].Err(); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Err() = %v, want ErrPeerLost", err)
	}
}

// TestGateJoinDrainRoundTrip exercises the membership gate end to end:
// join admission with identity assignment, per-epoch ticket delivery,
// status reporting, one-shot drain requests, and fingerprint vetting.
func TestGateJoinDrainRoundTrip(t *testing.T) {
	var fp core.Fingerprint
	fp[0] = 0xbf
	g, err := NewGate("127.0.0.1:0", 2, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sess, err := JoinGate(g.Addr(), fp, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Member() != 2 {
		t.Fatalf("assigned member %d, want 2 (firstMember)", sess.Member())
	}
	ev := nextEvent(t, g)
	if ev.Kind != KindJoin || ev.Member != 2 {
		t.Fatalf("join event %+v, want {KindJoin 2}", ev)
	}

	want := Ticket{Action: ActionRun, Member: 2, Epoch: 3, Rank: 1, Ranks: 4,
		Addr: "127.0.0.1:9999", Members: []int{0, 1, 2, 5}, Retired: []int{3}}
	if err := g.SendTicket(2, want); err != nil {
		t.Fatal(err)
	}
	got, err := sess.NextTicket(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Action != want.Action || got.Epoch != want.Epoch || got.Rank != want.Rank ||
		got.Ranks != want.Ranks || got.Addr != want.Addr || len(got.Members) != len(want.Members) {
		t.Fatalf("ticket %+v, want %+v", got, want)
	}
	for i := range want.Members {
		if got.Members[i] != want.Members[i] {
			t.Fatalf("ticket members %v, want %v", got.Members, want.Members)
		}
	}
	if len(got.Retired) != 1 || got.Retired[0] != 3 {
		t.Fatalf("ticket retired %v, want [3]", got.Retired)
	}

	if err := sess.Report(Status{Epoch: 3, OK: true, Detail: "epoch done"}); err != nil {
		t.Fatal(err)
	}
	st, err := g.AwaitStatus(2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Member != 2 || st.Epoch != 3 || !st.OK || st.Detail != "epoch done" {
		t.Fatalf("status %+v", st)
	}

	if err := RequestDrain(g.Addr(), 1, fp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ev = nextEvent(t, g)
	if ev.Kind != KindDrain || ev.Member != 1 {
		t.Fatalf("drain event %+v, want {KindDrain 1}", ev)
	}

	// A mismatched fingerprint is refused at the door.
	var bad core.Fingerprint
	if _, err := JoinGate(g.Addr(), bad, 5*time.Second); !errors.Is(err, ErrHandshake) {
		t.Fatalf("bad-fingerprint join: %v, want ErrHandshake", err)
	}

	if err := g.SendTicket(2, Ticket{Action: ActionExit}); err != nil {
		t.Fatal(err)
	}
	exit, err := sess.NextTicket(5 * time.Second)
	if err != nil || exit.Action != ActionExit {
		t.Fatalf("exit ticket %+v, err %v", exit, err)
	}
	sess.Close()
	deadline := time.Now().Add(5 * time.Second)
	for g.Alive(2) {
		if time.Now().After(deadline) {
			t.Fatal("gate never noticed the member leaving")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func nextEvent(t *testing.T, g *Gate) Event {
	t.Helper()
	select {
	case ev := <-g.Events():
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no membership event")
		return Event{}
	}
}
