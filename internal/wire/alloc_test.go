package wire

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Allocation regression tests: pin the steady-state allocation count of the
// wire send/receive paths so a change that silently adds per-message heap
// traffic fails loudly. The bounds have headroom over the measured numbers
// (see bench_test.go) because AllocsPerRun averages over global mallocs and
// the runtime occasionally charges unrelated background work to the window;
// a real regression (per-message buffer or closure allocations) blows
// through them immediately.

// measureRoundTrip reports the average global allocations of one 64-byte
// round trip over an established 2-rank mesh: send, echo, receive.
func measureRoundTrip(t *testing.T, fabrics []*Fabric) float64 {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, ok := fabrics[1].Recv(1)
			if !ok {
				return
			}
			if err := fabrics[1].Send(fabric.Message{From: 1, To: 0, Payload: m.Payload}); err != nil {
				return
			}
		}
	}()
	payload := core.Buffer(make([]byte, 64))
	roundTrip := func() {
		if err := fabrics[0].Send(fabric.Message{From: 0, To: 1, Payload: payload}); err != nil {
			t.Error(err)
			return
		}
		if _, ok := fabrics[0].Recv(0); !ok {
			t.Error("lost pong")
		}
	}
	// Warm the arena and the inline path before measuring.
	for i := 0; i < 64; i++ {
		roundTrip()
	}
	avg := testing.AllocsPerRun(512, roundTrip)
	fabrics[1].Cancel()
	<-done
	return avg
}

func TestRoundTripAllocsTCP(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(rank int, o *Options) {
		o.Tier = TierTCP
	})
	requireMesh(t, fabrics, errs)
	// Measured 6 allocs per round trip (two mailbox hand-offs plus the
	// receive-side arena wrapper on each side).
	if avg := measureRoundTrip(t, fabrics); avg > 8 {
		t.Errorf("TCP round trip averaged %.1f allocs, want <= 8", avg)
	}
}

func TestRoundTripAllocsUnix(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(rank int, o *Options) {
		o.Tier = TierUnix
	})
	requireMesh(t, fabrics, errs)
	if avg := measureRoundTrip(t, fabrics); avg > 8 {
		t.Errorf("unix round trip averaged %.1f allocs, want <= 8", avg)
	}
}

func TestRoundTripAllocsShm(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(rank int, o *Options) {
		o.Tier = TierShm
	})
	requireMesh(t, fabrics, errs)
	// The ring path allocates nothing of its own: the same mailbox
	// hand-offs and arena wrapper as the socket tiers, minus the kernel.
	if avg := measureRoundTrip(t, fabrics); avg > 8 {
		t.Errorf("shm round trip averaged %.1f allocs, want <= 8", avg)
	}
}

// TestStreamingAllocsPerMessage pins the per-message allocation count of the
// batched streaming path: SendN on the sender, RecvBatch plus arena release
// on the receiver — the path the throughput benchmarks exercise.
func TestStreamingAllocsPerMessage(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(rank int, o *Options) {
		o.Tier = TierTCP
	})
	requireMesh(t, fabrics, errs)

	const batchSize = 64
	acks := make(chan struct{}, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		dst := make([]fabric.Message, batchSize)
		pending := 0
		for {
			n, ok := fabrics[1].RecvBatch(1, dst)
			if !ok {
				return
			}
			for i := 0; i < n; i++ {
				core.ReleaseBuffer(dst[i].Payload.Data)
				dst[i] = fabric.Message{}
			}
			for pending += n; pending >= batchSize; pending -= batchSize {
				acks <- struct{}{}
			}
		}
	}()

	payload := core.Buffer(make([]byte, 64))
	batch := make([]fabric.Message, batchSize)
	sendBatch := func() {
		for i := range batch {
			batch[i] = fabric.Message{From: 0, To: 1, Src: 0, Dest: 1, Payload: payload}
		}
		if err := fabrics[0].SendN(batch); err != nil {
			t.Error(err)
			return
		}
		<-acks
	}
	for i := 0; i < 8; i++ {
		sendBatch()
	}
	avg := testing.AllocsPerRun(64, sendBatch)
	fabrics[1].Cancel()
	<-done

	// Measured 2 allocs per message (the receive-side payload wrapper pair);
	// the bound also absorbs the ack hand-off amortized across the batch.
	if perMsg := avg / batchSize; perMsg > 3 {
		t.Errorf("streaming path averaged %.2f allocs per message, want <= 3", perMsg)
	}
}
