package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Wire frame format. Every frame is length-prefixed:
//
//	u32  length of the rest of the frame (type byte + body)
//	u8   frame type
//	...  body
//
// Bodies by type:
//
//	frameData:      u64 src task id | u64 dest task id | u64 seq |
//	                u32 attempt | payload bytes
//	frameHeartbeat: empty
//	frameGoodbye:   empty — the peer has flushed everything it will ever
//	                send; a subsequent EOF on the connection is clean
//	frameHello:     u32 rank | u32 ranks | u32 epoch | 32-byte fingerprint |
//	                u16 addr length | advertised data address (dialer side)
//	frameWelcome:   u32 n | n × (u16 addr length | address), the data
//	                address table indexed by rank (rendezvous reply)
//	frameReject:    reason string (handshake refusal)
//	frameAccept:    empty (handshake confirmation)
//
// All integers are little-endian. The length prefix never exceeds
// maxFrameSize; larger frames poison the connection.
const (
	frameData byte = iota + 1
	frameHeartbeat
	frameGoodbye
	frameHello
	frameWelcome
	frameReject
	frameAccept
)

const (
	frameHeaderSize = 5            // u32 length + u8 type
	dataHeaderSize  = 28           // u64 src + u64 dest + u64 seq + u32 attempt
	maxFrameSize    = 1 << 30      // hard ceiling on a single frame
	fingerprintSize = 32           // sha256
	maxAddrLen      = 1<<16 - 1    // address strings are u16-length-prefixed
)

// putFrameHeader writes the 5-byte frame header for a body of n bytes.
func putFrameHeader(dst []byte, typ byte, n int) {
	binary.LittleEndian.PutUint32(dst, uint32(n+1))
	dst[4] = typ
}

// encodeDataFrame appends one data frame carrying payload to dst.
func encodeDataFrame(dst []byte, src, dest core.TaskId, seq uint64, attempt uint32, payload []byte) []byte {
	var hdr [frameHeaderSize + dataHeaderSize]byte
	putFrameHeader(hdr[:], frameData, dataHeaderSize+len(payload))
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize:], uint64(src))
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize+8:], uint64(dest))
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize+16:], seq)
	binary.LittleEndian.PutUint32(hdr[frameHeaderSize+24:], attempt)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// dataFrameSize returns the encoded size of a data frame with an n-byte
// payload.
func dataFrameSize(n int) int { return frameHeaderSize + dataHeaderSize + n }

// controlFrame returns an encoded empty-body frame.
func controlFrame(typ byte) []byte {
	var b [frameHeaderSize]byte
	putFrameHeader(b[:], typ, 0)
	return b[:]
}

// readFrame reads one frame header and returns its type and body length.
func readFrame(r io.Reader) (typ byte, n int, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	l := binary.LittleEndian.Uint32(hdr[:4])
	if l < 1 || l > maxFrameSize {
		return 0, 0, fmt.Errorf("wire: frame length %d out of range", l)
	}
	return hdr[4], int(l) - 1, nil
}

// hello is the handshake announcement either side of a connection sends
// first.
type hello struct {
	Rank        int
	Ranks       int
	Epoch       int
	Fingerprint core.Fingerprint
	Addr        string // advertised data listener address ("" on peer dials)
}

func encodeHello(h hello) []byte {
	body := 4 + 4 + 4 + fingerprintSize + 2 + len(h.Addr)
	b := make([]byte, frameHeaderSize, frameHeaderSize+body)
	putFrameHeader(b, frameHello, body)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Rank))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Ranks))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Epoch))
	b = append(b, h.Fingerprint[:]...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(h.Addr)))
	return append(b, h.Addr...)
}

func decodeHello(body []byte) (hello, error) {
	var h hello
	if len(body) < 4+4+4+fingerprintSize+2 {
		return h, fmt.Errorf("wire: hello frame truncated (%d bytes)", len(body))
	}
	h.Rank = int(binary.LittleEndian.Uint32(body))
	h.Ranks = int(binary.LittleEndian.Uint32(body[4:]))
	h.Epoch = int(binary.LittleEndian.Uint32(body[8:]))
	copy(h.Fingerprint[:], body[12:12+fingerprintSize])
	off := 12 + fingerprintSize
	n := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if len(body) != off+n {
		return h, fmt.Errorf("wire: hello frame length mismatch")
	}
	h.Addr = string(body[off:])
	return h, nil
}

func encodeWelcome(addrs []string) ([]byte, error) {
	body := 4
	for _, a := range addrs {
		if len(a) > maxAddrLen {
			return nil, fmt.Errorf("wire: address too long: %q", a)
		}
		body += 2 + len(a)
	}
	b := make([]byte, frameHeaderSize, frameHeaderSize+body)
	putFrameHeader(b, frameWelcome, body)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(addrs)))
	for _, a := range addrs {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(a)))
		b = append(b, a...)
	}
	return b, nil
}

func decodeWelcome(body []byte) ([]string, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("wire: welcome frame truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > 1<<20 {
		return nil, fmt.Errorf("wire: welcome table of %d entries", n)
	}
	addrs := make([]string, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		if len(body) < off+2 {
			return nil, fmt.Errorf("wire: welcome frame truncated at entry %d", i)
		}
		l := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body) < off+l {
			return nil, fmt.Errorf("wire: welcome frame truncated at entry %d", i)
		}
		addrs = append(addrs, string(body[off:off+l]))
		off += l
	}
	if off != len(body) {
		return nil, fmt.Errorf("wire: welcome frame length mismatch")
	}
	return addrs, nil
}

func encodeReject(reason string) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+len(reason))
	putFrameHeader(b, frameReject, len(reason))
	return append(b, reason...)
}
