package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Wire frame format. Every frame is length-prefixed and checksummed:
//
//	u32  length of the type byte + body (i.e. 1 + len(body))
//	u8   frame type
//	u32  CRC32C (Castagnoli) of the body
//	...  body
//
// Bodies by type:
//
//	frameData:      u64 src task id | u64 dest task id | u64 run |
//	                u64 seq | u32 attempt | payload bytes; run identifies
//	                the graph instance when many runs multiplex over one
//	                fabric (0 = unmultiplexed one-shot traffic)
//	frameHeartbeat: empty
//	frameGoodbye:   empty — the peer has flushed everything it will ever
//	                send; a subsequent EOF on the connection is clean
//	frameHello:     u32 rank | u32 ranks | u32 epoch | u8 tier | u8 kind |
//	                32-byte fingerprint | u16+tcp data address |
//	                u16+unix data address | u16+host id |
//	                u16+shm dir | u64 shm generation; kind distinguishes a
//	                data-plane worker (KindWorker) from a membership-gate
//	                dial (KindJoin / KindDrain) — the data-plane rendezvous
//	                rejects the latter
//	frameWelcome:   u32 n | n × (u16+tcp addr | u16+unix addr | u16+host
//	                id | u16+shm dir | u64 shm gen), the endpoint table
//	                indexed by rank (rendezvous reply); co-located ranks
//	                use the unix endpoints and, when both advertise a shm
//	                dir, a shared-memory ring pair
//	frameReject:    reason string (handshake refusal)
//	frameAccept:    empty (handshake confirmation)
//	frameDoorbell:  empty — a shm-ring wakeup: "check your rings". Sent
//	                when the remote consumer parked (cwait) before a
//	                publish, or the remote producer stalled full (pwait)
//	                before space was freed
//	frameShmOffer:  u64 generation | u64 ring bytes | u16+region path;
//	                an empty path withdraws the offer (dialer cannot shm)
//	frameShmAck:    u8 ok (1 = region mapped, 0 = declined)
//
// All integers are little-endian. The length prefix never exceeds
// maxFrameSize; larger frames poison the connection. A frame whose body
// does not match its CRC32C fails decode with a typed ErrCorruptFrame —
// the receiver treats the connection as lost (a flipped bit means the
// stream can no longer be trusted) and the recovery layer re-executes
// around it, exactly as for a crashed peer.
const (
	frameData byte = iota + 1
	frameHeartbeat
	frameGoodbye
	frameHello
	frameWelcome
	frameReject
	frameAccept
	frameDoorbell
	frameShmOffer
	frameShmAck
	frameTicket
	frameStatus
)

// HelloKind tags what a dialing process wants from rank 0: to bootstrap the
// data plane of the current epoch (worker), to join the membership at the
// next epoch boundary, or to request a graceful drain.
type HelloKind byte

const (
	KindWorker HelloKind = iota
	KindJoin
	KindDrain
)

func (k HelloKind) String() string {
	switch k {
	case KindWorker:
		return "worker"
	case KindJoin:
		return "join"
	case KindDrain:
		return "drain"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

const (
	frameHeaderSize = 9         // u32 length + u8 type + u32 crc32c(body)
	dataHeaderSize  = 36        // u64 src + u64 dest + u64 run + u64 seq + u32 attempt
	maxFrameSize    = 1 << 30   // hard ceiling on a single frame
	fingerprintSize = 32        // sha256
	maxAddrLen      = 1<<16 - 1 // address strings are u16-length-prefixed
)

// DataFrameOverhead is the number of framing bytes preceding the payload of
// a data frame (frame header plus data header). Exported for fault
// injectors that aim at payload bytes: a write of at least
// DataFrameOverhead+1 bytes carries payload, while control frames
// (heartbeats, goodbyes) are far smaller.
const DataFrameOverhead = frameHeaderSize + dataHeaderSize

// castagnoli is the CRC32C table, hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame marks a frame whose body failed its CRC32C check: the
// byte stream is untrustworthy, so the receiver declares the peer lost.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// errFrameLength marks a length prefix outside [1, maxFrameSize]. On a
// socket it usually means a framing bug; inside a shm ring it is the
// signature of a torn write and is surfaced as ErrCorruptFrame.
var errFrameLength = errors.New("wire: frame length out of range")

// finishFrame stamps the frame header of b (whose first frameHeaderSize
// bytes are reserved and whose remainder is the body) and returns b.
func finishFrame(b []byte, typ byte) []byte {
	body := b[frameHeaderSize:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(body)+1))
	b[4] = typ
	binary.LittleEndian.PutUint32(b[5:9], crc32.Checksum(body, castagnoli))
	return b
}

// encodeDataHeader stamps the complete framing of one data frame — frame
// header plus data header — into hdr, which must be exactly
// DataFrameOverhead bytes. The CRC is accumulated over the data header and
// the payload, but the payload itself is NOT copied: the vectored write
// path hands hdr and the payload to the kernel as adjacent iovecs.
func encodeDataHeader(hdr []byte, src, dest core.TaskId, run, seq uint64, attempt uint32, payload []byte) {
	_ = hdr[DataFrameOverhead-1]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+dataHeaderSize+len(payload)))
	hdr[4] = frameData
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize:], uint64(src))
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize+8:], uint64(dest))
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize+16:], run)
	binary.LittleEndian.PutUint64(hdr[frameHeaderSize+24:], seq)
	binary.LittleEndian.PutUint32(hdr[frameHeaderSize+32:], attempt)
	crc := crc32.Update(0, castagnoli, hdr[frameHeaderSize:DataFrameOverhead])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc)
}

// encodeDataFrame appends one data frame carrying payload to dst — the
// contiguous form used when the connection cannot take vectored writes
// (fault-injection wrappers, which count whole-batch Write calls).
func encodeDataFrame(dst []byte, src, dest core.TaskId, run, seq uint64, attempt uint32, payload []byte) []byte {
	var hdr [DataFrameOverhead]byte
	encodeDataHeader(hdr[:], src, dest, run, seq, attempt, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// dataFrameSize returns the encoded size of a data frame with an n-byte
// payload.
func dataFrameSize(n int) int { return frameHeaderSize + dataHeaderSize + n }

// controlFrame returns an encoded empty-body frame.
func controlFrame(typ byte) []byte {
	var b [frameHeaderSize]byte
	return finishFrame(b[:], typ)
}

// readFrame reads one frame header and returns its type, body length and
// the body's expected CRC32C. The caller reads the body and verifies.
func readFrame(r io.Reader) (typ byte, n int, crc uint32, err error) {
	return readFrameLimit(r, maxFrameSize)
}

// readFrameLimit is readFrame with an explicit frame-size ceiling: the
// declared length is validated before any body allocation, so a hostile or
// corrupt length prefix costs nothing. (The fuzz harness uses a small
// limit; production paths use maxFrameSize.)
func readFrameLimit(r io.Reader, max int) (typ byte, n int, crc uint32, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, err
	}
	l := binary.LittleEndian.Uint32(hdr[0:4])
	if l < 1 || l > uint32(max) {
		return 0, 0, 0, fmt.Errorf("%w: %d", errFrameLength, l)
	}
	return hdr[4], int(l) - 1, binary.LittleEndian.Uint32(hdr[5:9]), nil
}

// verifyBody checks a fully read frame body against the header's CRC32C.
func verifyBody(typ byte, body []byte, crc uint32) error {
	if got := crc32.Checksum(body, castagnoli); got != crc {
		return fmt.Errorf("%w: type %d, %d-byte body, crc %08x != header %08x",
			ErrCorruptFrame, typ, len(body), got, crc)
	}
	return nil
}

// endpoint is one rank's advertised data endpoints: its TCP listener, its
// unix-domain listener (empty when the rank could not or should not open
// one), an opaque host identity used to decide co-location, and the
// shared-memory fields — the directory this rank creates ring files in
// (empty when it cannot or should not use shm) plus the ring generation it
// will stamp them with (the fabric epoch, so a straggler's stale region is
// never mapped).
type endpoint struct {
	TCP    string
	Unix   string
	HostID string
	Shm    string
	ShmGen uint64
}

// endpointWireSize is the encoded size of one endpoint table entry: four
// u16 length prefixes plus the u64 generation plus the string bytes.
func endpointWireSize(ep endpoint) int {
	return 16 + len(ep.TCP) + len(ep.Unix) + len(ep.HostID) + len(ep.Shm)
}

func appendEndpoint(b []byte, ep endpoint) []byte {
	b = appendString(b, ep.TCP)
	b = appendString(b, ep.Unix)
	b = appendString(b, ep.HostID)
	b = appendString(b, ep.Shm)
	return binary.LittleEndian.AppendUint64(b, ep.ShmGen)
}

// takeEndpoint consumes one endpoint table entry from body at off,
// returning the new offset or -1 on truncation.
func takeEndpoint(body []byte, off int) (endpoint, int) {
	var ep endpoint
	ep.TCP, off = takeString(body, off)
	if off >= 0 {
		ep.Unix, off = takeString(body, off)
	}
	if off >= 0 {
		ep.HostID, off = takeString(body, off)
	}
	if off >= 0 {
		ep.Shm, off = takeString(body, off)
	}
	if off >= 0 {
		if len(body) < off+8 {
			return ep, -1
		}
		ep.ShmGen = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	return ep, off
}

// hello is the handshake announcement either side of a connection sends
// first.
type hello struct {
	Rank        int
	Ranks       int
	Epoch       int
	Tier        Tier
	Kind        HelloKind // zero (KindWorker) on all data-plane handshakes
	Fingerprint core.Fingerprint
	Endpoint    endpoint // advertised data endpoints (zero on peer dials)
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// takeString consumes one u16-length-prefixed string from body at off,
// returning the string and the new offset, or -1 on truncation.
func takeString(body []byte, off int) (string, int) {
	if len(body) < off+2 {
		return "", -1
	}
	l := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if len(body) < off+l {
		return "", -1
	}
	return string(body[off : off+l]), off + l
}

func encodeHello(h hello) []byte {
	body := 4 + 4 + 4 + 2 + fingerprintSize + endpointWireSize(h.Endpoint)
	b := make([]byte, frameHeaderSize, frameHeaderSize+body)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Rank))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Ranks))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Epoch))
	b = append(b, byte(h.Tier))
	b = append(b, byte(h.Kind))
	b = append(b, h.Fingerprint[:]...)
	b = appendEndpoint(b, h.Endpoint)
	return finishFrame(b, frameHello)
}

func decodeHello(body []byte) (hello, error) {
	var h hello
	if len(body) < 4+4+4+2+fingerprintSize+16 {
		return h, fmt.Errorf("wire: hello frame truncated (%d bytes)", len(body))
	}
	h.Rank = int(binary.LittleEndian.Uint32(body))
	h.Ranks = int(binary.LittleEndian.Uint32(body[4:]))
	h.Epoch = int(binary.LittleEndian.Uint32(body[8:]))
	h.Tier = Tier(body[12])
	h.Kind = HelloKind(body[13])
	copy(h.Fingerprint[:], body[14:14+fingerprintSize])
	var off int
	h.Endpoint, off = takeEndpoint(body, 14+fingerprintSize)
	if off != len(body) {
		return h, fmt.Errorf("wire: hello frame length mismatch")
	}
	return h, nil
}

func encodeWelcome(eps []endpoint) ([]byte, error) {
	body := 4
	for _, ep := range eps {
		if len(ep.TCP) > maxAddrLen || len(ep.Unix) > maxAddrLen || len(ep.HostID) > maxAddrLen || len(ep.Shm) > maxAddrLen {
			return nil, fmt.Errorf("wire: endpoint string too long: %+v", ep)
		}
		body += endpointWireSize(ep)
	}
	b := make([]byte, frameHeaderSize, frameHeaderSize+body)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(eps)))
	for _, ep := range eps {
		b = appendEndpoint(b, ep)
	}
	return finishFrame(b, frameWelcome), nil
}

func decodeWelcome(body []byte) ([]endpoint, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("wire: welcome frame truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > 1<<20 {
		return nil, fmt.Errorf("wire: welcome table of %d entries", n)
	}
	eps := make([]endpoint, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		var ep endpoint
		ep, off = takeEndpoint(body, off)
		if off < 0 {
			return nil, fmt.Errorf("wire: welcome frame truncated at entry %d", i)
		}
		eps = append(eps, ep)
	}
	if off != len(body) {
		return nil, fmt.Errorf("wire: welcome frame length mismatch")
	}
	return eps, nil
}

func encodeReject(reason string) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+len(reason))
	b = append(b, reason...)
	return finishFrame(b, frameReject)
}

func encodeShmOffer(path string, gen, ringBytes uint64) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+18+len(path))
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint64(b, ringBytes)
	b = appendString(b, path)
	return finishFrame(b, frameShmOffer)
}

func decodeShmOffer(body []byte) (path string, gen, ringBytes uint64, err error) {
	if len(body) < 18 {
		return "", 0, 0, fmt.Errorf("wire: shm offer truncated (%d bytes)", len(body))
	}
	gen = binary.LittleEndian.Uint64(body)
	ringBytes = binary.LittleEndian.Uint64(body[8:])
	path, off := takeString(body, 16)
	if off != len(body) {
		return "", 0, 0, fmt.Errorf("wire: shm offer length mismatch")
	}
	return path, gen, ringBytes, nil
}

// TicketAction tells a gate session what to do with the epoch described by
// a Ticket.
type TicketAction byte

const (
	// ActionRun: connect to the epoch's rendezvous as the given rank and
	// execute.
	ActionRun TicketAction = iota
	// ActionDrain: do not connect; flush local state and report, then wait
	// for the exit ticket.
	ActionDrain
	// ActionExit: the session is released; close and terminate.
	ActionExit
	// ActionAdmit: the gate's immediate reply to a join hello, carrying the
	// member identity assigned to the session; epoch tickets follow.
	ActionAdmit
)

// Ticket is the coordinator's per-epoch instruction to a gate session: the
// epoch number, the member's logical rank (when running), the epoch's total
// rank count and rendezvous address, and the full member identity table
// (Members[l] = physical member id of logical rank l) so every process can
// derive the epoch's task map deterministically.
type Ticket struct {
	Action  TicketAction
	Member  int
	Epoch   int
	Rank    int
	Ranks   int
	Addr    string
	Members []int
	// Retired lists members drained since the previous epoch whose journals
	// are closed and safe to adopt handed-off lineage from.
	Retired []int
}

func encodeTicket(t Ticket) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+27+len(t.Addr)+4*(len(t.Members)+len(t.Retired)))
	b = append(b, byte(t.Action))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Member))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Epoch))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Rank))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Ranks))
	b = appendString(b, t.Addr)
	for _, table := range [][]int{t.Members, t.Retired} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(table)))
		for _, m := range table {
			b = binary.LittleEndian.AppendUint32(b, uint32(m))
		}
	}
	return finishFrame(b, frameTicket)
}

func decodeTicket(body []byte) (Ticket, error) {
	var t Ticket
	if len(body) < 17 {
		return t, fmt.Errorf("wire: ticket frame truncated (%d bytes)", len(body))
	}
	t.Action = TicketAction(body[0])
	t.Member = int(binary.LittleEndian.Uint32(body[1:]))
	t.Epoch = int(binary.LittleEndian.Uint32(body[5:]))
	t.Rank = int(binary.LittleEndian.Uint32(body[9:]))
	t.Ranks = int(binary.LittleEndian.Uint32(body[13:]))
	addr, off := takeString(body, 17)
	if off < 0 {
		return t, fmt.Errorf("wire: ticket frame truncated")
	}
	t.Addr = addr
	for _, table := range []*[]int{&t.Members, &t.Retired} {
		if len(body) < off+4 {
			return t, fmt.Errorf("wire: ticket frame truncated")
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if n > 1<<20 || len(body) < off+4*n {
			return t, fmt.Errorf("wire: ticket member table length mismatch")
		}
		*table = make([]int, n)
		for i := range *table {
			(*table)[i] = int(binary.LittleEndian.Uint32(body[off+4*i:]))
		}
		off += 4 * n
	}
	if off != len(body) {
		return t, fmt.Errorf("wire: ticket frame length mismatch")
	}
	return t, nil
}

// Status is a gate session's report back to the coordinator after acting on
// a ticket: which epoch it finished, whether it succeeded, and a short
// detail string (an error summary, or counters like "replayed=3").
type Status struct {
	Member int
	Epoch  int
	OK     bool
	Detail string
}

func encodeStatus(s Status) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+11+len(s.Detail))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Member))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Epoch))
	if s.OK {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendString(b, s.Detail)
	return finishFrame(b, frameStatus)
}

func decodeStatus(body []byte) (Status, error) {
	var s Status
	if len(body) < 11 {
		return s, fmt.Errorf("wire: status frame truncated (%d bytes)", len(body))
	}
	s.Member = int(binary.LittleEndian.Uint32(body))
	s.Epoch = int(binary.LittleEndian.Uint32(body[4:]))
	s.OK = body[8] == 1
	detail, off := takeString(body, 9)
	if off != len(body) {
		return s, fmt.Errorf("wire: status frame length mismatch")
	}
	s.Detail = detail
	return s, nil
}

func encodeShmAck(ok bool) []byte {
	b := make([]byte, frameHeaderSize, frameHeaderSize+1)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return finishFrame(b, frameShmAck)
}
