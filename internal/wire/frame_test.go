package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

// frameReader wraps encoded frame bytes in the reader the data path uses.
func frameReader(b []byte) *connReader {
	return &connReader{bufio.NewReaderSize(bytes.NewReader(b), 64<<10)}
}

// decodeFabric is a minimal fabric for exercising readOne without a mesh.
func decodeFabric() (*Fabric, *peer) {
	return &Fabric{opt: Options{Rank: 1, Ranks: 2}}, &peer{rank: 0}
}

func TestControlFrameRoundTrip(t *testing.T) {
	for _, typ := range []byte{frameHeartbeat, frameGoodbye, frameAccept} {
		enc := controlFrame(typ)
		if len(enc) != frameHeaderSize {
			t.Fatalf("control frame of %d bytes", len(enc))
		}
		gtyp, n, crc, err := readFrame(bytes.NewReader(enc))
		if err != nil || gtyp != typ || n != 0 {
			t.Fatalf("type %d: decoded typ=%d n=%d err=%v", typ, gtyp, n, err)
		}
		if err := verifyBody(gtyp, nil, crc); err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload bytes")
	enc := encodeDataFrame(nil, 3, 9, 11, 42, 7, payload)
	if len(enc) != dataFrameSize(len(payload)) {
		t.Fatalf("encoded %d bytes, dataFrameSize says %d", len(enc), dataFrameSize(len(payload)))
	}
	f, p := decodeFabric()
	m, typ, err := f.readOne(p, frameReader(enc))
	if err != nil || typ != frameData {
		t.Fatalf("readOne: typ=%d err=%v", typ, err)
	}
	if m.Src != 3 || m.Dest != 9 || m.Run != 11 || m.Seq != 42 || m.Attempt != 7 {
		t.Fatalf("decoded header %d->%d run=%d seq=%d attempt=%d", m.Src, m.Dest, m.Run, m.Seq, m.Attempt)
	}
	if !bytes.Equal(m.Payload.Data, payload) {
		t.Fatalf("payload %q", m.Payload.Data)
	}
	m.Payload.Release()
}

func TestCorruptDataFrameTyped(t *testing.T) {
	// A flipped bit anywhere after the length prefix must surface as a
	// typed ErrCorruptFrame, not as valid payload.
	for _, off := range []int{5, frameHeaderSize, frameHeaderSize + dataHeaderSize, frameHeaderSize + dataHeaderSize + 3} {
		enc := encodeDataFrame(nil, 1, 2, 0, 3, 4, []byte("precious"))
		enc[off] ^= 0x01
		f, p := decodeFabric()
		_, _, err := f.readOne(p, frameReader(enc))
		if off == 5 {
			// Flipping the stored CRC itself also fails the compare.
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("flip at %d (crc field): err = %v", off, err)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptFrame", off, err)
		}
	}
}

func TestCorruptControlFrameTyped(t *testing.T) {
	enc := controlFrame(frameHeartbeat)
	enc[6] ^= 0x80 // damage the CRC field of an empty-body frame
	f, p := decodeFabric()
	if _, _, err := f.readOne(p, frameReader(enc)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt heartbeat: err = %v, want ErrCorruptFrame", err)
	}
}

func TestTruncatedLengthPrefix(t *testing.T) {
	// Regression: a header cut anywhere inside its 9 bytes is an EOF-class
	// error, never a panic or a bogus frame.
	full := encodeDataFrame(nil, 1, 2, 0, 3, 4, []byte("x"))
	for cut := 0; cut < frameHeaderSize; cut++ {
		_, _, _, err := readFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("header truncated to %d bytes decoded successfully", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("header truncated to %d bytes: err = %v, want EOF-class", cut, err)
		}
	}
}

func TestOversizedDeclaredLength(t *testing.T) {
	// Regression: a hostile length prefix is rejected from the header alone
	// — before any body allocation.
	var hdr [frameHeaderSize]byte
	for _, l := range []uint32{0, maxFrameSize + 1, 1 << 31, 0xFFFFFFFF} {
		binary.LittleEndian.PutUint32(hdr[0:4], l)
		hdr[4] = frameData
		if _, _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
			t.Fatalf("declared length %d accepted", l)
		}
	}
	// The parameterized limit rejects lengths the production ceiling allows.
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<20)
	if _, _, _, err := readFrameLimit(bytes.NewReader(hdr[:]), 1<<10); err == nil {
		t.Fatal("readFrameLimit ignored its ceiling")
	}
}

func TestHandshakeFramesChecksummed(t *testing.T) {
	h := hello{Rank: 2, Ranks: 4, Epoch: 1, Tier: TierAuto,
		Endpoint: endpoint{TCP: "127.0.0.1:9999", Unix: "/tmp/r2.sock", HostID: "host-a/boot"}}
	enc := encodeHello(h)
	typ, n, crc, err := readFrame(bytes.NewReader(enc))
	if err != nil || typ != frameHello {
		t.Fatalf("hello header: typ=%d err=%v", typ, err)
	}
	body := enc[frameHeaderSize : frameHeaderSize+n]
	if err := verifyBody(typ, body, crc); err != nil {
		t.Fatal(err)
	}
	got, err := decodeHello(body)
	if err != nil || got != h {
		t.Fatalf("decodeHello = %+v, %v", got, err)
	}
	// A corrupted hello fails verification.
	enc[frameHeaderSize+2] ^= 0x04
	if err := verifyBody(typ, enc[frameHeaderSize:frameHeaderSize+n], crc); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt hello: err = %v", err)
	}
}

// FuzzFrameDecode drives the frame decoder with arbitrary byte streams: it
// must never panic, never allocate beyond the declared limit, and only
// deliver bodies that pass their CRC.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(controlFrame(frameHeartbeat))
	f.Add(encodeDataFrame(nil, 1, 2, 0, 3, 4, []byte("seed payload")))
	f.Add(encodeHello(hello{Rank: 1, Ranks: 2, Endpoint: endpoint{TCP: "a:1", HostID: "h"}}))
	w, _ := encodeWelcome([]endpoint{{TCP: "x:1", HostID: "h"}, {TCP: "y:2", Unix: "/tmp/y.sock", HostID: "h"}})
	f.Add(w)
	// Truncated header seed.
	f.Add([]byte{5, 0, 0})
	// Oversized declared length seed.
	over := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(over, 0xFFFFFFF0)
	f.Add(over)
	// Valid header, corrupt body seed.
	bad := encodeDataFrame(nil, 1, 2, 0, 3, 4, []byte("will corrupt"))
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 16
		r := bytes.NewReader(data)
		for {
			typ, n, crc, err := readFrameLimit(r, max)
			if err != nil {
				return
			}
			if n < 0 || n >= max {
				t.Fatalf("readFrameLimit returned body length %d past limit %d", n, max)
			}
			body := make([]byte, n)
			if _, err := io.ReadFull(r, body); err != nil {
				return
			}
			if err := verifyBody(typ, body, crc); err != nil {
				if !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("verifyBody returned untyped error %v", err)
				}
				return
			}
			// A body that passed its CRC must decode without panicking.
			switch typ {
			case frameHello:
				decodeHello(body)
			case frameWelcome:
				decodeWelcome(body)
			case frameData:
				if n >= dataHeaderSize {
					_ = core.TaskId(binary.LittleEndian.Uint64(body))
				}
			}
		}
	})
}
