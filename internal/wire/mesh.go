package wire

import (
	"fmt"
	"net"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Mesh bootstraps a complete n-rank fabric in-process over a loopback
// listener on an ephemeral port — the building block of the in-process
// recovery harness, benchmarks and tests. The template's Rank, Ranks, Addr
// and Listener are filled in per rank; everything else (fingerprint, epoch,
// heartbeat tuning) is taken from the template. The returned slice is
// indexed by rank.
func Mesh(n int, template Options) ([]*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("wire: mesh of %d ranks", n)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wire: mesh listen: %w", err)
	}
	fabrics := make([]*Fabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opt := template
			opt.Rank = rank
			opt.Ranks = n
			opt.Addr = ln.Addr().String()
			if rank == 0 {
				opt.Listener = ln
			} else {
				opt.Listener = nil
			}
			fabrics[rank], errs[rank] = Connect(opt)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			for _, f := range fabrics {
				if f != nil {
					f.Kill()
				}
			}
			return nil, fmt.Errorf("wire: mesh rank %d: %w", rank, err)
		}
	}
	return fabrics, nil
}

// MeshFingerprint is a convenience for harnesses that only have the graph
// and registry at hand.
func MeshFingerprint(g core.TaskGraph, cids []core.CallbackId) core.Fingerprint {
	return core.GraphFingerprint(g, cids)
}
