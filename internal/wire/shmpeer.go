package wire

// The shared-memory data path of one peer pair. Frames keep the exact
// socket encoding but move through the pair's mmap'd SPSC rings
// (shmring.go); the unix socket underneath carries only control traffic —
// doorbells, heartbeats and the goodbye. The protocol:
//
// Producer (shmWriteLoop / sendDirectShm), always under p.wmu:
//   - push the frame into tx; after publishing, if the consumer announced
//     it is parked (cwait set), clear the flag and write one doorbell
//     frame on the socket.
//   - on a full ring, set pwait, then wait (without wmu) for the
//     consumer's doorbell — relayed by our own read loop through
//     shm.space — and resume pushing.
//
// Consumer (shmReadLoop via ringReader):
//   - spin briefly on an empty ring (the hot path: a request/response
//     peer answers well inside the spin window, so the doorbell is never
//     needed), then set cwait, re-check, and park in a blocking read on
//     the socket. Any frame that arrives — doorbell or heartbeat — wakes
//     it to re-check the ring; pwait relays are forwarded to the producer
//     side through shm.space.
//   - after freeing space, if the remote producer announced it is stalled
//     (pwait set), clear the flag and doorbell back.
//
// Failure semantics match the socket tiers: a decode failure out of the
// ring (bad length prefix or CRC mismatch — a torn ring) wraps
// ErrCorruptFrame and declares the peer lost; socket EOF without a
// goodbye, or heartbeat-timeout silence while parked, is ErrPeerLost. The
// shm goodbye carries the producer's final tail so the consumer drains
// the ring completely before treating the departure as clean.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/fabric"
)

// shmLink is the per-peer shared-memory state riding on top of shmRegion.
type shmLink struct {
	region *shmRegion
	tx     *shmRing
	rx     *shmRing

	// space relays the peer consumer's "I freed space" doorbell from this
	// side's read loop to its producer (capacity 1, non-blocking sends).
	space chan struct{}

	// corrupt arms the one-shot CRC fault injection (CorruptNextShmFrame).
	corrupt atomic.Bool

	// finalTail is the peer producer's tail at goodbye: the consumer keeps
	// draining until chead reaches it, then treats the departure as clean.
	finalTail atomic.Uint64
	finalSet  atomic.Bool
}

func newShmLink(reg *shmRegion) *shmLink {
	return &shmLink{
		region: reg,
		tx:     reg.tx,
		rx:     reg.rx,
		space:  make(chan struct{}, 1),
	}
}

// errShmDeparted is the ring reader's clean end-of-stream: the peer said
// goodbye and its ring has been drained to the announced final tail.
var errShmDeparted = errors.New("wire: shm peer departed")

// spinIters bounds the consumer's empty-ring spin before it parks on the
// doorbell socket: long enough that a ping-pong peer's reply lands while
// we still spin (the sub-microsecond path), short enough that an idle
// consumer parks within tens of microseconds. The tail of the spin yields
// the processor so a co-scheduled producer can run.
const (
	spinIters = 4096
	spinYield = 3072
)

// spinYieldFrom is the spin iteration at which the consumer starts
// yielding. On a single-P runtime a busy spin starves the very producer
// it is waiting for — the ring cannot fill until the consumer yields —
// so yield from the first iteration there.
var spinYieldFrom = func() int {
	if runtime.GOMAXPROCS(0) <= 1 {
		return 0
	}
	return spinYield
}()

// doorbellFrame is the pre-encoded empty doorbell control frame.
var doorbellFrame = controlFrame(frameDoorbell)

// ringDoorbell writes one doorbell frame on the pair's socket. It takes
// wmu itself, so callers must NOT hold it. Doorbells update lastWrite —
// they are real socket traffic and keep the heartbeat quiet period honest.
func (f *Fabric) ringDoorbell(p *peer) {
	now := time.Now()
	p.wmu.Lock()
	if !p.saidGoodbye {
		p.conn.SetWriteDeadline(now.Add(f.opt.HeartbeatTimeout))
		p.conn.Write(doorbellFrame)
		p.lastWrite.Store(now.UnixNano())
	}
	p.wmu.Unlock()
}

// stampShmHeader encodes the data-frame framing for the shm path,
// applying the armed corruption injection if any: the CRC is flipped
// after stamping, so the receiver sees a torn ring.
func stampShmHeader(p *peer, hdr []byte, m *fabric.Message, payload []byte) {
	encodeDataHeader(hdr, m.Src, m.Dest, m.Run, m.Seq, m.Attempt, payload)
	if p.shm.corrupt.Load() && p.shm.corrupt.Swap(false) {
		hdr[5] ^= 0x01
	}
}

// ringWriteFrame pushes one encoded frame (header + payload) into the tx
// ring, taking p.wmu per attempt and releasing it while waiting for space
// on a full ring — parked producers must never block heartbeats or
// doorbells. Returns an error when the fabric is cancelled or the
// consumer fails to free space within the heartbeat timeout.
func (f *Fabric) ringWriteFrame(p *peer, hdr, payload []byte) error {
	l := p.shm
	segs := [2][]byte{hdr, payload}
	i := 0
	var stallStart time.Time
	for {
		p.wmu.Lock()
		wrote := false
		// When the whole remaining frame fits, write it with one tail
		// publish so the consumer never observes a torn prefix and stays on
		// its in-place decode fast path. Otherwise push what fits: partial
		// progress streams frames larger than the ring.
		if uint64(len(segs[0])+len(segs[1])) <= l.tx.free() {
			l.tx.pushAll(segs[0], segs[1])
			segs[0], segs[1] = nil, nil
			i = 2
			wrote = true
		}
		for i < 2 {
			if len(segs[i]) == 0 {
				i++
				continue
			}
			n := l.tx.push(segs[i])
			if n == 0 {
				break
			}
			wrote = true
			segs[i] = segs[i][n:]
		}
		bell := wrote && l.tx.hdr.cwait.Swap(0) == 1
		p.wmu.Unlock()
		if bell {
			f.ringDoorbell(p)
		}
		if i == 2 {
			return nil
		}
		// Ring full: announce the stall, re-check (the consumer may have
		// freed space between our push and the flag), then wait for its
		// doorbell relayed through l.space. Shutdown closes f.done before
		// the drain, so a graceful drain must keep waiting; only an actual
		// Cancel/Kill (f.cancelled) or a consumer that frees nothing for a
		// whole heartbeat timeout aborts the write.
		if wrote {
			stallStart = time.Time{}
		}
		if stallStart.IsZero() {
			stallStart = time.Now()
		}
		// The consumer is in shared memory too: spin on free() first, so a
		// draining consumer unblocks us in nanoseconds, without waiting for
		// its doorbell to cross the socket and our read loop to relay it.
		spun := false
		for spin := 0; spin < spinIters && !spun; spin++ {
			if spin >= spinYieldFrom {
				runtime.Gosched()
			}
			spun = l.tx.free() > 0
			if spin&255 == 0 && f.cancelled.Load() {
				return errors.New("wire: cancelled")
			}
		}
		if spun {
			continue
		}
		l.tx.hdr.pwait.Store(1)
		if l.tx.free() > 0 {
			continue
		}
		select {
		case <-l.space:
		case <-time.After(10 * time.Millisecond):
			if f.cancelled.Load() {
				return errors.New("wire: cancelled")
			}
			if time.Since(stallStart) > f.opt.HeartbeatTimeout {
				return fmt.Errorf("ring full for %v", f.opt.HeartbeatTimeout)
			}
		}
	}
}

// sendDirectShm is the shm latency fast path: when the peer's writer is
// parked, its outbox empty and the whole frame fits the ring's free
// space, the sender stamps and pushes the frame itself — no syscall, no
// goroutine handoff, no clock read. The quiescence argument is identical
// to sendDirect; there is no inlineMax or inlineGap because a ring push
// is a memcpy, cheap at any size and never worth batching against.
func (f *Fabric) sendDirectShm(p *peer, m fabric.Message) bool {
	if !p.wmu.TryLock() {
		return false
	}
	// Ordering matters: EmptyOpen before the idle load (see sendDirect).
	if p.saidGoodbye || !p.outbox.EmptyOpen() || !p.idle.Load() {
		p.wmu.Unlock()
		return false
	}
	w, err := m.Payload.Wire()
	if err != nil {
		// Serialization failures take the writer path so they are reported
		// identically on both paths.
		p.wmu.Unlock()
		return false
	}
	l := p.shm
	if uint64(DataFrameOverhead+len(w)) > l.tx.free() {
		p.wmu.Unlock()
		return false
	}
	stampShmHeader(p, p.ihdr[:], &m, w)
	l.tx.pushAll(p.ihdr[:], w)
	bell := l.tx.hdr.cwait.Swap(0) == 1
	p.wmu.Unlock()
	m.Payload.Release()
	if bell {
		f.ringDoorbell(p)
	}
	f.messages.Add(1)
	f.bytes.Add(uint64(len(w)))
	return true
}

// shmWriteLoop drains one shm peer's outbox into its tx ring. The batch
// dequeue amortizes mailbox locking exactly like writeLoop; each frame is
// then a bounded number of memcpys into the ring with no syscall. When
// the outbox closes the loop publishes a goodbye carrying the final tail
// so the consumer can drain before treating the EOF as clean.
func (f *Fabric) shmWriteLoop(p *peer) {
	defer f.writers.Done()
	const maxBatch = 64
	batch := make([]fabric.Message, maxBatch)
	var hdr [DataFrameOverhead]byte
	for {
		n, done := p.outbox.TryGetBatch(batch)
		if n == 0 {
			if done {
				if !f.cancelled.Load() {
					f.ringGoodbye(p)
				}
				return
			}
			p.idle.Store(true)
			<-p.wake
			p.idle.Store(false)
			continue
		}
		var payloadBytes uint64
		for i := 0; i < n; i++ {
			w, err := batch[i].Payload.Wire()
			if err != nil {
				f.fail(fmt.Errorf("wire: rank %d -> %d: task %d payload: %w",
					f.opt.Rank, p.rank, batch[i].Src, err))
				releaseAll(batch[i:n])
				clearMessages(batch[:n])
				return
			}
			stampShmHeader(p, hdr[:], &batch[i], w)
			if werr := f.ringWriteFrame(p, hdr[:], w); werr != nil {
				undelivered := n - i + p.outbox.Len()
				f.failPeer(p.rank, fmt.Errorf("wire: rank %d: ring write to rank %d: %d frame(s) undelivered: %w (%v)",
					f.opt.Rank, p.rank, undelivered, ErrPeerLost, werr))
				releaseAll(batch[i:n])
				clearMessages(batch[:n])
				return
			}
			payloadBytes += uint64(len(w))
		}
		releaseAll(batch[:n])
		clearMessages(batch[:n])
		f.messages.Add(uint64(n))
		f.bytes.Add(payloadBytes)
	}
}

// ringGoodbye sends the shm goodbye: an 8-byte body holding the tx ring's
// final tail, so the consumer knows exactly how much to drain.
func (f *Fabric) ringGoodbye(p *peer) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.saidGoodbye {
		return
	}
	p.saidGoodbye = true
	var b [frameHeaderSize + 8]byte
	binary.LittleEndian.PutUint64(b[frameHeaderSize:], p.shm.tx.ptail)
	p.conn.SetWriteDeadline(time.Now().Add(f.opt.HeartbeatTimeout))
	p.conn.Write(finishFrame(b[:], frameGoodbye))
}

// ringReader adapts the rx ring to io.Reader with the spin-then-park wait
// underneath, so readFrame/readDataBody decode ring frames through the
// exact code path the socket tiers use — same CRC verification, same
// arena buffers, same run-id demux fields.
type ringReader struct {
	f *Fabric
	p *peer
}

func (r *ringReader) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	l := r.p.shm
	for {
		if n := l.rx.pop(b); n > 0 {
			// If the remote producer stalled on a full ring, tell it space
			// is free. The Load screens the common case so the hot path
			// pays one read of an already-local cache line.
			if l.rx.hdr.pwait.Load() != 0 && l.rx.hdr.pwait.Swap(0) == 1 {
				r.f.ringDoorbell(r.p)
			}
			return n, nil
		}
		if err := r.wait(); err != nil {
			return 0, err
		}
	}
}

// wait blocks until the rx ring is readable: spin, then park on the
// doorbell socket. Returns errShmDeparted once the peer's goodbye has
// been received and the ring drained to its final tail.
func (r *ringReader) wait() error {
	l := r.p.shm
	for {
		for spin := 0; spin < spinIters; spin++ {
			if l.rx.readable() > 0 {
				return nil
			}
			if spin&255 == 0 {
				if l.finalSet.Load() && l.rx.chead == l.finalTail.Load() {
					return errShmDeparted
				}
				if r.f.cancelled.Load() {
					return errors.New("wire: cancelled")
				}
			}
			if spin >= spinYieldFrom {
				runtime.Gosched()
			}
		}
		// Park: announce, re-check (the producer may have published between
		// the last poll and the flag), then block on the socket.
		l.rx.hdr.cwait.Store(1)
		if l.rx.readable() > 0 {
			l.rx.hdr.cwait.Store(0)
			return nil
		}
		if err := r.parkOnSocket(); err != nil {
			return err
		}
	}
}

// parkOnSocket blocks in a read on the pair's socket until any control
// frame arrives, handling it: doorbells and heartbeats mean "re-check the
// rings" (and may be relaying a pwait release for our producer side);
// goodbye records the peer's final tail. This loop is the only reader of
// the socket once the data phase starts.
func (r *ringReader) parkOnSocket() error {
	c := r.p.conn
	l := r.p.shm
	c.SetReadDeadline(time.Now().Add(r.f.opt.HeartbeatTimeout))
	typ, n, crc, err := readFrame(c)
	if err != nil {
		return err
	}
	switch typ {
	case frameDoorbell, frameHeartbeat:
		if n != 0 {
			return fmt.Errorf("wire: control frame with %d-byte body", n)
		}
		if err := verifyBody(typ, nil, crc); err != nil {
			return err
		}
		// The doorbell does not say which direction it serves: poke our
		// producer unconditionally (spurious pokes are one channel op) and
		// let the caller re-check the rx ring.
		select {
		case l.space <- struct{}{}:
		default:
		}
		return nil
	case frameGoodbye:
		if n != 8 {
			return fmt.Errorf("wire: shm goodbye with %d-byte body", n)
		}
		var b [8]byte
		if _, err := io.ReadFull(c, b[:]); err != nil {
			return err
		}
		if err := verifyBody(typ, b[:], crc); err != nil {
			return err
		}
		l.finalTail.Store(binary.LittleEndian.Uint64(b[:]))
		l.finalSet.Store(true)
		return nil
	default:
		return fmt.Errorf("wire: unexpected frame type %d on shm control socket", typ)
	}
}

// frameBuffered reports whether a complete, well-formed data frame is
// fully readable from the rx ring right now — the greedy-drain guard, so
// later frames of a burst are decoded without ever blocking. A malformed
// length returns false and lets the blocking path surface the corruption.
func (l *shmLink) frameBuffered() bool {
	var hdr [frameHeaderSize]byte
	if l.rx.peek(hdr[:]) < frameHeaderSize {
		return false
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < 1 || n > maxFrameSize {
		return false
	}
	return l.rx.readable() >= uint64(frameHeaderSize+n-1)
}

// readRingFrame decodes the next frame out of the ring, blocking through
// rd. Everything except a CRC-clean data frame is a torn ring and wraps
// ErrCorruptFrame — control frames never ride the ring.
func (f *Fabric) readRingFrame(p *peer, rd *ringReader) (fabric.Message, error) {
	// Fast path: the whole frame sits contiguous at the read cursor — the
	// overwhelmingly common case, since a frame straddles the ring edge at
	// most once per ring-size of traffic. Decode it in place. An empty ring
	// waits here first, so latency-bound traffic (ring drained between
	// messages) lands on this path too, not just bursts.
	for {
		v := p.shm.rx.view()
		if len(v) >= frameHeaderSize {
			l := int(binary.LittleEndian.Uint32(v[0:4]))
			if l < 1 || l > maxFrameSize {
				return fabric.Message{}, fmt.Errorf("%w: torn ring: %v: %d", ErrCorruptFrame, errFrameLength, l)
			}
			if total := frameHeaderSize + l - 1; len(v) >= total {
				if v[4] != frameData {
					return fabric.Message{}, fmt.Errorf("%w: torn ring: frame type %d", ErrCorruptFrame, v[4])
				}
				crc := binary.LittleEndian.Uint32(v[5:9])
				m, err := f.decodeDataBytes(p, v[frameHeaderSize:total], crc)
				if err != nil {
					return fabric.Message{}, err
				}
				p.shm.rx.advance(total)
				if h := p.shm.rx.hdr; h.pwait.Load() != 0 && h.pwait.Swap(0) == 1 {
					f.ringDoorbell(p)
				}
				return m, nil
			}
			break // frame straddles the ring edge or is mid-push: stream it
		}
		if len(v) > 0 {
			break // header straddles the ring edge: stream it
		}
		if err := rd.wait(); err != nil {
			return fabric.Message{}, err
		}
	}
	typ, n, crc, err := readFrame(rd)
	if err != nil {
		if errors.Is(err, errFrameLength) {
			return fabric.Message{}, fmt.Errorf("%w: torn ring: %v", ErrCorruptFrame, err)
		}
		return fabric.Message{}, err
	}
	if typ != frameData {
		return fabric.Message{}, fmt.Errorf("%w: torn ring: frame type %d", ErrCorruptFrame, typ)
	}
	return f.readDataBody(p, rd, n, crc)
}

// shmReadLoop consumes one shm peer's rx ring: data frames become local
// mailbox deliveries with arena-backed payloads, drained greedily in
// batches like the socket read loop. Control traffic is handled inside
// the ring reader's park path.
func (f *Fabric) shmReadLoop(p *peer) {
	defer f.readers.Done()
	const rxBatch = 64
	rd := &ringReader{f: f, p: p}
	batch := make([]fabric.Message, 0, rxBatch)
	for {
		m, err := f.readRingFrame(p, rd)
		if err != nil {
			if errors.Is(err, errShmDeparted) {
				p.departed.Store(true)
				return
			}
			if f.cancelled.Load() || p.departed.Load() {
				return
			}
			if f.fenced.Load() && isTimeout(err) {
				// Epoch fence open: a silent control socket (the peer is
				// frozen flushing for a membership change) is not death.
				continue
			}
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: peer %d: %w (%w)", f.opt.Rank, p.rank, ErrPeerLost, err))
			return
		}
		batch = append(batch[:0], m)
		// Greedy drain: decode every data frame already complete in the
		// ring — without blocking — so a burst is delivered under one
		// mailbox lock.
		var drainErr error
		for len(batch) < rxBatch && p.shm.frameBuffered() {
			m, err := f.readRingFrame(p, rd)
			if err != nil {
				drainErr = err
				break
			}
			batch = append(batch, m)
		}
		if err := f.local.PutN(batch); err != nil {
			clearMessages(batch)
			return
		}
		clearMessages(batch)
		if drainErr != nil {
			if f.cancelled.Load() || p.departed.Load() {
				return
			}
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: peer %d: %w (%w)", f.opt.Rank, p.rank, ErrPeerLost, drainErr))
			return
		}
	}
}
