// Package wire is the TCP transport of the runtime: a fabric.Transport
// implementation whose ranks are OS processes (or in-process listeners)
// connected by a full mesh of TCP connections, so the same task graphs,
// controllers and conformance suite that run over the in-memory fabric run
// unchanged across machine boundaries.
//
// Topology and bootstrap: rank 0 listens on a well-known rendezvous
// address; every other rank opens its own data listener, dials rank 0 and
// registers (rank id, rank count, graph fingerprint, data endpoints). Once
// all ranks have registered, rank 0 answers each with the endpoint table
// and the peers dial each other — rank i dials every rank j < i —
// completing one duplex connection per rank pair. Every connection begins
// with a hello carrying the canonical graph fingerprint
// (core.GraphFingerprint); a mismatch is rejected with ErrHandshake,
// catching mismatched binaries at connection time instead of as a hang or
// a corrupted dataflow.
//
// Transport tiers: each rank advertises a host identity alongside its TCP
// data address, plus a unix-domain data listener and a shared-memory ring
// directory when the tier allows them. Under TierAuto (the default) a pair
// of co-located ranks — matching host identities — negotiates a mmap'd
// SPSC ring pair (shmpeer.go) and moves data frames through shared memory
// with zero syscalls, falling back to the unix socket when a region cannot
// be mapped, while cross-host pairs stay on TCP; the framing, CRC
// protection and heartbeats are identical on every tier. TierTCP forces
// TCP everywhere; TierUnix and TierShm require every pair to be co-located
// and fail the bootstrap otherwise.
//
// Data path: frames are length-prefixed (frame.go). Each peer has an
// unbounded outbox (the same pooled ring-buffer mailbox the in-memory
// fabric uses) drained by one writer goroutine that hands a whole batch to
// the kernel as one vectored write (writev) of header and payload slices —
// SendN's fan-out costs one syscall, zero intermediate copy. When the
// writer is parked and the outbox empty, Send takes an inline fast path
// and writes the frame from the sender's goroutine, eliminating the
// writer-goroutine handoff that dominates small-message round-trip
// latency. Payload bytes are read into arena buffers (core.GrabBuffer) on
// receive. One outbox + one writer + one reader per pair preserves the
// in-memory fabric's pairwise FIFO delivery order.
//
// Robustness: per-connection heartbeats bound failure detection — a peer
// that stops writing for HeartbeatTimeout is declared lost with a typed
// error wrapping ErrPeerLost, cancelling the local mailbox so the
// controller unwinds instead of hanging. Shutdown drains every outbox,
// sends a goodbye frame (after which an EOF is clean, not a failure) and
// waits for the peers' goodbyes, so in-flight payloads are delivered
// before the process exits.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Typed error surface of the transport.
var (
	// ErrPeerLost marks a peer that disconnected without a goodbye or went
	// silent past the heartbeat timeout. It aliases fabric.ErrPeerLost so
	// controllers can classify peer loss without importing the transport.
	ErrPeerLost = fabric.ErrPeerLost
	// ErrHandshake marks a rendezvous or pairwise handshake refusal —
	// mismatched fingerprint, rank count, epoch, or duplicate rank.
	ErrHandshake = errors.New("wire: handshake failed")
)

// Tier selects the transport used for data connections between rank pairs.
type Tier int

const (
	// TierAuto picks the fastest workable transport per pair: a
	// shared-memory ring when both ranks are co-located and can map one, a
	// unix-domain socket when merely co-located, TCP otherwise.
	TierAuto Tier = iota
	// TierTCP forces TCP for every pair — the pre-tier behavior.
	TierTCP
	// TierUnix requires unix-domain sockets for every pair; the bootstrap
	// fails if any two ranks are not co-located or a socket cannot be
	// opened.
	TierUnix
	// TierShm requires a shared-memory ring pair for every pair: data
	// frames move through a lock-free mmap'd SPSC ring with zero syscalls
	// and zero copies out of the arena, with the companion unix socket
	// carrying only doorbells, heartbeats and goodbyes. The bootstrap
	// fails if any two ranks are not co-located or a region cannot be
	// mapped.
	TierShm
)

// ParseTier converts a flag/config string ("auto", "tcp", "unix", "shm")
// to a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "auto":
		return TierAuto, nil
	case "tcp":
		return TierTCP, nil
	case "unix":
		return TierUnix, nil
	case "shm":
		return TierShm, nil
	}
	return TierAuto, fmt.Errorf("wire: unknown transport tier %q (want auto, tcp, unix or shm)", s)
}

func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierTCP:
		return "tcp"
	case TierUnix:
		return "unix"
	case TierShm:
		return "shm"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// sameHostOnly reports whether the tier refuses cross-host pairs.
func (t Tier) sameHostOnly() bool { return t == TierUnix || t == TierShm }

// Options configures Connect.
type Options struct {
	// Rank is this process's rank, Ranks the total count.
	Rank, Ranks int
	// Addr is the rendezvous address rank 0 listens on and every other
	// rank dials, e.g. "127.0.0.1:7000".
	Addr string
	// Listener, when non-nil on rank 0, is the pre-bound rendezvous
	// listener (for tests and launchers that pick a free port). Connect
	// takes ownership.
	Listener net.Listener
	// Fingerprint is the canonical graph/callback fingerprint every rank
	// must present (core.GraphFingerprint). Peers whose fingerprints differ
	// are rejected during the handshake.
	Fingerprint core.Fingerprint
	// DialTimeout bounds the whole bootstrap: rendezvous plus pairwise
	// dials, with exponential backoff on refused connections. Default 15s.
	DialTimeout time.Duration
	// HeartbeatInterval is how often an idle connection emits a heartbeat
	// frame. Default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a connection may stay silent before its
	// peer is declared lost. Default 4 * HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// Tier selects the data-connection transport: TierAuto (default)
	// prefers shared-memory rings between co-located ranks, then
	// unix-domain sockets, then TCP across hosts; TierTCP forces TCP,
	// TierUnix and TierShm require same-host placement. All ranks must
	// agree; the handshake rejects tier mismatches.
	Tier Tier
	// ShmRingBytes is the per-direction capacity of each pair's
	// shared-memory ring, rounded up to a power of two, minimum 4 KiB.
	// Default 1 MiB. Frames larger than the ring stream through it in
	// chunks; small rings are mainly a test hook for wrap/backpressure
	// coverage.
	ShmRingBytes int
	// HostID overrides the host identity advertised during bootstrap, used
	// by TierAuto to detect co-location. Empty means the real identity
	// (hostname plus boot id); tests set distinct values to simulate
	// cross-host placement on one machine.
	HostID string
	// Epoch is the recovery generation of this mesh. A fault-tolerant
	// coordinator bumps it on every rejoin, so a straggling peer from a
	// previous generation is rejected at handshake time (same rendezvous
	// flow, same fingerprint check) instead of corrupting the new epoch's
	// dataflow. Plain runs leave it zero.
	Epoch int
	// WrapConn, when non-nil, wraps every established data connection after
	// the handshake — a fault-injection hook (bit flips, stalls) used by
	// the conformance suite. localRank is this fabric's rank, peerRank the
	// connection's remote end.
	WrapConn func(localRank, peerRank int, c net.Conn) net.Conn
}

func (o *Options) setDefaults() error {
	if o.Ranks < 1 {
		return fmt.Errorf("wire: need at least one rank, got %d", o.Ranks)
	}
	if o.Rank < 0 || o.Rank >= o.Ranks {
		return fmt.Errorf("wire: rank %d out of range [0,%d)", o.Rank, o.Ranks)
	}
	if o.Addr == "" && o.Listener == nil {
		return fmt.Errorf("wire: rendezvous address required")
	}
	if o.Tier < TierAuto || o.Tier > TierShm {
		return fmt.Errorf("wire: invalid transport tier %d", int(o.Tier))
	}
	if o.ShmRingBytes <= 0 {
		o.ShmRingBytes = defaultShmRingBytes
	}
	// Round up to a power of two (the ring masks cursors), at least the
	// minimum that fits one maximum inline frame.
	n := minShmRingBytes
	for n < o.ShmRingBytes {
		n <<= 1
	}
	o.ShmRingBytes = n
	if o.HostID == "" {
		o.HostID = defaultHostID()
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return nil
}

// peer is one remote rank: its duplex connection, outbound queue and writer
// state.
type peer struct {
	rank   int
	conn   net.Conn
	outbox *fabric.Mailbox

	// vectored marks a raw TCP/Unix connection whose batches go to the
	// kernel as one writev of header and payload slices. Wrapped
	// connections (fault injectors) instead get the coalesced single-Write
	// form, preserving their one-Write-per-batch counting contract.
	vectored bool

	// wake is the writer's park signal (capacity 1). Senders poke it after
	// every enqueue; the writer drains the outbox with TryGetBatch and
	// blocks here when it runs dry. idle is true only while the writer is
	// parked — the window in which it provably holds no dequeued frames —
	// which is what licenses the inline-send fast path.
	wake chan struct{}
	idle atomic.Bool

	wmu         sync.Mutex // serializes data, heartbeat and goodbye writes
	saidGoodbye bool       // guarded by wmu; no writes after goodbye
	lastWrite   atomic.Int64

	// ihdr is the inline-send header scratch, guarded by wmu, so the fast
	// path performs zero allocations.
	ihdr [DataFrameOverhead]byte

	departed atomic.Bool // peer sent goodbye; EOF is now clean

	// shm, when non-nil, is this pair's shared-memory ring link: data
	// frames move through the mapped rings and the socket above carries
	// only doorbells, heartbeats and goodbyes.
	shm *shmLink
}

// poke wakes the peer's writer if it is parked. The channel has capacity
// one, so pokes never block and collapse while the writer is mid-drain.
func (p *peer) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Fabric is the TCP transport: one per process (or per in-process rank),
// implementing fabric.Transport for the full rank set with the local rank's
// mailbox in memory and every other rank behind a connection.
type Fabric struct {
	opt   Options
	local *fabric.Mailbox
	peers []*peer // indexed by rank; nil at the local rank

	messages atomic.Uint64 // egress inter-rank traffic
	bytes    atomic.Uint64

	errMu     sync.Mutex
	firstErr  error
	lost      map[int]bool // ranks observed dead before cancellation
	cancelled atomic.Bool
	fenced    atomic.Bool // epoch fence open: liveness timeouts suspended
	done      chan struct{} // closed on Cancel/Shutdown/Kill: stops heartbeats
	doneOnce  sync.Once

	writers sync.WaitGroup
	readers sync.WaitGroup
}

// Connect bootstraps the mesh and returns a running fabric. It blocks until
// every rank pair is connected and fingerprint-verified, or fails with an
// error wrapping ErrHandshake (mismatched peer) or the underlying network
// error (rendezvous unreachable within DialTimeout).
func Connect(opt Options) (*Fabric, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	f := &Fabric{
		opt:   opt,
		local: fabric.NewMailbox(),
		peers: make([]*peer, opt.Ranks),
		done:  make(chan struct{}),
	}
	conns, regs, err := bootstrap(opt)
	if err != nil {
		return nil, err
	}
	anyShm := false
	for r, c := range conns {
		if c == nil {
			continue
		}
		if opt.WrapConn != nil {
			c = opt.WrapConn(opt.Rank, r, c)
		}
		p := &peer{
			rank: r, conn: c, outbox: fabric.NewMailbox(),
			wake: make(chan struct{}, 1),
		}
		switch c.(type) {
		case *net.TCPConn, *net.UnixConn:
			p.vectored = true
		}
		p.lastWrite.Store(time.Now().UnixNano())
		if regs != nil && regs[r] != nil {
			p.shm = newShmLink(regs[r])
			anyShm = true
		}
		f.peers[r] = p
		f.writers.Add(1)
		f.readers.Add(1)
		if p.shm != nil {
			go f.shmWriteLoop(p)
			go f.shmReadLoop(p)
		} else {
			go f.writeLoop(p)
			go f.readLoop(p)
		}
	}
	go f.heartbeatLoop()
	if anyShm {
		// Unmapping a region while any goroutine can still touch its rings
		// would be a fault, so the reaper waits for every loop to exit and
		// the fabric to be done before releasing the mappings.
		go func() {
			f.writers.Wait()
			f.readers.Wait()
			<-f.done
			for _, p := range f.peers {
				if p != nil && p.shm != nil {
					p.shm.region.close()
				}
			}
		}()
	}
	return f, nil
}

// Ranks implements fabric.Transport.
func (f *Fabric) Ranks() int { return f.opt.Ranks }

// PeerNetwork reports the network ("tcp", "unix", "shm") carrying data
// frames to rank, or "" for the local rank — the observable outcome of the
// tier selection, for tests, benchmarks and the serve metrics endpoint.
func (f *Fabric) PeerNetwork(rank int) string {
	if rank < 0 || rank >= f.opt.Ranks || f.peers[rank] == nil {
		return ""
	}
	if f.peers[rank].shm != nil {
		return "shm"
	}
	return f.peers[rank].conn.LocalAddr().Network()
}

// CorruptNextShmFrame arms a one-shot fault injection on the shm link to
// peerRank: the next data frame written into the ring is stamped with a
// deliberately wrong CRC, so the receiver decodes it as a torn ring
// (ErrCorruptFrame) and declares this peer lost — the shm analogue of the
// conformance suite's socket bit-flip injector, which cannot reach ring
// traffic through WrapConn. Returns false when the pair has no shm link.
func (f *Fabric) CorruptNextShmFrame(peerRank int) bool {
	if peerRank < 0 || peerRank >= f.opt.Ranks || f.peers[peerRank] == nil || f.peers[peerRank].shm == nil {
		return false
	}
	f.peers[peerRank].shm.corrupt.Store(true)
	return true
}

// LocalRank returns the rank this fabric instance serves.
func (f *Fabric) LocalRank() int { return f.opt.Rank }

// Send implements fabric.Transport. Messages to the local rank are
// in-memory hand-offs. Remote messages take the inline fast path when the
// peer's writer is provably quiescent (see sendDirect); otherwise they are
// enqueued on the destination peer's outbox for the writer to flush.
func (f *Fabric) Send(m fabric.Message) error {
	if m.To < 0 || m.To >= f.opt.Ranks {
		m.Payload.Release()
		return fmt.Errorf("wire: send to unknown rank %d", m.To)
	}
	if m.To == f.opt.Rank {
		if err := f.local.Put(m); err != nil {
			return fmt.Errorf("wire: rank %d: %w", m.To, err)
		}
		return nil
	}
	p := f.peers[m.To]
	if p.shm != nil {
		if f.sendDirectShm(p, m) {
			return nil
		}
	} else if f.sendDirect(p, m) {
		return nil
	}
	if err := p.outbox.Put(m); err != nil {
		return fmt.Errorf("wire: rank %d: %w", m.To, err)
	}
	p.poke()
	return nil
}

const (
	// inlineMax bounds the payload size the inline path will write from the
	// sender's goroutine. Larger frames go through the writer so the sender
	// overlaps serialization with its own work instead of blocking on the
	// kernel.
	inlineMax = 8 << 10
	// inlineGap is the minimum quiet time on the connection before a send
	// is written inline. Request-response traffic (one message per round
	// trip) clears it and saves the writer-goroutine handoff; back-to-back
	// streaming stays under it and keeps the writer's batched writev
	// amortization.
	inlineGap = 2 * time.Microsecond
	// vectorMin is the smallest payload handed to the kernel as its own
	// iovec. Measured on loopback: per-iovec kernel cost beats the memcpy
	// only from the mid-KiB range up (~1.3x at 16 KiB, ~2x at 64 KiB),
	// while for small frames a coalesced copy wins by >2x — so a batch is
	// gathered as staging-buffer runs of headers + small payloads,
	// interleaved with large payloads referenced zero-copy.
	vectorMin = 16 << 10
)

// sendDirect is the latency fast path: when the peer's writer is parked
// and its outbox empty, the sender encodes and writes the frame itself
// under the write lock — the kernel gets the bytes with no goroutine
// handoff. Pairwise FIFO is preserved because the path is taken only when
// nothing is queued ahead: the outbox emptiness check acquires the mailbox
// lock, which synchronizes with the writer's most recent dequeue, so the
// subsequent idle load cannot observe a stale "parked" while the writer
// still holds undelivered frames. It returns true when the message was
// consumed (written, or failed with the peer declared lost — matching the
// asynchronous error surface of the writer path).
func (f *Fabric) sendDirect(p *peer, m fabric.Message) bool {
	now := time.Now()
	if now.UnixNano()-p.lastWrite.Load() < int64(inlineGap) {
		return false
	}
	if !p.wmu.TryLock() {
		return false
	}
	// Ordering matters: EmptyOpen before the idle load (see above).
	if p.saidGoodbye || !p.outbox.EmptyOpen() || !p.idle.Load() {
		p.wmu.Unlock()
		return false
	}
	w, err := m.Payload.Wire()
	if err != nil || len(w) > inlineMax {
		// Serialization failures take the writer path too, so they are
		// reported identically on both paths.
		p.wmu.Unlock()
		return false
	}
	encodeDataHeader(p.ihdr[:], m.Src, m.Dest, m.Run, m.Seq, m.Attempt, w)
	p.conn.SetWriteDeadline(now.Add(f.opt.HeartbeatTimeout))
	var werr error
	if len(w) == 0 {
		_, werr = p.conn.Write(p.ihdr[:])
	} else {
		// Inline payloads are bounded by inlineMax, well under vectorMin:
		// copying beside the header is cheaper than a second iovec.
		buf := core.GrabBuffer(DataFrameOverhead + len(w))
		copy(buf, p.ihdr[:])
		copy(buf[DataFrameOverhead:], w)
		_, werr = p.conn.Write(buf)
		core.ReleaseBuffer(buf)
	}
	p.lastWrite.Store(now.UnixNano())
	p.wmu.Unlock()
	m.Payload.Release()
	if werr != nil {
		f.failPeer(p.rank, fmt.Errorf("wire: rank %d: write to rank %d: 1 frame undelivered: %w (%v)",
			f.opt.Rank, p.rank, ErrPeerLost, werr))
		return true
	}
	f.messages.Add(1)
	f.bytes.Add(uint64(len(w)))
	return true
}

// SendN implements fabric.Transport: runs of consecutive messages to the
// same rank are enqueued under one lock acquisition and flushed by the
// destination's writer as one coalesced write.
func (f *Fabric) SendN(ms []fabric.Message) error {
	for i := range ms {
		if ms[i].To < 0 || ms[i].To >= f.opt.Ranks {
			releaseAll(ms)
			return fmt.Errorf("wire: send to unknown rank %d", ms[i].To)
		}
	}
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].To == ms[i].To {
			j++
		}
		var err error
		if ms[i].To == f.opt.Rank {
			err = f.local.PutN(ms[i:j])
		} else {
			p := f.peers[ms[i].To]
			err = p.outbox.PutN(ms[i:j])
			if err == nil {
				p.poke()
			}
		}
		if err != nil {
			releaseAll(ms[j:])
			return fmt.Errorf("wire: rank %d: %w", ms[i].To, err)
		}
		i = j
	}
	return nil
}

func releaseAll(ms []fabric.Message) {
	for i := range ms {
		ms[i].Payload.Release()
	}
}

// Recv implements fabric.Transport. Only the local rank is receivable: a
// remote rank's mailbox lives in its own process.
func (f *Fabric) Recv(rank int) (fabric.Message, bool) {
	f.mustBeLocal(rank)
	return f.local.Get()
}

// RecvBatch implements fabric.Transport.
func (f *Fabric) RecvBatch(rank int, dst []fabric.Message) (int, bool) {
	f.mustBeLocal(rank)
	return f.local.GetBatch(dst)
}

// TryRecv dequeues a local message if one is immediately available.
func (f *Fabric) TryRecv(rank int) (fabric.Message, bool) {
	f.mustBeLocal(rank)
	return f.local.TryGet()
}

func (f *Fabric) mustBeLocal(rank int) {
	if rank != f.opt.Rank {
		panic(fmt.Sprintf("wire: receive on rank %d, but this fabric serves rank %d", rank, f.opt.Rank))
	}
}

// Close implements fabric.Transport. Closing the local rank closes its
// mailbox (queued messages remain receivable). Closing a remote rank
// half-closes the pair: the outbox stops accepting, the writer drains it,
// says goodbye and stops.
func (f *Fabric) Close(rank int) {
	if rank == f.opt.Rank {
		f.local.Close()
		return
	}
	if rank >= 0 && rank < f.opt.Ranks {
		f.peers[rank].outbox.Close()
		f.peers[rank].poke()
	}
}

// Cancel implements fabric.Transport: it aborts all communication —
// queued messages are dropped with their payload references released,
// receivers return !ok, and every connection is torn down so remote peers
// observe the abort promptly (as a lost peer) instead of timing out.
func (f *Fabric) Cancel() {
	f.cancelled.Store(true)
	f.doneOnce.Do(func() { close(f.done) })
	f.local.Cancel()
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Cancel()
			p.conn.Close()
			p.poke()
		}
	}
}

// Fence opens (on=true) or closes (on=false) the epoch fence: while open,
// read-deadline expiries are NOT treated as peer loss. A membership change
// freezes every rank at a journal-consistent point before the epoch is torn
// down, and that freeze can outlast the heartbeat timeout — without the
// fence a slow flush reads as peer death and one join would cascade into an
// epoch storm. Connection closures, resets and corrupt frames still fail
// the peer: the fence suspends liveness timers, not failure detection.
func (f *Fabric) Fence(on bool) {
	f.fenced.Store(on)
}

// isTimeout reports whether err is a network timeout (an expired read or
// write deadline) rather than a closed or broken connection.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Err implements fabric.Transport: the first transport-level failure (a
// typed error wrapping ErrPeerLost for lost peers), nil for clean runs and
// controller-initiated cancellation.
func (f *Fabric) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}

// Snapshot implements fabric.Transport. A process counts its egress
// traffic; summing snapshots across ranks yields the global totals the
// in-memory fabric reports.
func (f *Fabric) Snapshot() fabric.Stats {
	return fabric.Stats{Messages: f.messages.Load(), Bytes: f.bytes.Load()}
}

// Shutdown drains the fabric gracefully: it stops heartbeats, closes every
// outbox so the writers flush all in-flight payloads and say goodbye, then
// waits (up to timeout) for every peer's goodbye before closing the
// connections. It returns the fabric's first error, if any — a clean
// multi-process run ends with every rank's Shutdown returning nil.
func (f *Fabric) Shutdown(timeout time.Duration) error {
	f.doneOnce.Do(func() { close(f.done) })
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Close()
			p.poke()
		}
	}
	f.writers.Wait()

	// Writers have exited; anything still queued in an outbox was dropped by
	// a failed writer and will never be delivered. Count it so the drain
	// reports partial delivery instead of silently discarding frames.
	undelivered := 0
	for _, p := range f.peers {
		if p != nil {
			undelivered += p.outbox.Len()
		}
	}

	readersDone := make(chan struct{})
	go func() {
		f.readers.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-time.After(timeout):
		f.fail(fmt.Errorf("wire: shutdown: peers still active after %v, %d queued frame(s) undelivered: %w",
			timeout, undelivered, ErrPeerLost))
	}
	for _, p := range f.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	f.local.Close()
	return f.Err()
}

// Kill abruptly severs every connection without goodbye or drain — a test
// hook simulating the death of this rank's process. Peers observe it as a
// lost peer within the heartbeat timeout.
func (f *Fabric) Kill() {
	f.cancelled.Store(true)
	f.doneOnce.Do(func() { close(f.done) })
	f.local.Cancel()
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Cancel()
			p.conn.Close()
			p.poke()
		}
	}
}

// fail records the first transport-level failure and cancels the fabric so
// the controller unwinds. Failures reported after a deliberate Cancel/Kill
// are teardown noise and are dropped.
func (f *Fabric) fail(err error) {
	if f.cancelled.Load() {
		return
	}
	f.errMu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.errMu.Unlock()
	f.Cancel()
}

// failPeer records rank as a lost peer, then fails the fabric. Losses
// observed after cancellation are teardown noise and are dropped, so the
// lost set names the peer(s) implicated in the first failure — the input a
// recovery coordinator reassigns around.
func (f *Fabric) failPeer(rank int, err error) {
	if f.cancelled.Load() {
		return
	}
	f.errMu.Lock()
	if f.lost == nil {
		f.lost = make(map[int]bool)
	}
	f.lost[rank] = true
	f.errMu.Unlock()
	f.fail(err)
}

// LostPeers implements fabric.LossReporter: the ranks this fabric observed
// as dead before it was cancelled, ascending.
func (f *Fabric) LostPeers() []int {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	if len(f.lost) == 0 {
		return nil
	}
	out := make([]int, 0, len(f.lost))
	for r := range f.lost {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// writeLoop drains one peer's outbox. A whole batch reaches the kernel as
// one syscall: headers and small payloads are gathered into a contiguous
// staging run, payloads of vectorMin and up are referenced zero-copy as
// their own iovecs, and the resulting vector goes out as one writev (or a
// plain write when everything staged). Wrapped connections (fault
// injectors counting Write calls) always stage fully, preserving their
// one-Write-per-batch counting contract. When the outbox closes (Shutdown
// or Close of the pair) the loop flushes what remains and says goodbye;
// when it is cancelled the loop exits immediately (the connections are
// already being torn down). Between drains the writer parks on p.wake,
// publishing its quiescence through p.idle so Send may write inline.
func (f *Fabric) writeLoop(p *peer) {
	defer f.writers.Done()
	const maxBatch = 64
	batch := make([]fabric.Message, maxBatch)
	wires := make([][]byte, maxBatch)
	vecs := make(net.Buffers, 0, 2*maxBatch)
	for {
		n, done := p.outbox.TryGetBatch(batch)
		if n == 0 {
			if done {
				if !f.cancelled.Load() {
					p.wmu.Lock()
					if !p.saidGoodbye {
						p.saidGoodbye = true
						p.conn.SetWriteDeadline(time.Now().Add(f.opt.HeartbeatTimeout))
						p.conn.Write(controlFrame(frameGoodbye))
					}
					p.wmu.Unlock()
				}
				return
			}
			// Publish quiescence, then park. Senders poke after every
			// enqueue (the channel holds one token), so no wakeup is lost;
			// while idle is set, sendDirect may write frames itself.
			p.idle.Store(true)
			<-p.wake
			p.idle.Store(false)
			continue
		}
		// Serialize every payload and size the staging buffer: headers and
		// small payloads are copied into one contiguous staging run, while
		// payloads of vectorMin and up stay zero-copy as their own iovecs
		// (on a wrapped, non-vectored connection everything is staged so the
		// batch remains exactly one Write call).
		var payloadBytes uint64
		stageTotal := 0
		bad := false
		for i := 0; i < n; i++ {
			w, err := batch[i].Payload.Wire()
			if err != nil {
				f.fail(fmt.Errorf("wire: rank %d -> %d: task %d payload: %w",
					f.opt.Rank, p.rank, batch[i].Src, err))
				bad = true
				break
			}
			wires[i] = w
			stageTotal += DataFrameOverhead
			if len(w) < vectorMin || !p.vectored {
				stageTotal += len(w)
			}
			payloadBytes += uint64(len(w))
		}
		if bad {
			releaseAll(batch[:n])
			clearMessages(batch[:n])
			return
		}
		vecs = vecs[:0]
		stage := core.GrabBuffer(stageTotal)[:0]
		runStart := 0
		for i := 0; i < n; i++ {
			w := wires[i]
			off := len(stage)
			stage = stage[:off+DataFrameOverhead]
			encodeDataHeader(stage[off:], batch[i].Src, batch[i].Dest, batch[i].Run, batch[i].Seq, batch[i].Attempt, w)
			if len(w) < vectorMin || !p.vectored {
				stage = append(stage, w...)
				continue
			}
			// Close the current staging run and reference the payload
			// directly.
			if len(stage) > runStart {
				vecs = append(vecs, stage[runStart:len(stage):len(stage)])
			}
			vecs = append(vecs, w)
			runStart = len(stage)
		}
		if len(stage) > runStart {
			vecs = append(vecs, stage[runStart:])
		}
		// One clock read serves the write deadline and the heartbeat
		// bookkeeping for the whole drained batch.
		now := time.Now()
		p.wmu.Lock()
		p.conn.SetWriteDeadline(now.Add(f.opt.HeartbeatTimeout))
		var err error
		if len(vecs) == 1 {
			_, err = p.conn.Write(vecs[0])
		} else {
			bufs := vecs // WriteTo consumes its receiver; keep vecs reusable
			_, err = bufs.WriteTo(p.conn)
		}
		p.lastWrite.Store(now.UnixNano())
		p.wmu.Unlock()
		clear(vecs)
		core.ReleaseBuffer(stage)
		releaseAll(batch[:n])
		clearMessages(batch[:n])
		if err != nil {
			// The failed write plus whatever is still queued behind it will
			// never reach the peer; surface the count so partial delivery is
			// observable instead of silent.
			undelivered := n + p.outbox.Len()
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: write to rank %d: %d frame(s) undelivered: %w (%v)",
				f.opt.Rank, p.rank, undelivered, ErrPeerLost, err))
			return
		}
		f.messages.Add(uint64(n))
		f.bytes.Add(payloadBytes)
	}
}

func clearMessages(ms []fabric.Message) {
	for i := range ms {
		ms[i] = fabric.Message{}
	}
}

// readLoop consumes one peer's frames: data frames become local mailbox
// deliveries with arena-backed payloads, heartbeats refresh the liveness
// deadline, goodbye marks the peer cleanly departed. Any other end of
// stream is a lost peer.
func (f *Fabric) readLoop(p *peer) {
	defer f.readers.Done()
	const rxBatch = 64
	br := newConnReader(p.conn, 64<<10)
	batch := make([]fabric.Message, 0, rxBatch)
	// The read deadline is re-armed lazily: a fresh deadline is only needed
	// when an armed one has aged enough to bite early, so a busy connection
	// pays one timer modification per half heartbeat interval instead of
	// one per frame. Worst case the peer is declared lost half an interval
	// late, well inside the failure-detection contract.
	var armed time.Time
	for {
		if now := time.Now(); now.Sub(armed) > f.opt.HeartbeatInterval/2 {
			armed = now
			p.conn.SetReadDeadline(now.Add(f.opt.HeartbeatTimeout))
		}
		m, typ, err := f.readOne(p, br)
		if err != nil {
			if f.cancelled.Load() || p.departed.Load() {
				return
			}
			if f.fenced.Load() && isTimeout(err) {
				// An epoch fence is open: the peer may be stalled flushing
				// journals for a membership change, so a quiet connection is
				// not evidence of death. Re-arm and keep listening; closures
				// and corrupt frames still fail below.
				armed = time.Time{}
				continue
			}
			// Both sentinels are wrapped: recovery classifies this as peer
			// loss, while errors.Is(err, ErrCorruptFrame) still identifies
			// an integrity failure.
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: peer %d: %w (%w)", f.opt.Rank, p.rank, ErrPeerLost, err))
			return
		}
		switch typ {
		case frameGoodbye:
			p.departed.Store(true)
			return
		case frameHeartbeat:
			continue
		}
		batch = append(batch[:0], m)
		// Greedy drain: decode every data frame already buffered — without
		// blocking — so a burst is delivered under one mailbox lock.
		var drainErr error
		for len(batch) < rxBatch {
			m, ok, err := f.tryReadBuffered(p, br)
			if err != nil {
				// The frame was consumed but failed decode (CRC mismatch,
				// bad length): the stream is untrustworthy from here on.
				// Deliver the intact prefix, then declare the peer lost.
				drainErr = err
				break
			}
			if !ok {
				break
			}
			batch = append(batch, m)
		}
		if err := f.local.PutN(batch); err != nil {
			// Local mailbox closed or cancelled: the run is over.
			clearMessages(batch)
			return
		}
		clearMessages(batch)
		if drainErr != nil {
			if f.cancelled.Load() || p.departed.Load() {
				return
			}
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: peer %d: %w (%w)", f.opt.Rank, p.rank, ErrPeerLost, drainErr))
			return
		}
	}
}

// readOne reads the next frame, blocking, verifying its CRC32C. Data
// frames return the decoded message; control frames return their type with
// a zero message.
func (f *Fabric) readOne(p *peer, br *connReader) (fabric.Message, byte, error) {
	typ, n, crc, err := readFrame(br)
	if err != nil {
		return fabric.Message{}, 0, err
	}
	switch typ {
	case frameHeartbeat, frameGoodbye:
		if n != 0 {
			return fabric.Message{}, 0, fmt.Errorf("wire: control frame with %d-byte body", n)
		}
		if err := verifyBody(typ, nil, crc); err != nil {
			return fabric.Message{}, 0, err
		}
		return fabric.Message{}, typ, nil
	case frameData:
		m, err := f.readDataBody(p, br, n, crc)
		return m, frameData, err
	default:
		return fabric.Message{}, 0, fmt.Errorf("wire: unexpected frame type %d in data phase", typ)
	}
}

func (f *Fabric) readDataBody(p *peer, br io.Reader, n int, crc uint32) (fabric.Message, error) {
	if n < dataHeaderSize {
		return fabric.Message{}, fmt.Errorf("wire: data frame of %d bytes", n)
	}
	var hdr [dataHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fabric.Message{}, err
	}
	src := core.TaskId(le64(hdr[0:]))
	dest := core.TaskId(le64(hdr[8:]))
	run := le64(hdr[16:])
	seq := le64(hdr[24:])
	attempt := le32(hdr[32:])
	payload := core.GrabBuffer(n - dataHeaderSize)
	if _, err := io.ReadFull(br, payload); err != nil {
		core.ReleaseBuffer(payload)
		return fabric.Message{}, err
	}
	got := crc32.Update(0, castagnoli, hdr[:])
	got = crc32.Update(got, castagnoli, payload)
	if got != crc {
		core.ReleaseBuffer(payload)
		return fabric.Message{}, fmt.Errorf("%w: data frame src %d dest %d, crc %08x != header %08x",
			ErrCorruptFrame, src, dest, got, crc)
	}
	return fabric.Message{
		From: p.rank, To: f.opt.Rank, Src: src, Dest: dest,
		Run: run, Seq: seq, Attempt: attempt,
		Payload: core.Buffer(payload),
	}, nil
}

// decodeDataBytes is readDataBody over an in-memory body — the shm ring's
// in-place fast path. Semantics are identical: same CRC coverage, same
// arena-backed payload, same message fields.
func (f *Fabric) decodeDataBytes(p *peer, body []byte, crc uint32) (fabric.Message, error) {
	if len(body) < dataHeaderSize {
		return fabric.Message{}, fmt.Errorf("wire: data frame of %d bytes", len(body))
	}
	if got := crc32.Checksum(body, castagnoli); got != crc {
		return fabric.Message{}, fmt.Errorf("%w: data frame src %d dest %d, crc %08x != header %08x",
			ErrCorruptFrame, le64(body[0:]), le64(body[8:]), got, crc)
	}
	payload := core.GrabBuffer(len(body) - dataHeaderSize)
	copy(payload, body[dataHeaderSize:])
	return fabric.Message{
		From: p.rank, To: f.opt.Rank,
		Src: core.TaskId(le64(body[0:])), Dest: core.TaskId(le64(body[8:])),
		Run: le64(body[16:]), Seq: le64(body[24:]), Attempt: le32(body[32:]),
		Payload: core.Buffer(payload),
	}, nil
}

// tryReadBuffered decodes one more data frame only if it is already fully
// buffered; it never blocks. Control frames end the greedy drain (they are
// rare and handled by the blocking path on the next iteration).
func (f *Fabric) tryReadBuffered(p *peer, br *connReader) (fabric.Message, bool, error) {
	hdr, ok := br.peek(frameHeaderSize)
	if !ok {
		return fabric.Message{}, false, nil
	}
	l := int(le32(hdr))
	if l < 1 || l > maxFrameSize {
		return fabric.Message{}, false, fmt.Errorf("wire: frame length %d out of range", l)
	}
	if hdr[4] != frameData {
		return fabric.Message{}, false, nil
	}
	// The whole frame on the wire is the header plus the body (l counts the
	// type byte, which lives inside the header).
	if !br.buffered(frameHeaderSize + l - 1) {
		return fabric.Message{}, false, nil
	}
	_, _, crc, err := readFrame(br)
	if err != nil {
		return fabric.Message{}, false, err
	}
	m, err := f.readDataBody(p, br, l-1, crc)
	if err != nil {
		return fabric.Message{}, false, err
	}
	return m, true, nil
}

// connReader is a buffered connection reader that can report whether a
// whole frame is already buffered, letting the read loop drain bursts
// without ever blocking mid-batch.
type connReader struct {
	*bufio.Reader
}

func newConnReader(c net.Conn, size int) *connReader {
	return &connReader{bufio.NewReaderSize(c, size)}
}

// peek returns the next n bytes without consuming them, but only if they
// are already buffered — it never reads from the connection.
func (r *connReader) peek(n int) ([]byte, bool) {
	if r.Buffered() < n {
		return nil, false
	}
	b, err := r.Peek(n)
	if err != nil {
		return nil, false
	}
	return b, true
}

// buffered reports whether at least n bytes are already buffered.
func (r *connReader) buffered(n int) bool { return r.Buffered() >= n }

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// heartbeatLoop keeps every idle connection warm so silence means failure,
// not inactivity.
func (f *Fabric) heartbeatLoop() {
	t := time.NewTicker(f.opt.HeartbeatInterval)
	defer t.Stop()
	hb := controlFrame(frameHeartbeat)
	for {
		select {
		case <-f.done:
			return
		case now := <-t.C:
			for _, p := range f.peers {
				if p == nil {
					continue
				}
				if now.UnixNano()-p.lastWrite.Load() < int64(f.opt.HeartbeatInterval) {
					continue
				}
				p.wmu.Lock()
				var err error
				if !p.saidGoodbye {
					p.conn.SetWriteDeadline(now.Add(f.opt.HeartbeatTimeout))
					_, err = p.conn.Write(hb)
					p.lastWrite.Store(time.Now().UnixNano())
				}
				p.wmu.Unlock()
				if err != nil && !p.departed.Load() {
					if f.fenced.Load() && isTimeout(err) {
						// Fence open: a full send buffer behind a frozen
						// peer is not death; retry next tick.
						continue
					}
					f.failPeer(p.rank, fmt.Errorf("wire: rank %d: heartbeat to rank %d: %w (%v)", f.opt.Rank, p.rank, ErrPeerLost, err))
					return
				}
			}
		}
	}
}
