// Package wire is the TCP transport of the runtime: a fabric.Transport
// implementation whose ranks are OS processes (or in-process listeners)
// connected by a full mesh of TCP connections, so the same task graphs,
// controllers and conformance suite that run over the in-memory fabric run
// unchanged across machine boundaries.
//
// Topology and bootstrap: rank 0 listens on a well-known rendezvous
// address; every other rank opens its own data listener, dials rank 0 and
// registers (rank id, rank count, graph fingerprint, data address). Once
// all ranks have registered, rank 0 answers each with the address table and
// the peers dial each other — rank i dials every rank j < i — completing
// one duplex connection per rank pair. Every connection begins with a hello
// carrying the canonical graph fingerprint (core.GraphFingerprint); a
// mismatch is rejected with ErrHandshake, catching mismatched binaries at
// connection time instead of as a hang or a corrupted dataflow.
//
// Data path: frames are length-prefixed (frame.go). Each peer has an
// unbounded outbox (the same pooled ring-buffer mailbox the in-memory
// fabric uses) drained by one writer goroutine that coalesces whole
// batches into a single arena-backed buffer and one conn.Write — SendN's
// fan-out costs one syscall, not one per message. Payload bytes are read
// into arena buffers (core.GrabBuffer) on receive. One outbox + one writer
// + one reader per pair preserves the in-memory fabric's pairwise FIFO
// delivery order.
//
// Robustness: per-connection heartbeats bound failure detection — a peer
// that stops writing for HeartbeatTimeout is declared lost with a typed
// error wrapping ErrPeerLost, cancelling the local mailbox so the
// controller unwinds instead of hanging. Shutdown drains every outbox,
// sends a goodbye frame (after which an EOF is clean, not a failure) and
// waits for the peers' goodbyes, so in-flight payloads are delivered
// before the process exits.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Typed error surface of the transport.
var (
	// ErrPeerLost marks a peer that disconnected without a goodbye or went
	// silent past the heartbeat timeout. It aliases fabric.ErrPeerLost so
	// controllers can classify peer loss without importing the transport.
	ErrPeerLost = fabric.ErrPeerLost
	// ErrHandshake marks a rendezvous or pairwise handshake refusal —
	// mismatched fingerprint, rank count, epoch, or duplicate rank.
	ErrHandshake = errors.New("wire: handshake failed")
)

// Options configures Connect.
type Options struct {
	// Rank is this process's rank, Ranks the total count.
	Rank, Ranks int
	// Addr is the rendezvous address rank 0 listens on and every other
	// rank dials, e.g. "127.0.0.1:7000".
	Addr string
	// Listener, when non-nil on rank 0, is the pre-bound rendezvous
	// listener (for tests and launchers that pick a free port). Connect
	// takes ownership.
	Listener net.Listener
	// Fingerprint is the canonical graph/callback fingerprint every rank
	// must present (core.GraphFingerprint). Peers whose fingerprints differ
	// are rejected during the handshake.
	Fingerprint core.Fingerprint
	// DialTimeout bounds the whole bootstrap: rendezvous plus pairwise
	// dials, with exponential backoff on refused connections. Default 15s.
	DialTimeout time.Duration
	// HeartbeatInterval is how often an idle connection emits a heartbeat
	// frame. Default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a connection may stay silent before its
	// peer is declared lost. Default 4 * HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// Epoch is the recovery generation of this mesh. A fault-tolerant
	// coordinator bumps it on every rejoin, so a straggling peer from a
	// previous generation is rejected at handshake time (same rendezvous
	// flow, same fingerprint check) instead of corrupting the new epoch's
	// dataflow. Plain runs leave it zero.
	Epoch int
	// WrapConn, when non-nil, wraps every established data connection after
	// the handshake — a fault-injection hook (bit flips, stalls) used by
	// the conformance suite. localRank is this fabric's rank, peerRank the
	// connection's remote end.
	WrapConn func(localRank, peerRank int, c net.Conn) net.Conn
}

func (o *Options) setDefaults() error {
	if o.Ranks < 1 {
		return fmt.Errorf("wire: need at least one rank, got %d", o.Ranks)
	}
	if o.Rank < 0 || o.Rank >= o.Ranks {
		return fmt.Errorf("wire: rank %d out of range [0,%d)", o.Rank, o.Ranks)
	}
	if o.Addr == "" && o.Listener == nil {
		return fmt.Errorf("wire: rendezvous address required")
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return nil
}

// peer is one remote rank: its duplex connection, outbound queue and writer
// state.
type peer struct {
	rank   int
	conn   net.Conn
	outbox *fabric.Mailbox

	wmu         sync.Mutex // serializes data, heartbeat and goodbye writes
	saidGoodbye bool       // guarded by wmu; no writes after goodbye
	lastWrite   atomic.Int64

	departed atomic.Bool // peer sent goodbye; EOF is now clean
}

// Fabric is the TCP transport: one per process (or per in-process rank),
// implementing fabric.Transport for the full rank set with the local rank's
// mailbox in memory and every other rank behind a connection.
type Fabric struct {
	opt   Options
	local *fabric.Mailbox
	peers []*peer // indexed by rank; nil at the local rank

	messages atomic.Uint64 // egress inter-rank traffic
	bytes    atomic.Uint64

	errMu     sync.Mutex
	firstErr  error
	lost      map[int]bool // ranks observed dead before cancellation
	cancelled atomic.Bool
	done      chan struct{} // closed on Cancel/Shutdown/Kill: stops heartbeats
	doneOnce  sync.Once

	writers sync.WaitGroup
	readers sync.WaitGroup
}

// Connect bootstraps the mesh and returns a running fabric. It blocks until
// every rank pair is connected and fingerprint-verified, or fails with an
// error wrapping ErrHandshake (mismatched peer) or the underlying network
// error (rendezvous unreachable within DialTimeout).
func Connect(opt Options) (*Fabric, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	f := &Fabric{
		opt:   opt,
		local: fabric.NewMailbox(),
		peers: make([]*peer, opt.Ranks),
		done:  make(chan struct{}),
	}
	conns, err := bootstrap(opt)
	if err != nil {
		return nil, err
	}
	for r, c := range conns {
		if c == nil {
			continue
		}
		if opt.WrapConn != nil {
			c = opt.WrapConn(opt.Rank, r, c)
		}
		p := &peer{rank: r, conn: c, outbox: fabric.NewMailbox()}
		p.lastWrite.Store(time.Now().UnixNano())
		f.peers[r] = p
		f.writers.Add(1)
		go f.writeLoop(p)
		f.readers.Add(1)
		go f.readLoop(p)
	}
	go f.heartbeatLoop()
	return f, nil
}

// Ranks implements fabric.Transport.
func (f *Fabric) Ranks() int { return f.opt.Ranks }

// LocalRank returns the rank this fabric instance serves.
func (f *Fabric) LocalRank() int { return f.opt.Rank }

// Send implements fabric.Transport. Messages to the local rank are
// in-memory hand-offs; everything else is enqueued on the destination
// peer's outbox for the writer to flush.
func (f *Fabric) Send(m fabric.Message) error {
	if m.To < 0 || m.To >= f.opt.Ranks {
		m.Payload.Release()
		return fmt.Errorf("wire: send to unknown rank %d", m.To)
	}
	var err error
	if m.To == f.opt.Rank {
		err = f.local.Put(m)
	} else {
		err = f.peers[m.To].outbox.Put(m)
	}
	if err != nil {
		return fmt.Errorf("wire: rank %d: %w", m.To, err)
	}
	return nil
}

// SendN implements fabric.Transport: runs of consecutive messages to the
// same rank are enqueued under one lock acquisition and flushed by the
// destination's writer as one coalesced write.
func (f *Fabric) SendN(ms []fabric.Message) error {
	for i := range ms {
		if ms[i].To < 0 || ms[i].To >= f.opt.Ranks {
			releaseAll(ms)
			return fmt.Errorf("wire: send to unknown rank %d", ms[i].To)
		}
	}
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].To == ms[i].To {
			j++
		}
		var err error
		if ms[i].To == f.opt.Rank {
			err = f.local.PutN(ms[i:j])
		} else {
			err = f.peers[ms[i].To].outbox.PutN(ms[i:j])
		}
		if err != nil {
			releaseAll(ms[j:])
			return fmt.Errorf("wire: rank %d: %w", ms[i].To, err)
		}
		i = j
	}
	return nil
}

func releaseAll(ms []fabric.Message) {
	for i := range ms {
		ms[i].Payload.Release()
	}
}

// Recv implements fabric.Transport. Only the local rank is receivable: a
// remote rank's mailbox lives in its own process.
func (f *Fabric) Recv(rank int) (fabric.Message, bool) {
	f.mustBeLocal(rank)
	return f.local.Get()
}

// RecvBatch implements fabric.Transport.
func (f *Fabric) RecvBatch(rank int, dst []fabric.Message) (int, bool) {
	f.mustBeLocal(rank)
	return f.local.GetBatch(dst)
}

// TryRecv dequeues a local message if one is immediately available.
func (f *Fabric) TryRecv(rank int) (fabric.Message, bool) {
	f.mustBeLocal(rank)
	return f.local.TryGet()
}

func (f *Fabric) mustBeLocal(rank int) {
	if rank != f.opt.Rank {
		panic(fmt.Sprintf("wire: receive on rank %d, but this fabric serves rank %d", rank, f.opt.Rank))
	}
}

// Close implements fabric.Transport. Closing the local rank closes its
// mailbox (queued messages remain receivable). Closing a remote rank
// half-closes the pair: the outbox stops accepting, the writer drains it,
// says goodbye and stops.
func (f *Fabric) Close(rank int) {
	if rank == f.opt.Rank {
		f.local.Close()
		return
	}
	if rank >= 0 && rank < f.opt.Ranks {
		f.peers[rank].outbox.Close()
	}
}

// Cancel implements fabric.Transport: it aborts all communication —
// queued messages are dropped with their payload references released,
// receivers return !ok, and every connection is torn down so remote peers
// observe the abort promptly (as a lost peer) instead of timing out.
func (f *Fabric) Cancel() {
	f.cancelled.Store(true)
	f.doneOnce.Do(func() { close(f.done) })
	f.local.Cancel()
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Cancel()
			p.conn.Close()
		}
	}
}

// Err implements fabric.Transport: the first transport-level failure (a
// typed error wrapping ErrPeerLost for lost peers), nil for clean runs and
// controller-initiated cancellation.
func (f *Fabric) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}

// Snapshot implements fabric.Transport. A process counts its egress
// traffic; summing snapshots across ranks yields the global totals the
// in-memory fabric reports.
func (f *Fabric) Snapshot() fabric.Stats {
	return fabric.Stats{Messages: f.messages.Load(), Bytes: f.bytes.Load()}
}

// Shutdown drains the fabric gracefully: it stops heartbeats, closes every
// outbox so the writers flush all in-flight payloads and say goodbye, then
// waits (up to timeout) for every peer's goodbye before closing the
// connections. It returns the fabric's first error, if any — a clean
// multi-process run ends with every rank's Shutdown returning nil.
func (f *Fabric) Shutdown(timeout time.Duration) error {
	f.doneOnce.Do(func() { close(f.done) })
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Close()
		}
	}
	f.writers.Wait()

	// Writers have exited; anything still queued in an outbox was dropped by
	// a failed writer and will never be delivered. Count it so the drain
	// reports partial delivery instead of silently discarding frames.
	undelivered := 0
	for _, p := range f.peers {
		if p != nil {
			undelivered += p.outbox.Len()
		}
	}

	readersDone := make(chan struct{})
	go func() {
		f.readers.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-time.After(timeout):
		f.fail(fmt.Errorf("wire: shutdown: peers still active after %v, %d queued frame(s) undelivered: %w",
			timeout, undelivered, ErrPeerLost))
	}
	for _, p := range f.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	f.local.Close()
	return f.Err()
}

// Kill abruptly severs every connection without goodbye or drain — a test
// hook simulating the death of this rank's process. Peers observe it as a
// lost peer within the heartbeat timeout.
func (f *Fabric) Kill() {
	f.cancelled.Store(true)
	f.doneOnce.Do(func() { close(f.done) })
	f.local.Cancel()
	for _, p := range f.peers {
		if p != nil {
			p.outbox.Cancel()
			p.conn.Close()
		}
	}
}

// fail records the first transport-level failure and cancels the fabric so
// the controller unwinds. Failures reported after a deliberate Cancel/Kill
// are teardown noise and are dropped.
func (f *Fabric) fail(err error) {
	if f.cancelled.Load() {
		return
	}
	f.errMu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.errMu.Unlock()
	f.Cancel()
}

// failPeer records rank as a lost peer, then fails the fabric. Losses
// observed after cancellation are teardown noise and are dropped, so the
// lost set names the peer(s) implicated in the first failure — the input a
// recovery coordinator reassigns around.
func (f *Fabric) failPeer(rank int, err error) {
	if f.cancelled.Load() {
		return
	}
	f.errMu.Lock()
	if f.lost == nil {
		f.lost = make(map[int]bool)
	}
	f.lost[rank] = true
	f.errMu.Unlock()
	f.fail(err)
}

// LostPeers implements fabric.LossReporter: the ranks this fabric observed
// as dead before it was cancelled, ascending.
func (f *Fabric) LostPeers() []int {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	if len(f.lost) == 0 {
		return nil
	}
	out := make([]int, 0, len(f.lost))
	for r := range f.lost {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// writeLoop drains one peer's outbox: whole batches are encoded into a
// single arena buffer and written with one conn.Write. When the outbox
// closes (Shutdown or Close of the pair) the loop flushes what remains and
// says goodbye; when it is cancelled the loop exits immediately (the
// connections are already being torn down).
func (f *Fabric) writeLoop(p *peer) {
	defer f.writers.Done()
	batch := make([]fabric.Message, 64)
	wires := make([][]byte, len(batch))
	for {
		n, ok := p.outbox.GetBatch(batch)
		if !ok {
			if !f.cancelled.Load() {
				p.wmu.Lock()
				if !p.saidGoodbye {
					p.saidGoodbye = true
					p.conn.SetWriteDeadline(time.Now().Add(f.opt.HeartbeatTimeout))
					p.conn.Write(controlFrame(frameGoodbye))
				}
				p.wmu.Unlock()
			}
			return
		}
		total := 0
		bad := false
		for i := 0; i < n; i++ {
			w, err := batch[i].Payload.Wire()
			if err != nil {
				f.fail(fmt.Errorf("wire: rank %d -> %d: task %d payload: %w",
					f.opt.Rank, p.rank, batch[i].Src, err))
				bad = true
				break
			}
			wires[i] = w
			total += dataFrameSize(len(w))
		}
		if bad {
			releaseAll(batch[:n])
			clearMessages(batch[:n])
			return
		}
		buf := core.GrabBuffer(total)[:0]
		var payloadBytes uint64
		for i := 0; i < n; i++ {
			buf = encodeDataFrame(buf, batch[i].Src, batch[i].Dest, batch[i].Seq, batch[i].Attempt, wires[i])
			payloadBytes += uint64(len(wires[i]))
			wires[i] = nil
		}
		p.wmu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(f.opt.HeartbeatTimeout))
		_, err := p.conn.Write(buf)
		p.lastWrite.Store(time.Now().UnixNano())
		p.wmu.Unlock()
		core.ReleaseBuffer(buf)
		releaseAll(batch[:n])
		clearMessages(batch[:n])
		if err != nil {
			// The failed write plus whatever is still queued behind it will
			// never reach the peer; surface the count so partial delivery is
			// observable instead of silent.
			undelivered := n + p.outbox.Len()
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: write to rank %d: %d frame(s) undelivered: %w (%v)",
				f.opt.Rank, p.rank, undelivered, ErrPeerLost, err))
			return
		}
		f.messages.Add(uint64(n))
		f.bytes.Add(payloadBytes)
	}
}

func clearMessages(ms []fabric.Message) {
	for i := range ms {
		ms[i] = fabric.Message{}
	}
}

// readLoop consumes one peer's frames: data frames become local mailbox
// deliveries with arena-backed payloads, heartbeats refresh the liveness
// deadline, goodbye marks the peer cleanly departed. Any other end of
// stream is a lost peer.
func (f *Fabric) readLoop(p *peer) {
	defer f.readers.Done()
	const rxBatch = 64
	br := newConnReader(p.conn, 64<<10)
	batch := make([]fabric.Message, 0, rxBatch)
	for {
		p.conn.SetReadDeadline(time.Now().Add(f.opt.HeartbeatTimeout))
		m, typ, err := f.readOne(p, br)
		if err != nil {
			if f.cancelled.Load() || p.departed.Load() {
				return
			}
			// Both sentinels are wrapped: recovery classifies this as peer
			// loss, while errors.Is(err, ErrCorruptFrame) still identifies
			// an integrity failure.
			f.failPeer(p.rank, fmt.Errorf("wire: rank %d: peer %d: %w (%w)", f.opt.Rank, p.rank, ErrPeerLost, err))
			return
		}
		switch typ {
		case frameGoodbye:
			p.departed.Store(true)
			return
		case frameHeartbeat:
			continue
		}
		batch = append(batch[:0], m)
		// Greedy drain: decode every data frame already buffered — without
		// blocking — so a burst is delivered under one mailbox lock.
		for len(batch) < rxBatch {
			m, ok, err := f.tryReadBuffered(p, br)
			if err != nil || !ok {
				break
			}
			batch = append(batch, m)
		}
		if err := f.local.PutN(batch); err != nil {
			// Local mailbox closed or cancelled: the run is over.
			clearMessages(batch)
			return
		}
		clearMessages(batch)
	}
}

// readOne reads the next frame, blocking, verifying its CRC32C. Data
// frames return the decoded message; control frames return their type with
// a zero message.
func (f *Fabric) readOne(p *peer, br *connReader) (fabric.Message, byte, error) {
	typ, n, crc, err := readFrame(br)
	if err != nil {
		return fabric.Message{}, 0, err
	}
	switch typ {
	case frameHeartbeat, frameGoodbye:
		if n != 0 {
			return fabric.Message{}, 0, fmt.Errorf("wire: control frame with %d-byte body", n)
		}
		if err := verifyBody(typ, nil, crc); err != nil {
			return fabric.Message{}, 0, err
		}
		return fabric.Message{}, typ, nil
	case frameData:
		m, err := f.readDataBody(p, br, n, crc)
		return m, frameData, err
	default:
		return fabric.Message{}, 0, fmt.Errorf("wire: unexpected frame type %d in data phase", typ)
	}
}

func (f *Fabric) readDataBody(p *peer, br io.Reader, n int, crc uint32) (fabric.Message, error) {
	if n < dataHeaderSize {
		return fabric.Message{}, fmt.Errorf("wire: data frame of %d bytes", n)
	}
	var hdr [dataHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fabric.Message{}, err
	}
	src := core.TaskId(le64(hdr[0:]))
	dest := core.TaskId(le64(hdr[8:]))
	seq := le64(hdr[16:])
	attempt := le32(hdr[24:])
	payload := core.GrabBuffer(n - dataHeaderSize)
	if _, err := io.ReadFull(br, payload); err != nil {
		core.ReleaseBuffer(payload)
		return fabric.Message{}, err
	}
	got := crc32.Update(0, castagnoli, hdr[:])
	got = crc32.Update(got, castagnoli, payload)
	if got != crc {
		core.ReleaseBuffer(payload)
		return fabric.Message{}, fmt.Errorf("%w: data frame src %d dest %d, crc %08x != header %08x",
			ErrCorruptFrame, src, dest, got, crc)
	}
	return fabric.Message{
		From: p.rank, To: f.opt.Rank, Src: src, Dest: dest,
		Seq: seq, Attempt: attempt,
		Payload: core.Buffer(payload),
	}, nil
}

// tryReadBuffered decodes one more data frame only if it is already fully
// buffered; it never blocks. Control frames end the greedy drain (they are
// rare and handled by the blocking path on the next iteration).
func (f *Fabric) tryReadBuffered(p *peer, br *connReader) (fabric.Message, bool, error) {
	hdr, ok := br.peek(frameHeaderSize)
	if !ok {
		return fabric.Message{}, false, nil
	}
	l := int(le32(hdr))
	if l < 1 || l > maxFrameSize {
		return fabric.Message{}, false, fmt.Errorf("wire: frame length %d out of range", l)
	}
	if hdr[4] != frameData {
		return fabric.Message{}, false, nil
	}
	// The whole frame on the wire is the header plus the body (l counts the
	// type byte, which lives inside the header).
	if !br.buffered(frameHeaderSize + l - 1) {
		return fabric.Message{}, false, nil
	}
	_, _, crc, err := readFrame(br)
	if err != nil {
		return fabric.Message{}, false, err
	}
	m, err := f.readDataBody(p, br, l-1, crc)
	if err != nil {
		return fabric.Message{}, false, err
	}
	return m, true, nil
}

// connReader is a buffered connection reader that can report whether a
// whole frame is already buffered, letting the read loop drain bursts
// without ever blocking mid-batch.
type connReader struct {
	*bufio.Reader
}

func newConnReader(c net.Conn, size int) *connReader {
	return &connReader{bufio.NewReaderSize(c, size)}
}

// peek returns the next n bytes without consuming them, but only if they
// are already buffered — it never reads from the connection.
func (r *connReader) peek(n int) ([]byte, bool) {
	if r.Buffered() < n {
		return nil, false
	}
	b, err := r.Peek(n)
	if err != nil {
		return nil, false
	}
	return b, true
}

// buffered reports whether at least n bytes are already buffered.
func (r *connReader) buffered(n int) bool { return r.Buffered() >= n }

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// heartbeatLoop keeps every idle connection warm so silence means failure,
// not inactivity.
func (f *Fabric) heartbeatLoop() {
	t := time.NewTicker(f.opt.HeartbeatInterval)
	defer t.Stop()
	hb := controlFrame(frameHeartbeat)
	for {
		select {
		case <-f.done:
			return
		case now := <-t.C:
			for _, p := range f.peers {
				if p == nil {
					continue
				}
				if now.UnixNano()-p.lastWrite.Load() < int64(f.opt.HeartbeatInterval) {
					continue
				}
				p.wmu.Lock()
				var err error
				if !p.saidGoodbye {
					p.conn.SetWriteDeadline(now.Add(f.opt.HeartbeatTimeout))
					_, err = p.conn.Write(hb)
					p.lastWrite.Store(time.Now().UnixNano())
				}
				p.wmu.Unlock()
				if err != nil && !p.departed.Load() {
					f.failPeer(p.rank, fmt.Errorf("wire: rank %d: heartbeat to rank %d: %w (%v)", f.opt.Rank, p.rank, ErrPeerLost, err))
					return
				}
			}
		}
	}
}
