package wire

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// connectMeshWith bootstraps n in-process fabrics, letting the caller
// adjust each rank's options (tier, host identity) before Connect. Errors
// are returned, not fatal, so refusal paths are testable.
func connectMeshWith(t *testing.T, n int, adjust func(rank int, o *Options)) ([]*Fabric, []error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*Fabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		o := Options{Rank: r, Ranks: n, Addr: ln.Addr().String(), DialTimeout: 5 * time.Second}
		if r == 0 {
			o.Listener = ln
		}
		if adjust != nil {
			adjust(r, &o)
		}
		wg.Add(1)
		go func(r int, o Options) {
			defer wg.Done()
			fabrics[r], errs[r] = Connect(o)
		}(r, o)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, f := range fabrics {
			if f != nil {
				f.Kill()
			}
		}
	})
	return fabrics, errs
}

func requireMesh(t *testing.T, fabrics []*Fabric, errs []error) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	_ = fabrics
}

// expectNetworks asserts the transport of every pair in the mesh.
func expectNetworks(t *testing.T, fabrics []*Fabric, want func(i, j int) string) {
	t.Helper()
	for i, f := range fabrics {
		for j := range fabrics {
			if i == j {
				continue
			}
			if got, w := f.PeerNetwork(j), want(i, j); got != w {
				t.Errorf("rank %d -> %d over %q, want %q", i, j, got, w)
			}
		}
	}
}

// roundTrip proves the mesh actually carries data: every rank sends to
// every other rank and receives from every other rank.
func roundTrip(t *testing.T, fabrics []*Fabric) {
	t.Helper()
	n := len(fabrics)
	for i, f := range fabrics {
		for j := range fabrics {
			if i == j {
				continue
			}
			payload := core.Buffer([]byte{byte(i), byte(j)})
			if err := f.Send(fabric.Message{From: i, To: j, Payload: payload}); err != nil {
				t.Fatalf("send %d -> %d: %v", i, j, err)
			}
		}
	}
	for i, f := range fabrics {
		for k := 0; k < n-1; k++ {
			m, ok := f.Recv(i)
			if !ok {
				t.Fatalf("rank %d: mesh closed after %d receives", i, k)
			}
			w, err := m.Payload.Wire()
			if err != nil || len(w) != 2 || int(w[1]) != i {
				t.Fatalf("rank %d: bad payload %v (err %v)", i, w, err)
			}
		}
	}
}

func TestTierAutoCoLocatedUsesShm(t *testing.T) {
	// All ranks share the real host identity, so TierAuto must put every
	// pair — including rank 0's upgraded registration conns — on the
	// shared-memory rings (shm > unix > tcp).
	fabrics, errs := connectMeshWith(t, 3, nil)
	requireMesh(t, fabrics, errs)
	expectNetworks(t, fabrics, func(i, j int) string { return "shm" })
	roundTrip(t, fabrics)
}

func TestTierAutoSplitHosts(t *testing.T) {
	// Ranks 0 and 1 share host "a"; rank 2 lives on host "b". Only the 0-1
	// pair may ride shared memory; every pair touching rank 2 stays TCP.
	host := func(r int) string {
		if r < 2 {
			return "host-a"
		}
		return "host-b"
	}
	fabrics, errs := connectMeshWith(t, 3, func(r int, o *Options) { o.HostID = host(r) })
	requireMesh(t, fabrics, errs)
	expectNetworks(t, fabrics, func(i, j int) string {
		if host(i) == host(j) {
			return "shm"
		}
		return "tcp"
	})
	roundTrip(t, fabrics)
}

func TestTierTCPForcesTCP(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 3, func(r int, o *Options) { o.Tier = TierTCP })
	requireMesh(t, fabrics, errs)
	expectNetworks(t, fabrics, func(i, j int) string { return "tcp" })
	roundTrip(t, fabrics)
}

func TestTierUnixStrict(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 3, func(r int, o *Options) { o.Tier = TierUnix })
	requireMesh(t, fabrics, errs)
	expectNetworks(t, fabrics, func(i, j int) string { return "unix" })
	roundTrip(t, fabrics)
}

func TestTierUnixRejectsCrossHost(t *testing.T) {
	_, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierUnix
		if r == 1 {
			o.HostID = "elsewhere"
		}
	})
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if !errors.Is(err, ErrHandshake) {
				t.Fatalf("cross-host tier unix failed with %v, want ErrHandshake", err)
			}
		}
	}
	if !failed {
		t.Fatal("tier unix bootstrapped across distinct host identities")
	}
}

func TestTierShmStrict(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 3, func(r int, o *Options) { o.Tier = TierShm })
	requireMesh(t, fabrics, errs)
	expectNetworks(t, fabrics, func(i, j int) string { return "shm" })
	roundTrip(t, fabrics)
}

func TestTierShmRejectsCrossHost(t *testing.T) {
	_, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierShm
		if r == 1 {
			o.HostID = "elsewhere"
		}
	})
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if !errors.Is(err, ErrHandshake) {
				t.Fatalf("cross-host tier shm failed with %v, want ErrHandshake", err)
			}
		}
	}
	if !failed {
		t.Fatal("tier shm bootstrapped across distinct host identities")
	}
}

func TestTierMismatchRejected(t *testing.T) {
	_, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		if r == 1 {
			o.Tier = TierTCP
		}
	})
	failed := false
	for _, err := range errs {
		if err != nil && errors.Is(err, ErrHandshake) {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("tier mismatch bootstrapped: %v", errs)
	}
}

func TestParseTier(t *testing.T) {
	for s, want := range map[string]Tier{"": TierAuto, "auto": TierAuto, "tcp": TierTCP, "unix": TierUnix, "shm": TierShm} {
		got, err := ParseTier(s)
		if err != nil || got != want {
			t.Fatalf("ParseTier(%q) = %v, %v", s, got, err)
		}
	}
	_, err := ParseTier("carrier-pigeon")
	if err == nil {
		t.Fatal("ParseTier accepted nonsense")
	}
	// The refusal names every valid tier, so a typo'd flag is self-healing.
	for _, name := range []string{"auto", "tcp", "unix", "shm"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-tier error %q does not mention %q", err, name)
		}
	}
	for _, tier := range []Tier{TierAuto, TierTCP, TierUnix, TierShm} {
		back, err := ParseTier(tier.String())
		if err != nil || back != tier {
			t.Fatalf("round-trip %v: %v, %v", tier, back, err)
		}
	}
}
