package wire

import (
	"errors"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
)

// TestCorruptFrameDeclaresPeerLost flips a bit inside a data frame's
// payload in transit: the receiver must reject it with a typed
// ErrCorruptFrame, classify the sender as a lost peer (the stream is no
// longer trustworthy), and never deliver the corrupted payload.
func TestCorruptFrameDeclaresPeerLost(t *testing.T) {
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		// Pin the socket tier: WrapConn intercepts socket writes, and under
		// TierAuto data frames ride the shm rings instead (the ring analogue
		// lives in shm_test.go, via CorruptNextShmFrame).
		Tier: TierUnix,
		// Flip a bit in the first payload byte of the first 0->1 write big
		// enough to be a data frame (heartbeats are header-only).
		WrapConn: faultinject.CorruptNthWrite(0, 1, 1, dataFrameSize(1), frameHeaderSize+dataHeaderSize),
	}
	fabrics := connectMesh(t, 2, opt)
	if err := fabrics[0].Send(fabric.Message{
		From: 0, To: 1, Src: 1, Dest: 2,
		Payload: core.Buffer([]byte("integrity matters")),
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		m, ok := fabrics[1].Recv(1)
		if ok {
			m.Payload.Release()
		}
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("corrupted frame was delivered as a valid message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver neither delivered nor failed")
	}
	err := fabrics[1].Err()
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("Err() = %v, want ErrCorruptFrame", err)
	}
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Err() = %v, must also classify as ErrPeerLost for recovery", err)
	}
	if lost := fabrics[1].LostPeers(); len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("LostPeers = %v, want [0]", lost)
	}
}

// TestStalledPeerDetectedByTightenedTimeout wedges rank 0's writes (the
// connection stays open, so only heartbeat silence gives it away) and
// checks a tightened timeout detects the stall much faster than the 4s
// default would.
func TestStalledPeerDetectedByTightenedTimeout(t *testing.T) {
	const timeout = 250 * time.Millisecond
	opt := Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  timeout,
		Tier:              TierUnix, // WrapConn intercepts socket writes, not rings
		WrapConn:          faultinject.StallAfterWrites(0, 1, 0), // mute from the first data-phase write
	}
	fabrics := connectMesh(t, 2, opt)
	start := time.Now()
	if _, ok := fabrics[1].Recv(1); ok {
		t.Fatal("received a message from a stalled peer")
	}
	elapsed := time.Since(start)
	if err := fabrics[1].Err(); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Err() = %v, want ErrPeerLost", err)
	}
	if lost := fabrics[1].LostPeers(); len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("LostPeers = %v, want [0]", lost)
	}
	// Detection is bounded by the tightened timeout (plus scheduling slack),
	// far under the 4s the default policy would take.
	if elapsed > 8*timeout {
		t.Fatalf("stall detected after %v; tightened timeout %v had no effect", elapsed, timeout)
	}
}
