package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Unit coverage of the shared-memory ring pair and the TierShm data path:
// the raw SPSC ring (wrap arithmetic, region validation), backpressure
// through a deliberately tiny ring, frames larger than the ring, and the
// torn-ring corruption contract (ErrCorruptFrame + peer loss).

func TestShmRingWrapAndRegionValidation(t *testing.T) {
	dir := t.TempDir()
	a, err := createShmRegion(dir, 7, minShmRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()

	// A stale generation must be refused before any ring traffic.
	if _, err := openShmRegion(a.path, 8); err == nil {
		t.Fatal("mapped a region from another generation")
	}
	b, err := openShmRegion(a.path, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer b.close()

	// Stream far more than the capacity through the pair in odd-sized
	// chunks so both cursors wrap several times, interleaving partial
	// pushes with partial pops.
	src := make([]byte, 10*minShmRingBytes)
	for i := range src {
		src[i] = byte(i * 31)
	}
	got := make([]byte, 0, len(src))
	buf := make([]byte, 997)
	for in := src; len(in) > 0 || len(got) < len(src); {
		if len(in) > 0 {
			n := a.tx.push(in)
			in = in[n:]
		}
		if n := b.rx.pop(buf); n > 0 {
			got = append(got, buf[:n]...)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("bytes through the wrapped ring are not identical")
	}
	if a.tx.free() != uint64(minShmRingBytes) {
		t.Fatalf("drained ring reports %d free bytes, want %d", a.tx.free(), minShmRingBytes)
	}
}

func TestShmRingBytesRounding(t *testing.T) {
	o := Options{Ranks: 1, Rank: 0, Addr: "127.0.0.1:1", ShmRingBytes: 5000}
	if err := o.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.ShmRingBytes != 8192 {
		t.Fatalf("5000 rounded to %d, want 8192", o.ShmRingBytes)
	}
	o = Options{Ranks: 1, Rank: 0, Addr: "127.0.0.1:1", ShmRingBytes: 100}
	if err := o.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.ShmRingBytes != minShmRingBytes {
		t.Fatalf("100 clamped to %d, want %d", o.ShmRingBytes, minShmRingBytes)
	}
	o = Options{Ranks: 1, Rank: 0, Addr: "127.0.0.1:1"}
	if err := o.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.ShmRingBytes != defaultShmRingBytes {
		t.Fatalf("default ring %d, want %d", o.ShmRingBytes, defaultShmRingBytes)
	}
}

// TestShmSmallRingBackpressure pushes far more bytes than a minimum-size
// ring holds while the consumer drains slowly: the producer must park on
// pwait and resume on the relayed doorbell, delivering every frame in
// order with no loss.
func TestShmSmallRingBackpressure(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierShm
		o.ShmRingBytes = minShmRingBytes
	})
	requireMesh(t, fabrics, errs)

	const msgs = 64
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		for i := 0; i < msgs; i++ {
			fabrics[0].Send(fabric.Message{
				From: 0, To: 1, Seq: uint64(i),
				Payload: core.Buffer(append([]byte(nil), payload...)),
			})
		}
	}()
	for i := 0; i < msgs; i++ {
		if i%8 == 0 {
			time.Sleep(2 * time.Millisecond) // let the ring fill
		}
		m, ok := fabrics[1].Recv(1)
		if !ok {
			t.Fatalf("mesh closed after %d of %d messages", i, msgs)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("message %d arrived with seq %d: FIFO broken", i, m.Seq)
		}
		w, err := m.Payload.Wire()
		if err != nil || !bytes.Equal(w, payload) {
			t.Fatalf("message %d corrupted through the ring (err %v)", i, err)
		}
		m.Payload.Release()
	}
}

// TestShmLargeFrameStreams sends a payload several times the ring size:
// it must stream through in chunks, arriving intact.
func TestShmLargeFrameStreams(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierShm
		o.ShmRingBytes = minShmRingBytes
	})
	requireMesh(t, fabrics, errs)

	big := make([]byte, 5*minShmRingBytes)
	for i := range big {
		big[i] = byte(i * 13)
	}
	go fabrics[0].Send(fabric.Message{From: 0, To: 1, Payload: core.Buffer(append([]byte(nil), big...))})
	m, ok := fabrics[1].Recv(1)
	if !ok {
		t.Fatal("mesh closed before the large frame arrived")
	}
	w, err := m.Payload.Wire()
	if err != nil || !bytes.Equal(w, big) {
		t.Fatalf("large frame corrupted (len %d vs %d, err %v)", len(w), len(big), err)
	}
	m.Payload.Release()
}

// TestShmShutdownDrainsRing checks the goodbye-with-final-tail protocol:
// everything queued before Shutdown is delivered, then the departure is
// clean on both sides.
func TestShmShutdownDrainsRing(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierShm
		o.ShmRingBytes = minShmRingBytes
	})
	requireMesh(t, fabrics, errs)

	const msgs = 200
	batch := make([]fabric.Message, msgs)
	for i := range batch {
		batch[i] = fabric.Message{From: 0, To: 1, Seq: uint64(i), Payload: core.Buffer(make([]byte, 512))}
	}
	if err := fabrics[0].SendN(batch); err != nil {
		t.Fatal(err)
	}
	sdone := make(chan error, 1)
	go func() { sdone <- fabrics[0].Shutdown(10 * time.Second) }()
	for i := 0; i < msgs; i++ {
		m, ok := fabrics[1].Recv(1)
		if !ok {
			t.Fatalf("mesh closed after %d of %d queued messages", i, msgs)
		}
		m.Payload.Release()
	}
	if err := fabrics[1].Shutdown(10 * time.Second); err != nil {
		t.Fatalf("receiver shutdown: %v", err)
	}
	if err := <-sdone; err != nil {
		t.Fatalf("sender shutdown: %v", err)
	}
}

// TestShmCorruptRingDeclaresPeerLost arms the ring fault injection: the
// receiver must reject the frame with a typed ErrCorruptFrame, classify
// the sender as lost, and never deliver the corrupted payload — the same
// contract the socket tiers prove with a WrapConn bit flip.
func TestShmCorruptRingDeclaresPeerLost(t *testing.T) {
	fabrics, errs := connectMeshWith(t, 2, func(r int, o *Options) {
		o.Tier = TierShm
		o.HeartbeatInterval = 50 * time.Millisecond
		o.HeartbeatTimeout = 2 * time.Second
	})
	requireMesh(t, fabrics, errs)

	if !fabrics[0].CorruptNextShmFrame(1) {
		t.Fatal("CorruptNextShmFrame found no shm link to rank 1")
	}
	if err := fabrics[0].Send(fabric.Message{
		From: 0, To: 1, Src: 1, Dest: 2,
		Payload: core.Buffer([]byte("integrity matters")),
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		m, ok := fabrics[1].Recv(1)
		if ok {
			m.Payload.Release()
		}
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("corrupted ring frame was delivered as a valid message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver neither delivered nor failed")
	}
	err := fabrics[1].Err()
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("Err() = %v, want ErrCorruptFrame", err)
	}
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Err() = %v, must also classify as ErrPeerLost for recovery", err)
	}
	if lost := fabrics[1].LostPeers(); len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("LostPeers = %v, want [0]", lost)
	}
	// The uncorrupted direction must not have been poisoned: rank 0 only
	// learns of the teardown through the connection closing.
	if !fabrics[0].CorruptNextShmFrame(1) {
		t.Fatal("shm link vanished from the sender side")
	}
}
