package wire

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// bootstrap establishes the full connection mesh for one rank and returns
// the per-rank connections (nil at the local rank) plus the shared-memory
// ring regions negotiated for co-located pairs (nil where the pair stays
// on its socket). Rank 0 plays rendezvous server: it accepts a
// registration from every other rank, verifies the fingerprint and replies
// with the endpoint table. The registration connections double as rank 0's
// data connections (co-located pairs then upgrade them to the unix tier);
// the remaining pairs are completed by every rank dialing all lower ranks
// over whichever transport the tier selects. Pairs that end up on a unix
// socket additionally negotiate a shm ring pair when the tier allows it:
// the dialer creates and offers a region file, the acceptor maps and acks
// it, and the dialer unlinks it — leaving both sides with a private
// mapping and nothing on disk.
func bootstrap(opt Options) ([]net.Conn, []*shmRegion, error) {
	conns := make([]net.Conn, opt.Ranks)
	if opt.Ranks == 1 {
		if opt.Listener != nil {
			opt.Listener.Close()
		}
		return conns, nil, nil
	}
	regs := make([]*shmRegion, opt.Ranks)
	deadline := time.Now().Add(opt.DialTimeout)
	var err error
	if opt.Rank == 0 {
		err = bootstrapRoot(opt, conns, regs, deadline)
	} else {
		err = bootstrapPeer(opt, conns, regs, deadline)
	}
	if err != nil {
		closeRegions(regs)
		return nil, nil, err
	}
	if opt.Tier == TierShm {
		for r, c := range conns {
			if c != nil && regs[r] == nil {
				closeAll(conns)
				closeRegions(regs)
				return nil, nil, fmt.Errorf("%w: rank %d: tier shm: no ring negotiated with rank %d", ErrHandshake, opt.Rank, r)
			}
		}
	}
	return conns, regs, nil
}

func bootstrapRoot(opt Options, conns []net.Conn, regs []*shmRegion, deadline time.Time) error {
	ln := opt.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen(rendezvousNetwork(opt.Addr), opt.Addr)
		if err != nil {
			return fmt.Errorf("wire: rendezvous listen: %w", err)
		}
	}
	defer ln.Close()
	setListenerDeadline(ln, deadline)

	// Rank 0's unix data listener: co-located peers re-dial it after the
	// welcome, upgrading their registration connection off TCP.
	uln, ucleanup, err := unixDataListener(opt, deadline)
	if err != nil {
		return err
	}
	if ucleanup != nil {
		defer ucleanup()
	}
	shmDir, scleanup, err := shmSetup(opt)
	if err != nil {
		return err
	}
	if scleanup != nil {
		defer scleanup()
	}

	eps := make([]endpoint, opt.Ranks)
	eps[0] = endpoint{HostID: opt.HostID, Shm: shmDir, ShmGen: uint64(opt.Epoch)}
	if uln != nil {
		eps[0].Unix = uln.Addr().String()
	}
	registered := 0
	for registered < opt.Ranks-1 {
		c, err := ln.Accept()
		if err != nil {
			closeAll(conns)
			return fmt.Errorf("wire: rendezvous: waiting for %d more rank(s): %w",
				opt.Ranks-1-registered, err)
		}
		h, err := readHello(c, deadline)
		if err != nil {
			c.Close()
			closeAll(conns)
			return fmt.Errorf("wire: rendezvous: %w", err)
		}
		reason := vetHello(opt, h, 1, conns)
		if reason == "" && opt.Tier.sameHostOnly() && h.Endpoint.HostID != opt.HostID {
			reason = fmt.Sprintf("tier %v requires co-location, but rank %d is on a different host", opt.Tier, h.Rank)
		}
		if reason != "" {
			writeConn(c, deadline, encodeReject(reason))
			c.Close()
			closeAll(conns)
			return fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
		}
		conns[h.Rank] = c
		eps[h.Rank] = h.Endpoint
		registered++
	}

	welcome, err := encodeWelcome(eps)
	if err != nil {
		closeAll(conns)
		return err
	}
	for r := 1; r < opt.Ranks; r++ {
		if err := writeConn(conns[r], deadline, welcome); err != nil {
			closeAll(conns)
			return fmt.Errorf("wire: rendezvous: welcome to rank %d: %w", r, err)
		}
	}

	// Upgrade pass: every co-located peer now re-dials over the unix
	// listener. The predicate (tier allows, rank 0 has a unix listener,
	// host identities match) is computed identically on both sides — the
	// tier itself is vetted during the handshake — so the expected set is
	// exact.
	if uln != nil {
		expect := make(map[int]bool)
		for r := 1; r < opt.Ranks; r++ {
			if eps[r].HostID == opt.HostID {
				expect[r] = true
			}
		}
		for len(expect) > 0 {
			c, err := uln.Accept()
			if err != nil {
				closeAll(conns)
				return fmt.Errorf("wire: rendezvous: waiting for %d unix upgrade(s): %w", len(expect), err)
			}
			h, err := readHello(c, deadline)
			if err != nil {
				c.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rendezvous: upgrade: %w", err)
			}
			reason := vetCommon(opt, h)
			if reason == "" && !expect[h.Rank] {
				reason = fmt.Sprintf("unexpected unix upgrade from rank %d", h.Rank)
			}
			if reason != "" {
				writeConn(c, deadline, encodeReject(reason))
				c.Close()
				closeAll(conns)
				return fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
			}
			if err := writeConn(c, deadline, controlFrame(frameAccept)); err != nil {
				c.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rendezvous: upgrade accept to rank %d: %w", h.Rank, err)
			}
			// The upgrading peer is the dialer of this pair: it offers a
			// ring region next when both sides advertised shm capability.
			if shmPairWanted(opt, shmDir, h.Endpoint) {
				reg, err := acceptShmRing(opt, c, deadline)
				if err != nil {
					c.Close()
					closeAll(conns)
					return fmt.Errorf("wire: rendezvous: shm ring with rank %d: %w", h.Rank, err)
				}
				regs[h.Rank] = reg
			}
			conns[h.Rank].Close() // retire the TCP registration connection
			conns[h.Rank] = c
			delete(expect, h.Rank)
		}
	}
	return nil
}

func bootstrapPeer(opt Options, conns []net.Conn, regs []*shmRegion, deadline time.Time) error {
	// The rank's own data listeners, dialed by every higher rank. The TCP
	// one lives on the same host family as the rendezvous address with an
	// ephemeral port; the unix one (tier permitting) under a private temp
	// directory.
	host, _, err := net.SplitHostPort(opt.Addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return fmt.Errorf("wire: rank %d data listen: %w", opt.Rank, err)
	}
	defer ln.Close()
	setListenerDeadline(ln, deadline)
	uln, ucleanup, err := unixDataListener(opt, deadline)
	if err != nil {
		return err
	}
	if ucleanup != nil {
		defer ucleanup()
	}
	shmDir, scleanup, err := shmSetup(opt)
	if err != nil {
		return err
	}
	if scleanup != nil {
		defer scleanup()
	}

	self := endpoint{TCP: ln.Addr().String(), HostID: opt.HostID, Shm: shmDir, ShmGen: uint64(opt.Epoch)}
	if uln != nil {
		self.Unix = uln.Addr().String()
	}

	// Register with rank 0 and receive the endpoint table.
	c0, err := dialRetry(rendezvousNetwork(opt.Addr), opt.Addr, deadline)
	if err != nil {
		return fmt.Errorf("wire: rank %d: rendezvous %s: %w", opt.Rank, opt.Addr, err)
	}
	h := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Tier: opt.Tier,
		Fingerprint: opt.Fingerprint, Endpoint: self}
	if err := writeConn(c0, deadline, encodeHello(h)); err != nil {
		c0.Close()
		return fmt.Errorf("wire: rank %d: register: %w", opt.Rank, err)
	}
	typ, body, err := readControl(c0, deadline)
	if err != nil {
		c0.Close()
		return fmt.Errorf("wire: rank %d: rendezvous reply: %w", opt.Rank, err)
	}
	if typ == frameReject {
		c0.Close()
		return fmt.Errorf("%w: %s", ErrHandshake, body)
	}
	if typ != frameWelcome {
		c0.Close()
		return fmt.Errorf("wire: rank %d: unexpected frame %d from rendezvous", opt.Rank, typ)
	}
	eps, err := decodeWelcome(body)
	if err != nil || len(eps) != opt.Ranks {
		c0.Close()
		return fmt.Errorf("wire: rank %d: bad welcome: %v", opt.Rank, err)
	}
	conns[0] = c0

	// Upgrade the rank-0 link to the unix tier when co-located (the exact
	// mirror of rank 0's expectation — see bootstrapRoot). As the dialer of
	// the upgrade, this rank then offers rank 0 a shm ring when both sides
	// advertised the capability.
	if opt.Tier != TierTCP && eps[0].Unix != "" && eps[0].HostID == opt.HostID {
		uc, err := dialRetry("unix", eps[0].Unix, deadline)
		if err != nil {
			closeAll(conns)
			return fmt.Errorf("wire: rank %d: unix upgrade to rank 0: %w", opt.Rank, err)
		}
		if err := shakeHands(opt, uc, 0, self, deadline); err != nil {
			uc.Close()
			closeAll(conns)
			return err
		}
		if shmPairWanted(opt, shmDir, eps[0]) {
			reg, err := offerShmRing(opt, uc, shmDir, deadline)
			if err != nil {
				uc.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rank %d: shm ring with rank 0: %w", opt.Rank, err)
			}
			regs[0] = reg
		}
		c0.Close()
		conns[0] = uc
	} else if opt.Tier.sameHostOnly() {
		closeAll(conns)
		return fmt.Errorf("%w: rank %d: tier %v requires co-location with rank 0", ErrHandshake, opt.Rank, opt.Tier)
	}

	// Dial every lower rank's data listener; higher ranks dial us.
	for j := 1; j < opt.Rank; j++ {
		network, addr, err := pickEndpoint(opt, eps[j], j)
		if err != nil {
			closeAll(conns)
			return err
		}
		c, err := dialRetry(network, addr, deadline)
		if err != nil {
			closeAll(conns)
			return fmt.Errorf("wire: rank %d: rank %d at %s: %w", opt.Rank, j, addr, err)
		}
		if err := shakeHands(opt, c, j, self, deadline); err != nil {
			c.Close()
			closeAll(conns)
			return err
		}
		if network == "unix" && shmPairWanted(opt, shmDir, eps[j]) {
			reg, err := offerShmRing(opt, c, shmDir, deadline)
			if err != nil {
				c.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rank %d: shm ring with rank %d: %w", opt.Rank, j, err)
			}
			regs[j] = reg
		}
		conns[j] = c
	}

	// Accept every higher rank, over whichever of the two listeners it
	// chose to dial. A dialer arriving over the unix listener offers a shm
	// ring next when both sides advertised the capability.
	if need := opt.Ranks - 1 - opt.Rank; need > 0 {
		income := acceptFrom(need+2, ln, uln)
		for ; need > 0; need-- {
			in := <-income
			if in.err != nil {
				closeAll(conns)
				return fmt.Errorf("wire: rank %d: waiting for %d higher rank(s): %w", opt.Rank, need, in.err)
			}
			c := in.c
			h, err := readHello(c, deadline)
			if err != nil {
				c.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rank %d: %w", opt.Rank, err)
			}
			if reason := vetHello(opt, h, opt.Rank+1, conns); reason != "" {
				writeConn(c, deadline, encodeReject(reason))
				c.Close()
				closeAll(conns)
				return fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
			}
			if err := writeConn(c, deadline, controlFrame(frameAccept)); err != nil {
				c.Close()
				closeAll(conns)
				return fmt.Errorf("wire: rank %d: accept to rank %d: %w", opt.Rank, h.Rank, err)
			}
			if _, isUnix := c.(*net.UnixConn); isUnix && shmPairWanted(opt, shmDir, h.Endpoint) {
				reg, err := acceptShmRing(opt, c, deadline)
				if err != nil {
					c.Close()
					closeAll(conns)
					return fmt.Errorf("wire: rank %d: shm ring with rank %d: %w", opt.Rank, h.Rank, err)
				}
				regs[h.Rank] = reg
			}
			conns[h.Rank] = c
		}
	}
	return nil
}

// pickEndpoint selects the transport for a pairwise dial to rank j: unix
// when the tier allows it and both ranks share a host (and j opened a unix
// listener), TCP otherwise. The same-host-only tiers (unix, shm) turn a
// TCP fallback into an error.
func pickEndpoint(opt Options, ep endpoint, j int) (network, addr string, err error) {
	if opt.Tier != TierTCP && ep.Unix != "" && ep.HostID == opt.HostID {
		return "unix", ep.Unix, nil
	}
	if opt.Tier.sameHostOnly() {
		return "", "", fmt.Errorf("%w: rank %d: tier %v requires co-location with rank %d", ErrHandshake, opt.Rank, opt.Tier, j)
	}
	return "tcp", ep.TCP, nil
}

// shmSetup creates this rank's private ring-file directory when the tier
// wants shared memory. A setup failure (or an unsupported platform) is
// fatal under TierShm and silently degrades to the socket tiers under
// TierAuto: the rank simply advertises no shm capability.
func shmSetup(opt Options) (dir string, cleanup func(), err error) {
	if opt.Tier != TierAuto && opt.Tier != TierShm {
		return "", nil, nil
	}
	dir, err = shmDataDir()
	if err != nil {
		if opt.Tier == TierShm {
			return "", nil, fmt.Errorf("%w: rank %d: tier shm: %v", ErrHandshake, opt.Rank, err)
		}
		return "", nil, nil
	}
	// Ring files are unlinked as soon as the peer maps them, so removing
	// the directory after the bootstrap leaves nothing behind.
	return dir, func() { os.RemoveAll(dir) }, nil
}

// shmPairWanted reports whether a freshly established unix-socket pair
// should negotiate a shared-memory ring: the tier allows it and both ends
// advertised a ring directory for the same generation. Both sides compute
// it from the same inputs (their own capability plus the peer's hello or
// welcome entry), so the dialer offers exactly when the acceptor expects.
func shmPairWanted(opt Options, localDir string, peer endpoint) bool {
	if opt.Tier != TierAuto && opt.Tier != TierShm {
		return false
	}
	return localDir != "" && peer.Shm != "" && peer.ShmGen == uint64(opt.Epoch) && peer.HostID == opt.HostID
}

// offerShmRing runs the dialer's half of the ring negotiation on an
// accepted pair: create a region file, offer its path, await the ack,
// unlink the file (the mappings outlive the name). A nil region with a nil
// error means the pair gracefully degraded to the socket (TierAuto only).
func offerShmRing(opt Options, c net.Conn, dir string, deadline time.Time) (*shmRegion, error) {
	reg, err := createShmRegion(dir, uint64(opt.Epoch), opt.ShmRingBytes)
	if err != nil {
		if opt.Tier == TierShm {
			return nil, fmt.Errorf("%w: create ring region: %v", ErrHandshake, err)
		}
		// Withdraw the offer so the acceptor stops waiting.
		if err := writeConn(c, deadline, encodeShmOffer("", uint64(opt.Epoch), 0)); err != nil {
			return nil, err
		}
		if _, err := readShmAck(c, deadline); err != nil {
			return nil, err
		}
		return nil, nil
	}
	offer := encodeShmOffer(reg.path, uint64(opt.Epoch), uint64(opt.ShmRingBytes))
	if err := writeConn(c, deadline, offer); err != nil {
		reg.close()
		os.Remove(reg.path)
		return nil, err
	}
	ok, err := readShmAck(c, deadline)
	os.Remove(reg.path)
	if err != nil {
		reg.close()
		return nil, err
	}
	if !ok {
		reg.close()
		if opt.Tier == TierShm {
			return nil, fmt.Errorf("%w: peer declined ring region", ErrHandshake)
		}
		return nil, nil
	}
	return reg, nil
}

// acceptShmRing runs the acceptor's half: read the offer, map and validate
// the region, ack. Declines (withdrawn offer, unmappable region) degrade
// to the socket under TierAuto and fail the handshake under TierShm.
func acceptShmRing(opt Options, c net.Conn, deadline time.Time) (*shmRegion, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return nil, err
	}
	if typ != frameShmOffer {
		return nil, fmt.Errorf("wire: expected shm offer, got frame type %d", typ)
	}
	path, gen, ringBytes, err := decodeShmOffer(body)
	if err != nil {
		return nil, err
	}
	decline := func(why string) (*shmRegion, error) {
		if werr := writeConn(c, deadline, encodeShmAck(false)); werr != nil {
			return nil, werr
		}
		if opt.Tier == TierShm {
			return nil, fmt.Errorf("%w: ring region: %s", ErrHandshake, why)
		}
		return nil, nil
	}
	if path == "" {
		return decline("offer withdrawn by peer")
	}
	if gen != uint64(opt.Epoch) {
		return decline(fmt.Sprintf("generation %d, want %d", gen, opt.Epoch))
	}
	reg, err := openShmRegion(path, gen)
	if err != nil {
		return decline(err.Error())
	}
	if uint64(reg.tx.size) != ringBytes {
		reg.close()
		return decline(fmt.Sprintf("ring size %d, offered %d", reg.tx.size, ringBytes))
	}
	if err := writeConn(c, deadline, encodeShmAck(true)); err != nil {
		reg.close()
		return nil, err
	}
	return reg, nil
}

// readShmAck reads the acceptor's 1-byte ring ack.
func readShmAck(c net.Conn, deadline time.Time) (bool, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return false, err
	}
	if typ != frameShmAck || len(body) != 1 {
		return false, fmt.Errorf("wire: expected shm ack, got frame type %d (%d bytes)", typ, len(body))
	}
	return body[0] == 1, nil
}

// shakeHands runs the dialing side of a pairwise handshake on an
// established connection: send hello, require accept.
func shakeHands(opt Options, c net.Conn, j int, self endpoint, deadline time.Time) error {
	h := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Tier: opt.Tier,
		Fingerprint: opt.Fingerprint, Endpoint: self}
	if err := writeConn(c, deadline, encodeHello(h)); err != nil {
		return fmt.Errorf("wire: rank %d: hello to rank %d: %w", opt.Rank, j, err)
	}
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return fmt.Errorf("wire: rank %d: reply from rank %d: %w", opt.Rank, j, err)
	}
	switch typ {
	case frameAccept:
		return nil
	case frameReject:
		return fmt.Errorf("%w: rank %d: %s", ErrHandshake, j, body)
	}
	return fmt.Errorf("wire: rank %d: unexpected frame %d from rank %d", opt.Rank, typ, j)
}

type accepted struct {
	c   net.Conn
	err error
}

// acceptFrom multiplexes Accept across the given listeners (nils skipped)
// onto one channel. The channel is buffered generously so the acceptor
// goroutines never block after the caller stops reading; each goroutine
// exits on its listener's first error (deadline or close).
func acceptFrom(buffer int, lns ...net.Listener) <-chan accepted {
	ch := make(chan accepted, 2*buffer)
	for _, l := range lns {
		if l == nil {
			continue
		}
		go func(l net.Listener) {
			for {
				c, err := l.Accept()
				ch <- accepted{c, err}
				if err != nil {
					return
				}
			}
		}(l)
	}
	return ch
}

// unixDataListener opens this rank's unix-domain data listener in a private
// temp directory, returning (nil, nil, nil) under TierTCP. A listen failure
// is fatal under the same-host-only tiers (unix, shm — the shm doorbell
// rides the unix socket) and silently degrades to TCP-only under TierAuto
// (the rank simply advertises no unix endpoint). The cleanup removes the
// socket directory; data listeners only live for the bootstrap.
func unixDataListener(opt Options, deadline time.Time) (net.Listener, func(), error) {
	if opt.Tier == TierTCP {
		return nil, nil, nil
	}
	dir, err := os.MkdirTemp("", "bfwire-")
	if err == nil {
		var ln net.Listener
		ln, err = net.Listen("unix", filepath.Join(dir, fmt.Sprintf("r%d.sock", opt.Rank)))
		if err == nil {
			setListenerDeadline(ln, deadline)
			return ln, func() { ln.Close(); os.RemoveAll(dir) }, nil
		}
		os.RemoveAll(dir)
	}
	if opt.Tier.sameHostOnly() {
		return nil, nil, fmt.Errorf("wire: rank %d: tier %v: data listen: %w", opt.Rank, opt.Tier, err)
	}
	return nil, nil, nil
}

// rendezvousNetwork infers the rendezvous transport from the address form:
// a filesystem path (or abstract socket name) is a unix listener, anything
// else is TCP host:port.
func rendezvousNetwork(addr string) string {
	if strings.HasPrefix(addr, "/") || strings.HasPrefix(addr, "@") {
		return "unix"
	}
	return "tcp"
}

func setListenerDeadline(ln net.Listener, deadline time.Time) {
	switch l := ln.(type) {
	case *net.TCPListener:
		l.SetDeadline(deadline)
	case *net.UnixListener:
		l.SetDeadline(deadline)
	}
}

// vetHello validates a peer's handshake announcement: rank in [minRank,
// Ranks), not yet connected, and the shared vetCommon checks. It returns a
// refusal reason, or "" when the peer is sound.
func vetHello(opt Options, h hello, minRank int, conns []net.Conn) string {
	if h.Rank < minRank || h.Rank >= opt.Ranks {
		return fmt.Sprintf("rank %d out of range [%d,%d)", h.Rank, minRank, opt.Ranks)
	}
	if conns[h.Rank] != nil {
		return fmt.Sprintf("rank %d already connected", h.Rank)
	}
	return vetCommon(opt, h)
}

// vetCommon checks the handshake fields every connection must agree on:
// rank count, recovery epoch, transport tier and graph fingerprint.
func vetCommon(opt Options, h hello) string {
	if h.Kind != KindWorker {
		return fmt.Sprintf("%v hello on the data plane: membership changes go through the gate", h.Kind)
	}
	if h.Ranks != opt.Ranks {
		return fmt.Sprintf("rank count mismatch: peer says %d, local says %d", h.Ranks, opt.Ranks)
	}
	if h.Epoch != opt.Epoch {
		return fmt.Sprintf("recovery epoch mismatch: peer says %d, local says %d (stale rejoin)", h.Epoch, opt.Epoch)
	}
	if h.Tier != opt.Tier {
		return fmt.Sprintf("transport tier mismatch: peer says %v, local says %v", h.Tier, opt.Tier)
	}
	if h.Fingerprint != opt.Fingerprint {
		return fmt.Sprintf("graph fingerprint mismatch: peer %s, local %s", h.Fingerprint, opt.Fingerprint)
	}
	return ""
}

// dialRetry dials addr on the given network with exponential backoff until
// the deadline — peers come up in arbitrary order, so refused connections
// (and not-yet-created socket paths) are expected during bootstrap.
func dialRetry(network, addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		c, err := d.Dial(network, addr)
		if err == nil {
			return c, nil
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// hostIDOnce caches the real host identity: the hostname qualified by the
// kernel boot id, so two containers sharing a hostname image (or two hosts
// with the default name) are still told apart. Sockets cross container
// boundaries only when the temp filesystem is shared, which tracks the
// boot id in every supported deployment.
var (
	hostIDOnce   sync.Once
	hostIDCached string
)

func defaultHostID() string {
	hostIDOnce.Do(func() {
		name, _ := os.Hostname()
		boot, _ := os.ReadFile("/proc/sys/kernel/random/boot_id")
		hostIDCached = name + "/" + strings.TrimSpace(string(boot))
	})
	return hostIDCached
}

// readControl reads one whole (small) handshake frame from a raw
// connection, verifying its CRC32C.
func readControl(c net.Conn, deadline time.Time) (byte, []byte, error) {
	c.SetReadDeadline(deadline)
	typ, n, crc, err := readFrame(c)
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("wire: oversized handshake frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return 0, nil, err
	}
	if err := verifyBody(typ, body, crc); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

func readHello(c net.Conn, deadline time.Time) (hello, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return hello{}, err
	}
	if typ != frameHello {
		return hello{}, fmt.Errorf("wire: expected hello, got frame type %d", typ)
	}
	return decodeHello(body)
}

func writeConn(c net.Conn, deadline time.Time, b []byte) error {
	c.SetWriteDeadline(deadline)
	_, err := c.Write(b)
	return err
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
