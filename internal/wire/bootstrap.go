package wire

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// bootstrap establishes the full connection mesh for one rank and returns
// the per-rank connections (nil at the local rank). Rank 0 plays
// rendezvous server: it accepts a registration from every other rank,
// verifies the fingerprint and replies with the endpoint table. The
// registration connections double as rank 0's data connections (co-located
// pairs then upgrade them to the unix tier); the remaining pairs are
// completed by every rank dialing all lower ranks over whichever transport
// the tier selects.
func bootstrap(opt Options) ([]net.Conn, error) {
	conns := make([]net.Conn, opt.Ranks)
	if opt.Ranks == 1 {
		if opt.Listener != nil {
			opt.Listener.Close()
		}
		return conns, nil
	}
	deadline := time.Now().Add(opt.DialTimeout)
	if opt.Rank == 0 {
		return bootstrapRoot(opt, conns, deadline)
	}
	return bootstrapPeer(opt, conns, deadline)
}

func bootstrapRoot(opt Options, conns []net.Conn, deadline time.Time) ([]net.Conn, error) {
	ln := opt.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen(rendezvousNetwork(opt.Addr), opt.Addr)
		if err != nil {
			return nil, fmt.Errorf("wire: rendezvous listen: %w", err)
		}
	}
	defer ln.Close()
	setListenerDeadline(ln, deadline)

	// Rank 0's unix data listener: co-located peers re-dial it after the
	// welcome, upgrading their registration connection off TCP.
	uln, ucleanup, err := unixDataListener(opt, deadline)
	if err != nil {
		return nil, err
	}
	if ucleanup != nil {
		defer ucleanup()
	}

	eps := make([]endpoint, opt.Ranks)
	eps[0] = endpoint{HostID: opt.HostID}
	if uln != nil {
		eps[0].Unix = uln.Addr().String()
	}
	registered := 0
	for registered < opt.Ranks-1 {
		c, err := ln.Accept()
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: waiting for %d more rank(s): %w",
				opt.Ranks-1-registered, err)
		}
		h, err := readHello(c, deadline)
		if err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: %w", err)
		}
		reason := vetHello(opt, h, 1, conns)
		if reason == "" && opt.Tier == TierUnix && h.Endpoint.HostID != opt.HostID {
			reason = fmt.Sprintf("tier unix requires co-location, but rank %d is on a different host", h.Rank)
		}
		if reason != "" {
			writeConn(c, deadline, encodeReject(reason))
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
		}
		conns[h.Rank] = c
		eps[h.Rank] = h.Endpoint
		registered++
	}

	welcome, err := encodeWelcome(eps)
	if err != nil {
		closeAll(conns)
		return nil, err
	}
	for r := 1; r < opt.Ranks; r++ {
		if err := writeConn(conns[r], deadline, welcome); err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: welcome to rank %d: %w", r, err)
		}
	}

	// Upgrade pass: every co-located peer now re-dials over the unix
	// listener. The predicate (tier allows, rank 0 has a unix listener,
	// host identities match) is computed identically on both sides — the
	// tier itself is vetted during the handshake — so the expected set is
	// exact.
	if uln != nil {
		expect := make(map[int]bool)
		for r := 1; r < opt.Ranks; r++ {
			if eps[r].HostID == opt.HostID {
				expect[r] = true
			}
		}
		for len(expect) > 0 {
			c, err := uln.Accept()
			if err != nil {
				closeAll(conns)
				return nil, fmt.Errorf("wire: rendezvous: waiting for %d unix upgrade(s): %w", len(expect), err)
			}
			h, err := readHello(c, deadline)
			if err != nil {
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("wire: rendezvous: upgrade: %w", err)
			}
			reason := vetCommon(opt, h)
			if reason == "" && !expect[h.Rank] {
				reason = fmt.Sprintf("unexpected unix upgrade from rank %d", h.Rank)
			}
			if reason != "" {
				writeConn(c, deadline, encodeReject(reason))
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
			}
			if err := writeConn(c, deadline, controlFrame(frameAccept)); err != nil {
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("wire: rendezvous: upgrade accept to rank %d: %w", h.Rank, err)
			}
			conns[h.Rank].Close() // retire the TCP registration connection
			conns[h.Rank] = c
			delete(expect, h.Rank)
		}
	}
	return conns, nil
}

func bootstrapPeer(opt Options, conns []net.Conn, deadline time.Time) ([]net.Conn, error) {
	// The rank's own data listeners, dialed by every higher rank. The TCP
	// one lives on the same host family as the rendezvous address with an
	// ephemeral port; the unix one (tier permitting) under a private temp
	// directory.
	host, _, err := net.SplitHostPort(opt.Addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("wire: rank %d data listen: %w", opt.Rank, err)
	}
	defer ln.Close()
	setListenerDeadline(ln, deadline)
	uln, ucleanup, err := unixDataListener(opt, deadline)
	if err != nil {
		return nil, err
	}
	if ucleanup != nil {
		defer ucleanup()
	}

	self := endpoint{TCP: ln.Addr().String(), HostID: opt.HostID}
	if uln != nil {
		self.Unix = uln.Addr().String()
	}

	// Register with rank 0 and receive the endpoint table.
	c0, err := dialRetry(rendezvousNetwork(opt.Addr), opt.Addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("wire: rank %d: rendezvous %s: %w", opt.Rank, opt.Addr, err)
	}
	h := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Tier: opt.Tier,
		Fingerprint: opt.Fingerprint, Endpoint: self}
	if err := writeConn(c0, deadline, encodeHello(h)); err != nil {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: register: %w", opt.Rank, err)
	}
	typ, body, err := readControl(c0, deadline)
	if err != nil {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: rendezvous reply: %w", opt.Rank, err)
	}
	if typ == frameReject {
		c0.Close()
		return nil, fmt.Errorf("%w: %s", ErrHandshake, body)
	}
	if typ != frameWelcome {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: unexpected frame %d from rendezvous", opt.Rank, typ)
	}
	eps, err := decodeWelcome(body)
	if err != nil || len(eps) != opt.Ranks {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: bad welcome: %v", opt.Rank, err)
	}
	conns[0] = c0

	// Upgrade the rank-0 link to the unix tier when co-located (the exact
	// mirror of rank 0's expectation — see bootstrapRoot).
	if opt.Tier != TierTCP && eps[0].Unix != "" && eps[0].HostID == opt.HostID {
		uc, err := dialRetry("unix", eps[0].Unix, deadline)
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: unix upgrade to rank 0: %w", opt.Rank, err)
		}
		if err := shakeHands(opt, uc, 0, self, deadline); err != nil {
			uc.Close()
			closeAll(conns)
			return nil, err
		}
		c0.Close()
		conns[0] = uc
	} else if opt.Tier == TierUnix {
		closeAll(conns)
		return nil, fmt.Errorf("%w: rank %d: tier unix requires co-location with rank 0", ErrHandshake, opt.Rank)
	}

	// Dial every lower rank's data listener; higher ranks dial us.
	for j := 1; j < opt.Rank; j++ {
		network, addr, err := pickEndpoint(opt, eps[j], j)
		if err != nil {
			closeAll(conns)
			return nil, err
		}
		c, err := dialRetry(network, addr, deadline)
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: rank %d at %s: %w", opt.Rank, j, addr, err)
		}
		if err := shakeHands(opt, c, j, endpoint{HostID: opt.HostID}, deadline); err != nil {
			c.Close()
			closeAll(conns)
			return nil, err
		}
		conns[j] = c
	}

	// Accept every higher rank, over whichever of the two listeners it
	// chose to dial.
	if need := opt.Ranks - 1 - opt.Rank; need > 0 {
		income := acceptFrom(need+2, ln, uln)
		for ; need > 0; need-- {
			in := <-income
			if in.err != nil {
				closeAll(conns)
				return nil, fmt.Errorf("wire: rank %d: waiting for %d higher rank(s): %w", opt.Rank, need, in.err)
			}
			c := in.c
			h, err := readHello(c, deadline)
			if err != nil {
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("wire: rank %d: %w", opt.Rank, err)
			}
			if reason := vetHello(opt, h, opt.Rank+1, conns); reason != "" {
				writeConn(c, deadline, encodeReject(reason))
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
			}
			if err := writeConn(c, deadline, controlFrame(frameAccept)); err != nil {
				c.Close()
				closeAll(conns)
				return nil, fmt.Errorf("wire: rank %d: accept to rank %d: %w", opt.Rank, h.Rank, err)
			}
			conns[h.Rank] = c
		}
	}
	return conns, nil
}

// pickEndpoint selects the transport for a pairwise dial to rank j: unix
// when the tier allows it and both ranks share a host (and j opened a unix
// listener), TCP otherwise. TierUnix turns a TCP fallback into an error.
func pickEndpoint(opt Options, ep endpoint, j int) (network, addr string, err error) {
	if opt.Tier != TierTCP && ep.Unix != "" && ep.HostID == opt.HostID {
		return "unix", ep.Unix, nil
	}
	if opt.Tier == TierUnix {
		return "", "", fmt.Errorf("%w: rank %d: tier unix requires co-location with rank %d", ErrHandshake, opt.Rank, j)
	}
	return "tcp", ep.TCP, nil
}

// shakeHands runs the dialing side of a pairwise handshake on an
// established connection: send hello, require accept.
func shakeHands(opt Options, c net.Conn, j int, self endpoint, deadline time.Time) error {
	h := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Tier: opt.Tier,
		Fingerprint: opt.Fingerprint, Endpoint: self}
	if err := writeConn(c, deadline, encodeHello(h)); err != nil {
		return fmt.Errorf("wire: rank %d: hello to rank %d: %w", opt.Rank, j, err)
	}
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return fmt.Errorf("wire: rank %d: reply from rank %d: %w", opt.Rank, j, err)
	}
	switch typ {
	case frameAccept:
		return nil
	case frameReject:
		return fmt.Errorf("%w: rank %d: %s", ErrHandshake, j, body)
	}
	return fmt.Errorf("wire: rank %d: unexpected frame %d from rank %d", opt.Rank, typ, j)
}

type accepted struct {
	c   net.Conn
	err error
}

// acceptFrom multiplexes Accept across the given listeners (nils skipped)
// onto one channel. The channel is buffered generously so the acceptor
// goroutines never block after the caller stops reading; each goroutine
// exits on its listener's first error (deadline or close).
func acceptFrom(buffer int, lns ...net.Listener) <-chan accepted {
	ch := make(chan accepted, 2*buffer)
	for _, l := range lns {
		if l == nil {
			continue
		}
		go func(l net.Listener) {
			for {
				c, err := l.Accept()
				ch <- accepted{c, err}
				if err != nil {
					return
				}
			}
		}(l)
	}
	return ch
}

// unixDataListener opens this rank's unix-domain data listener in a private
// temp directory, returning (nil, nil, nil) under TierTCP. A listen failure
// is fatal under TierUnix and silently degrades to TCP-only under TierAuto
// (the rank simply advertises no unix endpoint). The cleanup removes the
// socket directory; data listeners only live for the bootstrap.
func unixDataListener(opt Options, deadline time.Time) (net.Listener, func(), error) {
	if opt.Tier == TierTCP {
		return nil, nil, nil
	}
	dir, err := os.MkdirTemp("", "bfwire-")
	if err == nil {
		var ln net.Listener
		ln, err = net.Listen("unix", filepath.Join(dir, fmt.Sprintf("r%d.sock", opt.Rank)))
		if err == nil {
			setListenerDeadline(ln, deadline)
			return ln, func() { ln.Close(); os.RemoveAll(dir) }, nil
		}
		os.RemoveAll(dir)
	}
	if opt.Tier == TierUnix {
		return nil, nil, fmt.Errorf("wire: rank %d: tier unix: data listen: %w", opt.Rank, err)
	}
	return nil, nil, nil
}

// rendezvousNetwork infers the rendezvous transport from the address form:
// a filesystem path (or abstract socket name) is a unix listener, anything
// else is TCP host:port.
func rendezvousNetwork(addr string) string {
	if strings.HasPrefix(addr, "/") || strings.HasPrefix(addr, "@") {
		return "unix"
	}
	return "tcp"
}

func setListenerDeadline(ln net.Listener, deadline time.Time) {
	switch l := ln.(type) {
	case *net.TCPListener:
		l.SetDeadline(deadline)
	case *net.UnixListener:
		l.SetDeadline(deadline)
	}
}

// vetHello validates a peer's handshake announcement: rank in [minRank,
// Ranks), not yet connected, and the shared vetCommon checks. It returns a
// refusal reason, or "" when the peer is sound.
func vetHello(opt Options, h hello, minRank int, conns []net.Conn) string {
	if h.Rank < minRank || h.Rank >= opt.Ranks {
		return fmt.Sprintf("rank %d out of range [%d,%d)", h.Rank, minRank, opt.Ranks)
	}
	if conns[h.Rank] != nil {
		return fmt.Sprintf("rank %d already connected", h.Rank)
	}
	return vetCommon(opt, h)
}

// vetCommon checks the handshake fields every connection must agree on:
// rank count, recovery epoch, transport tier and graph fingerprint.
func vetCommon(opt Options, h hello) string {
	if h.Ranks != opt.Ranks {
		return fmt.Sprintf("rank count mismatch: peer says %d, local says %d", h.Ranks, opt.Ranks)
	}
	if h.Epoch != opt.Epoch {
		return fmt.Sprintf("recovery epoch mismatch: peer says %d, local says %d (stale rejoin)", h.Epoch, opt.Epoch)
	}
	if h.Tier != opt.Tier {
		return fmt.Sprintf("transport tier mismatch: peer says %v, local says %v", h.Tier, opt.Tier)
	}
	if h.Fingerprint != opt.Fingerprint {
		return fmt.Sprintf("graph fingerprint mismatch: peer %s, local %s", h.Fingerprint, opt.Fingerprint)
	}
	return ""
}

// dialRetry dials addr on the given network with exponential backoff until
// the deadline — peers come up in arbitrary order, so refused connections
// (and not-yet-created socket paths) are expected during bootstrap.
func dialRetry(network, addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		c, err := d.Dial(network, addr)
		if err == nil {
			return c, nil
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// hostIDOnce caches the real host identity: the hostname qualified by the
// kernel boot id, so two containers sharing a hostname image (or two hosts
// with the default name) are still told apart. Sockets cross container
// boundaries only when the temp filesystem is shared, which tracks the
// boot id in every supported deployment.
var (
	hostIDOnce   sync.Once
	hostIDCached string
)

func defaultHostID() string {
	hostIDOnce.Do(func() {
		name, _ := os.Hostname()
		boot, _ := os.ReadFile("/proc/sys/kernel/random/boot_id")
		hostIDCached = name + "/" + strings.TrimSpace(string(boot))
	})
	return hostIDCached
}

// readControl reads one whole (small) handshake frame from a raw
// connection, verifying its CRC32C.
func readControl(c net.Conn, deadline time.Time) (byte, []byte, error) {
	c.SetReadDeadline(deadline)
	typ, n, crc, err := readFrame(c)
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("wire: oversized handshake frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return 0, nil, err
	}
	if err := verifyBody(typ, body, crc); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

func readHello(c net.Conn, deadline time.Time) (hello, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return hello{}, err
	}
	if typ != frameHello {
		return hello{}, fmt.Errorf("wire: expected hello, got frame type %d", typ)
	}
	return decodeHello(body)
}

func writeConn(c net.Conn, deadline time.Time, b []byte) error {
	c.SetWriteDeadline(deadline)
	_, err := c.Write(b)
	return err
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
