package wire

import (
	"fmt"
	"io"
	"net"
	"time"
)

// bootstrap establishes the full connection mesh for one rank and returns
// the per-rank connections (nil at the local rank). Rank 0 plays
// rendezvous server: it accepts a registration from every other rank,
// verifies the fingerprint and replies with the address table. The
// registration connections double as rank 0's data connections; the
// remaining pairs are completed by every rank dialing all lower ranks.
func bootstrap(opt Options) ([]net.Conn, error) {
	conns := make([]net.Conn, opt.Ranks)
	if opt.Ranks == 1 {
		if opt.Listener != nil {
			opt.Listener.Close()
		}
		return conns, nil
	}
	deadline := time.Now().Add(opt.DialTimeout)
	if opt.Rank == 0 {
		return bootstrapRoot(opt, conns, deadline)
	}
	return bootstrapPeer(opt, conns, deadline)
}

func bootstrapRoot(opt Options, conns []net.Conn, deadline time.Time) ([]net.Conn, error) {
	ln := opt.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", opt.Addr)
		if err != nil {
			return nil, fmt.Errorf("wire: rendezvous listen: %w", err)
		}
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	addrs := make([]string, opt.Ranks)
	registered := 0
	for registered < opt.Ranks-1 {
		c, err := ln.Accept()
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: waiting for %d more rank(s): %w",
				opt.Ranks-1-registered, err)
		}
		h, err := readHello(c, deadline)
		if err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: %w", err)
		}
		if reason := vetHello(opt, h, 1, conns); reason != "" {
			writeConn(c, deadline, encodeReject(reason))
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
		}
		conns[h.Rank] = c
		addrs[h.Rank] = h.Addr
		registered++
	}

	welcome, err := encodeWelcome(addrs)
	if err != nil {
		closeAll(conns)
		return nil, err
	}
	for r := 1; r < opt.Ranks; r++ {
		if err := writeConn(conns[r], deadline, welcome); err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rendezvous: welcome to rank %d: %w", r, err)
		}
	}
	return conns, nil
}

func bootstrapPeer(opt Options, conns []net.Conn, deadline time.Time) ([]net.Conn, error) {
	// The rank's own data listener, dialed by every higher rank. It lives on
	// the same host family as the rendezvous address with an ephemeral port.
	host, _, err := net.SplitHostPort(opt.Addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("wire: rank %d data listen: %w", opt.Rank, err)
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	// Register with rank 0 and receive the address table.
	c0, err := dialRetry(opt.Addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("wire: rank %d: rendezvous %s: %w", opt.Rank, opt.Addr, err)
	}
	h := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Fingerprint: opt.Fingerprint, Addr: ln.Addr().String()}
	if err := writeConn(c0, deadline, encodeHello(h)); err != nil {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: register: %w", opt.Rank, err)
	}
	typ, body, err := readControl(c0, deadline)
	if err != nil {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: rendezvous reply: %w", opt.Rank, err)
	}
	if typ == frameReject {
		c0.Close()
		return nil, fmt.Errorf("%w: %s", ErrHandshake, body)
	}
	if typ != frameWelcome {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: unexpected frame %d from rendezvous", opt.Rank, typ)
	}
	addrs, err := decodeWelcome(body)
	if err != nil || len(addrs) != opt.Ranks {
		c0.Close()
		return nil, fmt.Errorf("wire: rank %d: bad welcome: %v", opt.Rank, err)
	}
	conns[0] = c0

	// Dial every lower rank's data listener; higher ranks dial us.
	for j := 1; j < opt.Rank; j++ {
		c, err := dialRetry(addrs[j], deadline)
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: rank %d at %s: %w", opt.Rank, j, addrs[j], err)
		}
		hj := hello{Rank: opt.Rank, Ranks: opt.Ranks, Epoch: opt.Epoch, Fingerprint: opt.Fingerprint}
		if err := writeConn(c, deadline, encodeHello(hj)); err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: hello to rank %d: %w", opt.Rank, j, err)
		}
		typ, body, err := readControl(c, deadline)
		if err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: reply from rank %d: %w", opt.Rank, j, err)
		}
		if typ == frameReject {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, j, body)
		}
		if typ != frameAccept {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: unexpected frame %d from rank %d", opt.Rank, typ, j)
		}
		conns[j] = c
	}

	// Accept every higher rank.
	for need := opt.Ranks - 1 - opt.Rank; need > 0; {
		c, err := ln.Accept()
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: waiting for %d higher rank(s): %w", opt.Rank, need, err)
		}
		h, err := readHello(c, deadline)
		if err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: %w", opt.Rank, err)
		}
		if reason := vetHello(opt, h, opt.Rank+1, conns); reason != "" {
			writeConn(c, deadline, encodeReject(reason))
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("%w: rank %d: %s", ErrHandshake, h.Rank, reason)
		}
		if err := writeConn(c, deadline, controlFrame(frameAccept)); err != nil {
			c.Close()
			closeAll(conns)
			return nil, fmt.Errorf("wire: rank %d: accept to rank %d: %w", opt.Rank, h.Rank, err)
		}
		conns[h.Rank] = c
		need--
	}
	return conns, nil
}

// vetHello validates a peer's handshake announcement: rank in [minRank,
// Ranks), not yet connected, agreeing rank count, matching recovery epoch
// and matching graph fingerprint. It returns a refusal reason, or "" when
// the peer is sound.
func vetHello(opt Options, h hello, minRank int, conns []net.Conn) string {
	if h.Rank < minRank || h.Rank >= opt.Ranks {
		return fmt.Sprintf("rank %d out of range [%d,%d)", h.Rank, minRank, opt.Ranks)
	}
	if conns[h.Rank] != nil {
		return fmt.Sprintf("rank %d already connected", h.Rank)
	}
	if h.Ranks != opt.Ranks {
		return fmt.Sprintf("rank count mismatch: peer says %d, local says %d", h.Ranks, opt.Ranks)
	}
	if h.Epoch != opt.Epoch {
		return fmt.Sprintf("recovery epoch mismatch: peer says %d, local says %d (stale rejoin)", h.Epoch, opt.Epoch)
	}
	if h.Fingerprint != opt.Fingerprint {
		return fmt.Sprintf("graph fingerprint mismatch: peer %s, local %s", h.Fingerprint, opt.Fingerprint)
	}
	return ""
}

// dialRetry dials addr with exponential backoff until the deadline —
// peers come up in arbitrary order, so refused connections are expected
// during bootstrap.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		c, err := d.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// readControl reads one whole (small) handshake frame from a raw
// connection, verifying its CRC32C.
func readControl(c net.Conn, deadline time.Time) (byte, []byte, error) {
	c.SetReadDeadline(deadline)
	typ, n, crc, err := readFrame(c)
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("wire: oversized handshake frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return 0, nil, err
	}
	if err := verifyBody(typ, body, crc); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

func readHello(c net.Conn, deadline time.Time) (hello, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return hello{}, err
	}
	if typ != frameHello {
		return hello{}, fmt.Errorf("wire: expected hello, got frame type %d", typ)
	}
	return decodeHello(body)
}

func writeConn(c net.Conn, deadline time.Time, b []byte) error {
	c.SetWriteDeadline(deadline)
	_, err := c.Write(b)
	return err
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
