package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Membership gate: rank 0's standing control listener for elastic
// membership. The data-plane rendezvous of an epoch is ephemeral — it
// exists only while that epoch bootstraps, and it rejects hellos whose
// epoch or rank count disagree. The gate is the long-lived complement: a
// process that wants to JOIN the computation dials the gate with a join
// hello (same frame format, Kind=KindJoin), is admitted with a member
// identity, and then follows the coordinator's per-epoch tickets; a drain
// request is a short-lived dial with Kind=KindDrain naming the member to
// retire. The gate itself never moves data — it moves membership events to
// the coordinator and tickets back to the members.
//
// Protocol, worker side (Session):
//
//	dial gate → hello{Kind: KindJoin}       → ticket{ActionAdmit, Member}
//	loop:      ← ticket{ActionRun, epoch…}    connect data plane, run,
//	           → status{epoch, ok, detail}
//	           ← ticket{ActionDrain}          flush, stop taking work,
//	           → status{ok}
//	           ← ticket{ActionExit}           close and terminate
//
// A fence is not a frame: the coordinator tears down the current epoch's
// data plane (after Fabric.Fence suspends liveness timers and journals are
// flushed) and every member observes the collapse, reports status, and
// waits on the gate for the next epoch's ticket.

// ErrGateClosed is returned by gate operations after Close.
var ErrGateClosed = errors.New("wire: membership gate closed")

// ErrMemberGone marks a gate session whose connection dropped — the member
// process died or walked away; the coordinator should treat it as dead.
var ErrMemberGone = errors.New("wire: gate member gone")

// Event is one membership request observed by the gate.
type Event struct {
	Kind   HelloKind // KindJoin or KindDrain
	Member int       // assigned identity (join) or target member (drain)
}

// Gate is the coordinator's side of the membership protocol.
type Gate struct {
	ln     net.Listener
	fp     core.Fingerprint
	events chan Event

	mu     sync.Mutex
	next   int
	sess   map[int]*gateSession
	closed bool
	wg     sync.WaitGroup
}

type gateSession struct {
	c      net.Conn
	wmu    sync.Mutex
	status chan Status
	dead   chan struct{}
	once   sync.Once
}

func (gs *gateSession) fail() { gs.once.Do(func() { close(gs.dead); gs.c.Close() }) }

// NewGate opens the membership gate on addr (host:port, port 0 for
// ephemeral). firstMember is the identity assigned to the first joiner;
// the coordinator's own ranks occupy [0, firstMember). fp is the graph
// fingerprint every join must present.
func NewGate(addr string, firstMember int, fp core.Fingerprint) (*Gate, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: gate listen: %w", err)
	}
	g := &Gate{
		ln:     ln,
		fp:     fp,
		events: make(chan Event, 64),
		next:   firstMember,
		sess:   make(map[int]*gateSession),
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the gate's listen address.
func (g *Gate) Addr() string { return g.ln.Addr().String() }

// Events is the stream of membership requests. The channel is buffered;
// the coordinator must drain it (a full buffer stalls admissions, never
// drops them).
func (g *Gate) Events() <-chan Event { return g.events }

func (g *Gate) acceptLoop() {
	defer g.wg.Done()
	for {
		c, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.wg.Add(1)
		go g.admit(c)
	}
}

// admit performs the gate handshake on one fresh connection.
func (g *Gate) admit(c net.Conn) {
	defer g.wg.Done()
	deadline := time.Now().Add(10 * time.Second)
	h, err := readHello(c, deadline)
	if err != nil {
		c.Close()
		return
	}
	if h.Fingerprint != g.fp {
		writeConn(c, deadline, encodeReject(fmt.Sprintf("graph fingerprint mismatch: peer %s, gate %s", h.Fingerprint, g.fp)))
		c.Close()
		return
	}
	switch h.Kind {
	case KindJoin:
		g.admitJoin(c, deadline)
	case KindDrain:
		// h.Rank names the member to retire. Ack, emit, close: drain dials
		// are one-shot control requests, not sessions.
		if writeConn(c, deadline, encodeTicket(Ticket{Action: ActionAdmit, Member: h.Rank})) == nil {
			g.emit(Event{Kind: KindDrain, Member: h.Rank})
		}
		c.Close()
	default:
		writeConn(c, deadline, encodeReject("worker hello on the membership gate: dial the epoch rendezvous"))
		c.Close()
	}
}

func (g *Gate) admitJoin(c net.Conn, deadline time.Time) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		c.Close()
		return
	}
	member := g.next
	g.next++
	gs := &gateSession{c: c, status: make(chan Status, 16), dead: make(chan struct{})}
	g.sess[member] = gs
	g.mu.Unlock()

	if err := writeConn(c, deadline, encodeTicket(Ticket{Action: ActionAdmit, Member: member})); err != nil {
		g.drop(member)
		return
	}
	g.emit(Event{Kind: KindJoin, Member: member})
	g.wg.Add(1)
	go g.readStatuses(member, gs)
}

// emit delivers a membership event. The send blocks when the buffer is
// full — a dropped event would strand the member forever, so a coordinator
// that stops draining stalls admissions instead.
func (g *Gate) emit(e Event) {
	g.events <- e
}

// readStatuses is the per-session reader: status frames flow to the
// coordinator, anything else (or a broken conn) kills the session.
func (g *Gate) readStatuses(member int, gs *gateSession) {
	defer g.wg.Done()
	for {
		typ, body, err := readControl(gs.c, time.Time{})
		if err != nil {
			g.drop(member)
			return
		}
		if typ != frameStatus {
			g.drop(member)
			return
		}
		st, err := decodeStatus(body)
		if err != nil {
			g.drop(member)
			return
		}
		select {
		case gs.status <- st:
		case <-gs.dead:
			return
		}
	}
}

func (g *Gate) drop(member int) {
	g.mu.Lock()
	gs := g.sess[member]
	delete(g.sess, member)
	g.mu.Unlock()
	if gs != nil {
		gs.fail()
	}
}

func (g *Gate) session(member int) (*gateSession, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrGateClosed
	}
	gs, ok := g.sess[member]
	if !ok {
		return nil, fmt.Errorf("%w: member %d", ErrMemberGone, member)
	}
	return gs, nil
}

// SendTicket delivers a per-epoch instruction to a joined member.
func (g *Gate) SendTicket(member int, t Ticket) error {
	gs, err := g.session(member)
	if err != nil {
		return err
	}
	gs.wmu.Lock()
	defer gs.wmu.Unlock()
	if err := writeConn(gs.c, time.Now().Add(10*time.Second), encodeTicket(t)); err != nil {
		g.drop(member)
		return fmt.Errorf("%w: member %d: %v", ErrMemberGone, member, err)
	}
	return nil
}

// AwaitStatus blocks for the member's next status report.
func (g *Gate) AwaitStatus(member int, timeout time.Duration) (Status, error) {
	gs, err := g.session(member)
	if err != nil {
		return Status{}, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case st := <-gs.status:
		return st, nil
	case <-gs.dead:
		return Status{}, fmt.Errorf("%w: member %d", ErrMemberGone, member)
	case <-t.C:
		return Status{}, fmt.Errorf("wire: gate: member %d status timeout after %v", member, timeout)
	}
}

// Alive reports whether the member's gate session is still connected.
func (g *Gate) Alive(member int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.sess[member]
	return ok
}

// Close shuts the gate down: the listener stops, every session connection
// is closed (members see ErrMemberGone-style EOFs) and the accept/reader
// goroutines drain.
func (g *Gate) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	sessions := make([]*gateSession, 0, len(g.sess))
	for _, gs := range g.sess {
		sessions = append(sessions, gs)
	}
	g.sess = map[int]*gateSession{}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, gs := range sessions {
		gs.fail()
	}
	g.wg.Wait()
	return err
}

// Session is the member's side of the gate protocol.
type Session struct {
	c      net.Conn
	member int
}

// JoinGate dials the membership gate with a join hello and blocks for
// admission. The returned session carries the assigned member identity.
func JoinGate(addr string, fp core.Fingerprint, timeout time.Duration) (*Session, error) {
	deadline := time.Now().Add(timeout)
	c, err := dialRetry("tcp", addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("wire: join gate: %w", err)
	}
	h := hello{Kind: KindJoin, Fingerprint: fp}
	if err := writeConn(c, deadline, encodeHello(h)); err != nil {
		c.Close()
		return nil, fmt.Errorf("wire: join gate: hello: %w", err)
	}
	t, err := awaitTicket(c, deadline)
	if err != nil {
		c.Close()
		return nil, err
	}
	if t.Action != ActionAdmit {
		c.Close()
		return nil, fmt.Errorf("wire: join gate: expected admission, got action %d", t.Action)
	}
	return &Session{c: c, member: t.Member}, nil
}

// Member returns the identity the gate assigned to this session.
func (s *Session) Member() int { return s.member }

// NextTicket blocks for the coordinator's next instruction. A zero timeout
// waits indefinitely.
func (s *Session) NextTicket(timeout time.Duration) (Ticket, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return awaitTicket(s.c, deadline)
}

// Report sends a status frame for the member's current epoch.
func (s *Session) Report(st Status) error {
	st.Member = s.member
	return writeConn(s.c, time.Now().Add(10*time.Second), encodeStatus(st))
}

// Close tears the session down.
func (s *Session) Close() error { return s.c.Close() }

func awaitTicket(c net.Conn, deadline time.Time) (Ticket, error) {
	typ, body, err := readControl(c, deadline)
	if err != nil {
		return Ticket{}, fmt.Errorf("wire: gate ticket: %w", err)
	}
	switch typ {
	case frameTicket:
		return decodeTicket(body)
	case frameReject:
		return Ticket{}, fmt.Errorf("%w: gate refused: %s", ErrHandshake, string(body))
	default:
		return Ticket{}, fmt.Errorf("wire: expected ticket, got frame type %d", typ)
	}
}

// RequestDrain dials the gate and asks for member to be gracefully
// retired. It returns once the gate has acknowledged the request; the
// hand-off itself happens at the coordinator's next epoch boundary.
func RequestDrain(addr string, member int, fp core.Fingerprint, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	c, err := dialRetry("tcp", addr, deadline)
	if err != nil {
		return fmt.Errorf("wire: drain request: %w", err)
	}
	defer c.Close()
	h := hello{Kind: KindDrain, Rank: member, Fingerprint: fp}
	if err := writeConn(c, deadline, encodeHello(h)); err != nil {
		return fmt.Errorf("wire: drain request: hello: %w", err)
	}
	t, err := awaitTicket(c, deadline)
	if err != nil {
		return err
	}
	if t.Action != ActionAdmit || t.Member != member {
		return fmt.Errorf("wire: drain request: unexpected ack (action %d member %d)", t.Action, t.Member)
	}
	return nil
}
