//go:build !unix

package wire

import (
	"errors"
	"os"
)

// Platforms without a usable mmap never negotiate shm rings: TierAuto
// degrades to the socket tiers, strict TierShm fails the handshake.
const shmSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("wire: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }
