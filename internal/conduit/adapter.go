package conduit

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/data"
)

// Field paths follow a Blueprint-like convention so any producer and
// consumer agree on the layout:
//
//	<base>/dims/x, <base>/dims/y, <base>/dims/z  (int64)
//	<base>/values                                (float32[])

// SetField publishes a scalar field under the base path.
func SetField(n *Node, base string, f *data.Field) error {
	if err := n.SetInt64(base+"/dims/x", int64(f.NX)); err != nil {
		return err
	}
	if err := n.SetInt64(base+"/dims/y", int64(f.NY)); err != nil {
		return err
	}
	if err := n.SetInt64(base+"/dims/z", int64(f.NZ)); err != nil {
		return err
	}
	return n.SetFloat32Array(base+"/values", f.Values)
}

// GetField reads a scalar field published under the base path.
func GetField(n *Node, base string) (*data.Field, error) {
	nx, err := n.Int64(base + "/dims/x")
	if err != nil {
		return nil, err
	}
	ny, err := n.Int64(base + "/dims/y")
	if err != nil {
		return nil, err
	}
	nz, err := n.Int64(base + "/dims/z")
	if err != nil {
		return nil, err
	}
	values, err := n.Float32Array(base + "/values")
	if err != nil {
		return nil, err
	}
	if int64(len(values)) != nx*ny*nz {
		return nil, fmt.Errorf("conduit: %q has %d values for %dx%dx%d dims", base, len(values), nx, ny, nz)
	}
	return &data.Field{NX: int(nx), NY: int(ny), NZ: int(nz), Values: values}, nil
}
