// Package conduit provides a hierarchical, self-describing data model in
// the spirit of LLNL's Conduit, which the paper names as the path to
// "transparently access simulation data and further uncouple the
// implementation of an algorithm from the specific application that uses
// it" (§II). Simulations publish their state as a tree of named, typed
// values; analysis callbacks read well-known paths without knowing the
// producing application's native layout.
//
// Nodes serialize deterministically and implement core.Serializable, so
// they travel through any runtime controller as payloads.
package conduit

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates leaf value types.
type Kind uint8

// Supported leaf kinds.
const (
	KindNone Kind = iota
	KindInt64
	KindFloat64
	KindString
	KindBytes
	KindInt64Array
	KindFloat32Array
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindInt64Array:
		return "int64[]"
	case KindFloat32Array:
		return "float32[]"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is one element of the hierarchy: either an interior node with named
// children or a typed leaf. The zero value is an empty interior node.
type Node struct {
	kind Kind

	i64  int64
	f64  float64
	str  string
	raw  []byte
	i64s []int64
	f32s []float32

	children map[string]*Node
}

// NewNode returns an empty interior node.
func NewNode() *Node { return &Node{} }

// Kind returns the node's leaf kind (KindNone for interior/empty nodes).
func (n *Node) Kind() Kind { return n.kind }

// IsLeaf reports whether the node holds a value.
func (n *Node) IsLeaf() bool { return n.kind != KindNone }

// child walks (and optionally creates) the path below n. Paths use '/'
// separators, e.g. "fields/temperature/values".
func (n *Node) child(path string, create bool) (*Node, error) {
	if path == "" {
		return n, nil
	}
	cur := n
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			return nil, fmt.Errorf("conduit: empty path component in %q", path)
		}
		if cur.IsLeaf() {
			return nil, fmt.Errorf("conduit: %q is a leaf; cannot descend to %q", part, path)
		}
		next, ok := cur.children[part]
		if !ok {
			if !create {
				return nil, fmt.Errorf("conduit: path %q not found", path)
			}
			if cur.children == nil {
				cur.children = make(map[string]*Node)
			}
			next = &Node{}
			cur.children[part] = next
		}
		cur = next
	}
	return cur, nil
}

// Fetch returns the node at the path, creating interior nodes as needed.
func (n *Node) Fetch(path string) (*Node, error) { return n.child(path, true) }

// Get returns the node at the path, or an error if it does not exist.
func (n *Node) Get(path string) (*Node, error) { return n.child(path, false) }

// Has reports whether the path exists.
func (n *Node) Has(path string) bool {
	_, err := n.child(path, false)
	return err == nil
}

// ChildNames returns the names of the node's direct children, sorted.
func (n *Node) ChildNames() []string {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Paths returns every leaf path in the tree, sorted.
func (n *Node) Paths() []string {
	var out []string
	var walk func(prefix string, nd *Node)
	walk = func(prefix string, nd *Node) {
		if nd.IsLeaf() {
			out = append(out, prefix)
			return
		}
		for _, name := range nd.ChildNames() {
			p := name
			if prefix != "" {
				p = prefix + "/" + name
			}
			walk(p, nd.children[name])
		}
	}
	walk("", n)
	sort.Strings(out)
	return out
}

func (n *Node) setLeaf(path string, fill func(*Node)) error {
	nd, err := n.Fetch(path)
	if err != nil {
		return err
	}
	if len(nd.children) > 0 {
		return fmt.Errorf("conduit: %q is an interior node; cannot assign a value", path)
	}
	*nd = Node{}
	fill(nd)
	return nil
}

// SetInt64 stores an integer at the path.
func (n *Node) SetInt64(path string, v int64) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.i64 = KindInt64, v })
}

// SetFloat64 stores a float at the path.
func (n *Node) SetFloat64(path string, v float64) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.f64 = KindFloat64, v })
}

// SetString stores a string at the path.
func (n *Node) SetString(path string, v string) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.str = KindString, v })
}

// SetBytes stores a raw byte buffer at the path (zero-copy: the node
// aliases the slice).
func (n *Node) SetBytes(path string, v []byte) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.raw = KindBytes, v })
}

// SetInt64Array stores an integer array at the path (aliasing the slice).
func (n *Node) SetInt64Array(path string, v []int64) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.i64s = KindInt64Array, v })
}

// SetFloat32Array stores a float32 array at the path (aliasing the slice,
// the natural type for simulation fields).
func (n *Node) SetFloat32Array(path string, v []float32) error {
	return n.setLeaf(path, func(nd *Node) { nd.kind, nd.f32s = KindFloat32Array, v })
}

func (n *Node) leaf(path string, want Kind) (*Node, error) {
	nd, err := n.Get(path)
	if err != nil {
		return nil, err
	}
	if nd.kind != want {
		return nil, fmt.Errorf("conduit: %q holds %s, want %s", path, nd.kind, want)
	}
	return nd, nil
}

// Int64 reads an integer leaf.
func (n *Node) Int64(path string) (int64, error) {
	nd, err := n.leaf(path, KindInt64)
	if err != nil {
		return 0, err
	}
	return nd.i64, nil
}

// Float64 reads a float leaf.
func (n *Node) Float64(path string) (float64, error) {
	nd, err := n.leaf(path, KindFloat64)
	if err != nil {
		return 0, err
	}
	return nd.f64, nil
}

// String reads a string leaf.
func (n *Node) String(path string) (string, error) {
	nd, err := n.leaf(path, KindString)
	if err != nil {
		return "", err
	}
	return nd.str, nil
}

// Bytes reads a raw-buffer leaf.
func (n *Node) Bytes(path string) ([]byte, error) {
	nd, err := n.leaf(path, KindBytes)
	if err != nil {
		return nil, err
	}
	return nd.raw, nil
}

// Int64Array reads an integer-array leaf.
func (n *Node) Int64Array(path string) ([]int64, error) {
	nd, err := n.leaf(path, KindInt64Array)
	if err != nil {
		return nil, err
	}
	return nd.i64s, nil
}

// Float32Array reads a float32-array leaf.
func (n *Node) Float32Array(path string) ([]float32, error) {
	nd, err := n.leaf(path, KindFloat32Array)
	if err != nil {
		return nil, err
	}
	return nd.f32s, nil
}

// Serialize encodes the tree deterministically: leaf count, then per leaf
// (sorted by path) the path, kind tag and value.
func (n *Node) Serialize() []byte {
	paths := n.Paths()
	var buf []byte
	buf = appendU64(buf, uint64(len(paths)))
	for _, p := range paths {
		nd, _ := n.Get(p)
		buf = appendU64(buf, uint64(len(p)))
		buf = append(buf, p...)
		buf = append(buf, byte(nd.kind))
		switch nd.kind {
		case KindInt64:
			buf = appendU64(buf, uint64(nd.i64))
		case KindFloat64:
			buf = appendU64(buf, math.Float64bits(nd.f64))
		case KindString:
			buf = appendU64(buf, uint64(len(nd.str)))
			buf = append(buf, nd.str...)
		case KindBytes:
			buf = appendU64(buf, uint64(len(nd.raw)))
			buf = append(buf, nd.raw...)
		case KindInt64Array:
			buf = appendU64(buf, uint64(len(nd.i64s)))
			for _, v := range nd.i64s {
				buf = appendU64(buf, uint64(v))
			}
		case KindFloat32Array:
			buf = appendU64(buf, uint64(len(nd.f32s)))
			for _, v := range nd.f32s {
				buf = appendU32(buf, math.Float32bits(v))
			}
		}
	}
	return buf
}

// Deserialize decodes a tree encoded by Serialize.
func Deserialize(b []byte) (*Node, error) {
	r := &reader{buf: b}
	count, err := r.u64()
	if err != nil {
		return nil, err
	}
	root := NewNode()
	for i := uint64(0); i < count; i++ {
		plen, err := r.u64()
		if err != nil {
			return nil, err
		}
		pb, err := r.bytes(int(plen))
		if err != nil {
			return nil, err
		}
		path := string(pb)
		kb, err := r.bytes(1)
		if err != nil {
			return nil, err
		}
		kind := Kind(kb[0])
		switch kind {
		case KindInt64:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			if err := root.SetInt64(path, int64(v)); err != nil {
				return nil, err
			}
		case KindFloat64:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			if err := root.SetFloat64(path, math.Float64frombits(v)); err != nil {
				return nil, err
			}
		case KindString:
			l, err := r.u64()
			if err != nil {
				return nil, err
			}
			s, err := r.bytes(int(l))
			if err != nil {
				return nil, err
			}
			if err := root.SetString(path, string(s)); err != nil {
				return nil, err
			}
		case KindBytes:
			l, err := r.u64()
			if err != nil {
				return nil, err
			}
			s, err := r.bytes(int(l))
			if err != nil {
				return nil, err
			}
			if err := root.SetBytes(path, append([]byte(nil), s...)); err != nil {
				return nil, err
			}
		case KindInt64Array:
			l, err := r.u64()
			if err != nil {
				return nil, err
			}
			vs := make([]int64, l)
			for j := range vs {
				v, err := r.u64()
				if err != nil {
					return nil, err
				}
				vs[j] = int64(v)
			}
			if err := root.SetInt64Array(path, vs); err != nil {
				return nil, err
			}
		case KindFloat32Array:
			l, err := r.u64()
			if err != nil {
				return nil, err
			}
			vs := make([]float32, l)
			for j := range vs {
				v, err := r.u32()
				if err != nil {
					return nil, err
				}
				vs[j] = math.Float32frombits(v)
			}
			if err := root.SetFloat32Array(path, vs); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("conduit: unknown kind %d at %q", kind, path)
		}
	}
	if len(r.buf[r.off:]) != 0 {
		return nil, fmt.Errorf("conduit: %d trailing bytes", len(r.buf)-r.off)
	}
	return root, nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("conduit: truncated buffer (need %d bytes at %d of %d)", n, r.off, len(r.buf))
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func appendU64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
