package conduit

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func TestSetGetScalars(t *testing.T) {
	n := NewNode()
	if err := n.SetInt64("state/cycle", 42); err != nil {
		t.Fatal(err)
	}
	if err := n.SetFloat64("state/time", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetString("state/code", "karfs"); err != nil {
		t.Fatal(err)
	}
	if v, err := n.Int64("state/cycle"); err != nil || v != 42 {
		t.Errorf("cycle = %d, %v", v, err)
	}
	if v, err := n.Float64("state/time"); err != nil || v != 1.5 {
		t.Errorf("time = %f, %v", v, err)
	}
	if v, err := n.String("state/code"); err != nil || v != "karfs" {
		t.Errorf("code = %q, %v", v, err)
	}
}

func TestSetGetArraysAndBytes(t *testing.T) {
	n := NewNode()
	n.SetFloat32Array("fields/t/values", []float32{1, 2, 3})
	n.SetInt64Array("topo/ids", []int64{-1, 7})
	n.SetBytes("blob", []byte{9, 8})
	if vs, err := n.Float32Array("fields/t/values"); err != nil || len(vs) != 3 || vs[2] != 3 {
		t.Errorf("f32s = %v, %v", vs, err)
	}
	if vs, err := n.Int64Array("topo/ids"); err != nil || vs[0] != -1 {
		t.Errorf("i64s = %v, %v", vs, err)
	}
	if vs, err := n.Bytes("blob"); err != nil || vs[1] != 8 {
		t.Errorf("bytes = %v, %v", vs, err)
	}
}

func TestTypeMismatchAndMissing(t *testing.T) {
	n := NewNode()
	n.SetInt64("a/b", 1)
	if _, err := n.Float64("a/b"); err == nil || !strings.Contains(err.Error(), "int64") {
		t.Errorf("type mismatch err = %v", err)
	}
	if _, err := n.Int64("a/missing"); err == nil {
		t.Error("missing path should fail")
	}
	if n.Has("a/missing") {
		t.Error("Has(missing) = true")
	}
	if !n.Has("a/b") {
		t.Error("Has(a/b) = false")
	}
}

func TestStructuralErrors(t *testing.T) {
	n := NewNode()
	n.SetInt64("a/b", 1)
	// Descending through a leaf fails.
	if err := n.SetInt64("a/b/c", 2); err == nil {
		t.Error("descending through a leaf should fail")
	}
	// Assigning a value to an interior node fails.
	if err := n.SetInt64("a", 3); err == nil {
		t.Error("assigning to an interior node should fail")
	}
	// Empty component fails.
	if err := n.SetInt64("a//b", 3); err == nil {
		t.Error("empty path component should fail")
	}
}

func TestPathsAndChildNames(t *testing.T) {
	n := NewNode()
	n.SetInt64("z/one", 1)
	n.SetInt64("a/two", 2)
	n.SetFloat64("a/three/deep", 3)
	paths := n.Paths()
	want := []string{"a/three/deep", "a/two", "z/one"}
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("paths[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
	names := n.ChildNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("children = %v", names)
	}
}

func TestSerializeRoundTripAndDeterminism(t *testing.T) {
	n := NewNode()
	n.SetInt64("state/cycle", 7)
	n.SetFloat64("state/time", 0.25)
	n.SetString("state/name", "hcci")
	n.SetBytes("raw", []byte{1, 2, 3})
	n.SetInt64Array("ids", []int64{5, -5})
	n.SetFloat32Array("fields/rho/values", []float32{1.5, -2.5})

	b1 := n.Serialize()
	b2 := n.Serialize()
	if !bytes.Equal(b1, b2) {
		t.Fatal("Serialize not deterministic")
	}
	got, err := Deserialize(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Serialize(), b1) {
		t.Fatal("round trip changed the tree")
	}
	if v, _ := got.Int64("state/cycle"); v != 7 {
		t.Errorf("cycle = %d", v)
	}
	if vs, _ := got.Float32Array("fields/rho/values"); vs[1] != -2.5 {
		t.Errorf("values = %v", vs)
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte{1, 2}); err == nil {
		t.Error("short buffer should fail")
	}
	n := NewNode()
	n.SetInt64("a", 1)
	b := n.Serialize()
	if _, err := Deserialize(b[:len(b)-2]); err == nil {
		t.Error("truncated buffer should fail")
	}
	if _, err := Deserialize(append(b, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	// Corrupt the kind tag.
	bad := append([]byte(nil), b...)
	bad[8+8+1] = 200
	if _, err := Deserialize(bad); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestFieldAdapterRoundTrip(t *testing.T) {
	f := data.SyntheticHCCI(4, 3, 2, 3, 9)
	n := NewNode()
	if err := SetField(n, "fields/temperature", f); err != nil {
		t.Fatal(err)
	}
	got, err := GetField(n, "fields/temperature")
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != 4 || got.NY != 3 || got.NZ != 2 {
		t.Fatalf("dims = %d %d %d", got.NX, got.NY, got.NZ)
	}
	for i := range f.Values {
		if f.Values[i] != got.Values[i] {
			t.Fatal("values differ")
		}
	}
	// Dim/value mismatch detected.
	n2 := NewNode()
	SetField(n2, "f", f)
	n2.SetInt64("f/dims/x", 99)
	if _, err := GetField(n2, "f"); err == nil {
		t.Error("dims/values mismatch should fail")
	}
}

// TestNodeAsPayload sends a conduit tree through a two-rank dataflow: the
// producing task publishes a field in a node, the consumer reads it through
// the data model without knowing the producer's layout code.
func TestNodeAsPayload(t *testing.T) {
	g := core.NewExplicitGraph([]core.Task{
		{Id: 0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{}}},
	})
	c := mpi.New()
	if err := c.Initialize(g, core.NewModuloMap(2, 2)); err != nil {
		t.Fatal(err)
	}
	field := data.SyntheticHCCI(4, 4, 4, 2, 3)
	c.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		n := NewNode()
		n.SetInt64("state/cycle", 11)
		if err := SetField(n, "fields/temperature", field); err != nil {
			return nil, err
		}
		return []core.Payload{core.Object(n)}, nil
	})
	c.RegisterCallback(1, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		n, err := Deserialize(in[0].Data) // crossed a rank: serialized
		if err != nil {
			return nil, err
		}
		cycle, err := n.Int64("state/cycle")
		if err != nil {
			return nil, err
		}
		f, err := GetField(n, "fields/temperature")
		if err != nil {
			return nil, err
		}
		lo, hi := f.MinMax()
		out := NewNode()
		out.SetInt64("cycle", cycle)
		out.SetFloat64("range", float64(hi-lo))
		return []core.Payload{core.Buffer(out.Serialize())}, nil
	})
	res, err := c.Run(map[core.TaskId][]core.Payload{0: {core.Buffer(nil)}})
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := res[1][0].Wire()
	out, err := Deserialize(wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Int64("cycle"); v != 11 {
		t.Errorf("cycle = %d", v)
	}
	if r, _ := out.Float64("range"); r <= 0 {
		t.Errorf("range = %f", r)
	}
}

// Property: any set of scalar leaves survives a serialize round trip.
func TestSerializeProperty(t *testing.T) {
	check := func(a, b int64, f float64, s1 uint8) bool {
		n := NewNode()
		n.SetInt64("x/a", a)
		n.SetInt64("x/b", b)
		n.SetFloat64("y", f)
		n.SetString("s", strings.Repeat("q", int(s1%32)))
		got, err := Deserialize(n.Serialize())
		if err != nil {
			return false
		}
		va, _ := got.Int64("x/a")
		vb, _ := got.Int64("x/b")
		vf, _ := got.Float64("y")
		vs, _ := got.String("s")
		return va == a && vb == b && (vf == f || (f != f && vf != vf)) && len(vs) == int(s1%32)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
