package sim

import (
	"fmt"
	"sort"

	"github.com/babelflow/babelflow-go/internal/graphs"
)

// Row is one data point of a reproduced figure: (figure, series, x,
// seconds), matching the paper's plotted curves.
type Row struct {
	Figure  string
	Series  string
	X       int
	Seconds float64
}

// Figures lists the reproducible scaling figures in paper order.
func Figures() []string {
	return []string{"fig2", "fig3", "fig6", "fig9", "fig10a", "fig10b", "fig10c", "fig10e", "fig10f"}
}

// Figure regenerates one figure's series by name.
func Figure(name string) ([]Row, error) {
	switch name {
	case "fig2":
		return Fig2()
	case "fig3":
		return Fig3()
	case "fig6":
		return Fig6()
	case "fig9":
		return Fig9()
	case "fig10a":
		return Fig10a()
	case "fig10b":
		return Fig10b()
	case "fig10c":
		return Fig10c()
	case "fig10e":
		return Fig10e()
	case "fig10f":
		return Fig10f()
	}
	return nil, fmt.Errorf("sim: unknown figure %q (have %v)", name, Figures())
}

// mergeTreeLeafs picks the block count for a core count: the next power of
// the reduction valence, giving 1-8x over-decomposition as in the paper's
// runs.
func mergeTreeLeafs(cores, valence int) int {
	l := graphs.RoundUpPow(cores, valence)
	if l < valence {
		l = valence
	}
	return l
}

// Fig2 compares the Legion index-launch and SPMD controllers on the
// parallel merge-tree dataflow over the 512³ HCCI dataset, 128-2048 cores.
func Fig2() ([]Row, error) {
	var rows []Row
	for _, cores := range []int{128, 256, 512, 1024, 2048} {
		w, err := MergeTreeWorkload(mergeTreeLeafs(cores, 8), 8, 512)
		if err != nil {
			return nil, err
		}
		m := ShaheenII(cores)
		il, err := Execute(w, m, LegionIL)
		if err != nil {
			return nil, err
		}
		sp, err := Execute(w, m, LegionSPMD)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Row{"fig2", "Legion IL", cores, il.Makespan},
			Row{"fig2", "Legion SPMD", cores, sp.Makespan})
	}
	return rows, nil
}

// Fig3 is the strong-scaling study of a single data-parallel launch: N
// identical tasks on N cores. It reports total time for the index launcher
// and the must-epoch launcher, plus the (launcher-independent) staging and
// per-task computation series.
func Fig3() ([]Row, error) {
	const totalWork = 64.0 // core-seconds split across the tasks
	const outBytes = 4 << 20
	var rows []Row
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		w := IndependentWorkload(n, totalWork, outBytes)
		m := ShaheenII(n)
		il, err := Execute(w, m, LegionIL)
		if err != nil {
			return nil, err
		}
		me, err := Execute(w, m, LegionSPMD)
		if err != nil {
			return nil, err
		}
		perTaskStage := il.Staging / float64(il.Tasks)
		rows = append(rows,
			Row{"fig3", "Total w/ Index launcher", n, il.Makespan},
			Row{"fig3", "Total w/ Must epoch launcher", n, me.Makespan},
			Row{"fig3", "Task staging", n, perTaskStage},
			Row{"fig3", "Task computation", n, totalWork / float64(n)})
	}
	return rows, nil
}

// Fig6 is the headline merge-tree scaling study on the 1024³ HCCI dataset:
// the hand-tuned Original MPI baseline against the BabelFlow MPI, Charm++
// and Legion (SPMD) controllers, 128-32768 cores.
func Fig6() ([]Row, error) {
	var rows []Row
	for _, cores := range []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768} {
		w, err := MergeTreeWorkload(mergeTreeLeafs(cores, 8), 8, 1024)
		if err != nil {
			return nil, err
		}
		m := ShaheenII(cores)
		for _, r := range []RuntimeModel{OriginalMPI, MPI, Charm, LegionSPMD} {
			res, err := Execute(w, m, r)
			if err != nil {
				return nil, err
			}
			series := r.String()
			if r == OriginalMPI {
				series = "Original MPI"
			}
			rows = append(rows, Row{"fig6", series, cores, res.Makespan})
		}
	}
	return rows, nil
}

// Fig9 is the brain-registration scaling study: 25 volumes of 1024³ on a
// 5x5 grid, 15% overlap, 4 cores used per node, 256-3200 nodes.
func Fig9() ([]Row, error) {
	var rows []Row
	for _, nodes := range []int{256, 512, 1024, 2048, 3200} {
		cores := 4 * nodes
		slabs := cores / 50
		if slabs < 1 {
			slabs = 1
		}
		w, err := RegistrationWorkload(5, 5, 1024, 0.15, slabs)
		if err != nil {
			return nil, err
		}
		m := ShaheenII(cores)
		for _, r := range []RuntimeModel{MPI, Charm, LegionSPMD} {
			res, err := Execute(w, m, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{"fig9", r.String(), nodes, res.Makespan})
		}
	}
	return rows, nil
}

// renderSweep is the core-count axis shared by the Fig. 10 rendering and
// compositing studies.
var renderSweep = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Fig10a is the VTK volume-rendering strong-scaling curve (identical for
// all runtimes): a 2048² frame over the 1024³ dataset.
func Fig10a() ([]Row, error) {
	var rows []Row
	for _, cores := range renderSweep {
		if cores > 8192 {
			break // the paper plots rendering to 8192 cores
		}
		w := IndependentWorkload(cores, cSample*2048*2048*1024, 0)
		res, err := Execute(w, ShaheenII(cores), MPI)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{"fig10a", "VTK volume rendering", cores, res.Makespan})
	}
	return rows, nil
}

// fig10Pipeline builds the full-pipeline figures 10b/10c: rendering plus
// compositing in one dataflow, weak-scaled in the number of images.
func fig10Pipeline(fig string, swap bool) ([]Row, error) {
	var rows []Row
	for _, cores := range renderSweep {
		render := RenderCostPerLeaf(cores, 2048, 2048, 1024)
		var w Workload
		var err error
		if swap {
			w, err = CompositingBinarySwapWorkload(cores, 2048, 2048, render)
		} else {
			w, err = CompositingReductionWorkload(cores, 2048, 2048, render)
		}
		if err != nil {
			return nil, err
		}
		m := ShaheenII(cores)
		for _, r := range []RuntimeModel{Direct, MPI, Charm, LegionSPMD} {
			res, err := Execute(w, m, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{fig, r.String(), cores, res.Makespan})
		}
	}
	return rows, nil
}

// Fig10b: rendering + reduction compositing, total time.
func Fig10b() ([]Row, error) { return fig10Pipeline("fig10b", false) }

// Fig10c: rendering + binary-swap compositing, total time.
func Fig10c() ([]Row, error) { return fig10Pipeline("fig10c", true) }

// fig10Compositing builds the compositing-only figures 10e/10f.
func fig10Compositing(fig string, swap bool) ([]Row, error) {
	var rows []Row
	for _, cores := range renderSweep {
		var w Workload
		var err error
		if swap {
			w, err = CompositingBinarySwapWorkload(cores, 2048, 2048, 0)
		} else {
			w, err = CompositingReductionWorkload(cores, 2048, 2048, 0)
		}
		if err != nil {
			return nil, err
		}
		m := ShaheenII(cores)
		for _, r := range []RuntimeModel{Direct, MPI, Charm, LegionSPMD} {
			res, err := Execute(w, m, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{fig, r.String(), cores, res.Makespan})
		}
	}
	return rows, nil
}

// Fig10e: reduction compositing stage only.
func Fig10e() ([]Row, error) { return fig10Compositing("fig10e", false) }

// Fig10f: binary-swap compositing stage only.
func Fig10f() ([]Row, error) { return fig10Compositing("fig10f", true) }

// SeriesOf extracts one named series from figure rows, sorted by x.
func SeriesOf(rows []Row, series string) []Row {
	var out []Row
	for _, r := range rows {
		if r.Series == series {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}
