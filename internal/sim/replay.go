package sim

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/trace"
)

// ReplayWorkload turns a measured execution trace into a simulation
// workload: each task costs exactly its measured callback duration, and
// message sizes come from the caller (payload sizes are not recorded in
// spans). This enables the what-if studies the paper frames BabelFlow as a
// test bed for: record a real run once, then ask how the same work would
// fare under a different runtime's execution model or machine.
func ReplayWorkload(g core.TaskGraph, spans []trace.Span, msgBytes func(t core.Task, slot int) int) (Workload, error) {
	durations := make(map[core.TaskId]float64, len(spans))
	for _, s := range spans {
		durations[s.Task] = s.Duration().Seconds()
	}
	for _, id := range g.TaskIds() {
		if _, ok := durations[id]; !ok {
			return Workload{}, fmt.Errorf("sim: trace has no span for task %d", id)
		}
	}
	if msgBytes == nil {
		msgBytes = func(core.Task, int) int { return 0 }
	}
	return Workload{
		Graph:    g,
		TaskCost: func(t core.Task) float64 { return durations[t.Id] },
		MsgBytes: msgBytes,
	}, nil
}

// WhatIf replays a trace under every runtime model on the given machine
// and returns the predicted makespans keyed by runtime name — "how would
// this exact execution have fared elsewhere".
func WhatIf(g core.TaskGraph, spans []trace.Span, msgBytes func(t core.Task, slot int) int, m Machine) (map[string]Result, error) {
	w, err := ReplayWorkload(g, spans, msgBytes)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Result)
	for _, r := range []RuntimeModel{MPI, OriginalMPI, Charm, LegionSPMD, LegionIL, Direct} {
		res, err := Execute(w, m, r)
		if err != nil {
			return nil, err
		}
		out[r.String()] = res
	}
	return out, nil
}
