package sim

import (
	"testing"
)

// last returns the final (largest-x) point of a series.
func last(rows []Row, series string) Row {
	s := SeriesOf(rows, series)
	return s[len(s)-1]
}

func first(rows []Row, series string) Row {
	return SeriesOf(rows, series)[0]
}

// TestFig3Shapes asserts the qualitative claims of Fig. 3: task computation
// scales almost perfectly, staging stays constant at a low level, yet the
// index-launcher total *increases* with the task count due to the spawning
// overhead borne by the parent.
func TestFig3Shapes(t *testing.T) {
	rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	comp := SeriesOf(rows, "Task computation")
	for i := 1; i < len(comp); i++ {
		if comp[i].Seconds >= comp[i-1].Seconds {
			t.Errorf("task computation not decreasing at %d cores", comp[i].X)
		}
	}
	stage := SeriesOf(rows, "Task staging")
	for _, r := range stage {
		if r.Seconds <= 0 || r.Seconds > 0.1 {
			t.Errorf("staging at %d = %f, want small constant", r.X, r.Seconds)
		}
	}
	if rel := stage[len(stage)-1].Seconds / stage[0].Seconds; rel > 1.5 || rel < 0.67 {
		t.Errorf("staging not roughly constant: ratio %f", rel)
	}
	il := SeriesOf(rows, "Total w/ Index launcher")
	if il[len(il)-1].Seconds <= il[0].Seconds {
		t.Error("index-launcher total should increase with task count")
	}
	me := SeriesOf(rows, "Total w/ Must epoch launcher")
	for i := range il {
		if il[i].Seconds <= me[i].Seconds {
			t.Errorf("at %d tasks the index launcher (%f) should cost more than must-epoch (%f)",
				il[i].X, il[i].Seconds, me[i].Seconds)
		}
	}
}

// TestFig2Shapes: the SPMD controller scales; the index-launch controller
// suffers more from runtime overheads and does not (Fig. 2).
func TestFig2Shapes(t *testing.T) {
	rows, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range SeriesOf(rows, "Legion IL") {
		spmd := SeriesOf(rows, "Legion SPMD")
		_ = spmd
		il := r.Seconds
		var sp float64
		for _, s := range SeriesOf(rows, "Legion SPMD") {
			if s.X == r.X {
				sp = s.Seconds
			}
		}
		if il <= sp {
			t.Errorf("at %d cores IL (%f) should be slower than SPMD (%f)", r.X, il, sp)
		}
	}
	spmd := SeriesOf(rows, "Legion SPMD")
	if spmd[len(spmd)-1].Seconds >= spmd[0].Seconds {
		t.Error("SPMD should scale down from 128 to 2048 cores")
	}
	il := SeriesOf(rows, "Legion IL")
	if il[len(il)-1].Seconds < il[0].Seconds*0.5 {
		t.Error("IL should not exhibit good scaling")
	}
}

// TestFig9Shapes: MPI and Charm++ scale well; Legion is comparable at low
// node counts but levels out (Fig. 9).
func TestFig9Shapes(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"MPI", "Charm++"} {
		pts := SeriesOf(rows, s)
		if pts[len(pts)-1].Seconds >= pts[0].Seconds/4 {
			t.Errorf("%s does not scale: %f -> %f", s, pts[0].Seconds, pts[len(pts)-1].Seconds)
		}
	}
	// Legion within ~5%% of MPI at the smallest scale, clearly worse at
	// the largest.
	lf, mf := first(rows, "Legion"), first(rows, "MPI")
	if lf.Seconds > mf.Seconds*1.05 {
		t.Errorf("Legion at 256 nodes (%f) should be on par with MPI (%f)", lf.Seconds, mf.Seconds)
	}
	ll, ml := last(rows, "Legion"), last(rows, "MPI")
	if ll.Seconds <= ml.Seconds {
		t.Errorf("Legion at 3200 nodes (%f) should level out above MPI (%f)", ll.Seconds, ml.Seconds)
	}
}

// TestFig10aShape: rendering is embarrassingly parallel and strong-scales.
func TestFig10aShape(t *testing.T) {
	rows, err := Fig10a()
	if err != nil {
		t.Fatal(err)
	}
	pts := SeriesOf(rows, "VTK volume rendering")
	if len(pts) < 5 {
		t.Fatalf("only %d points", len(pts))
	}
	ratio := pts[0].Seconds / pts[len(pts)-1].Seconds
	scale := float64(pts[len(pts)-1].X) / float64(pts[0].X)
	if ratio < scale*0.9 {
		t.Errorf("rendering speedup %f over %fx cores: not near-perfect scaling", ratio, scale)
	}
}

// TestFig10eShapes: the specialized IceT compositor clearly beats the
// generic controllers in the reduction case; MPI shows the lowest increase
// among the runtimes; Legion is highest.
func TestFig10eShapes(t *testing.T) {
	rows, err := Fig10e()
	if err != nil {
		t.Fatal(err)
	}
	xs := []int{128, 2048, 32768}
	at := func(series string, x int) float64 {
		for _, r := range SeriesOf(rows, series) {
			if r.X == x {
				return r.Seconds
			}
		}
		t.Fatalf("missing %s at %d", series, x)
		return 0
	}
	for _, x := range xs {
		if !(at("IceT", x) < at("MPI", x) && at("MPI", x) < at("Charm++", x) && at("Charm++", x) < at("Legion", x)) {
			t.Errorf("at %d cores want IceT < MPI < Charm++ < Legion, got %f %f %f %f",
				x, at("IceT", x), at("MPI", x), at("Charm++", x), at("Legion", x))
		}
	}
	// Weak scaling: every runtime's time grows slowly (no more than ~10x
	// over a 256x core increase).
	for _, s := range []string{"IceT", "MPI", "Charm++", "Legion"} {
		if at(s, 32768) > 10*at(s, 128) {
			t.Errorf("%s grows too fast: %f -> %f", s, at(s, 128), at(s, 32768))
		}
	}
}

// TestFig6SmallShapes runs a reduced Fig. 6 sweep (to keep unit-test time
// bounded) and checks the headline claims: the generic MPI controller
// outperforms the hand-tuned blocking baseline at low core counts, and
// Legion does not scale as well as MPI/Charm++ at high counts.
func TestFig6SmallShapes(t *testing.T) {
	costAt := func(cores int, r RuntimeModel) float64 {
		w, err := MergeTreeWorkload(mergeTreeLeafs(cores, 8), 8, 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(w, ShaheenII(cores), r)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if o, m := costAt(128, OriginalMPI), costAt(128, MPI); o <= m {
		t.Errorf("at 128 cores Original MPI (%f) should be slower than MPI (%f)", o, m)
	}
	if l, m := costAt(4096, LegionSPMD), costAt(4096, MPI); l <= m {
		t.Errorf("at 4096 cores Legion (%f) should be slower than MPI (%f)", l, m)
	}
	// Strong scaling for MPI between 128 and 4096 cores.
	if hi, lo := costAt(128, MPI), costAt(4096, MPI); hi/lo < 3 {
		t.Errorf("MPI speedup 128->4096 = %f, want > 3x", hi/lo)
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure("nope"); err == nil {
		t.Error("unknown figure should fail")
	}
	rows, err := Figure("fig3")
	if err != nil || len(rows) == 0 {
		t.Errorf("Figure(fig3) = %d rows, %v", len(rows), err)
	}
	if len(Figures()) != 9 {
		t.Errorf("Figures() = %v", Figures())
	}
}

func TestSeriesOfSorts(t *testing.T) {
	rows := []Row{{X: 4, Series: "a"}, {X: 1, Series: "a"}, {X: 2, Series: "b"}}
	s := SeriesOf(rows, "a")
	if len(s) != 2 || s[0].X != 1 || s[1].X != 4 {
		t.Errorf("SeriesOf = %v", s)
	}
}
