package sim

import (
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/trace"
)

// recordedRun produces a real trace of a reduction on the MPI controller.
func recordedRun(t *testing.T) (*graphs.Reduction, []trace.Span) {
	t.Helper()
	g, _ := graphs.NewReduction(8, 2)
	rec := trace.NewRecorder()
	c := mpi.New(mpi.WithObserver(rec))
	if err := c.Initialize(g, core.NewModuloMap(2, g.Size())); err != nil {
		t.Fatal(err)
	}
	fn := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(100 * time.Microsecond)
		return []core.Payload{core.Buffer([]byte{1})}, nil
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, rec.Wrap(cb, fn))
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.LeafIds() {
		initial[id] = []core.Payload{core.Buffer([]byte{0})}
	}
	if _, err := c.Run(initial); err != nil {
		t.Fatal(err)
	}
	return g, rec.Spans()
}

func TestReplayWorkloadUsesMeasuredDurations(t *testing.T) {
	g, spans := recordedRun(t)
	w, err := ReplayWorkload(g, spans, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range spans {
		total += s.Duration().Seconds()
	}
	var modeled float64
	for _, id := range g.TaskIds() {
		task, _ := g.Task(id)
		modeled += w.TaskCost(task)
	}
	if diff := modeled - total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("modeled total %f != measured total %f", modeled, total)
	}
	if w.MsgBytes(core.Task{}, 0) != 0 {
		t.Error("nil msgBytes should default to zero-size messages")
	}
}

func TestReplayWorkloadMissingSpan(t *testing.T) {
	g, spans := recordedRun(t)
	if _, err := ReplayWorkload(g, spans[:len(spans)-1], nil); err == nil {
		t.Error("incomplete trace should fail")
	}
}

func TestWhatIfCoversAllRuntimes(t *testing.T) {
	g, spans := recordedRun(t)
	results, err := WhatIf(g, spans, func(core.Task, int) int { return 1 << 20 }, ShaheenII(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MPI", "Original MPI", "Charm++", "Legion", "Legion IL", "IceT"}
	for _, name := range want {
		res, ok := results[name]
		if !ok {
			t.Fatalf("missing runtime %q", name)
		}
		if res.Makespan <= 0 || res.Tasks != g.Size() {
			t.Errorf("%s: implausible result %+v", name, res)
		}
	}
	// The zero-overhead direct model can never lose to Legion on the same
	// workload.
	if results["IceT"].Makespan > results["Legion"].Makespan {
		t.Errorf("IceT (%f) slower than Legion (%f)", results["IceT"].Makespan, results["Legion"].Makespan)
	}
}
