package sim

import (
	"fmt"
	"math"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
)

// Calibrated workload constants. Absolute values are chosen to land in the
// paper's reported ranges on the simulated machine; the reproduced claims
// are the curve shapes, not the absolute seconds.
const (
	// cLocal: merge-tree local computation, seconds per grid point.
	cLocal = 1.0e-6
	// cJoin: boundary-tree join, seconds per tree node.
	cJoin = 5e-8
	// cCorrection: local-tree correction, seconds per grid point touched.
	cCorrection = 2e-7
	// cSegmentation: final segmentation, seconds per grid point.
	cSegmentation = 2e-7
	// treeNodeBytes: serialized bytes per merge-tree node.
	treeNodeBytes = 20
	// leafImbalance: lognormal sigma of the data-dependent load imbalance
	// of local merge-tree computation (the paper: "the computation is
	// naturally load imbalanced").
	leafImbalance = 0.6

	// cSample: volume-rendering cost per ray sample (VTK raycasting).
	cSample = 3e-6
	// cPixel: compositing cost per pixel.
	cPixel = 2e-9
	// pixelBytes: RGBA float32 + depth float32.
	pixelBytes = 20

	// cCorrelate: registration correlation cost per voxel comparison
	// (memory-limited; the paper schedules only 4 of 32 cores per node).
	cCorrelate = 3e-7
	// correlationOffsets: offsets searched per tile pair.
	correlationOffsets = 25
)

// imbalance returns a deterministic lognormal load factor with unit mean
// for a task id.
func imbalance(id core.TaskId, sigma float64) float64 {
	r := data.NewRand(uint64(id)*0x9e3779b97f4a7c15 + 0x1234567)
	z := r.NormFloat64()
	return math.Exp(sigma*z - sigma*sigma/2)
}

// MergeTreeWorkload builds the Fig. 5 dataflow over leafs = k^d blocks of a
// domain³ grid with the merge-tree cost model: imbalanced local
// computation, joins proportional to the merged boundary-tree size,
// corrections and segmentation proportional to the block size.
func MergeTreeWorkload(leafs, valence, domain int) (Workload, error) {
	g, err := mergetree.NewGraph(leafs, valence)
	if err != nil {
		return Workload{}, err
	}
	blockPts := float64(domain) * float64(domain) * float64(domain) / float64(leafs)
	side := float64(domain) / math.Cbrt(float64(leafs))

	// treeNodes approximates the reduced boundary-tree size of a join at
	// the given depth: after a join, the tree is pruned to the surface of
	// the covered region (6 faces of a sub^(1/3)-block cube) plus its
	// criticals (proportional to the features it contains).
	treeNodes := func(depth int) float64 {
		sub := math.Pow(float64(valence), float64(g.Depth()-depth)) // leaves covered
		surface := 6 * side * side * math.Pow(sub, 2.0/3.0)
		return surface + 50*sub
	}

	w := Workload{Graph: g}
	w.TaskCost = func(t core.Task) float64 {
		switch t.Callback {
		case mergetree.CBLocal:
			return cLocal * blockPts * imbalance(t.Id, leafImbalance)
		case mergetree.CBJoin:
			return cJoin * treeNodes(joinDepth(g, t))
		case mergetree.CBRelay:
			return 1e-6
		case mergetree.CBCorrection:
			return cCorrection * (blockPts*0.3 + treeNodes(0)*0.1)
		case mergetree.CBSegmentation:
			return cSegmentation * blockPts
		}
		return 0
	}
	w.MsgBytes = func(t core.Task, slot int) int {
		switch t.Callback {
		case mergetree.CBLocal:
			if slot == 0 {
				return int(treeNodeBytes * treeNodes(g.Depth()-1)) // boundary tree
			}
			return int(treeNodeBytes * blockPts) // augmented local tree
		case mergetree.CBJoin, mergetree.CBRelay:
			return int(treeNodeBytes * treeNodes(joinDepth(g, t)))
		case mergetree.CBCorrection:
			return int(treeNodeBytes * blockPts)
		case mergetree.CBSegmentation:
			return int(16 * blockPts)
		}
		return 0
	}
	return w, nil
}

// joinDepth estimates the tree depth a join/relay task operates at from
// the number of dataflow levels above it; exact geometry is not needed for
// the cost model, so joins near the root (fewer outgoing hops to the
// broadcast) count as deeper regions. It derives the depth from the task's
// fan-in chain length encoded in its id position.
func joinDepth(g *mergetree.Graph, t core.Task) int {
	// Join ids are tree positions m with depth floor(log_k(m(k-1)+1)).
	m := int(uint64(t.Id) & (1<<48 - 1))
	if t.Callback == mergetree.CBRelay {
		m = m % (treeSizeOf(g))
	}
	depth, first, count := 0, 0, 1
	for m >= first+count {
		first += count
		count *= g.Valence()
		depth++
	}
	return depth
}

func treeSizeOf(g *mergetree.Graph) int {
	nI := (g.Leafs() - 1) / (g.Valence() - 1)
	return nI + g.Leafs()
}

// IndependentWorkload is a single round of n identical tasks splitting
// `totalWork` core-seconds, each emitting `outBytes` (Figs. 3 and 10a).
type independentGraph struct{ n int }

func (g independentGraph) Size() int                    { return g.n }
func (g independentGraph) TaskIds() []core.TaskId       { return core.ContiguousIds(g.n) }
func (g independentGraph) Callbacks() []core.CallbackId { return []core.CallbackId{0} }
func (g independentGraph) Task(id core.TaskId) (core.Task, bool) {
	if int(id) < 0 || int(id) >= g.n {
		return core.Task{}, false
	}
	return core.Task{
		Id:       id,
		Incoming: []core.TaskId{core.ExternalInput},
		Outgoing: [][]core.TaskId{{}},
	}, true
}

// IndependentWorkload returns n data-parallel tasks with no dependencies,
// dividing totalWork core-seconds evenly and producing outBytes each.
func IndependentWorkload(n int, totalWork float64, outBytes int) Workload {
	return Workload{
		Graph:    independentGraph{n: n},
		TaskCost: func(t core.Task) float64 { return totalWork / float64(n) },
		MsgBytes: func(t core.Task, slot int) int { return outBytes },
	}
}

// CompositingReductionWorkload is the Fig. 10e dataflow: a binary
// reduction over n pre-rendered full-frame images of imgW x imgH pixels.
// renderCost sets the leaf cost (zero for the compositing-only figure, the
// strong-scaled raycasting cost for the full-pipeline figures).
func CompositingReductionWorkload(n, imgW, imgH int, renderCost float64) (Workload, error) {
	g, err := graphs.NewReduction(n, 2)
	if err != nil {
		return Workload{}, err
	}
	pixels := float64(imgW) * float64(imgH)
	bytes := int(pixels) * pixelBytes
	w := Workload{Graph: g}
	w.TaskCost = func(t core.Task) float64 {
		if t.Callback == graphs.ReduceLeafCB {
			return renderCost * imbalance(t.Id, 0.3)
		}
		return cPixel * pixels * 2
	}
	w.MsgBytes = func(t core.Task, slot int) int { return bytes }
	return w, nil
}

// CompositingBinarySwapWorkload is the Fig. 10f dataflow: binary swap over
// n participants; image portions and exchanges halve every round.
func CompositingBinarySwapWorkload(n, imgW, imgH int, renderCost float64) (Workload, error) {
	g, err := graphs.NewBinarySwap(n)
	if err != nil {
		return Workload{}, err
	}
	pixels := float64(imgW) * float64(imgH)
	w := Workload{Graph: g}
	w.TaskCost = func(t core.Task) float64 {
		r, _ := g.RoundOf(t.Id)
		if r == 0 {
			return renderCost*imbalance(t.Id, 0.3) + cPixel*pixels
		}
		return cPixel * pixels / math.Pow(2, float64(r-1))
	}
	w.MsgBytes = func(t core.Task, slot int) int {
		r, _ := g.RoundOf(t.Id)
		// After round r the image is split r+1 times.
		return int(pixels * pixelBytes / math.Pow(2, float64(r+1)))
	}
	return w, nil
}

// RenderCostPerLeaf returns the strong-scaled raycasting cost of one of n
// leaves for a frame of imgW x imgH with `depth` samples per ray.
func RenderCostPerLeaf(n, imgW, imgH, depth int) float64 {
	total := cSample * float64(imgW) * float64(imgH) * float64(depth)
	return total / float64(n)
}

// RegistrationWorkload is the Fig. 9 dataflow: a gridW x gridH acquisition
// of tile³-voxel volumes with the given overlap, decomposed into `slabs`
// Z-slabs; each slab runs a Neighbor2D dataflow (Fig. 8). Strong scaling:
// the per-task correlation work shrinks as slabs grow.
func RegistrationWorkload(gridW, gridH, tile int, overlap float64, slabs int) (Workload, error) {
	if slabs < 1 {
		return Workload{}, fmt.Errorf("sim: registration needs at least one slab")
	}
	b := graphs.NewBuilder()
	single, err := graphs.NewNeighbor2D(gridW, gridH)
	if err != nil {
		return Workload{}, err
	}
	for s := 0; s < slabs; s++ {
		b.Add(uint16(s), single, nil)
	}
	g, err := b.Graph()
	if err != nil {
		return Workload{}, err
	}
	slabZ := float64(tile) / float64(slabs)
	overlapPts := float64(tile) * float64(tile) * overlap * slabZ
	stripBytes := int(4 * overlapPts)
	cells := gridW * gridH

	w := Workload{Graph: g}
	w.TaskCost = func(t core.Task) float64 {
		local := int(uint64(t.Id) & (1<<graphs.PrefixShift - 1))
		if local < cells {
			// Extract: read the tile slab and cut the strips.
			return 1e-9 * float64(tile) * float64(tile) * slabZ
		}
		// Correlation over up to two unique pairs (E and S), searching
		// correlationOffsets displacements; memory-limited.
		return cCorrelate * overlapPts * correlationOffsets * 2 * imbalance(t.Id, 0.2)
	}
	w.MsgBytes = func(t core.Task, slot int) int {
		local := int(uint64(t.Id) & (1<<graphs.PrefixShift - 1))
		if local < cells {
			if slot == 0 {
				return int(4 * float64(tile) * float64(tile) * slabZ) // the tile slab itself
			}
			return stripBytes
		}
		return 64 // the estimates
	}
	return w, nil
}
