// Package sim is the performance substrate of the reproduction: a
// discrete-event simulator that executes real BabelFlow task graphs under
// per-runtime cost models of a Shaheen-II-class machine. The paper's
// evaluation (Figs. 2, 3, 6, 9, 10) reports wall-clock times at 128-32768
// cores; the simulator reproduces the *shapes* of those curves — who wins,
// by roughly what factor, and where crossovers fall — by modeling the
// mechanisms the paper identifies:
//
//   - MPI: static placement, asynchronous sends overlapped with compute;
//   - "Original MPI": the hand-tuned baseline's blocking communication
//     without compute/communication overlap;
//   - Charm++: dynamic placement (periodic load balancing) with RPC
//     overhead on every message;
//   - Legion SPMD: static shards plus a serialized runtime-analysis stage
//     whose cost is proportional to the total task count, and payload
//     staging through regions;
//   - Legion index launch: per-round launches whose per-subtask
//     preparation cost is borne serially by the parent task;
//   - IceT-style direct baselines with none of the generic overheads.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Machine models the hardware: core count, network latency and bandwidth,
// and the effective serialization (staging) bandwidth.
type Machine struct {
	Cores       int
	Latency     float64 // seconds per message
	Bandwidth   float64 // bytes/second on the network
	SerializeBW float64 // bytes/second for payload de/serialization
}

// ShaheenII returns machine parameters loosely modeled on the paper's Cray
// XC40 (Aries dragonfly interconnect) with the given core count.
func ShaheenII(cores int) Machine {
	return Machine{
		Cores:       cores,
		Latency:     1.5e-6,
		Bandwidth:   8e9,
		SerializeBW: 2e9,
	}
}

// Workload couples a task graph with its cost model.
type Workload struct {
	Graph core.TaskGraph
	// TaskCost returns the compute seconds of a task.
	TaskCost func(t core.Task) float64
	// MsgBytes returns the payload size emitted on one output slot.
	MsgBytes func(t core.Task, slot int) int
}

// RuntimeModel selects the simulated controller.
type RuntimeModel int

// Simulated runtimes.
const (
	// MPI is the asynchronous, thread-pooled MPI controller.
	MPI RuntimeModel = iota
	// OriginalMPI is the hand-tuned baseline: blocking communication, no
	// compute/communication overlap.
	OriginalMPI
	// Charm is the Charm++ controller with periodic load balancing.
	Charm
	// LegionSPMD is the Legion SPMD controller.
	LegionSPMD
	// LegionIL is the Legion index-launch controller.
	LegionIL
	// Direct is a specialized hand-coded implementation (IceT): static
	// placement with zero framework overheads.
	Direct
)

// String names the runtime like the paper's figure legends.
func (r RuntimeModel) String() string {
	switch r {
	case MPI:
		return "MPI"
	case OriginalMPI:
		return "Original MPI"
	case Charm:
		return "Charm++"
	case LegionSPMD:
		return "Legion"
	case LegionIL:
		return "Legion IL"
	case Direct:
		return "IceT"
	}
	return fmt.Sprintf("runtime(%d)", int(r))
}

// Overheads are the per-runtime cost parameters. DefaultOverheads returns
// the calibrated values; tests and ablation benches vary them.
type Overheads struct {
	// TaskOverhead is charged on the executing core per task (thread
	// dispatch for MPI, RPC scheduling for Charm++, mapper work for
	// Legion).
	TaskOverhead float64
	// MsgOverhead is charged on the sending core per message.
	MsgOverhead float64
	// AnalysisCost serializes every task through a global runtime-analysis
	// resource (Legion's dynamic dependence analysis); zero disables it.
	AnalysisCost float64
	// SpawnCost is the per-subtask launch cost borne serially by the
	// parent (Legion index launches).
	SpawnCost float64
	// Stage enables payload staging: every payload is pushed through the
	// machine's serialization bandwidth on both the producer and consumer
	// side (Legion regions; also the always-serialize MPI ablation).
	Stage bool
	// SerializeRemote charges serialization for messages crossing shards
	// only — the generic controllers' de/serialization that specialized
	// implementations like IceT avoid (§V-B). Intra-shard messages use the
	// in-memory optimization and stay free.
	SerializeRemote bool
	// Blocking disables compute/communication overlap: transfer time is
	// charged to the sending core (Original MPI).
	Blocking bool
	// AlwaysRemote charges network cost for every message regardless of
	// placement (Charm++ RPC between chares whose location the sender
	// does not know).
	AlwaysRemote bool
	// Dynamic places each ready task on the earliest-available core
	// instead of using the static map (Charm++ load balancing).
	Dynamic bool
}

// DefaultOverheads returns the calibrated overhead set of a runtime.
func DefaultOverheads(r RuntimeModel) Overheads {
	switch r {
	case MPI:
		return Overheads{TaskOverhead: 5e-6, MsgOverhead: 1e-6, SerializeRemote: true}
	case OriginalMPI:
		return Overheads{TaskOverhead: 1e-6, Blocking: true, SerializeRemote: true}
	case Charm:
		return Overheads{TaskOverhead: 2e-5, MsgOverhead: 2e-6, AlwaysRemote: true, Dynamic: true, SerializeRemote: true}
	case LegionSPMD:
		return Overheads{TaskOverhead: 5e-5, MsgOverhead: 1e-6, AnalysisCost: 3e-5, Stage: true}
	case LegionIL:
		return Overheads{TaskOverhead: 5e-5, MsgOverhead: 1e-6, SpawnCost: 1.5e-4, Stage: true}
	case Direct:
		return Overheads{}
	}
	return Overheads{}
}

// Result is the outcome of a simulated execution.
type Result struct {
	// Makespan is the simulated wall-clock of the dataflow.
	Makespan float64
	// Compute is the sum of task compute costs.
	Compute float64
	// Staging is the total serialization cost (Legion region staging).
	Staging float64
	// Overhead is the total runtime-induced cost (task, message, spawn and
	// analysis overheads).
	Overhead float64
	// Tasks is the number of executed tasks.
	Tasks int
}

// Execute simulates a workload on a machine under the given runtime model
// with its default overheads.
func Execute(w Workload, m Machine, r RuntimeModel) (Result, error) {
	return ExecuteWith(w, m, r, DefaultOverheads(r))
}

// ExecuteWith simulates with explicit overhead parameters. The Legion
// index-launch model executes the graph round by round; every other model
// uses greedy list scheduling over the dataflow.
func ExecuteWith(w Workload, m Machine, r RuntimeModel, o Overheads) (Result, error) {
	if m.Cores < 1 {
		return Result{}, fmt.Errorf("sim: machine needs at least one core")
	}
	if r == LegionIL {
		return executeRounds(w, m, o)
	}
	return executeList(w, m, o)
}

// denseGraph indexes a task graph into arrays for the scheduler.
type denseGraph struct {
	tasks []core.Task
	index map[core.TaskId]int
}

func densify(g core.TaskGraph) (*denseGraph, error) {
	ids := g.TaskIds()
	d := &denseGraph{tasks: make([]core.Task, len(ids)), index: make(map[core.TaskId]int, len(ids))}
	for i, id := range ids {
		t, ok := g.Task(id)
		if !ok {
			return nil, fmt.Errorf("sim: graph enumerates unknown task %d", id)
		}
		d.tasks[i] = t
		d.index[id] = i
	}
	return d, nil
}

// readyItem orders the scheduler's ready queue by time, then critical-path
// priority (deepest downstream chain first — the same core.CriticalPathsFor
// annotation the real MPI controller dispatches by, so the simulator and
// the controller rank simultaneously ready tasks identically), then task
// index for determinism.
type readyItem struct {
	at  float64
	pri int
	idx int
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].idx < h[j].idx
}
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *readyHeap) push(it readyItem) { heap.Push(h, it) }
func (h *readyHeap) pop() readyItem    { return heap.Pop(h).(readyItem) }

// executeList is the greedy list scheduler shared by the MPI, Charm++,
// Legion SPMD and Direct models. Tasks become ready when their last input
// arrives; ready tasks start on their core (static placement) or on the
// earliest-free core (dynamic placement) in ready order — the paper's
// "each task is started as soon as all its input data has been received".
func executeList(w Workload, m Machine, o Overheads) (Result, error) {
	dg, err := densify(w.Graph)
	if err != nil {
		return Result{}, err
	}
	prio, err := core.CriticalPathsFor(w.Graph)
	if err != nil {
		return Result{}, err
	}
	n := len(dg.tasks)
	place := make([]int, n)
	for i := range place {
		place[i] = i % m.Cores
	}

	arrival := make([]float64, n)
	missing := make([]int, n)
	coreFree := make([]float64, m.Cores)
	var rtFree float64 // Legion's serialized runtime-analysis resource

	var ready readyHeap
	for i, t := range dg.tasks {
		cnt := 0
		for _, p := range t.Incoming {
			if p != core.ExternalInput {
				cnt++
			}
		}
		missing[i] = cnt
		if cnt == 0 {
			ready.push(readyItem{at: 0, pri: prio.Depth(t.Id), idx: i})
		}
	}

	var res Result
	res.Tasks = n
	executed := 0
	for ready.Len() > 0 {
		it := ready.pop()
		i := it.idx
		t := dg.tasks[i]

		// Input volume, used for staging and migration costs.
		inBytes := 0
		if o.Stage || o.Dynamic {
			for _, p := range t.Producers() {
				pt := dg.tasks[dg.index[p]]
				for s, cs := range pt.Outgoing {
					for _, c := range cs {
						if c == t.Id {
							inBytes += w.MsgBytes(pt, s)
						}
					}
				}
			}
		}

		rank := place[i]
		start := math.Max(it.at, coreFree[rank])
		if o.Dynamic {
			// Periodic load balancing: the chare runs on the earliest-free
			// PE; moving it off its home PE migrates its state.
			rank = minCore(coreFree)
			start = math.Max(it.at, coreFree[rank])
			if rank != place[i] {
				mig := m.Latency + float64(inBytes)/m.Bandwidth
				start += mig
				res.Overhead += mig
			}
		}
		if o.AnalysisCost > 0 {
			// Every task passes through the global analysis stage first.
			rtStart := math.Max(it.at, rtFree)
			rtFree = rtStart + o.AnalysisCost
			res.Overhead += o.AnalysisCost
			start = math.Max(start, rtFree)
		}
		cost := w.TaskCost(t)
		end := start + o.TaskOverhead + cost
		res.Compute += cost
		res.Overhead += o.TaskOverhead

		// Staging in: materialize the inputs from regions.
		if o.Stage {
			st := float64(inBytes) / m.SerializeBW
			end += st
			res.Staging += st
		}

		// Route outputs.
		for slot, consumers := range t.Outgoing {
			size := w.MsgBytes(t, slot)
			for _, c := range consumers {
				ci := dg.index[c]
				transfer := m.Latency + float64(size)/m.Bandwidth
				var arrive float64
				remote := o.AlwaysRemote || o.Dynamic || place[ci] != rank
				switch {
				case o.Blocking && remote:
					// Blocking rendezvous send: the sender serializes the
					// payload, stalls until the receiving rank is ready to
					// post the receive, then the transfer occupies the
					// sender core — no overlap of computation and
					// communication (the gap the paper attributes the
					// Original-MPI baseline's slowdown to).
					var st float64
					if o.SerializeRemote {
						st = float64(size) / m.SerializeBW
						res.Staging += 2 * st
					}
					wait := math.Max(end+st, coreFree[place[ci]])
					end = wait + transfer
					arrive = end + st
				case remote:
					end += o.MsgOverhead
					res.Overhead += o.MsgOverhead
					if o.SerializeRemote {
						// Serialize on the sender, deserialize on arrival.
						st := float64(size) / m.SerializeBW
						end += st
						arrive = end + transfer + st
						res.Staging += 2 * st
						break
					}
					arrive = end + transfer
				default:
					arrive = end
				}
				if o.Stage {
					st := float64(size) / m.SerializeBW
					end += st
					res.Staging += st
					arrive += st
				}
				if arrive > arrival[ci] {
					arrival[ci] = arrive
				}
				missing[ci]--
				if missing[ci] == 0 {
					ready.push(readyItem{at: arrival[ci], pri: prio.Depth(c), idx: ci})
				}
			}
		}

		coreFree[rank] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		executed++
	}
	if executed != n {
		return Result{}, fmt.Errorf("sim: executed %d of %d tasks (graph not connected to inputs?)", executed, n)
	}
	return res, nil
}

func minCore(free []float64) int {
	mi := 0
	for i, f := range free {
		if f < free[mi] {
			mi = i
		}
	}
	return mi
}

// executeRounds is the Legion index-launch model: the graph runs as one
// index launch per dependency level. The parent prepares every subtask
// serially (spawn cost plus staging of its inputs and outputs), then the
// round's tasks execute fully parallel across the cores; the next round
// starts when the launch completes.
func executeRounds(w Workload, m Machine, o Overheads) (Result, error) {
	rounds, err := core.Levels(w.Graph)
	if err != nil {
		return Result{}, err
	}
	var res Result
	now := 0.0
	for _, round := range rounds {
		// Parent-borne preparation, serial in the number of subtasks.
		prep := 0.0
		for _, id := range round {
			t, _ := w.Graph.Task(id)
			prep += o.SpawnCost
			res.Overhead += o.SpawnCost
			if o.Stage {
				var bytes int
				for slot := range t.Outgoing {
					bytes += w.MsgBytes(t, slot)
				}
				st := float64(bytes) / m.SerializeBW
				prep += st
				res.Staging += st
			}
		}
		now += prep

		// The subtasks of the round run in parallel over the cores.
		coreFree := make([]float64, m.Cores)
		roundEnd := now
		for i, id := range round {
			t, _ := w.Graph.Task(id)
			cost := w.TaskCost(t)
			res.Compute += cost
			res.Overhead += o.TaskOverhead
			rank := i % m.Cores
			start := math.Max(now, coreFree[rank])
			end := start + o.TaskOverhead + cost
			coreFree[rank] = end
			if end > roundEnd {
				roundEnd = end
			}
		}
		now = roundEnd
		res.Tasks += len(round)
	}
	res.Makespan = now
	return res, nil
}
