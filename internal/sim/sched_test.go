package sim

import (
	"math"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

// chainWorkload: 0 -> 1 -> ... -> n-1, each task costs `cost`, messages of
// `bytes`.
func chainWorkload(n int, cost float64, bytes int) Workload {
	tasks := make([]core.Task, n)
	for i := 0; i < n; i++ {
		t := core.Task{Id: core.TaskId(i)}
		if i == 0 {
			t.Incoming = []core.TaskId{core.ExternalInput}
		} else {
			t.Incoming = []core.TaskId{core.TaskId(i - 1)}
		}
		if i == n-1 {
			t.Outgoing = [][]core.TaskId{{}}
		} else {
			t.Outgoing = [][]core.TaskId{{core.TaskId(i + 1)}}
		}
		tasks[i] = t
	}
	g := core.NewExplicitGraph(tasks)
	return Workload{
		Graph:    g,
		TaskCost: func(core.Task) float64 { return cost },
		MsgBytes: func(core.Task, int) int { return bytes },
	}
}

func TestChainMakespanExact(t *testing.T) {
	// 4 tasks, 1 core: no communication (all local on core 0 is false —
	// round-robin over 1 core keeps everything local).
	w := chainWorkload(4, 0.5, 1000)
	m := Machine{Cores: 1, Latency: 1e-6, Bandwidth: 1e9, SerializeBW: 1e9}
	res, err := ExecuteWith(w, m, MPI, Overheads{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2.0) > 1e-12 {
		t.Errorf("makespan = %f, want 2.0", res.Makespan)
	}
	if res.Compute != 2.0 || res.Tasks != 4 {
		t.Errorf("result = %+v", res)
	}
}

func TestChainAcrossCoresPaysNetwork(t *testing.T) {
	// 2 tasks on 2 cores: one remote message of 1e9 bytes at 1e9 B/s plus
	// latency 1ms.
	w := chainWorkload(2, 1.0, 1e9)
	m := Machine{Cores: 2, Latency: 1e-3, Bandwidth: 1e9, SerializeBW: 1e9}
	res, err := ExecuteWith(w, m, MPI, Overheads{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 1e-3 + 1.0 + 1.0 // compute + latency + transfer + compute
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %f, want %f", res.Makespan, want)
	}
}

func TestSerializeRemoteAddsStaging(t *testing.T) {
	w := chainWorkload(2, 0, 2e9)
	m := Machine{Cores: 2, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	plain, _ := ExecuteWith(w, m, MPI, Overheads{})
	ser, _ := ExecuteWith(w, m, MPI, Overheads{SerializeRemote: true})
	if ser.Makespan <= plain.Makespan {
		t.Errorf("serialization did not cost anything: %f vs %f", ser.Makespan, plain.Makespan)
	}
	if math.Abs(ser.Staging-4.0) > 1e-9 { // 2 GB / 1 GB/s on each side
		t.Errorf("staging = %f, want 4", ser.Staging)
	}
}

func TestIndependentPerfectScaling(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		w := IndependentWorkload(n, 8.0, 0)
		m := Machine{Cores: n, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
		res, err := ExecuteWith(w, m, MPI, Overheads{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-8.0/float64(n)) > 1e-12 {
			t.Errorf("n=%d: makespan = %f", n, res.Makespan)
		}
	}
}

func TestDynamicBeatsStaticUnderImbalance(t *testing.T) {
	// 6 tasks on 2 cores, tasks 0 and 2 heavy (cost 4), the rest light
	// (cost 1). Static round robin lands both heavy tasks on core 0
	// (makespan 4+4+1 = 9); greedy dynamic placement spreads them
	// (makespan 6).
	cost := func(t core.Task) float64 {
		if t.Id == 0 || t.Id == 2 {
			return 4
		}
		return 1
	}
	g := IndependentWorkload(6, 0, 0).Graph
	w := Workload{Graph: g, TaskCost: cost, MsgBytes: func(core.Task, int) int { return 0 }}
	m := Machine{Cores: 2, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	static, _ := ExecuteWith(w, m, MPI, Overheads{})
	dynamic, _ := ExecuteWith(w, m, Charm, Overheads{Dynamic: true})
	if static.Makespan != 9 {
		t.Errorf("static makespan = %f, want 9", static.Makespan)
	}
	if dynamic.Makespan != 6 {
		t.Errorf("dynamic makespan = %f, want 6", dynamic.Makespan)
	}
}

func TestBlockingStallsOnBusyReceiver(t *testing.T) {
	// Producer on core 0 sends to consumer on core 1 while core 1 is busy
	// with a long independent task; the blocking sender must stall.
	tasks := []core.Task{
		{Id: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{2}, {}}},
		{Id: 1, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{}}},
		{Id: 2, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{}}},
	}
	g := core.NewExplicitGraph(tasks)
	cost := func(t core.Task) float64 {
		switch t.Id {
		case 0:
			return 0.1
		case 1:
			return 3.0 // busy receiver core
		default:
			return 0.1
		}
	}
	w := Workload{Graph: g, TaskCost: cost, MsgBytes: func(core.Task, int) int { return 0 }}
	m := Machine{Cores: 2, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	async, _ := ExecuteWith(w, m, MPI, Overheads{})
	blocking, _ := ExecuteWith(w, m, MPI, Overheads{Blocking: true})
	// Task 1 sits on core 1 (round robin), so consumer task 2 is on core 0
	// — wait, 3 tasks on 2 cores: 0,2 on core 0; 1 on core 1. Then the
	// message 0->2 is local and blocking changes nothing. Re-map with 3
	// cores where each task has its own core and task 2 waits on core 2.
	_ = async
	_ = blocking
	m3 := Machine{Cores: 3, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	a3, _ := ExecuteWith(w, m3, MPI, Overheads{})
	b3, _ := ExecuteWith(w, m3, MPI, Overheads{Blocking: true})
	if b3.Makespan < a3.Makespan {
		t.Errorf("blocking %f should never beat async %f", b3.Makespan, a3.Makespan)
	}
}

func TestLegionAnalysisSerializesTasks(t *testing.T) {
	w := IndependentWorkload(100, 0, 0)
	m := Machine{Cores: 100, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	res, err := ExecuteWith(w, m, LegionSPMD, Overheads{AnalysisCost: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// 100 tasks through a serial 10ms analysis stage: at least 1 second.
	if res.Makespan < 1.0-1e-9 {
		t.Errorf("makespan = %f, want >= 1.0", res.Makespan)
	}
}

func TestIndexLaunchParentBearsSpawnCost(t *testing.T) {
	w := IndependentWorkload(1000, 0, 0)
	m := Machine{Cores: 1000, Latency: 0, Bandwidth: 1e9, SerializeBW: 1e9}
	res, err := ExecuteWith(w, m, LegionIL, Overheads{SpawnCost: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1.0) > 1e-9 {
		t.Errorf("makespan = %f, want 1.0 (1000 x 1ms serial spawn)", res.Makespan)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	w, err := MergeTreeWorkload(64, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	m := ShaheenII(64)
	for _, r := range []RuntimeModel{MPI, OriginalMPI, Charm, LegionSPMD, LegionIL, Direct} {
		a, err := Execute(w, m, r)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		b, _ := Execute(w, m, r)
		if a != b {
			t.Errorf("%v: non-deterministic result: %+v vs %+v", r, a, b)
		}
		if a.Makespan <= 0 || a.Tasks != w.Graph.Size() {
			t.Errorf("%v: implausible result %+v", r, a)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	w := IndependentWorkload(4, 1, 0)
	if _, err := Execute(w, Machine{Cores: 0}, MPI); err == nil {
		t.Error("zero cores should fail")
	}
}

func TestRuntimeModelString(t *testing.T) {
	names := map[RuntimeModel]string{
		MPI: "MPI", OriginalMPI: "Original MPI", Charm: "Charm++",
		LegionSPMD: "Legion", LegionIL: "Legion IL", Direct: "IceT",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if RuntimeModel(99).String() == "" {
		t.Error("unknown runtime should still render")
	}
}

func TestImbalanceUnitMean(t *testing.T) {
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += imbalance(core.TaskId(i), 0.6)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("imbalance mean = %f, want ~1", mean)
	}
	if imbalance(5, 0.6) != imbalance(5, 0.6) {
		t.Error("imbalance must be deterministic per id")
	}
}
