package data

import "fmt"

// Block describes one block of a regular 3-D domain decomposition,
// including one layer of ghost overlap when requested. Low coordinates are
// inclusive, high exclusive.
type Block struct {
	// Index of the block in the decomposition grid.
	BX, BY, BZ int
	// Extent in the global domain.
	X0, Y0, Z0 int
	X1, Y1, Z1 int
}

// Dims returns the block's extent.
func (b Block) Dims() (sx, sy, sz int) { return b.X1 - b.X0, b.Y1 - b.Y0, b.Z1 - b.Z0 }

// Points returns the number of grid points in the block.
func (b Block) Points() int {
	sx, sy, sz := b.Dims()
	return sx * sy * sz
}

// Decomposition is a regular grid of blocks covering a 3-D domain. Adjacent
// blocks share one layer of grid points (the standard merge-tree ghost
// layer), so local structures can be stitched along block boundaries.
type Decomposition struct {
	NX, NY, NZ    int // domain size
	BXN, BYN, BZN int // blocks per axis
}

// NewDecomposition divides an nx*ny*nz domain into bx*by*bz blocks. The
// domain must be divisible by the block grid on each axis.
func NewDecomposition(nx, ny, nz, bx, by, bz int) (*Decomposition, error) {
	if bx < 1 || by < 1 || bz < 1 {
		return nil, fmt.Errorf("data: block grid %dx%dx%d invalid", bx, by, bz)
	}
	if nx%bx != 0 || ny%by != 0 || nz%bz != 0 {
		return nil, fmt.Errorf("data: domain %dx%dx%d not divisible by block grid %dx%dx%d", nx, ny, nz, bx, by, bz)
	}
	return &Decomposition{NX: nx, NY: ny, NZ: nz, BXN: bx, BYN: by, BZN: bz}, nil
}

// Blocks returns the number of blocks.
func (d *Decomposition) Blocks() int { return d.BXN * d.BYN * d.BZN }

// BlockIndex returns the linear index of block (bx, by, bz).
func (d *Decomposition) BlockIndex(bx, by, bz int) int {
	return (bz*d.BYN+by)*d.BXN + bx
}

// BlockCoords returns the grid coordinates of a linear block index.
func (d *Decomposition) BlockCoords(i int) (bx, by, bz int) {
	bx = i % d.BXN
	by = (i / d.BXN) % d.BYN
	bz = i / (d.BXN * d.BYN)
	return
}

// Block returns the extent of the i-th block, extended by one shared ghost
// layer toward higher coordinates (except at the domain boundary), so that
// neighboring blocks overlap on a face — the sharing the merge-tree
// boundary structures rely on.
func (d *Decomposition) Block(i int) Block {
	bx, by, bz := d.BlockCoords(i)
	sx, sy, sz := d.NX/d.BXN, d.NY/d.BYN, d.NZ/d.BZN
	b := Block{
		BX: bx, BY: by, BZ: bz,
		X0: bx * sx, Y0: by * sy, Z0: bz * sz,
		X1: (bx + 1) * sx, Y1: (by + 1) * sy, Z1: (bz + 1) * sz,
	}
	if b.X1 < d.NX {
		b.X1++
	}
	if b.Y1 < d.NY {
		b.Y1++
	}
	if b.Z1 < d.NZ {
		b.Z1++
	}
	return b
}

// Extract copies the i-th block (with ghost layer) out of a field whose
// dimensions match the decomposition's domain.
func (d *Decomposition) Extract(f *Field, i int) (*Field, error) {
	if f.NX != d.NX || f.NY != d.NY || f.NZ != d.NZ {
		return nil, fmt.Errorf("data: field %dx%dx%d does not match decomposition domain %dx%dx%d",
			f.NX, f.NY, f.NZ, d.NX, d.NY, d.NZ)
	}
	b := d.Block(i)
	sx, sy, sz := b.Dims()
	return f.SubField(b.X0, b.Y0, b.Z0, sx, sy, sz), nil
}
