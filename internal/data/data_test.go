package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFieldIndexing(t *testing.T) {
	f := NewField(4, 3, 2)
	f.Set(1, 2, 1, 7.5)
	if f.At(1, 2, 1) != 7.5 {
		t.Error("Set/At roundtrip failed")
	}
	i := f.Index(3, 1, 1)
	x, y, z := f.Coords(i)
	if x != 3 || y != 1 || z != 1 {
		t.Errorf("Coords(Index(3,1,1)) = %d,%d,%d", x, y, z)
	}
	if len(f.Values) != 24 {
		t.Errorf("len = %d", len(f.Values))
	}
}

func TestFieldCoordsIndexProperty(t *testing.T) {
	f := NewField(5, 7, 3)
	check := func(i16 uint16) bool {
		i := int(i16) % len(f.Values)
		x, y, z := f.Coords(i)
		return f.Index(x, y, z) == i
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSyntheticHCCIDeterministicAndPeriodic(t *testing.T) {
	a := SyntheticHCCI(16, 16, 16, 8, 42)
	b := SyntheticHCCI(16, 16, 16, 8, 42)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different fields")
		}
	}
	c := SyntheticHCCI(16, 16, 16, 8, 43)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fields")
	}
	lo, hi := a.MinMax()
	if !(hi > lo) || math.IsNaN(float64(hi)) {
		t.Errorf("degenerate field: min=%f max=%f", lo, hi)
	}
}

func TestSubFieldPeriodicWrap(t *testing.T) {
	f := NewField(4, 4, 4)
	for i := range f.Values {
		f.Values[i] = float32(i)
	}
	s := f.SubField(3, 3, 3, 2, 2, 2)
	if s.At(0, 0, 0) != f.At(3, 3, 3) {
		t.Error("corner mismatch")
	}
	if s.At(1, 1, 1) != f.At(0, 0, 0) {
		t.Error("wrap mismatch")
	}
	// Negative offsets wrap too.
	s2 := f.SubField(-1, 0, 0, 2, 1, 1)
	if s2.At(0, 0, 0) != f.At(3, 0, 0) {
		t.Error("negative wrap mismatch")
	}
}

func TestFieldSerializeRoundTrip(t *testing.T) {
	f := SyntheticHCCI(5, 3, 2, 4, 7)
	b := f.Serialize()
	g, err := DeserializeField(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 5 || g.NY != 3 || g.NZ != 2 {
		t.Fatalf("dims = %d %d %d", g.NX, g.NY, g.NZ)
	}
	for i := range f.Values {
		if f.Values[i] != g.Values[i] {
			t.Fatal("value mismatch after round trip")
		}
	}
}

func TestDeserializeFieldErrors(t *testing.T) {
	if _, err := DeserializeField([]byte{1, 2}); err == nil {
		t.Error("short buffer should fail")
	}
	f := NewField(2, 2, 2)
	b := f.Serialize()
	if _, err := DeserializeField(b[:len(b)-4]); err == nil {
		t.Error("truncated buffer should fail")
	}
}

func TestDecomposition(t *testing.T) {
	d, err := NewDecomposition(8, 8, 8, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Blocks() != 8 {
		t.Fatalf("Blocks = %d", d.Blocks())
	}
	// Interior block gets a ghost layer on each upper face.
	b0 := d.Block(0)
	if sx, sy, sz := b0.Dims(); sx != 5 || sy != 5 || sz != 5 {
		t.Errorf("block 0 dims = %d %d %d, want 5 5 5 (ghost layer)", sx, sy, sz)
	}
	// The last block touches the domain boundary: no ghost extension.
	b7 := d.Block(7)
	if b7.X1 != 8 || b7.Y1 != 8 || b7.Z1 != 8 {
		t.Errorf("block 7 extent = %+v", b7)
	}
	if sx, _, _ := b7.Dims(); sx != 4 {
		t.Errorf("boundary block x-dim = %d, want 4", sx)
	}
	bx, by, bz := d.BlockCoords(6)
	if d.BlockIndex(bx, by, bz) != 6 {
		t.Error("BlockIndex/BlockCoords mismatch")
	}
	if b7.Points() != 64 {
		t.Errorf("block 7 points = %d", b7.Points())
	}
}

func TestDecompositionErrors(t *testing.T) {
	if _, err := NewDecomposition(8, 8, 8, 3, 2, 2); err == nil {
		t.Error("non-divisible decomposition should fail")
	}
	if _, err := NewDecomposition(8, 8, 8, 0, 1, 1); err == nil {
		t.Error("zero blocks should fail")
	}
}

func TestDecompositionExtract(t *testing.T) {
	f := SyntheticHCCI(8, 8, 8, 4, 11)
	d, _ := NewDecomposition(8, 8, 8, 2, 1, 1)
	blk, err := d.Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Block(1)
	if blk.At(0, 0, 0) != f.At(b.X0, b.Y0, b.Z0) {
		t.Error("extracted block origin mismatch")
	}
	// Ghost sharing: block 0's last x-plane equals block 1's first.
	blk0, _ := d.Extract(f, 0)
	if blk0.At(blk0.NX-1, 0, 0) != blk.At(0, 0, 0) {
		t.Error("ghost layer not shared between adjacent blocks")
	}
	wrong := NewField(4, 4, 4)
	if _, err := d.Extract(wrong, 0); err == nil {
		t.Error("extract from mismatched field should fail")
	}
}

func TestBrainSpecimenGroundTruth(t *testing.T) {
	tiles := BrainSpecimen(3, 2, 16, 0.25, 2, 99)
	if len(tiles) != 6 {
		t.Fatalf("tiles = %d", len(tiles))
	}
	// Tile (0,0) has no jitter.
	stride := int(16 * 0.75)
	if tiles[0].TrueX != 2 || tiles[0].TrueY != 2 {
		t.Errorf("tile 0 offset = %d,%d (want jitter margin 2,2)", tiles[0].TrueX, tiles[0].TrueY)
	}
	// Other tiles sit within jitter of the nominal grid position.
	for _, tl := range tiles {
		nomX := tl.GX*stride + 2
		nomY := tl.GY*stride + 2
		if abs(tl.TrueX-nomX) > 2 || abs(tl.TrueY-nomY) > 2 {
			t.Errorf("tile (%d,%d) offset %d,%d too far from nominal %d,%d",
				tl.GX, tl.GY, tl.TrueX, tl.TrueY, nomX, nomY)
		}
		if tl.Volume.NX != 16 || tl.Volume.NY != 16 || tl.Volume.NZ != 16 {
			t.Errorf("tile volume dims %dx%dx%d", tl.Volume.NX, tl.Volume.NY, tl.Volume.NZ)
		}
	}
	// Overlap consistency: adjacent tiles share content at the ground
	// truth displacement. Compare tile (0,0) column near right edge with
	// tile (1,0) matching column.
	a, b := tiles[0], tiles[1]
	dx := b.TrueX - a.TrueX
	dy := b.TrueY - a.TrueY
	matches := 0
	for y := 4; y < 12; y++ {
		if a.Volume.At(dx+1, dy+y, 0) == b.Volume.At(1, y, 0) {
			matches++
		}
	}
	if matches != 8 {
		t.Errorf("overlap content mismatch: %d/8 samples equal", matches)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	// NormFloat64 has roughly zero mean.
	var sum float64
	for i := 0; i < 10000; i++ {
		sum += r.NormFloat64()
	}
	if mean := sum / 10000; math.Abs(mean) > 0.1 {
		t.Errorf("NormFloat64 mean = %f", mean)
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}
