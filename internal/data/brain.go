package data

import "math"

// BrainTile is one synthetic microscopy volume of the registration use
// case: a tile of a larger virtual specimen, cut out at a known ground
// truth offset so registration results can be verified.
type BrainTile struct {
	// GX, GY are the tile's coordinates in the acquisition grid.
	GX, GY int
	// TrueX, TrueY are the ground-truth offsets (in voxels) of the tile's
	// origin within the virtual specimen.
	TrueX, TrueY int
	// Volume is the acquired data.
	Volume *Field
}

// BrainSpecimen generates a gx*gy grid of overlapping tiles from one
// continuous synthetic specimen. Each tile is tile³ voxels; adjacent tiles
// overlap by `overlap` fraction (the paper uses 15%), plus a small
// deterministic stage-positioning jitter of up to `jitter` voxels that the
// registration has to recover.
func BrainSpecimen(gx, gy, tile int, overlap float64, jitter int, seed uint64) []BrainTile {
	stride := int(float64(tile) * (1 - overlap))
	if stride < 1 {
		stride = 1
	}
	// The virtual specimen must cover every tile plus jitter margin.
	w := (gx-1)*stride + tile + 2*jitter + 1
	h := (gy-1)*stride + tile + 2*jitter + 1
	depth := tile
	spec := specimenField(w, h, depth, seed)

	rng := NewRand(seed ^ 0xb0a710ad)
	tiles := make([]BrainTile, 0, gx*gy)
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			jx, jy := 0, 0
			if jitter > 0 && (x != 0 || y != 0) {
				jx = rng.Intn(2*jitter+1) - jitter
				jy = rng.Intn(2*jitter+1) - jitter
			}
			ox := x*stride + jitter + jx
			oy := y*stride + jitter + jy
			tiles = append(tiles, BrainTile{
				GX: x, GY: y,
				TrueX: ox, TrueY: oy,
				Volume: spec.SubField(ox, oy, 0, tile, tile, depth),
			})
		}
	}
	return tiles
}

// specimenField builds a continuous texture with structure at several
// scales, so correlation peaks are sharp: a sum of sinusoidal plaid
// patterns plus point-like "cells".
func specimenField(w, h, d int, seed uint64) *Field {
	f := NewField(w, h, d)
	rng := NewRand(seed)
	// Random plaid phases/frequencies.
	type wave struct{ fx, fy, fz, phase, amp float64 }
	waves := make([]wave, 6)
	for i := range waves {
		waves[i] = wave{
			fx:    0.05 + 0.4*rng.Float64(),
			fy:    0.05 + 0.4*rng.Float64(),
			fz:    0.05 + 0.2*rng.Float64(),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   0.3 + rng.Float64(),
		}
	}
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var v float64
				for _, wv := range waves {
					v += wv.amp * math.Sin(wv.fx*float64(x)+wv.fy*float64(y)+wv.fz*float64(z)+wv.phase)
				}
				f.Set(x, y, z, float32(v))
			}
		}
	}
	// Sparse bright cells break the plaid's translational symmetry.
	cells := (w * h) / 64
	for i := 0; i < cells; i++ {
		cx, cy, cz := rng.Intn(w), rng.Intn(h), rng.Intn(d)
		f.Set(cx, cy, cz, f.At(cx, cy, cz)+5)
	}
	return f
}
