// Package data provides the synthetic datasets of the reproduction and the
// block decompositions the use cases run over.
//
// The paper evaluates on a 1024³ HCCI combustion dataset (inflated from a
// periodic 512³ simulation output) and on 25 tiled 1024³ brain microscopy
// volumes with 15% overlap. Neither dataset is publicly redistributable at
// that size, so this package generates deterministic synthetic equivalents:
// a periodic scalar field whose "ignition kernels" reproduce the roughly
// uniform feature distribution the merge-tree workload depends on, and
// tiled volumes with known ground-truth offsets for registration.
package data

import (
	"fmt"
	"math"
)

// Field is a dense 3-D scalar field stored in x-fastest order.
type Field struct {
	NX, NY, NZ int
	Values     []float32
}

// NewField allocates a zero field of the given dimensions.
func NewField(nx, ny, nz int) *Field {
	return &Field{NX: nx, NY: ny, NZ: nz, Values: make([]float32, nx*ny*nz)}
}

// At returns the value at (x, y, z).
func (f *Field) At(x, y, z int) float32 {
	return f.Values[(z*f.NY+y)*f.NX+x]
}

// Set stores a value at (x, y, z).
func (f *Field) Set(x, y, z int, v float32) {
	f.Values[(z*f.NY+y)*f.NX+x] = v
}

// Index returns the linear index of (x, y, z).
func (f *Field) Index(x, y, z int) int { return (z*f.NY+y)*f.NX + x }

// Coords returns the coordinates of a linear index.
func (f *Field) Coords(i int) (x, y, z int) {
	x = i % f.NX
	y = (i / f.NX) % f.NY
	z = i / (f.NX * f.NY)
	return
}

// Kernel is one Gaussian feature of the synthetic combustion field: an
// "ignition region" analogue.
type Kernel struct {
	CX, CY, CZ float64 // center, in normalized [0,1) coordinates
	Sigma      float64 // width, normalized
	Amplitude  float64
}

// SyntheticHCCI generates a periodic scalar field of the given dimensions
// containing `features` Gaussian kernels placed by a deterministic hash of
// the seed. Like the paper's inflated HCCI data, the field is periodic, so
// replicating it to larger domains is a good proxy for a larger simulation:
// features stay roughly uniformly distributed.
func SyntheticHCCI(nx, ny, nz, features int, seed uint64) *Field {
	f := NewField(nx, ny, nz)
	kernels := SyntheticKernels(features, seed)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				px := float64(x) / float64(nx)
				py := float64(y) / float64(ny)
				pz := float64(z) / float64(nz)
				var v float64
				for _, k := range kernels {
					v += k.eval(px, py, pz)
				}
				f.Set(x, y, z, float32(v))
			}
		}
	}
	return f
}

// SyntheticKernels returns the deterministic kernel placement used by
// SyntheticHCCI.
func SyntheticKernels(features int, seed uint64) []Kernel {
	rng := NewRand(seed)
	ks := make([]Kernel, features)
	for i := range ks {
		ks[i] = Kernel{
			CX:        rng.Float64(),
			CY:        rng.Float64(),
			CZ:        rng.Float64(),
			Sigma:     0.02 + 0.06*rng.Float64(),
			Amplitude: 0.5 + rng.Float64(),
		}
	}
	return ks
}

// eval evaluates the kernel at a normalized position with periodic wrap.
func (k Kernel) eval(x, y, z float64) float64 {
	dx := periodicDist(x, k.CX)
	dy := periodicDist(y, k.CY)
	dz := periodicDist(z, k.CZ)
	d2 := dx*dx + dy*dy + dz*dz
	return k.Amplitude * math.Exp(-d2/(2*k.Sigma*k.Sigma))
}

// periodicDist is the distance between two coordinates on the unit circle.
func periodicDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// SubField copies the region [x0,x0+sx) x [y0,y0+sy) x [z0,z0+sz) into a
// new field. Coordinates wrap periodically, matching the paper's periodic
// replication of the HCCI data.
func (f *Field) SubField(x0, y0, z0, sx, sy, sz int) *Field {
	out := NewField(sx, sy, sz)
	for z := 0; z < sz; z++ {
		for y := 0; y < sy; y++ {
			for x := 0; x < sx; x++ {
				out.Set(x, y, z, f.At(mod(x0+x, f.NX), mod(y0+y, f.NY), mod(z0+z, f.NZ)))
			}
		}
	}
	return out
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// MinMax returns the extrema of the field.
func (f *Field) MinMax() (lo, hi float32) {
	if len(f.Values) == 0 {
		return 0, 0
	}
	lo, hi = f.Values[0], f.Values[0]
	for _, v := range f.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Serialize encodes the field: three int32 dimensions followed by the raw
// float32 values (little endian).
func (f *Field) Serialize() []byte {
	buf := make([]byte, 12+4*len(f.Values))
	putU32(buf[0:], uint32(f.NX))
	putU32(buf[4:], uint32(f.NY))
	putU32(buf[8:], uint32(f.NZ))
	for i, v := range f.Values {
		putU32(buf[12+4*i:], math.Float32bits(v))
	}
	return buf
}

// DeserializeField decodes a field encoded by Serialize.
func DeserializeField(b []byte) (*Field, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("data: field buffer too short (%d bytes)", len(b))
	}
	nx, ny, nz := int(getU32(b[0:])), int(getU32(b[4:])), int(getU32(b[8:]))
	n := nx * ny * nz
	if nx < 0 || ny < 0 || nz < 0 || len(b) != 12+4*n {
		return nil, fmt.Errorf("data: field buffer size %d does not match %dx%dx%d", len(b), nx, ny, nz)
	}
	f := NewField(nx, ny, nz)
	for i := 0; i < n; i++ {
		f.Values[i] = math.Float32frombits(getU32(b[12+4*i:]))
	}
	return f, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Rand is a small deterministic PRNG (splitmix64) used for reproducible
// synthetic data; math/rand is avoided so fixture bytes never depend on the
// Go release.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("data: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns an approximately standard-normal value (sum of 12
// uniforms, Irwin-Hall).
func (r *Rand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
