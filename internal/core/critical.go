package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CriticalPaths annotates every task of a graph with its downstream depth:
// the number of tasks on the longest dependency chain from the task to any
// sink, the task itself included. A task with depth d still gates d-1
// successors, so among simultaneously ready tasks the one with the largest
// depth is the most critical — executing it first shortens the makespan,
// while a task with large slack (Max - Depth) can wait without delaying
// completion.
//
// Depths depend only on the graph structure, never on execution state, so
// every shard of a distributed run ranks its ready tasks identically, and
// the simulator's list scheduler and the real MPI controller agree on which
// ready task is most critical.
type CriticalPaths struct {
	depth  map[TaskId]int
	height map[TaskId]int
	max    int
}

// Depth returns the downstream depth of a task (0 for ids outside the
// analyzed graph).
func (c *CriticalPaths) Depth(id TaskId) int { return c.depth[id] }

// Height returns the upstream height of a task: the number of tasks on the
// longest chain from any source to the task, the task included (0 for ids
// outside the analyzed graph).
func (c *CriticalPaths) Height(id TaskId) int { return c.height[id] }

// Max returns the graph's critical-path length in tasks — the largest Depth.
func (c *CriticalPaths) Max() int { return c.max }

// Slack returns how many levels the task sits off a critical path: the
// graph's critical-path length minus the longest source-to-sink chain
// through this task (Height + Depth - 1). Tasks with zero slack lie on a
// critical path; a task with slack s could be delayed s levels without
// stretching the schedule.
func (c *CriticalPaths) Slack(id TaskId) int {
	d, ok := c.depth[id]
	if !ok {
		return c.max
	}
	return c.max - (c.height[id] + d - 1)
}

// ComputeCriticalPaths performs the critical-path analysis of a graph in
// one pass per direction: a reverse topological sweep (Kahn's algorithm
// over consumer counts) assigns depth(t) = 1 + max(depth of t's consumers),
// and the order it finalizes tasks in, replayed backwards, is a forward
// topological order used to assign height(t) = 1 + max(height of t's
// producers) — each sweep visits every edge exactly once. It fails on
// cyclic graphs, like Validate.
func ComputeCriticalPaths(g TaskGraph) (*CriticalPaths, error) {
	ids := g.TaskIds()
	cp := &CriticalPaths{
		depth:  make(map[TaskId]int, len(ids)),
		height: make(map[TaskId]int, len(ids)),
	}

	// pending counts each task's not-yet-finalized unique consumers; tasks
	// whose consumers are all finalized (starting with the sinks) finalize
	// next.
	pending := make(map[TaskId]int, len(ids))
	queue := make([]TaskId, 0, len(ids))
	for _, id := range ids {
		t, ok := g.Task(id)
		if !ok {
			return nil, fmt.Errorf("core: graph enumerates unknown task %d", id)
		}
		n := len(t.Consumers())
		pending[id] = n
		if n == 0 {
			queue = append(queue, id)
		}
	}

	order := make([]TaskId, 0, len(ids)) // reverse topological order
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		t, _ := g.Task(id)
		d := 0
		for _, c := range t.Consumers() {
			if cd := cp.depth[c]; cd > d {
				d = cd
			}
		}
		d++
		cp.depth[id] = d
		if d > cp.max {
			cp.max = d
		}
		order = append(order, id)
		for _, p := range t.Producers() {
			pending[p]--
			if pending[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if len(order) != len(ids) {
		return nil, fmt.Errorf("core: critical-path analysis finalized %d of %d tasks (graph has a cycle)", len(order), len(ids))
	}

	// Forward sweep for upstream heights: the reverse of order finalizes
	// every producer before its consumers.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		t, _ := g.Task(id)
		h := 0
		for _, p := range t.Producers() {
			if ph := cp.height[p]; ph > h {
				h = ph
			}
		}
		cp.height[id] = h + 1
	}
	return cp, nil
}

// cpCache memoizes critical-path analyses per graph fingerprint, so
// repeated controller initializations over the same logical graph (e.g. a
// benchmark constructing a fresh controller per run, or the shards of a
// distributed run fingerprinting the same graph) pay for the traversal
// once. cpCacheSize bounds the entries kept; beyond it results are computed
// but not retained (graphs per process number in the dozens, not
// thousands).
var (
	cpCache     sync.Map // Fingerprint -> *CriticalPaths
	cpCacheLen  atomic.Int64
	cpCacheGoal = int64(1024)
)

// CriticalPathsFor returns the critical-path annotation of a graph, cached
// per graph fingerprint. Two structurally identical graphs share one
// analysis regardless of how they were built.
func CriticalPathsFor(g TaskGraph) (*CriticalPaths, error) {
	fp := GraphFingerprint(g, nil)
	if v, ok := cpCache.Load(fp); ok {
		return v.(*CriticalPaths), nil
	}
	cp, err := ComputeCriticalPaths(g)
	if err != nil {
		return nil, err
	}
	if cpCacheLen.Load() < cpCacheGoal {
		if _, loaded := cpCache.LoadOrStore(fp, cp); !loaded {
			cpCacheLen.Add(1)
		}
	}
	return cp, nil
}
