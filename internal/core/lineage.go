package core

import (
	"errors"
	"sync"
)

// Ledger is the per-rank lineage record of the fault-tolerance layer: for
// every task the rank has completed it retains the serialized (wire-form)
// outputs, so a recovery epoch can replay those outputs downstream without
// re-running the callback. This is NOT a checkpoint — it exploits the
// paper's idempotence contract: any task whose outputs were not recorded
// (or whose rank died) is simply re-executed, and only the undelivered
// frontier pays the re-execution cost.
//
// Recording is best effort: object payloads that do not implement
// Serializable are skipped and their task re-executes on replay, which is
// always correct. Recorded buffers are owned by the ledger; callers must
// copy before mutating or emitting (a replay may happen more than once).
//
// A Ledger is safe for concurrent use by the rank's worker pool.
type Ledger struct {
	mu       sync.Mutex
	outs     map[TaskId][][]byte
	attempts map[TaskId]int
	replays  int
	execs    int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		outs:     make(map[TaskId][][]byte),
		attempts: make(map[TaskId]int),
	}
}

// BeginAttempt records that the task is about to execute and returns the
// attempt number (1 = first execution across all epochs).
func (l *Ledger) BeginAttempt(id TaskId) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.attempts[id]++
	l.execs++
	return l.attempts[id]
}

// Attempts returns how many times the task has begun executing.
func (l *Ledger) Attempts(id TaskId) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.attempts[id]
}

// Record stores the task's serialized outputs (one buffer per output slot).
// The ledger takes ownership of the buffers.
func (l *Ledger) Record(id TaskId, outs [][]byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.outs[id] = outs
}

// Outputs returns the recorded wire-form outputs of a completed task, or
// ok=false when the task must (re-)execute. The returned buffers are owned
// by the ledger: clone before emitting.
func (l *Ledger) Outputs(id TaskId) ([][]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	outs, ok := l.outs[id]
	return outs, ok
}

// CountReplay accounts one ledger replay (a task whose callback was skipped
// because its outputs were already recorded).
func (l *Ledger) CountReplay() {
	l.mu.Lock()
	l.replays++
	l.mu.Unlock()
}

// Replays returns how many tasks were replayed from the ledger.
func (l *Ledger) Replays() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replays
}

// Executions returns how many callback executions the ledger has seen
// (replays excluded).
func (l *Ledger) Executions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.execs
}

// Completed returns how many tasks have recorded outputs.
func (l *Ledger) Completed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.outs)
}

// ReassignShards builds the task map of a recovery epoch. alive lists the
// surviving shards of the original map in ascending order; survivors are
// renumbered to logical shards 0..len(alive)-1 (keeping their own tasks,
// so their ledgers stay valid), and every task of a lost shard is
// redistributed round-robin over the survivors.
func ReassignShards(g TaskGraph, m TaskMap, alive []ShardId) (TaskMap, error) {
	if len(alive) == 0 {
		return nil, errors.New("core: reassign: no surviving shards")
	}
	logical := make(map[ShardId]ShardId, len(alive))
	for i, s := range alive {
		if _, dup := logical[s]; dup {
			return nil, errors.New("core: reassign: duplicate surviving shard")
		}
		logical[s] = ShardId(i)
	}
	ids := g.TaskIds()
	dest := make(map[TaskId]ShardId, len(ids))
	rr := 0
	for _, id := range ids {
		if l, ok := logical[m.Shard(id)]; ok {
			dest[id] = l
		} else {
			dest[id] = ShardId(rr % len(alive))
			rr++
		}
	}
	return NewFuncMap(len(alive), ids, func(id TaskId) ShardId { return dest[id] }), nil
}
