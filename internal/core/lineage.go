package core

import (
	"errors"
	"sync"
)

// Ledger is the per-rank lineage record of the fault-tolerance layer: for
// every task the rank has completed it retains the serialized (wire-form)
// outputs, so a recovery epoch can replay those outputs downstream without
// re-running the callback. This is NOT a checkpoint — it exploits the
// paper's idempotence contract: any task whose outputs were not recorded
// (or whose rank died) is simply re-executed, and only the undelivered
// frontier pays the re-execution cost.
//
// Recording is best effort: object payloads that do not implement
// Serializable are skipped and their task re-executes on replay, which is
// always correct. Recorded buffers are owned by the ledger; callers must
// copy before mutating or emitting (a replay may happen more than once).
//
// A Ledger may be backed by a durable LedgerStore (NewLedgerBacked), in
// which case every recorded output is also journaled and the in-memory map
// becomes a bounded cache: entries confirmed persisted are evicted once the
// cache exceeds its limit and are re-read from the store on demand, so a
// long run's ledger footprint stays bounded and a restarted run resumes
// from whatever the journal retained.
//
// A Ledger is safe for concurrent use by the rank's worker pool.
type Ledger struct {
	mu       sync.Mutex
	outs     map[TaskId][][]byte
	attempts map[TaskId]int
	replays  int
	execs    int

	store      LedgerStore     // nil for a purely in-memory ledger
	stored     map[TaskId]bool // persisted in store (safe to evict)
	evictable  []TaskId        // FIFO of cached+stored ids, eviction order
	cacheLimit int             // max cached entries when store != nil
	restored   int             // tasks inherited from the store at open
	storeErrs  int             // failed store appends (entry stays pinned)
}

// NewLedger returns an empty in-memory ledger.
func NewLedger() *Ledger {
	return &Ledger{
		outs:     make(map[TaskId][][]byte),
		attempts: make(map[TaskId]int),
	}
}

// NewLedgerBacked returns a ledger journaling through store. Tasks already
// present in the store are immediately replayable — a restarted run skips
// them (Restored reports how many). cacheLimit bounds the in-memory cache;
// non-positive selects DefaultLedgerCache. The ledger does not close the
// store.
func NewLedgerBacked(store LedgerStore, cacheLimit int) *Ledger {
	if cacheLimit <= 0 {
		cacheLimit = DefaultLedgerCache
	}
	l := NewLedger()
	l.store = store
	l.stored = make(map[TaskId]bool)
	l.cacheLimit = cacheLimit
	for _, id := range store.TaskIds() {
		l.stored[id] = true
	}
	l.restored = len(l.stored)
	return l
}

// BeginAttempt records that the task is about to execute and returns the
// attempt number (1 = first execution across all epochs).
func (l *Ledger) BeginAttempt(id TaskId) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.attempts[id]++
	l.execs++
	return l.attempts[id]
}

// Attempts returns how many times the task has begun executing.
func (l *Ledger) Attempts(id TaskId) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.attempts[id]
}

// Record stores the task's serialized outputs (one buffer per output slot),
// journaling them first when the ledger is store-backed. The ledger takes
// ownership of the buffers. A failed journal append is not fatal: the entry
// stays pinned in memory (never evicted) so the run proceeds correctly and
// only durability is degraded.
func (l *Ledger) Record(id TaskId, outs [][]byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.outs[id] = outs
	if l.store == nil {
		return
	}
	if err := l.store.Append(id, outs); err != nil {
		l.storeErrs++
		delete(l.stored, id)
		return
	}
	if !l.stored[id] {
		l.stored[id] = true
	}
	l.evictable = append(l.evictable, id)
	l.evictLocked()
}

// evictLocked drops confirmed-persisted cache entries, oldest first, until
// the cache fits cacheLimit. Unpersisted entries are pinned.
func (l *Ledger) evictLocked() {
	for len(l.outs) > l.cacheLimit && len(l.evictable) > 0 {
		id := l.evictable[0]
		l.evictable = l.evictable[1:]
		if l.stored[id] {
			delete(l.outs, id)
		}
	}
}

// Outputs returns the recorded wire-form outputs of a completed task, or
// ok=false when the task must (re-)execute. Evicted or restored entries are
// read back from the store (a record that fails its integrity re-check is
// forgotten, so the task re-executes). The returned buffers are owned by
// the ledger: clone before emitting.
func (l *Ledger) Outputs(id TaskId) ([][]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if outs, ok := l.outs[id]; ok {
		return outs, ok
	}
	if l.store == nil || !l.stored[id] {
		return nil, false
	}
	outs, ok, err := l.store.Get(id)
	if err != nil || !ok {
		delete(l.stored, id)
		return nil, false
	}
	l.outs[id] = outs
	l.evictable = append(l.evictable, id)
	l.evictLocked()
	return outs, true
}

// CountReplay accounts one ledger replay (a task whose callback was skipped
// because its outputs were already recorded).
func (l *Ledger) CountReplay() {
	l.mu.Lock()
	l.replays++
	l.mu.Unlock()
}

// Replays returns how many tasks were replayed from the ledger.
func (l *Ledger) Replays() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replays
}

// Executions returns how many callback executions the ledger has seen
// (replays excluded).
func (l *Ledger) Executions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.execs
}

// Completed returns how many tasks have recorded outputs, whether cached
// in memory or spilled to the store.
func (l *Ledger) Completed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return len(l.outs)
	}
	n := len(l.stored)
	for id := range l.outs {
		if !l.stored[id] {
			n++
		}
	}
	return n
}

// Restored returns how many tasks the ledger inherited from its store at
// open — the completed work a resumed run does not repeat.
func (l *Ledger) Restored() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.restored
}

// Cached returns the number of in-memory cache entries (testing aid).
func (l *Ledger) Cached() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.outs)
}

// StoreErrors returns how many journal appends failed; those entries stay
// pinned in memory so correctness is unaffected.
func (l *Ledger) StoreErrors() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.storeErrs
}

// Adopt copies the donor ledger's recorded outputs for id into l, making l
// the task's new owner of record. When l is store-backed the adopted record
// is journaled like any other, so a hand-off (drain, rebalance) is durable
// before the donor's journal is retired. Returns false when the donor has
// nothing recorded for id — the task simply re-executes on the new owner,
// which is always correct. Buffers are deep-copied: the two ledgers share
// no memory afterwards.
func (l *Ledger) Adopt(donor *Ledger, id TaskId) bool {
	if donor == nil || donor == l {
		return false
	}
	outs, ok := donor.Outputs(id)
	if !ok {
		return false
	}
	cp := make([][]byte, len(outs))
	for i, b := range outs {
		cp[i] = append([]byte(nil), b...)
	}
	l.Record(id, cp)
	return true
}

// ReassignShards builds the task map of a recovery epoch. alive lists the
// surviving shards of the original map in ascending order; survivors are
// renumbered to logical shards 0..len(alive)-1 (keeping their own tasks,
// so their ledgers stay valid), and every task of a lost shard is
// redistributed round-robin over the survivors. It is the loss-only special
// case of RebalanceShards: with no joiners in the member set the two are
// identical.
func ReassignShards(g TaskGraph, m TaskMap, alive []ShardId) (TaskMap, error) {
	if len(alive) == 0 {
		return nil, errors.New("core: reassign: no surviving shards")
	}
	return RebalanceShards(g, m, alive)
}
