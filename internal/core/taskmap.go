package core

// TaskMap assigns tasks to shards. The MPI controller and the Legion SPMD
// controller use it for static placement; the Charm++ controller ignores it
// and lets the runtime place (and migrate) tasks.
type TaskMap interface {
	// Shard returns the shard the given task is assigned to.
	Shard(id TaskId) ShardId
	// Ids returns the list of task ids assigned to the given shard.
	Ids(shard ShardId) []TaskId
	// ShardCount returns the number of shards tasks are distributed over.
	ShardCount() int
}

// ModuloMap maps a contiguous task id space [0, taskCount) onto shards in
// round robin: task t runs on shard t mod shardCount. It is the default task
// map from the paper (Listing 3).
type ModuloMap struct {
	shards int
	tasks  int
}

// NewModuloMap returns a modulo map over shardCount shards and taskCount
// contiguously numbered tasks. It panics when either count is not positive,
// mirroring the constructor preconditions of the paper's base class.
func NewModuloMap(shardCount, taskCount int) *ModuloMap {
	if shardCount <= 0 {
		panic("core: ModuloMap requires at least one shard")
	}
	if taskCount < 0 {
		panic("core: ModuloMap requires a non-negative task count")
	}
	return &ModuloMap{shards: shardCount, tasks: taskCount}
}

// Shard implements TaskMap.
func (m *ModuloMap) Shard(id TaskId) ShardId {
	return ShardId(uint64(id) % uint64(m.shards))
}

// Ids implements TaskMap.
func (m *ModuloMap) Ids(shard ShardId) []TaskId {
	if shard < 0 || int(shard) >= m.shards {
		return nil
	}
	var ids []TaskId
	for t := int(shard); t < m.tasks; t += m.shards {
		ids = append(ids, TaskId(t))
	}
	return ids
}

// ShardCount implements TaskMap.
func (m *ModuloMap) ShardCount() int { return m.shards }

// BlockMap maps a contiguous task id space onto shards in contiguous blocks:
// the first ceil(n/s) tasks on shard 0, the next on shard 1, and so on.
// Block placement keeps neighboring task ids on the same shard, which suits
// graphs whose communication is id-local (e.g. neighbor dataflows).
type BlockMap struct {
	shards int
	tasks  int
	block  int
}

// NewBlockMap returns a block map over shardCount shards and taskCount
// contiguously numbered tasks.
func NewBlockMap(shardCount, taskCount int) *BlockMap {
	if shardCount <= 0 {
		panic("core: BlockMap requires at least one shard")
	}
	if taskCount < 0 {
		panic("core: BlockMap requires a non-negative task count")
	}
	block := (taskCount + shardCount - 1) / shardCount
	if block == 0 {
		block = 1
	}
	return &BlockMap{shards: shardCount, tasks: taskCount, block: block}
}

// Shard implements TaskMap.
func (m *BlockMap) Shard(id TaskId) ShardId {
	s := int(uint64(id)) / m.block
	if s >= m.shards {
		s = m.shards - 1
	}
	return ShardId(s)
}

// Ids implements TaskMap.
func (m *BlockMap) Ids(shard ShardId) []TaskId {
	if shard < 0 || int(shard) >= m.shards {
		return nil
	}
	lo := int(shard) * m.block
	hi := lo + m.block
	if int(shard) == m.shards-1 {
		hi = m.tasks
	}
	if hi > m.tasks {
		hi = m.tasks
	}
	var ids []TaskId
	for t := lo; t < hi; t++ {
		ids = append(ids, TaskId(t))
	}
	return ids
}

// ShardCount implements TaskMap.
func (m *BlockMap) ShardCount() int { return m.shards }

// ListMap maps an explicit, possibly non-contiguous id enumeration onto
// shards in round robin over the enumeration order. Composite graphs whose
// id spaces carry prefixes use it as their default placement.
type ListMap struct {
	shards int
	byTask map[TaskId]ShardId
	byShrd [][]TaskId
}

// NewListMap distributes the given ids (in the given order) round-robin over
// shardCount shards.
func NewListMap(shardCount int, ids []TaskId) *ListMap {
	if shardCount <= 0 {
		panic("core: ListMap requires at least one shard")
	}
	m := &ListMap{
		shards: shardCount,
		byTask: make(map[TaskId]ShardId, len(ids)),
		byShrd: make([][]TaskId, shardCount),
	}
	for i, id := range ids {
		s := ShardId(i % shardCount)
		m.byTask[id] = s
		m.byShrd[s] = append(m.byShrd[s], id)
	}
	return m
}

// NewGraphMap distributes all tasks of a graph round-robin over shardCount
// shards, in TaskIds order.
func NewGraphMap(shardCount int, g TaskGraph) *ListMap {
	return NewListMap(shardCount, g.TaskIds())
}

// Shard implements TaskMap. Unknown tasks map to shard 0.
func (m *ListMap) Shard(id TaskId) ShardId { return m.byTask[id] }

// Ids implements TaskMap.
func (m *ListMap) Ids(shard ShardId) []TaskId {
	if shard < 0 || int(shard) >= m.shards {
		return nil
	}
	return append([]TaskId(nil), m.byShrd[shard]...)
}

// ShardCount implements TaskMap.
func (m *ListMap) ShardCount() int { return m.shards }

// FuncMap adapts a placement function to the TaskMap interface. The id
// enumeration must cover every task the function will be asked about.
type FuncMap struct {
	shards int
	ids    []TaskId
	fn     func(TaskId) ShardId
}

// NewFuncMap returns a task map that places each enumerated id with fn.
func NewFuncMap(shardCount int, ids []TaskId, fn func(TaskId) ShardId) *FuncMap {
	if shardCount <= 0 {
		panic("core: FuncMap requires at least one shard")
	}
	return &FuncMap{shards: shardCount, ids: append([]TaskId(nil), ids...), fn: fn}
}

// Shard implements TaskMap.
func (m *FuncMap) Shard(id TaskId) ShardId { return m.fn(id) }

// Ids implements TaskMap.
func (m *FuncMap) Ids(shard ShardId) []TaskId {
	var out []TaskId
	for _, id := range m.ids {
		if m.fn(id) == shard {
			out = append(out, id)
		}
	}
	return out
}

// ShardCount implements TaskMap.
func (m *FuncMap) ShardCount() int { return m.shards }

// ValidateMap checks that a task map covers exactly the tasks of a graph:
// every task is assigned to a shard in range, Ids and Shard agree, and no
// task is assigned twice.
func ValidateMap(g TaskGraph, m TaskMap) error {
	seen := make(map[TaskId]ShardId)
	for s := ShardId(0); int(s) < m.ShardCount(); s++ {
		for _, id := range m.Ids(s) {
			if prev, dup := seen[id]; dup {
				return &MapError{Id: id, Msg: "assigned to multiple shards", Shard: prev}
			}
			if got := m.Shard(id); got != s {
				return &MapError{Id: id, Msg: "Ids/Shard disagree", Shard: got}
			}
			seen[id] = s
		}
	}
	for _, id := range g.TaskIds() {
		if _, ok := seen[id]; !ok {
			return &MapError{Id: id, Msg: "not assigned to any shard"}
		}
	}
	return nil
}
