package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.BaseBackoff != 50*time.Millisecond || p.MaxBackoff != 2*time.Second || p.Jitter != 0.2 {
		t.Errorf("defaults = %+v", p)
	}
	if p.AttemptTimeout != 0 {
		t.Errorf("default AttemptTimeout = %v, want disabled", p.AttemptTimeout)
	}
	// Explicit values survive.
	q := RetryPolicy{MaxAttempts: 7, BaseBackoff: time.Second, Jitter: -1}.WithDefaults()
	if q.MaxAttempts != 7 || q.BaseBackoff != time.Second || q.Jitter != 0 {
		t.Errorf("explicit = %+v", q)
	}
}

func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: -1}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.Backoff(attempt)
		if d < prev {
			t.Errorf("attempt %d: backoff %v shrank below %v", attempt, d, prev)
		}
		if d > 80*time.Millisecond {
			t.Errorf("attempt %d: backoff %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if p.Backoff(1) != 10*time.Millisecond {
		t.Errorf("first backoff = %v", p.Backoff(1))
	}
	// Jitter is deterministic: same attempt, same wait.
	j := RetryPolicy{BaseBackoff: 10 * time.Millisecond}
	if j.Backoff(2) != j.Backoff(2) {
		t.Error("jittered backoff not reproducible")
	}
}

func TestRetrySleepCancelled(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := p.Sleep(ctx, 1)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("Sleep on cancelled ctx: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep did not return promptly on cancellation")
	}
}

func TestCancelledPreservesCause(t *testing.T) {
	cause := errors.New("deadline blown")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := Cancelled(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("Cancelled() = %v, want ErrCancelled", err)
	}
	if !strings.Contains(err.Error(), cause.Error()) {
		t.Errorf("cause lost: %v", err)
	}
}

func TestLedgerRecordReplay(t *testing.T) {
	l := NewLedger()
	if _, ok := l.Outputs(1); ok {
		t.Error("empty ledger claims outputs")
	}
	if got := l.BeginAttempt(1); got != 1 {
		t.Errorf("first attempt = %d", got)
	}
	if got := l.BeginAttempt(1); got != 2 {
		t.Errorf("second attempt = %d", got)
	}
	l.Record(1, [][]byte{[]byte("a"), []byte("b")})
	outs, ok := l.Outputs(1)
	if !ok || len(outs) != 2 || string(outs[0]) != "a" {
		t.Errorf("Outputs = %v, %v", outs, ok)
	}
	l.CountReplay()
	if l.Replays() != 1 || l.Executions() != 2 || l.Completed() != 1 || l.Attempts(1) != 2 {
		t.Errorf("counters: replays=%d execs=%d completed=%d attempts=%d",
			l.Replays(), l.Executions(), l.Completed(), l.Attempts(1))
	}
}

// reassignGraph builds a 8-task chainless graph for map tests.
func reassignGraph() *ExplicitGraph {
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Id: TaskId(i), Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{}}}
	}
	return NewExplicitGraph(tasks)
}

func TestReassignShards(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	// Kill shard 2: survivors 0,1,3 become logical 0,1,2.
	next, err := ReassignShards(g, m, []ShardId{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if next.ShardCount() != 3 {
		t.Fatalf("shard count = %d", next.ShardCount())
	}
	logical := map[ShardId]ShardId{0: 0, 1: 1, 3: 2}
	orphans := 0
	for _, id := range g.TaskIds() {
		old := m.Shard(id)
		got := next.Shard(id)
		if got < 0 || got >= 3 {
			t.Fatalf("task %d mapped to shard %d of 3", id, got)
		}
		if want, survived := logical[old]; survived {
			if got != want {
				t.Errorf("task %d: survivor shard %d renumbered to %d, want %d", id, old, got, want)
			}
		} else {
			orphans++
		}
	}
	if orphans == 0 {
		t.Error("graph map put no task on the killed shard; test is vacuous")
	}
}

func TestReassignShardsRejectsBadAlive(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	if _, err := ReassignShards(g, m, nil); err == nil {
		t.Error("empty alive set accepted")
	}
	if _, err := ReassignShards(g, m, []ShardId{1, 1}); err == nil {
		t.Error("duplicate alive shard accepted")
	}
}

// roleGraph is a minimal RoledGraph for registration tests.
type roleGraph struct {
	*ExplicitGraph
}

func (roleGraph) CallbackRoles() map[Role]CallbackId {
	return map[Role]CallbackId{RoleLeaf: 0, RoleRoot: 1}
}

func newRoleGraph() roleGraph {
	return roleGraph{NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{}}},
	})}
}

func passCB(in []Payload, id TaskId) ([]Payload, error) {
	return []Payload{Buffer([]byte{byte(id)})}, nil
}

func TestRegisterCallbacksByRole(t *testing.T) {
	g := newRoleGraph()
	ser := NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	if err := RegisterCallbacks(ser, g, map[Role]Callback{
		RoleLeaf: passCB,
		RoleRoot: passCB,
	}); err != nil {
		t.Fatal(err)
	}
	out, err := ser.Run(map[TaskId][]Payload{0: {Buffer([]byte{9})}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("sinks = %d", len(out))
	}
}

func TestRegisterCallbacksErrors(t *testing.T) {
	g := newRoleGraph()
	ser := NewSerial()
	ser.Initialize(g, nil)

	err := RegisterCallbacks(ser, g, map[Role]Callback{RoleLeaf: passCB})
	if err == nil || !strings.Contains(err.Error(), "no callback for role") || !strings.Contains(err.Error(), "root") {
		t.Errorf("missing role error = %v", err)
	}
	err = RegisterCallbacks(ser, g, map[Role]Callback{
		RoleLeaf: passCB, RoleRoot: passCB, RoleRelay: passCB,
	})
	if err == nil || !strings.Contains(err.Error(), "no role") || !strings.Contains(err.Error(), "relay") {
		t.Errorf("unknown role error = %v", err)
	}
	err = RegisterCallbacks(ser, g.ExplicitGraph, map[Role]Callback{RoleLeaf: passCB})
	if err == nil || !strings.Contains(err.Error(), "does not name callback roles") {
		t.Errorf("unroled graph error = %v", err)
	}
}
