package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.BaseBackoff != 50*time.Millisecond || p.MaxBackoff != 2*time.Second || p.Jitter != 0.2 {
		t.Errorf("defaults = %+v", p)
	}
	if p.AttemptTimeout != 0 {
		t.Errorf("default AttemptTimeout = %v, want disabled", p.AttemptTimeout)
	}
	// Explicit values survive.
	q := RetryPolicy{MaxAttempts: 7, BaseBackoff: time.Second, Jitter: -1}.WithDefaults()
	if q.MaxAttempts != 7 || q.BaseBackoff != time.Second || q.Jitter != 0 {
		t.Errorf("explicit = %+v", q)
	}
}

func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: -1}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.Backoff(attempt)
		if d < prev {
			t.Errorf("attempt %d: backoff %v shrank below %v", attempt, d, prev)
		}
		if d > 80*time.Millisecond {
			t.Errorf("attempt %d: backoff %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if p.Backoff(1) != 10*time.Millisecond {
		t.Errorf("first backoff = %v", p.Backoff(1))
	}
	// Jitter is deterministic: same attempt, same wait.
	j := RetryPolicy{BaseBackoff: 10 * time.Millisecond}
	if j.Backoff(2) != j.Backoff(2) {
		t.Error("jittered backoff not reproducible")
	}
}

// TestRetryBackoffJitterCapped pins the MaxBackoff contract: the cap bounds
// the final wait, jitter included. Before the fix, jitter was added after
// the cap, so late attempts could wait up to Jitter× longer than documented.
func TestRetryBackoffJitterCapped(t *testing.T) {
	cases := []struct {
		name    string
		p       RetryPolicy
		attempt int
		max     time.Duration
	}{
		{"at-cap-full-jitter", RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond, Jitter: 1}, 10, 400 * time.Millisecond},
		{"at-cap-default-jitter", RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}, 6, 400 * time.Millisecond},
		{"base-equals-cap", RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Second, Jitter: 0.5}, 1, time.Second},
		{"below-cap", RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Hour, Jitter: 1}, 2, 40 * time.Millisecond},
		{"default-cap", RetryPolicy{Jitter: 1}, 30, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if d := tc.p.Backoff(tc.attempt); d > tc.max {
				t.Errorf("Backoff(%d) = %v, exceeds cap %v", tc.attempt, d, tc.max)
			}
		})
	}
	// Jitter still spreads waits below the cap.
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Hour, Jitter: 1}
	if p.Backoff(1) == p.Backoff(2)/2 && p.Backoff(2) == p.Backoff(3)/2 {
		t.Error("jitter appears disabled: waits are exactly exponential")
	}
}

func TestRetrySleepCancelled(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := p.Sleep(ctx, 1)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("Sleep on cancelled ctx: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep did not return promptly on cancellation")
	}
}

func TestCancelledPreservesCause(t *testing.T) {
	cause := errors.New("deadline blown")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := Cancelled(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("Cancelled() = %v, want ErrCancelled", err)
	}
	if !strings.Contains(err.Error(), cause.Error()) {
		t.Errorf("cause lost: %v", err)
	}
}

func TestLedgerRecordReplay(t *testing.T) {
	l := NewLedger()
	if _, ok := l.Outputs(1); ok {
		t.Error("empty ledger claims outputs")
	}
	if got := l.BeginAttempt(1); got != 1 {
		t.Errorf("first attempt = %d", got)
	}
	if got := l.BeginAttempt(1); got != 2 {
		t.Errorf("second attempt = %d", got)
	}
	l.Record(1, [][]byte{[]byte("a"), []byte("b")})
	outs, ok := l.Outputs(1)
	if !ok || len(outs) != 2 || string(outs[0]) != "a" {
		t.Errorf("Outputs = %v, %v", outs, ok)
	}
	l.CountReplay()
	if l.Replays() != 1 || l.Executions() != 2 || l.Completed() != 1 || l.Attempts(1) != 2 {
		t.Errorf("counters: replays=%d execs=%d completed=%d attempts=%d",
			l.Replays(), l.Executions(), l.Completed(), l.Attempts(1))
	}
}

// fakeStore is an in-memory LedgerStore for cache/spill tests (the real
// disk-backed implementation lives in internal/journal, which core cannot
// import).
type fakeStore struct {
	mu      sync.Mutex
	recs    map[TaskId][][]byte
	appends int
	gets    int
	failApp bool
}

func newFakeStore() *fakeStore { return &fakeStore{recs: make(map[TaskId][][]byte)} }

func (s *fakeStore) Append(id TaskId, outs [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appends++
	if s.failApp {
		return errors.New("fake store: append failed")
	}
	cp := make([][]byte, len(outs))
	for i, o := range outs {
		cp[i] = append([]byte(nil), o...)
	}
	s.recs[id] = cp
	return nil
}

func (s *fakeStore) Get(id TaskId) ([][]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	outs, ok := s.recs[id]
	if !ok {
		return nil, false, nil
	}
	cp := make([][]byte, len(outs))
	for i, o := range outs {
		cp[i] = append([]byte(nil), o...)
	}
	return cp, true, nil
}

func (s *fakeStore) TaskIds() []TaskId {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]TaskId, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	return ids
}

func (s *fakeStore) Sync() error  { return nil }
func (s *fakeStore) Close() error { return nil }

func TestLedgerBackedSpillsToStore(t *testing.T) {
	st := newFakeStore()
	l := NewLedgerBacked(st, 4)
	const n = 20
	for id := TaskId(0); id < n; id++ {
		l.Record(id, [][]byte{{byte(id)}})
	}
	if c := l.Cached(); c > 4 {
		t.Errorf("cache holds %d entries, limit 4", c)
	}
	if l.Completed() != n {
		t.Errorf("Completed = %d, want %d (spilled entries must still count)", l.Completed(), n)
	}
	// Every entry — cached or spilled — is still replayable.
	for id := TaskId(0); id < n; id++ {
		outs, ok := l.Outputs(id)
		if !ok || len(outs) != 1 || outs[0][0] != byte(id) {
			t.Fatalf("task %d: outs=%v ok=%v", id, outs, ok)
		}
	}
	if st.gets == 0 {
		t.Error("no store reads: nothing actually spilled")
	}
	if st.appends != n {
		t.Errorf("store saw %d appends, want %d", st.appends, n)
	}
}

func TestLedgerBackedRestores(t *testing.T) {
	st := newFakeStore()
	prior := NewLedgerBacked(st, 8)
	for id := TaskId(0); id < 5; id++ {
		prior.Record(id, [][]byte{{0xA0 + byte(id)}})
	}
	// A "restarted run" opens a fresh ledger over the same store.
	l := NewLedgerBacked(st, 8)
	if l.Restored() != 5 {
		t.Fatalf("Restored = %d, want 5", l.Restored())
	}
	if l.Completed() != 5 {
		t.Fatalf("Completed = %d, want 5", l.Completed())
	}
	for id := TaskId(0); id < 5; id++ {
		outs, ok := l.Outputs(id)
		if !ok || outs[0][0] != 0xA0+byte(id) {
			t.Fatalf("restored task %d: outs=%v ok=%v", id, outs, ok)
		}
	}
	if _, ok := l.Outputs(99); ok {
		t.Error("never-journaled task replayable after restore")
	}
}

func TestLedgerBackedPinsOnStoreFailure(t *testing.T) {
	st := newFakeStore()
	st.failApp = true
	l := NewLedgerBacked(st, 2)
	const n = 10
	for id := TaskId(0); id < n; id++ {
		l.Record(id, [][]byte{{byte(id)}})
	}
	if l.StoreErrors() != n {
		t.Errorf("StoreErrors = %d, want %d", l.StoreErrors(), n)
	}
	// Unpersisted entries are pinned: evicting them would lose outputs.
	for id := TaskId(0); id < n; id++ {
		if outs, ok := l.Outputs(id); !ok || outs[0][0] != byte(id) {
			t.Fatalf("task %d lost after store failure (ok=%v)", id, ok)
		}
	}
	if l.Completed() != n {
		t.Errorf("Completed = %d, want %d", l.Completed(), n)
	}
}

// reassignGraph builds a 8-task chainless graph for map tests.
func reassignGraph() *ExplicitGraph {
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Id: TaskId(i), Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{}}}
	}
	return NewExplicitGraph(tasks)
}

func TestReassignShards(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	// Kill shard 2: survivors 0,1,3 become logical 0,1,2.
	next, err := ReassignShards(g, m, []ShardId{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if next.ShardCount() != 3 {
		t.Fatalf("shard count = %d", next.ShardCount())
	}
	logical := map[ShardId]ShardId{0: 0, 1: 1, 3: 2}
	orphans := 0
	for _, id := range g.TaskIds() {
		old := m.Shard(id)
		got := next.Shard(id)
		if got < 0 || got >= 3 {
			t.Fatalf("task %d mapped to shard %d of 3", id, got)
		}
		if want, survived := logical[old]; survived {
			if got != want {
				t.Errorf("task %d: survivor shard %d renumbered to %d, want %d", id, old, got, want)
			}
		} else {
			orphans++
		}
	}
	if orphans == 0 {
		t.Error("graph map put no task on the killed shard; test is vacuous")
	}
}

// TestReassignShardsLosesHighestRank kills the top shard: no survivor moves,
// and every orphan lands on a valid logical shard.
func TestReassignShardsLosesHighestRank(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	next, err := ReassignShards(g, m, []ShardId{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if next.ShardCount() != 3 {
		t.Fatalf("shard count = %d", next.ShardCount())
	}
	orphans := 0
	for _, id := range g.TaskIds() {
		old, got := m.Shard(id), next.Shard(id)
		switch {
		case old <= 2 && got != old:
			// Survivors 0..2 keep their own numbers (identity renumbering),
			// so their ledgers stay valid without translation.
			t.Errorf("task %d moved from surviving shard %d to %d", id, old, got)
		case old == 3:
			orphans++
			if got < 0 || got > 2 {
				t.Errorf("orphan task %d on shard %d", id, got)
			}
		}
	}
	if orphans == 0 {
		t.Fatal("no task lived on the killed shard; test is vacuous")
	}
}

// TestReassignShardsSuccessiveLosses chains two epochs of loss, 4 → 3 → 2,
// as RunRecover does: the second reassignment starts from the first's map.
func TestReassignShardsSuccessiveLosses(t *testing.T) {
	g := reassignGraph()
	m0 := NewGraphMap(4, g)
	m1, err := ReassignShards(g, m0, []ShardId{0, 2, 3}) // lose shard 1
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 2 loses logical shard 2 (originally 3) of the reassigned map.
	m2, err := ReassignShards(g, m1, []ShardId{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ShardCount() != 2 {
		t.Fatalf("shard count after two losses = %d", m2.ShardCount())
	}
	counts := map[ShardId]int{}
	for _, id := range g.TaskIds() {
		got := m2.Shard(id)
		if got != 0 && got != 1 {
			t.Fatalf("task %d on shard %d of 2", id, got)
		}
		counts[got]++
		// Tasks that survived both epochs on logical shards 0/1 never move.
		if prev := m1.Shard(id); prev <= 1 && got != prev {
			t.Errorf("task %d moved from twice-surviving shard %d to %d", id, prev, got)
		}
	}
	if len(g.TaskIds()) != counts[0]+counts[1] {
		t.Errorf("tasks lost in reassignment: %v", counts)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("round-robin left a survivor idle: %v", counts)
	}
}

// TestReassignShardsSingleSurvivor degrades 4 → 1: the survivor owns the
// entire graph.
func TestReassignShardsSingleSurvivor(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	for _, last := range []ShardId{0, 3} {
		next, err := ReassignShards(g, m, []ShardId{last})
		if err != nil {
			t.Fatalf("survivor %d: %v", last, err)
		}
		if next.ShardCount() != 1 {
			t.Fatalf("survivor %d: shard count = %d", last, next.ShardCount())
		}
		for _, id := range g.TaskIds() {
			if got := next.Shard(id); got != 0 {
				t.Errorf("survivor %d: task %d on shard %d, want 0", last, id, got)
			}
		}
	}
}

func TestReassignShardsRejectsBadAlive(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	if _, err := ReassignShards(g, m, nil); err == nil {
		t.Error("empty alive set accepted")
	}
	if _, err := ReassignShards(g, m, []ShardId{1, 1}); err == nil {
		t.Error("duplicate alive shard accepted")
	}
}

// roleGraph is a minimal RoledGraph for registration tests.
type roleGraph struct {
	*ExplicitGraph
}

func (roleGraph) CallbackRoles() map[Role]CallbackId {
	return map[Role]CallbackId{RoleLeaf: 0, RoleRoot: 1}
}

func newRoleGraph() roleGraph {
	return roleGraph{NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{}}},
	})}
}

func passCB(in []Payload, id TaskId) ([]Payload, error) {
	return []Payload{Buffer([]byte{byte(id)})}, nil
}

func TestRegisterCallbacksByRole(t *testing.T) {
	g := newRoleGraph()
	ser := NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	if err := RegisterCallbacks(ser, g, map[Role]Callback{
		RoleLeaf: passCB,
		RoleRoot: passCB,
	}); err != nil {
		t.Fatal(err)
	}
	out, err := ser.Run(map[TaskId][]Payload{0: {Buffer([]byte{9})}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("sinks = %d", len(out))
	}
}

func TestRegisterCallbacksErrors(t *testing.T) {
	g := newRoleGraph()
	ser := NewSerial()
	ser.Initialize(g, nil)

	err := RegisterCallbacks(ser, g, map[Role]Callback{RoleLeaf: passCB})
	if err == nil || !strings.Contains(err.Error(), "no callback for role") || !strings.Contains(err.Error(), "root") {
		t.Errorf("missing role error = %v", err)
	}
	err = RegisterCallbacks(ser, g, map[Role]Callback{
		RoleLeaf: passCB, RoleRoot: passCB, RoleRelay: passCB,
	})
	if err == nil || !strings.Contains(err.Error(), "no role") || !strings.Contains(err.Error(), "relay") {
		t.Errorf("unknown role error = %v", err)
	}
	err = RegisterCallbacks(ser, g.ExplicitGraph, map[Role]Callback{RoleLeaf: passCB})
	if err == nil || !strings.Contains(err.Error(), "does not name callback roles") {
		t.Errorf("unroled graph error = %v", err)
	}
}
