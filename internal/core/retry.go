package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Typed errors of the fault-tolerance layer.
var (
	// ErrCancelled marks a run aborted by context cancellation or deadline
	// expiry: RunContext wraps the context's cause so callers can test with
	// errors.Is(err, ErrCancelled) regardless of the controller.
	ErrCancelled = errors.New("core: run cancelled")
	// ErrRetriesExhausted marks a recovering run that failed on every attempt
	// the retry policy allowed.
	ErrRetriesExhausted = errors.New("core: retries exhausted")
)

// Cancelled returns the typed cancellation error for a context that ended,
// preserving the cancellation cause for diagnostics.
func Cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %v", ErrCancelled, context.Cause(ctx))
}

// RetryPolicy bounds fault-tolerant re-execution: how many attempts a
// dataflow gets, how long to back off between attempts, and how long any
// single attempt may run. The zero value selects the defaults documented on
// each field; obtain the resolved form with WithDefaults.
//
// The same policy governs both levels of retry: transport-level redelivery
// (a lost peer triggers a new epoch) and task re-execution (the recovery
// epoch re-runs the undelivered frontier) — per the paper's idempotence
// contract the runtime may re-execute tasks at will, so no checkpoint is
// needed beyond the lineage ledger.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts, counting the
	// first (non-retry) one. Zero selects 3.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; successive retries
	// back off exponentially. Zero selects 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero selects 2s.
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff added as deterministic jitter
	// (hashed from the attempt number, so runs are reproducible). Negative
	// disables jitter; zero selects 0.2. Values are clamped to [0, 1].
	Jitter float64
	// AttemptTimeout bounds one attempt's wall clock; an attempt that
	// exceeds it is cancelled (a typed ErrCancelled) and counts as failed.
	// Zero means no per-attempt deadline.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy returns the resolved default policy.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{}.WithDefaults() }

// WithDefaults returns the policy with zero fields replaced by defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Backoff returns the wait before retry number attempt (1 = the wait after
// the first failed attempt): BaseBackoff * 2^(attempt-1) plus deterministic
// jitter derived from the attempt number (so repeated runs are
// byte-for-byte reproducible), with the final value — jitter included —
// capped at MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.WithDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		// splitmix64 of the attempt number: deterministic, well spread.
		z := uint64(attempt) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		frac := float64(z%1000) / 1000.0
		d += time.Duration(float64(d) * p.Jitter * frac)
	}
	// MaxBackoff is a hard cap: jitter must not push past it, or retry
	// storms after long outages wait longer than the documented bound.
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Sleep waits the policy's backoff before the given retry, returning early
// with a typed ErrCancelled when the context ends first.
func (p RetryPolicy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return Cancelled(ctx)
	case <-t.C:
		return nil
	}
}
