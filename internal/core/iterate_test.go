package core

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

const cbCount CallbackId = 7

// counterBody is the smallest loop body: one task with one external input
// and one sink output.
func counterBody(t *testing.T) *ExplicitGraph {
	t.Helper()
	g := NewExplicitGraph([]Task{{
		Id:       0,
		Callback: cbCount,
		Incoming: []TaskId{ExternalInput},
		Outgoing: [][]TaskId{nil},
	}})
	if err := Validate(g); err != nil {
		t.Fatalf("body invalid: %v", err)
	}
	return g
}

func u32(v uint32) Payload {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return Buffer(b)
}

func u32of(t *testing.T, p Payload) uint32 {
	t.Helper()
	if len(p.Data) != 4 {
		t.Fatalf("payload is not a u32: %v", p)
	}
	return binary.LittleEndian.Uint32(p.Data)
}

// incr adds one to a little-endian u32 payload.
func incr(in []Payload, _ TaskId) ([]Payload, error) {
	v := binary.LittleEndian.Uint32(in[0].Data)
	return []Payload{u32(v + 1)}, nil
}

func runIterative(t *testing.T, ig *IterativeGraph, initial map[TaskId][]Payload, cbs map[CallbackId]Callback) map[TaskId][]Payload {
	t.Helper()
	s := NewSerial()
	if err := s.Initialize(ig, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range cbs {
		if err := s.RegisterCallback(cb, fn); err != nil {
			t.Fatal(err)
		}
	}
	if err := ig.RegisterDecision(s); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIterateConvergesSerially(t *testing.T) {
	body := counterBody(t)
	pred := func(iter int, sinks map[TaskId][]Payload) (bool, error) {
		return binary.LittleEndian.Uint32(sinks[0][0].Data) >= 3, nil
	}
	ig, err := Iterate(body, pred, MaxIterations(8), Gate(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := runIterative(t, ig, map[TaskId][]Payload{0: {u32(0)}}, map[CallbackId]Callback{cbCount: incr})

	iter, sinks, err := ig.Final(res)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 2 {
		t.Fatalf("converged at iteration %d, want 2", iter)
	}
	if got := u32of(t, sinks[0][0]); got != 3 {
		t.Fatalf("converged value %d, want 3", got)
	}
	// Dead tokens never surface as results.
	for id, ps := range res {
		for _, p := range ps {
			if IsDead(p) {
				t.Fatalf("dead token leaked into results of task %d", id)
			}
		}
	}
}

func TestIterateMaxIterationsBound(t *testing.T) {
	body := counterBody(t)
	never := func(int, map[TaskId][]Payload) (bool, error) { return false, nil }
	ig, err := Iterate(body, never, MaxIterations(4), Gate(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := runIterative(t, ig, map[TaskId][]Payload{0: {u32(0)}}, map[CallbackId]Callback{cbCount: incr})
	iter, sinks, err := ig.Final(res)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 3 {
		t.Fatalf("bound drain at iteration %d, want 3", iter)
	}
	if got := u32of(t, sinks[0][0]); got != 4 {
		t.Fatalf("drained value %d, want 4 (all iterations ran)", got)
	}
}

func TestIterateUnrollStructure(t *testing.T) {
	body := counterBody(t)
	never := func(int, map[TaskId][]Payload) (bool, error) { return false, nil }
	const M = 5
	ig, err := Iterate(body, never, MaxIterations(M), Gate(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ig.Size(), M*(body.Size()+1); got != want {
		t.Fatalf("unrolled size %d, want %d (body+decision per iteration)", got, want)
	}
	if ig.MaxIter() != M {
		t.Fatalf("MaxIter %d, want %d", ig.MaxIter(), M)
	}
	for k := 0; k < M; k++ {
		bt, ok := ig.Task(IterId(k, 0))
		if !ok {
			t.Fatalf("iteration %d body copy missing", k)
		}
		if IterOf(bt.Id) != k || BodyId(bt.Id) != 0 {
			t.Fatalf("iteration %d body id decodes to (iter %d, body %d)", k, IterOf(bt.Id), BodyId(bt.Id))
		}
		d, ok := ig.Task(DecisionId(k))
		if !ok {
			t.Fatalf("iteration %d decision task missing", k)
		}
		if !IsDecision(d.Id) {
			t.Fatalf("decision id %d not recognized", d.Id)
		}
		if k < M-1 {
			if d.Branches != 2 || len(d.Cond) != 2 {
				t.Fatalf("decision %d: branches %d, cond %v — want a 2-branch conditional", k, d.Branches, d.Cond)
			}
		} else if d.Branches != 0 {
			t.Fatalf("final decision is conditional; it must drain unconditionally")
		}
	}
	// Iteration 1's body input is gated through decision 0, not external.
	bt, _ := ig.Task(IterId(1, 0))
	if bt.Incoming[0] != DecisionId(0) {
		t.Fatalf("iteration 1 input wired to %d, want decision %d", bt.Incoming[0], DecisionId(0))
	}
}

func TestIterateCarryFeedsNextIteration(t *testing.T) {
	// Body: task 0 consumes a carried config and a gated value, emits both.
	g := NewExplicitGraph([]Task{{
		Id:       0,
		Callback: cbCount,
		Incoming: []TaskId{ExternalInput, ExternalInput},
		Outgoing: [][]TaskId{nil, nil},
	}})
	add := func(in []Payload, _ TaskId) ([]Payload, error) {
		cfg := binary.LittleEndian.Uint32(in[0].Data)
		v := binary.LittleEndian.Uint32(in[1].Data)
		return []Payload{u32(cfg), u32(v + cfg)}, nil
	}
	pred := func(iter int, sinks map[TaskId][]Payload) (bool, error) {
		return binary.LittleEndian.Uint32(sinks[0][0].Data) >= 10, nil
	}
	ig, err := Iterate(g, pred, MaxIterations(8),
		Carry(0, 0, 0, 0), // config loops around unchanged
		Gate(0, 1, 0, 1))  // accumulator is what converges
	if err != nil {
		t.Fatal(err)
	}
	res := runIterative(t, ig, map[TaskId][]Payload{0: {u32(5), u32(0)}}, map[CallbackId]Callback{cbCount: add})
	iter, sinks, err := ig.Final(res)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 1 {
		t.Fatalf("converged at iteration %d, want 1 (0+5=5, 5+5=10)", iter)
	}
	if got := u32of(t, sinks[0][0]); got != 10 {
		t.Fatalf("converged accumulator %d, want 10", got)
	}
}

func TestIterateRejectsBadConfigurations(t *testing.T) {
	body := counterBody(t)
	never := func(int, map[TaskId][]Payload) (bool, error) { return false, nil }
	cases := []struct {
		name string
		body TaskGraph
		pred ConvergencePredicate
		opts []IterOption
		want string
	}{
		{"nil body", nil, never, nil, "nil body"},
		{"nil predicate", body, nil, []IterOption{Gate(0, 0, 0, 0)}, "predicate"},
		{"no gates", body, never, nil, "at least one Gate"},
		{"zero max", body, never, []IterOption{Gate(0, 0, 0, 0), MaxIterations(0)}, "out of range"},
		{"excess max", body, never, []IterOption{Gate(0, 0, 0, 0), MaxIterations(400)}, "out of range"},
		{"unknown source", body, never, []IterOption{Gate(9, 0, 0, 0)}, "unknown body task"},
		{"unknown slot", body, never, []IterOption{Gate(0, 3, 0, 0)}, "no output slot"},
		{"unknown target slot", body, never, []IterOption{Gate(0, 0, 0, 5)}, "no input slot"},
		{"double binding", body, never, []IterOption{Gate(0, 0, 0, 0), Carry(0, 0, 0, 0)}, "both gate and carry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Iterate(tc.body, tc.pred, tc.opts...)
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Uncovered external input.
	two := NewExplicitGraph([]Task{{
		Id: 0, Callback: cbCount,
		Incoming: []TaskId{ExternalInput, ExternalInput},
		Outgoing: [][]TaskId{nil},
	}})
	if _, err := Iterate(two, never, Gate(0, 0, 0, 0)); err == nil || !strings.Contains(err.Error(), "no Gate/Carry feeds it") {
		t.Fatalf("uncovered external input accepted: %v", err)
	}
}

func TestIterativeMapIsIterationStable(t *testing.T) {
	body := counterBody(t)
	never := func(int, map[TaskId][]Payload) (bool, error) { return false, nil }
	ig, err := Iterate(body, never, MaxIterations(6), Gate(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	m := NewIterativeMap(4, ig)
	want := m.Shard(IterId(0, 0))
	for k := 1; k < 6; k++ {
		if got := m.Shard(IterId(k, 0)); got != want {
			t.Fatalf("body task moved from shard %d to %d at iteration %d", want, got, k)
		}
	}
	for _, id := range ig.TaskIds() {
		if s := m.Shard(id); s < 0 || s >= 4 {
			t.Fatalf("task %d mapped to out-of-range shard %d", id, s)
		}
	}
}

func TestDeadTokenHelpers(t *testing.T) {
	d := DeadToken()
	if !IsDead(d) {
		t.Fatal("DeadToken not recognized by IsDead")
	}
	if IsDead(u32(7)) || IsDead(Buffer(nil)) || IsDead(Object(42)) {
		t.Fatal("live payload classified dead")
	}
	// A wire round-trip must preserve deadness.
	w, err := d.WireForm()
	if err != nil {
		t.Fatal(err)
	}
	if !IsDead(w.Own()) {
		t.Fatal("dead token lost its identity across the wire form")
	}
}

func TestSelectBranchAndCancelDead(t *testing.T) {
	task := Task{
		Id:       1,
		Outgoing: [][]TaskId{{2}, {3}, {4}},
		Cond:     []int{0, 1, -1},
		Branches: 2,
	}
	out, err := SelectBranch(task, 0, []Payload{u32(1), u32(2), u32(3)})
	if err != nil {
		t.Fatal(err)
	}
	if IsDead(out[0]) || !IsDead(out[1]) || IsDead(out[2]) {
		t.Fatalf("branch 0: slot liveness wrong: %v", out)
	}
	if _, err := SelectBranch(task, 5, []Payload{u32(1), u32(2), u32(3)}); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
	if _, err := SelectBranch(Task{Id: 9, Outgoing: [][]TaskId{nil}}, 0, []Payload{u32(1)}); err == nil {
		t.Fatal("SelectBranch on unconditional task accepted")
	}

	dead, cancelled := CancelDead(task, []Payload{u32(1), DeadToken()})
	if !cancelled {
		t.Fatal("dead input did not cancel")
	}
	if len(dead) != 3 {
		t.Fatalf("cancelled task emitted %d outputs, want 3", len(dead))
	}
	for _, p := range dead {
		if !IsDead(p) {
			t.Fatal("cancelled output is live")
		}
	}
	if _, cancelled := CancelDead(task, []Payload{u32(1), u32(2)}); cancelled {
		t.Fatal("live inputs cancelled")
	}
}

// TestSerialConditionalBranch runs a two-branch router through the serial
// controller: only the chosen branch's consumer executes, the other is
// cancelled and its sink drops.
func TestSerialConditionalBranch(t *testing.T) {
	const (
		cbRoute CallbackId = 1
		cbSide  CallbackId = 2
	)
	router := Task{
		Id: 0, Callback: cbRoute,
		Incoming: []TaskId{ExternalInput},
		Outgoing: [][]TaskId{{1}, {2}},
		Cond:     []int{0, 1},
		Branches: 2,
	}
	left := Task{Id: 1, Callback: cbSide, Incoming: []TaskId{0}, Outgoing: [][]TaskId{nil}}
	right := Task{Id: 2, Callback: cbSide, Incoming: []TaskId{0}, Outgoing: [][]TaskId{nil}}
	g := NewExplicitGraph([]Task{router, left, right})

	for _, branch := range []int{0, 1} {
		s := NewSerial()
		if err := s.Initialize(g, nil); err != nil {
			t.Fatal(err)
		}
		log := NewExecutionLog()
		s.Observer = log
		br := branch
		s.RegisterCallback(cbRoute, func(in []Payload, id TaskId) ([]Payload, error) {
			tk, _ := g.Task(id)
			return SelectBranch(tk, br, []Payload{u32(10), u32(20)})
		})
		s.RegisterCallback(cbSide, func(in []Payload, _ TaskId) ([]Payload, error) {
			return []Payload{in[0]}, nil
		})
		res, err := s.Run(map[TaskId][]Payload{0: {u32(0)}})
		if err != nil {
			t.Fatal(err)
		}
		want, loser := TaskId(1), TaskId(2)
		if branch == 1 {
			want, loser = 2, 1
		}
		if len(res[want]) != 1 || len(res[loser]) != 0 {
			t.Fatalf("branch %d: results %v, want only task %d live", branch, res, want)
		}
		if log.Executions(loser) != 0 {
			t.Fatalf("branch %d: cancelled task %d fired the observer", branch, loser)
		}
		if log.Executions(want) != 1 {
			t.Fatalf("branch %d: live task %d executed %d times", branch, want, log.Executions(want))
		}
	}
}

func TestValidateCycleErrorCitesPath(t *testing.T) {
	// 0 -> 1 -> 2 -> 0
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 1, Incoming: []TaskId{2}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 1, Incoming: []TaskId{1}, Outgoing: [][]TaskId{{0}}},
	})
	err := Validate(g)
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("cycle produced %T (%v), want *CycleError", err, err)
	}
	if len(ce.Path) < 4 || ce.Path[0] != ce.Path[len(ce.Path)-1] {
		t.Fatalf("cycle path %v does not close", ce.Path)
	}
	// Each step must be a real dataflow edge.
	for i := 0; i+1 < len(ce.Path); i++ {
		pt, _ := g.Task(ce.Path[i])
		if !taskLists(pt.Outgoing, ce.Path[i+1]) {
			t.Fatalf("cycle path step %d -> %d is not an edge", ce.Path[i], ce.Path[i+1])
		}
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle error text %q lost the keyword", err)
	}
}

func TestValidateCondErrors(t *testing.T) {
	base := func() []Task {
		return []Task{
			{Id: 0, Callback: 1, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {2}}},
			{Id: 1, Callback: 1, Incoming: []TaskId{0}, Outgoing: [][]TaskId{nil}},
			{Id: 2, Callback: 1, Incoming: []TaskId{0}, Outgoing: [][]TaskId{nil}},
		}
	}
	cases := []struct {
		name   string
		mut    func(ts []Task)
		slot   int
		branch int
		reason string
	}{
		{"branches without cond", func(ts []Task) { ts[0].Branches = 2 }, -1, -1, "no Cond"},
		{"cond without branches", func(ts []Task) { ts[0].Cond = []int{0, 1} }, -1, -1, "Branches is 0"},
		{"length mismatch", func(ts []Task) { ts[0].Branches = 1; ts[0].Cond = []int{0} }, -1, -1, "entries"},
		{"branch out of range", func(ts []Task) { ts[0].Branches = 2; ts[0].Cond = []int{0, 7} }, 1, 7, "out of range"},
		{"dangling branch", func(ts []Task) { ts[0].Branches = 3; ts[0].Cond = []int{0, 1} }, -1, 2, "dangling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := base()
			tc.mut(ts)
			err := Validate(NewExplicitGraph(ts))
			var ce *CondError
			if !errors.As(err, &ce) {
				t.Fatalf("got %T (%v), want *CondError", err, err)
			}
			if ce.Id != 0 {
				t.Fatalf("error cites task %d, want 0", ce.Id)
			}
			if ce.Slot != tc.slot || ce.Branch != tc.branch {
				t.Fatalf("error cites (slot %d, branch %d), want (%d, %d)", ce.Slot, ce.Branch, tc.slot, tc.branch)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Fatalf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
	ts := base()
	ts[0].Branches = 2
	ts[0].Cond = []int{0, 1}
	if err := Validate(NewExplicitGraph(ts)); err != nil {
		t.Fatalf("well-formed conditional rejected: %v", err)
	}
}
