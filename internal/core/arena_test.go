package core

import "testing"

func TestArenaClassBounds(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1},
		{-5, -1},
		{1, arenaMinBits},
		{64, arenaMinBits},
		{65, 7},
		{100, 7},
		{128, 7},
		{129, 8},
		{1 << 22, arenaMaxBits},
		{1<<22 + 1, -1},
	}
	for _, c := range cases {
		if got := arenaClass(c.n); got != c.want {
			t.Errorf("arenaClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGrabBufferLengthAndCapacity(t *testing.T) {
	b := GrabBuffer(100)
	if len(b) != 100 {
		t.Fatalf("len = %d", len(b))
	}
	if cap(b) < 128 {
		t.Errorf("cap = %d, want at least the class size 128", cap(b))
	}
	// Outside the pooled range: a plain allocation of the exact size.
	big := GrabBuffer(1<<22 + 1)
	if len(big) != 1<<22+1 {
		t.Fatalf("len = %d", len(big))
	}
	if z := GrabBuffer(0); len(z) != 0 {
		t.Fatalf("GrabBuffer(0) len = %d", len(z))
	}
}

func TestArenaRoundTrip(t *testing.T) {
	b := GrabBuffer(1024)
	b[0] = 0xAB
	ptr := &b[0]
	ReleaseBuffer(b)
	g := GrabBuffer(1024)
	if &g[0] != ptr {
		t.Skip("pool did not return the donated buffer (GC or scheduling); nothing to assert")
	}
	if len(g) != 1024 {
		t.Errorf("len = %d after round trip", len(g))
	}
}

// TestArenaFloorsDonatedCapacity: a donated buffer whose capacity is not a
// power of two lands in the largest class it fully covers, so a Grab from
// that class can reslice to the nominal class size safely.
func TestArenaFloorsDonatedCapacity(t *testing.T) {
	raw := make([]byte, 100) // cap 100: covers class 6 (64), not class 7 (128)
	ptr := &raw[0]
	ReleaseBuffer(raw)
	g := GrabBuffer(64)
	if &g[0] != ptr {
		t.Skip("pool did not return the donated buffer; nothing to assert")
	}
	if cap(g) < 64 {
		t.Errorf("cap = %d, want >= 64", cap(g))
	}
}

func TestReleaseBufferIgnoresOutOfRange(t *testing.T) {
	ReleaseBuffer(nil)              // must not panic
	ReleaseBuffer(make([]byte, 0))  // zero capacity
	ReleaseBuffer(make([]byte, 10)) // below the minimum class
}
