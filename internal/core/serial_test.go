package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

// sumToSlots returns a callback that sums its uint64 inputs and fans the
// result to n output slots.
func sumToSlots(n int) Callback {
	return func(in []Payload, id TaskId) ([]Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += binary.LittleEndian.Uint64(p.Data)
		}
		out := make([]Payload, n)
		for i := range out {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, sum)
			out[i] = Buffer(b)
		}
		return out, nil
	}
}

func u64(v uint64) Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return Buffer(b)
}

func TestSerialDiamondComputesSum(t *testing.T) {
	g := diamondGraph()
	s := NewSerial()
	if err := s.Initialize(g, nil); err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	for _, cb := range g.Callbacks() {
		if err := s.RegisterCallback(cb, sumToSlots(1)); err != nil {
			t.Fatalf("RegisterCallback: %v", err)
		}
	}
	out, err := s.Run(map[TaskId][]Payload{0: {u64(3)}, 1: {u64(4)}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 3+4=7 at task 2, fans to 3 and 4 (each 7), 5 sums to 14.
	res, ok := out[5]
	if !ok || len(res) != 1 {
		t.Fatalf("results = %v", out)
	}
	if got := binary.LittleEndian.Uint64(res[0].Data); got != 14 {
		t.Errorf("root sum = %d, want 14", got)
	}
}

func TestSerialExecutesEachTaskOnceInDependencyOrder(t *testing.T) {
	g := diamondGraph()
	s := NewSerial()
	log := NewExecutionLog()
	s.Observer = log
	if err := s.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for _, cb := range g.Callbacks() {
		s.RegisterCallback(cb, sumToSlots(1))
	}
	if _, err := s.Run(map[TaskId][]Payload{0: {u64(1)}, 1: {u64(1)}}); err != nil {
		t.Fatal(err)
	}
	if log.Len() != g.Size() {
		t.Fatalf("executed %d tasks, want %d", log.Len(), g.Size())
	}
	pos := make(map[TaskId]int)
	for i, id := range log.Order {
		pos[id] = i
	}
	for _, id := range g.TaskIds() {
		if log.Executions(id) != 1 {
			t.Errorf("task %d executed %d times", id, log.Executions(id))
		}
		task, _ := g.Task(id)
		for _, p := range task.Producers() {
			if pos[p] > pos[id] {
				t.Errorf("task %d ran before its producer %d", id, p)
			}
		}
	}
}

func TestSerialRunBeforeInitialize(t *testing.T) {
	s := NewSerial()
	if _, err := s.Run(nil); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("Run before Initialize = %v", err)
	}
	if err := s.RegisterCallback(0, sumToSlots(1)); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("RegisterCallback before Initialize = %v", err)
	}
}

func TestSerialMissingCallback(t *testing.T) {
	g := diamondGraph()
	s := NewSerial()
	s.Initialize(g, nil)
	s.RegisterCallback(0, sumToSlots(1)) // only one of four types
	if _, err := s.Run(map[TaskId][]Payload{0: {u64(1)}, 1: {u64(1)}}); !errors.Is(err, ErrUnregisteredCallback) {
		t.Errorf("Run with missing callbacks = %v", err)
	}
}

func TestSerialCallbackErrorPropagates(t *testing.T) {
	g := lineGraph(2)
	s := NewSerial()
	s.Initialize(g, nil)
	boom := errors.New("boom")
	s.RegisterCallback(0, func(in []Payload, id TaskId) ([]Payload, error) {
		if id == 1 {
			return nil, boom
		}
		return []Payload{Buffer([]byte{1})}, nil
	})
	if _, err := s.Run(map[TaskId][]Payload{0: {u64(1)}}); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestSerialWrongOutputArity(t *testing.T) {
	g := lineGraph(2)
	s := NewSerial()
	s.Initialize(g, nil)
	s.RegisterCallback(0, func(in []Payload, id TaskId) ([]Payload, error) {
		return nil, nil // task 0 must emit 1 output
	})
	if _, err := s.Run(map[TaskId][]Payload{0: {u64(1)}}); err == nil {
		t.Error("Run should reject wrong output arity")
	}
}

func TestSerialInvalidGraphRejectedAtInitialize(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{1}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{0}}},
	})
	s := NewSerial()
	if err := s.Initialize(g, nil); err == nil {
		t.Error("Initialize should reject cyclic graphs")
	}
}

func TestSerialFanOutDeliversCopies(t *testing.T) {
	// Task 2 fans one output slot to 3 and 4; both mutate their input.
	// With copy-on-fan-out both must observe the original value.
	g := diamondGraph()
	s := NewSerial()
	s.Initialize(g, nil)
	seen := make(map[TaskId]uint64)
	s.RegisterCallback(0, sumToSlots(1))
	s.RegisterCallback(1, sumToSlots(1))
	s.RegisterCallback(2, func(in []Payload, id TaskId) ([]Payload, error) {
		seen[id] = binary.LittleEndian.Uint64(in[0].Data)
		in[0].Data[0] = 0xFF // mutate owned input
		return []Payload{u64(seen[id])}, nil
	})
	s.RegisterCallback(3, sumToSlots(1))
	if _, err := s.Run(map[TaskId][]Payload{0: {u64(5)}, 1: {u64(6)}}); err != nil {
		t.Fatal(err)
	}
	if seen[3] != 11 || seen[4] != 11 {
		t.Errorf("fan-out consumers saw %d and %d, want 11 and 11", seen[3], seen[4])
	}
}

func TestDataflowStateDeliverSlots(t *testing.T) {
	// A consumer with two slots from the same producer fills them in order.
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0, 0}, Outgoing: [][]TaskId{{}}},
	})
	st := NewDataflowState(g)
	if st.Ready(1) {
		t.Error("task 1 ready before any delivery")
	}
	if err := st.Deliver(1, 0, Buffer([]byte{1})); err != nil {
		t.Fatal(err)
	}
	if st.Ready(1) {
		t.Error("task 1 ready after one of two inputs")
	}
	if err := st.Deliver(1, 0, Buffer([]byte{2})); err != nil {
		t.Fatal(err)
	}
	in, ok := st.Take(1)
	if !ok {
		t.Fatal("task 1 not ready after both inputs")
	}
	if in[0].Data[0] != 1 || in[1].Data[0] != 2 {
		t.Errorf("slots = %v, %v; want FIFO fill", in[0].Data, in[1].Data)
	}
}

func TestDataflowStateRejectsUnexpectedProducer(t *testing.T) {
	g := lineGraph(2)
	st := NewDataflowState(g)
	if err := st.Deliver(1, 99, Buffer(nil)); err == nil {
		t.Error("Deliver from unlisted producer should fail")
	}
	if err := st.Deliver(99, 0, Buffer(nil)); err == nil {
		t.Error("Deliver to unknown task should fail")
	}
	// Overfill: deliver twice from the same single-slot producer.
	if err := st.Deliver(1, 0, Buffer(nil)); err != nil {
		t.Fatal(err)
	}
	if err := st.Deliver(1, 0, Buffer(nil)); err == nil {
		t.Error("second delivery to a filled slot should fail")
	}
}

func TestDataflowStateTakeNotReady(t *testing.T) {
	g := lineGraph(2)
	st := NewDataflowState(g)
	if _, ok := st.Take(1); ok {
		t.Error("Take on not-ready task should report !ok")
	}
	if _, ok := st.Take(99); ok {
		t.Error("Take on unknown task should report !ok")
	}
}

// Property: a serial run over a random-length chain of +1 callbacks returns
// exactly length(chain) added to the seed.
func TestSerialChainProperty(t *testing.T) {
	inc := func(in []Payload, id TaskId) ([]Payload, error) {
		v := binary.LittleEndian.Uint64(in[0].Data)
		return []Payload{u64(v + 1)}, nil
	}
	check := func(n8, seed8 uint8) bool {
		n := int(n8%32) + 1
		seed := uint64(seed8)
		g := lineGraph(n)
		s := NewSerial()
		if err := s.Initialize(g, nil); err != nil {
			return false
		}
		s.RegisterCallback(0, inc)
		out, err := s.Run(map[TaskId][]Payload{0: {u64(seed)}})
		if err != nil {
			return false
		}
		res := out[TaskId(n-1)]
		return len(res) == 1 && binary.LittleEndian.Uint64(res[0].Data) == seed+uint64(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
