package core

import (
	"testing"
)

// diamond builds A -> B -> C with a side leaf L -> C.
func diamond() TaskGraph {
	return NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 0, Incoming: []TaskId{1, 3}, Outgoing: [][]TaskId{{}}},
		{Id: 3, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{2}}},
	})
}

func TestCriticalPathsChainWithLeaf(t *testing.T) {
	cp, err := ComputeCriticalPaths(diamond())
	if err != nil {
		t.Fatal(err)
	}
	// Depth: longest chain to a sink, task included.
	wantDepth := map[TaskId]int{0: 3, 1: 2, 2: 1, 3: 2}
	// Height: longest chain from a source, task included.
	wantHeight := map[TaskId]int{0: 1, 1: 2, 2: 3, 3: 1}
	// Slack: max - (height + depth - 1); only the side leaf is off-path.
	wantSlack := map[TaskId]int{0: 0, 1: 0, 2: 0, 3: 1}
	if cp.Max() != 3 {
		t.Errorf("Max = %d, want 3", cp.Max())
	}
	for id, d := range wantDepth {
		if got := cp.Depth(id); got != d {
			t.Errorf("Depth(%d) = %d, want %d", id, got, d)
		}
	}
	for id, h := range wantHeight {
		if got := cp.Height(id); got != h {
			t.Errorf("Height(%d) = %d, want %d", id, got, h)
		}
	}
	for id, s := range wantSlack {
		if got := cp.Slack(id); got != s {
			t.Errorf("Slack(%d) = %d, want %d", id, got, s)
		}
	}
	// Ids outside the graph have zero depth and full slack.
	if cp.Depth(99) != 0 || cp.Slack(99) != cp.Max() {
		t.Errorf("unknown id: depth %d slack %d", cp.Depth(99), cp.Slack(99))
	}
}

func TestCriticalPathsSingleTask(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 7, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{}}},
	})
	cp, err := ComputeCriticalPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Depth(7) != 1 || cp.Height(7) != 1 || cp.Max() != 1 || cp.Slack(7) != 0 {
		t.Errorf("singleton: depth %d height %d max %d slack %d", cp.Depth(7), cp.Height(7), cp.Max(), cp.Slack(7))
	}
}

func TestCriticalPathsFanOutCountsOnce(t *testing.T) {
	// One producer feeding the same consumer on two slots: the duplicated
	// edge must not inflate depths.
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0, 0}, Outgoing: [][]TaskId{{}}},
	})
	cp, err := ComputeCriticalPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Depth(0) != 2 || cp.Depth(1) != 1 || cp.Max() != 2 {
		t.Errorf("depths = %d,%d max %d", cp.Depth(0), cp.Depth(1), cp.Max())
	}
}

func TestCriticalPathsCycleFails(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{1}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{0}}},
	})
	if _, err := ComputeCriticalPaths(g); err == nil {
		t.Fatal("cycle must fail the analysis")
	}
}

func TestCriticalPathsForCaches(t *testing.T) {
	// Two structurally identical graphs built independently share one
	// analysis through the fingerprint cache.
	a, err := CriticalPathsFor(diamond())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CriticalPathsFor(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical graphs did not share the cached analysis")
	}
}
