// Package core implements the BabelFlow embedded domain-specific language:
// a runtime-independent description of a parallel algorithm as a graph of
// idempotent tasks connected by a dataflow.
//
// The three central abstractions follow the paper (Petruzza et al.,
// "BabelFlow: An Embedded Domain Specific Language for Parallel Analysis and
// Visualization", IPDPS 2018):
//
//   - TaskGraph: a procedural description of the algorithm. The graph is
//     never fully materialized; any part of the framework may query it for
//     the logical Task corresponding to a TaskId.
//   - TaskMap: an assignment of tasks to shards (ranks). Only the MPI and
//     some Legion controllers need it; Charm++ places tasks itself.
//   - Controller: executes a task graph on a particular runtime after the
//     user registers one Callback per task type.
//
// Payloads exchanged between tasks are either binary buffers or in-memory
// objects; controllers serialize objects only when a message crosses a shard
// boundary or fans out to several consumers.
package core

import (
	"fmt"
	"sort"
)

// TaskId is the globally unique identifier of a logical task. Id spaces do
// not have to be contiguous: composite graphs assign distinct prefixes to
// their sub-graphs and number tasks within each prefix.
type TaskId uint64

// ExternalInput is the reserved TaskId marking a dataflow input that is
// provided from outside the graph (simulation data, disk, the initial inputs
// passed to Controller.Run) rather than produced by another task.
const ExternalInput TaskId = ^TaskId(0)

// CallbackId identifies a task type. Each task in a graph carries a
// CallbackId; the user registers the corresponding Callback implementation
// with the controller before execution.
type CallbackId uint32

// ShardId identifies an execution shard: an MPI rank, a Charm++ processing
// element, or a Legion shard.
type ShardId int

// Task is the logical description of one unit of computation: its identity,
// which callback implements it, which tasks produce its inputs and which
// tasks consume its outputs.
//
// Incoming holds one producer per input slot, in slot order; ExternalInput
// marks slots fed by Controller.Run's initial inputs. Outgoing holds, for
// each output slot, the list of consumer tasks; an output slot with no
// consumers is a sink whose payloads are returned from Run.
type Task struct {
	Id       TaskId
	Callback CallbackId
	Incoming []TaskId
	Outgoing [][]TaskId

	// Cond, when non-nil, marks output slots as conditional: Cond[slot] is
	// the branch index (>= 0) the slot belongs to, or -1 for an
	// unconditional slot. At runtime the task's callback chooses the active
	// branch and fills every slot of the losing branches with a dead token
	// (SelectBranch); controllers cancel any downstream task that receives
	// one, so only the chosen branch's successors execute. Cond must have
	// exactly one entry per output slot and every branch in [0, Branches)
	// must own at least one slot.
	Cond []int
	// Branches is the number of runtime branches among the task's output
	// slots; 0 means the task has no conditional slots (Cond must be nil).
	Branches int
}

// NewTask returns a task with the given id and callback and no edges.
func NewTask(id TaskId, cb CallbackId) Task {
	return Task{Id: id, Callback: cb}
}

// InDegree reports the number of input slots of the task, counting external
// inputs.
func (t *Task) InDegree() int { return len(t.Incoming) }

// OutDegree reports the total number of consumer edges across all output
// slots.
func (t *Task) OutDegree() int {
	n := 0
	for _, slot := range t.Outgoing {
		n += len(slot)
	}
	return n
}

// IsLeaf reports whether every input slot of the task is fed externally.
// Leaf tasks are the entry points of the dataflow.
func (t *Task) IsLeaf() bool {
	if len(t.Incoming) == 0 {
		return true
	}
	for _, in := range t.Incoming {
		if in != ExternalInput {
			return false
		}
	}
	return true
}

// IsRoot reports whether the task has at least one sink output slot, i.e. an
// output with no consumers whose payloads leave the dataflow.
func (t *Task) IsRoot() bool {
	if len(t.Outgoing) == 0 {
		return true
	}
	for _, slot := range t.Outgoing {
		if len(slot) == 0 {
			return true
		}
	}
	return false
}

// Consumers returns the de-duplicated, sorted set of tasks consuming any
// output of the task.
func (t *Task) Consumers() []TaskId {
	seen := make(map[TaskId]struct{})
	for _, slot := range t.Outgoing {
		for _, c := range slot {
			seen[c] = struct{}{}
		}
	}
	out := make([]TaskId, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Producers returns the de-duplicated, sorted set of tasks producing any
// input of the task, excluding external inputs.
func (t *Task) Producers() []TaskId {
	seen := make(map[TaskId]struct{})
	for _, p := range t.Incoming {
		if p != ExternalInput {
			seen[p] = struct{}{}
		}
	}
	out := make([]TaskId, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the task.
func (t *Task) Clone() Task {
	c := Task{Id: t.Id, Callback: t.Callback}
	if t.Incoming != nil {
		c.Incoming = append([]TaskId(nil), t.Incoming...)
	}
	if t.Outgoing != nil {
		c.Outgoing = make([][]TaskId, len(t.Outgoing))
		for i, slot := range t.Outgoing {
			c.Outgoing[i] = append([]TaskId(nil), slot...)
		}
	}
	if t.Cond != nil {
		c.Cond = append([]int(nil), t.Cond...)
	}
	c.Branches = t.Branches
	return c
}

// String renders the task for debugging.
func (t Task) String() string {
	if t.Branches > 0 {
		return fmt.Sprintf("task %d (cb %d, in %v, out %v, cond %v/%d)", t.Id, t.Callback, t.Incoming, t.Outgoing, t.Cond, t.Branches)
	}
	return fmt.Sprintf("task %d (cb %d, in %v, out %v)", t.Id, t.Callback, t.Incoming, t.Outgoing)
}
