package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Callback is the implementation of one task type. It receives one payload
// per input slot (slot order matches Task.Incoming) and the id of the task
// being executed, and returns one payload per output slot (slot order
// matches Task.Outgoing).
//
// Callbacks must be idempotent and hold no persistent state: the framework
// guarantees each logical task runs exactly once per dataflow execution, but
// runtimes are free to execute tasks on any shard and in any order
// consistent with the dataflow.
type Callback func(inputs []Payload, id TaskId) ([]Payload, error)

// CallbackRegistrar is the subset of Controller needed to bind callback
// implementations. Besides full controllers, in-situ groups implement it.
type CallbackRegistrar interface {
	// RegisterCallback binds the implementation of a task type.
	RegisterCallback(cb CallbackId, fn Callback) error
}

// Controller executes a task graph on a particular runtime. All runtime
// controllers (MPI, Charm++, Legion SPMD, Legion index-launch, serial)
// implement this interface so switching between them is a one-line change.
type Controller interface {
	// Initialize binds the controller to a graph and a task map. Controllers
	// that place tasks themselves (Charm++) accept a nil map.
	Initialize(g TaskGraph, m TaskMap) error
	// RegisterCallback binds the implementation of a task type.
	RegisterCallback(cb CallbackId, fn Callback) error
	// Run feeds the initial external inputs to the leaf tasks, executes the
	// dataflow to completion and returns the payloads produced on sink
	// output slots, keyed by the producing task. It is RunContext with a
	// background context.
	Run(initial map[TaskId][]Payload) (map[TaskId][]Payload, error)
	// RunContext is Run with cancellation and deadline propagation: when the
	// context ends, worker pools stop picking up tasks, transports are
	// cancelled, and the call returns an error wrapping ErrCancelled (test
	// with errors.Is). Like Run, it blocks until the dataflow completes or
	// aborts.
	RunContext(ctx context.Context, initial map[TaskId][]Payload) (map[TaskId][]Payload, error)
}

// Sentinel errors shared by all controllers.
var (
	// ErrNotInitialized is returned when Run or RegisterCallback is called
	// before Initialize.
	ErrNotInitialized = errors.New("core: controller not initialized")
	// ErrNotSerializable is returned when an in-memory payload must cross a
	// shard boundary but its object does not implement Serializable.
	ErrNotSerializable = errors.New("core: payload object does not implement Serializable")
	// ErrUnregisteredCallback is returned when the graph references a task
	// type with no registered implementation.
	ErrUnregisteredCallback = errors.New("core: callback not registered")
)

// MapError reports an inconsistency between a task graph and a task map.
type MapError struct {
	Id    TaskId
	Shard ShardId
	Msg   string
}

// Error implements error.
func (e *MapError) Error() string {
	return fmt.Sprintf("core: task %d: %s (shard %d)", e.Id, e.Msg, e.Shard)
}

// Registry stores the callback implementations registered with a controller.
// It is safe for concurrent lookup after registration completes.
type Registry struct {
	mu  sync.RWMutex
	fns map[CallbackId]Callback
}

// NewRegistry returns an empty callback registry.
func NewRegistry() *Registry {
	return &Registry{fns: make(map[CallbackId]Callback)}
}

// Register binds fn to cb, replacing any previous binding.
func (r *Registry) Register(cb CallbackId, fn Callback) error {
	if fn == nil {
		return fmt.Errorf("core: nil callback for id %d", cb)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[cb] = fn
	return nil
}

// Lookup returns the implementation of cb.
func (r *Registry) Lookup(cb CallbackId) (Callback, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[cb]
	return fn, ok
}

// Covers checks that every task type of the graph has an implementation.
func (r *Registry) Covers(g TaskGraph) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, cb := range g.Callbacks() {
		if _, ok := r.fns[cb]; !ok {
			return fmt.Errorf("%w: callback %d", ErrUnregisteredCallback, cb)
		}
	}
	return nil
}

// SafeInvoke runs a callback and converts a panic into an error, so a
// failing task aborts the dataflow cleanly instead of tearing down the
// whole process — the paper's regression-testing role for the backends
// depends on failures being observable.
func SafeInvoke(fn Callback, in []Payload, id TaskId) (out []Payload, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("core: task %d panicked: %v", id, r)
		}
	}()
	return fn(in, id)
}

// CheckInitial verifies that the initial inputs passed to Run exactly cover
// the external input slots of the graph: every externally fed task receives
// exactly as many payloads as it has ExternalInput slots, and no payloads
// are addressed to tasks without external inputs.
func CheckInitial(g TaskGraph, initial map[TaskId][]Payload) error {
	for id, ps := range initial {
		t, ok := g.Task(id)
		if !ok {
			return fmt.Errorf("core: initial input for unknown task %d", id)
		}
		want := 0
		for _, in := range t.Incoming {
			if in == ExternalInput {
				want++
			}
		}
		if want == 0 {
			return fmt.Errorf("core: task %d has no external inputs but received %d initial payloads", id, len(ps))
		}
		if len(ps) != want {
			return fmt.Errorf("core: task %d expects %d external inputs, got %d", id, want, len(ps))
		}
	}
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		want := 0
		for _, in := range t.Incoming {
			if in == ExternalInput {
				want++
			}
		}
		if want > 0 {
			if _, ok := initial[id]; !ok {
				return fmt.Errorf("core: task %d expects %d external inputs but none were provided", id, want)
			}
		}
	}
	return nil
}

// SortedIds returns the keys of a payload map in ascending order; used by
// controllers and tests for deterministic iteration.
func SortedIds(m map[TaskId][]Payload) []TaskId {
	ids := make([]TaskId, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
